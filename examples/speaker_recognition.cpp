// Speaker recognition from repeated measurements (Section 4.3's
// "JapaneseVowel" pipeline).
//
// Each utterance yields 7-29 raw LPC-coefficient samples per attribute; the
// empirical distribution of those samples *is* the pdf - no synthetic error
// model involved. The example trains AVG (sample means) and UDT (full
// empirical pdfs) on a generated speaker corpus and reports test accuracy
// and the UDT confusion matrix. This mirrors the paper's headline result:
// on this data set UDT improved accuracy from 81.89% to 87.30%.
//
// Run: build/examples/speaker_recognition

#include <cstdio>

#include "api/predict_session.h"
#include "api/trainer.h"
#include "common/random.h"
#include "datagen/japanese_vowel.h"
#include "eval/metrics.h"

int main() {
  udt::datagen::JapaneseVowelConfig corpus;
  corpus.num_tuples = 640;  // utterances, as in Table 2
  udt::Dataset ds = udt::datagen::GenerateJapaneseVowelLike(corpus);

  udt::Rng rng(7);
  auto [train, test] = ds.RandomSplit(0.4, &rng);
  std::printf("speaker corpus: %d speakers, %d train / %d test utterances, "
              "%d LPC attributes, 7-29 raw samples per value\n\n",
              ds.num_classes(), train.num_tuples(), test.num_tuples(),
              ds.num_attributes());

  udt::TreeConfig config;
  config.algorithm = udt::SplitAlgorithm::kUdtEs;
  udt::Trainer trainer(config);

  auto avg = trainer.TrainAveraging(train);
  UDT_CHECK(avg.ok());
  udt::PredictSession avg_session(avg->Compile());
  double avg_accuracy = udt::EvaluateAccuracy(avg_session, test);
  std::printf("AVG (per-utterance means):       accuracy %.4f\n",
              avg_accuracy);

  udt::BuildStats stats;
  auto dist = trainer.TrainUdt(train, &stats);
  UDT_CHECK(dist.ok());
  udt::PredictSession udt_session(dist->Compile());
  udt::ConfusionMatrix matrix = udt::EvaluateConfusion(udt_session, test);
  std::printf("UDT (empirical sample pdfs):     accuracy %.4f\n",
              matrix.Accuracy());
  std::printf("paper reference on the real data set: 81.89%% -> 87.30%%\n\n");

  std::printf("UDT tree: %d nodes, built with %lld entropy calculations "
              "in %.2fs\n\n",
              dist->tree().num_nodes(),
              static_cast<long long>(
                  stats.counters.TotalEntropyCalculations()),
              stats.build_seconds);

  std::printf("UDT confusion matrix (rows = true speaker):\n%s",
              matrix.ToString(ds.schema().class_names()).c_str());

  std::printf("\nper-speaker recall:\n");
  std::vector<double> recalls = matrix.Recalls();
  for (int c = 0; c < ds.num_classes(); ++c) {
    std::printf("  %-10s %.3f\n", ds.schema().class_name(c).c_str(),
                recalls[static_cast<size_t>(c)]);
  }
  return 0;
}
