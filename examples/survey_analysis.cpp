// Survey analysis: range answers and uncertain categorical attributes
// (Sections 1.3 and 7.2).
//
// A media survey asks "how many hours of TV do you watch per week?" -
// respondents answer with a *range* ("6-8 hours"), modelled as a uniform
// pdf over the range; "hours online" is answered the same way. The
// respondent's dominant content category (news / sports / drama) is
// inferred from proxy logs as a *discrete distribution* over categories -
// an uncertain categorical attribute. The task: predict which subscription
// tier the respondent chose.
//
// Demonstrates: uniform range pdfs, mixed numerical + categorical schemas,
// the gain-ratio measure, and probabilistic classification of a new
// respondent.
//
// Run: build/examples/survey_analysis

#include <cstdio>

#include "api/predict_session.h"
#include "api/trainer.h"
#include "common/random.h"
#include "eval/metrics.h"
#include "pdf/pdf_builder.h"
#include "table/dataset.h"

namespace {

// A respondent's true behaviour drives both the (coarse) survey answers
// and the chosen tier.
udt::Dataset SimulateSurvey(int n, int samples_per_pdf, udt::Rng* rng) {
  auto schema = udt::Schema::Create(
      {
          {"tv_hours", udt::AttributeKind::kNumerical, 0},
          {"online_hours", udt::AttributeKind::kNumerical, 0},
          {"content", udt::AttributeKind::kCategorical, 3},
      },
      {"basic", "standard", "premium"});
  UDT_CHECK(schema.ok());
  udt::Dataset ds(std::move(*schema));

  for (int i = 0; i < n; ++i) {
    int tier = i % 3;
    double tv = tier == 0   ? rng->Uniform(1.0, 10.0)
                : tier == 1 ? rng->Uniform(8.0, 20.0)
                            : rng->Uniform(16.0, 35.0);
    double online = tier == 0   ? rng->Uniform(2.0, 12.0)
                    : tier == 1 ? rng->Uniform(8.0, 25.0)
                                : rng->Uniform(15.0, 40.0);

    // Respondents answer in 3-hour buckets: the pdf is uniform over the
    // bucket that contains the true value.
    auto bucket = [&](double v) {
      double lo = 3.0 * std::floor(v / 3.0);
      return udt::MakeUniformPdf(lo, lo + 3.0, samples_per_pdf);
    };
    auto tv_pdf = bucket(tv);
    auto online_pdf = bucket(online);
    UDT_CHECK(tv_pdf.ok() && online_pdf.ok());

    // Content preference: premium skews drama (2), basic skews news (0);
    // proxy logs yield a noisy distribution around the dominant category.
    int dominant = tier == 2 ? 2 : (tier == 0 ? 0 : rng->UniformInt(3));
    std::vector<double> content(3, 0.15);
    content[static_cast<size_t>(dominant)] = 0.7;
    auto content_pdf = udt::CategoricalPdf::Create(std::move(content));
    UDT_CHECK(content_pdf.ok());

    udt::UncertainTuple t;
    t.label = tier;
    t.values.push_back(udt::UncertainValue::Numerical(std::move(*tv_pdf)));
    t.values.push_back(
        udt::UncertainValue::Numerical(std::move(*online_pdf)));
    t.values.push_back(
        udt::UncertainValue::Categorical(std::move(*content_pdf)));
    UDT_CHECK(ds.AddTuple(std::move(t)).ok());
  }
  return ds;
}

}  // namespace

int main() {
  udt::Rng rng(11);
  udt::Dataset ds = SimulateSurvey(1200, 24, &rng);
  auto [train, test] = ds.RandomSplit(0.3, &rng);

  std::printf("survey data: %d train / %d test respondents\n",
              train.num_tuples(), test.num_tuples());
  std::printf("attributes: tv_hours (uniform range pdf), online_hours "
              "(uniform range pdf), content (uncertain categorical)\n\n");

  for (udt::DispersionMeasure measure :
       {udt::DispersionMeasure::kEntropy, udt::DispersionMeasure::kGini,
        udt::DispersionMeasure::kGainRatio}) {
    udt::TreeConfig config;
    config.algorithm = udt::SplitAlgorithm::kUdtGp;
    config.measure = measure;
    udt::Trainer trainer(config);

    auto avg = trainer.TrainAveraging(train);
    auto dist = trainer.TrainUdt(train);
    UDT_CHECK(avg.ok() && dist.ok());
    udt::PredictSession avg_session(avg->Compile());
    udt::PredictSession udt_session(dist->Compile());
    std::printf("%-11s  AVG accuracy %.4f   UDT accuracy %.4f   "
                "(UDT tree: %d nodes)\n",
                udt::DispersionMeasureToString(measure),
                udt::EvaluateAccuracy(avg_session, test),
                udt::EvaluateAccuracy(udt_session, test),
                dist->tree().num_nodes());
  }

  // Classify one new respondent who answered "9-12 hours TV" and
  // "15-18 hours online" with an ambiguous content profile.
  udt::TreeConfig config;
  config.algorithm = udt::SplitAlgorithm::kUdtGp;
  auto model = udt::Trainer(config).TrainUdt(train);
  UDT_CHECK(model.ok());

  auto tv = udt::MakeUniformPdf(9.0, 12.0, 24);
  auto online = udt::MakeUniformPdf(15.0, 18.0, 24);
  auto content = udt::CategoricalPdf::Create({0.4, 0.25, 0.35});
  UDT_CHECK(tv.ok() && online.ok() && content.ok());
  udt::UncertainTuple respondent;
  respondent.label = 0;
  respondent.values.push_back(
      udt::UncertainValue::Numerical(std::move(*tv)));
  respondent.values.push_back(
      udt::UncertainValue::Numerical(std::move(*online)));
  respondent.values.push_back(
      udt::UncertainValue::Categorical(std::move(*content)));

  // Serve the new respondent through the streaming session entry point.
  udt::PredictSession session(model->Compile());
  session.Push(respondent);
  udt::FlatBatchResult stream;
  session.Drain(&stream);
  std::printf("\nnew respondent (TV 9-12h, online 15-18h, mixed content):\n");
  for (int c = 0; c < ds.num_classes(); ++c) {
    std::printf("  P(%-8s) = %.3f\n", ds.schema().class_name(c).c_str(),
                stream.distribution(0)[static_cast<size_t>(c)]);
  }
  std::printf("-> recommended tier: %s\n",
              ds.schema().class_name(stream.labels[0]).c_str());
  return 0;
}
