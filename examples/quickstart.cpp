// Quickstart: the paper's worked example end to end, through the public
// udt::Trainer / udt::Model facade.
//
// Builds a tiny uncertain data set (one numerical attribute, six tuples,
// two classes, mirroring Table 1), trains both model kinds:
//   * AVG  - pdfs collapsed to their means, classical C4.5-style tree
//   * UDT  - full distribution-based tree with fractional tuples
// prints both trees, compares training accuracy (2/3 vs 1.0, as in the
// paper's Section 4 walk-through), and classifies one uncertain test tuple
// showing the probabilistic output of Fig 1 — first alone, then through the
// serving path: Model::Compile -> udt::CompiledModel -> udt::PredictSession.
//
// Run: build/examples/quickstart

#include <cstdio>

#include "api/predict_session.h"
#include "api/trainer.h"
#include "eval/metrics.h"
#include "tree/tree_printer.h"

namespace {

udt::Dataset MakeExampleData() {
  udt::Dataset ds(udt::Schema::Numerical(1, {"A", "B"}));
  auto add = [&ds](std::vector<double> xs, std::vector<double> ps,
                   int label) {
    auto pdf = udt::SampledPdf::Create(std::move(xs), std::move(ps));
    UDT_CHECK(pdf.ok());
    udt::UncertainTuple t{{udt::UncertainValue::Numerical(std::move(*pdf))},
                          label};
    UDT_CHECK(ds.AddTuple(std::move(t)).ok());
  };
  // Class A tuples (odd tuples have mean +2, even tuples mean -2).
  add({1.0, 5.0}, {0.75, 0.25}, 0);
  add({-1.0, -5.0}, {0.75, 0.25}, 0);
  add({-1.0, 1.0, 10.0}, {0.625, 0.125, 0.25}, 0);  // Table 1's tuple 3
  // Class B tuples.
  add({-5.0, 7.0}, {0.75, 0.25}, 1);
  add({-5.0, 9.0}, {0.5, 0.5}, 1);
  add({-6.0, 2.0}, {0.5, 0.5}, 1);
  return ds;
}

}  // namespace

int main() {
  udt::Dataset train = MakeExampleData();

  std::printf("== Training data (1 uncertain attribute, 6 tuples) ==\n");
  for (int i = 0; i < train.num_tuples(); ++i) {
    const udt::UncertainTuple& t = train.tuple(i);
    std::printf("  tuple %d  class %s  pdf %s  (mean %+.1f)\n", i + 1,
                train.schema().class_name(t.label).c_str(),
                t.values[0].pdf().ToString().c_str(),
                t.values[0].pdf().Mean());
  }

  // The paper shows the example trees before pre/post-pruning.
  udt::TreeConfig config;
  config.min_split_weight = 1e-6;
  config.post_prune = false;
  udt::Trainer trainer(config);

  auto avg = trainer.TrainAveraging(train);
  UDT_CHECK(avg.ok());
  std::printf("\n== AVG tree (pdfs replaced by their means) ==\n%s",
              udt::TreeToString(avg->tree()).c_str());
  std::printf("training accuracy: %.3f\n",
              udt::EvaluateAccuracy(*avg, train));

  trainer.mutable_config().algorithm = udt::SplitAlgorithm::kUdt;
  auto dist = trainer.TrainUdt(train);
  UDT_CHECK(dist.ok());
  std::printf("\n== UDT tree (distribution-based) ==\n%s",
              udt::TreeToString(dist->tree()).c_str());
  std::printf("training accuracy: %.3f\n",
              udt::EvaluateAccuracy(*dist, train));

  // Classify an uncertain test tuple (cf. Fig 1): 30%% of its mass lies
  // below -1, the rest above.
  auto test_pdf = udt::SampledPdf::Create({-2.0, 0.5, 1.5}, {0.3, 0.4, 0.3});
  UDT_CHECK(test_pdf.ok());
  udt::UncertainTuple test{
      {udt::UncertainValue::Numerical(std::move(*test_pdf))}, 0};
  std::vector<double> p = dist->ClassifyDistribution(test);
  std::printf("\n== Classifying test tuple with pdf %s ==\n",
              test.values[0].pdf().ToString().c_str());
  std::printf("P(A) = %.3f, P(B) = %.3f -> predicted class %s\n", p[0], p[1],
              train.schema().class_name(dist->Predict(test)).c_str());

  // The same result serving-style: compile the tree into an immutable flat
  // artifact once, then serve batches through a reusable PredictSession
  // (per-worker scratch, zero allocations per tuple once warm).
  udt::CompiledModel compiled = dist->Compile();
  std::printf("\n== Compiled model: %d flat nodes, %d leaves ==\n",
              compiled.num_nodes(), compiled.num_leaves());
  udt::PredictSession session(compiled);

  std::vector<udt::UncertainTuple> batch(train.tuples());
  batch.push_back(test);
  udt::PredictOptions options;
  options.collect_timings = true;
  auto result = session.PredictBatch(batch, options);
  UDT_CHECK(result.ok());
  std::printf("== PredictSession batch over %zu tuples (%d thread) ==\n",
              batch.size(), result->num_threads_used);
  for (size_t i = 0; i < batch.size(); ++i) {
    std::printf("  tuple %zu -> %s  (P(A)=%.3f, P(B)=%.3f, %.1f us)\n",
                i + 1,
                train.schema().class_name(result->labels[i]).c_str(),
                result->distributions[i][0], result->distributions[i][1],
                result->tuple_seconds[i] * 1e6);
  }
  std::printf("batch wall time: %.1f us\n", result->total_seconds * 1e6);

  // Streaming entry point: push tuples as requests arrive, drain whenever
  // a response is due. Same numbers, flat row-major output.
  session.Push(test);
  udt::FlatBatchResult stream;
  session.Drain(&stream);
  std::printf("\n== Streaming Push/Drain ==\n");
  std::printf("streamed tuple -> %s (P(A)=%.3f, P(B)=%.3f)\n",
              train.schema().class_name(stream.labels[0]).c_str(),
              stream.distribution(0)[0], stream.distribution(0)[1]);
  return 0;
}
