// Sensor calibration: the paper's introductory motivation (Section 1.1).
//
// A tympanic thermometer reads body temperature with a calibration error of
// about +-0.2 C - a large fraction of the 37-40 C diagnostic range. This
// example simulates a triage data set: each patient's *true* temperature
// and heart rate determine the class (healthy / mild fever / severe fever),
// but the classifier only sees noisy instrument readings. Modelling the
// instrument error as a Gaussian pdf around each reading (UDT) recovers
// accuracy that plain averaging (AVG) loses to the noise.
//
// Run: build/examples/sensor_calibration

#include <cstdio>

#include "api/predict_session.h"
#include "api/trainer.h"
#include "common/random.h"
#include "eval/metrics.h"
#include "pdf/pdf_builder.h"
#include "table/dataset.h"

namespace {

struct Patient {
  double measured_temperature;  // single noisy reading, deg C
  double measured_heart_rate;   // single noisy reading, bpm
  int label;                    // 0 healthy, 1 mild fever, 2 severe fever
};

// True physiology -> class; instrument adds Gaussian error.
std::vector<Patient> SimulateTriage(int n, double thermometer_sigma,
                                    double hr_sigma, udt::Rng* rng) {
  std::vector<Patient> patients;
  patients.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    int label = i % 3;
    double true_temp = label == 0   ? rng->Gaussian(36.8, 0.25)
                       : label == 1 ? rng->Gaussian(38.0, 0.35)
                                    : rng->Gaussian(39.5, 0.4);
    double true_hr = label == 0   ? rng->Gaussian(70.0, 8.0)
                     : label == 1 ? rng->Gaussian(85.0, 9.0)
                                  : rng->Gaussian(105.0, 12.0);
    patients.push_back(Patient{
        true_temp + rng->Gaussian(0.0, thermometer_sigma),
        true_hr + rng->Gaussian(0.0, hr_sigma),
        label,
    });
  }
  return patients;
}

// Builds the uncertain data set: every reading becomes a pdf centred at the
// reading whose width matches the instrument's quoted error (4 sigma wide,
// matching the paper's sigma = width/4 convention).
udt::Dataset ToUncertainDataset(const std::vector<Patient>& patients,
                                double thermometer_sigma, double hr_sigma,
                                int samples_per_pdf) {
  udt::Dataset ds(udt::Schema::Numerical(
      2, {"healthy", "mild-fever", "severe-fever"}));
  for (const Patient& p : patients) {
    auto temp_pdf = udt::MakeGaussianErrorPdf(
        p.measured_temperature, 4.0 * thermometer_sigma, samples_per_pdf);
    auto hr_pdf = udt::MakeGaussianErrorPdf(p.measured_heart_rate,
                                            4.0 * hr_sigma, samples_per_pdf);
    UDT_CHECK(temp_pdf.ok() && hr_pdf.ok());
    udt::UncertainTuple t;
    t.label = p.label;
    t.values.push_back(udt::UncertainValue::Numerical(std::move(*temp_pdf)));
    t.values.push_back(udt::UncertainValue::Numerical(std::move(*hr_pdf)));
    UDT_CHECK(ds.AddTuple(std::move(t)).ok());
  }
  return ds;
}

}  // namespace

int main() {
  // Quoted instrument errors: 0.2 C calibration + technique (Section 1.1
  // cites ~24% of readings off by > 0.5 C), 5 bpm for the pulse sensor.
  const double kThermometerSigma = 0.45;
  const double kHeartRateSigma = 5.0;
  const int kSamplesPerPdf = 64;

  udt::Rng rng(2026);
  std::vector<Patient> patients = SimulateTriage(900, kThermometerSigma,
                                                 kHeartRateSigma, &rng);
  udt::Dataset ds = ToUncertainDataset(patients, kThermometerSigma,
                                       kHeartRateSigma, kSamplesPerPdf);

  auto [train, test] = ds.RandomSplit(0.3, &rng);
  std::printf("triage data: %d training / %d test patients, classes "
              "healthy / mild-fever / severe-fever\n",
              train.num_tuples(), test.num_tuples());
  std::printf("instrument model: temperature sigma %.2f C, heart-rate sigma "
              "%.1f bpm, %d samples per pdf\n\n",
              kThermometerSigma, kHeartRateSigma, kSamplesPerPdf);

  udt::TreeConfig config;
  config.algorithm = udt::SplitAlgorithm::kUdtEs;
  udt::Trainer trainer(config);

  // Both model kinds are served the same way: compile once, evaluate
  // through a reusable session.
  auto avg = trainer.TrainAveraging(train);
  UDT_CHECK(avg.ok());
  udt::PredictSession avg_session(avg->Compile());
  udt::ConfusionMatrix avg_matrix = udt::EvaluateConfusion(avg_session, test);
  std::printf("AVG (readings as point values):  accuracy %.4f\n",
              avg_matrix.Accuracy());

  auto dist = trainer.TrainUdt(train);
  UDT_CHECK(dist.ok());
  udt::PredictSession udt_session(dist->Compile());
  udt::ConfusionMatrix udt_matrix = udt::EvaluateConfusion(udt_session, test);
  std::printf("UDT (instrument-error pdfs):     accuracy %.4f\n\n",
              udt_matrix.Accuracy());

  std::printf("UDT confusion matrix:\n%s\n",
              udt_matrix.ToString(ds.schema().class_names()).c_str());

  // A borderline patient: reading 37.9 C / 88 bpm. The probabilistic
  // output exposes the diagnostic ambiguity a point prediction hides.
  auto temp_pdf =
      udt::MakeGaussianErrorPdf(37.9, 4.0 * kThermometerSigma, kSamplesPerPdf);
  auto hr_pdf =
      udt::MakeGaussianErrorPdf(88.0, 4.0 * kHeartRateSigma, kSamplesPerPdf);
  UDT_CHECK(temp_pdf.ok() && hr_pdf.ok());
  udt::UncertainTuple borderline;
  borderline.label = 0;
  borderline.values.push_back(
      udt::UncertainValue::Numerical(std::move(*temp_pdf)));
  borderline.values.push_back(
      udt::UncertainValue::Numerical(std::move(*hr_pdf)));
  std::vector<double> p = udt_session.ClassifyDistribution(borderline);
  std::printf("borderline patient (37.9 C, 88 bpm):\n");
  for (int c = 0; c < ds.num_classes(); ++c) {
    std::printf("  P(%-12s) = %.3f\n", ds.schema().class_name(c).c_str(),
                p[static_cast<size_t>(c)]);
  }
  return 0;
}
