// End-to-end CSV workflow: what a downstream user of the library does with
// their own measurements file.
//
//   1. write/read a CSV with missing values ("?", the UCI convention)
//   2. build the uncertain data set: pdfs for present readings, Section 2's
//      mixture "guess" pdfs for missing ones
//   3. train a distribution-based udt::Model with udt::Trainer
//   4. persist the model to disk with Model::Save and load it back with
//      Model::Load (schema and config travel inside the file)
//   5. compile a serving artifact (CompiledModel::Save / Load) and check
//      the reloaded flat layout serves identical predictions
//   6. extract human-readable IF-THEN rules and a Graphviz rendering
//
// Run: build/examples/csv_workflow [output-directory]

#include <cstdio>
#include <fstream>
#include <string>

#include "api/predict_session.h"
#include "api/trainer.h"
#include "common/random.h"
#include "common/string_util.h"
#include "eval/metrics.h"
#include "table/csv.h"
#include "table/missing.h"
#include "tree/rules.h"
#include "tree/tree_printer.h"

namespace {

// A small wine-quality-style measurements file; "?" marks a failed assay.
std::string MakeCsv() {
  udt::Rng rng(404);
  std::string csv = "acidity,sugar,sulphates,class\n";
  for (int i = 0; i < 240; ++i) {
    int label = i % 2;
    double acidity = rng.Gaussian(label == 0 ? 6.5 : 8.0, 0.7);
    double sugar = rng.Gaussian(label == 0 ? 2.0 : 5.5, 1.2);
    double sulphates = rng.Gaussian(label == 0 ? 0.5 : 0.75, 0.12);
    auto field = [&rng](double v) {
      return rng.Bernoulli(0.08) ? std::string("?")
                                 : udt::StrFormat("%.3f", v);
    };
    csv += field(acidity) + "," + field(sugar) + "," + field(sulphates) +
           "," + (label == 0 ? "table" : "premium") + "\n";
  }
  return csv;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir = argc > 1 ? argv[1] : "/tmp";

  // 1. Round-trip the measurements through CSV.
  std::string csv_path = out_dir + "/udt_wine.csv";
  {
    std::ofstream out(csv_path);
    out << MakeCsv();
  }
  auto points = udt::ReadCsvFile(csv_path);
  UDT_CHECK(points.ok());
  std::printf("loaded %s: %d rows, %d attributes, %d missing entries\n",
              csv_path.c_str(), points->num_tuples(),
              points->num_attributes(), points->CountMissing());

  // 2. Uncertain view: instrument error 6% of each attribute's range;
  //    missing entries get the class-conditional mixture guess pdf.
  udt::MissingPdfOptions missing_options;
  missing_options.inject.width_fraction = 0.06;
  missing_options.inject.samples_per_pdf = 32;
  missing_options.inject.error_model = udt::ErrorModel::kGaussian;
  missing_options.class_conditional = true;
  auto ds = udt::InjectUncertaintyWithMissing(*points, missing_options);
  UDT_CHECK(ds.ok());

  udt::Rng rng(7);
  auto [train, test] = ds->RandomSplit(0.25, &rng);

  // 3. Train.
  udt::TreeConfig config;
  config.algorithm = udt::SplitAlgorithm::kUdtEs;
  udt::Trainer trainer(config);
  auto model = trainer.TrainUdt(train);
  UDT_CHECK(model.ok());
  udt::PredictSession session(model->Compile());
  std::printf("trained UDT tree (%s), test accuracy %.3f\n",
              udt::TreeSummary(model->tree()).c_str(),
              udt::EvaluateAccuracy(session, test));

  // 4. Persist and reload. The model file is self-contained: kind, schema
  // and training config ride along with the tree.
  std::string model_path = out_dir + "/udt_wine.model";
  UDT_CHECK(model->Save(model_path).ok());
  auto restored = udt::Model::Load(model_path);
  UDT_CHECK(restored.ok());
  UDT_CHECK(udt::EvaluateAccuracy(*restored, test) ==
            udt::EvaluateAccuracy(session, test));
  std::printf("model persisted to %s and reloaded: predictions identical\n",
              model_path.c_str());

  // 5. The serving artifact: the flat compiled layout has its own
  // versioned container, so serving fleets can ship it without the
  // training config, and Load rebuilds the identical in-memory layout.
  std::string compiled_path = out_dir + "/udt_wine.compiled";
  UDT_CHECK(session.model().Save(compiled_path).ok());
  auto compiled = udt::CompiledModel::Load(compiled_path);
  UDT_CHECK(compiled.ok());
  UDT_CHECK(compiled->LayoutEquals(session.model()));
  udt::PredictSession reloaded_session(*compiled);
  UDT_CHECK(udt::EvaluateAccuracy(reloaded_session, test) ==
            udt::EvaluateAccuracy(session, test));
  std::printf("compiled artifact (%d flat nodes) persisted to %s and "
              "reloaded layout-identical\n",
              compiled->num_nodes(), compiled_path.c_str());

  // 6. Rules and Graphviz.
  udt::RuleSet rules = udt::RuleSet::FromTree(model->tree());
  std::printf("\nextracted %d rules (top by support):\n", rules.num_rules());
  std::string all_rules = rules.ToString();
  // Print the first few lines only.
  size_t pos = 0;
  for (int line = 0; line < 5 && pos != std::string::npos; ++line) {
    size_t next = all_rules.find('\n', pos);
    std::printf("  %s\n", all_rules.substr(pos, next - pos).c_str());
    pos = next == std::string::npos ? next : next + 1;
  }
  std::string dot_path = out_dir + "/udt_wine.dot";
  {
    std::ofstream out(dot_path);
    out << udt::TreeToDot(model->tree());
  }
  std::printf("\nGraphviz rendering written to %s "
              "(render with: dot -Tpng %s -o tree.png)\n",
              dot_path.c_str(), dot_path.c_str());
  return 0;
}
