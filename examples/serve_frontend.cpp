// Serving front end walkthrough: run a model "in production" with the
// src/serve/ subsystem — publish a v1 tree into a ModelRegistry, stream
// live traffic through a micro-batching BatchingQueue, hot swap to a
// retrained v2 without dropping a request, then retire v1 and drain.
//
// The sequence mirrors a real deployment:
//   1. train v1, Publish("prod") — the queue starts serving it;
//   2. clients Submit single tuples; the drainer coalesces them into
//      micro-batches over one persistent session;
//   3. train v2 on more data, Publish("prod") again — the very next
//      micro-batch serves v2; the batch in flight finishes wholly on v1;
//   4. Retire v1 — in-flight snapshots keep it alive until they finish;
//   5. Close() the queue: admitted requests drain, later ones are
//      rejected with kUnavailable.
//
// Run: build/examples/serve_frontend

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <future>
#include <string>
#include <vector>

#include "api/trainer.h"
#include "common/random.h"
#include "pdf/pdf_builder.h"
#include "serve/batching_queue.h"
#include "serve/model_registry.h"
#include "serve/servable.h"

namespace {

// Gaussian-noised readings over 4 channels, three classes — the
// uncertain-data regime the paper's distribution-based trees target.
udt::Dataset MakeReadings(int tuples, int s, uint64_t seed) {
  udt::Rng rng(seed);
  udt::Dataset ds(udt::Schema::Numerical(4, {"calm", "active", "alarm"}));
  for (int i = 0; i < tuples; ++i) {
    udt::UncertainTuple t;
    t.label = i % 3;
    for (int j = 0; j < 4; ++j) {
      double center = rng.Gaussian(t.label * 1.2 + 0.1 * j, 1.0);
      auto pdf = udt::MakeGaussianErrorPdf(center, rng.Uniform(0.6, 1.4), s);
      UDT_CHECK(pdf.ok());
      t.values.push_back(udt::UncertainValue::Numerical(std::move(*pdf)));
    }
    UDT_CHECK(ds.AddTuple(std::move(t)).ok());
  }
  return ds;
}

udt::serve::Servable TrainServable(int tuples, uint64_t seed) {
  udt::TreeConfig config;
  config.algorithm = udt::SplitAlgorithm::kUdtEs;
  auto model = udt::Trainer(config).TrainUdt(MakeReadings(tuples, 10, seed));
  UDT_CHECK(model.ok());
  return udt::serve::Servable(model->Compile());
}

// One wave of traffic: submit every pool tuple, wait for every response,
// report which versions served it.
void SendTraffic(udt::serve::BatchingQueue* queue, const udt::Dataset& pool,
                 const char* phase) {
  std::vector<std::future<udt::serve::ServeResult>> futures;
  for (const udt::UncertainTuple& tuple : pool.tuples()) {
    futures.push_back(queue->Submit(&tuple));
  }
  uint64_t min_version = ~0ull, max_version = 0;
  int ok = 0;
  for (auto& future : futures) {
    udt::serve::ServeResult result = future.get();
    if (!result.status.ok()) continue;
    ++ok;
    min_version = std::min(min_version, result.model_version);
    max_version = std::max(max_version, result.model_version);
  }
  udt::serve::BatchingQueue::Stats stats = queue->stats();
  std::printf(
      "%-18s %3d/%3zu ok, served by prod v%llu..v%llu   "
      "(%llu drains so far, largest %llu)\n",
      phase, ok, futures.size(), (unsigned long long)min_version,
      (unsigned long long)max_version, (unsigned long long)stats.drains,
      (unsigned long long)stats.max_drain);
}

}  // namespace

int main() {
  udt::Dataset pool = MakeReadings(96, 10, 1042);

  // 1. Publish v1 and bind a queue to the entry's latest live version.
  udt::serve::ModelRegistry registry;
  uint64_t v1 = registry.Publish("prod", TrainServable(150, 7));
  std::printf("published prod v%llu (150 training tuples)\n",
              (unsigned long long)v1);

  udt::serve::BatchingConfig config;
  config.max_batch = 16;      // drain when 16 requests are pending...
  config.max_delay_us = 200;  // ...or the oldest has waited 200us
  udt::serve::BatchingQueue queue(&registry, "prod", config);

  // 2. Live traffic against v1.
  SendTraffic(&queue, pool, "traffic on v1:");

  // 3. Hot swap: retrain on more data and publish. No pause, no queue
  //    restart — the next micro-batch snapshot resolves v2.
  uint64_t v2 = registry.Publish("prod", TrainServable(400, 8));
  std::printf("published prod v%llu (400 training tuples) — hot swap\n",
              (unsigned long long)v2);
  SendTraffic(&queue, pool, "traffic on v2:");

  // 4. Retire v1. Resolve("prod") already returns v2; any batch still
  //    holding a v1 snapshot finishes safely on its shared handle.
  UDT_CHECK(registry.Retire("prod", v1).ok());
  std::printf("retired prod v%llu; live versions now:", (unsigned long long)v1);
  for (uint64_t v : registry.Versions("prod")) {
    std::printf(" v%llu", (unsigned long long)v);
  }
  std::printf("\n");
  SendTraffic(&queue, pool, "after retire:");

  // 5. Shutdown: Close() drains everything admitted, then rejects.
  queue.Close();
  udt::serve::ServeResult late = queue.Submit(&pool.tuple(0)).get();
  std::printf("submit after Close(): %s\n", late.status.ToString().c_str());

  udt::serve::BatchingQueue::Stats stats = queue.stats();
  std::printf("totals: %llu admitted, %llu served, %llu rejected, "
              "%llu micro-batches\n",
              (unsigned long long)stats.submitted,
              (unsigned long long)stats.served,
              (unsigned long long)stats.rejected,
              (unsigned long long)stats.drains);
  return 0;
}
