// Forest workflow: train a bagged random-subspace UDT forest on noisy
// sensor-style data, read its out-of-bag error, compare it against a
// single UDT tree, then walk the serving path end to end — compile,
// save/load the "udt-forest v1" artifact, and batch-classify through a
// ForestPredictSession.
//
// Run: build/examples/forest_workflow

#include <cstdio>
#include <string>
#include <vector>

#include "api/compiled_forest.h"
#include "api/forest.h"
#include "api/forest_session.h"
#include "api/trainer.h"
#include "common/random.h"
#include "eval/metrics.h"
#include "pdf/pdf_builder.h"

namespace {

// Three overlapping classes of Gaussian-noised readings over 5 channels —
// the regime where the paper shows distribution-based trees (and their
// ensembles) earn their keep.
udt::Dataset MakeReadings(int tuples, int s, uint64_t seed) {
  udt::Rng rng(seed);
  udt::Dataset ds(udt::Schema::Numerical(5, {"calm", "active", "alarm"}));
  for (int i = 0; i < tuples; ++i) {
    udt::UncertainTuple t;
    t.label = i % 3;
    for (int j = 0; j < 5; ++j) {
      double center = rng.Gaussian(t.label * 1.1 + 0.2 * j, 1.0);
      auto pdf = udt::MakeGaussianErrorPdf(center, rng.Uniform(0.6, 1.4), s);
      UDT_CHECK(pdf.ok());
      t.values.push_back(udt::UncertainValue::Numerical(std::move(*pdf)));
    }
    UDT_CHECK(ds.AddTuple(std::move(t)).ok());
  }
  return ds;
}

}  // namespace

int main() {
  udt::Dataset train = MakeReadings(300, 12, 7);
  udt::Dataset test = MakeReadings(200, 12, 1007);

  // --- single-tree baseline ------------------------------------------
  udt::TreeConfig tree_config;
  tree_config.algorithm = udt::SplitAlgorithm::kUdtEs;
  udt::Trainer single(tree_config);
  auto tree = single.TrainUdt(train);
  UDT_CHECK(tree.ok());
  double tree_accuracy = udt::EvaluateAccuracy(*tree, test);

  // --- the forest ----------------------------------------------------
  udt::ForestConfig config;
  config.tree = tree_config;
  config.num_trees = 15;
  config.seed = 4;
  config.subspace_attributes = udt::ForestConfig::kSubspaceSqrt;
  config.num_threads = 0;  // one per hardware thread; same forest anyway

  udt::ForestTrainer trainer(config);
  udt::OobEstimate oob;
  auto forest = trainer.TrainUdt(train, &oob);
  UDT_CHECK(forest.ok());

  std::printf("forest: %d trees, vote=%s\n", forest->num_trees(),
              udt::ForestVoteToString(forest->vote()));
  std::printf("out-of-bag error %.3f (coverage %.2f: %d of %d tuples)\n",
              oob.error, oob.coverage, oob.evaluated_tuples,
              oob.total_tuples);

  // --- serving path: compile, persist, session ------------------------
  udt::CompiledForest compiled = forest->Compile();
  const std::string path = "/tmp/udt_forest_example.udtf";
  UDT_CHECK(compiled.Save(path).ok());
  auto loaded = udt::CompiledForest::Load(path);
  UDT_CHECK(loaded.ok());
  UDT_CHECK(loaded->LayoutEquals(compiled));

  udt::ForestPredictSession session(*loaded);
  auto batch = session.PredictBatch(test);
  UDT_CHECK(batch.ok());

  int correct = 0;
  for (int i = 0; i < test.num_tuples(); ++i) {
    if (batch->labels[static_cast<size_t>(i)] == test.tuple(i).label) {
      ++correct;
    }
  }
  double forest_accuracy =
      static_cast<double>(correct) / test.num_tuples();

  std::printf("held-out accuracy: single tree %.3f, forest %.3f\n",
              tree_accuracy, forest_accuracy);
  std::printf("serving batch: %zu tuples in %.1f ms through the compiled "
              "forest\n",
              batch->labels.size(), batch->total_seconds * 1e3);
  return 0;
}
