#!/usr/bin/env python3
"""Check a freshly generated bench JSON against its committed sidecar.

The bench harnesses emit one JSON object per line (bench_common JsonRows):
bench_serving_throughput, bench_forest_throughput, bench_sustained_serving,
bench_serve_frontend and bench_storage_compression (the storage tier's
accuracy-vs-compression sweep, BENCH_storage_compression.json) write
BENCH_<name>.json sidecars this script understands, as does the
batch-vs-scalar traversal sweep inside bench_micro_kernels
(BENCH_micro_batch_kernels.json). CI regenerates each file in the Release smoke job and this
script fails on *schema* drift only — keys added or removed, value types
changed, or the categorical dimensions (dataset / path / kind /
batch_size...) no longer covering what the sidecar covers. Timing values
are expected to move run to run and are deliberately not compared.

Rows must be strict JSON: NaN / Infinity (which Python's json module
accepts by default, and which a degenerate measurement could print) are
rejected, so a sidecar can never commit a value other consumers cannot
parse.

Usage: check_bench_schema.py <committed.json> <fresh.json> [...pairs]
Exits non-zero with a per-file report on drift.
"""

import json
import sys

# String-valued keys define a row's identity (which configuration it
# measures); numeric values are measurements and may drift freely.
IDENTITY_TYPES = (str,)


def _reject_constant(token):
    # json.loads maps NaN/Infinity to floats unless told otherwise; a bench
    # row carrying them is a harness bug (e.g. a zero-coverage OOB estimate
    # or a division by a zero timer), not a measurement.
    raise ValueError(f"non-finite constant {token!r} is not valid JSON")


def load_rows(path):
    rows = []
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line, parse_constant=_reject_constant)
            except (json.JSONDecodeError, ValueError) as e:
                raise SystemExit(f"{path}:{lineno}: not valid JSON: {e}")
            if not isinstance(row, dict):
                raise SystemExit(f"{path}:{lineno}: row is not an object")
            rows.append(row)
    if not rows:
        raise SystemExit(f"{path}: no JSON rows")
    return rows


def type_name(value):
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, (int, float)):
        return "number"
    if isinstance(value, str):
        return "string"
    return type(value).__name__


def schema_of(rows):
    """Maps key -> set of value type names across all rows."""
    schema = {}
    for row in rows:
        for key, value in row.items():
            schema.setdefault(key, set()).add(type_name(value))
    return schema


def identity_of(rows):
    """The set of categorical configurations the file covers."""
    identities = set()
    for row in rows:
        identities.add(
            tuple(
                sorted(
                    (k, v)
                    for k, v in row.items()
                    if isinstance(v, IDENTITY_TYPES)
                )
            )
        )
    return identities


def check_pair(committed_path, fresh_path):
    committed = load_rows(committed_path)
    fresh = load_rows(fresh_path)
    errors = []

    committed_schema = schema_of(committed)
    fresh_schema = schema_of(fresh)
    missing = sorted(set(committed_schema) - set(fresh_schema))
    added = sorted(set(fresh_schema) - set(committed_schema))
    if missing:
        errors.append(f"keys vanished from fresh output: {missing}")
    if added:
        errors.append(f"keys appeared in fresh output: {added}")
    for key in sorted(set(committed_schema) & set(fresh_schema)):
        if committed_schema[key] != fresh_schema[key]:
            errors.append(
                f"key {key!r} changed type: "
                f"{sorted(committed_schema[key])} -> "
                f"{sorted(fresh_schema[key])}"
            )

    committed_ids = identity_of(committed)
    fresh_ids = identity_of(fresh)
    lost = committed_ids - fresh_ids
    if lost:
        sample = sorted(lost)[:3]
        errors.append(
            f"{len(lost)} committed configuration(s) no longer produced, "
            f"e.g. {sample}"
        )

    return errors


def main(argv):
    if len(argv) < 3 or len(argv) % 2 == 0:
        print(__doc__, file=sys.stderr)
        return 2
    failed = False
    pairs = list(zip(argv[1::2], argv[2::2]))
    for committed_path, fresh_path in pairs:
        errors = check_pair(committed_path, fresh_path)
        if errors:
            failed = True
            print(f"SCHEMA DRIFT: {fresh_path} vs {committed_path}")
            for error in errors:
                print(f"  - {error}")
        else:
            print(f"ok: {fresh_path} matches schema of {committed_path}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
