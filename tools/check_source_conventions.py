#!/usr/bin/env python3
"""Repo-wide source convention linter (the non-compiler half of the
static-analysis gate; clang -Wthread-safety and clang-tidy are the
compiler half).

Rules, each motivated by a bug class this repo has decided to make
unrepresentable:

  naked-mutex      std::mutex / std::lock_guard / std::unique_lock /
                   std::scoped_lock / std::condition_variable anywhere
                   outside src/common/mutex.h. Naked primitives carry no
                   thread-safety annotations, so clang's analysis cannot
                   see the locking discipline around them; every locking
                   site must go through udt::Mutex / MutexLock / CondVar.

  raw-random       rand() / std::random_device outside seeded data
                   generation. The repo's determinism guarantee (same
                   seed => bitwise-identical models and benches) dies the
                   moment any code path draws entropy from the
                   environment. Seeded generators (std::mt19937 and the
                   repo's own splitmix streams) are fine.

  unordered-serialize
                   Range-for iteration over a std::unordered_map/set
                   whose loop body feeds a serialization sink (stream
                   <<, string append, Serialize/Write calls, fprintf).
                   Unordered iteration order is implementation-defined,
                   so bytes produced this way are not stable across
                   standard libraries — the forest/model serializers are
                   byte-compared in tests and must never depend on it.
                   Order-insensitive folds (sums, max) are fine.

  include-guard    Header guards must be UDT_<PATH>_H_ derived from the
                   repo-relative path with the src/ prefix dropped
                   (src/api/forest.h -> UDT_API_FOREST_H_,
                   bench/bench_common.h -> UDT_BENCH_BENCH_COMMON_H_).
                   Copy-pasted guards silently merge two headers.

  unjustified-escape
                   UDT_NO_THREAD_SAFETY_ANALYSIS without a justification
                   comment on the same or preceding line. The macro turns
                   the analysis off for a whole function; an unexplained
                   use is indistinguishable from a silenced bug.

  unjustified-void-status
                   `(void)` casts applied to a Status-returning
                   expression without a same-line justification comment.
                   Status is [[nodiscard]]; a bare (void) is the blanket
                   suppression the nodiscard audit exists to prevent.

Per-line opt-outs, always with a reason after the colon:

  // lint-ok(naked-mutex): <reason>     (same line or the line above)

src/common/mutex.h is exempt from naked-mutex wholesale (it is the one
wrapper). Generated/vendored code would be listed in EXEMPT_PATHS.

Usage:
  check_source_conventions.py [--root DIR]     lint the repo (default .)
  check_source_conventions.py --self-test      seed one violation per
                                               rule into a temp tree and
                                               assert each is caught, and
                                               that a justified line is
                                               not — the linter's own
                                               negative test, run in CI
                                               and ctest before the real
                                               lint so a silently broken
                                               rule cannot pass the gate.

Exit code 0 = clean, 1 = violations (or a self-test failure), 2 = usage.
"""

import argparse
import os
import re
import sys
import tempfile

LINTED_DIRS = ("src", "tests", "bench", "examples", "tools")
SOURCE_EXTENSIONS = (".h", ".cc")

# Files exempt from specific rules, path-relative to the repo root.
EXEMPT_PATHS = {
    "src/common/mutex.h": {"naked-mutex"},  # the wrapper itself
}

OPT_OUT_RE = re.compile(r"//\s*lint-ok\((?P<rule>[a-z-]+)\):\s*\S")

NAKED_MUTEX_RE = re.compile(
    r"std::(mutex|lock_guard|unique_lock|scoped_lock|condition_variable)\b"
)
RAW_RANDOM_RE = re.compile(r"(?<![\w:])rand\s*\(\s*\)|std::random_device\b")
UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;]*>\s+(\w+)\s*[;{=]"
)
SERIALIZE_SINK_RE = re.compile(
    r"<<|(?:\.|->)append\s*\(|StrAppend|Serialize|\bWrite\w*\s*\(|fprintf"
    r"|fputs"
)
ESCAPE_RE = re.compile(r"\bUDT_NO_THREAD_SAFETY_ANALYSIS\b")
VOID_STATUS_RE = re.compile(r"\(void\)[^;/]*\b[Ss]tatus\b")
COMMENT_RE = re.compile(r"//.*$")


def is_comment_or_string(line, match_start):
    """True if the match begins inside a // comment (string literals are
    rare enough in this codebase that comment stripping suffices)."""
    comment = line.find("//")
    return comment != -1 and comment < match_start


def has_opt_out(lines, index, rule):
    for probe in (index, index - 1):
        if 0 <= probe < len(lines):
            m = OPT_OUT_RE.search(lines[probe])
            if m and m.group("rule") == rule:
                return True
    return False


def has_justification_comment(lines, index):
    """A non-empty // comment on the same line or the line above."""
    for probe in (index, index - 1):
        if 0 <= probe < len(lines):
            m = re.search(r"//\s*(\S.*)", lines[probe])
            if m:
                return True
    return False


def expected_guard(relpath):
    trimmed = relpath[4:] if relpath.startswith("src/") else relpath
    return "UDT_" + re.sub(r"[^A-Za-z0-9]", "_", trimmed).upper() + "_"


def check_file(relpath, lines):
    violations = []
    exempt = EXEMPT_PATHS.get(relpath, set())

    def report(rule, index, message):
        if rule in exempt or has_opt_out(lines, index, rule):
            return
        violations.append((relpath, index + 1, rule, message))

    unordered_names = set()
    for i, line in enumerate(lines):
        for m in UNORDERED_DECL_RE.finditer(line):
            unordered_names.add(m.group(1))

    in_seeded_datagen = "datagen" in relpath
    for i, line in enumerate(lines):
        m = NAKED_MUTEX_RE.search(line)
        if m and not is_comment_or_string(line, m.start()):
            report(
                "naked-mutex", i,
                f"{m.group(0)} outside src/common/mutex.h — use udt::Mutex"
                " / MutexLock / CondVar so clang's thread-safety analysis"
                " sees the locking discipline")

        m = RAW_RANDOM_RE.search(line)
        if m and not is_comment_or_string(line, m.start()):
            if not in_seeded_datagen:
                report(
                    "raw-random", i,
                    f"{m.group(0).strip()} draws environment entropy —"
                    " breaks the same-seed bitwise-reproducibility"
                    " guarantee; use a seeded generator")

        # Range-for over a known unordered container: scan the loop body
        # (brace-balanced, bounded) for serialization sinks.
        loop = re.search(r"for\s*\([^;)]*:\s*\*?(\w+)\s*\)", line)
        if loop and loop.group(1) in unordered_names:
            depth = 0
            opened = False
            for j in range(i, min(i + 40, len(lines))):
                body = COMMENT_RE.sub("", lines[j])
                if j > i or body[loop.end():].strip() or "{" in body:
                    sink = SERIALIZE_SINK_RE.search(body)
                    if sink and j > i:
                        report(
                            "unordered-serialize", j,
                            f"iteration over unordered '{loop.group(1)}'"
                            " feeds a serialization sink — bytes depend"
                            " on hash order; sort keys first")
                        break
                depth += body.count("{") - body.count("}")
                opened = opened or "{" in body
                if opened and depth <= 0:
                    break

        m = ESCAPE_RE.search(line)
        if (m and not is_comment_or_string(line, m.start())
                and "#define" not in line):
            if not has_justification_comment(lines, i):
                report(
                    "unjustified-escape", i,
                    "UDT_NO_THREAD_SAFETY_ANALYSIS without a justification"
                    " comment on this or the preceding line")

        m = VOID_STATUS_RE.search(line)
        if m and not is_comment_or_string(line, m.start()):
            if not re.search(r"//\s*\S", line):
                report(
                    "unjustified-void-status", i,
                    "(void)-discarded Status without a same-line"
                    " justification comment")

    if relpath.endswith(".h"):
        guard = expected_guard(relpath)
        text = "\n".join(lines)
        ifndef = re.search(r"#ifndef\s+(\S+)", text)
        define = re.search(r"#define\s+(\S+)", text)
        if not ifndef or not define:
            report("include-guard", 0, f"missing include guard {guard}")
        elif ifndef.group(1) != guard or define.group(1) != guard:
            report(
                "include-guard", 0,
                f"guard is {ifndef.group(1)}, expected {guard}"
                " (UDT_<path-sans-src>_H_)")

    return violations


def lint_tree(root):
    violations = []
    for top in LINTED_DIRS:
        base = os.path.join(root, top)
        if not os.path.isdir(base):
            continue
        for dirpath, _, files in os.walk(base):
            for name in sorted(files):
                if not name.endswith(SOURCE_EXTENSIONS):
                    continue
                path = os.path.join(dirpath, name)
                relpath = os.path.relpath(path, root).replace(os.sep, "/")
                with open(path, encoding="utf-8") as f:
                    lines = f.read().splitlines()
                violations.extend(check_file(relpath, lines))
    return violations


# --------------------------------------------------------------- self-test

SELF_TEST_CASES = [
    # (relpath, contents, rules that MUST fire)
    ("src/bad/naked.cc",
     "#include <mutex>\nstd::mutex mu;\n",
     {"naked-mutex"}),
    ("src/bad/entropy.cc",
     "int Draw() { std::random_device rd; return rand(); }\n",
     {"raw-random"}),
    ("src/bad/unstable.cc",
     "#include <string>\n#include <unordered_map>\n"
     "std::unordered_map<int, int> table;\n"
     "void Dump(std::string* out) {\n"
     "  for (const auto& [k, v] : table) {\n"
     "    out->append(std::to_string(k));\n"
     "  }\n"
     "}\n",
     {"unordered-serialize"}),
    ("src/bad/guard.h",
     "#ifndef WRONG_GUARD_H\n#define WRONG_GUARD_H\n#endif\n",
     {"include-guard"}),
    ("src/bad/escape.cc",
     "void Sneak() UDT_NO_THREAD_SAFETY_ANALYSIS {\n}\n",
     {"unjustified-escape"}),
    ("src/bad/dropped.cc",
     "void F() { (void)DoThing().status(); }\n",
     {"unjustified-void-status"}),
    # Justified / exempt lines that must NOT fire.
    ("src/good/justified.cc",
     "// Reason: ctor runs before any thread exists.\n"
     "void Init() UDT_NO_THREAD_SAFETY_ANALYSIS {\n}\n"
     "void G() { (void)Best().status(); }  // advisory only, logged above\n"
     "// lint-ok(naked-mutex): illustrative comment in a doc string\n"
     "// std::mutex in prose is fine anyway\n",
     set()),
    ("src/good/seeded_datagen.cc",
     "#include <random>\nstd::random_device rd;  // datagen path is exempt\n",
     set()),
]


def self_test():
    failures = []
    with tempfile.TemporaryDirectory() as root:
        for relpath, contents, _ in SELF_TEST_CASES:
            path = os.path.join(root, relpath)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(contents)
        found = lint_tree(root)
        by_file = {}
        for relpath, _, rule, _ in found:
            by_file.setdefault(relpath, set()).add(rule)
        for relpath, _, expected in SELF_TEST_CASES:
            got = by_file.get(relpath, set())
            if expected - got:
                failures.append(
                    f"{relpath}: expected {sorted(expected - got)} to fire,"
                    f" got {sorted(got)}")
            if not expected and got:
                failures.append(
                    f"{relpath}: expected clean, but {sorted(got)} fired")
    if failures:
        print("self-test FAILED:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"self-test passed: {len(SELF_TEST_CASES)} seeded cases behaved")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".", help="repo root to lint")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the linter catches seeded violations")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    violations = lint_tree(args.root)
    if violations:
        print(f"{len(violations)} convention violation(s):")
        for relpath, line, rule, message in violations:
            print(f"  {relpath}:{line}: [{rule}] {message}")
        return 1
    print("source conventions clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
