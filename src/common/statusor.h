// StatusOr<T>: either a value of type T or an error Status.
// Mirrors absl::StatusOr at the small scale this project needs.

#ifndef UDT_COMMON_STATUSOR_H_
#define UDT_COMMON_STATUSOR_H_

#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/status.h"

namespace udt {

// Holds a T on success or a non-OK Status on failure. Accessing the value of
// a failed StatusOr is a checked programming error. [[nodiscard]] for the
// same reason Status is: an ignored StatusOr drops both the result and
// the error.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  // Implicit conversions from T and Status keep call sites readable
  // (`return value;` / `return Status::InvalidArgument(...)`), matching the
  // established absl::StatusOr idiom.
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}

  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    UDT_CHECK(!status_.ok());  // An OK StatusOr must carry a value.
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    UDT_CHECK(ok());
    return *value_;
  }
  T& value() & {
    UDT_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    UDT_CHECK(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace udt

// Assigns the value of a StatusOr expression to `lhs`, or propagates the
// error Status to the caller.
#define UDT_ASSIGN_OR_RETURN(lhs, expr)        \
  auto UDT_CONCAT_(_statusor_, __LINE__) = (expr);            \
  if (!UDT_CONCAT_(_statusor_, __LINE__).ok()) \
    return UDT_CONCAT_(_statusor_, __LINE__).status();        \
  lhs = std::move(UDT_CONCAT_(_statusor_, __LINE__)).value()

#define UDT_CONCAT_INNER_(a, b) a##b
#define UDT_CONCAT_(a, b) UDT_CONCAT_INNER_(a, b)

#endif  // UDT_COMMON_STATUSOR_H_
