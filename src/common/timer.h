// Wall-clock timer used by the benchmark harnesses (Figs 6, 8, 9).

#ifndef UDT_COMMON_TIMER_H_
#define UDT_COMMON_TIMER_H_

#include <chrono>

namespace udt {

// Measures elapsed wall-clock time. Starts on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  // Restarts the timer.
  void Reset() { start_ = Clock::now(); }

  // Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace udt

#endif  // UDT_COMMON_TIMER_H_
