// Lightweight assertion and logging macros.
//
// The library does not throw exceptions from hot paths; recoverable errors
// are reported through Status (see common/status.h). UDT_CHECK guards
// conditions that indicate a programming error and aborts with a message.
// UDT_DCHECK compiles away in release builds (NDEBUG).

#ifndef UDT_COMMON_LOGGING_H_
#define UDT_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace udt {
namespace internal {

// Prints a fatal-check failure message and aborts. Never returns.
[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* condition) {
  std::fprintf(stderr, "[udt] CHECK failed at %s:%d: %s\n", file, line,
               condition);
  std::abort();
}

}  // namespace internal
}  // namespace udt

// Aborts the process if `condition` is false. Enabled in all build types.
#define UDT_CHECK(condition)                                   \
  do {                                                         \
    if (!(condition)) {                                        \
      ::udt::internal::CheckFailed(__FILE__, __LINE__, #condition); \
    }                                                          \
  } while (false)

// Debug-only variant of UDT_CHECK.
#ifdef NDEBUG
#define UDT_DCHECK(condition) \
  do {                        \
  } while (false)
#else
#define UDT_DCHECK(condition) UDT_CHECK(condition)
#endif

#endif  // UDT_COMMON_LOGGING_H_
