#include "common/math.h"

#include "common/logging.h"

namespace udt {

double XLog2X(double x) {
  UDT_DCHECK(x >= -kMassEpsilon);
  if (x <= 0.0) return 0.0;
  return x * std::log2(x);
}

double Log2Safe(double x) {
  if (x <= 0.0) return 0.0;
  return std::log2(x);
}

double EntropyFromCounts(const std::vector<double>& counts) {
  double total = 0.0;
  for (double c : counts) {
    UDT_DCHECK(c >= -kMassEpsilon);
    if (c > 0.0) total += c;
  }
  if (total <= 0.0) return 0.0;
  // H = -sum p log2 p = log2(total) - (1/total) * sum c log2 c.
  double sum_xlogx = 0.0;
  for (double c : counts) {
    if (c > 0.0) sum_xlogx += XLog2X(c);
  }
  double h = std::log2(total) - sum_xlogx / total;
  // Clamp tiny negative rounding residue.
  return h < 0.0 ? 0.0 : h;
}

double NormalQuantile(double p) {
  UDT_CHECK(p > 0.0 && p < 1.0);
  // Peter Acklam's algorithm.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  const double p_high = 1.0 - p_low;
  double q, r;
  if (p < p_low) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= p_high) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
            1.0);
  }
  q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

double PessimisticErrorCount(double errors, double total, double cf) {
  UDT_CHECK(total > 0.0);
  UDT_CHECK(errors >= -kMassEpsilon && errors <= total + kMassEpsilon);
  UDT_CHECK(cf > 0.0 && cf < 1.0);
  if (errors < 0.0) errors = 0.0;
  if (errors > total) errors = total;
  // C4.5 special-cases a clean node: the upper bound solves
  // (1 - e)^total = cf.
  if (errors < kMassEpsilon) {
    return total * (1.0 - std::pow(cf, 1.0 / total));
  }
  // Otherwise the one-sided normal approximation to the binomial.
  double z = NormalQuantile(1.0 - cf);
  double f = errors / total;
  double z2 = z * z;
  double upper =
      (f + z2 / (2.0 * total) +
       z * std::sqrt(f / total - f * f / total + z2 / (4.0 * total * total))) /
      (1.0 + z2 / total);
  if (upper > 1.0) upper = 1.0;
  return upper * total;
}

double GiniFromCounts(const std::vector<double>& counts) {
  return GiniGivenTotal(counts, SumPositiveCounts(counts));
}

double SumPositiveCounts(const std::vector<double>& counts) {
  double total = 0.0;
  for (double c : counts) {
    UDT_DCHECK(c >= -kMassEpsilon);
    if (c > 0.0) total += c;
  }
  return total;
}

void FusedEntropyFromCounts(const std::vector<double>& counts,
                            double* total_out, double* entropy_out) {
  // One pass, two independent sequential accumulators: `total` receives
  // exactly the adds of SumPositiveCounts and `sum_xlogx` exactly the adds
  // of EntropyFromCounts' second loop, each in the original order, so both
  // outputs are bitwise-identical to the unfused pair.
  double total = 0.0;
  double sum_xlogx = 0.0;
  for (double c : counts) {
    UDT_DCHECK(c >= -kMassEpsilon);
    if (c > 0.0) {
      total += c;
      sum_xlogx += XLog2X(c);
    }
  }
  *total_out = total;
  if (total <= 0.0) {
    *entropy_out = 0.0;
    return;
  }
  double h = std::log2(total) - sum_xlogx / total;
  *entropy_out = h < 0.0 ? 0.0 : h;
}

double GiniGivenTotal(const std::vector<double>& counts, double total) {
  if (total <= 0.0) return 0.0;
  double sum_sq = 0.0;
  for (double c : counts) {
    if (c > 0.0) sum_sq += (c / total) * (c / total);
  }
  double g = 1.0 - sum_sq;
  return g < 0.0 ? 0.0 : g;
}

double EntropyFromPair(double a, double b) {
  // Replays EntropyFromCounts({a, b}) without the vector: same filters,
  // same add order, same formula.
  double total = 0.0;
  if (a > 0.0) total += a;
  if (b > 0.0) total += b;
  if (total <= 0.0) return 0.0;
  double sum_xlogx = 0.0;
  if (a > 0.0) sum_xlogx += XLog2X(a);
  if (b > 0.0) sum_xlogx += XLog2X(b);
  double h = std::log2(total) - sum_xlogx / total;
  return h < 0.0 ? 0.0 : h;
}

}  // namespace udt
