// Deterministic pseudo-random number generation.
//
// All stochastic components of the library (data generators, uncertainty
// injection, end-point sampling experiments, cross-validation shuffles) draw
// from an explicitly seeded Rng so that every experiment is reproducible.

#ifndef UDT_COMMON_RANDOM_H_
#define UDT_COMMON_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

#include "common/logging.h"

namespace udt {

// A seedable PRNG wrapper around std::mt19937_64 with the distribution
// helpers the library needs. Not thread-safe; use one Rng per thread.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  // Uniformly distributed double in [lo, hi). Requires lo < hi.
  double Uniform(double lo, double hi);

  // Standard uniform in [0, 1).
  double Uniform01() { return Uniform(0.0, 1.0); }

  // Normally distributed double with the given mean and standard deviation.
  // Requires stddev >= 0.
  double Gaussian(double mean, double stddev);

  // Uniformly distributed integer in [0, n). Requires n > 0.
  int UniformInt(int n);

  // Uniformly distributed integer in [lo, hi] inclusive. Requires lo <= hi.
  int UniformIntRange(int lo, int hi);

  // Returns true with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  // Fisher-Yates shuffle of `values`.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    for (size_t i = values->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(static_cast<int>(i)));
      std::swap((*values)[i - 1], (*values)[j]);
    }
  }

  // Derives an independent child generator; useful for giving each
  // data set / fold / repetition its own stream.
  Rng Fork();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace udt

#endif  // UDT_COMMON_RANDOM_H_
