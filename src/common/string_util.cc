#include "common/string_util.h"

#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace udt {

std::vector<std::string> SplitString(std::string_view text, char delimiter) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      fields.emplace_back(text.substr(start));
      break;
    }
    fields.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return fields;
}

std::string_view TrimWhitespace(std::string_view text) {
  const char* kWhitespace = " \t\r\n\f\v";
  size_t begin = text.find_first_not_of(kWhitespace);
  if (begin == std::string_view::npos) return std::string_view();
  size_t end = text.find_last_not_of(kWhitespace);
  return text.substr(begin, end - begin + 1);
}

std::optional<double> ParseDouble(std::string_view text) {
  text = TrimWhitespace(text);
  if (text.empty()) return std::nullopt;
  std::string buffer(text);
  char* end = nullptr;
  double value = std::strtod(buffer.c_str(), &end);
  if (end != buffer.c_str() + buffer.size()) return std::nullopt;
  return value;
}

std::optional<int> ParseInt(std::string_view text) {
  text = TrimWhitespace(text);
  if (text.empty()) return std::nullopt;
  std::string buffer(text);
  char* end = nullptr;
  long value = std::strtol(buffer.c_str(), &end, 10);
  if (end != buffer.c_str() + buffer.size()) return std::nullopt;
  if (value < 0 || value > 2147483647L) return std::nullopt;
  return static_cast<int>(value);
}

std::optional<uint64_t> ParseUint64(std::string_view text) {
  text = TrimWhitespace(text);
  if (text.empty()) return std::nullopt;
  // strtoull silently accepts "-1" (wrapping) and "+1"; digits only here.
  for (char ch : text) {
    if (ch < '0' || ch > '9') return std::nullopt;
  }
  std::string buffer(text);
  char* end = nullptr;
  errno = 0;
  unsigned long long value = std::strtoull(buffer.c_str(), &end, 10);
  if (end != buffer.c_str() + buffer.size() || errno == ERANGE) {
    return std::nullopt;
  }
  return static_cast<uint64_t>(value);
}

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  int size = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  if (size < 0) {
    va_end(args_copy);
    return std::string();
  }
  std::string result(static_cast<size_t>(size), '\0');
  std::vsnprintf(result.data(), result.size() + 1, format, args_copy);
  va_end(args_copy);
  return result;
}

}  // namespace udt
