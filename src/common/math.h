// Small numeric helpers shared across the library: entropy-safe logarithms,
// compensated summation and floating-point comparison utilities.

#ifndef UDT_COMMON_MATH_H_
#define UDT_COMMON_MATH_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace udt {

// The tolerance used when comparing probability masses and dispersion
// values. Masses are sums of O(10^6) doubles in [0,1], so 1e-9 absolute
// tolerance is far above accumulated rounding error yet far below any
// meaningful mass.
inline constexpr double kMassEpsilon = 1e-9;

// x * log2(x) with the standard convention 0 * log2(0) = 0.
// Requires x >= 0 (negative x indicates a bookkeeping bug upstream; tiny
// negative values from rounding are clamped).
double XLog2X(double x);

// log2 with a guard: Log2Safe(0) returns 0 instead of -inf. Only meaningful
// in expressions of the form `count * Log2Safe(ratio)` where count == 0
// whenever ratio == 0.
double Log2Safe(double x);

// Shannon entropy (base 2) of non-negative weights; the weights need not be
// normalised. Returns 0 for an empty or all-zero input.
double EntropyFromCounts(const std::vector<double>& counts);

// Gini impurity 1 - sum((w_i / W)^2) of non-negative weights. Returns 0 for
// an empty or all-zero input.
double GiniFromCounts(const std::vector<double>& counts);

// ------------------------------------------------------------------------
// Fused single-pass forms used by the split-scoring hot loop
// (split/dispersion.cc). Each is bitwise-identical to the separate
// reference computation it replaces: the accumulators receive the same
// operands in the same order, only redundant passes over `counts` are
// merged. Tree construction is bitwise-deterministic across thread counts,
// so any reordering here would change built trees — don't "optimise" these
// into multi-accumulator/unrolled reductions.

// Sum of the strictly positive entries, in order — the total both
// EntropyFromCounts and GiniFromCounts compute internally.
double SumPositiveCounts(const std::vector<double>& counts);

// One pass computing both SumPositiveCounts(counts) and
// EntropyFromCounts(counts); results are bitwise-identical to the two
// separate calls.
void FusedEntropyFromCounts(const std::vector<double>& counts,
                            double* total_out, double* entropy_out);

// GiniFromCounts(counts) given a precomputed SumPositiveCounts(counts)
// (Gini inherently needs the total before its squared pass, so the best
// fusion is reusing the caller's total).
double GiniGivenTotal(const std::vector<double>& counts, double total);

// EntropyFromCounts({a, b}) without materialising the two-element vector
// (the gain-ratio split-info term, evaluated once per candidate split).
double EntropyFromPair(double a, double b);

// True if |a - b| <= eps.
inline bool AlmostEqual(double a, double b, double eps = kMassEpsilon) {
  return std::fabs(a - b) <= eps;
}

// SplitMix64 finaliser: full 64-bit avalanche in a few cycles. The one
// mixing function behind every deterministic stream derivation (per-node
// subspace tokens in core/node_build.cc, per-tree bag/subspace seeds in
// api/forest.cc) — keep a single copy so the streams can never diverge.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// Inverse of the standard normal CDF (Acklam's rational approximation,
// ~1e-9 absolute error). Requires 0 < p < 1. Used by the C4.5-style
// pessimistic-error upper bound in post-pruning.
double NormalQuantile(double p);

// C4.5's upper confidence bound on the error *count*: given `errors`
// observed misclassifications out of `total` (weighted) cases, returns the
// pessimistic error count at the given confidence level (C4.5's CF,
// default 0.25). Requires total > 0, 0 <= errors <= total, 0 < cf < 1.
double PessimisticErrorCount(double errors, double total, double cf);

// Kahan compensated summation; keeps class-mass prefix sums accurate over
// hundreds of thousands of sample points.
class KahanSum {
 public:
  void Add(double value) {
    double y = value - compensation_;
    double t = sum_ + y;
    compensation_ = (t - sum_) - y;
    sum_ = t;
  }

  double value() const { return sum_; }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

}  // namespace udt

#endif  // UDT_COMMON_MATH_H_
