// String helpers: splitting, trimming, printf-style formatting and number
// parsing used by the CSV reader and the bench/report printers.

#ifndef UDT_COMMON_STRING_UTIL_H_
#define UDT_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace udt {

// Splits `text` on `delimiter`; keeps empty fields ("a,,b" -> 3 fields).
std::vector<std::string> SplitString(std::string_view text, char delimiter);

// Removes leading and trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view text);

// Parses a double; returns nullopt on malformed input or trailing garbage.
std::optional<double> ParseDouble(std::string_view text);

// Parses a non-negative integer; returns nullopt on malformed input.
std::optional<int> ParseInt(std::string_view text);

// Parses a non-negative 64-bit integer (decimal); returns nullopt on
// malformed input, a sign character, or overflow.
std::optional<uint64_t> ParseUint64(std::string_view text);

// printf-style formatting into std::string.
std::string StrFormat(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace udt

#endif  // UDT_COMMON_STRING_UTIL_H_
