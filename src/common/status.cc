#include "common/status.h"

namespace udt {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  result += ": ";
  result += message_;
  return result;
}

}  // namespace udt
