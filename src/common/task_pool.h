// A small work-stealing task pool for the deterministic parallel engines
// (tree construction in core/, attribute scans in split/). Tasks are plain
// callables grouped under a TaskGroup; a task may submit further tasks and
// wait on them, and any thread blocked in Wait() helps execute pending
// tasks, so nested fork/join never deadlocks.
//
// Scheduling: one deque per worker plus a shared inject queue for external
// submissions. A worker pops its own deque LIFO (hot caches, bounded queue
// growth on deep recursions) and steals FIFO from the front of other
// deques (the oldest entry is the largest pending subtree). Scheduling
// order is deliberately unobservable to the algorithms built on top: every
// engine in this codebase writes task results into disjoint slots and
// reduces them in a fixed order, which is what makes parallel tree builds
// bitwise-identical to serial ones.
//
// Locking tradeoff: a single pool mutex guards all deques, so the deques
// buy ordering (LIFO-own / FIFO-steal), not lock-freedom. That is the
// right trade while tasks are coarse — a subtree or a whole attribute
// scan, microseconds to milliseconds each, against ~100ns per lock
// round-trip. If profiles ever show the lock hot (many threads x tiny
// tasks), shard the mutex per deque before reaching for lock-free deques.

#ifndef UDT_COMMON_TASK_POOL_H_
#define UDT_COMMON_TASK_POOL_H_

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace udt {

class TaskPool;

// Tracks completion of a set of tasks. A group may only be waited on by
// one thread at a time and must outlive its tasks.
class TaskGroup {
 public:
  TaskGroup() = default;
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

 private:
  friend class TaskPool;
  // Guarded by the owning pool's mu_. Not expressible as a static
  // UDT_GUARDED_BY: the group learns its pool only at Submit time, and a
  // capability annotation must name a lockable object visible at the
  // field's declaration. Every access lives in TaskPool methods that hold
  // (or UDT_REQUIRES) mu_, which is where the analysis picks it up.
  int pending_ = 0;
};

class TaskPool {
 public:
  // Spawns `num_workers` worker threads (0 is valid: all tasks then run on
  // the threads that call Wait()).
  explicit TaskPool(int num_workers);

  // Joins the workers. Every submitted task must have been waited for.
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  // Maps the TreeConfig::num_threads convention to a worker-thread count:
  // <= 0 selects one per hardware thread, otherwise `requested` itself.
  static int EffectiveConcurrency(int requested);

  // Enqueues `task` under `group`. Safe to call from worker tasks (the
  // task lands on the submitting worker's own deque) and from external
  // threads (the shared inject queue).
  void Submit(TaskGroup* group, std::function<void()> task);

  // Returns once every task of `group` has finished. The calling thread
  // executes pending tasks (of any group) while it waits.
  void Wait(TaskGroup* group);

  // ------------------------------------------------------- parallel for
  //
  // The long-lived data-parallel primitive the serving sessions and the
  // training engines share. One call runs fn(slot, begin, end) over
  // contiguous chunks of [0, n) of at least `grain` indices each (the
  // last chunk may be shorter), using the calling thread plus up to
  // `parallelism - 1` pool workers, and returns when every index has run.
  //
  // Slots are stable per-thread scratch indices: pool workers own slots
  // 1..num_workers(), and the thread driving the loop runs under slot 0
  // when it is not a pool worker. Two chunks never run concurrently under
  // the same slot as long as at most one non-worker thread drives loops
  // on this pool at a time (the serving sessions guarantee that by being
  // single-caller); fn may therefore keep per-slot mutable scratch.
  //
  // Chunk-to-thread assignment is first-come first-served and deliberately
  // unobservable: callers must write results into disjoint, index-addressed
  // slots (the same contract every engine on this pool already follows),
  // which makes the output byte-identical for every worker count, grain
  // and parallelism.
  //
  // Chunks are over-decomposed relative to the width (several per
  // runner, never below `grain`), and runners claim them dynamically, so
  // heterogeneous per-index costs load-balance instead of serialising
  // behind an unlucky even split.
  //
  // The call allocates no per-index state: the loop descriptor lives on
  // the caller's stack and the helper tasks capture one pointer each, so
  // a warm steady state (same pool, batch after batch) creates no threads
  // and performs no per-tuple allocations.
  //
  // Returns the scheduled width: the maximum number of threads (caller
  // included) that may execute chunks. 1 when the loop ran inline; the
  // dynamic schedule may engage fewer threads, never more.
  template <typename Fn>
  int ParallelFor(size_t n, size_t grain, Fn&& fn) {
    return ParallelFor(n, grain, num_workers() + 1, std::forward<Fn>(fn));
  }

  // As above, but uses at most `parallelism` threads (caller included),
  // so one pool can serve requests of different widths.
  template <typename Fn>
  int ParallelFor(size_t n, size_t grain, int parallelism, Fn&& fn) {
    return ParallelForImpl(
        n, grain, parallelism,
        [](void* ctx, int slot, size_t begin, size_t end) {
          (*static_cast<std::remove_reference_t<Fn>*>(ctx))(slot, begin, end);
        },
        &fn);
  }

  // Highest slot value ParallelFor can pass, plus one (callers size their
  // per-slot scratch arrays with this).
  int num_slots() const { return num_workers() + 1; }

 private:
  struct Item {
    TaskGroup* group = nullptr;
    std::function<void()> task;
  };

  // Pops one task, preferring queue `self` back-first, then — only when
  // `may_steal` — the inject queue and the front of the other workers'
  // deques. Returns false when nothing poppable is available.
  bool PopTask(int self, Item* item, bool may_steal) UDT_REQUIRES(mu_);

  // Runs `item` (mu_ must not be held) and retires it from its group.
  void RunItem(Item item);

  void WorkerLoop(int worker_index);

  // Type-erased body of ParallelFor: chunks [0, n), submits helper tasks
  // that drain a shared atomic chunk counter, runs chunks on the calling
  // thread, and waits for the helpers. Returns the scheduled width.
  int ParallelForImpl(size_t n, size_t grain, int parallelism,
                      void (*invoke)(void*, int, size_t, size_t), void* ctx);

  Mutex mu_;
  CondVar cv_;  // signalled on submit and on completion
  // queues_[0 .. num_workers-1] are the worker deques; queues_.back() is
  // the inject queue (external submissions).
  std::vector<std::deque<Item>> queues_ UDT_GUARDED_BY(mu_);
  bool shutdown_ UDT_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace udt

#endif  // UDT_COMMON_TASK_POOL_H_
