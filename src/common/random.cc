#include "common/random.h"

namespace udt {

double Rng::Uniform(double lo, double hi) {
  UDT_DCHECK(lo < hi);
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::Gaussian(double mean, double stddev) {
  UDT_DCHECK(stddev >= 0.0);
  if (stddev == 0.0) return mean;
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

int Rng::UniformInt(int n) {
  UDT_DCHECK(n > 0);
  std::uniform_int_distribution<int> dist(0, n - 1);
  return dist(engine_);
}

int Rng::UniformIntRange(int lo, int hi) {
  UDT_DCHECK(lo <= hi);
  std::uniform_int_distribution<int> dist(lo, hi);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

Rng Rng::Fork() {
  uint64_t child_seed = engine_();
  // Avoid the degenerate all-zero seed.
  if (child_seed == 0) child_seed = 0x9e3779b97f4a7c15ULL;
  return Rng(child_seed);
}

}  // namespace udt
