// Clang thread-safety ("capability") annotation macros, after the scheme
// the Clang documentation and Abseil use. They turn the locking contracts
// this codebase states in comments ("guarded by mu_", "requires mu_ held")
// into compiler-checked facts: under clang, -Wthread-safety (enabled for
// every clang build by the top-level CMakeLists) proves at compile time
// that every access to a GUARDED_BY field happens with its mutex held and
// that REQUIRES/ACQUIRE/RELEASE contracts are honoured on every path —
// the annotation-based static race detection lineage (RacerD, Clang's
// capability analysis) moved into this repo's build.
//
// Under gcc (which has no capability analysis) every macro expands to
// nothing, so the annotations are free documentation there.
//
// Usage map (see common/mutex.h for the annotated primitives):
//   * UDT_GUARDED_BY(mu)    on a field: reads/writes need `mu` held.
//   * UDT_PT_GUARDED_BY(mu) on a pointer field: the pointee needs `mu`.
//   * UDT_REQUIRES(mu)      on a function: callers must hold `mu`.
//   * UDT_ACQUIRE/RELEASE   on lock/unlock-shaped functions.
//   * UDT_EXCLUDES(mu)      on a function: callers must NOT hold `mu`
//                           (deadlock documentation the analysis checks).
//   * UDT_NO_THREAD_SAFETY_ANALYSIS escapes the analysis for one
//     function; every use must carry a justification comment (enforced by
//     tools/check_source_conventions.py).

#ifndef UDT_COMMON_THREAD_ANNOTATIONS_H_
#define UDT_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define UDT_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define UDT_THREAD_ANNOTATION_(x)  // no-op outside clang
#endif

// On a class: instances are capabilities (lockable objects).
#define UDT_CAPABILITY(x) UDT_THREAD_ANNOTATION_(capability(x))

// On a class: RAII objects that acquire in the ctor, release in the dtor.
#define UDT_SCOPED_CAPABILITY UDT_THREAD_ANNOTATION_(scoped_lockable)

// On a data member: access requires the given capability held.
#define UDT_GUARDED_BY(x) UDT_THREAD_ANNOTATION_(guarded_by(x))

// On a pointer member: dereferencing requires the capability held.
#define UDT_PT_GUARDED_BY(x) UDT_THREAD_ANNOTATION_(pt_guarded_by(x))

// On a function: the caller must hold the capabilities on entry (held
// throughout, still held on exit).
#define UDT_REQUIRES(...) \
  UDT_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

// On a function: acquires the capabilities; they are held on return.
#define UDT_ACQUIRE(...) \
  UDT_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

// On a function: releases the capabilities; held on entry, not on return.
#define UDT_RELEASE(...) \
  UDT_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

// On a bool-returning function: acquires when the return value equals the
// first argument (e.g. UDT_TRY_ACQUIRE(true)).
#define UDT_TRY_ACQUIRE(...) \
  UDT_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

// On a function: the caller must NOT hold the capabilities (the function
// acquires them itself; holding them on entry would deadlock).
#define UDT_EXCLUDES(...) UDT_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

// On a function: returns a reference to the given capability (lets
// accessor-returned mutexes participate in the analysis).
#define UDT_RETURN_CAPABILITY(x) UDT_THREAD_ANNOTATION_(lock_returned(x))

// Escape hatch. Every use must carry an adjacent justification comment;
// the convention linter counts uses and the ISSUE-10 contract is zero
// unjustified escapes.
#define UDT_NO_THREAD_SAFETY_ANALYSIS \
  UDT_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // UDT_COMMON_THREAD_ANNOTATIONS_H_
