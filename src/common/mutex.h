// udt::Mutex / udt::MutexLock / udt::CondVar — the repo's annotated
// synchronisation primitives: thin, zero-overhead wrappers over the std
// equivalents that carry the thread-safety capability annotations from
// common/thread_annotations.h. Under clang's -Wthread-safety (on for every
// clang build) the compiler proves that each UDT_GUARDED_BY field is only
// touched with its mutex held; under gcc the wrappers compile to exactly
// the std primitives.
//
// Every locking site in the repo uses these wrappers; naked std::mutex /
// std::lock_guard / std::condition_variable outside this header are
// rejected by tools/check_source_conventions.py, so new concurrent code
// is annotated-by-construction.
//
// Condition-variable idiom. The analysis cannot see through predicate
// lambdas, so waits are written as explicit loops inside a function that
// holds the lock:
//
//   MutexLock lock(&mu_);          // mu_ held from here
//   while (!ready_) cv_.Wait(lock);  // ready_ is GUARDED_BY(mu_): checked
//
// CondVar::Wait takes the MutexLock (not the Mutex): it needs the lock
// object to release/reacquire atomically, and the capability stays
// logically held across the call — exactly how the analysis treats it.

#ifndef UDT_COMMON_MUTEX_H_
#define UDT_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace udt {

class CondVar;

// Annotated exclusive mutex. Prefer MutexLock over manual Lock/Unlock
// pairs; the manual surface exists for the rare split acquire/release and
// for TryLock.
class UDT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() UDT_ACQUIRE() { mu_.lock(); }
  void Unlock() UDT_RELEASE() { mu_.unlock(); }

  // Returns true (and holds the mutex) when the lock was free.
  bool TryLock() UDT_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

// RAII lock over a Mutex — the std::scoped_lock of this codebase, plus
// the capability annotations. Also the handle CondVar waits through.
class UDT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) UDT_ACQUIRE(mu) : lock_(mu->mu_) {}
  ~MutexLock() UDT_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

// Condition variable bound to Mutex/MutexLock. Signal with the mutex held
// or not; wait only through a live MutexLock on the guarding mutex.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases `lock`, blocks until notified, reacquires. The
  // capability is held again on return (and, for the analysis, throughout
  // — which is sound: the caller can observe no unlocked window).
  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  // As Wait, but returns false when `deadline` passed without a notify
  // (the lock is reacquired either way). Use in an explicit predicate
  // loop, same as Wait.
  bool WaitUntil(MutexLock& lock,
                 std::chrono::steady_clock::time_point deadline) {
    return cv_.wait_until(lock.lock_, deadline) == std::cv_status::no_timeout;
  }

  // Convenience deadline form: false on timeout.
  bool WaitFor(MutexLock& lock, std::chrono::microseconds timeout) {
    return cv_.wait_for(lock.lock_, timeout) == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace udt

#endif  // UDT_COMMON_MUTEX_H_
