#include "common/task_pool.h"

#include <algorithm>

#include "common/logging.h"

namespace udt {

namespace {

// Identifies the pool (if any) the current thread is a worker of, so
// Submit targets the worker's own deque and nested Wait calls keep popping
// LIFO from it.
struct WorkerIdentity {
  const TaskPool* pool = nullptr;
  int index = -1;
};

thread_local WorkerIdentity tls_worker;

// How many levels of help-executed tasks may stack up in nested Waits
// before a thread stops stealing from other deques. Stolen subtree tasks
// can themselves Wait and steal, so without a cap the recursion is bounded
// only by the number of large subtrees, not the tree depth; own-deque pops
// stay allowed at any depth (they are depth-first descent, bounded by the
// tree's max_depth) and they alone guarantee progress for the tasks a
// nested Wait is actually waiting on.
constexpr int kMaxNestedStealDepth = 4;

thread_local int tls_nested_exec_depth = 0;

// One ParallelFor invocation: lives on the caller's stack for the duration
// of the call (the caller blocks until every helper task retires, so the
// descriptor strictly outlives every reference to it). Helpers and the
// caller race on next_chunk to claim chunks; the claim is mere work
// partitioning, so relaxed ordering suffices — result visibility is
// provided by the group-retirement mutex the caller's Wait synchronises
// on.
struct ParallelLoop {
  const TaskPool* pool = nullptr;
  void (*invoke)(void*, int, size_t, size_t) = nullptr;
  void* ctx = nullptr;
  size_t n = 0;
  size_t chunk = 0;
  size_t num_chunks = 0;
  std::atomic<size_t> next_chunk{0};
};

// Claims and runs chunks until the loop is exhausted. The slot is the
// executing thread's identity on the loop's pool: worker index + 1 for
// that pool's workers, 0 for any other thread (see ParallelFor's contract
// in the header).
void RunLoopChunks(ParallelLoop* loop) {
  const int slot =
      tls_worker.pool == loop->pool ? tls_worker.index + 1 : 0;
  for (;;) {
    const size_t c = loop->next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (c >= loop->num_chunks) return;
    const size_t begin = c * loop->chunk;
    const size_t end = std::min(loop->n, begin + loop->chunk);
    loop->invoke(loop->ctx, slot, begin, end);
  }
}

}  // namespace

int TaskPool::EffectiveConcurrency(int requested) {
  if (requested > 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return std::max(1, static_cast<int>(hw));
}

TaskPool::TaskPool(int num_workers) {
  UDT_CHECK(num_workers >= 0);
  queues_.resize(static_cast<size_t>(num_workers) + 1);  // + inject queue
  workers_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

TaskPool::~TaskPool() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
  for (const std::deque<Item>& queue : queues_) UDT_CHECK(queue.empty());
}

void TaskPool::Submit(TaskGroup* group, std::function<void()> task) {
  UDT_DCHECK(group != nullptr);
  {
    MutexLock lock(&mu_);
    size_t queue_index = queues_.size() - 1;  // inject queue by default
    if (tls_worker.pool == this) {
      queue_index = static_cast<size_t>(tls_worker.index);
    }
    ++group->pending_;
    queues_[queue_index].push_back(Item{group, std::move(task)});
  }
  // NotifyAll, not NotifyOne: a steal-restricted nested waiter (see
  // kMaxNestedStealDepth) could otherwise consume the only wakeup meant
  // for an idle worker and strand the task.
  cv_.NotifyAll();
}

bool TaskPool::PopTask(int self, Item* item, bool may_steal) {
  const int num_queues = static_cast<int>(queues_.size());
  // Own queue, newest first: depth-first over freshly spawned subtasks.
  // For external threads (self < 0) the inject queue is "own" — their
  // submissions land there, and a steal-capped nested Wait must still be
  // able to pop the subtasks it is waiting for (liveness: a waited-on
  // task is always in the waiter's own queue or already executing).
  const size_t own = self >= 0 ? static_cast<size_t>(self)
                               : queues_.size() - 1;
  if (!queues_[own].empty()) {
    *item = std::move(queues_[own].back());
    queues_[own].pop_back();
    return true;
  }
  if (!may_steal) return false;
  // Inject queue, then steal the oldest entry of any other deque.
  for (int offset = 0; offset < num_queues; ++offset) {
    size_t q = static_cast<size_t>((num_queues - 1 + offset) % num_queues);
    if (q == own || queues_[q].empty()) continue;
    *item = std::move(queues_[q].front());
    queues_[q].pop_front();
    return true;
  }
  return false;
}

void TaskPool::RunItem(Item item) {
  item.task();
  bool group_done = false;
  {
    MutexLock lock(&mu_);
    UDT_DCHECK(item.group->pending_ > 0);
    group_done = --item.group->pending_ == 0;
  }
  // Completion can unblock a Wait; submissions inside the task already
  // notified. NotifyAll: several threads may wait on different groups.
  if (group_done) cv_.NotifyAll();
}

void TaskPool::WorkerLoop(int worker_index) {
  tls_worker = {this, worker_index};
  for (;;) {
    Item item;
    {
      // Explicit predicate loop (not a wait-with-lambda): the capability
      // analysis checks shutdown_/PopTask accesses only when they sit
      // syntactically under the held lock.
      MutexLock lock(&mu_);
      while (!shutdown_ &&
             !PopTask(worker_index, &item, /*may_steal=*/true)) {
        cv_.Wait(lock);
      }
      if (item.task == nullptr) return;  // shutdown with empty queues
    }
    RunItem(std::move(item));
  }
}

void TaskPool::Wait(TaskGroup* group) {
  UDT_DCHECK(group != nullptr);
  // A worker blocked in a nested Wait keeps draining its own deque first;
  // external callers pop the inject queue and steal. Deeply nested waits
  // stop stealing so help-execution cannot pile unbounded frames onto the
  // stack.
  const int self = tls_worker.pool == this ? tls_worker.index : -1;
  const bool may_steal = tls_nested_exec_depth < kMaxNestedStealDepth;
  for (;;) {
    Item item;
    {
      MutexLock lock(&mu_);
      if (group->pending_ == 0) return;
      while (!PopTask(self, &item, may_steal)) {
        cv_.Wait(lock);
        if (group->pending_ == 0) return;  // group completed elsewhere
      }
    }
    ++tls_nested_exec_depth;
    RunItem(std::move(item));
    --tls_nested_exec_depth;
  }
}

int TaskPool::ParallelForImpl(size_t n, size_t grain, int parallelism,
                              void (*invoke)(void*, int, size_t, size_t),
                              void* ctx) {
  if (n == 0) return 1;
  if (grain == 0) grain = 1;
  if (parallelism < 1) parallelism = 1;
  if (parallelism > num_slots()) parallelism = num_slots();

  // Chunk length: over-decompose to several chunks per allowed runner —
  // dynamically claimed, so one expensive index (a wide categorical
  // attribute scan, a deep-tree tuple) cannot strand the rest of a big
  // even share on a single thread — clamped up to the grain so tiny
  // loops occupy few threads instead of fanning a handful of indices
  // across every worker.
  constexpr size_t kChunksPerRunner = 4;
  const size_t target_chunks =
      static_cast<size_t>(parallelism) * kChunksPerRunner;
  size_t chunk = (n + target_chunks - 1) / target_chunks;
  if (chunk < grain) chunk = grain;
  const size_t num_chunks = (n + chunk - 1) / chunk;

  const int caller_slot =
      tls_worker.pool == this ? tls_worker.index + 1 : 0;
  if (num_chunks <= 1 || workers_.empty()) {
    invoke(ctx, caller_slot, 0, n);
    return 1;
  }

  ParallelLoop loop;
  loop.pool = this;
  loop.invoke = invoke;
  loop.ctx = ctx;
  loop.n = n;
  loop.chunk = chunk;
  loop.num_chunks = num_chunks;
  ParallelLoop* shared = &loop;

  // The caller drains chunks too, so num_chunks - 1 helpers always
  // suffice; capping at parallelism - 1 enforces the caller's width. The
  // helper closure captures a single pointer — small enough for
  // std::function's inline storage, so submitting helpers allocates
  // nothing. All helpers are enqueued under one lock acquisition (they
  // are identical; per-item Submit calls would just multiply the lock
  // and notify traffic this primitive exists to avoid).
  const size_t helpers =
      std::min(num_chunks - 1, static_cast<size_t>(parallelism - 1));
  TaskGroup group;
  {
    MutexLock lock(&mu_);
    size_t queue_index = queues_.size() - 1;  // inject queue by default
    if (tls_worker.pool == this) {
      queue_index = static_cast<size_t>(tls_worker.index);
    }
    for (size_t h = 0; h < helpers; ++h) {
      ++group.pending_;
      queues_[queue_index].push_back(
          Item{&group, [shared] { RunLoopChunks(shared); }});
    }
  }
  cv_.NotifyAll();

  RunLoopChunks(shared);
  // Any helper popped after the chunk counter ran dry retires immediately;
  // Wait also lets the caller drain helpers still sitting in its own
  // queue, so a fully-busy pool cannot stall the loop.
  Wait(&group);
  return 1 + static_cast<int>(helpers);
}

}  // namespace udt
