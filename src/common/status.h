// Status: error signalling without exceptions, in the style used by
// database engines (RocksDB, Arrow). Functions that can fail for reasons
// other than programming errors return Status (or StatusOr<T>,
// see common/statusor.h).

#ifndef UDT_COMMON_STATUS_H_
#define UDT_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace udt {

// Broad error categories. Kept deliberately small; the message carries the
// detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kIOError,
  kInternal,
  // The operation cannot be served right now (admission queue full or
  // closed, no live model version); the caller may retry later or shed
  // load. Serving-front-end analogue of gRPC UNAVAILABLE.
  kUnavailable,
};

// Returns a short human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

// Value type describing the outcome of an operation. Cheap to copy when OK.
// [[nodiscard]]: silently dropping a Status is how IO and validation
// failures turn into downstream corruption; a call site that genuinely
// wants to ignore one must say so with a justified `(void)` cast (the
// repo convention — see tools/check_source_conventions.py).
class [[nodiscard]] Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  // Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace udt

// Propagates a non-OK Status to the caller. For use inside functions that
// themselves return Status.
#define UDT_RETURN_NOT_OK(expr)          \
  do {                                   \
    ::udt::Status _st = (expr);          \
    if (!_st.ok()) return _st;           \
  } while (false)

#endif  // UDT_COMMON_STATUS_H_
