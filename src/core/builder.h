// TreeBuilder: the top-down greedy construction shared by AVG and all UDT
// variants (Sections 4.1-4.2). At each node the configured SplitFinder
// proposes the best numerical split, categorical attributes are scored by
// the Section 7.2 rule, the working set is partitioned into fractional
// tuples and the children are built recursively.
//
// Construction is parallel under TreeConfig::num_threads: independent
// subtrees build concurrently on a work-stealing task pool and large nodes
// fan their per-attribute split scans out as subtasks (see the scheduler
// notes in core/builder.cc). The built tree is bitwise-identical for every
// thread count.

#ifndef UDT_CORE_BUILDER_H_
#define UDT_CORE_BUILDER_H_

#include "common/statusor.h"
#include "core/config.h"
#include "split/split_finder.h"
#include "table/dataset.h"
#include "tree/tree.h"

namespace udt {

// Work and structure statistics of one build.
struct BuildStats {
  SplitCounters counters;       // accumulated over every node
  int nodes = 0;                // before post-pruning
  int leaves = 0;               // before post-pruning
  int subtrees_collapsed = 0;   // by post-pruning
  double build_seconds = 0.0;   // wall-clock, excludes data preparation

  // Field-wise accumulation — the one merge used by the parallel
  // scheduler, the forest trainer and cross-validation totals alike.
  BuildStats& operator+=(const BuildStats& other) {
    counters += other.counters;
    nodes += other.nodes;
    leaves += other.leaves;
    subtrees_collapsed += other.subtrees_collapsed;
    build_seconds += other.build_seconds;
    return *this;
  }
};

// Builds decision trees from uncertain data sets under a fixed config.
class TreeBuilder {
 public:
  explicit TreeBuilder(TreeConfig config);

  // Trains a tree on `train`. Fails on an empty data set or invalid
  // config. `stats` may be null.
  StatusOr<DecisionTree> Build(const Dataset& train,
                               BuildStats* stats) const;

  // Trains a tree on `train` with per-tuple root weights — the bagged-
  // ensemble entry point (api/forest.h): weights[i] is tuple i's bootstrap
  // multiplicity, and tuples with weight <= 0 take no part in the build.
  // Requires one finite non-negative weight per tuple, at least one of
  // them positive. `stats` may be null.
  StatusOr<DecisionTree> BuildWeighted(const Dataset& train,
                                       const std::vector<double>& weights,
                                       BuildStats* stats) const;

  const TreeConfig& config() const { return config_; }

 private:
  // Shared implementation: grows the tree from an already-formed root
  // working set, serial or pooled per the config, then post-prunes.
  StatusOr<DecisionTree> BuildFromRoot(const Dataset& train,
                                       WorkingSet root_set,
                                       BuildStats* stats) const;

  TreeConfig config_;
};

}  // namespace udt

#endif  // UDT_CORE_BUILDER_H_
