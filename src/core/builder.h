// TreeBuilder: the top-down greedy construction shared by AVG and all UDT
// variants (Sections 4.1-4.2). At each node the configured SplitFinder
// proposes the best numerical split, categorical attributes are scored by
// the Section 7.2 rule, the working set is partitioned into fractional
// tuples and the children are built recursively.
//
// Construction is parallel under TreeConfig::num_threads: independent
// subtrees build concurrently on a work-stealing task pool and large nodes
// fan their per-attribute split scans out as subtasks (see the scheduler
// notes in core/builder.cc). The built tree is bitwise-identical for every
// thread count.

#ifndef UDT_CORE_BUILDER_H_
#define UDT_CORE_BUILDER_H_

#include "common/statusor.h"
#include "core/config.h"
#include "split/split_finder.h"
#include "table/dataset.h"
#include "tree/tree.h"

namespace udt {

// Work and structure statistics of one build.
struct BuildStats {
  SplitCounters counters;       // accumulated over every node
  int nodes = 0;                // before post-pruning
  int leaves = 0;               // before post-pruning
  int subtrees_collapsed = 0;   // by post-pruning
  double build_seconds = 0.0;   // wall-clock, excludes data preparation
};

// Builds decision trees from uncertain data sets under a fixed config.
class TreeBuilder {
 public:
  explicit TreeBuilder(TreeConfig config);

  // Trains a tree on `train`. Fails on an empty data set or invalid
  // config. `stats` may be null.
  StatusOr<DecisionTree> Build(const Dataset& train,
                               BuildStats* stats) const;

  const TreeConfig& config() const { return config_; }

 private:
  TreeConfig config_;
};

}  // namespace udt

#endif  // UDT_CORE_BUILDER_H_
