#include "core/node_build.h"

#include <utility>

#include "common/logging.h"
#include "common/math.h"
#include "core/builder.h"
#include "split/categorical.h"
#include "split/fractional_tuple.h"

namespace udt {

namespace {

bool IsPure(const std::vector<double>& counts) {
  int with_mass = 0;
  for (double c : counts) {
    if (c > kMassEpsilon) ++with_mass;
  }
  return with_mass <= 1;
}

void FillNodeStatistics(TreeNode* node, std::vector<double> counts) {
  double total = 0.0;
  for (double c : counts) total += c;
  node->distribution.assign(counts.size(), 0.0);
  if (total > 0.0) {
    for (size_t c = 0; c < counts.size(); ++c) {
      node->distribution[c] = counts[c] / total;
    }
  } else {
    for (double& d : node->distribution) {
      d = 1.0 / static_cast<double>(node->distribution.size());
    }
  }
  node->class_counts = std::move(counts);
}

}  // namespace

uint64_t ChildNodeToken(uint64_t parent_token, int child_index) {
  // Multiply-then-mix keeps sibling tokens and cousin tokens decorrelated;
  // the odd multiplier makes (parent, index) -> pre-mix input injective.
  return SplitMix64(parent_token * 0x100000001B3ULL +
                    static_cast<uint64_t>(child_index) + 1);
}

std::vector<uint8_t> SampleAttributeSubspace(uint64_t seed, uint64_t token,
                                             int num_attributes, int k) {
  UDT_DCHECK(k > 0 && k < num_attributes);
  // Partial Fisher-Yates over the attribute ids, driven by a SplitMix64
  // stream: pure function of (seed, token), no engine state to construct.
  uint64_t state = SplitMix64(seed ^ token);
  std::vector<int> order(static_cast<size_t>(num_attributes));
  for (int j = 0; j < num_attributes; ++j) order[static_cast<size_t>(j)] = j;
  std::vector<uint8_t> mask(static_cast<size_t>(num_attributes), 0);
  for (int i = 0; i < k; ++i) {
    state = SplitMix64(state);
    const int j =
        i + static_cast<int>(state % static_cast<uint64_t>(num_attributes - i));
    std::swap(order[static_cast<size_t>(i)], order[static_cast<size_t>(j)]);
    mask[static_cast<size_t>(order[static_cast<size_t>(i)])] = 1;
  }
  return mask;
}

std::unique_ptr<TreeNode> MakeFallbackLeaf(const std::vector<double>& counts,
                                           BuildStats* stats) {
  auto child = std::make_unique<TreeNode>();
  FillNodeStatistics(child.get(), counts);
  ++stats->nodes;
  ++stats->leaves;
  return child;
}

NodeDecision DecideNode(const NodeBuildContext& ctx, const WorkingSet& set,
                        int depth, const std::vector<bool>& used_categorical,
                        uint64_t node_token, TaskPool* scan_pool,
                        BuildStats* stats) {
  const Dataset& data = *ctx.data;
  const TreeConfig& config = *ctx.config;

  NodeDecision decision;
  decision.node = std::make_unique<TreeNode>();
  TreeNode* node = decision.node.get();

  std::vector<double> counts = ClassCounts(data, set, data.num_classes());
  double total = 0.0;
  for (double c : counts) total += c;
  FillNodeStatistics(node, counts);
  ++stats->nodes;

  // Stopping rules (pre-pruning).
  if (depth >= config.max_depth || total < config.min_split_weight ||
      IsPure(node->class_counts) || set.empty()) {
    ++stats->leaves;
    return decision;
  }

  SplitScorer scorer(config.measure, node->class_counts);

  // Random-subspace restriction: sample this node's attribute mask from
  // its (seed, token) stream — a pure function of the node's root path,
  // so the chosen subspace is schedule-independent.
  SplitOptions options = ctx.split_options;
  std::vector<uint8_t> subspace_mask;
  if (config.subspace_attributes > 0 &&
      config.subspace_attributes < data.num_attributes()) {
    subspace_mask =
        SampleAttributeSubspace(config.subspace_seed, node_token,
                                data.num_attributes(),
                                config.subspace_attributes);
    options.attribute_mask = &subspace_mask;
  }

  // Best numerical split; the per-attribute scans run as `scan_pool` tasks
  // when the scheduler hands one in.
  SplitCandidate best = ctx.finder->FindBestSplit(
      data, set, scorer, options, &stats->counters, scan_pool);

  // Categorical candidates (Section 7.2); an attribute used by an ancestor
  // cannot yield further gain and is skipped.
  int best_categorical = -1;
  for (int j = 0; j < data.num_attributes(); ++j) {
    if (data.schema().attribute(j).kind != AttributeKind::kCategorical) {
      continue;
    }
    if (used_categorical[static_cast<size_t>(j)]) continue;
    if (!options.AttributeAllowed(j)) continue;
    CategoricalSplitResult result = EvaluateCategoricalSplit(
        data, set, j, scorer, options, &stats->counters);
    if (!result.valid) continue;
    SplitCandidate candidate;
    candidate.valid = true;
    candidate.attribute = j;
    candidate.split_point = 0.0;
    candidate.score = result.score;
    if (!best.valid || candidate.BetterThan(best)) {
      best = candidate;
      best_categorical = j;
    }
  }

  if (!best.valid || scorer.GainForScore(best.score) < config.min_gain) {
    ++stats->leaves;
    return decision;
  }

  if (best_categorical >= 0) {
    int num_categories =
        data.schema().attribute(best_categorical).num_categories;
    PartitionWorkingSetCategorical(data, set, best_categorical,
                                   num_categories, &decision.buckets);
    int populated = 0;
    for (const WorkingSet& bucket : decision.buckets) {
      if (!bucket.empty()) ++populated;
    }
    if (populated < 2) {  // degenerate in practice; make a leaf
      decision.buckets.clear();
      ++stats->leaves;
      return decision;
    }
    node->attribute = best_categorical;
    node->is_categorical = true;
    decision.kind = NodeDecision::Kind::kCategorical;
    decision.categorical_attribute = best_categorical;
    return decision;
  }

  PartitionWorkingSet(data, set, best.attribute, best.split_point,
                      &decision.left, &decision.right);
  if (decision.left.empty() || decision.right.empty()) {
    // Guarded against by min_side_mass, but weight drops of micro-fragments
    // can in principle empty a side; fall back to a leaf.
    decision.left.clear();
    decision.right.clear();
    ++stats->leaves;
    return decision;
  }

  node->attribute = best.attribute;
  node->is_categorical = false;
  node->split_point = best.split_point;
  decision.kind = NodeDecision::Kind::kNumerical;
  return decision;
}

}  // namespace udt
