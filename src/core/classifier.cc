// Implementation of the DEPRECATED classifier shims. TupleToMeans itself
// lives in table/dataset.cc now.

#include "core/classifier.h"

#include "tree/classify.h"

namespace udt {

StatusOr<UncertainTreeClassifier> UncertainTreeClassifier::Train(
    const Dataset& train, const TreeConfig& config, BuildStats* stats) {
  TreeBuilder builder(config);
  UDT_ASSIGN_OR_RETURN(DecisionTree tree, builder.Build(train, stats));
  return UncertainTreeClassifier(std::move(tree));
}

UncertainTreeClassifier::UncertainTreeClassifier(DecisionTree tree)
    : tree_(std::make_shared<const DecisionTree>(std::move(tree))) {}

std::vector<double> UncertainTreeClassifier::ClassifyDistribution(
    const UncertainTuple& tuple) const {
  return udt::ClassifyDistribution(*tree_, tuple);
}

int UncertainTreeClassifier::Predict(const UncertainTuple& tuple) const {
  return PredictLabel(*tree_, tuple);
}

StatusOr<AveragingClassifier> AveragingClassifier::Train(
    const Dataset& train, const TreeConfig& config, BuildStats* stats) {
  TreeConfig avg_config = config;
  avg_config.algorithm = SplitAlgorithm::kAvg;
  TreeBuilder builder(avg_config);
  UDT_ASSIGN_OR_RETURN(DecisionTree tree,
                       builder.Build(train.ToMeans(), stats));
  return AveragingClassifier(std::move(tree));
}

AveragingClassifier::AveragingClassifier(DecisionTree tree)
    : tree_(std::make_shared<const DecisionTree>(std::move(tree))) {}

std::vector<double> AveragingClassifier::ClassifyDistribution(
    const UncertainTuple& tuple) const {
  return udt::ClassifyDistribution(*tree_, TupleToMeans(tuple));
}

int AveragingClassifier::Predict(const UncertainTuple& tuple) const {
  return PredictLabel(*tree_, TupleToMeans(tuple));
}

}  // namespace udt
