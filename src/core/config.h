// Configuration of the tree-building pipeline: which split-search
// algorithm, which dispersion measure, and the pre-/post-pruning knobs of
// the C4.5 framework the paper builds on.

#ifndef UDT_CORE_CONFIG_H_
#define UDT_CORE_CONFIG_H_

#include <cstdint>
#include <string>

#include "common/statusor.h"
#include "split/dispersion.h"
#include "split/split_finder.h"
#include "tree/post_prune.h"

namespace udt {

struct TreeConfig {
  // Split-search algorithm. All UDT variants build the same tree (safe
  // pruning); they differ only in construction cost. kAvg is meaningful on
  // means-reduced data (see Trainer::TrainAveraging).
  SplitAlgorithm algorithm = SplitAlgorithm::kUdtEs;

  DispersionMeasure measure = DispersionMeasure::kEntropy;

  // Pre-pruning: stop growing when a node is deeper than max_depth, lighter
  // than min_split_weight, or the best split gains less than min_gain.
  int max_depth = 64;
  double min_split_weight = 4.0;
  double min_gain = 1e-9;

  // Post-pruning (C4.5 pessimistic-error pruning).
  bool post_prune = true;
  double pruning_confidence = 0.25;

  // Training parallelism: total threads the construction engine may use
  // (including the calling thread). 1 = serial; 0 = one per hardware
  // thread; N > 1 = exactly N. The built tree is bitwise-identical for
  // every value — the engine fixes its accumulation and tie-break orders
  // independently of the schedule (see tests/builder_determinism_test.cc).
  int num_threads = 1;

  // Random-subspace construction (forest diversification, api/forest.h):
  // when > 0, every node's split search draws this many attributes without
  // replacement from a deterministic per-node stream (seeded by
  // subspace_seed and the node's root-path position) and considers only
  // those. 0 = consider every attribute, the single-tree default. Values
  // >= the attribute count behave like 0.
  int subspace_attributes = 0;
  uint64_t subspace_seed = 0;

  // Knobs forwarded to the split finders (the measure is copied in by the
  // builder; leave split_options.measure untouched).
  SplitOptions split_options;

  // Validates parameter ranges.
  Status Validate() const;

  // One-line description for experiment logs.
  std::string ToString() const;
};

}  // namespace udt

#endif  // UDT_CORE_CONFIG_H_
