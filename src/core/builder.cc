#include "core/builder.h"

#include <algorithm>
#include <memory>

#include "common/logging.h"
#include "common/math.h"
#include "common/timer.h"
#include "split/categorical.h"
#include "split/fractional_tuple.h"
#include "tree/post_prune.h"

namespace udt {

namespace {

// Recursive construction state shared across one Build call.
struct BuildContext {
  const Dataset* data = nullptr;
  const TreeConfig* config = nullptr;
  const SplitFinder* finder = nullptr;
  SplitOptions split_options;
  BuildStats* stats = nullptr;
};

bool IsPure(const std::vector<double>& counts) {
  int with_mass = 0;
  for (double c : counts) {
    if (c > kMassEpsilon) ++with_mass;
  }
  return with_mass <= 1;
}

void FillNodeStatistics(TreeNode* node, std::vector<double> counts) {
  double total = 0.0;
  for (double c : counts) total += c;
  node->distribution.assign(counts.size(), 0.0);
  if (total > 0.0) {
    for (size_t c = 0; c < counts.size(); ++c) {
      node->distribution[c] = counts[c] / total;
    }
  } else {
    for (double& d : node->distribution) {
      d = 1.0 / static_cast<double>(node->distribution.size());
    }
  }
  node->class_counts = std::move(counts);
}

std::unique_ptr<TreeNode> BuildNode(const BuildContext& ctx,
                                    const WorkingSet& set, int depth,
                                    std::vector<bool>* used_categorical) {
  const Dataset& data = *ctx.data;
  const TreeConfig& config = *ctx.config;

  auto node = std::make_unique<TreeNode>();
  std::vector<double> counts = ClassCounts(data, set, data.num_classes());
  double total = 0.0;
  for (double c : counts) total += c;
  FillNodeStatistics(node.get(), counts);
  ++ctx.stats->nodes;

  // Stopping rules (pre-pruning).
  if (depth >= config.max_depth || total < config.min_split_weight ||
      IsPure(node->class_counts) || set.empty()) {
    ++ctx.stats->leaves;
    return node;
  }

  SplitScorer scorer(config.measure, node->class_counts);

  // Best numerical split.
  SplitCandidate best = ctx.finder->FindBestSplit(
      data, set, scorer, ctx.split_options, &ctx.stats->counters);

  // Categorical candidates (Section 7.2); an attribute used by an ancestor
  // cannot yield further gain and is skipped.
  int best_categorical = -1;
  for (int j = 0; j < data.num_attributes(); ++j) {
    if (data.schema().attribute(j).kind != AttributeKind::kCategorical) {
      continue;
    }
    if ((*used_categorical)[static_cast<size_t>(j)]) continue;
    CategoricalSplitResult result = EvaluateCategoricalSplit(
        data, set, j, scorer, ctx.split_options, &ctx.stats->counters);
    if (!result.valid) continue;
    SplitCandidate candidate;
    candidate.valid = true;
    candidate.attribute = j;
    candidate.split_point = 0.0;
    candidate.score = result.score;
    if (!best.valid || candidate.BetterThan(best)) {
      best = candidate;
      best_categorical = j;
    }
  }

  if (!best.valid ||
      scorer.GainForScore(best.score) < config.min_gain) {
    ++ctx.stats->leaves;
    return node;
  }

  if (best_categorical >= 0) {
    int num_categories =
        data.schema().attribute(best_categorical).num_categories;
    std::vector<WorkingSet> buckets;
    PartitionWorkingSetCategorical(data, set, best_categorical,
                                   num_categories, &buckets);
    int populated = 0;
    for (const WorkingSet& bucket : buckets) {
      if (!bucket.empty()) ++populated;
    }
    if (populated < 2) {  // degenerate in practice; make a leaf
      ++ctx.stats->leaves;
      return node;
    }
    node->attribute = best_categorical;
    node->is_categorical = true;
    (*used_categorical)[static_cast<size_t>(best_categorical)] = true;
    node->children.reserve(static_cast<size_t>(num_categories));
    for (WorkingSet& bucket : buckets) {
      if (bucket.empty()) {
        // Unreached category: predict with the parent distribution.
        auto child = std::make_unique<TreeNode>();
        FillNodeStatistics(child.get(), node->class_counts);
        ++ctx.stats->nodes;
        ++ctx.stats->leaves;
        node->children.push_back(std::move(child));
      } else {
        node->children.push_back(
            BuildNode(ctx, bucket, depth + 1, used_categorical));
      }
    }
    (*used_categorical)[static_cast<size_t>(best_categorical)] = false;
    return node;
  }

  WorkingSet left, right;
  PartitionWorkingSet(data, set, best.attribute, best.split_point, &left,
                      &right);
  if (left.empty() || right.empty()) {
    // Guarded against by min_side_mass, but weight drops of micro-fragments
    // can in principle empty a side; fall back to a leaf.
    ++ctx.stats->leaves;
    return node;
  }

  node->attribute = best.attribute;
  node->is_categorical = false;
  node->split_point = best.split_point;
  node->left = BuildNode(ctx, left, depth + 1, used_categorical);
  node->right = BuildNode(ctx, right, depth + 1, used_categorical);
  return node;
}

}  // namespace

TreeBuilder::TreeBuilder(TreeConfig config) : config_(std::move(config)) {}

StatusOr<DecisionTree> TreeBuilder::Build(const Dataset& train,
                                          BuildStats* stats) const {
  UDT_RETURN_NOT_OK(config_.Validate());
  if (train.empty()) {
    return Status::InvalidArgument("cannot build a tree on an empty data set");
  }

  BuildStats local_stats;
  BuildContext ctx;
  ctx.data = &train;
  ctx.config = &config_;
  std::unique_ptr<SplitFinder> finder = MakeSplitFinder(config_.algorithm);
  ctx.finder = finder.get();
  ctx.split_options = config_.split_options;
  ctx.split_options.measure = config_.measure;
  ctx.stats = stats != nullptr ? stats : &local_stats;

  WallTimer timer;
  WorkingSet root_set = MakeRootWorkingSet(train);
  std::vector<bool> used_categorical(
      static_cast<size_t>(train.num_attributes()), false);
  std::unique_ptr<TreeNode> root =
      BuildNode(ctx, root_set, /*depth=*/0, &used_categorical);

  DecisionTree tree(train.schema(), std::move(root));
  if (config_.post_prune) {
    PostPruneOptions prune_options;
    prune_options.confidence = config_.pruning_confidence;
    PostPruneStats prune_stats = PostPruneTree(&tree, prune_options);
    ctx.stats->subtrees_collapsed = prune_stats.subtrees_collapsed;
  }
  ctx.stats->build_seconds = timer.ElapsedSeconds();
  return tree;
}

}  // namespace udt
