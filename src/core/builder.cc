// The construction scheduler. Per-node work (statistics, split search,
// partitioning) lives in core/node_build.cc; this file decides *where*
// each node is built:
//
//   num_threads == 1  - the classical depth-first recursion.
//   num_threads != 1  - a work-stealing task pool. Every subtree whose
//     working set is large enough becomes a pool task that writes its
//     result into a dedicated child slot of the already-allocated parent
//     node; large nodes additionally fan their per-attribute split scans
//     out as subtasks of the same pool.
//
// Both paths execute the same per-node function with the same fixed
// accumulation and tie-break order, so the resulting tree is
// bitwise-identical for every thread count (tests/builder_determinism_test
// serialises and compares the bytes).

#include "core/builder.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "common/logging.h"
#include "common/mutex.h"
#include "common/task_pool.h"
#include "common/timer.h"
#include "core/node_build.h"
#include "split/fractional_tuple.h"
#include "tree/post_prune.h"

namespace udt {

namespace {

// Subtrees below this many fractional tuples are built inline by whichever
// worker holds them: the task-queue overhead would outweigh the work.
constexpr size_t kMinTuplesForSubtreeTask = 48;

// Nodes with at least this many fractional tuples also parallelise their
// per-attribute split scans. Near the root the node queue holds a single
// task, so attribute-level parallelism is what keeps the pool busy there.
constexpr size_t kMinTuplesForParallelScan = 64;

// Construction state shared across one Build call.
struct BuildContext {
  NodeBuildContext node;
  // Parallel mode only; both null in the serial recursion.
  TaskPool* pool = nullptr;
  Mutex* stats_mu = nullptr;
  // Serial mode: the caller's stats, owned exclusively. Parallel mode:
  // the shared total, guarded by stats_mu (tasks accumulate locally and
  // merge once on completion).
  BuildStats* stats = nullptr;
};

void MergeStats(const BuildContext& ctx, const BuildStats& local) {
  MutexLock lock(ctx.stats_mu);
  *ctx.stats += local;
}

// Depth-first recursion; `used_categorical` is mutated-and-restored along
// the path. Also the inline fallback inside pool tasks for small subtrees
// (with `scan_pool` null: small sets never fan out their scans).
std::unique_ptr<TreeNode> BuildSerial(const BuildContext& ctx,
                                      const WorkingSet& set, int depth,
                                      std::vector<bool>* used_categorical,
                                      uint64_t token, BuildStats* stats) {
  NodeDecision decision =
      DecideNode(ctx.node, set, depth, *used_categorical, token,
                 /*scan_pool=*/nullptr, stats);
  switch (decision.kind) {
    case NodeDecision::Kind::kLeaf:
      break;
    case NodeDecision::Kind::kNumerical:
      decision.node->left =
          BuildSerial(ctx, decision.left, depth + 1, used_categorical,
                      ChildNodeToken(token, 0), stats);
      decision.node->right =
          BuildSerial(ctx, decision.right, depth + 1, used_categorical,
                      ChildNodeToken(token, 1), stats);
      break;
    case NodeDecision::Kind::kCategorical: {
      size_t attr = static_cast<size_t>(decision.categorical_attribute);
      (*used_categorical)[attr] = true;
      decision.node->children.reserve(decision.buckets.size());
      for (size_t b = 0; b < decision.buckets.size(); ++b) {
        WorkingSet& bucket = decision.buckets[b];
        decision.node->children.push_back(
            bucket.empty()
                ? MakeFallbackLeaf(decision.node->class_counts, stats)
                : BuildSerial(ctx, bucket, depth + 1, used_categorical,
                              ChildNodeToken(token, static_cast<int>(b)),
                              stats));
      }
      (*used_categorical)[attr] = false;
      break;
    }
  }
  return std::move(decision.node);
}

// One queued subtree: build the tree hanging off `slot`.
struct SubtreeJob {
  WorkingSet set;
  int depth = 0;
  // Snapshot of the ancestors' categorical usage; parallel subtrees cannot
  // share the backtracking vector of the serial recursion.
  std::vector<bool> used_categorical;
  // The node's path token (see ChildNodeToken) — carried with the job so
  // subspace sampling is independent of which worker builds the subtree.
  uint64_t token = kRootNodeToken;
  std::unique_ptr<TreeNode>* slot = nullptr;
};

void ScheduleSubtree(const BuildContext& ctx, SubtreeJob job,
                     TaskGroup* group);

void RunSubtreeTask(const BuildContext& ctx, SubtreeJob job,
                    TaskGroup* group) {
  BuildStats local;
  TaskPool* scan_pool =
      job.set.size() >= kMinTuplesForParallelScan ? ctx.pool : nullptr;
  NodeDecision decision =
      DecideNode(ctx.node, job.set, job.depth, job.used_categorical,
                 job.token, scan_pool, &local);
  // Free the parent's working set before the children are queued.
  job.set.clear();
  job.set.shrink_to_fit();

  TreeNode* node = decision.node.get();
  *job.slot = std::move(decision.node);
  switch (decision.kind) {
    case NodeDecision::Kind::kLeaf:
      break;
    case NodeDecision::Kind::kNumerical:
      ScheduleSubtree(ctx,
                      SubtreeJob{std::move(decision.left), job.depth + 1,
                                 job.used_categorical,
                                 ChildNodeToken(job.token, 0), &node->left},
                      group);
      ScheduleSubtree(ctx,
                      SubtreeJob{std::move(decision.right), job.depth + 1,
                                 std::move(job.used_categorical),
                                 ChildNodeToken(job.token, 1), &node->right},
                      group);
      break;
    case NodeDecision::Kind::kCategorical: {
      job.used_categorical[static_cast<size_t>(
          decision.categorical_attribute)] = true;
      node->children.resize(decision.buckets.size());
      for (size_t b = 0; b < decision.buckets.size(); ++b) {
        if (decision.buckets[b].empty()) {
          node->children[b] = MakeFallbackLeaf(node->class_counts, &local);
        } else {
          ScheduleSubtree(
              ctx,
              SubtreeJob{std::move(decision.buckets[b]), job.depth + 1,
                         job.used_categorical,
                         ChildNodeToken(job.token, static_cast<int>(b)),
                         &node->children[b]},
              group);
        }
      }
      break;
    }
  }
  MergeStats(ctx, local);
}

void ScheduleSubtree(const BuildContext& ctx, SubtreeJob job,
                     TaskGroup* group) {
  // Small subtrees are built inline right here: queueing them would cost
  // more (allocations + pool lock round-trips) than the work itself.
  if (job.set.size() < kMinTuplesForSubtreeTask) {
    BuildStats local;
    *job.slot = BuildSerial(ctx, job.set, job.depth, &job.used_categorical,
                            job.token, &local);
    MergeStats(ctx, local);
    return;
  }
  // std::function must be copyable; park the move-only job behind a
  // shared_ptr.
  auto shared_job = std::make_shared<SubtreeJob>(std::move(job));
  ctx.pool->Submit(group, [&ctx, shared_job, group] {
    RunSubtreeTask(ctx, std::move(*shared_job), group);
  });
}

}  // namespace

TreeBuilder::TreeBuilder(TreeConfig config) : config_(std::move(config)) {}

StatusOr<DecisionTree> TreeBuilder::Build(const Dataset& train,
                                          BuildStats* stats) const {
  UDT_RETURN_NOT_OK(config_.Validate());
  if (train.empty()) {
    return Status::InvalidArgument("cannot build a tree on an empty data set");
  }
  return BuildFromRoot(train, MakeRootWorkingSet(train), stats);
}

StatusOr<DecisionTree> TreeBuilder::BuildWeighted(
    const Dataset& train, const std::vector<double>& weights,
    BuildStats* stats) const {
  UDT_RETURN_NOT_OK(config_.Validate());
  if (train.empty()) {
    return Status::InvalidArgument("cannot build a tree on an empty data set");
  }
  if (weights.size() != static_cast<size_t>(train.num_tuples())) {
    return Status::InvalidArgument("need exactly one weight per tuple");
  }
  bool any_positive = false;
  for (double w : weights) {
    if (!std::isfinite(w) || w < 0.0) {
      return Status::InvalidArgument("weights must be finite and >= 0");
    }
    any_positive |= w > 0.0;
  }
  if (!any_positive) {
    return Status::InvalidArgument("at least one weight must be positive");
  }
  return BuildFromRoot(train, MakeWeightedRootWorkingSet(train, weights),
                       stats);
}

StatusOr<DecisionTree> TreeBuilder::BuildFromRoot(const Dataset& train,
                                                  WorkingSet root_set,
                                                  BuildStats* stats) const {
  BuildStats local_stats;
  BuildContext ctx;
  ctx.node.data = &train;
  ctx.node.config = &config_;
  std::unique_ptr<SplitFinder> finder = MakeSplitFinder(config_.algorithm);
  ctx.node.finder = finder.get();
  ctx.node.split_options = config_.split_options;
  ctx.node.split_options.measure = config_.measure;
  ctx.stats = stats != nullptr ? stats : &local_stats;

  WallTimer timer;
  std::vector<bool> used_categorical(
      static_cast<size_t>(train.num_attributes()), false);

  const int concurrency =
      TaskPool::EffectiveConcurrency(config_.num_threads);
  std::unique_ptr<TreeNode> root;
  if (concurrency <= 1) {
    root = BuildSerial(ctx, root_set, /*depth=*/0, &used_categorical,
                       kRootNodeToken, ctx.stats);
  } else {
    // The calling thread participates via Wait, so spawn one fewer worker
    // than the requested concurrency.
    TaskPool pool(concurrency - 1);
    Mutex stats_mu;
    ctx.pool = &pool;
    ctx.stats_mu = &stats_mu;
    TaskGroup group;
    ScheduleSubtree(ctx,
                    SubtreeJob{std::move(root_set), /*depth=*/0,
                               std::move(used_categorical), kRootNodeToken,
                               &root},
                    &group);
    pool.Wait(&group);
  }

  DecisionTree tree(train.schema(), std::move(root));
  if (config_.post_prune) {
    PostPruneOptions prune_options;
    prune_options.confidence = config_.pruning_confidence;
    PostPruneStats prune_stats = PostPruneTree(&tree, prune_options);
    ctx.stats->subtrees_collapsed = prune_stats.subtrees_collapsed;
  }
  ctx.stats->build_seconds = timer.ElapsedSeconds();
  return tree;
}

}  // namespace udt
