// Public classifier facade: the Distribution-based classifier (UDT,
// Section 4.2) and the Averaging baseline (AVG, Section 4.1) behind one
// interface, so evaluation code treats them uniformly.

#ifndef UDT_CORE_CLASSIFIER_H_
#define UDT_CORE_CLASSIFIER_H_

#include <memory>
#include <vector>

#include "common/statusor.h"
#include "core/builder.h"
#include "core/config.h"
#include "table/dataset.h"
#include "tree/tree.h"

namespace udt {

// Interface shared by every trained model.
class Classifier {
 public:
  virtual ~Classifier() = default;

  // Probability distribution over class labels for one test tuple.
  virtual std::vector<double> ClassifyDistribution(
      const UncertainTuple& tuple) const = 0;

  // Single-label prediction: argmax of ClassifyDistribution.
  virtual int Predict(const UncertainTuple& tuple) const = 0;

  // The underlying decision tree.
  virtual const DecisionTree& tree() const = 0;
};

// Reduces every numerical value of `tuple` to a point mass at its mean (the
// Averaging view of a test tuple).
UncertainTuple TupleToMeans(const UncertainTuple& tuple);

// The Distribution-based classifier: trains on the full pdfs and classifies
// uncertain test tuples by fractional propagation.
class UncertainTreeClassifier final : public Classifier {
 public:
  // Trains with the given config. `stats` may be null.
  static StatusOr<UncertainTreeClassifier> Train(const Dataset& train,
                                                 const TreeConfig& config,
                                                 BuildStats* stats);

  // Wraps an existing tree (e.g. parsed from tree_io).
  explicit UncertainTreeClassifier(DecisionTree tree);

  std::vector<double> ClassifyDistribution(
      const UncertainTuple& tuple) const override;
  int Predict(const UncertainTuple& tuple) const override;
  const DecisionTree& tree() const override { return *tree_; }

 private:
  std::shared_ptr<const DecisionTree> tree_;
};

// The Averaging baseline: trains a classical tree on pdf means and reduces
// test tuples to their means before traversal.
class AveragingClassifier final : public Classifier {
 public:
  // Trains on train.ToMeans() with the exhaustive point search (the
  // config's algorithm is overridden to kAvg). `stats` may be null.
  static StatusOr<AveragingClassifier> Train(const Dataset& train,
                                             const TreeConfig& config,
                                             BuildStats* stats);

  std::vector<double> ClassifyDistribution(
      const UncertainTuple& tuple) const override;
  int Predict(const UncertainTuple& tuple) const override;
  const DecisionTree& tree() const override { return *tree_; }

 private:
  explicit AveragingClassifier(DecisionTree tree);

  std::shared_ptr<const DecisionTree> tree_;
};

}  // namespace udt

#endif  // UDT_CORE_CLASSIFIER_H_
