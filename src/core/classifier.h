// DEPRECATED classifier facade. The per-tuple Classifier hierarchy
// (UncertainTreeClassifier / AveragingClassifier) has been subsumed by the
// batch-first api layer: train with udt::Trainer, serve with udt::Model
// (src/api/trainer.h, src/api/model.h). These shims are kept so code
// written against the seed API still compiles; they are thin wrappers over
// the same core TreeBuilder / tree traversal and will be removed once the
// remaining call sites migrate. Do not use them in new code.

#ifndef UDT_CORE_CLASSIFIER_H_
#define UDT_CORE_CLASSIFIER_H_

#include <memory>
#include <vector>

#include "common/statusor.h"
#include "core/builder.h"
#include "core/config.h"
#include "table/dataset.h"
#include "tree/tree.h"

namespace udt {

// DEPRECATED: interface shared by the legacy per-tuple classifiers. New
// code holds a udt::Model value instead.
class Classifier {
 public:
  virtual ~Classifier() = default;

  // Probability distribution over class labels for one test tuple.
  virtual std::vector<double> ClassifyDistribution(
      const UncertainTuple& tuple) const = 0;

  // Single-label prediction: argmax of ClassifyDistribution.
  virtual int Predict(const UncertainTuple& tuple) const = 0;

  // The underlying decision tree.
  virtual const DecisionTree& tree() const = 0;
};

// DEPRECATED forwarding declaration: TupleToMeans lives in the table layer
// now (table/dataset.h, included above); this redeclaration keeps old
// includes of core/classifier.h compiling.
UncertainTuple TupleToMeans(const UncertainTuple& tuple);

// DEPRECATED: use udt::Trainer::TrainUdt, which returns a udt::Model.
class UncertainTreeClassifier final : public Classifier {
 public:
  // Trains with the given config. `stats` may be null.
  static StatusOr<UncertainTreeClassifier> Train(const Dataset& train,
                                                 const TreeConfig& config,
                                                 BuildStats* stats);

  // Wraps an existing tree (e.g. parsed from tree_io).
  explicit UncertainTreeClassifier(DecisionTree tree);

  std::vector<double> ClassifyDistribution(
      const UncertainTuple& tuple) const override;
  int Predict(const UncertainTuple& tuple) const override;
  const DecisionTree& tree() const override { return *tree_; }

 private:
  std::shared_ptr<const DecisionTree> tree_;
};

// DEPRECATED: use udt::Trainer::TrainAveraging, which returns a udt::Model
// that remembers its averaging kind.
class AveragingClassifier final : public Classifier {
 public:
  // Trains on train.ToMeans() with the exhaustive point search (the
  // config's algorithm is overridden to kAvg). `stats` may be null.
  static StatusOr<AveragingClassifier> Train(const Dataset& train,
                                             const TreeConfig& config,
                                             BuildStats* stats);

  std::vector<double> ClassifyDistribution(
      const UncertainTuple& tuple) const override;
  int Predict(const UncertainTuple& tuple) const override;
  const DecisionTree& tree() const override { return *tree_; }

 private:
  explicit AveragingClassifier(DecisionTree tree);

  std::shared_ptr<const DecisionTree> tree_;
};

}  // namespace udt

#endif  // UDT_CORE_CLASSIFIER_H_
