#include "core/config.h"

#include "common/string_util.h"

namespace udt {

Status TreeConfig::Validate() const {
  if (max_depth < 1) {
    return Status::InvalidArgument("max_depth must be >= 1");
  }
  if (min_split_weight < 0.0) {
    return Status::InvalidArgument("min_split_weight must be >= 0");
  }
  if (pruning_confidence <= 0.0 || pruning_confidence >= 1.0) {
    return Status::InvalidArgument("pruning_confidence must be in (0, 1)");
  }
  if (num_threads < 0) {
    return Status::InvalidArgument(
        "num_threads must be >= 0 (0 = one per hardware thread)");
  }
  if (subspace_attributes < 0) {
    return Status::InvalidArgument(
        "subspace_attributes must be >= 0 (0 = all attributes)");
  }
  if (split_options.es_endpoint_sample_rate <= 0.0 ||
      split_options.es_endpoint_sample_rate > 1.0) {
    return Status::InvalidArgument(
        "es_endpoint_sample_rate must be in (0, 1]");
  }
  if (split_options.percentiles_per_class < 1) {
    return Status::InvalidArgument("percentiles_per_class must be >= 1");
  }
  if (split_options.min_side_mass < 0.0) {
    return Status::InvalidArgument("min_side_mass must be >= 0");
  }
  return Status::OK();
}

std::string TreeConfig::ToString() const {
  return StrFormat(
      "algorithm=%s measure=%s max_depth=%d min_split_weight=%.3g "
      "min_gain=%.3g post_prune=%s cf=%.2f es_rate=%.2f threads=%d "
      "subspace=%d",
      SplitAlgorithmToString(algorithm), DispersionMeasureToString(measure),
      max_depth, min_split_weight, min_gain, post_prune ? "yes" : "no",
      pruning_confidence, split_options.es_endpoint_sample_rate,
      num_threads, subspace_attributes);
}

}  // namespace udt
