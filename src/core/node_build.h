// The per-node work unit of the tree-construction engine: everything that
// happens at one node — class statistics, stopping rules, the numerical
// split search (optionally attribute-parallel), categorical scoring and
// the partitioning of the working set — packaged as a pure function of the
// node's inputs. Both the serial recursion and the task-based scheduler in
// core/builder.cc consume NodeDecision, which is what keeps the two
// construction orders bitwise-identical.

#ifndef UDT_CORE_NODE_BUILD_H_
#define UDT_CORE_NODE_BUILD_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/config.h"
#include "split/split_finder.h"
#include "table/dataset.h"
#include "tree/tree.h"

namespace udt {

// Forward declarations (defined in core/builder.h and common/task_pool.h).
struct BuildStats;
class TaskPool;

// The resolved fate of one node: a leaf, a binary numerical split with the
// two partitioned child working sets, or an n-ary categorical split with
// one bucket per category.
struct NodeDecision {
  enum class Kind { kLeaf, kNumerical, kCategorical };

  Kind kind = Kind::kLeaf;
  // The node itself with class_counts / distribution filled in; split
  // fields are set for the non-leaf kinds. Children are NOT attached —
  // that is the scheduler's job.
  std::unique_ptr<TreeNode> node;

  // kNumerical: the two sides of the best split.
  WorkingSet left;
  WorkingSet right;

  // kCategorical: one working set per category (possibly empty buckets).
  int categorical_attribute = -1;
  std::vector<WorkingSet> buckets;
};

// Inputs shared by every node of one build.
struct NodeBuildContext {
  const Dataset* data = nullptr;
  const TreeConfig* config = nullptr;
  const SplitFinder* finder = nullptr;
  SplitOptions split_options;
};

// Per-node identity tokens: a deterministic function of the node's path
// from the root, independent of build order and thread schedule. The
// random-subspace sampler keys on them, which is what keeps subspace
// forests bitwise-identical across thread counts.
inline constexpr uint64_t kRootNodeToken = 0x9E3779B97F4A7C15ULL;

// Token of the child at `child_index` (0/1 for numerical splits, the
// category id for categorical splits) of the node with `parent_token`.
uint64_t ChildNodeToken(uint64_t parent_token, int child_index);

// Draws `k` of `num_attributes` attribute ids without replacement from the
// stream seeded by (seed, token); returns a num_attributes-sized 0/1 mask.
// Requires 0 < k < num_attributes.
std::vector<uint8_t> SampleAttributeSubspace(uint64_t seed, uint64_t token,
                                             int num_attributes, int k);

// Evaluates one node. `used_categorical` marks categorical attributes an
// ancestor already split on. `node_token` is the node's ChildNodeToken
// chain value (kRootNodeToken at the root); it only matters when the
// config enables random subspaces. When `scan_pool` is non-null the
// numerical split search fans its per-attribute scans out as pool tasks;
// the result is bitwise-identical either way. `stats` accumulates
// node/leaf counts and split counters and must not be shared across
// concurrent calls.
NodeDecision DecideNode(const NodeBuildContext& ctx, const WorkingSet& set,
                        int depth, const std::vector<bool>& used_categorical,
                        uint64_t node_token, TaskPool* scan_pool,
                        BuildStats* stats);

// A leaf carrying the parent's class counts, used for categorical buckets
// no training mass reaches.
std::unique_ptr<TreeNode> MakeFallbackLeaf(const std::vector<double>& counts,
                                           BuildStats* stats);

}  // namespace udt

#endif  // UDT_CORE_NODE_BUILD_H_
