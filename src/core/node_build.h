// The per-node work unit of the tree-construction engine: everything that
// happens at one node — class statistics, stopping rules, the numerical
// split search (optionally attribute-parallel), categorical scoring and
// the partitioning of the working set — packaged as a pure function of the
// node's inputs. Both the serial recursion and the task-based scheduler in
// core/builder.cc consume NodeDecision, which is what keeps the two
// construction orders bitwise-identical.

#ifndef UDT_CORE_NODE_BUILD_H_
#define UDT_CORE_NODE_BUILD_H_

#include <memory>
#include <vector>

#include "core/config.h"
#include "split/split_finder.h"
#include "table/dataset.h"
#include "tree/tree.h"

namespace udt {

// Forward declarations (defined in core/builder.h and common/task_pool.h).
struct BuildStats;
class TaskPool;

// The resolved fate of one node: a leaf, a binary numerical split with the
// two partitioned child working sets, or an n-ary categorical split with
// one bucket per category.
struct NodeDecision {
  enum class Kind { kLeaf, kNumerical, kCategorical };

  Kind kind = Kind::kLeaf;
  // The node itself with class_counts / distribution filled in; split
  // fields are set for the non-leaf kinds. Children are NOT attached —
  // that is the scheduler's job.
  std::unique_ptr<TreeNode> node;

  // kNumerical: the two sides of the best split.
  WorkingSet left;
  WorkingSet right;

  // kCategorical: one working set per category (possibly empty buckets).
  int categorical_attribute = -1;
  std::vector<WorkingSet> buckets;
};

// Inputs shared by every node of one build.
struct NodeBuildContext {
  const Dataset* data = nullptr;
  const TreeConfig* config = nullptr;
  const SplitFinder* finder = nullptr;
  SplitOptions split_options;
};

// Evaluates one node. `used_categorical` marks categorical attributes an
// ancestor already split on. When `scan_pool` is non-null the numerical
// split search fans its per-attribute scans out as pool tasks; the result
// is bitwise-identical either way. `stats` accumulates node/leaf counts
// and split counters and must not be shared across concurrent calls.
NodeDecision DecideNode(const NodeBuildContext& ctx, const WorkingSet& set,
                        int depth, const std::vector<bool>& used_categorical,
                        TaskPool* scan_pool, BuildStats* stats);

// A leaf carrying the parent's class counts, used for categorical buckets
// no training mass reaches.
std::unique_ptr<TreeNode> MakeFallbackLeaf(const std::vector<double>& counts,
                                           BuildStats* stats);

}  // namespace udt

#endif  // UDT_CORE_NODE_BUILD_H_
