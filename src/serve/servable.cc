#include "serve/servable.h"

#include <utility>

#include "common/string_util.h"

namespace udt {
namespace serve {

Servable::Servable(CompiledModel model) : artifact_(std::move(model)) {}

Servable::Servable(CompiledForest forest) : artifact_(std::move(forest)) {}

bool Servable::is_forest() const {
  return std::holds_alternative<CompiledForest>(artifact_);
}

int Servable::num_classes() const {
  return std::visit([](const auto& a) { return a.num_classes(); }, artifact_);
}

const Schema& Servable::schema() const {
  return std::visit([](const auto& a) -> const Schema& { return a.schema(); },
                    artifact_);
}

int Servable::num_nodes() const {
  return std::visit([](const auto& a) { return a.num_nodes(); }, artifact_);
}

std::string Servable::Describe() const {
  if (const CompiledForest* f = forest()) {
    return StrFormat("udt-forest v1 x%d trees (%d nodes)", f->num_trees(),
                     f->num_nodes());
  }
  return StrFormat("udt-compiled v1 tree (%d nodes)", model()->num_nodes());
}

const CompiledModel* Servable::model() const {
  return std::get_if<CompiledModel>(&artifact_);
}

const CompiledForest* Servable::forest() const {
  return std::get_if<CompiledForest>(&artifact_);
}

ServeSession::ServeSession(const Servable& servable)
    : impl_(servable.is_forest()
                ? std::variant<PredictSession, ForestPredictSession>(
                      std::in_place_type<ForestPredictSession>,
                      *servable.forest())
                : std::variant<PredictSession, ForestPredictSession>(
                      std::in_place_type<PredictSession>, *servable.model())) {}

int ServeSession::num_classes() const {
  return std::visit([](const auto& s) { return s.num_classes(); }, impl_);
}

void ServeSession::ClassifyInto(const UncertainTuple& tuple, double* out) {
  std::visit([&](auto& s) { s.ClassifyInto(tuple, out); }, impl_);
}

Status ServeSession::PredictBatchInto(std::span<const UncertainTuple> tuples,
                                      const PredictOptions& options,
                                      FlatBatchResult* out) {
  return std::visit(
      [&](auto& s) { return s.PredictBatchInto(tuples, options, out); },
      impl_);
}

Status ServeSession::PredictBatchInto(
    std::span<const UncertainTuple* const> tuples,
    const PredictOptions& options, FlatBatchResult* out) {
  return std::visit(
      [&](auto& s) { return s.PredictBatchInto(tuples, options, out); },
      impl_);
}

}  // namespace serve
}  // namespace udt
