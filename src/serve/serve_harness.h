// udt::serve::ServeHarness — a closed-loop multi-client load driver for
// the serving front end, shared by bench_serve_frontend and the serve
// tests. Each client thread issues single-tuple requests back to back
// (closed loop: the next request leaves when the previous response
// arrives), cycling through a tuple pool, and records one wall-clock
// latency per request. Two modes bracket the design space:
//   * direct — every client owns a private ServeSession and classifies
//     inline: the per-client-session baseline (no queuing delay, but one
//     session + scratch set per client);
//   * queue  — every client submits to one shared BatchingQueue and waits
//     on its future: coalesced micro-batches over one session (admission
//     cost + batching delay, but shared state and hot-swap for free).
// The returned LatencyStats carry sustained QPS (total requests over the
// slowest client's wall time) and p50/p95/p99 latency in microseconds.

#ifndef UDT_SERVE_SERVE_HARNESS_H_
#define UDT_SERVE_SERVE_HARNESS_H_

#include <cstddef>
#include <span>
#include <vector>

#include "serve/batching_queue.h"
#include "serve/servable.h"

namespace udt {
namespace serve {

struct LatencyStats {
  size_t requests = 0;  // successfully served requests (latency samples)
  size_t failed = 0;    // non-OK responses (shed/rejected), queue mode only
  double wall_seconds = 0.0;  // slowest client, start barrier to last reply
  double qps = 0.0;           // requests / wall_seconds
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
};

// Percentiles over one latency sample set (sorted in place; nearest-rank).
// `wall_seconds` feeds the QPS field. Exposed for tests.
LatencyStats SummarizeLatencies(std::vector<double>& latencies_us,
                                double wall_seconds);

struct HarnessOptions {
  int num_clients = 1;
  size_t requests_per_client = 1000;
};

// Direct mode: `num_clients` threads, each with its own ServeSession over
// `servable`, classifying its share of `pool` round-robin.
LatencyStats RunDirectClients(const Servable& servable,
                              std::span<const UncertainTuple> pool,
                              const HarnessOptions& options);

// Queue mode: `num_clients` threads submitting to `queue` and blocking on
// each future. Requests that complete with a non-OK status (shed by a full
// queue, rejected after shutdown) are excluded from the latency sample set
// — a shed response returns in microseconds and would otherwise drag
// p50/p95/p99 optimistically low — and reported in LatencyStats::failed
// (and `*failures` when non-null) instead of crashing the harness.
LatencyStats RunQueueClients(BatchingQueue* queue,
                             std::span<const UncertainTuple> pool,
                             const HarnessOptions& options,
                             size_t* failures = nullptr);

}  // namespace serve
}  // namespace udt

#endif  // UDT_SERVE_SERVE_HARNESS_H_
