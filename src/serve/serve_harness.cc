#include "serve/serve_harness.h"

#include <algorithm>
#include <cmath>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/timer.h"

namespace udt {
namespace serve {

namespace {

// Opens once; client threads block on Wait until the main thread has
// spawned everyone, so all clients start the clock together.
class StartGate {
 public:
  void Open() {
    {
      MutexLock lock(&mu_);
      open_ = true;
    }
    cv_.NotifyAll();
  }
  void Wait() {
    MutexLock lock(&mu_);
    while (!open_) cv_.Wait(lock);
  }

 private:
  Mutex mu_;
  CondVar cv_;
  bool open_ UDT_GUARDED_BY(mu_) = false;
};

// Nearest-rank percentile over a sorted sample set.
double PercentileSorted(const std::vector<double>& sorted, double pct) {
  if (sorted.empty()) return 0.0;
  const double rank = pct / 100.0 * static_cast<double>(sorted.size());
  size_t index = static_cast<size_t>(std::ceil(rank));
  index = std::min(std::max<size_t>(index, 1), sorted.size());
  return sorted[index - 1];
}

// Runs the closed loop: spawn clients, open the gate, join, merge
// latencies. `run_client(c, latencies)` issues that client's requests and
// appends one latency (us) per request; returns its wall seconds.
template <typename RunClient>
LatencyStats DriveClients(const HarnessOptions& options,
                          RunClient run_client) {
  UDT_CHECK(options.num_clients >= 1);
  const size_t clients = static_cast<size_t>(options.num_clients);
  std::vector<std::vector<double>> latencies(clients);
  std::vector<double> client_seconds(clients, 0.0);
  StartGate gate;

  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    latencies[c].reserve(options.requests_per_client);
    threads.emplace_back([&, c] {
      gate.Wait();
      WallTimer timer;
      run_client(c, &latencies[c]);
      client_seconds[c] = timer.ElapsedSeconds();
    });
  }
  gate.Open();
  for (std::thread& thread : threads) thread.join();

  std::vector<double> merged;
  merged.reserve(clients * options.requests_per_client);
  for (std::vector<double>& sample : latencies) {
    merged.insert(merged.end(), sample.begin(), sample.end());
  }
  const double wall =
      *std::max_element(client_seconds.begin(), client_seconds.end());
  return SummarizeLatencies(merged, wall);
}

}  // namespace

LatencyStats SummarizeLatencies(std::vector<double>& latencies_us,
                                double wall_seconds) {
  LatencyStats stats;
  stats.requests = latencies_us.size();
  stats.wall_seconds = wall_seconds;
  stats.qps = static_cast<double>(stats.requests) /
              std::max(wall_seconds, 1e-12);
  if (latencies_us.empty()) return stats;
  std::sort(latencies_us.begin(), latencies_us.end());
  stats.p50_us = PercentileSorted(latencies_us, 50.0);
  stats.p95_us = PercentileSorted(latencies_us, 95.0);
  stats.p99_us = PercentileSorted(latencies_us, 99.0);
  stats.max_us = latencies_us.back();
  return stats;
}

LatencyStats RunDirectClients(const Servable& servable,
                              std::span<const UncertainTuple> pool,
                              const HarnessOptions& options) {
  UDT_CHECK(!pool.empty());
  const size_t stride = static_cast<size_t>(options.num_clients);
  return DriveClients(options, [&](size_t c, std::vector<double>* out) {
    ServeSession session(servable);
    std::vector<double> row(static_cast<size_t>(session.num_classes()));
    for (size_t j = 0; j < options.requests_per_client; ++j) {
      const UncertainTuple& tuple = pool[(c + j * stride) % pool.size()];
      WallTimer timer;
      session.ClassifyInto(tuple, row.data());
      out->push_back(timer.ElapsedSeconds() * 1e6);
    }
  });
}

LatencyStats RunQueueClients(BatchingQueue* queue,
                             std::span<const UncertainTuple> pool,
                             const HarnessOptions& options,
                             size_t* failures) {
  UDT_CHECK(queue != nullptr);
  UDT_CHECK(!pool.empty());
  const size_t stride = static_cast<size_t>(options.num_clients);
  Mutex failure_mu;
  size_t failed = 0;
  LatencyStats stats =
      DriveClients(options, [&](size_t c, std::vector<double>* out) {
        size_t my_failures = 0;
        for (size_t j = 0; j < options.requests_per_client; ++j) {
          const UncertainTuple& tuple = pool[(c + j * stride) % pool.size()];
          WallTimer timer;
          ServeResult result = queue->Submit(&tuple).get();
          const double elapsed_us = timer.ElapsedSeconds() * 1e6;
          // Shed/rejected responses return near-instantly; mixing them
          // into the sample set would deflate every percentile. Only
          // served requests produce latency samples.
          if (result.status.ok()) {
            out->push_back(elapsed_us);
          } else {
            ++my_failures;
          }
        }
        MutexLock lock(&failure_mu);
        failed += my_failures;
      });
  stats.failed = failed;
  if (failures != nullptr) *failures = failed;
  return stats;
}

}  // namespace serve
}  // namespace udt
