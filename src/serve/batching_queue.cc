#include "serve/batching_queue.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"

namespace udt {
namespace serve {

BatchingQueue::BatchingQueue(SnapshotProvider provider,
                             const BatchingConfig& config)
    : config_(config), provider_(std::move(provider)) {
  UDT_CHECK(provider_ != nullptr);
  UDT_CHECK(config_.max_batch > 0);
  UDT_CHECK(config_.max_queue > 0);
  UDT_CHECK(config_.max_delay_us >= 0);
  UDT_CHECK(config_.predict.Validate().ok());
  drainer_ = std::thread([this] { DrainLoop(); });
}

BatchingQueue::BatchingQueue(const ModelRegistry* registry, std::string name,
                             const BatchingConfig& config)
    : BatchingQueue(
          [registry, name = std::move(name)] {
            return registry->Resolve(name);
          },
          config) {
  UDT_CHECK(registry != nullptr);
}

BatchingQueue::~BatchingQueue() { Close(); }

void BatchingQueue::SubmitWithCallback(const UncertainTuple* tuple,
                                       ServeCallback done) {
  UDT_CHECK(tuple != nullptr);
  UDT_CHECK(done != nullptr);
  Status rejection;
  {
    MutexLock lock(&mu_);
    if (closed_) {
      rejection = Status::Unavailable("BatchingQueue is closed");
    } else if (pending_.size() >= config_.max_queue) {
      rejection = Status::Unavailable(
          StrFormat("BatchingQueue admission limit reached (%zu pending)",
                    pending_.size()));
    } else {
      ++stats_.submitted;
      pending_.push_back(
          Pending{tuple, std::move(done), std::chrono::steady_clock::now()});
      // Wake the drainer when the batch fills; the first admission after
      // an idle stretch must wake it too, so it can arm the deadline.
      if (pending_.size() == 1 || pending_.size() >= config_.max_batch) {
        cv_.NotifyAll();
      }
      return;
    }
    ++stats_.rejected;
  }
  // Inline completion, outside the lock: the callback may re-enter
  // Submit or take arbitrary time.
  ServeResult result;
  result.status = std::move(rejection);
  done(std::move(result));
}

std::future<ServeResult> BatchingQueue::Submit(const UncertainTuple* tuple) {
  auto promise = std::make_shared<std::promise<ServeResult>>();
  std::future<ServeResult> future = promise->get_future();
  SubmitWithCallback(tuple, [promise](ServeResult result) {
    promise->set_value(std::move(result));
  });
  return future;
}

void BatchingQueue::Close() {
  std::thread to_join;
  {
    MutexLock lock(&mu_);
    closed_ = true;
    cv_.NotifyAll();
    // Only the first closer receives a joinable thread; concurrent or
    // repeated Close() calls are no-ops past this point.
    to_join = std::move(drainer_);
  }
  if (to_join.joinable()) to_join.join();
}

BatchingQueue::Stats BatchingQueue::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

size_t BatchingQueue::pending() const {
  MutexLock lock(&mu_);
  return pending_.size();
}

void BatchingQueue::DrainLoop() {
  const auto max_delay = std::chrono::microseconds(config_.max_delay_us);
  for (;;) {
    // Lock scope per drain iteration; ServeBatch runs unlocked below, so
    // admissions continue while a micro-batch classifies.
    {
      MutexLock lock(&mu_);
      while (!closed_ && pending_.empty()) cv_.Wait(lock);
      if (pending_.empty()) return;  // closed_ and fully drained

      // Coalescing window: wait for a full batch, the oldest request's
      // deadline, or shutdown (which serves whatever is pending, now).
      const auto deadline = pending_.front().admitted_at + max_delay;
      while (!closed_ && pending_.size() < config_.max_batch &&
             std::chrono::steady_clock::now() < deadline) {
        cv_.WaitUntil(lock, deadline);
      }

      const size_t take = std::min(pending_.size(), config_.max_batch);
      batch_.clear();
      batch_.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        batch_.push_back(std::move(pending_.front()));
        pending_.pop_front();
      }
      ++stats_.drains;
      stats_.max_drain = std::max<uint64_t>(stats_.max_drain, take);
      // Counted at take time, before completions run: a client reading
      // stats() right after its future resolves must already see itself
      // in `served` (the increment-after-drain ordering would lag).
      stats_.served += take;
    }
    // One registry snapshot per micro-batch: the atomic-hot-swap point.
    ServeBatch(batch_, provider_());
  }
}

void BatchingQueue::FailBatch(std::vector<Pending>& batch,
                              const Status& status) {
  for (Pending& request : batch) {
    ServeResult result;
    result.status = status;
    request.done(std::move(result));
  }
  batch.clear();
}

void BatchingQueue::ServeBatch(std::vector<Pending>& batch,
                               ModelHandle handle) {
  if (handle == nullptr) {
    FailBatch(batch, Status::Unavailable("no live model version to serve"));
    return;
  }
  if (handle != bound_) {
    // Hot swap observed: bind the new artifact. The session copies the
    // shared handle, so retiring the old registry entry cannot dangle an
    // in-flight batch.
    session_.emplace(handle->servable);
    bound_ = std::move(handle);
  }

  tuple_ptrs_.clear();
  tuple_ptrs_.reserve(batch.size());
  for (const Pending& request : batch) tuple_ptrs_.push_back(request.tuple);

  flat_.Clear();
  Status status = session_->PredictBatchInto(
      std::span<const UncertainTuple* const>(tuple_ptrs_.data(),
                                             tuple_ptrs_.size()),
      config_.predict, &flat_);
  if (!status.ok()) {
    FailBatch(batch, status);
    return;
  }

  const size_t k = static_cast<size_t>(flat_.num_classes);
  for (size_t i = 0; i < batch.size(); ++i) {
    ServeResult result;
    result.label = flat_.labels[i];
    const double* row = flat_.distributions.data() + i * k;
    result.distribution.assign(row, row + k);
    result.confidence = row[static_cast<size_t>(result.label)];
    result.abstained = config_.predict.abstain_threshold > 0.0 &&
                       result.confidence < config_.predict.abstain_threshold;
    if (config_.predict.top_k > 0) {
      // Partial sort over class ids: descending probability, ties broken
      // toward the lowest class id (the id order a stable comparator on
      // ascending ids gives for free).
      const size_t top =
          std::min(static_cast<size_t>(config_.predict.top_k), k);
      top_scratch_.resize(k);
      for (size_t c = 0; c < k; ++c) top_scratch_[c] = static_cast<int>(c);
      std::partial_sort(top_scratch_.begin(), top_scratch_.begin() + top,
                        top_scratch_.end(), [row](int a, int b) {
                          if (row[a] != row[b]) return row[a] > row[b];
                          return a < b;
                        });
      result.top_classes.assign(top_scratch_.begin(),
                                top_scratch_.begin() + top);
    }
    result.model_name = bound_->name;
    result.model_version = bound_->version;
    if (config_.response_tap) config_.response_tap(result);
    batch[i].done(std::move(result));
  }
  batch.clear();
}

}  // namespace serve
}  // namespace udt
