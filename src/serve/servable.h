// udt::serve::Servable — the one value type the serving front end traffics
// in: either a compiled single tree ("udt-compiled v1", CompiledModel) or a
// compiled ensemble ("udt-forest v1", CompiledForest), behind one face. The
// registry stores Servables, the admission queue drains through them, and
// neither has to care which container kind a version holds.
//
// Both container kinds are shared handles (one or two shared_ptrs wide), so
// a Servable copies in O(1) and co-owns its artifact: retiring a registry
// entry while a session built from it is mid-batch never dangles — the flat
// arrays live until the last Servable/session lets go. That ownership story
// is the whole reason atomic hot swap works (see model_registry.h).
//
// ServeSession is the matching per-worker execution handle: it wraps a
// PredictSession or ForestPredictSession (whichever the Servable needs) and
// exposes the entry points the front end uses — single-tuple ClassifyInto,
// the contiguous batch, and the gather (pointer-span) batch an admission
// queue drains coalesced micro-batches through. Like the sessions it wraps,
// a ServeSession is cheap to construct and NOT thread-safe: one per worker.

#ifndef UDT_SERVE_SERVABLE_H_
#define UDT_SERVE_SERVABLE_H_

#include <span>
#include <string>
#include <variant>

#include "api/compiled_forest.h"
#include "api/compiled_model.h"
#include "api/forest_session.h"
#include "api/predict_session.h"
#include "common/statusor.h"

namespace udt {
namespace serve {

// An immutable serving artifact: one compiled tree or one compiled forest.
class Servable {
 public:
  explicit Servable(CompiledModel model);
  explicit Servable(CompiledForest forest);

  bool is_forest() const;
  int num_classes() const;
  const Schema& schema() const;
  // Total flat nodes (summed over trees for a forest) — an ops-dashboard
  // size proxy.
  int num_nodes() const;
  // e.g. "udt-compiled v1 tree (57 nodes)" / "udt-forest v1 x8 trees".
  std::string Describe() const;

  // The wrapped containers, for callers that need the concrete kind
  // (nullptr when this Servable holds the other kind).
  const CompiledModel* model() const;
  const CompiledForest* forest() const;

 private:
  std::variant<CompiledModel, CompiledForest> artifact_;
};

// A per-worker execution handle over one Servable. Construction copies the
// shared artifact handle, so the session outlives any registry entry it
// was resolved from.
class ServeSession {
 public:
  explicit ServeSession(const Servable& servable);

  int num_classes() const;

  // Classifies one tuple into caller storage (num_classes doubles).
  void ClassifyInto(const UncertainTuple& tuple, double* out);

  // Contiguous batch, flat output; see PredictSession::PredictBatchInto.
  Status PredictBatchInto(std::span<const UncertainTuple> tuples,
                          const PredictOptions& options, FlatBatchResult* out);

  // Gather batch for coalesced micro-batches whose tuples live in
  // different clients' memory. Pointers must be non-null and alive until
  // the call returns.
  Status PredictBatchInto(std::span<const UncertainTuple* const> tuples,
                          const PredictOptions& options, FlatBatchResult* out);

 private:
  std::variant<PredictSession, ForestPredictSession> impl_;
};

}  // namespace serve
}  // namespace udt

#endif  // UDT_SERVE_SERVABLE_H_
