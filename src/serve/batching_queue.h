// udt::serve::BatchingQueue — the admission layer between "millions of
// single-tuple requests" and one fast PredictSession. Concurrent Submit
// calls enqueue (tuple pointer, completion) pairs; a dedicated drainer
// thread coalesces them into micro-batches and classifies each batch with
// one gather PredictBatchInto call on a persistent ServeSession — so N
// clients share one session, one scratch set and one worker pool instead
// of paying per-request session or thread costs.
//
// Coalescing policy. A drain fires when either `max_batch` requests are
// pending or the oldest pending request has waited `max_delay_us`
// microseconds — the classic size-or-deadline micro-batching rule. Under
// heavy load batches fill instantly and the deadline never matters; under
// trickle load a request waits at most max_delay_us before it is served
// alone.
//
// Hot swap. Each drain takes one registry snapshot (ModelHandle) before
// classifying. The batch in flight when a new version is published
// finishes wholly on the old artifact; the next drain resolves the new
// one and rebinds its session. Every response therefore reflects exactly
// one model version — never a torn mix — and ServeResult reports which.
//
// Backpressure and shutdown. Admission is bounded: when `max_queue`
// requests are already pending, Submit completes immediately with
// kUnavailable (shed load, retry later). Close() stops admission
// (kUnavailable thereafter), drains everything already admitted, and
// joins the drainer; the destructor calls Close(). Submit never blocks on
// classification — it only ever takes the queue mutex for a push.
//
// Threading contract. Submit/SubmitWithCallback/stats are safe from any
// thread. Completions (callbacks, future fulfilment) run on the drainer
// thread — keep them cheap or hop executors yourself. The caller's tuple
// must stay alive and unmodified until its completion runs; the queue
// never copies tuples (that is what keeps admission O(1)).

#ifndef UDT_SERVE_BATCHING_QUEUE_H_
#define UDT_SERVE_BATCHING_QUEUE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/statusor.h"
#include "common/thread_annotations.h"
#include "serve/model_registry.h"
#include "serve/servable.h"

namespace udt {
namespace serve {

// Per-request response. On OK: argmax label, full class distribution, the
// confidence policy outputs (per-class confidence is what the stream-layer
// DriftMonitor consumes), and the (name, version) of the registry entry
// that served it — the hot-swap stress test keys its byte-identity oracle
// on `model_version`.
struct ServeResult {
  Status status;
  // Argmax of `distribution` (ties -> lowest class id). Reported even
  // when `abstained` is set — the caller decides what a low-confidence
  // label is worth.
  int label = -1;
  // Probability of `label` — the winning class's share of the
  // distribution.
  double confidence = 0.0;
  // True when PredictOptions::abstain_threshold is > 0 and `confidence`
  // fell below it.
  bool abstained = false;
  std::vector<double> distribution;
  // The PredictOptions::top_k most probable classes, descending
  // probability (ties -> lowest class id); empty when top_k is 0.
  std::vector<int> top_classes;
  std::string model_name;
  uint64_t model_version = 0;
};

using ServeCallback = std::function<void(ServeResult)>;

struct BatchingConfig {
  // Drain when this many requests are pending.
  size_t max_batch = 64;
  // ... or when the oldest pending request has waited this long.
  int64_t max_delay_us = 200;
  // Admission bound: pending requests beyond this are rejected with
  // kUnavailable.
  size_t max_queue = 4096;
  // The one PredictOptions each drain classifies under: num_threads picks
  // the session's persistent pool width (1 = classify inline on the
  // drainer thread), grain the shard size, and the output-policy fields
  // (top_k, abstain_threshold) shape every ServeResult. Replaces the
  // pre-unification num_threads/grain pair.
  PredictOptions predict;
  // Observability tap: when set, invoked on the drainer thread with every
  // successfully classified response just before its completion runs —
  // the hook the adaptive-serving DriftMonitor hangs off to watch the
  // live confidence stream. Failed/shed requests are not tapped (they
  // carry no distribution). Must be cheap and thread-safe with respect to
  // whatever else reads its sink; it is never called concurrently with
  // itself.
  std::function<void(const ServeResult&)> response_tap;
};

class BatchingQueue {
 public:
  // Resolves a fresh model snapshot before each drain. Returning null
  // fails that batch's requests with kUnavailable (no live version).
  using SnapshotProvider = std::function<ModelHandle()>;

  // Serves whatever `provider` resolves to, re-resolved per drain. The
  // provider must be safe to call from the drainer thread.
  explicit BatchingQueue(SnapshotProvider provider,
                         const BatchingConfig& config = {});

  // Serves registry entry `name`, latest live version per drain — the
  // standard hot-swappable deployment. `registry` must outlive the queue.
  BatchingQueue(const ModelRegistry* registry, std::string name,
                const BatchingConfig& config = {});

  // Close()s, so destruction drains admitted requests first.
  ~BatchingQueue();

  BatchingQueue(const BatchingQueue&) = delete;
  BatchingQueue& operator=(const BatchingQueue&) = delete;

  // Admits one request. The future is fulfilled by the drainer (already
  // fulfilled on rejection). `tuple` must outlive the completion.
  std::future<ServeResult> Submit(const UncertainTuple* tuple);

  // Callback form of Submit; `done` runs exactly once, on the drainer
  // thread — or inline, on the calling thread, when admission rejects.
  void SubmitWithCallback(const UncertainTuple* tuple, ServeCallback done);

  // Stops admission, serves everything already admitted, joins the
  // drainer. Idempotent.
  void Close();

  // Monotonic counters, readable any time (consistent snapshot).
  struct Stats {
    uint64_t submitted = 0;  // admitted requests
    uint64_t rejected = 0;   // refused at admission (full or closed)
    uint64_t served = 0;     // requests taken by a drain (each is
                             // completed, with some status, before the
                             // drainer takes its next batch)
    uint64_t drains = 0;     // micro-batches classified
    uint64_t max_drain = 0;  // largest micro-batch so far
  };
  Stats stats() const;

  // Requests admitted but not yet taken by a drain.
  size_t pending() const;

 private:
  struct Pending {
    const UncertainTuple* tuple;
    ServeCallback done;
    std::chrono::steady_clock::time_point admitted_at;
  };

  void DrainLoop();
  // Classifies `batch` against `handle` (rebinding the session if the
  // snapshot changed) and completes every request. Runs on the drainer,
  // no lock held.
  void ServeBatch(std::vector<Pending>& batch, ModelHandle handle);
  static void FailBatch(std::vector<Pending>& batch, const Status& status);

  const BatchingConfig config_;
  const SnapshotProvider provider_;

  mutable Mutex mu_;
  CondVar cv_;
  std::deque<Pending> pending_ UDT_GUARDED_BY(mu_);
  bool closed_ UDT_GUARDED_BY(mu_) = false;
  Stats stats_ UDT_GUARDED_BY(mu_);

  // Drainer-thread state (touched only by drainer_, no lock needed).
  ModelHandle bound_;
  std::optional<ServeSession> session_;
  std::vector<const UncertainTuple*> tuple_ptrs_;
  FlatBatchResult flat_;
  std::vector<int> top_scratch_;
  std::vector<Pending> batch_;

  // Written by the constructor (single-threaded), moved out by the first
  // Close() under mu_ so concurrent closers race on the mutex, not the
  // thread object.
  std::thread drainer_ UDT_GUARDED_BY(mu_);
};

}  // namespace serve
}  // namespace udt

#endif  // UDT_SERVE_BATCHING_QUEUE_H_
