#include "serve/model_registry.h"

#include <algorithm>
#include <utility>

#include "common/string_util.h"

namespace udt {
namespace serve {

uint64_t ModelRegistry::Publish(const std::string& name, Servable servable) {
  MutexLock lock(&mu_);
  NamedEntry& named = entries_[name];
  const uint64_t version = named.next_version++;
  // Constructing under the lock is fine: a Servable moves in O(1).
  named.versions.push_back(std::make_shared<RegisteredModel>(
      RegisteredModel{name, version, std::move(servable)}));
  return version;
}

Status ModelRegistry::Retire(const std::string& name, uint64_t version) {
  MutexLock lock(&mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound(StrFormat("no model named '%s'", name.c_str()));
  }
  std::vector<ModelHandle>& versions = it->second.versions;
  auto vit = std::find_if(versions.begin(), versions.end(),
                          [version](const ModelHandle& handle) {
                            return handle->version == version;
                          });
  if (vit == versions.end()) {
    return Status::NotFound(StrFormat("model '%s' has no live version %llu",
                                      name.c_str(),
                                      (unsigned long long)version));
  }
  versions.erase(vit);
  // Keep the NamedEntry even when empty: next_version must not restart at
  // 1, or a stale "latest version" note elsewhere could alias a new model.
  return Status::OK();
}

size_t ModelRegistry::RetireAll(const std::string& name) {
  MutexLock lock(&mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) return 0;
  const size_t retired = it->second.versions.size();
  entries_.erase(it);
  return retired;
}

ModelHandle ModelRegistry::Resolve(const std::string& name) const {
  MutexLock lock(&mu_);
  auto it = entries_.find(name);
  if (it == entries_.end() || it->second.versions.empty()) return nullptr;
  return it->second.versions.back();
}

ModelHandle ModelRegistry::Resolve(const std::string& name,
                                   uint64_t version) const {
  MutexLock lock(&mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) return nullptr;
  for (const ModelHandle& handle : it->second.versions) {
    if (handle->version == version) return handle;
  }
  return nullptr;
}

std::vector<std::string> ModelRegistry::Names() const {
  MutexLock lock(&mu_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, named] : entries_) {
    if (!named.versions.empty()) names.push_back(name);
  }
  return names;
}

std::vector<uint64_t> ModelRegistry::Versions(const std::string& name) const {
  MutexLock lock(&mu_);
  std::vector<uint64_t> versions;
  auto it = entries_.find(name);
  if (it == entries_.end()) return versions;
  versions.reserve(it->second.versions.size());
  for (const ModelHandle& handle : it->second.versions) {
    versions.push_back(handle->version);
  }
  return versions;
}

}  // namespace serve
}  // namespace udt
