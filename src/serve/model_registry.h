// udt::serve::ModelRegistry — the multi-tenant model store of the serving
// front end: named, monotonically versioned entries, each holding one
// Servable (a compiled tree or forest). Publish/Retire/Resolve are the
// whole surface; everything else falls out of the ownership story.
//
// Atomic hot swap. The registry hands out std::shared_ptr snapshots
// (ModelHandle) and mutates only the map under its mutex — never a
// published entry, which is immutable. A serving loop takes one snapshot
// per micro-batch (Resolve is two pointer copies under a short lock), so:
//   * a batch in flight when v2 is published finishes wholly on v1 — the
//     snapshot co-owns the artifact;
//   * the next batch resolves v2 and runs wholly on it;
//   * no batch ever observes a half-swapped model, because there is no
//     mutable state to tear — swap is a pointer replacement in the map.
// Retiring v1 drops the registry's reference only; in-flight holders keep
// the artifact alive until their batch completes. This is the contract the
// hot-swap-under-load stress test asserts: under concurrent publishes,
// every returned prediction is byte-identical to the pure-v1 or pure-v2
// answer for that tuple.
//
// Versioning. Versions are assigned by the registry, start at 1 per name,
// and never repeat for a name (retiring v3 then publishing again yields
// v4). Resolve(name) returns the live entry with the highest version;
// Resolve(name, v) returns exactly v or null. All methods are thread-safe.

#ifndef UDT_SERVE_MODEL_REGISTRY_H_
#define UDT_SERVE_MODEL_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/statusor.h"
#include "common/thread_annotations.h"
#include "serve/servable.h"

namespace udt {
namespace serve {

// One published (name, version, artifact) entry. Immutable after Publish;
// shared by the registry and every in-flight snapshot holder.
struct RegisteredModel {
  std::string name;
  uint64_t version = 0;
  Servable servable;
};

// A snapshot of one registry entry: co-owns the artifact, stays valid
// after the entry is retired or superseded. Null means "no live version".
using ModelHandle = std::shared_ptr<const RegisteredModel>;

class ModelRegistry {
 public:
  ModelRegistry() = default;
  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  // Publishes a new version of `name` and returns the assigned version
  // (1 for a fresh name, previous max + 1 after). The new version is
  // immediately what Resolve(name) returns; in-flight holders of older
  // snapshots are unaffected.
  [[nodiscard]] uint64_t Publish(const std::string& name, Servable servable);

  // Removes one version. NotFound if the name or version is not live.
  // Snapshots already resolved keep serving; only the registry's
  // reference is dropped.
  Status Retire(const std::string& name, uint64_t version);

  // Removes every live version of `name` (the name's version counter is
  // forgotten with it). Returns how many were retired.
  size_t RetireAll(const std::string& name);

  // Latest live version of `name`, or null if none. O(1) under the lock.
  [[nodiscard]] ModelHandle Resolve(const std::string& name) const;

  // Exactly version `version` of `name`, or null.
  [[nodiscard]] ModelHandle Resolve(const std::string& name,
                                    uint64_t version) const;

  // Live names, sorted. For dashboards and tests.
  std::vector<std::string> Names() const;

  // Live versions of `name`, ascending (empty if unknown).
  std::vector<uint64_t> Versions(const std::string& name) const;

 private:
  struct NamedEntry {
    uint64_t next_version = 1;
    // Ascending by version; Resolve(name) is back().
    std::vector<ModelHandle> versions;
  };

  mutable Mutex mu_;
  std::map<std::string, NamedEntry> entries_ UDT_GUARDED_BY(mu_);
};

}  // namespace serve
}  // namespace udt

#endif  // UDT_SERVE_MODEL_REGISTRY_H_
