#include "table/uncertainty_injector.h"

#include <cmath>

#include "pdf/pdf_builder.h"

namespace udt {

const char* ErrorModelToString(ErrorModel model) {
  switch (model) {
    case ErrorModel::kGaussian:
      return "Gaussian";
    case ErrorModel::kUniform:
      return "Uniform";
  }
  return "Unknown";
}

StatusOr<Dataset> InjectUncertainty(const PointDataset& points,
                                    const UncertaintyOptions& options) {
  if (options.width_fraction < 0.0) {
    return Status::InvalidArgument("width_fraction must be >= 0");
  }
  if (options.samples_per_pdf < 1) {
    return Status::InvalidArgument("samples_per_pdf must be >= 1");
  }
  if (points.num_tuples() == 0) {
    return Status::InvalidArgument("cannot inject uncertainty into an empty "
                                   "data set");
  }

  // Pre-compute the pdf width per attribute: w * |Aj|.
  std::vector<double> widths(static_cast<size_t>(points.num_attributes()));
  for (int j = 0; j < points.num_attributes(); ++j) {
    auto [lo, hi] = points.AttributeRange(j);
    widths[static_cast<size_t>(j)] = options.width_fraction * (hi - lo);
  }

  Dataset dataset(points.schema());
  for (int i = 0; i < points.num_tuples(); ++i) {
    UncertainTuple tuple;
    tuple.label = points.label(i);
    tuple.values.reserve(static_cast<size_t>(points.num_attributes()));
    for (int j = 0; j < points.num_attributes(); ++j) {
      double v = points.value(i, j);
      double width = widths[static_cast<size_t>(j)];
      StatusOr<SampledPdf> pdf =
          options.error_model == ErrorModel::kGaussian
              ? MakeGaussianErrorPdf(v, width, options.samples_per_pdf)
              : MakeUniformErrorPdf(v, width, options.samples_per_pdf);
      if (!pdf.ok()) return pdf.status();
      tuple.values.push_back(UncertainValue::Numerical(std::move(*pdf)));
    }
    UDT_RETURN_NOT_OK(dataset.AddTuple(std::move(tuple)));
  }
  return dataset;
}

PointDataset PerturbPointData(const PointDataset& points, double u, Rng* rng) {
  UDT_CHECK(u >= 0.0);
  UDT_CHECK(rng != nullptr);
  PointDataset result(points.schema());
  if (points.num_tuples() == 0) return result;

  std::vector<double> sigmas(static_cast<size_t>(points.num_attributes()));
  for (int j = 0; j < points.num_attributes(); ++j) {
    auto [lo, hi] = points.AttributeRange(j);
    sigmas[static_cast<size_t>(j)] = u * (hi - lo) / 4.0;
  }

  for (int i = 0; i < points.num_tuples(); ++i) {
    std::vector<double> row = points.row(i);
    for (int j = 0; j < points.num_attributes(); ++j) {
      double sigma = sigmas[static_cast<size_t>(j)];
      if (sigma > 0.0) {
        row[static_cast<size_t>(j)] += rng->Gaussian(0.0, sigma);
      }
    }
    Status st = result.AddRow(std::move(row), points.label(i));
    UDT_CHECK(st.ok());
  }
  return result;
}

}  // namespace udt
