#include "table/attribute.h"

#include <set>

#include "common/string_util.h"

namespace udt {

StatusOr<Schema> Schema::Create(std::vector<AttributeInfo> attributes,
                                std::vector<std::string> class_names) {
  if (attributes.empty()) {
    return Status::InvalidArgument("schema requires at least one attribute");
  }
  if (class_names.size() < 1) {
    return Status::InvalidArgument("schema requires at least one class");
  }
  std::set<std::string> seen;
  for (const AttributeInfo& info : attributes) {
    if (info.name.empty()) {
      return Status::InvalidArgument("attribute names must be non-empty");
    }
    if (!seen.insert(info.name).second) {
      return Status::InvalidArgument("duplicate attribute name: " + info.name);
    }
    if (info.kind == AttributeKind::kCategorical && info.num_categories < 2) {
      return Status::InvalidArgument(
          "categorical attribute needs >= 2 categories: " + info.name);
    }
  }
  std::set<std::string> class_seen;
  for (const std::string& name : class_names) {
    if (!class_seen.insert(name).second) {
      return Status::InvalidArgument("duplicate class name: " + name);
    }
  }
  return Schema(std::move(attributes), std::move(class_names));
}

Schema Schema::Numerical(int num_attributes,
                         std::vector<std::string> class_names) {
  std::vector<AttributeInfo> attributes;
  attributes.reserve(static_cast<size_t>(num_attributes));
  for (int j = 0; j < num_attributes; ++j) {
    attributes.push_back(
        AttributeInfo{StrFormat("A%d", j + 1), AttributeKind::kNumerical, 0});
  }
  auto schema = Create(std::move(attributes), std::move(class_names));
  UDT_CHECK(schema.ok());
  return std::move(schema).value();
}

int Schema::ClassIndex(const std::string& name) const {
  for (size_t c = 0; c < class_names_.size(); ++c) {
    if (class_names_[c] == name) return static_cast<int>(c);
  }
  return -1;
}

int Schema::AttributeIndex(const std::string& name) const {
  for (size_t j = 0; j < attributes_.size(); ++j) {
    if (attributes_[j].name == name) return static_cast<int>(j);
  }
  return -1;
}

}  // namespace udt
