#include "table/schema_io.h"

#include <optional>
#include <utility>
#include <vector>

#include "common/string_util.h"

namespace udt {
namespace {

// Declared counts are bounded before any allocation; shared with the
// containers' own table headers via the same spirit, not the same value.
constexpr int kMaxDeclaredCount = 1 << 20;

}  // namespace

Status LineReader::Next(std::string_view what) {
  if (!std::getline(in_, line_)) {
    // The missing line would have been line_number_ + 1.
    return Status::InvalidArgument(
        StrFormat("%s: line %d: truncated before %s", context_.c_str(),
                  line_number_ + 1, std::string(what).c_str()));
  }
  ++line_number_;
  // Tolerate CRLF line endings (a file saved through a text-mode stream on
  // Windows must load everywhere).
  if (!line_.empty() && line_.back() == '\r') line_.pop_back();
  return Status::OK();
}

Status LineReader::Error(std::string_view message) const {
  return Status::InvalidArgument(StrFormat("%s: line %d: %s", context_.c_str(),
                                           line_number_,
                                           std::string(message).c_str()));
}

void WriteSchemaBlock(const Schema& schema, std::ostream& out) {
  out << "classes " << schema.num_classes() << "\n";
  for (const std::string& name : schema.class_names()) out << name << "\n";
  out << "attributes " << schema.num_attributes() << "\n";
  for (const AttributeInfo& attr : schema.attributes()) {
    if (attr.kind == AttributeKind::kCategorical) {
      out << "attr cat " << attr.num_categories << " " << attr.name << "\n";
    } else {
      out << "attr num 0 " << attr.name << "\n";
    }
  }
}

bool SchemaEquals(const Schema& a, const Schema& b) {
  if (a.num_attributes() != b.num_attributes() ||
      a.class_names() != b.class_names()) {
    return false;
  }
  for (int j = 0; j < a.num_attributes(); ++j) {
    const AttributeInfo& x = a.attribute(j);
    const AttributeInfo& y = b.attribute(j);
    if (x.name != y.name || x.kind != y.kind ||
        x.num_categories != y.num_categories) {
      return false;
    }
  }
  return true;
}

StatusOr<Schema> ReadSchemaBlock(LineReader* reader) {
  UDT_RETURN_NOT_OK(reader->Next("classes"));
  if (reader->line().rfind("classes ", 0) != 0) {
    return reader->Error("expected classes line");
  }
  std::optional<int> num_classes = ParseInt(reader->line().substr(8));
  if (!num_classes || *num_classes < 1 || *num_classes > kMaxDeclaredCount) {
    return reader->Error("bad class count");
  }
  std::vector<std::string> class_names;
  class_names.reserve(static_cast<size_t>(*num_classes));
  for (int c = 0; c < *num_classes; ++c) {
    UDT_RETURN_NOT_OK(reader->Next("class name"));
    class_names.push_back(reader->line());
  }

  UDT_RETURN_NOT_OK(reader->Next("attributes"));
  if (reader->line().rfind("attributes ", 0) != 0) {
    return reader->Error("expected attributes line");
  }
  std::optional<int> num_attributes = ParseInt(reader->line().substr(11));
  if (!num_attributes || *num_attributes < 1 ||
      *num_attributes > kMaxDeclaredCount) {
    return reader->Error("bad attribute count");
  }
  std::vector<AttributeInfo> attributes;
  attributes.reserve(static_cast<size_t>(*num_attributes));
  for (int j = 0; j < *num_attributes; ++j) {
    UDT_RETURN_NOT_OK(reader->Next("attr"));
    // "attr num 0 <name>" | "attr cat <n> <name>"; the name is the rest of
    // the line and may contain spaces.
    const std::string& line = reader->line();
    std::vector<std::string> head = SplitString(line, ' ');
    if (head.size() < 4 || head[0] != "attr") {
      return reader->Error("bad attr line: " + line);
    }
    AttributeInfo info;
    std::optional<int> categories = ParseInt(head[2]);
    if (!categories) {
      return reader->Error("bad attr arity: " + line);
    }
    if (head[1] == "cat") {
      info.kind = AttributeKind::kCategorical;
      info.num_categories = *categories;
    } else if (head[1] == "num") {
      info.kind = AttributeKind::kNumerical;
    } else {
      return reader->Error("bad attr kind: " + line);
    }
    const size_t name_offset =
        head[0].size() + head[1].size() + head[2].size() + 3;
    info.name = line.substr(name_offset);
    attributes.push_back(std::move(info));
  }
  return Schema::Create(std::move(attributes), std::move(class_names));
}

}  // namespace udt
