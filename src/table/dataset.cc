#include "table/dataset.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <unordered_set>

#include "common/logging.h"
#include "common/string_util.h"

namespace udt {

StatusOr<CategoricalPdf> CategoricalPdf::Create(
    std::vector<double> probabilities) {
  if (probabilities.size() < 2) {
    return Status::InvalidArgument(
        "categorical pdf requires >= 2 categories");
  }
  double total = 0.0;
  for (double p : probabilities) {
    if (!std::isfinite(p) || p < 0.0) {
      return Status::InvalidArgument(
          "categorical probabilities must be finite and non-negative");
    }
    total += p;
  }
  if (total <= 0.0) {
    return Status::InvalidArgument("categorical pdf carries no mass");
  }
  for (double& p : probabilities) p /= total;
  return CategoricalPdf(std::move(probabilities));
}

CategoricalPdf CategoricalPdf::Certain(int category, int num_categories) {
  UDT_CHECK(num_categories >= 2);
  UDT_CHECK(category >= 0 && category < num_categories);
  std::vector<double> probabilities(static_cast<size_t>(num_categories), 0.0);
  probabilities[static_cast<size_t>(category)] = 1.0;
  return CategoricalPdf(std::move(probabilities));
}

int CategoricalPdf::MostLikely() const {
  int best = 0;
  for (int c = 1; c < num_categories(); ++c) {
    if (probability(c) > probability(best)) best = c;
  }
  return best;
}

Status Dataset::AddTuple(UncertainTuple tuple) {
  if (static_cast<int>(tuple.values.size()) != schema_.num_attributes()) {
    return Status::InvalidArgument(StrFormat(
        "tuple has %d values, schema expects %d",
        static_cast<int>(tuple.values.size()), schema_.num_attributes()));
  }
  if (tuple.label < 0 || tuple.label >= schema_.num_classes()) {
    return Status::InvalidArgument(
        StrFormat("label %d out of range [0, %d)", tuple.label,
                  schema_.num_classes()));
  }
  for (int j = 0; j < schema_.num_attributes(); ++j) {
    const AttributeInfo& info = schema_.attribute(j);
    const UncertainValue& value = tuple.values[static_cast<size_t>(j)];
    if (info.kind == AttributeKind::kNumerical && !value.is_numerical()) {
      return Status::InvalidArgument("categorical value in numerical column " +
                                     info.name);
    }
    if (info.kind == AttributeKind::kCategorical) {
      if (value.is_numerical()) {
        return Status::InvalidArgument(
            "numerical value in categorical column " + info.name);
      }
      if (value.categorical().num_categories() != info.num_categories) {
        return Status::InvalidArgument(
            "categorical cardinality mismatch in column " + info.name);
      }
    }
  }
  tuples_.push_back(std::move(tuple));
  return Status::OK();
}

std::pair<double, double> Dataset::AttributeRange(int j) const {
  UDT_CHECK(!tuples_.empty());
  UDT_CHECK(schema_.attribute(j).kind == AttributeKind::kNumerical);
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const UncertainTuple& t : tuples_) {
    const SampledPdf& pdf = t.values[static_cast<size_t>(j)].pdf();
    lo = std::min(lo, pdf.support_min());
    hi = std::max(hi, pdf.support_max());
  }
  return {lo, hi};
}

std::vector<int> Dataset::ClassHistogram() const {
  std::vector<int> histogram(static_cast<size_t>(schema_.num_classes()), 0);
  for (const UncertainTuple& t : tuples_) {
    ++histogram[static_cast<size_t>(t.label)];
  }
  return histogram;
}

size_t Dataset::MemoryUsageBytes() const {
  return MemoryBreakdown().total_bytes;
}

DatasetMemoryBreakdown Dataset::MemoryBreakdown() const {
  DatasetMemoryBreakdown b;
  b.num_tuples = static_cast<int64_t>(tuples_.size());
  b.tuple_bytes = sizeof(Dataset) + sizeof(UncertainTuple) * tuples_.capacity();
  std::unordered_set<const SampledPdf*> seen;
  for (const UncertainTuple& t : tuples_) {
    b.num_values += static_cast<int64_t>(t.values.size());
    b.tuple_bytes += sizeof(UncertainValue) * t.values.capacity();
    for (const UncertainValue& v : t.values) {
      if (v.is_numerical()) {
        const size_t bytes = v.pdf().MemoryUsageBytes();
        b.unshared_pdf_bytes += bytes;
        if (seen.insert(v.pdf_instance()).second) b.pdf_bytes += bytes;
      } else {
        b.categorical_bytes +=
            sizeof(double) *
            static_cast<size_t>(v.categorical().num_categories());
      }
    }
  }
  b.unique_pdfs = static_cast<int64_t>(seen.size());
  b.total_bytes = b.tuple_bytes + b.pdf_bytes + b.categorical_bytes;
  b.unshared_total_bytes =
      b.tuple_bytes + b.unshared_pdf_bytes + b.categorical_bytes;
  if (!tuples_.empty()) {
    const double n = static_cast<double>(tuples_.size());
    b.bytes_per_tuple = static_cast<double>(b.total_bytes) / n;
    b.unshared_bytes_per_tuple =
        static_cast<double>(b.unshared_total_bytes) / n;
  }
  return b;
}

UncertainTuple TupleToMeans(const UncertainTuple& tuple) {
  UncertainTuple reduced;
  reduced.label = tuple.label;
  reduced.values.reserve(tuple.values.size());
  for (const UncertainValue& v : tuple.values) {
    if (v.is_numerical()) {
      reduced.values.push_back(
          UncertainValue::Numerical(SampledPdf::PointMass(v.pdf().Mean())));
    } else {
      // Categorical values collapse to their most likely category.
      reduced.values.push_back(UncertainValue::Categorical(
          CategoricalPdf::Certain(v.categorical().MostLikely(),
                                  v.categorical().num_categories())));
    }
  }
  return reduced;
}

Dataset Dataset::ToMeans() const {
  Dataset result(schema_);
  result.tuples_.reserve(tuples_.size());
  for (const UncertainTuple& t : tuples_) {
    result.tuples_.push_back(TupleToMeans(t));
  }
  return result;
}

std::vector<int> Dataset::StratifiedFolds(int k, Rng* rng) const {
  UDT_CHECK(k >= 2);
  UDT_CHECK(rng != nullptr);
  std::vector<int> fold_of(tuples_.size(), 0);
  // Group tuple indices by class, shuffle within class, deal round-robin.
  for (int c = 0; c < schema_.num_classes(); ++c) {
    std::vector<int> members;
    for (size_t i = 0; i < tuples_.size(); ++i) {
      if (tuples_[i].label == c) members.push_back(static_cast<int>(i));
    }
    rng->Shuffle(&members);
    for (size_t r = 0; r < members.size(); ++r) {
      fold_of[static_cast<size_t>(members[r])] =
          static_cast<int>(r % static_cast<size_t>(k));
    }
  }
  return fold_of;
}

std::pair<Dataset, Dataset> Dataset::SplitByFold(
    const std::vector<int>& fold_of, int test_fold) const {
  UDT_CHECK(fold_of.size() == tuples_.size());
  Dataset train(schema_);
  Dataset test(schema_);
  for (size_t i = 0; i < tuples_.size(); ++i) {
    if (fold_of[i] == test_fold) {
      test.tuples_.push_back(tuples_[i]);
    } else {
      train.tuples_.push_back(tuples_[i]);
    }
  }
  return {std::move(train), std::move(test)};
}

std::pair<Dataset, Dataset> Dataset::RandomSplit(double test_fraction,
                                                 Rng* rng) const {
  UDT_CHECK(test_fraction > 0.0 && test_fraction < 1.0);
  UDT_CHECK(rng != nullptr);
  Dataset train(schema_);
  Dataset test(schema_);
  for (int c = 0; c < schema_.num_classes(); ++c) {
    std::vector<int> members;
    for (size_t i = 0; i < tuples_.size(); ++i) {
      if (tuples_[i].label == c) members.push_back(static_cast<int>(i));
    }
    rng->Shuffle(&members);
    size_t num_test = static_cast<size_t>(
        std::llround(test_fraction * static_cast<double>(members.size())));
    for (size_t r = 0; r < members.size(); ++r) {
      const UncertainTuple& t = tuples_[static_cast<size_t>(members[r])];
      if (r < num_test) {
        test.tuples_.push_back(t);
      } else {
        train.tuples_.push_back(t);
      }
    }
  }
  return {std::move(train), std::move(test)};
}

}  // namespace udt
