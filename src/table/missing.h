// Missing-value handling (Section 2): "a simple method of 'filling in' the
// missing values could be adopted ... taking advantage of the capability of
// handling arbitrary pdfs in our approach. We can take the average of the
// pdf of the attribute in question over the tuples where the value is
// present. The result is a pdf which can be used as a 'guess' distribution
// of the attribute's value in the missing tuples."
//
// Two levels are provided:
//  * point imputation (classical: global or class-conditional mean) for
//    the AVG pipeline, and
//  * pdf imputation (the paper's mixture-of-present-pdfs) for the
//    distribution-based pipeline, built on top of InjectUncertainty.

#ifndef UDT_TABLE_MISSING_H_
#define UDT_TABLE_MISSING_H_

#include "common/statusor.h"
#include "table/point_dataset.h"
#include "table/uncertainty_injector.h"

namespace udt {

// How missing entries are guessed.
enum class ImputeStrategy {
  kGlobalMean,  // attribute mean over all present values
  kClassMean,   // attribute mean over present values of the tuple's class
                // (falls back to the global mean for classes with no
                // present value)
};

// Returns a copy of `points` with every NaN replaced per `strategy`.
// Fails if some attribute has no present value at all.
StatusOr<PointDataset> ImputeMissingValues(const PointDataset& points,
                                           ImputeStrategy strategy);

// Controls pdf-level imputation.
struct MissingPdfOptions {
  // Present values receive pdfs from this injector configuration.
  UncertaintyOptions inject;
  // If true, the guess mixture uses only same-class tuples; otherwise all
  // tuples with a present value (the paper's formulation).
  bool class_conditional = false;
};

// The paper's approach: present values are injected as usual; each missing
// entry receives the (optionally class-conditional) mixture of the present
// pdfs of its attribute, downsampled to inject.samples_per_pdf points.
// Fails if some attribute (or class slice) has no present value.
StatusOr<Dataset> InjectUncertaintyWithMissing(
    const PointDataset& points, const MissingPdfOptions& options);

}  // namespace udt

#endif  // UDT_TABLE_MISSING_H_
