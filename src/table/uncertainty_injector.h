// The paper's data-preparation pipeline (Sections 4.3 and 4.4):
//
//  * InjectUncertainty — "for each tuple ti and attribute Aj, the point
//    value vij is used as the mean of a pdf fij defined over an interval of
//    width w * |Aj|", with either a uniform distribution or a Gaussian whose
//    standard deviation is a quarter of the interval width, discretised
//    into s sample points.
//  * PerturbPointData — the controlled-noise experiment: each value is
//    shifted by Gaussian noise with sigma = (u * |Aj|) / 4 before
//    uncertainty is injected, so the injected pdf may or may not match the
//    true error.

#ifndef UDT_TABLE_UNCERTAINTY_INJECTOR_H_
#define UDT_TABLE_UNCERTAINTY_INJECTOR_H_

#include "common/random.h"
#include "common/statusor.h"
#include "table/dataset.h"
#include "table/point_dataset.h"

namespace udt {

// The two error models evaluated in the paper.
enum class ErrorModel {
  kGaussian,  // random measurement noise
  kUniform,   // quantisation noise
};

const char* ErrorModelToString(ErrorModel model);

// Controls pdf synthesis.
struct UncertaintyOptions {
  // w: pdf-domain width as a fraction of the attribute's observed range.
  double width_fraction = 0.10;
  // s: number of sample points per pdf.
  int samples_per_pdf = 100;
  ErrorModel error_model = ErrorModel::kGaussian;
};

// Turns a point data set into an uncertain one: every value v becomes a pdf
// with mean v, support width = width_fraction * |Aj| (clamped to a tiny
// positive width if the attribute is constant). width_fraction == 0 yields
// point masses, which makes UDT degenerate to AVG by construction.
StatusOr<Dataset> InjectUncertainty(const PointDataset& points,
                                    const UncertaintyOptions& options);

// Section 4.4: returns a copy of `points` where each value is perturbed by
// N(0, sigma^2) with sigma = (u * |Aj|) / 4. u == 0 returns an exact copy.
PointDataset PerturbPointData(const PointDataset& points, double u, Rng* rng);

}  // namespace udt

#endif  // UDT_TABLE_UNCERTAINTY_INJECTOR_H_
