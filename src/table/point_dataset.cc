#include "table/point_dataset.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/string_util.h"

namespace udt {

Status PointDataset::AddRow(std::vector<double> values, int label) {
  if (static_cast<int>(values.size()) != schema_.num_attributes()) {
    return Status::InvalidArgument(StrFormat(
        "row has %d values, schema expects %d",
        static_cast<int>(values.size()), schema_.num_attributes()));
  }
  if (label < 0 || label >= schema_.num_classes()) {
    return Status::InvalidArgument(StrFormat("label %d out of range", label));
  }
  for (double v : values) {
    if (!std::isfinite(v)) {
      return Status::InvalidArgument("row values must be finite");
    }
  }
  rows_.push_back(std::move(values));
  labels_.push_back(label);
  return Status::OK();
}

Status PointDataset::AddRowWithMissing(std::vector<double> values,
                                       int label) {
  if (static_cast<int>(values.size()) != schema_.num_attributes()) {
    return Status::InvalidArgument(StrFormat(
        "row has %d values, schema expects %d",
        static_cast<int>(values.size()), schema_.num_attributes()));
  }
  if (label < 0 || label >= schema_.num_classes()) {
    return Status::InvalidArgument(StrFormat("label %d out of range", label));
  }
  for (double v : values) {
    if (std::isinf(v)) {
      return Status::InvalidArgument("row values must not be infinite");
    }
  }
  rows_.push_back(std::move(values));
  labels_.push_back(label);
  return Status::OK();
}

bool PointDataset::is_missing(int i, int j) const {
  return std::isnan(value(i, j));
}

int PointDataset::CountMissing() const {
  int count = 0;
  for (const std::vector<double>& row : rows_) {
    for (double v : row) {
      if (std::isnan(v)) ++count;
    }
  }
  return count;
}

std::pair<double, double> PointDataset::AttributeRange(int j) const {
  UDT_CHECK(!rows_.empty());
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const std::vector<double>& row : rows_) {
    double v = row[static_cast<size_t>(j)];
    if (std::isnan(v)) continue;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  UDT_CHECK(lo <= hi);  // at least one present value required
  return {lo, hi};
}

Dataset PointDataset::ToPointMassDataset() const {
  UDT_CHECK(CountMissing() == 0);
  Dataset result(schema_);
  for (int i = 0; i < num_tuples(); ++i) {
    UncertainTuple tuple;
    tuple.label = labels_[static_cast<size_t>(i)];
    tuple.values.reserve(static_cast<size_t>(num_attributes()));
    for (int j = 0; j < num_attributes(); ++j) {
      tuple.values.push_back(
          UncertainValue::Numerical(SampledPdf::PointMass(value(i, j))));
    }
    Status st = result.AddTuple(std::move(tuple));
    UDT_CHECK(st.ok());
  }
  return result;
}

}  // namespace udt
