// CSV import/export for point-valued data sets.
//
// Format: one header line with attribute names followed by "class"; each
// data row holds the numerical attribute values and a class-label string in
// the final column. The class vocabulary is inferred in order of first
// appearance. Fields may be RFC-4180 double-quoted: a quoted field can
// contain commas and escaped quotes (""), so class labels and attribute
// names with commas round-trip. Quoted fields cannot span lines (the
// reader is line-oriented); an embedded line break surfaces as a precise
// unterminated-quote error rather than a misparsed row. CRLF line endings
// and trailing blank lines are accepted.

#ifndef UDT_TABLE_CSV_H_
#define UDT_TABLE_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/statusor.h"
#include "table/point_dataset.h"

namespace udt {

// Splits one CSV record into its fields. A plain field runs to the next
// comma; a field whose first non-blank character is '"' is RFC-4180
// quoted — it runs to the matching close quote, may contain commas and
// escaped quotes (""), and must be followed (blanks aside) by a comma or
// the end of the record. Blanks outside the quotes are ignored, blanks
// inside are preserved by this splitter — though ReadCsvFromString then
// trims the surrounding whitespace of every field it consumes, quoted or
// not, so quoting protects commas and quote characters, never padding.
// Returns InvalidArgument on an unterminated quote
// or stray text after a close quote (the silent mis-split these cases
// used to produce surfaced as bogus field-count errors or corrupted
// labels downstream).
StatusOr<std::vector<std::string>> SplitCsvRecord(std::string_view record);

// Quotes and escapes `field` when it contains a comma, quote or line
// break, so comma- and quote-bearing names round-trip through
// WriteCsvToString / ReadCsvFromString. Two documented limits of the
// line-oriented reader remain: a field containing a line break is written
// quoted but re-parsing it fails with the precise unterminated-quote
// error (never a silent mis-split), and surrounding whitespace of any
// field is trimmed on read.
std::string CsvEscapeField(const std::string& field);

// Parses a CSV document (in-memory string). A bare "?" in an attribute
// column marks a missing value (stored as NaN; see table/missing.h).
// Fails on ragged rows, unparsable numbers, malformed quoting, or an
// empty body.
StatusOr<PointDataset> ReadCsvFromString(const std::string& text);

// Reads a CSV file from disk.
StatusOr<PointDataset> ReadCsvFile(const std::string& path);

// Renders the data set back to CSV text.
std::string WriteCsvToString(const PointDataset& dataset);

// Writes CSV to disk.
Status WriteCsvFile(const PointDataset& dataset, const std::string& path);

}  // namespace udt

#endif  // UDT_TABLE_CSV_H_
