// CSV import/export for point-valued data sets.
//
// Format: one header line with attribute names followed by "class"; each
// data row holds the numerical attribute values and a class-label string in
// the final column. The class vocabulary is inferred in order of first
// appearance.

#ifndef UDT_TABLE_CSV_H_
#define UDT_TABLE_CSV_H_

#include <string>

#include "common/statusor.h"
#include "table/point_dataset.h"

namespace udt {

// Parses a CSV document (in-memory string). A bare "?" in an attribute
// column marks a missing value (stored as NaN; see table/missing.h).
// Fails on ragged rows, unparsable numbers, or an empty body.
StatusOr<PointDataset> ReadCsvFromString(const std::string& text);

// Reads a CSV file from disk.
StatusOr<PointDataset> ReadCsvFile(const std::string& path);

// Renders the data set back to CSV text.
std::string WriteCsvToString(const PointDataset& dataset);

// Writes CSV to disk.
Status WriteCsvFile(const PointDataset& dataset, const std::string& path);

}  // namespace udt

#endif  // UDT_TABLE_CSV_H_
