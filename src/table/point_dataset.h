// Point-valued data sets: the classical representation the paper starts
// from. The ten UCI-style data sets are generated (or loaded from CSV) as
// PointDatasets; the uncertainty injector then turns them into uncertain
// Datasets exactly as Section 4.3 prescribes.

#ifndef UDT_TABLE_POINT_DATASET_H_
#define UDT_TABLE_POINT_DATASET_H_

#include <utility>
#include <vector>

#include "common/random.h"
#include "common/statusor.h"
#include "table/attribute.h"
#include "table/dataset.h"

namespace udt {

// A data set of certain (point-valued) numerical tuples.
class PointDataset {
 public:
  explicit PointDataset(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  int num_attributes() const { return schema_.num_attributes(); }
  int num_classes() const { return schema_.num_classes(); }
  int num_tuples() const { return static_cast<int>(labels_.size()); }

  double value(int i, int j) const {
    return rows_[static_cast<size_t>(i)][static_cast<size_t>(j)];
  }
  int label(int i) const { return labels_[static_cast<size_t>(i)]; }
  const std::vector<double>& row(int i) const {
    return rows_[static_cast<size_t>(i)];
  }

  // Appends a row. Fails on arity/label mismatch or non-finite values.
  Status AddRow(std::vector<double> values, int label);

  // Appends a row that may contain missing values, encoded as NaN
  // (Section 2 discusses how the uncertainty framework subsumes missing
  // values; see table/missing.h). Infinite values are still rejected.
  Status AddRowWithMissing(std::vector<double> values, int label);

  // True if entry (i, j) is missing (NaN).
  bool is_missing(int i, int j) const;

  // Number of missing entries in the whole table.
  int CountMissing() const;

  // [min, max] of attribute j over all rows, ignoring missing entries.
  // Requires at least one present value.
  std::pair<double, double> AttributeRange(int j) const;

  // Converts to an uncertain Dataset of point masses (zero uncertainty).
  // Requires no missing entries (impute first; see table/missing.h).
  Dataset ToPointMassDataset() const;

 private:
  Schema schema_;
  std::vector<std::vector<double>> rows_;
  std::vector<int> labels_;
};

}  // namespace udt

#endif  // UDT_TABLE_POINT_DATASET_H_
