#include "table/missing.h"

#include <cmath>

#include "common/string_util.h"
#include "pdf/pdf_builder.h"
#include "pdf/pdf_ops.h"

namespace udt {

namespace {

// Mean of present values of attribute j; nullopt if none.
std::optional<double> PresentMean(const PointDataset& points, int j,
                                  int restrict_label) {
  double sum = 0.0;
  int count = 0;
  for (int i = 0; i < points.num_tuples(); ++i) {
    if (restrict_label >= 0 && points.label(i) != restrict_label) continue;
    if (points.is_missing(i, j)) continue;
    sum += points.value(i, j);
    ++count;
  }
  if (count == 0) return std::nullopt;
  return sum / count;
}

}  // namespace

StatusOr<PointDataset> ImputeMissingValues(const PointDataset& points,
                                           ImputeStrategy strategy) {
  // Precompute global and per-class means.
  std::vector<std::optional<double>> global_mean(
      static_cast<size_t>(points.num_attributes()));
  for (int j = 0; j < points.num_attributes(); ++j) {
    global_mean[static_cast<size_t>(j)] = PresentMean(points, j, -1);
    if (!global_mean[static_cast<size_t>(j)].has_value()) {
      return Status::InvalidArgument(StrFormat(
          "attribute %d has no present value to impute from", j));
    }
  }
  std::vector<std::vector<std::optional<double>>> class_mean;
  if (strategy == ImputeStrategy::kClassMean) {
    class_mean.resize(static_cast<size_t>(points.num_classes()));
    for (int c = 0; c < points.num_classes(); ++c) {
      class_mean[static_cast<size_t>(c)].resize(
          static_cast<size_t>(points.num_attributes()));
      for (int j = 0; j < points.num_attributes(); ++j) {
        class_mean[static_cast<size_t>(c)][static_cast<size_t>(j)] =
            PresentMean(points, j, c);
      }
    }
  }

  PointDataset result(points.schema());
  for (int i = 0; i < points.num_tuples(); ++i) {
    std::vector<double> row = points.row(i);
    for (int j = 0; j < points.num_attributes(); ++j) {
      if (!std::isnan(row[static_cast<size_t>(j)])) continue;
      std::optional<double> guess;
      if (strategy == ImputeStrategy::kClassMean) {
        guess = class_mean[static_cast<size_t>(points.label(i))]
                          [static_cast<size_t>(j)];
      }
      if (!guess.has_value()) guess = global_mean[static_cast<size_t>(j)];
      row[static_cast<size_t>(j)] = *guess;
    }
    UDT_RETURN_NOT_OK(result.AddRow(std::move(row), points.label(i)));
  }
  return result;
}

StatusOr<Dataset> InjectUncertaintyWithMissing(
    const PointDataset& points, const MissingPdfOptions& options) {
  if (points.num_tuples() == 0) {
    return Status::InvalidArgument("empty data set");
  }
  const UncertaintyOptions& inject = options.inject;
  if (inject.samples_per_pdf < 1) {
    return Status::InvalidArgument("samples_per_pdf must be >= 1");
  }

  // Pdf widths per attribute, over present values only.
  std::vector<double> widths(static_cast<size_t>(points.num_attributes()));
  for (int j = 0; j < points.num_attributes(); ++j) {
    auto [lo, hi] = points.AttributeRange(j);
    widths[static_cast<size_t>(j)] = inject.width_fraction * (hi - lo);
  }

  auto make_pdf = [&](double value, int j) -> StatusOr<SampledPdf> {
    double width = widths[static_cast<size_t>(j)];
    return inject.error_model == ErrorModel::kGaussian
               ? MakeGaussianErrorPdf(value, width, inject.samples_per_pdf)
               : MakeUniformErrorPdf(value, width, inject.samples_per_pdf);
  };

  // Guess distributions: mixture of present pdfs, per attribute (and
  // optionally per class), downsampled to s points.
  int num_slices = options.class_conditional ? points.num_classes() : 1;
  std::vector<std::vector<std::optional<SampledPdf>>> guesses(
      static_cast<size_t>(num_slices));
  for (int slice = 0; slice < num_slices; ++slice) {
    guesses[static_cast<size_t>(slice)].resize(
        static_cast<size_t>(points.num_attributes()));
    for (int j = 0; j < points.num_attributes(); ++j) {
      std::vector<SampledPdf> present;
      for (int i = 0; i < points.num_tuples(); ++i) {
        if (options.class_conditional && points.label(i) != slice) continue;
        if (points.is_missing(i, j)) continue;
        UDT_ASSIGN_OR_RETURN(SampledPdf pdf, make_pdf(points.value(i, j), j));
        present.push_back(std::move(pdf));
      }
      if (present.empty()) {
        if (options.class_conditional) continue;  // fall back below
        return Status::InvalidArgument(StrFormat(
            "attribute %d has no present value to build a guess pdf", j));
      }
      UDT_ASSIGN_OR_RETURN(SampledPdf mixture, MixPdfs(present));
      UDT_ASSIGN_OR_RETURN(
          SampledPdf guess,
          DownsamplePdf(mixture, inject.samples_per_pdf));
      guesses[static_cast<size_t>(slice)][static_cast<size_t>(j)] =
          std::move(guess);
    }
  }
  // Global fallback mixtures for class-conditional mode.
  std::vector<std::optional<SampledPdf>> global_guess(
      static_cast<size_t>(points.num_attributes()));
  if (options.class_conditional) {
    for (int j = 0; j < points.num_attributes(); ++j) {
      std::vector<SampledPdf> present;
      for (int i = 0; i < points.num_tuples(); ++i) {
        if (points.is_missing(i, j)) continue;
        UDT_ASSIGN_OR_RETURN(SampledPdf pdf, make_pdf(points.value(i, j), j));
        present.push_back(std::move(pdf));
      }
      if (present.empty()) {
        return Status::InvalidArgument(StrFormat(
            "attribute %d has no present value to build a guess pdf", j));
      }
      UDT_ASSIGN_OR_RETURN(SampledPdf mixture, MixPdfs(present));
      UDT_ASSIGN_OR_RETURN(
          SampledPdf guess,
          DownsamplePdf(mixture, inject.samples_per_pdf));
      global_guess[static_cast<size_t>(j)] = std::move(guess);
    }
  }

  Dataset dataset(points.schema());
  for (int i = 0; i < points.num_tuples(); ++i) {
    UncertainTuple tuple;
    tuple.label = points.label(i);
    tuple.values.reserve(static_cast<size_t>(points.num_attributes()));
    for (int j = 0; j < points.num_attributes(); ++j) {
      if (points.is_missing(i, j)) {
        int slice = options.class_conditional ? points.label(i) : 0;
        const std::optional<SampledPdf>& guess =
            guesses[static_cast<size_t>(slice)][static_cast<size_t>(j)];
        const std::optional<SampledPdf>& fallback =
            options.class_conditional ? global_guess[static_cast<size_t>(j)]
                                      : guess;
        const SampledPdf& chosen = guess.has_value() ? *guess : *fallback;
        tuple.values.push_back(UncertainValue::Numerical(chosen));
      } else {
        UDT_ASSIGN_OR_RETURN(SampledPdf pdf,
                             make_pdf(points.value(i, j), j));
        tuple.values.push_back(UncertainValue::Numerical(std::move(pdf)));
      }
    }
    UDT_RETURN_NOT_OK(dataset.AddTuple(std::move(tuple)));
  }
  return dataset;
}

}  // namespace udt
