// Uncertain data sets: tuples whose feature vector is a vector of pdfs
// (Section 3.2), the container the tree algorithms train and test on.

#ifndef UDT_TABLE_DATASET_H_
#define UDT_TABLE_DATASET_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "common/statusor.h"
#include "pdf/pdf.h"
#include "table/attribute.h"

namespace udt {

// Discrete probability distribution over category ids 0..n-1 for an
// uncertain categorical attribute (Section 7.2).
class CategoricalPdf {
 public:
  // Builds from per-category probabilities (renormalised; must have >= 2
  // entries and positive total mass).
  static StatusOr<CategoricalPdf> Create(std::vector<double> probabilities);

  // All mass on one category.
  static CategoricalPdf Certain(int category, int num_categories);

  int num_categories() const {
    return static_cast<int>(probabilities_.size());
  }
  double probability(int category) const {
    return probabilities_[static_cast<size_t>(category)];
  }
  // Category with the highest probability (ties -> lowest id).
  int MostLikely() const;

 private:
  explicit CategoricalPdf(std::vector<double> probabilities)
      : probabilities_(std::move(probabilities)) {}

  std::vector<double> probabilities_;
};

// One attribute value of an uncertain tuple: either a numerical pdf or a
// categorical distribution.
//
// Numerical pdfs live behind an immutable shared handle: copying a value
// (fold splits, bootstrap views, storage-tier materialisation) bumps a
// refcount instead of duplicating three sample arrays, and values decoded
// from the same dictionary entry of a quantized container
// (storage/quantized_dataset.h) share one SampledPdf instance outright.
// Dataset::MemoryUsageBytes counts each distinct instance once.
class UncertainValue {
 public:
  static UncertainValue Numerical(SampledPdf pdf) {
    return UncertainValue(std::make_shared<const SampledPdf>(std::move(pdf)));
  }
  // Adopts an already-materialised shared pdf without copying it — the
  // storage tier's dictionary decode hands the same instance to every
  // tuple carrying that distribution. `pdf` must be non-null.
  static UncertainValue NumericalShared(
      std::shared_ptr<const SampledPdf> pdf) {
    UDT_CHECK(pdf != nullptr);
    return UncertainValue(std::move(pdf));
  }
  static UncertainValue Categorical(CategoricalPdf pdf) {
    return UncertainValue(std::move(pdf));
  }

  bool is_numerical() const {
    return std::holds_alternative<std::shared_ptr<const SampledPdf>>(value_);
  }

  // Requires is_numerical().
  const SampledPdf& pdf() const {
    return *std::get<std::shared_ptr<const SampledPdf>>(value_);
  }

  // Identity of the shared pdf instance (memory accounting and sharing
  // introspection). Requires is_numerical().
  const SampledPdf* pdf_instance() const {
    return std::get<std::shared_ptr<const SampledPdf>>(value_).get();
  }

  // The shared handle itself, for callers that propagate sharing (e.g.
  // TupleToMeans on an already-pooled data set). Requires is_numerical().
  const std::shared_ptr<const SampledPdf>& shared_pdf() const {
    return std::get<std::shared_ptr<const SampledPdf>>(value_);
  }

  // Requires !is_numerical().
  const CategoricalPdf& categorical() const {
    return std::get<CategoricalPdf>(value_);
  }

 private:
  explicit UncertainValue(std::shared_ptr<const SampledPdf> pdf)
      : value_(std::move(pdf)) {}
  explicit UncertainValue(CategoricalPdf pdf) : value_(std::move(pdf)) {}

  std::variant<std::shared_ptr<const SampledPdf>, CategoricalPdf> value_;
};

// A training/testing tuple: k uncertain values plus a class label id.
struct UncertainTuple {
  std::vector<UncertainValue> values;
  int label = 0;
};

// Reduces every value of `tuple` to a certain one: numerical pdfs become a
// point mass at their mean, categorical distributions collapse to their
// most likely category (the Averaging view of a tuple, Section 4.1).
UncertainTuple TupleToMeans(const UncertainTuple& tuple);

// Exact in-memory footprint of a Dataset, split by where the bytes live.
// Shared pdf instances are counted once under `pdf_bytes`; what sharing
// saves is visible as the gap to `unshared_pdf_bytes` (the footprint the
// same data would have if every tuple owned a private copy — the figure
// the storage-tier memory budget is compared against).
struct DatasetMemoryBreakdown {
  int64_t num_tuples = 0;
  int64_t num_values = 0;          // tuple values across all tuples
  int64_t unique_pdfs = 0;         // distinct SampledPdf instances
  size_t tuple_bytes = 0;          // tuple structs + value handles
  size_t pdf_bytes = 0;            // distinct pdf payloads, counted once
  size_t unshared_pdf_bytes = 0;   // pdf payloads counted per reference
  size_t categorical_bytes = 0;    // categorical probability vectors
  // tuple_bytes + pdf_bytes + categorical_bytes (== MemoryUsageBytes()).
  size_t total_bytes = 0;
  // tuple_bytes + unshared_pdf_bytes + categorical_bytes: the exact
  // footprint without instance sharing.
  size_t unshared_total_bytes = 0;
  // Mean bytes per tuple under each accounting.
  double bytes_per_tuple = 0.0;
  double unshared_bytes_per_tuple = 0.0;
};

// An uncertain data set: schema plus tuples. Copyable; folds and splits
// produce independent Dataset values sharing nothing mutable.
class Dataset {
 public:
  explicit Dataset(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  int num_attributes() const { return schema_.num_attributes(); }
  int num_classes() const { return schema_.num_classes(); }
  int num_tuples() const { return static_cast<int>(tuples_.size()); }
  bool empty() const { return tuples_.empty(); }

  const UncertainTuple& tuple(int i) const {
    return tuples_[static_cast<size_t>(i)];
  }
  const std::vector<UncertainTuple>& tuples() const { return tuples_; }

  // Appends a tuple. Fails if the value count, value kinds or label do not
  // match the schema.
  Status AddTuple(UncertainTuple tuple);

  // [min, max] over the supports of attribute j across all tuples (the
  // attribute's observed domain |Aj|). Requires a numerical attribute and a
  // non-empty data set.
  std::pair<double, double> AttributeRange(int j) const;

  // Number of tuples per class label.
  std::vector<int> ClassHistogram() const;

  // Heap + struct footprint of the data set, counting each shared pdf
  // instance once (see DatasetMemoryBreakdown). Excludes the schema.
  size_t MemoryUsageBytes() const;

  // The per-component breakdown behind MemoryUsageBytes, including the
  // per-tuple averages the compression bench and docs report.
  DatasetMemoryBreakdown MemoryBreakdown() const;

  // Replaces every numerical pdf by a point mass at its mean: the data the
  // Averaging approach trains on (Section 4.1).
  Dataset ToMeans() const;

  // Assigns each tuple to one of `k` folds, stratified by class so every
  // fold sees the same label mix (used for the paper's 10-fold cross
  // validation). Returns fold id per tuple. Requires k >= 2.
  std::vector<int> StratifiedFolds(int k, Rng* rng) const;

  // Partitions into (train, test): tuples with fold_of[i] == test_fold go to
  // test, the rest to train.
  std::pair<Dataset, Dataset> SplitByFold(const std::vector<int>& fold_of,
                                          int test_fold) const;

  // Random split: roughly `test_fraction` of tuples (stratified by class)
  // form the test set.
  std::pair<Dataset, Dataset> RandomSplit(double test_fraction,
                                          Rng* rng) const;

 private:
  Schema schema_;
  std::vector<UncertainTuple> tuples_;
};

}  // namespace udt

#endif  // UDT_TABLE_DATASET_H_
