// Uncertain data sets: tuples whose feature vector is a vector of pdfs
// (Section 3.2), the container the tree algorithms train and test on.

#ifndef UDT_TABLE_DATASET_H_
#define UDT_TABLE_DATASET_H_

#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/random.h"
#include "common/statusor.h"
#include "pdf/pdf.h"
#include "table/attribute.h"

namespace udt {

// Discrete probability distribution over category ids 0..n-1 for an
// uncertain categorical attribute (Section 7.2).
class CategoricalPdf {
 public:
  // Builds from per-category probabilities (renormalised; must have >= 2
  // entries and positive total mass).
  static StatusOr<CategoricalPdf> Create(std::vector<double> probabilities);

  // All mass on one category.
  static CategoricalPdf Certain(int category, int num_categories);

  int num_categories() const {
    return static_cast<int>(probabilities_.size());
  }
  double probability(int category) const {
    return probabilities_[static_cast<size_t>(category)];
  }
  // Category with the highest probability (ties -> lowest id).
  int MostLikely() const;

 private:
  explicit CategoricalPdf(std::vector<double> probabilities)
      : probabilities_(std::move(probabilities)) {}

  std::vector<double> probabilities_;
};

// One attribute value of an uncertain tuple: either a numerical pdf or a
// categorical distribution.
class UncertainValue {
 public:
  static UncertainValue Numerical(SampledPdf pdf) {
    return UncertainValue(std::move(pdf));
  }
  static UncertainValue Categorical(CategoricalPdf pdf) {
    return UncertainValue(std::move(pdf));
  }

  bool is_numerical() const {
    return std::holds_alternative<SampledPdf>(value_);
  }

  // Requires is_numerical().
  const SampledPdf& pdf() const { return std::get<SampledPdf>(value_); }

  // Requires !is_numerical().
  const CategoricalPdf& categorical() const {
    return std::get<CategoricalPdf>(value_);
  }

 private:
  explicit UncertainValue(SampledPdf pdf) : value_(std::move(pdf)) {}
  explicit UncertainValue(CategoricalPdf pdf) : value_(std::move(pdf)) {}

  std::variant<SampledPdf, CategoricalPdf> value_;
};

// A training/testing tuple: k uncertain values plus a class label id.
struct UncertainTuple {
  std::vector<UncertainValue> values;
  int label = 0;
};

// Reduces every value of `tuple` to a certain one: numerical pdfs become a
// point mass at their mean, categorical distributions collapse to their
// most likely category (the Averaging view of a tuple, Section 4.1).
UncertainTuple TupleToMeans(const UncertainTuple& tuple);

// An uncertain data set: schema plus tuples. Copyable; folds and splits
// produce independent Dataset values sharing nothing mutable.
class Dataset {
 public:
  explicit Dataset(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  int num_attributes() const { return schema_.num_attributes(); }
  int num_classes() const { return schema_.num_classes(); }
  int num_tuples() const { return static_cast<int>(tuples_.size()); }
  bool empty() const { return tuples_.empty(); }

  const UncertainTuple& tuple(int i) const {
    return tuples_[static_cast<size_t>(i)];
  }
  const std::vector<UncertainTuple>& tuples() const { return tuples_; }

  // Appends a tuple. Fails if the value count, value kinds or label do not
  // match the schema.
  Status AddTuple(UncertainTuple tuple);

  // [min, max] over the supports of attribute j across all tuples (the
  // attribute's observed domain |Aj|). Requires a numerical attribute and a
  // non-empty data set.
  std::pair<double, double> AttributeRange(int j) const;

  // Number of tuples per class label.
  std::vector<int> ClassHistogram() const;

  // Replaces every numerical pdf by a point mass at its mean: the data the
  // Averaging approach trains on (Section 4.1).
  Dataset ToMeans() const;

  // Assigns each tuple to one of `k` folds, stratified by class so every
  // fold sees the same label mix (used for the paper's 10-fold cross
  // validation). Returns fold id per tuple. Requires k >= 2.
  std::vector<int> StratifiedFolds(int k, Rng* rng) const;

  // Partitions into (train, test): tuples with fold_of[i] == test_fold go to
  // test, the rest to train.
  std::pair<Dataset, Dataset> SplitByFold(const std::vector<int>& fold_of,
                                          int test_fold) const;

  // Random split: roughly `test_fraction` of tuples (stratified by class)
  // form the test set.
  std::pair<Dataset, Dataset> RandomSplit(double test_fraction,
                                          Rng* rng) const;

 private:
  Schema schema_;
  std::vector<UncertainTuple> tuples_;
};

}  // namespace udt

#endif  // UDT_TABLE_DATASET_H_
