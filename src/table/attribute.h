// Schema description for uncertain data sets: attribute names/kinds and the
// class-label vocabulary.

#ifndef UDT_TABLE_ATTRIBUTE_H_
#define UDT_TABLE_ATTRIBUTE_H_

#include <string>
#include <vector>

#include "common/statusor.h"

namespace udt {

// Attribute kinds supported by the tree builder. Numerical attributes carry
// a SampledPdf (Section 3.2); categorical attributes carry a discrete
// distribution over category ids (Section 7.2).
enum class AttributeKind {
  kNumerical,
  kCategorical,
};

// Static description of one attribute.
struct AttributeInfo {
  std::string name;
  AttributeKind kind = AttributeKind::kNumerical;
  // Number of distinct categories; only meaningful for categorical
  // attributes.
  int num_categories = 0;
};

// Immutable data-set schema: the attribute list plus class-label names.
class Schema {
 public:
  // Builds a schema. Fails if there are no attributes, fewer than one class,
  // a categorical attribute has fewer than two categories, or names are
  // duplicated.
  static StatusOr<Schema> Create(std::vector<AttributeInfo> attributes,
                                 std::vector<std::string> class_names);

  // Convenience: k numerical attributes named A1..Ak and the given classes.
  static Schema Numerical(int num_attributes,
                          std::vector<std::string> class_names);

  int num_attributes() const { return static_cast<int>(attributes_.size()); }
  int num_classes() const { return static_cast<int>(class_names_.size()); }

  const AttributeInfo& attribute(int j) const {
    return attributes_[static_cast<size_t>(j)];
  }
  const std::vector<AttributeInfo>& attributes() const { return attributes_; }

  const std::string& class_name(int c) const {
    return class_names_[static_cast<size_t>(c)];
  }
  const std::vector<std::string>& class_names() const { return class_names_; }

  // Index of the class with the given name, or -1 if absent.
  int ClassIndex(const std::string& name) const;

  // Index of the attribute with the given name, or -1 if absent.
  int AttributeIndex(const std::string& name) const;

 private:
  Schema(std::vector<AttributeInfo> attributes,
         std::vector<std::string> class_names)
      : attributes_(std::move(attributes)),
        class_names_(std::move(class_names)) {}

  std::vector<AttributeInfo> attributes_;
  std::vector<std::string> class_names_;
};

}  // namespace udt

#endif  // UDT_TABLE_ATTRIBUTE_H_
