#include "table/csv.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/string_util.h"

namespace udt {

namespace {

bool IsFieldBlank(char c) { return c == ' ' || c == '\t'; }

}  // namespace

StatusOr<std::vector<std::string>> SplitCsvRecord(std::string_view record) {
  std::vector<std::string> fields;
  size_t i = 0;
  for (;;) {
    std::string field;
    // A field whose first non-blank character is '"' is quoted; blanks
    // outside the quotes are decoration (hand-edited CSVs put a space
    // after the comma), blanks inside are content. Without the skip,
    // ` "x, y"` would silently parse as an unquoted field — quotes
    // retained, comma mis-split — the exact failure mode this parser
    // exists to eliminate.
    size_t ws = i;
    while (ws < record.size() && IsFieldBlank(record[ws])) ++ws;
    if (ws < record.size() && record[ws] == '"') {
      i = ws + 1;  // consume the leading blanks and the opening quote
      bool closed = false;
      while (i < record.size()) {
        const char c = record[i];
        if (c == '"') {
          if (i + 1 < record.size() && record[i + 1] == '"') {
            field += '"';  // escaped quote
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        field += c;
        ++i;
      }
      if (!closed) {
        return Status::InvalidArgument(
            "unterminated quoted field (quoted fields cannot span lines)");
      }
      while (i < record.size() && IsFieldBlank(record[i])) ++i;
      if (i < record.size() && record[i] != ',') {
        return Status::InvalidArgument(
            StrFormat("unexpected character '%c' after a closing quote "
                      "(expected a comma or end of record)",
                      record[i]));
      }
    } else {
      while (i < record.size() && record[i] != ',') {
        field += record[i];
        ++i;
      }
    }
    fields.push_back(std::move(field));
    if (i >= record.size()) break;
    ++i;  // the separating comma
  }
  return fields;
}

std::string CsvEscapeField(const std::string& field) {
  if (field.find_first_of(",\"\r\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

StatusOr<PointDataset> ReadCsvFromString(const std::string& text) {
  std::vector<std::string> lines;
  for (std::string& line : SplitString(text, '\n')) {
    // Trimming the raw line strips the \r of CRLF endings; blank lines
    // (e.g. a trailing newline at end of file) are skipped entirely.
    std::string_view trimmed = TrimWhitespace(line);
    if (!trimmed.empty()) lines.emplace_back(trimmed);
  }
  if (lines.size() < 2) {
    return Status::InvalidArgument("CSV needs a header and at least one row");
  }

  StatusOr<std::vector<std::string>> header_or = SplitCsvRecord(lines[0]);
  if (!header_or.ok()) {
    return Status::InvalidArgument("header: " + header_or.status().message());
  }
  std::vector<std::string> header = std::move(header_or).value();
  if (header.size() < 2) {
    return Status::InvalidArgument(
        "CSV header needs at least one attribute and the class column");
  }
  int num_attributes = static_cast<int>(header.size()) - 1;

  // First pass: collect the class vocabulary in order of first appearance.
  std::vector<std::string> class_names;
  std::vector<std::vector<std::string>> parsed_rows;
  parsed_rows.reserve(lines.size() - 1);
  for (size_t r = 1; r < lines.size(); ++r) {
    StatusOr<std::vector<std::string>> fields_or = SplitCsvRecord(lines[r]);
    if (!fields_or.ok()) {
      return Status::InvalidArgument(
          StrFormat("row %zu: %s", r, fields_or.status().message().c_str()));
    }
    std::vector<std::string> fields = std::move(fields_or).value();
    if (fields.size() != header.size()) {
      return Status::InvalidArgument(
          StrFormat("row %zu has %zu fields, expected %zu", r, fields.size(),
                    header.size()));
    }
    std::string label(TrimWhitespace(fields.back()));
    if (label.empty()) {
      return Status::InvalidArgument(StrFormat("row %zu has empty class", r));
    }
    bool known = false;
    for (const std::string& name : class_names) {
      if (name == label) {
        known = true;
        break;
      }
    }
    if (!known) class_names.push_back(label);
    parsed_rows.push_back(std::move(fields));
  }

  std::vector<AttributeInfo> attributes;
  attributes.reserve(static_cast<size_t>(num_attributes));
  for (int j = 0; j < num_attributes; ++j) {
    std::string name(TrimWhitespace(header[static_cast<size_t>(j)]));
    attributes.push_back(
        AttributeInfo{std::move(name), AttributeKind::kNumerical, 0});
  }
  UDT_ASSIGN_OR_RETURN(Schema schema,
                       Schema::Create(std::move(attributes), class_names));

  PointDataset dataset(std::move(schema));
  bool any_missing = false;
  for (size_t r = 0; r < parsed_rows.size(); ++r) {
    const std::vector<std::string>& fields = parsed_rows[r];
    std::vector<double> values(static_cast<size_t>(num_attributes));
    for (int j = 0; j < num_attributes; ++j) {
      std::string_view field =
          TrimWhitespace(fields[static_cast<size_t>(j)]);
      if (field == "?") {  // missing-value marker (UCI convention)
        values[static_cast<size_t>(j)] =
            std::numeric_limits<double>::quiet_NaN();
        any_missing = true;
        continue;
      }
      std::optional<double> v = ParseDouble(field);
      if (!v.has_value()) {
        return Status::InvalidArgument(
            StrFormat("row %zu column %d is not a number", r + 1, j));
      }
      values[static_cast<size_t>(j)] = *v;
    }
    std::string label(TrimWhitespace(fields.back()));
    int label_id = dataset.schema().ClassIndex(label);
    UDT_RETURN_NOT_OK(any_missing
                          ? dataset.AddRowWithMissing(std::move(values),
                                                      label_id)
                          : dataset.AddRow(std::move(values), label_id));
  }
  return dataset;
}

StatusOr<PointDataset> ReadCsvFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ReadCsvFromString(buffer.str());
}

std::string WriteCsvToString(const PointDataset& dataset) {
  std::string out;
  const Schema& schema = dataset.schema();
  for (int j = 0; j < schema.num_attributes(); ++j) {
    out += CsvEscapeField(schema.attribute(j).name);
    out += ',';
  }
  out += "class\n";
  for (int i = 0; i < dataset.num_tuples(); ++i) {
    for (int j = 0; j < schema.num_attributes(); ++j) {
      if (dataset.is_missing(i, j)) {
        out += "?,";
      } else {
        out += StrFormat("%.17g,", dataset.value(i, j));
      }
    }
    out += CsvEscapeField(schema.class_name(dataset.label(i)));
    out += '\n';
  }
  return out;
}

Status WriteCsvFile(const PointDataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << WriteCsvToString(dataset);
  if (!out) return Status::IOError("write to " + path + " failed");
  return Status::OK();
}

}  // namespace udt
