// The schema block shared by every versioned udt container ("udt-model
// v1", "udt-compiled v1", "udt-forest v1", ...): a line-oriented classes +
// attributes section. Historically each container carried its own copy of
// the writer and parser; this header is the single implementation they all
// delegate to, so a format fix lands everywhere at once.
//
// Block shape (names own the rest of their line and may contain spaces):
//
//   classes <n>
//   <class name> x n
//   attributes <k>
//   attr (num 0 | cat <categories>) <attribute name> x k

#ifndef UDT_TABLE_SCHEMA_IO_H_
#define UDT_TABLE_SCHEMA_IO_H_

#include <istream>
#include <ostream>
#include <string>
#include <string_view>

#include "common/statusor.h"
#include "table/attribute.h"

namespace udt {

// Reads a container line by line with CRLF tolerance and context- and
// position-tagged errors ("<context>: line <n>: truncated before <what>").
// The containers' own header lines go through Next()/line() too, so one
// reader serves a whole Deserialize and every error it reports carries the
// offending 1-based line number. Read paths that consume lines behind the
// reader's back (raw getline on stream()) would desynchronise the count —
// route every line through Next(), as tree/flat_tree_io does for the tree
// bodies embedded in the compiled containers.
class LineReader {
 public:
  // `context` tags error messages, e.g. "udt-model". `in` must outlive
  // the reader. `start_line_number` seeds the 1-based line counter for
  // readers that resume mid-file (a rewound chunk stream seeks back to a
  // known position and keeps reporting absolute line numbers).
  LineReader(std::istream& in, std::string context, int start_line_number = 0)
      : in_(in),
        context_(std::move(context)),
        line_number_(start_line_number) {}

  // Loads the next line into line(); `what` names the expected content in
  // the truncation error.
  Status Next(std::string_view what);

  const std::string& line() const { return line_; }
  const std::string& context() const { return context_; }
  std::istream& stream() { return in_; }

  // 1-based number of the line currently in line(); 0 before the first
  // Next().
  int line_number() const { return line_number_; }

  // Accounts for lines a caller consumed directly from stream() — e.g. a
  // byte-framed container body pulled with istream::read. Raw reads are
  // safe (Next() buffers nothing) but invisible to the counter, so without
  // this every later Error() reports a line number frozen at the frame
  // header. Pass the number of '\n' the raw read consumed.
  void AccountRawLines(int lines) { line_number_ += lines; }

  // InvalidArgument("<context>: line <n>: <message>") for parse errors at
  // the current position.
  Status Error(std::string_view message) const;

 private:
  std::istream& in_;
  std::string context_;
  std::string line_;
  int line_number_ = 0;
};

// Writes the classes + attributes block of `schema`.
void WriteSchemaBlock(const Schema& schema, std::ostream& out);

// Deep structural equality: same attribute names/kinds/arities and the
// same class vocabulary, in order.
bool SchemaEquals(const Schema& a, const Schema& b);

// Parses the block written by WriteSchemaBlock. Declared counts are
// bounded before any allocation, so hostile headers fail with a Status
// instead of a bad_alloc.
StatusOr<Schema> ReadSchemaBlock(LineReader* reader);

}  // namespace udt

#endif  // UDT_TABLE_SCHEMA_IO_H_
