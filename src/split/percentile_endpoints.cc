#include "split/percentile_endpoints.h"

#include <algorithm>

#include "common/logging.h"
#include "common/math.h"

namespace udt {

std::vector<int> ComputePercentileEndpoints(const AttributeScan& scan,
                                            int percentiles_per_class) {
  UDT_CHECK(percentiles_per_class >= 1);
  std::vector<int> positions;
  if (scan.empty()) return positions;
  positions.push_back(0);
  positions.push_back(scan.num_positions() - 1);

  for (int c = 0; c < scan.num_classes(); ++c) {
    double total = scan.class_totals()[static_cast<size_t>(c)];
    if (total <= kMassEpsilon) continue;
    for (int p = 1; p <= percentiles_per_class; ++p) {
      double target = total * static_cast<double>(p) /
                      (percentiles_per_class + 1);
      // Smallest position whose cumulative class-c mass reaches the target.
      int lo = 0;
      int hi = scan.num_positions() - 1;
      while (lo < hi) {
        int mid = lo + (hi - lo) / 2;
        if (scan.CumulativeMass(mid, c) >= target) {
          hi = mid;
        } else {
          lo = mid + 1;
        }
      }
      positions.push_back(lo);
    }
  }

  std::sort(positions.begin(), positions.end());
  positions.erase(std::unique(positions.begin(), positions.end()),
                  positions.end());
  return positions;
}

}  // namespace udt
