// UDT-BP, Basic Pruning (Section 5.1): evaluates every end point, then
// skips the interiors of empty intervals (Theorem 1), homogeneous intervals
// (Theorem 2) and heterogeneous intervals whose class masses grow linearly
// (Theorem 3, the all-uniform-pdf case) - the latter two only when the
// measure is concave under the interval parameterisation (entropy/Gini).
// Remaining heterogeneous interiors are evaluated exhaustively.

#include "split/finder_common.h"
#include "split/finders.h"

namespace udt {
namespace split_internal {

namespace {

class BpFinder final : public SplitFinder {
 public:
  const char* name() const override { return "UDT-BP"; }

  SplitCandidate FindBestSplit(const Dataset& data, const WorkingSet& set,
                               const SplitScorer& scorer,
                               const SplitOptions& options,
                               SplitCounters* counters) const override {
    SplitCandidate best;
    EvalBuffers buffers;
    for (int j = 0; j < data.num_attributes(); ++j) {
      AttributeContext ctx = BuildContextForAttribute(
          data, set, j, options, data.num_classes());
      if (ctx.scan.empty()) continue;
      for (int idx : ctx.endpoints) {
        EvaluatePosition(ctx, idx, scorer, options, &best, counters,
                         &buffers);
      }
      for (const EndpointInterval& interval : ctx.intervals) {
        if (counters != nullptr) ++counters->intervals_total;
        if (interval.num_interior() <= 0) continue;
        if (PruneByKind(interval, scorer, counters)) continue;
        if (scorer.SupportsHomogeneousPruning() &&
            IntervalHasLinearGrowth(ctx.scan, interval.a_idx,
                                    interval.b_idx)) {
          if (counters != nullptr) {
            ++counters->intervals_pruned_linear;
            counters->candidates_pruned += interval.num_interior();
          }
          continue;
        }
        EvaluateInterior(ctx, interval.a_idx, interval.b_idx, scorer,
                         options, &best, counters, &buffers);
      }
    }
    return best;
  }
};

}  // namespace

std::unique_ptr<SplitFinder> MakeBpFinder() {
  return std::make_unique<BpFinder>();
}

}  // namespace split_internal
}  // namespace udt
