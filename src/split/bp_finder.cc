// UDT-BP, Basic Pruning (Section 5.1): evaluates every end point, then
// skips the interiors of empty intervals (Theorem 1), homogeneous intervals
// (Theorem 2) and heterogeneous intervals whose class masses grow linearly
// (Theorem 3, the all-uniform-pdf case) - the latter two only when the
// measure is concave under the interval parameterisation (entropy/Gini).
// Remaining heterogeneous interiors are evaluated exhaustively. None of
// the pruning consults the running best, so the attributes are naturally
// independent and parallelise without any cross-attribute phase.

#include "split/finder_common.h"
#include "split/finders.h"

namespace udt {
namespace split_internal {

namespace {

class BpFinder final : public SplitFinder {
 public:
  const char* name() const override { return "UDT-BP"; }

 protected:
  SplitCandidate SearchAttribute(const AttributeContext& ctx,
                                 const SplitScorer& scorer,
                                 const SplitOptions& options,
                                 const SplitCandidate& /*seed*/,
                                 SplitCounters* counters,
                                 EvalBuffers* buffers) const override {
    SplitCandidate best;
    for (int idx : ctx.endpoints) {
      EvaluatePosition(ctx, idx, scorer, options, &best, counters, buffers);
    }
    for (const EndpointInterval& interval : ctx.intervals) {
      if (counters != nullptr) ++counters->intervals_total;
      if (interval.num_interior() <= 0) continue;
      if (PruneByKind(interval, scorer, counters)) continue;
      if (scorer.SupportsHomogeneousPruning() &&
          IntervalHasLinearGrowth(ctx.scan, interval.a_idx, interval.b_idx)) {
        if (counters != nullptr) {
          ++counters->intervals_pruned_linear;
          counters->candidates_pruned += interval.num_interior();
        }
        continue;
      }
      EvaluateInterior(ctx, interval.a_idx, interval.b_idx, scorer, options,
                       &best, counters, buffers);
    }
    return best;
  }
};

}  // namespace

std::unique_ptr<SplitFinder> MakeBpFinder() {
  return std::make_unique<BpFinder>();
}

}  // namespace split_internal
}  // namespace udt
