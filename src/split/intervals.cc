#include "split/intervals.h"

#include "common/logging.h"
#include "common/math.h"

namespace udt {

const char* IntervalKindToString(IntervalKind kind) {
  switch (kind) {
    case IntervalKind::kEmpty:
      return "empty";
    case IntervalKind::kHomogeneous:
      return "homogeneous";
    case IntervalKind::kHeterogeneous:
      return "heterogeneous";
  }
  return "unknown";
}

IntervalKind ClassifyInterval(const AttributeScan& scan, int a_idx,
                              int b_idx) {
  int classes_with_mass = 0;
  for (int c = 0; c < scan.num_classes(); ++c) {
    double k = scan.CumulativeMass(b_idx, c) - scan.CumulativeMass(a_idx, c);
    if (k > kMassEpsilon) ++classes_with_mass;
  }
  if (classes_with_mass == 0) return IntervalKind::kEmpty;
  if (classes_with_mass == 1) return IntervalKind::kHomogeneous;
  return IntervalKind::kHeterogeneous;
}

bool IntervalHasLinearGrowth(const AttributeScan& scan, int a_idx,
                             int b_idx) {
  UDT_DCHECK(a_idx < b_idx);
  double x_a = scan.x(a_idx);
  double x_b = scan.x(b_idx);
  double span = x_b - x_a;
  if (span <= 0.0) return false;

  int num_classes = scan.num_classes();
  // Per-class slope implied by the interval totals: kc / span.
  std::vector<double> slope(static_cast<size_t>(num_classes));
  for (int c = 0; c < num_classes; ++c) {
    slope[static_cast<size_t>(c)] =
        (scan.CumulativeMass(b_idx, c) - scan.CumulativeMass(a_idx, c)) /
        span;
  }
  // Every step inside the interval must match the slope, per class.
  for (int idx = a_idx + 1; idx <= b_idx; ++idx) {
    double dx = scan.x(idx) - scan.x(idx - 1);
    for (int c = 0; c < num_classes; ++c) {
      double increment =
          scan.CumulativeMass(idx, c) - scan.CumulativeMass(idx - 1, c);
      if (std::fabs(increment - slope[static_cast<size_t>(c)] * dx) >
          kMassEpsilon) {
        return false;
      }
    }
  }
  return true;
}

std::vector<EndpointInterval> SegmentIntoIntervals(
    const AttributeScan& scan, const std::vector<int>& endpoints) {
  std::vector<EndpointInterval> intervals;
  if (endpoints.size() < 2) return intervals;
  intervals.reserve(endpoints.size() - 1);
  for (size_t i = 0; i + 1 < endpoints.size(); ++i) {
    EndpointInterval interval;
    interval.a_idx = endpoints[i];
    interval.b_idx = endpoints[i + 1];
    UDT_DCHECK(interval.a_idx < interval.b_idx);
    interval.kind = ClassifyInterval(scan, interval.a_idx, interval.b_idx);
    intervals.push_back(interval);
  }
  return intervals;
}

}  // namespace udt
