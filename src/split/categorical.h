// Uncertain categorical splits (Section 7.2): an internal node on a
// categorical attribute has one child per category; a tuple is copied into
// bucket v with weight w * f(v). The split is scored by the weighted
// dispersion over all buckets. A categorical attribute already split on by
// an ancestor yields no further gain and is skipped by the builder.

#ifndef UDT_SPLIT_CATEGORICAL_H_
#define UDT_SPLIT_CATEGORICAL_H_

#include "split/dispersion.h"
#include "split/fractional_tuple.h"
#include "split/split_finder.h"
#include "table/dataset.h"

namespace udt {

// Outcome of evaluating one categorical attribute at one node.
struct CategoricalSplitResult {
  bool valid = false;
  double score = 0.0;  // same convention as SplitCandidate::score
};

// Scores the n-ary split of `set` on categorical attribute `attribute`.
// Invalid if fewer than two buckets would receive at least
// options.min_side_mass of weight. Counts one dispersion evaluation.
CategoricalSplitResult EvaluateCategoricalSplit(const Dataset& data,
                                                const WorkingSet& set,
                                                int attribute,
                                                const SplitScorer& scorer,
                                                const SplitOptions& options,
                                                SplitCounters* counters);

}  // namespace udt

#endif  // UDT_SPLIT_CATEGORICAL_H_
