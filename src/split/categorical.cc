#include "split/categorical.h"

#include <vector>

#include "common/logging.h"
#include "common/math.h"

namespace udt {

CategoricalSplitResult EvaluateCategoricalSplit(const Dataset& data,
                                                const WorkingSet& set,
                                                int attribute,
                                                const SplitScorer& scorer,
                                                const SplitOptions& options,
                                                SplitCounters* counters) {
  const AttributeInfo& info = data.schema().attribute(attribute);
  UDT_CHECK(info.kind == AttributeKind::kCategorical);
  int num_categories = info.num_categories;
  int num_classes = data.num_classes();
  size_t j = static_cast<size_t>(attribute);

  // Bucket class-count matrix: counts[v][c].
  std::vector<std::vector<double>> counts(
      static_cast<size_t>(num_categories),
      std::vector<double>(static_cast<size_t>(num_classes), 0.0));
  for (const FractionalTuple& ft : set) {
    const UncertainTuple& tuple = data.tuple(ft.tuple_index);
    size_t cls = static_cast<size_t>(tuple.label);
    if (ft.category[j] >= 0) {
      counts[static_cast<size_t>(ft.category[j])][cls] += ft.weight;
      continue;
    }
    const CategoricalPdf& dist = tuple.values[j].categorical();
    for (int v = 0; v < num_categories; ++v) {
      double w = ft.weight * dist.probability(v);
      if (w > 0.0) counts[static_cast<size_t>(v)][cls] += w;
    }
  }

  // Weighted dispersion over the buckets.
  double total = 0.0;
  int populated = 0;
  std::vector<double> bucket_masses;
  bucket_masses.reserve(static_cast<size_t>(num_categories));
  for (const std::vector<double>& bucket : counts) {
    double mass = 0.0;
    for (double c : bucket) mass += c;
    bucket_masses.push_back(mass);
    total += mass;
    if (mass >= options.min_side_mass) ++populated;
  }

  CategoricalSplitResult result;
  if (populated < 2 || total <= 0.0) return result;  // nothing to separate

  double weighted = 0.0;
  for (size_t v = 0; v < counts.size(); ++v) {
    if (bucket_masses[v] <= 0.0) continue;
    weighted += bucket_masses[v] * scorer.Impurity(counts[v]);
  }
  weighted /= total;
  if (counters != nullptr) ++counters->dispersion_evaluations;

  result.valid = true;
  if (scorer.measure() == DispersionMeasure::kGainRatio) {
    double gain = scorer.parent_impurity() - weighted;
    double split_info = EntropyFromCounts(bucket_masses);
    if (split_info <= kMassEpsilon) {
      result.valid = false;
      return result;
    }
    result.score = -(gain / split_info);
  } else {
    result.score = weighted;
  }
  return result;
}

}  // namespace udt
