#include "split/fractional_tuple.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/math.h"
#include "pdf/pdf_kernels.h"

namespace udt {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

WorkingSet MakeRootWorkingSet(const Dataset& data) {
  WorkingSet set;
  set.reserve(static_cast<size_t>(data.num_tuples()));
  size_t k = static_cast<size_t>(data.num_attributes());
  for (int i = 0; i < data.num_tuples(); ++i) {
    FractionalTuple ft;
    ft.tuple_index = i;
    ft.weight = 1.0;
    ft.lo.assign(k, -kInf);
    ft.hi.assign(k, kInf);
    ft.category.assign(k, -1);
    set.push_back(std::move(ft));
  }
  return set;
}

WorkingSet MakeWeightedRootWorkingSet(const Dataset& data,
                                      const std::vector<double>& weights) {
  UDT_CHECK(weights.size() == static_cast<size_t>(data.num_tuples()));
  WorkingSet set;
  set.reserve(weights.size());
  size_t k = static_cast<size_t>(data.num_attributes());
  for (int i = 0; i < data.num_tuples(); ++i) {
    double w = weights[static_cast<size_t>(i)];
    if (w <= 0.0) continue;
    FractionalTuple ft;
    ft.tuple_index = i;
    ft.weight = w;
    ft.lo.assign(k, -kInf);
    ft.hi.assign(k, kInf);
    ft.category.assign(k, -1);
    set.push_back(std::move(ft));
  }
  return set;
}

// Both functions route through the branchless lockstep kernels of
// pdf/pdf_kernels.h; their results are bitwise-identical to the previous
// std::upper_bound formulation (same cumulative reads, same arithmetic
// order — the +-inf special cases resolve to the exact endpoint values),
// which tests/pdf_kernels_test.cc pins against SampledPdf::CdfAtOrBelow.
double ConstrainedMass(const SampledPdf& pdf, double lo, double hi) {
  return PdfConstrainedMass(pdf, lo, hi);
}

double ConditionalCdf(const SampledPdf& pdf, double lo, double hi, double z) {
  const PdfSplitEval eval = PdfEvalNumericalSplit(pdf, lo, hi, z);
  UDT_DCHECK(eval.mass > 0.0);
  return eval.p_left;
}

double ConditionalMean(const SampledPdf& pdf, double lo, double hi) {
  double mass = ConstrainedMass(pdf, lo, hi);
  UDT_DCHECK(mass > 0.0);
  if (lo == -kInf && hi == kInf) return pdf.Mean();
  KahanSum sum;
  for (int i = 0; i < pdf.num_points(); ++i) {
    double x = pdf.point(i);
    if (x > lo && x <= hi) sum.Add(x * pdf.mass(i));
  }
  return sum.value() / mass;
}

std::vector<double> ClassCounts(const Dataset& data, const WorkingSet& set,
                                int num_classes) {
  std::vector<double> counts(static_cast<size_t>(num_classes), 0.0);
  for (const FractionalTuple& ft : set) {
    counts[static_cast<size_t>(data.tuple(ft.tuple_index).label)] += ft.weight;
  }
  return counts;
}

double TotalWeight(const WorkingSet& set) {
  KahanSum sum;
  for (const FractionalTuple& ft : set) sum.Add(ft.weight);
  return sum.value();
}

void PartitionWorkingSet(const Dataset& data, const WorkingSet& set,
                         int attribute, double split_point, WorkingSet* left,
                         WorkingSet* right) {
  UDT_CHECK(left != nullptr && right != nullptr);
  left->clear();
  right->clear();
  size_t j = static_cast<size_t>(attribute);
  for (const FractionalTuple& ft : set) {
    const SampledPdf& pdf =
        data.tuple(ft.tuple_index).values[j].pdf();
    double p_left = ConditionalCdf(pdf, ft.lo[j], ft.hi[j], split_point);
    double w_left = ft.weight * p_left;
    double w_right = ft.weight - w_left;
    if (w_left >= kMinFractionWeight) {
      FractionalTuple t = ft;
      t.weight = w_left;
      t.hi[j] = std::min(t.hi[j], split_point);
      left->push_back(std::move(t));
    }
    if (w_right >= kMinFractionWeight) {
      FractionalTuple t = ft;
      t.weight = w_right;
      t.lo[j] = std::max(t.lo[j], split_point);
      right->push_back(std::move(t));
    }
  }
}

void PartitionWorkingSetCategorical(const Dataset& data,
                                    const WorkingSet& set, int attribute,
                                    int num_categories,
                                    std::vector<WorkingSet>* buckets) {
  UDT_CHECK(buckets != nullptr);
  buckets->assign(static_cast<size_t>(num_categories), WorkingSet());
  size_t j = static_cast<size_t>(attribute);
  for (const FractionalTuple& ft : set) {
    const CategoricalPdf& dist =
        data.tuple(ft.tuple_index).values[j].categorical();
    if (ft.category[j] >= 0) {
      // Already fixed by an ancestor split; the whole weight follows it.
      (*buckets)[static_cast<size_t>(ft.category[j])].push_back(ft);
      continue;
    }
    for (int v = 0; v < num_categories; ++v) {
      double w = ft.weight * dist.probability(v);
      if (w < kMinFractionWeight) continue;
      FractionalTuple t = ft;
      t.weight = w;
      t.category[j] = v;
      (*buckets)[static_cast<size_t>(v)].push_back(std::move(t));
    }
  }
}

}  // namespace udt
