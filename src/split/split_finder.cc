#include "split/split_finder.h"

#include <cmath>
#include <functional>
#include <vector>

#include "common/logging.h"
#include "common/task_pool.h"
#include "split/finder_common.h"
#include "split/finders.h"

namespace udt {

namespace {
// Scores within this distance are treated as tied and broken by attribute,
// then split point, keeping every finder's choice deterministic.
constexpr double kScoreTieEpsilon = 1e-12;

// Folds `candidate` into `best` under the deterministic tie-break order.
void MergeCandidate(const SplitCandidate& candidate, SplitCandidate* best) {
  if (candidate.valid && (!best->valid || candidate.BetterThan(*best))) {
    *best = candidate;
  }
}

// Runs fn(0), ..., fn(n-1): in index order when `pool` is null, through
// the pool's shared ParallelFor primitive otherwise (the same executor
// the serving sessions run on — one parallel-loop mechanism for training
// and serving). The callbacks must write to disjoint state; the fixed-
// order reductions after each loop keep the result schedule-independent.
void ForEachAttribute(TaskPool* pool, int n,
                      const std::function<void(int)>& fn) {
  if (pool == nullptr || n <= 1) {
    for (int j = 0; j < n; ++j) fn(j);
    return;
  }
  pool->ParallelFor(static_cast<size_t>(n), /*grain=*/1,
                    [&fn](int /*slot*/, size_t begin, size_t end) {
                      for (size_t j = begin; j < end; ++j) {
                        fn(static_cast<int>(j));
                      }
                    });
}
}  // namespace

const char* SplitAlgorithmToString(SplitAlgorithm algorithm) {
  switch (algorithm) {
    case SplitAlgorithm::kAvg:
      return "AVG";
    case SplitAlgorithm::kUdt:
      return "UDT";
    case SplitAlgorithm::kUdtBp:
      return "UDT-BP";
    case SplitAlgorithm::kUdtLp:
      return "UDT-LP";
    case SplitAlgorithm::kUdtGp:
      return "UDT-GP";
    case SplitAlgorithm::kUdtEs:
      return "UDT-ES";
  }
  return "unknown";
}

SplitCounters& SplitCounters::operator+=(const SplitCounters& other) {
  dispersion_evaluations += other.dispersion_evaluations;
  bound_evaluations += other.bound_evaluations;
  candidates_pruned += other.candidates_pruned;
  intervals_total += other.intervals_total;
  intervals_pruned_empty += other.intervals_pruned_empty;
  intervals_pruned_homogeneous += other.intervals_pruned_homogeneous;
  intervals_pruned_linear += other.intervals_pruned_linear;
  intervals_pruned_by_bound += other.intervals_pruned_by_bound;
  return *this;
}

SplitCandidate SplitFinder::SeedAttribute(
    const split_internal::AttributeContext& /*ctx*/,
    const SplitScorer& /*scorer*/, const SplitOptions& /*options*/,
    SplitCounters* /*counters*/,
    split_internal::EvalBuffers* /*buffers*/) const {
  return SplitCandidate();
}

SplitCandidate SplitFinder::FindBestSplit(const Dataset& data,
                                          const WorkingSet& set,
                                          const SplitScorer& scorer,
                                          const SplitOptions& options,
                                          SplitCounters* counters,
                                          TaskPool* pool) const {
  const int num_attributes = data.num_attributes();
  const int num_classes = data.num_classes();
  const bool seeded = NeedsGlobalSeed();

  if (pool == nullptr && !seeded) {
    // Serial local finder (UDT/AVG/BP/LP): one attribute at a time keeps a
    // single scan alive — the paper's low-memory regime.
    SplitCandidate best;
    SplitCandidate no_seed;
    split_internal::EvalBuffers buffers;
    for (int j = 0; j < num_attributes; ++j) {
      if (!options.AttributeAllowed(j)) continue;
      split_internal::AttributeContext ctx =
          split_internal::BuildContextForAttribute(data, set, j, options,
                                                   num_classes);
      if (ctx.scan.empty()) continue;
      MergeCandidate(
          SearchAttribute(ctx, scorer, options, no_seed, counters, &buffers),
          &best);
    }
    return best;
  }

  // Per-attribute slots: every task writes only its own entry, and all
  // reductions below run in ascending attribute order.
  struct AttributeSlot {
    split_internal::AttributeContext ctx;
    SplitCandidate seed;
    SplitCandidate best;
    SplitCounters counters;
  };
  std::vector<AttributeSlot> slots(static_cast<size_t>(num_attributes));

  ForEachAttribute(pool, num_attributes, [&](int j) {
    if (!options.AttributeAllowed(j)) return;  // slot stays empty
    AttributeSlot& slot = slots[static_cast<size_t>(j)];
    slot.ctx = split_internal::BuildContextForAttribute(data, set, j, options,
                                                        num_classes);
    if (slot.ctx.scan.empty()) return;
    split_internal::EvalBuffers buffers;
    if (seeded) {
      slot.seed =
          SeedAttribute(slot.ctx, scorer, options, &slot.counters, &buffers);
    } else {
      // Local finders need no cross-attribute phase: search immediately
      // and release the scan.
      SplitCandidate no_seed;
      slot.best = SearchAttribute(slot.ctx, scorer, options, no_seed,
                                  &slot.counters, &buffers);
      slot.ctx = split_internal::AttributeContext();
    }
  });

  SplitCandidate global_seed;
  if (seeded) {
    for (const AttributeSlot& slot : slots) {
      MergeCandidate(slot.seed, &global_seed);
    }
    ForEachAttribute(pool, num_attributes, [&](int j) {
      AttributeSlot& slot = slots[static_cast<size_t>(j)];
      if (slot.ctx.scan.empty()) return;
      split_internal::EvalBuffers buffers;
      slot.best = SearchAttribute(slot.ctx, scorer, options, global_seed,
                                  &slot.counters, &buffers);
      slot.ctx = split_internal::AttributeContext();
    });
  }

  SplitCandidate best = global_seed;
  for (const AttributeSlot& slot : slots) {
    MergeCandidate(slot.best, &best);
  }
  if (counters != nullptr) {
    for (const AttributeSlot& slot : slots) {
      *counters += slot.counters;
    }
  }
  return best;
}

bool SplitCandidate::BetterThan(const SplitCandidate& other) const {
  UDT_DCHECK(valid);
  if (!other.valid) return true;
  if (score < other.score - kScoreTieEpsilon) return true;
  if (score > other.score + kScoreTieEpsilon) return false;
  if (attribute != other.attribute) return attribute < other.attribute;
  return split_point < other.split_point;
}

std::unique_ptr<SplitFinder> MakeSplitFinder(SplitAlgorithm algorithm) {
  switch (algorithm) {
    case SplitAlgorithm::kAvg:
      return split_internal::MakeExhaustiveFinder("AVG");
    case SplitAlgorithm::kUdt:
      return split_internal::MakeExhaustiveFinder("UDT");
    case SplitAlgorithm::kUdtBp:
      return split_internal::MakeBpFinder();
    case SplitAlgorithm::kUdtLp:
      return split_internal::MakeLpFinder();
    case SplitAlgorithm::kUdtGp:
      return split_internal::MakeGpFinder();
    case SplitAlgorithm::kUdtEs:
      return split_internal::MakeEsFinder();
  }
  UDT_CHECK(false);
  return nullptr;
}

}  // namespace udt
