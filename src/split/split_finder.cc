#include "split/split_finder.h"

#include <cmath>

#include "common/logging.h"
#include "split/finders.h"

namespace udt {

namespace {
// Scores within this distance are treated as tied and broken by attribute,
// then split point, keeping every finder's choice deterministic.
constexpr double kScoreTieEpsilon = 1e-12;
}  // namespace

const char* SplitAlgorithmToString(SplitAlgorithm algorithm) {
  switch (algorithm) {
    case SplitAlgorithm::kAvg:
      return "AVG";
    case SplitAlgorithm::kUdt:
      return "UDT";
    case SplitAlgorithm::kUdtBp:
      return "UDT-BP";
    case SplitAlgorithm::kUdtLp:
      return "UDT-LP";
    case SplitAlgorithm::kUdtGp:
      return "UDT-GP";
    case SplitAlgorithm::kUdtEs:
      return "UDT-ES";
  }
  return "unknown";
}

SplitCounters& SplitCounters::operator+=(const SplitCounters& other) {
  dispersion_evaluations += other.dispersion_evaluations;
  bound_evaluations += other.bound_evaluations;
  candidates_pruned += other.candidates_pruned;
  intervals_total += other.intervals_total;
  intervals_pruned_empty += other.intervals_pruned_empty;
  intervals_pruned_homogeneous += other.intervals_pruned_homogeneous;
  intervals_pruned_linear += other.intervals_pruned_linear;
  intervals_pruned_by_bound += other.intervals_pruned_by_bound;
  return *this;
}

bool SplitCandidate::BetterThan(const SplitCandidate& other) const {
  UDT_DCHECK(valid);
  if (!other.valid) return true;
  if (score < other.score - kScoreTieEpsilon) return true;
  if (score > other.score + kScoreTieEpsilon) return false;
  if (attribute != other.attribute) return attribute < other.attribute;
  return split_point < other.split_point;
}

std::unique_ptr<SplitFinder> MakeSplitFinder(SplitAlgorithm algorithm) {
  switch (algorithm) {
    case SplitAlgorithm::kAvg:
      return split_internal::MakeExhaustiveFinder("AVG");
    case SplitAlgorithm::kUdt:
      return split_internal::MakeExhaustiveFinder("UDT");
    case SplitAlgorithm::kUdtBp:
      return split_internal::MakeBpFinder();
    case SplitAlgorithm::kUdtLp:
      return split_internal::MakeLpFinder();
    case SplitAlgorithm::kUdtGp:
      return split_internal::MakeGpFinder();
    case SplitAlgorithm::kUdtEs:
      return split_internal::MakeEsFinder();
  }
  UDT_CHECK(false);
  return nullptr;
}

}  // namespace udt
