// Internal machinery shared by the concrete split finders: per-attribute
// scan contexts, candidate evaluation, and interval bounding. Not part of
// the public API.
//
// Re-entrancy contract: everything here is a pure function of its inputs
// plus the caller-owned EvalBuffers scratch. The parallel engine gives
// every attribute task its own EvalBuffers (the per-worker context), so
// one finder instance can serve any number of concurrent searches.

#ifndef UDT_SPLIT_FINDER_COMMON_H_
#define UDT_SPLIT_FINDER_COMMON_H_

#include <vector>

#include "split/attribute_scan.h"
#include "split/bounds.h"
#include "split/dispersion.h"
#include "split/intervals.h"
#include "split/split_finder.h"

namespace udt {
namespace split_internal {

// Slack used when comparing a lower bound against the pruning threshold;
// compensates for the different rounding paths of bound and score.
inline constexpr double kPruneSlack = 1e-12;

// Everything a finder needs about one numerical attribute at one node.
struct AttributeContext {
  int attribute = -1;
  AttributeScan scan;
  // End-point positions (tuple support boundaries, or percentile
  // pseudo-end-points in Section 7.3 mode). Ascending; first == 0 and
  // last == scan.num_positions()-1.
  std::vector<int> endpoints;
  // Intervals between consecutive end points.
  std::vector<EndpointInterval> intervals;
};

// Scratch buffers reused across candidate evaluations.
struct EvalBuffers {
  std::vector<double> left;
  std::vector<double> right;
  IntervalMassStats stats;
};

// Builds the context for one numerical attribute. Returns a context with
// an empty scan when the attribute admits no candidate (< 2 distinct
// positions) or is categorical. Honors the percentile-end-point option: in
// that mode every interval is conservatively classified heterogeneous (the
// concavity theorems assume true support boundaries).
AttributeContext BuildContextForAttribute(const Dataset& data,
                                          const WorkingSet& set,
                                          int attribute,
                                          const SplitOptions& options,
                                          int num_classes);

// Scores the split at position `idx` of `ctx` and merges it into `best`.
// Skips (without counting) candidates that leave either side with less
// than options.min_side_mass.
void EvaluatePosition(const AttributeContext& ctx, int idx,
                      const SplitScorer& scorer, const SplitOptions& options,
                      SplitCandidate* best, SplitCounters* counters,
                      EvalBuffers* buffers);

// Scores every interior position of (a_idx, b_idx].
void EvaluateInterior(const AttributeContext& ctx, int a_idx, int b_idx,
                      const SplitScorer& scorer, const SplitOptions& options,
                      SplitCandidate* best, SplitCounters* counters,
                      EvalBuffers* buffers);

// Lower bound of the score over the interior of (a_idx, b_idx].
double IntervalBound(const AttributeContext& ctx, int a_idx, int b_idx,
                     const SplitScorer& scorer, SplitCounters* counters,
                     EvalBuffers* buffers);

// True if the interval's interior may be skipped outright under Theorem 1
// or Theorem 2 (measure permitting). Updates the pruning counters.
bool PruneByKind(const EndpointInterval& interval, const SplitScorer& scorer,
                 SplitCounters* counters);

// Processes one (fine) interval the GP/ES way: kind-prune, else bound
// against the current best, else evaluate the interior.
void ProcessInterval(const AttributeContext& ctx,
                     const EndpointInterval& interval,
                     const SplitScorer& scorer, const SplitOptions& options,
                     SplitCandidate* best, SplitCounters* counters,
                     EvalBuffers* buffers);

}  // namespace split_internal
}  // namespace udt

#endif  // UDT_SPLIT_FINDER_COMMON_H_
