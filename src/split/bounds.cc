#include "split/bounds.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/math.h"

namespace udt {

namespace {

struct BoundTerms {
  double n = 0.0;  // total mass left of the interval
  double k = 0.0;  // total mass inside
  double m = 0.0;  // total mass right
  double total = 0.0;
};

BoundTerms Totals(const IntervalMassStats& stats) {
  BoundTerms t;
  for (double v : stats.nc) t.n += v;
  for (double v : stats.kc) t.k += v;
  for (double v : stats.mc) t.m += v;
  t.total = t.n + t.k + t.m;
  return t;
}

}  // namespace

double EntropyLowerBound(const IntervalMassStats& stats) {
  BoundTerms t = Totals(stats);
  if (t.total <= 0.0) return 0.0;
  double sum = 0.0;
  for (size_t c = 0; c < stats.nc.size(); ++c) {
    double nc = stats.nc[c];
    double kc = stats.kc[c];
    double mc = stats.mc[c];
    double eta = (t.n + kc) > 0.0 ? (nc + kc) / (t.n + kc) : 0.0;
    double theta = (t.m + kc) > 0.0 ? (mc + kc) / (t.m + kc) : 0.0;
    sum += nc * Log2Safe(eta) + mc * Log2Safe(theta) +
           kc * Log2Safe(std::max(eta, theta));
  }
  double bound = -sum / t.total;
  return bound < 0.0 ? 0.0 : bound;
}

double GiniLowerBound(const IntervalMassStats& stats) {
  BoundTerms t = Totals(stats);
  if (t.total <= 0.0) return 0.0;
  double sum = 0.0;
  for (size_t c = 0; c < stats.nc.size(); ++c) {
    double nc = stats.nc[c];
    double kc = stats.kc[c];
    double mc = stats.mc[c];
    double eta = (t.n + kc) > 0.0 ? (nc + kc) / (t.n + kc) : 0.0;
    double theta = (t.m + kc) > 0.0 ? (mc + kc) / (t.m + kc) : 0.0;
    sum += nc * eta + mc * theta + kc * std::max(eta, theta);
  }
  double bound = 1.0 - sum / t.total;
  return bound < 0.0 ? 0.0 : bound;
}

double ScoreLowerBound(const SplitScorer& scorer,
                       const IntervalMassStats& stats) {
  switch (scorer.measure()) {
    case DispersionMeasure::kEntropy:
      return EntropyLowerBound(stats);
    case DispersionMeasure::kGini:
      return GiniLowerBound(stats);
    case DispersionMeasure::kGainRatio: {
      // -GR(z) = -(H_parent - H(z)) / SI(z). H(z) >= entropy bound, and
      // SI(z) is concave in |L| over [n, n+k], so SI >= min(SI(n), SI(n+k)).
      BoundTerms t = Totals(stats);
      double h_bound = EntropyLowerBound(stats);
      double gain_upper = scorer.parent_impurity() - h_bound;
      if (gain_upper <= 0.0) return 0.0;  // cannot beat "no split"
      std::vector<double> at_a = {t.n, t.m + t.k};
      std::vector<double> at_b = {t.n + t.k, t.m};
      double si_min =
          std::min(EntropyFromCounts(at_a), EntropyFromCounts(at_b));
      if (si_min <= kMassEpsilon) {
        // One side may be (nearly) empty somewhere in the interval: the
        // ratio is unbounded, no pruning possible.
        return -std::numeric_limits<double>::infinity();
      }
      return -(gain_upper / si_min);
    }
  }
  UDT_CHECK(false);
  return 0.0;
}

}  // namespace udt
