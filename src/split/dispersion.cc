#include "split/dispersion.h"

#include <cmath>

#include "common/logging.h"
#include "common/math.h"

namespace udt {

const char* DispersionMeasureToString(DispersionMeasure measure) {
  switch (measure) {
    case DispersionMeasure::kEntropy:
      return "entropy";
    case DispersionMeasure::kGini:
      return "gini";
    case DispersionMeasure::kGainRatio:
      return "gain-ratio";
  }
  return "unknown";
}

SplitScorer::SplitScorer(DispersionMeasure measure,
                         const std::vector<double>& parent_counts)
    : measure_(measure) {
  parent_total_ = SumPositiveCounts(parent_counts);
  parent_impurity_ = Impurity(parent_counts);
}

double SplitScorer::Impurity(const std::vector<double>& counts) const {
  if (measure_ == DispersionMeasure::kGini) {
    return GiniFromCounts(counts);
  }
  return EntropyFromCounts(counts);
}

double SplitScorer::Score(const std::vector<double>& left,
                          const std::vector<double>& right) const {
  // Fused scan: one pass per side yields both the side total and its
  // impurity (entropy), or reuses the total for Gini's squared pass —
  // instead of the previous four-to-six passes over each counts vector.
  // Every accumulator preserves the reference add order, so the scores
  // (and therefore the trees built from them) are bitwise-unchanged; see
  // the fusion contract in common/math.h.
  double left_total, right_total;
  double left_impurity, right_impurity;
  if (measure_ == DispersionMeasure::kGini) {
    left_total = SumPositiveCounts(left);
    right_total = SumPositiveCounts(right);
    left_impurity = GiniGivenTotal(left, left_total);
    right_impurity = GiniGivenTotal(right, right_total);
  } else {
    FusedEntropyFromCounts(left, &left_total, &left_impurity);
    FusedEntropyFromCounts(right, &right_total, &right_impurity);
  }
  double total = left_total + right_total;
  if (total <= 0.0) return 0.0;
  double weighted = (left_total * left_impurity +
                     right_total * right_impurity) /
                    total;
  if (measure_ != DispersionMeasure::kGainRatio) {
    return weighted;
  }
  // Gain ratio: -(gain / split info). Degenerate splits (one empty side)
  // have zero split info; they are invalid anyway, so return the worst
  // possible score.
  double gain = parent_impurity_ - weighted;
  double split_info = EntropyFromPair(left_total, right_total);
  if (split_info <= kMassEpsilon) {
    return 0.0;  // no better than "no split"
  }
  return -(gain / split_info);
}

double SplitScorer::NoSplitScore() const {
  if (measure_ == DispersionMeasure::kGainRatio) return 0.0;
  return parent_impurity_;
}

double SplitScorer::GainForScore(double score) const {
  if (measure_ == DispersionMeasure::kGainRatio) return -score;
  return parent_impurity_ - score;
}

}  // namespace udt
