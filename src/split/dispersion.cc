#include "split/dispersion.h"

#include <cmath>

#include "common/logging.h"
#include "common/math.h"

namespace udt {

const char* DispersionMeasureToString(DispersionMeasure measure) {
  switch (measure) {
    case DispersionMeasure::kEntropy:
      return "entropy";
    case DispersionMeasure::kGini:
      return "gini";
    case DispersionMeasure::kGainRatio:
      return "gain-ratio";
  }
  return "unknown";
}

SplitScorer::SplitScorer(DispersionMeasure measure,
                         const std::vector<double>& parent_counts)
    : measure_(measure) {
  for (double c : parent_counts) {
    if (c > 0.0) parent_total_ += c;
  }
  parent_impurity_ = Impurity(parent_counts);
}

double SplitScorer::Impurity(const std::vector<double>& counts) const {
  if (measure_ == DispersionMeasure::kGini) {
    return GiniFromCounts(counts);
  }
  return EntropyFromCounts(counts);
}

double SplitScorer::Score(const std::vector<double>& left,
                          const std::vector<double>& right) const {
  double left_total = 0.0;
  double right_total = 0.0;
  for (double c : left) {
    if (c > 0.0) left_total += c;
  }
  for (double c : right) {
    if (c > 0.0) right_total += c;
  }
  double total = left_total + right_total;
  if (total <= 0.0) return 0.0;
  double weighted = (left_total * Impurity(left) +
                     right_total * Impurity(right)) /
                    total;
  if (measure_ != DispersionMeasure::kGainRatio) {
    return weighted;
  }
  // Gain ratio: -(gain / split info). Degenerate splits (one empty side)
  // have zero split info; they are invalid anyway, so return the worst
  // possible score.
  double gain = parent_impurity_ - weighted;
  std::vector<double> sides = {left_total, right_total};
  double split_info = EntropyFromCounts(sides);
  if (split_info <= kMassEpsilon) {
    return 0.0;  // no better than "no split"
  }
  return -(gain / split_info);
}

double SplitScorer::NoSplitScore() const {
  if (measure_ == DispersionMeasure::kGainRatio) return 0.0;
  return parent_impurity_;
}

double SplitScorer::GainForScore(double score) const {
  if (measure_ == DispersionMeasure::kGainRatio) return -score;
  return parent_impurity_ - score;
}

}  // namespace udt
