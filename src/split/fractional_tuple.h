// Fractional tuples (Section 3.2): when a tuple's pdf straddles a split
// point, the tuple is divided into a left and a right part carrying weights
// w*pL and w*pR and pdfs truncated-and-renormalised to the sub-intervals.
//
// Instead of materialising truncated pdfs, a FractionalTuple keeps a
// reference to the original tuple plus, per numerical attribute, the
// half-open interval (lo, hi] its value is known to lie in. Conditional
// probabilities are then exact ratios of the original CDF:
//   P(X <= z | lo < X <= hi) = (F(min(z,hi)) - F(lo)) / (F(hi) - F(lo)).
// For categorical attributes (Section 7.2) the constraint is a fixed
// category id once an ancestor node has split on that attribute.

#ifndef UDT_SPLIT_FRACTIONAL_TUPLE_H_
#define UDT_SPLIT_FRACTIONAL_TUPLE_H_

#include <vector>

#include "table/dataset.h"

namespace udt {

// Fractional-tuple weights below this threshold are dropped during
// partitioning: they carry no statistical information and would otherwise
// multiply without bound down the tree.
inline constexpr double kMinFractionWeight = 1e-9;

// A (possibly fractional) training tuple in a node's working set.
struct FractionalTuple {
  int tuple_index = 0;  // into the Dataset
  // Fraction of the tuple's mass in this working set. In (0, 1] for plain
  // training; bootstrap bags (api/forest.h) seed the root with integer
  // multiplicities, so descendants carry weights in (0, multiplicity].
  double weight = 1.0;
  // Per-attribute numerical constraints; value is conditioned to (lo, hi].
  // Entries for categorical attributes are ignored.
  std::vector<double> lo;
  std::vector<double> hi;
  // Per-attribute fixed category (-1 = unconstrained); entries for
  // numerical attributes are ignored.
  std::vector<int> category;
};

// The working set of a tree node.
using WorkingSet = std::vector<FractionalTuple>;

// One fractional tuple of weight 1 per data-set tuple, unconstrained.
WorkingSet MakeRootWorkingSet(const Dataset& data);

// Weighted root set for bagged training: one unconstrained fractional tuple
// of weight weights[i] per data-set tuple, with non-positive weights
// omitted entirely (a bootstrap bag that never drew the tuple). Requires
// weights.size() == num_tuples.
WorkingSet MakeWeightedRootWorkingSet(const Dataset& data,
                                      const std::vector<double>& weights);

// Probability mass of `pdf` restricted to the constraint (lo, hi], i.e.
// F(hi) - F(lo). Infinite bounds denote "unconstrained".
double ConstrainedMass(const SampledPdf& pdf, double lo, double hi);

// P(X <= z | lo < X <= hi). Requires positive constrained mass.
double ConditionalCdf(const SampledPdf& pdf, double lo, double hi, double z);

// Mean of the distribution conditioned to (lo, hi]. Requires positive
// constrained mass. Equals pdf.Mean() when unconstrained.
double ConditionalMean(const SampledPdf& pdf, double lo, double hi);

// Weighted per-class counts of a working set (the leaf distributions and
// stopping tests use this).
std::vector<double> ClassCounts(const Dataset& data, const WorkingSet& set,
                                int num_classes);

// Total weight of a working set.
double TotalWeight(const WorkingSet& set);

// Splits `set` on numerical attribute `attribute` at `split_point` into the
// tuples going left (value <= z) and right. Tuples straddling the point are
// divided into two fractional tuples with tightened constraints; fragments
// lighter than kMinFractionWeight are dropped.
void PartitionWorkingSet(const Dataset& data, const WorkingSet& set,
                         int attribute, double split_point, WorkingSet* left,
                         WorkingSet* right);

// Splits `set` on categorical attribute `attribute` into one bucket per
// category, weighting each copy by the tuple's category probability
// (Section 7.2).
void PartitionWorkingSetCategorical(const Dataset& data,
                                    const WorkingSet& set, int attribute,
                                    int num_categories,
                                    std::vector<WorkingSet>* buckets);

}  // namespace udt

#endif  // UDT_SPLIT_FRACTIONAL_TUPLE_H_
