// Section 7.3: pseudo-end-points for unbounded pdfs. When supports are
// unbounded (or simply as an alternative segmentation), the cumulative
// per-class tuple count is treated as a frequency function and its 10%,
// 20%, ..., 90% percentile positions serve as artificial end points. The
// resulting intervals lack the concavity guarantees of true end-point
// intervals, so callers must prune them by bounding only.

#ifndef UDT_SPLIT_PERCENTILE_ENDPOINTS_H_
#define UDT_SPLIT_PERCENTILE_ENDPOINTS_H_

#include <vector>

#include "split/attribute_scan.h"

namespace udt {

// Returns sorted, unique scan positions: the percentile crossings of each
// class's cumulative mass (percentiles i/(P+1), i = 1..P, of that class's
// total) plus the first and last positions. `percentiles_per_class` is the
// paper's 9 (deciles); must be >= 1.
std::vector<int> ComputePercentileEndpoints(const AttributeScan& scan,
                                            int percentiles_per_class);

}  // namespace udt

#endif  // UDT_SPLIT_PERCENTILE_ENDPOINTS_H_
