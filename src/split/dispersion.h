// Dispersion measures used to score candidate splits (Section 4.1 chooses
// entropy; Section 7.4 extends the framework to Gini index and gain ratio).
//
// All measures are expressed as scores to MINIMISE so the finders can share
// one optimisation loop:
//   entropy    -> weighted post-split entropy H(z, Aj)      (eq. 1)
//   Gini       -> weighted post-split Gini index
//   gain ratio -> negated gain ratio -(H(S) - H(z)) / SplitInfo(z)

#ifndef UDT_SPLIT_DISPERSION_H_
#define UDT_SPLIT_DISPERSION_H_

#include <vector>

namespace udt {

enum class DispersionMeasure {
  kEntropy,
  kGini,
  kGainRatio,
};

const char* DispersionMeasureToString(DispersionMeasure measure);

// Scores binary splits of one node under a fixed measure. Constructed per
// node from the node's class counts (the parent impurity that gain ratio
// needs). Score evaluations are counted by the callers via SplitCounters.
class SplitScorer {
 public:
  SplitScorer(DispersionMeasure measure,
              const std::vector<double>& parent_counts);

  DispersionMeasure measure() const { return measure_; }

  // Impurity of a single class-count vector (entropy or Gini); used for
  // leaf decisions and categorical buckets.
  double Impurity(const std::vector<double>& counts) const;

  // The score to minimise for a binary split with the given left/right
  // class-count vectors.
  double Score(const std::vector<double>& left,
               const std::vector<double>& right) const;

  // Score of the degenerate "no split" outcome; any valid split must score
  // strictly better than this to be worth taking (pre-pruning uses the
  // difference as the gain).
  double NoSplitScore() const;

  // Information gain realised by a split with this score: parent impurity
  // minus weighted child impurity (entropy/Gini), or the gain ratio itself.
  double GainForScore(double score) const;

  // Theorem 2 (pruning interiors of homogeneous intervals) holds for
  // entropy and Gini but not for gain ratio (Section 7.4).
  bool SupportsHomogeneousPruning() const {
    return measure_ != DispersionMeasure::kGainRatio;
  }

  double parent_impurity() const { return parent_impurity_; }
  double parent_total() const { return parent_total_; }

 private:
  DispersionMeasure measure_;
  // Entropy for kEntropy/kGainRatio, Gini for kGini.
  double parent_impurity_ = 0.0;
  double parent_total_ = 0.0;
};

}  // namespace udt

#endif  // UDT_SPLIT_DISPERSION_H_
