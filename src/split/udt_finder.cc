// Exhaustive split search (Section 4.2). Scores every distinct sample
// position of every attribute: the paper's k(ms-1) candidate sweep. Run on
// a means-reduced data set this is exactly the classical AVG search over
// k(m-1) candidates (Section 4.1), so the same implementation serves both
// names. Each attribute's sweep is self-contained, so the base-class
// engine can run the attributes as parallel tasks.

#include "split/finder_common.h"
#include "split/finders.h"

namespace udt {
namespace split_internal {

namespace {

class ExhaustiveFinder final : public SplitFinder {
 public:
  explicit ExhaustiveFinder(const char* name) : name_(name) {}

  const char* name() const override { return name_; }

 protected:
  SplitCandidate SearchAttribute(const AttributeContext& ctx,
                                 const SplitScorer& scorer,
                                 const SplitOptions& options,
                                 const SplitCandidate& /*seed*/,
                                 SplitCounters* counters,
                                 EvalBuffers* buffers) const override {
    SplitCandidate best;
    // The last position puts everything left; EvaluatePosition rejects it
    // via the min-side-mass check, so sweep all but the last.
    for (int idx = 0; idx + 1 < ctx.scan.num_positions(); ++idx) {
      EvaluatePosition(ctx, idx, scorer, options, &best, counters, buffers);
    }
    if (counters != nullptr) {
      counters->intervals_total += static_cast<int64_t>(ctx.intervals.size());
    }
    return best;
  }

 private:
  const char* name_;
};

}  // namespace

std::unique_ptr<SplitFinder> MakeExhaustiveFinder(const char* name) {
  return std::make_unique<ExhaustiveFinder>(name);
}

}  // namespace split_internal
}  // namespace udt
