// UDT-LP, Local Pruning (Section 5.2): per attribute, the end-point
// entropies seed a pruning threshold H*_j; each heterogeneous interval is
// first lower-bounded (eq. 3) and its interior evaluated only if the bound
// beats the threshold. The threshold tightens as better candidates are
// found (a safe refinement of the paper's static threshold: the optimum is
// always retained in the candidate pool). The threshold is local by
// definition, so each attribute is an independent work unit.

#include "split/finder_common.h"
#include "split/finders.h"

namespace udt {
namespace split_internal {

namespace {

class LpFinder final : public SplitFinder {
 public:
  const char* name() const override { return "UDT-LP"; }

 protected:
  SplitCandidate SearchAttribute(const AttributeContext& ctx,
                                 const SplitScorer& scorer,
                                 const SplitOptions& options,
                                 const SplitCandidate& /*seed*/,
                                 SplitCounters* counters,
                                 EvalBuffers* buffers) const override {
    // Local threshold: best candidate within this attribute only.
    SplitCandidate local;
    for (int idx : ctx.endpoints) {
      EvaluatePosition(ctx, idx, scorer, options, &local, counters, buffers);
    }
    for (const EndpointInterval& interval : ctx.intervals) {
      ProcessInterval(ctx, interval, scorer, options, &local, counters,
                      buffers);
    }
    return local;
  }
};

}  // namespace

std::unique_ptr<SplitFinder> MakeLpFinder() {
  return std::make_unique<LpFinder>();
}

}  // namespace split_internal
}  // namespace udt
