// UDT-LP, Local Pruning (Section 5.2): per attribute, the end-point
// entropies seed a pruning threshold H*_j; each heterogeneous interval is
// first lower-bounded (eq. 3) and its interior evaluated only if the bound
// beats the threshold. The threshold tightens as better candidates are
// found (a safe refinement of the paper's static threshold: the optimum is
// always retained in the candidate pool).

#include "split/finder_common.h"
#include "split/finders.h"

namespace udt {
namespace split_internal {

namespace {

class LpFinder final : public SplitFinder {
 public:
  const char* name() const override { return "UDT-LP"; }

  SplitCandidate FindBestSplit(const Dataset& data, const WorkingSet& set,
                               const SplitScorer& scorer,
                               const SplitOptions& options,
                               SplitCounters* counters) const override {
    SplitCandidate best;
    EvalBuffers buffers;
    for (int j = 0; j < data.num_attributes(); ++j) {
      AttributeContext ctx = BuildContextForAttribute(
          data, set, j, options, data.num_classes());
      if (ctx.scan.empty()) continue;
      // Local threshold: best candidate within this attribute only.
      SplitCandidate local;
      for (int idx : ctx.endpoints) {
        EvaluatePosition(ctx, idx, scorer, options, &local, counters,
                         &buffers);
      }
      for (const EndpointInterval& interval : ctx.intervals) {
        ProcessInterval(ctx, interval, scorer, options, &local, counters,
                        &buffers);
      }
      if (local.valid && (!best.valid || local.BetterThan(best))) {
        best = local;
      }
    }
    return best;
  }
};

}  // namespace

std::unique_ptr<SplitFinder> MakeLpFinder() {
  return std::make_unique<LpFinder>();
}

}  // namespace split_internal
}  // namespace udt
