// UDT-ES, End-point Sampling (Section 5.3, Fig 5): like UDT-GP, but the
// pruning threshold is seeded from a sample (default 10%) of the end
// points. Consecutive sampled end points define coarse intervals - the
// concatenations of row 5 of Fig 5 - which are bounded first; only inside
// surviving coarse intervals are the original end points brought back
// (row 7-8) and the fine intervals processed as in UDT-GP. Pruning a
// coarse interval removes its unsampled end points and all interior
// candidates with a single bound computation.
//
// Phase structure for the parallel engine: SeedAttribute scores one
// attribute's sampled end points, the engine merges the global threshold,
// and SearchAttribute re-derives the (deterministic) sample to process the
// coarse intervals against a locally-tightened copy of the threshold.

#include <algorithm>
#include <cmath>

#include "split/finder_common.h"
#include "split/finders.h"

namespace udt {
namespace split_internal {

namespace {

// Deterministic every-k-th sample of the end-point *indices* (not
// positions), always keeping the first and last so the coarse intervals
// tile the whole axis. Returns indices into `endpoints`.
std::vector<int> SampleEndpointIndices(int num_endpoints, double rate) {
  std::vector<int> picked;
  if (num_endpoints <= 0) return picked;
  int stride = 1;
  if (rate > 0.0 && rate < 1.0) {
    stride = std::max(1, static_cast<int>(std::lround(1.0 / rate)));
  }
  for (int i = 0; i < num_endpoints; i += stride) picked.push_back(i);
  if (picked.back() != num_endpoints - 1) picked.push_back(num_endpoints - 1);
  return picked;
}

class EsFinder final : public SplitFinder {
 public:
  const char* name() const override { return "UDT-ES"; }

 protected:
  bool NeedsGlobalSeed() const override { return true; }

  SplitCandidate SeedAttribute(const AttributeContext& ctx,
                               const SplitScorer& scorer,
                               const SplitOptions& options,
                               SplitCounters* counters,
                               EvalBuffers* buffers) const override {
    SplitCandidate best;
    std::vector<int> picks = SampleEndpointIndices(
        static_cast<int>(ctx.endpoints.size()),
        options.es_endpoint_sample_rate);
    for (int ei : picks) {
      EvaluatePosition(ctx, ctx.endpoints[static_cast<size_t>(ei)], scorer,
                       options, &best, counters, buffers);
    }
    return best;
  }

  SplitCandidate SearchAttribute(const AttributeContext& ctx,
                                 const SplitScorer& scorer,
                                 const SplitOptions& options,
                                 const SplitCandidate& seed,
                                 SplitCounters* counters,
                                 EvalBuffers* buffers) const override {
    SplitCandidate best = seed;  // sampled end points were scored in phase 1
    std::vector<int> picks = SampleEndpointIndices(
        static_cast<int>(ctx.endpoints.size()),
        options.es_endpoint_sample_rate);
    for (size_t s = 0; s + 1 < picks.size(); ++s) {
      int ei = picks[s];
      int ej = picks[s + 1];
      if (ej == ei + 1) {
        // Adjacent end points: this *is* a fine interval.
        ProcessInterval(ctx, ctx.intervals[static_cast<size_t>(ei)], scorer,
                        options, &best, counters, buffers);
        continue;
      }
      int a_idx = ctx.endpoints[static_cast<size_t>(ei)];
      int b_idx = ctx.endpoints[static_cast<size_t>(ej)];
      if (counters != nullptr) ++counters->intervals_total;
      if (b_idx - a_idx <= 1) continue;  // no candidates strictly inside

      double bound =
          IntervalBound(ctx, a_idx, b_idx, scorer, counters, buffers);
      if (best.valid && bound >= best.score - kPruneSlack) {
        // The whole coarse interval - unsampled end points included - is
        // pruned by one bound.
        if (counters != nullptr) {
          ++counters->intervals_pruned_by_bound;
          counters->candidates_pruned += b_idx - a_idx - 1;
        }
        continue;
      }

      // Refine: bring back the original end points inside (Fig 5 rows
      // 7-9), update the threshold, then process the fine intervals.
      for (int e = ei + 1; e < ej; ++e) {
        EvaluatePosition(ctx, ctx.endpoints[static_cast<size_t>(e)], scorer,
                         options, &best, counters, buffers);
      }
      for (int e = ei; e < ej; ++e) {
        ProcessInterval(ctx, ctx.intervals[static_cast<size_t>(e)], scorer,
                        options, &best, counters, buffers);
      }
    }
    return best;
  }
};

}  // namespace

std::unique_ptr<SplitFinder> MakeEsFinder() {
  return std::make_unique<EsFinder>();
}

}  // namespace split_internal
}  // namespace udt
