// Interval segmentation (Section 5.1): the end points Q_j partition the
// attribute axis into disjoint intervals (q_i, q_{i+1}], each classified as
//   empty         - no probability mass inside          (Definition 2)
//   homogeneous   - all mass inside from one class      (Definition 3)
//   heterogeneous - otherwise                           (Definition 4)
// Theorems 1 and 2 make the interiors of empty and homogeneous intervals
// safe to skip; heterogeneous interiors need evaluation or bounding.

#ifndef UDT_SPLIT_INTERVALS_H_
#define UDT_SPLIT_INTERVALS_H_

#include <vector>

#include "split/attribute_scan.h"

namespace udt {

enum class IntervalKind {
  kEmpty,
  kHomogeneous,
  kHeterogeneous,
};

const char* IntervalKindToString(IntervalKind kind);

// One end-point interval (x(a_idx), x(b_idx)] of a scan.
struct EndpointInterval {
  int a_idx = 0;  // position of the left end point (exclusive boundary)
  int b_idx = 0;  // position of the right end point (inclusive boundary)
  IntervalKind kind = IntervalKind::kEmpty;

  // Interior candidate positions are a_idx+1 .. b_idx-1.
  int num_interior() const { return b_idx - a_idx - 1; }
};

// Classifies the interval (x(a_idx), x(b_idx)] from its class masses.
IntervalKind ClassifyInterval(const AttributeScan& scan, int a_idx,
                              int b_idx);

// Builds the intervals between consecutive end points of `endpoints`
// (positions into `scan`, ascending). With v end points this yields v-1
// intervals.
std::vector<EndpointInterval> SegmentIntoIntervals(
    const AttributeScan& scan, const std::vector<int>& endpoints);

// Theorem 3: if every class's tuple count grows linearly inside a
// heterogeneous interval, an end point of the interval is also optimal and
// the interior may be skipped. With discrete sample masses, linear growth
// means: at every position in (a_idx, b_idx], each class's mass increment
// is proportional to the x-step with one slope per class. This holds for
// the uniform-pdf case the paper highlights (a uniform pdf's equally
// spaced, equally weighted samples) whenever one tuple's grid spans the
// interval, and for aligned combinations of such grids.
bool IntervalHasLinearGrowth(const AttributeScan& scan, int a_idx,
                             int b_idx);

}  // namespace udt

#endif  // UDT_SPLIT_INTERVALS_H_
