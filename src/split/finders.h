// Internal factory declarations for the concrete finders; the public entry
// point is MakeSplitFinder in split/split_finder.h.

#ifndef UDT_SPLIT_FINDERS_H_
#define UDT_SPLIT_FINDERS_H_

#include <memory>

#include "split/split_finder.h"

namespace udt {
namespace split_internal {

// Exhaustive search; named "AVG" or "UDT" depending on how it is deployed
// (the classical algorithm on means is the same exhaustive sweep over a
// point-valued axis).
std::unique_ptr<SplitFinder> MakeExhaustiveFinder(const char* name);

std::unique_ptr<SplitFinder> MakeBpFinder();  // UDT-BP
std::unique_ptr<SplitFinder> MakeLpFinder();  // UDT-LP
std::unique_ptr<SplitFinder> MakeGpFinder();  // UDT-GP
std::unique_ptr<SplitFinder> MakeEsFinder();  // UDT-ES

}  // namespace split_internal
}  // namespace udt

#endif  // UDT_SPLIT_FINDERS_H_
