// SplitFinder: the interface shared by the paper's split-search algorithms
// and the factory that selects among them.
//
//   AVG    - exhaustive search over the (point-valued) candidate axis; the
//            classical algorithm run on pdf means (Section 4.1).
//   UDT    - exhaustive search over all ~ms-1 sample points (Section 4.2).
//   UDT-BP - Basic Pruning: skip interiors of empty and homogeneous
//            intervals (Theorems 1 and 2, Section 5.1).
//   UDT-LP - Local Pruning: per-attribute end-point threshold + interval
//            lower bounds (Section 5.2).
//   UDT-GP - Global Pruning: one threshold across all attributes
//            (Section 5.2).
//   UDT-ES - End-point Sampling on top of GP (Section 5.3).
//
// All pruning is *safe*: every finder returns a split whose score equals
// the exhaustive optimum (verified by tests/split_equivalence_test.cc).

#ifndef UDT_SPLIT_SPLIT_FINDER_H_
#define UDT_SPLIT_SPLIT_FINDER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "split/dispersion.h"
#include "split/fractional_tuple.h"
#include "table/dataset.h"

namespace udt {

class TaskPool;  // common/task_pool.h

namespace split_internal {
struct AttributeContext;
struct EvalBuffers;
}  // namespace split_internal

enum class SplitAlgorithm {
  kAvg,
  kUdt,
  kUdtBp,
  kUdtLp,
  kUdtGp,
  kUdtEs,
};

const char* SplitAlgorithmToString(SplitAlgorithm algorithm);

// Tuning knobs shared by the finders.
struct SplitOptions {
  DispersionMeasure measure = DispersionMeasure::kEntropy;

  // UDT-ES: fraction of end points evaluated to seed the pruning threshold
  // (the paper found 10% to be a good choice, Section 5.3).
  double es_endpoint_sample_rate = 0.10;

  // Section 7.3: replace tuple-support end points by per-class percentile
  // pseudo-end-points. All intervals are then treated as heterogeneous
  // (the concavity theorems no longer apply) and pruned by bounding only.
  bool use_percentile_endpoints = false;
  int percentiles_per_class = 9;  // 10%,...,90%

  // A split is valid only if both sides receive at least this much mass.
  double min_side_mass = 1e-9;

  // Random-subspace construction (api/forest.h): when non-null, only
  // attributes j with (*attribute_mask)[j] != 0 are searched — numerical
  // scans and categorical scoring alike. Borrowed per node, never owned;
  // null considers every attribute.
  const std::vector<uint8_t>* attribute_mask = nullptr;

  // True when `attribute` participates in the search under the mask.
  bool AttributeAllowed(int attribute) const {
    return attribute_mask == nullptr ||
           (*attribute_mask)[static_cast<size_t>(attribute)] != 0;
  }
};

// Work counters, accumulated across every node of a tree build. The paper's
// Fig 7 reports dispersion_evaluations + bound_evaluations as "the number
// of entropy calculations" (a bound costs about as much as an entropy).
struct SplitCounters {
  int64_t dispersion_evaluations = 0;  // candidate split points scored
  int64_t bound_evaluations = 0;       // interval lower bounds computed
  int64_t candidates_pruned = 0;       // candidate points never scored
  int64_t intervals_total = 0;
  int64_t intervals_pruned_empty = 0;
  int64_t intervals_pruned_homogeneous = 0;
  int64_t intervals_pruned_linear = 0;  // Theorem 3 (UDT-BP only)
  int64_t intervals_pruned_by_bound = 0;

  int64_t TotalEntropyCalculations() const {
    return dispersion_evaluations + bound_evaluations;
  }

  SplitCounters& operator+=(const SplitCounters& other);
};

// The result of a split search.
struct SplitCandidate {
  bool valid = false;
  int attribute = -1;
  double split_point = 0.0;
  // The minimised score (weighted entropy / Gini, or negated gain ratio).
  double score = 0.0;

  // Tie-break ordering: lower score, then lower attribute, then lower
  // split point. Returns true if *this is strictly better than `other`.
  bool BetterThan(const SplitCandidate& other) const;
};

// Interface implemented by every split-search algorithm.
//
// A search decomposes into independent per-attribute phases so it can run
// the attributes as parallel tasks:
//   1. every numerical attribute is scanned and (for the global finders
//      GP/ES) swept for its threshold-seeding end points,
//   2. the per-attribute seeds are merged in ascending attribute order
//      into one global seed,
//   3. each attribute runs its full search seeded with that candidate,
//   4. the per-attribute results are again merged in attribute order.
// Each phase is a pure function of its inputs and every reduction order is
// fixed, so the returned candidate (and therefore the built tree) is
// bitwise-identical whether the attributes run serially or on a pool.
// Finders are stateless: one instance may serve concurrent searches.
class SplitFinder {
 public:
  virtual ~SplitFinder() = default;

  virtual const char* name() const = 0;

  // Finds the best (attribute, split point) for the node whose working set
  // is `set`. `scorer` carries the node's measure and parent counts.
  // Returns an invalid candidate when no attribute admits a valid split.
  // `counters` may be null. When `pool` is non-null the per-attribute
  // phases run as pool tasks; the result does not depend on it.
  SplitCandidate FindBestSplit(const Dataset& data, const WorkingSet& set,
                               const SplitScorer& scorer,
                               const SplitOptions& options,
                               SplitCounters* counters,
                               TaskPool* pool = nullptr) const;

 protected:
  // True for finders whose pruning threshold spans all attributes (GP/ES);
  // they get the extra seed phase, and their attribute scans all stay
  // alive for the duration of the search.
  virtual bool NeedsGlobalSeed() const { return false; }

  // Phase 1 for seeded finders: evaluates the attribute's threshold-
  // seeding candidates (end points for GP, sampled end points for ES) and
  // returns the best among them. Default: no work, invalid candidate.
  virtual SplitCandidate SeedAttribute(
      const split_internal::AttributeContext& ctx, const SplitScorer& scorer,
      const SplitOptions& options, SplitCounters* counters,
      split_internal::EvalBuffers* buffers) const;

  // Phase 2: the attribute's full search. `seed` is the merged global
  // threshold candidate (invalid for the local finders); the running best
  // starts from it, so pruned finders may return the seed itself when the
  // attribute holds nothing better.
  virtual SplitCandidate SearchAttribute(
      const split_internal::AttributeContext& ctx, const SplitScorer& scorer,
      const SplitOptions& options, const SplitCandidate& seed,
      SplitCounters* counters,
      split_internal::EvalBuffers* buffers) const = 0;
};

// Creates the finder for `algorithm`.
std::unique_ptr<SplitFinder> MakeSplitFinder(SplitAlgorithm algorithm);

}  // namespace udt

#endif  // UDT_SPLIT_SPLIT_FINDER_H_
