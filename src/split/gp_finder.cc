// UDT-GP, Global Pruning (Section 5.2): first the end points of *all*
// attributes are evaluated, and the global minimum seeds one shared pruning
// threshold; then every heterogeneous interval of every attribute is
// bounded against it. A single strong threshold prunes far more than the
// per-attribute thresholds of UDT-LP.
//
// Phase structure for the parallel engine: SeedAttribute sweeps one
// attribute's end points; the engine merges the sweeps into the global
// threshold in attribute order; SearchAttribute then bounds-and-refines
// the attribute's intervals against a local copy of that threshold
// (tightened only by candidates found within the attribute, which keeps
// each attribute a pure, schedule-independent work unit — the pruning
// stays safe because the threshold only ever holds evaluated candidates).

#include "split/finder_common.h"
#include "split/finders.h"

namespace udt {
namespace split_internal {

namespace {

class GpFinder final : public SplitFinder {
 public:
  const char* name() const override { return "UDT-GP"; }

 protected:
  bool NeedsGlobalSeed() const override { return true; }

  SplitCandidate SeedAttribute(const AttributeContext& ctx,
                               const SplitScorer& scorer,
                               const SplitOptions& options,
                               SplitCounters* counters,
                               EvalBuffers* buffers) const override {
    SplitCandidate best;
    for (int idx : ctx.endpoints) {
      EvaluatePosition(ctx, idx, scorer, options, &best, counters, buffers);
    }
    return best;
  }

  SplitCandidate SearchAttribute(const AttributeContext& ctx,
                                 const SplitScorer& scorer,
                                 const SplitOptions& options,
                                 const SplitCandidate& seed,
                                 SplitCounters* counters,
                                 EvalBuffers* buffers) const override {
    SplitCandidate best = seed;  // the end points were scored in phase 1
    for (const EndpointInterval& interval : ctx.intervals) {
      ProcessInterval(ctx, interval, scorer, options, &best, counters,
                      buffers);
    }
    return best;
  }
};

}  // namespace

std::unique_ptr<SplitFinder> MakeGpFinder() {
  return std::make_unique<GpFinder>();
}

}  // namespace split_internal
}  // namespace udt
