// UDT-GP, Global Pruning (Section 5.2): first the end points of *all*
// attributes are evaluated, and the global minimum seeds one shared pruning
// threshold; then every heterogeneous interval of every attribute is
// bounded against it. A single strong threshold prunes far more than the
// per-attribute thresholds of UDT-LP.

#include "split/finder_common.h"
#include "split/finders.h"

namespace udt {
namespace split_internal {

namespace {

class GpFinder final : public SplitFinder {
 public:
  const char* name() const override { return "UDT-GP"; }

  SplitCandidate FindBestSplit(const Dataset& data, const WorkingSet& set,
                               const SplitScorer& scorer,
                               const SplitOptions& options,
                               SplitCounters* counters) const override {
    SplitCandidate best;
    EvalBuffers buffers;
    std::vector<AttributeContext> contexts =
        BuildContexts(data, set, options, data.num_classes());

    // Phase 1: all end points of all attributes -> global threshold.
    for (const AttributeContext& ctx : contexts) {
      for (int idx : ctx.endpoints) {
        EvaluatePosition(ctx, idx, scorer, options, &best, counters,
                         &buffers);
      }
    }

    // Phase 2: bound-and-refine every interval against the global best.
    for (const AttributeContext& ctx : contexts) {
      for (const EndpointInterval& interval : ctx.intervals) {
        ProcessInterval(ctx, interval, scorer, options, &best, counters,
                        &buffers);
      }
    }
    return best;
  }
};

}  // namespace

std::unique_ptr<SplitFinder> MakeGpFinder() {
  return std::make_unique<GpFinder>();
}

}  // namespace split_internal
}  // namespace udt
