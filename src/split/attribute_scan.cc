#include "split/attribute_scan.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/math.h"

namespace udt {

namespace {

struct MassEvent {
  double x;
  int cls;
  double mass;
};

}  // namespace

AttributeScan AttributeScan::Build(const Dataset& data, const WorkingSet& set,
                                   int attribute, int num_classes) {
  size_t j = static_cast<size_t>(attribute);

  // Gather one event per (tuple, effective sample point) plus the tuples'
  // effective support boundaries.
  std::vector<MassEvent> events;
  std::vector<double> boundary_values;
  size_t approx_points = 0;
  for (const FractionalTuple& ft : set) {
    approx_points += static_cast<size_t>(
        data.tuple(ft.tuple_index).values[j].pdf().num_points());
  }
  events.reserve(approx_points);
  boundary_values.reserve(set.size() * 2);

  for (const FractionalTuple& ft : set) {
    const UncertainTuple& tuple = data.tuple(ft.tuple_index);
    const SampledPdf& pdf = tuple.values[j].pdf();
    double lo = ft.lo[j];
    double hi = ft.hi[j];
    double constrained = ConstrainedMass(pdf, lo, hi);
    if (constrained <= 0.0) continue;  // no mass under the constraint
    double scale = ft.weight / constrained;

    int first = pdf.FirstPointAbove(lo);
    double support_min = std::numeric_limits<double>::quiet_NaN();
    double support_max = std::numeric_limits<double>::quiet_NaN();
    for (int p = first; p < pdf.num_points(); ++p) {
      double x = pdf.point(p);
      if (x > hi) break;
      events.push_back(MassEvent{x, tuple.label, pdf.mass(p) * scale});
      if (std::isnan(support_min)) support_min = x;
      support_max = x;
    }
    if (!std::isnan(support_min)) {
      boundary_values.push_back(support_min);
      boundary_values.push_back(support_max);
    }
  }

  AttributeScan scan;
  scan.num_classes_ = num_classes;
  scan.class_totals_.assign(static_cast<size_t>(num_classes), 0.0);
  if (events.empty()) return scan;

  std::sort(events.begin(), events.end(),
            [](const MassEvent& a, const MassEvent& b) { return a.x < b.x; });

  // Compress to distinct positions with running per-class cumulative mass.
  size_t num_distinct = 1;
  for (size_t e = 1; e < events.size(); ++e) {
    if (events[e].x != events[e - 1].x) ++num_distinct;
  }
  scan.xs_.reserve(num_distinct);
  scan.cumulative_.reserve(num_distinct * static_cast<size_t>(num_classes));

  std::vector<double> running(static_cast<size_t>(num_classes), 0.0);
  size_t e = 0;
  while (e < events.size()) {
    double x = events[e].x;
    while (e < events.size() && events[e].x == x) {
      running[static_cast<size_t>(events[e].cls)] += events[e].mass;
      ++e;
    }
    scan.xs_.push_back(x);
    scan.cumulative_.insert(scan.cumulative_.end(), running.begin(),
                            running.end());
  }
  scan.class_totals_ = running;
  scan.total_mass_ = 0.0;
  for (double t : running) scan.total_mass_ += t;

  // Map support boundaries to positions (every boundary is a sample point
  // of some tuple, so the binary search hits exactly).
  std::sort(boundary_values.begin(), boundary_values.end());
  boundary_values.erase(
      std::unique(boundary_values.begin(), boundary_values.end()),
      boundary_values.end());
  scan.endpoint_positions_.reserve(boundary_values.size());
  for (double b : boundary_values) {
    auto it = std::lower_bound(scan.xs_.begin(), scan.xs_.end(), b);
    UDT_DCHECK(it != scan.xs_.end() && *it == b);
    scan.endpoint_positions_.push_back(
        static_cast<int>(it - scan.xs_.begin()));
  }
  UDT_DCHECK(!scan.endpoint_positions_.empty());
  UDT_DCHECK(scan.endpoint_positions_.front() == 0);
  UDT_DCHECK(scan.endpoint_positions_.back() == scan.num_positions() - 1);
  return scan;
}

void AttributeScan::LeftCounts(int idx, std::vector<double>* out) const {
  out->assign(static_cast<size_t>(num_classes_), 0.0);
  for (int c = 0; c < num_classes_; ++c) {
    (*out)[static_cast<size_t>(c)] = CumulativeMass(idx, c);
  }
}

void AttributeScan::RightCounts(int idx, std::vector<double>* out) const {
  out->assign(static_cast<size_t>(num_classes_), 0.0);
  for (int c = 0; c < num_classes_; ++c) {
    double v = class_totals_[static_cast<size_t>(c)] - CumulativeMass(idx, c);
    (*out)[static_cast<size_t>(c)] = v > 0.0 ? v : 0.0;
  }
}

void AttributeScan::IntervalStats(int a_idx, int b_idx,
                                  std::vector<double>* nc,
                                  std::vector<double>* kc,
                                  std::vector<double>* mc) const {
  UDT_DCHECK(a_idx < b_idx);
  nc->assign(static_cast<size_t>(num_classes_), 0.0);
  kc->assign(static_cast<size_t>(num_classes_), 0.0);
  mc->assign(static_cast<size_t>(num_classes_), 0.0);
  for (int c = 0; c < num_classes_; ++c) {
    double at_a = CumulativeMass(a_idx, c);
    double at_b = CumulativeMass(b_idx, c);
    double total = class_totals_[static_cast<size_t>(c)];
    (*nc)[static_cast<size_t>(c)] = at_a;
    double k = at_b - at_a;
    (*kc)[static_cast<size_t>(c)] = k > 0.0 ? k : 0.0;
    double m = total - at_b;
    (*mc)[static_cast<size_t>(c)] = m > 0.0 ? m : 0.0;
  }
}

}  // namespace udt
