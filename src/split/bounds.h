// Lower bounds on the best achievable split score inside an interval
// (Section 5.2, equation (3) for entropy; Section 7.4 for Gini and gain
// ratio). An interval whose bound is no better than the best score already
// found can be pruned wholesale without affecting the chosen split.

#ifndef UDT_SPLIT_BOUNDS_H_
#define UDT_SPLIT_BOUNDS_H_

#include <vector>

#include "split/dispersion.h"

namespace udt {

// Class-mass statistics of one interval (a, b], as produced by
// AttributeScan::IntervalStats:
//   nc[c] = mass of class c at or left of a,
//   kc[c] = mass of class c in (a, b],
//   mc[c] = mass of class c right of b.
struct IntervalMassStats {
  std::vector<double> nc;
  std::vector<double> kc;
  std::vector<double> mc;
};

// Equation (3): a lower bound of the weighted post-split entropy H(z, Aj)
// over every split point z interior to the interval. The bound follows
// from p(c|L) <= eta_c = (nc+kc)/(n+kc) and p(c|R) <= theta_c =
// (mc+kc)/(m+kc).
double EntropyLowerBound(const IntervalMassStats& stats);

// The Gini analogue of equation (3). The paper states eq. (4) for this
// purpose; the OCR of eq. (4) is ambiguous, so we use the direct analogue
// provable by the same argument (see DESIGN.md "Substitutions"):
//   L = 1 - (1/N) * sum_c [ nc*eta_c + mc*theta_c + kc*max(eta_c,theta_c) ].
double GiniLowerBound(const IntervalMassStats& stats);

// A lower bound for the configured measure's score (the value the finders
// minimise). For gain ratio the bound combines the entropy bound with the
// extremal split-info values (Section 7.4); it degenerates to -infinity
// (no pruning possible) when one side can be empty.
double ScoreLowerBound(const SplitScorer& scorer,
                       const IntervalMassStats& stats);

}  // namespace udt

#endif  // UDT_SPLIT_BOUNDS_H_
