// AttributeScan: the per-(node, attribute) view all split finders share.
//
// It merges the effective sample points of every fractional tuple in the
// working set into one sorted axis and precomputes, for each position, the
// cumulative per-class probability mass (the paper's tuple-count function
// Phi_{c,j}, Definition 6). With it:
//   * candidate split points  = the positions (all but the last),
//   * left/right class counts = O(#classes) lookups,
//   * interval statistics (n_c, k_c, m_c) for the pruning bounds
//                             = two lookups per class,
//   * interval end points Q_j = tuple support boundaries mapped to
//     positions.

#ifndef UDT_SPLIT_ATTRIBUTE_SCAN_H_
#define UDT_SPLIT_ATTRIBUTE_SCAN_H_

#include <vector>

#include "split/fractional_tuple.h"
#include "table/dataset.h"

namespace udt {

// Built once per (node, numerical attribute); immutable afterwards.
class AttributeScan {
 public:
  // An empty scan (no positions); Build() produces the real thing.
  AttributeScan() = default;

  // Builds the scan for `attribute` over `set`. Tuples contribute their
  // sample points restricted to their (lo, hi] constraint, with masses
  // scaled by weight / constrained-mass (the lazily-renormalised truncated
  // pdf of Section 3.2).
  static AttributeScan Build(const Dataset& data, const WorkingSet& set,
                             int attribute, int num_classes);

  // Number of distinct candidate positions (distinct sample x values).
  int num_positions() const { return static_cast<int>(xs_.size()); }
  bool empty() const { return xs_.empty(); }

  // x value of position `idx` (ascending in idx).
  double x(int idx) const { return xs_[static_cast<size_t>(idx)]; }

  int num_classes() const { return num_classes_; }

  // Total mass of class `cls` at positions <= idx.
  double CumulativeMass(int idx, int cls) const {
    return cumulative_[static_cast<size_t>(idx) *
                           static_cast<size_t>(num_classes_) +
                       static_cast<size_t>(cls)];
  }

  // Class counts of the left side for a split at x(idx): out[c] = mass of
  // class c at positions <= idx.
  void LeftCounts(int idx, std::vector<double>* out) const;

  // Class counts of the right side: totals - left.
  void RightCounts(int idx, std::vector<double>* out) const;

  // Per-class total mass over the whole axis.
  const std::vector<double>& class_totals() const { return class_totals_; }
  double total_mass() const { return total_mass_; }

  // Positions of the tuple support end points (the paper's Q_j), ascending
  // and unique. Always contains position 0 and num_positions()-1 when the
  // scan is non-empty.
  const std::vector<int>& endpoint_positions() const {
    return endpoint_positions_;
  }

  // Interval statistics for the half-open interval (x(a_idx), x(b_idx)]:
  //   nc[c] = mass at positions <= a_idx        (paper: Phi_c(-inf, a])
  //   kc[c] = mass in (a_idx, b_idx]            (paper: Phi_c(a, b])
  //   mc[c] = mass at positions > b_idx         (paper: Phi_c(b, +inf))
  // Requires a_idx < b_idx.
  void IntervalStats(int a_idx, int b_idx, std::vector<double>* nc,
                     std::vector<double>* kc, std::vector<double>* mc) const;

 private:
  std::vector<double> xs_;
  std::vector<double> cumulative_;  // row-major [position][class]
  std::vector<double> class_totals_;
  std::vector<int> endpoint_positions_;
  double total_mass_ = 0.0;
  int num_classes_ = 0;
};

}  // namespace udt

#endif  // UDT_SPLIT_ATTRIBUTE_SCAN_H_
