#include "split/finder_common.h"

#include <algorithm>

#include "common/logging.h"
#include "split/percentile_endpoints.h"

namespace udt {
namespace split_internal {

AttributeContext BuildContextForAttribute(const Dataset& data,
                                          const WorkingSet& set,
                                          int attribute,
                                          const SplitOptions& options,
                                          int num_classes) {
  AttributeContext ctx;
  ctx.attribute = attribute;
  if (data.schema().attribute(attribute).kind != AttributeKind::kNumerical) {
    return ctx;  // empty scan: caller skips it
  }
  ctx.scan = AttributeScan::Build(data, set, attribute, num_classes);
  if (ctx.scan.num_positions() < 2) {
    ctx.scan = AttributeScan();  // no valid binary split
    return ctx;
  }
  if (options.use_percentile_endpoints) {
    ctx.endpoints =
        ComputePercentileEndpoints(ctx.scan, options.percentiles_per_class);
    ctx.intervals = SegmentIntoIntervals(ctx.scan, ctx.endpoints);
    // Percentile pseudo-end-points are not true support boundaries, so
    // Theorems 1/2 do not apply; force bounding for every interval.
    for (EndpointInterval& interval : ctx.intervals) {
      interval.kind = IntervalKind::kHeterogeneous;
    }
  } else {
    ctx.endpoints = ctx.scan.endpoint_positions();
    ctx.intervals = SegmentIntoIntervals(ctx.scan, ctx.endpoints);
  }
  return ctx;
}

void EvaluatePosition(const AttributeContext& ctx, int idx,
                      const SplitScorer& scorer, const SplitOptions& options,
                      SplitCandidate* best, SplitCounters* counters,
                      EvalBuffers* buffers) {
  const AttributeScan& scan = ctx.scan;
  scan.LeftCounts(idx, &buffers->left);
  double left_mass = 0.0;
  for (double v : buffers->left) left_mass += v;
  double right_mass = scan.total_mass() - left_mass;
  if (left_mass < options.min_side_mass || right_mass < options.min_side_mass) {
    return;  // degenerate split; not a candidate
  }
  scan.RightCounts(idx, &buffers->right);
  double score = scorer.Score(buffers->left, buffers->right);
  if (counters != nullptr) ++counters->dispersion_evaluations;

  SplitCandidate candidate;
  candidate.valid = true;
  candidate.attribute = ctx.attribute;
  candidate.split_point = scan.x(idx);
  candidate.score = score;
  if (!best->valid || candidate.BetterThan(*best)) *best = candidate;
}

void EvaluateInterior(const AttributeContext& ctx, int a_idx, int b_idx,
                      const SplitScorer& scorer, const SplitOptions& options,
                      SplitCandidate* best, SplitCounters* counters,
                      EvalBuffers* buffers) {
  for (int idx = a_idx + 1; idx < b_idx; ++idx) {
    EvaluatePosition(ctx, idx, scorer, options, best, counters, buffers);
  }
}

double IntervalBound(const AttributeContext& ctx, int a_idx, int b_idx,
                     const SplitScorer& scorer, SplitCounters* counters,
                     EvalBuffers* buffers) {
  ctx.scan.IntervalStats(a_idx, b_idx, &buffers->stats.nc,
                         &buffers->stats.kc, &buffers->stats.mc);
  if (counters != nullptr) ++counters->bound_evaluations;
  return ScoreLowerBound(scorer, buffers->stats);
}

bool PruneByKind(const EndpointInterval& interval, const SplitScorer& scorer,
                 SplitCounters* counters) {
  if (interval.kind == IntervalKind::kEmpty) {
    if (counters != nullptr) {
      ++counters->intervals_pruned_empty;
      counters->candidates_pruned += interval.num_interior();
    }
    return true;
  }
  if (interval.kind == IntervalKind::kHomogeneous &&
      scorer.SupportsHomogeneousPruning()) {
    if (counters != nullptr) {
      ++counters->intervals_pruned_homogeneous;
      counters->candidates_pruned += interval.num_interior();
    }
    return true;
  }
  return false;
}

void ProcessInterval(const AttributeContext& ctx,
                     const EndpointInterval& interval,
                     const SplitScorer& scorer, const SplitOptions& options,
                     SplitCandidate* best, SplitCounters* counters,
                     EvalBuffers* buffers) {
  if (counters != nullptr) ++counters->intervals_total;
  if (interval.num_interior() <= 0) return;
  if (PruneByKind(interval, scorer, counters)) return;

  double bound = IntervalBound(ctx, interval.a_idx, interval.b_idx, scorer,
                               counters, buffers);
  if (best->valid && bound >= best->score - kPruneSlack) {
    if (counters != nullptr) {
      ++counters->intervals_pruned_by_bound;
      counters->candidates_pruned += interval.num_interior();
    }
    return;
  }
  EvaluateInterior(ctx, interval.a_idx, interval.b_idx, scorer, options, best,
                   counters, buffers);
}

}  // namespace split_internal
}  // namespace udt
