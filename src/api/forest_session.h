// udt::ForestPredictSession — the per-worker serving handle of the
// ensemble stack, the ForestModel counterpart of udt::PredictSession. A
// session borrows an immutable CompiledForest (shared, never copied) and
// owns the mutable state a forest prediction needs: per-worker traversal
// scratch plus a per-tree output row that the vote aggregation consumes in
// place. Everything is reused call to call, so steady-state batch
// prediction performs zero heap allocations per tuple — the N per-tree
// traversals and the vote aggregation all run over preallocated buffers.
//
// The intended deployment shape mirrors the single-tree stack:
//
//   ForestModel forest = *ForestModel::Load(path);   // source of truth
//   CompiledForest compiled = forest.Compile();      // share freely
//   // ... one ForestPredictSession per worker thread:
//   ForestPredictSession session(compiled);
//   auto result = session.PredictBatch(tuples);
//
// A session is cheap to construct and NOT thread-safe: give each request
// worker its own. (PredictBatch with num_threads > 1 shards over a
// session-owned persistent worker pool, each worker with its own scratch
// slot — that is safe; two concurrent calls into one session are not.)
//
// Execution model: identical to PredictSession — the first batch with
// num_threads > 1 creates the session's TaskPool (num_threads - 1
// workers), every later batch reuses it, and a wider request replaces
// the pool at most once per width. The default micro-batch grain is the
// tree-session grain divided by the ensemble size, since each tuple here
// carries one traversal per tree.

#ifndef UDT_API_FOREST_SESSION_H_
#define UDT_API_FOREST_SESSION_H_

#include <memory>
#include <span>
#include <vector>

#include "api/compiled_forest.h"
#include "api/forest.h"
#include "api/model.h"
#include "api/predict_session.h"
#include "api/session_shard.h"
#include "common/statusor.h"
#include "tree/flat_tree.h"

namespace udt {

class ForestPredictSession {
 public:
  // Ownership contract: a CompiledForest is a shared handle (one
  // shared_ptr wide), and the session stores its own copy — so the
  // session co-owns the compiled artifact for its whole lifetime. A
  // model registry may retire/drop its reference while this session is
  // mid-batch without dangling anything; the flat trees are freed when
  // the last session (or registry entry) lets go.
  explicit ForestPredictSession(CompiledForest forest);

  // Same contract for callers that manage compiled artifacts behind
  // shared_ptr (e.g. a registry handing out snapshots): the pointee's
  // inner handle is copied, so the session stays valid even after
  // `forest` itself is reset. `forest` must be non-null.
  explicit ForestPredictSession(std::shared_ptr<const CompiledForest> forest);

  const CompiledForest& forest() const { return forest_; }
  int num_classes() const { return forest_.num_classes(); }

  // ------------------------------------------------------- single tuple

  // Classifies one tuple into caller storage (num_classes doubles): every
  // tree's flat traversal, votes aggregated in tree order, one final
  // division — bitwise-identical to ForestModel::ClassifyDistribution.
  void ClassifyInto(const UncertainTuple& tuple, double* out);

  // Convenience allocating forms, result-compatible with the ForestModel
  // ones.
  std::vector<double> ClassifyDistribution(const UncertainTuple& tuple);
  int Predict(const UncertainTuple& tuple);

  // -------------------------------------------------------------- batch

  // Classifies a batch, sharded over options.num_threads workers (0 = one
  // per hardware thread, 1 = inline; negative is an InvalidArgument
  // error). Shards write straight into their final slots, so the result is
  // bitwise-identical to the inline loop for every thread count — and to
  // the pointer-tree voting of the forest this session was compiled from.
  StatusOr<BatchResult> PredictBatch(std::span<const UncertainTuple> tuples,
                                     const PredictOptions& options = {});
  StatusOr<BatchResult> PredictBatch(const Dataset& data,
                                     const PredictOptions& options = {});

  // Same computation, flat output, no per-tuple allocation: `out` buffers
  // are reused between calls once warm.
  Status PredictBatchInto(std::span<const UncertainTuple> tuples,
                          const PredictOptions& options,
                          FlatBatchResult* out);

  // Gather form for admission queues: the tuples of one micro-batch
  // arrive from different clients and are not contiguous, so the batch
  // is a span of pointers (each non-null, alive until the call returns).
  // Identical sharding, scratch and output contract to the contiguous
  // overload — results are byte-identical to classifying each tuple
  // alone.
  Status PredictBatchInto(std::span<const UncertainTuple* const> tuples,
                          const PredictOptions& options,
                          FlatBatchResult* out);

  // ------------------------------------------------------ introspection

  // Persistent executor workers this session has created: 0 until the
  // first batch with num_threads > 1, then stable across calls (it only
  // grows when a batch requests more threads than the pool seats). Tests
  // and ops dashboards use this to verify the zero-spawn steady state.
  int executor_workers() const { return executor_.num_workers(); }

 private:
  // Per-worker mutable state: traversal scratch shared by all trees, the
  // row one tree's distribution lands in before aggregation (scalar path),
  // and the shard-wide per-tree row block of the batch path.
  struct WorkerScratch {
    FlatTraversalScratch traversal;
    std::vector<double> tree_row;
    std::vector<double> tree_rows;
    std::vector<double*> tree_row_ptrs;
  };

  // Shared body of both PredictBatchInto overloads; `tuple_at(i)` yields
  // a const UncertainTuple& for batch position i. Defined in the .cc —
  // both instantiations live there.
  template <typename TupleAt>
  Status PredictBatchIntoImpl(size_t n, TupleAt tuple_at,
                              const PredictOptions& options,
                              FlatBatchResult* out);

  // Scratch slot for worker `index`, created on first use, reused after.
  WorkerScratch* ScratchFor(size_t index);

  // Resolves PredictOptions::num_threads against the batch size.
  StatusOr<int> ResolveThreads(int num_threads, size_t batch_size) const;

  // The session pool sized for `num_threads` (nullptr for inline
  // execution), with every scratch slot the pool's workers could touch
  // pre-created.
  TaskPool* EnsureExecutor(int num_threads);

  void CheckTuple(const UncertainTuple& tuple) const;

  // The aggregation kernel all entry points share.
  void ClassifyWith(WorkerScratch* scratch, const UncertainTuple& tuple,
                    double* out);

  // Batch twin of ClassifyWith: classifies tuples[0..count) through every
  // tree with the level-synchronous batch kernel, tree-outer, then
  // aggregates votes per tuple in tree order — per tuple the identical
  // operation sequence, so rows are bitwise-identical to ClassifyWith.
  void ClassifyBatchWith(WorkerScratch* scratch,
                         const UncertainTuple* const* tuples,
                         double* const* rows, size_t count);

  CompiledForest forest_;
  std::vector<std::unique_ptr<WorkerScratch>> scratch_;
  // Lazily created at the first multi-threaded batch, then reused for
  // every later call (see "Execution model" above).
  session_internal::SessionExecutor executor_;
};

}  // namespace udt

#endif  // UDT_API_FOREST_SESSION_H_
