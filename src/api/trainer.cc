#include "api/trainer.h"

#include <optional>
#include <utility>
#include <vector>

#include "common/string_util.h"

namespace udt {

Status TrainRequest::Validate() const {
  if ((dataset == nullptr) == (storage == nullptr)) {
    return Status::InvalidArgument(
        "TrainRequest needs exactly one source: set dataset or storage");
  }
  if (!weights.empty()) {
    if (dataset == nullptr) {
      return Status::InvalidArgument(
          "TrainRequest::weights requires the in-memory dataset source");
    }
    if (weights.size() != static_cast<size_t>(dataset->num_tuples())) {
      return Status::InvalidArgument(
          StrFormat("TrainRequest::weights holds %zu weights for %d tuples",
                    weights.size(), dataset->num_tuples()));
    }
  }
  if (num_threads < -1) {
    return Status::InvalidArgument(
        "TrainRequest::num_threads must be >= -1 "
        "(-1 keeps the trainer config)");
  }
  if (warm_trees < 0) {
    return Status::InvalidArgument("TrainRequest::warm_trees must be >= 0");
  }
  if (warm_trees > 0 && warm_start == nullptr) {
    return Status::InvalidArgument(
        "TrainRequest::warm_trees requires warm_start");
  }
  return Status::OK();
}

StatusOr<Model> Trainer::Train(const TrainRequest& request) const {
  UDT_RETURN_NOT_OK(request.Validate());
  if (request.oob != nullptr) {
    return Status::InvalidArgument(
        "TrainRequest::oob is an ensemble estimate; use ForestTrainer");
  }
  if (request.warm_start != nullptr) {
    return Status::InvalidArgument(
        "TrainRequest::warm_start carries forest trees; use ForestTrainer");
  }

  // Out-of-core source: one pooled, budget-checked materialisation (see
  // storage/pdf_storage.h), then the in-memory path below.
  std::optional<Dataset> materialized;
  const Dataset* source = request.dataset;
  if (request.storage != nullptr) {
    UDT_ASSIGN_OR_RETURN(Dataset loaded,
                         MaterializeDataset(request.storage, request.budget));
    materialized.emplace(std::move(loaded));
    source = &*materialized;
  }

  TreeConfig config = config_;
  if (request.num_threads >= 0) config.num_threads = request.num_threads;
  if (request.seed) config.subspace_seed = *request.seed;
  if (request.kind == ModelKind::kAveraging) {
    // AVG (Section 4.1): classical tree over pdf means, exhaustive point
    // search. The trained Model remembers its kind and reduces test tuples
    // to their means before traversal.
    config.algorithm = SplitAlgorithm::kAvg;
  }

  std::optional<Dataset> means;
  if (request.kind == ModelKind::kAveraging) means = source->ToMeans();
  const Dataset& build_data = means ? *means : *source;

  TreeBuilder builder(config);
  StatusOr<DecisionTree> tree =
      request.weights.empty()
          ? builder.Build(build_data, request.stats)
          : builder.BuildWeighted(
                build_data,
                std::vector<double>(request.weights.begin(),
                                    request.weights.end()),
                request.stats);
  UDT_RETURN_NOT_OK(tree.status());
  return Model::FromTree(std::move(tree).value(), request.kind,
                         std::move(config));
}

}  // namespace udt
