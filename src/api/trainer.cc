#include "api/trainer.h"

#include <utility>

namespace udt {

StatusOr<Model> Trainer::Train(const Dataset& train, ModelKind kind,
                               BuildStats* stats) const {
  if (kind == ModelKind::kAveraging) {
    // AVG (Section 4.1): classical tree over pdf means, exhaustive point
    // search. The trained Model remembers its kind and reduces test tuples
    // to their means before traversal.
    TreeConfig avg_config = config_;
    avg_config.algorithm = SplitAlgorithm::kAvg;
    TreeBuilder builder(avg_config);
    UDT_ASSIGN_OR_RETURN(DecisionTree tree,
                         builder.Build(train.ToMeans(), stats));
    return Model::FromTree(std::move(tree), kind, std::move(avg_config));
  }
  TreeBuilder builder(config_);
  UDT_ASSIGN_OR_RETURN(DecisionTree tree, builder.Build(train, stats));
  return Model::FromTree(std::move(tree), kind, config_);
}

StatusOr<Model> Trainer::TrainFromStorage(PdfStorage* storage, ModelKind kind,
                                          const StorageBudget& budget,
                                          BuildStats* stats) const {
  UDT_ASSIGN_OR_RETURN(Dataset train, MaterializeDataset(storage, budget));
  return Train(train, kind, stats);
}

}  // namespace udt
