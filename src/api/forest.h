// udt::ForestTrainer / udt::ForestModel — the ensemble half of the public
// facade. A forest is N decision trees over the same uncertain data set,
// diversified two ways:
//
//   * seeded bootstrap bags: each tree trains on a fractional-weight
//     resample of the tuples (weight = bootstrap multiplicity, tuples a
//     bag never drew are left out entirely), and
//   * optional random attribute subspaces: each node of each tree
//     considers only a per-node random subset of the attributes
//     (TreeConfig::subspace_attributes, sampled by node-path token).
//
// Both sources of randomness are pure functions of ForestConfig::seed and
// the tree/node position, never of the thread schedule, so the forest the
// trainer produces is bitwise-identical for every num_threads — the same
// guarantee the single-tree builder makes, lifted to the ensemble
// (tests/forest_determinism_test.cc serialises and compares the bytes).
//
// Serving mirrors the single-tree stack: ForestModel (pointer trees,
// source of truth, own Save/Load) -> CompiledForest (flat per-tree
// records, api/compiled_forest.h) -> ForestPredictSession (per-worker
// scratch, api/forest_session.h).

#ifndef UDT_API_FOREST_H_
#define UDT_API_FOREST_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "api/model.h"
#include "api/trainer.h"
#include "common/statusor.h"
#include "core/builder.h"
#include "core/config.h"
#include "table/dataset.h"

namespace udt {

class CompiledForest;

// How per-tree outputs combine into the forest's class distribution.
enum class ForestVote {
  // Mean of the trees' class distributions (soft voting) — the default;
  // uses the full distributional output UDT trees produce.
  kAverage,
  // Each tree casts one vote for its argmax class; the forest distribution
  // is the normalised vote histogram.
  kMajority,
};

const char* ForestVoteToString(ForestVote vote);

// Knobs of one forest training run.
struct ForestConfig {
  // Per-tree construction config. tree.num_threads is ignored: trees build
  // serially inside forest-level tasks (the forest parallelises across
  // trees, which scales better and keeps one determinism mechanism).
  // tree.subspace_attributes / tree.subspace_seed are overwritten per tree
  // from `subspace_attributes` and `seed` below.
  TreeConfig tree;

  // Ensemble size.
  int num_trees = 25;

  // Drives every random choice of the run (bags and subspaces).
  uint64_t seed = 1;

  // Bootstrap bags: when true each tree trains on a multiplicity-weighted
  // resample (N draws with replacement over N tuples); when false every
  // tree sees the full data set (diversify with subspaces instead).
  bool bootstrap = true;

  // Per-node random attribute subspaces: 0 disables (every node considers
  // all attributes), k > 0 samples exactly k, and kSubspaceSqrt picks
  // floor(sqrt(num_attributes)) — the classical random-forest default.
  static constexpr int kSubspaceSqrt = -1;
  int subspace_attributes = 0;

  ForestVote vote = ForestVote::kAverage;

  // Forest-level training parallelism: 1 = serial, 0 = one thread per
  // hardware thread, N > 1 = exactly N. The trained forest is
  // bitwise-identical for every value.
  int num_threads = 1;

  // Validates parameter ranges (including the embedded tree config).
  Status Validate() const;

  // One-line description for experiment logs.
  std::string ToString() const;
};

// Out-of-bag generalisation estimate, computed from the tuples each
// bootstrap bag left out: tuple i is scored by the trees that never drew
// it, so no tree is evaluated on data it trained on.
struct OobEstimate {
  // Tuples with at least one out-of-bag tree (the only ones scored).
  int evaluated_tuples = 0;
  int total_tuples = 0;
  // Fraction of evaluated tuples the out-of-bag vote classifies correctly,
  // and its complement. When nothing was evaluated — bootstrap off, or
  // every tuple in-bag (possible for 1-tree forests on tiny data) — both
  // are quiet NaN and coverage is 0: a 0.0 would read as a catastrophic
  // (or, for error, perfect) forest, so "no estimate" is deliberately not
  // representable as a valid rate. Gate on evaluated_tuples > 0 (or
  // coverage > 0) before consuming either rate.
  double accuracy = std::numeric_limits<double>::quiet_NaN();
  double error = std::numeric_limits<double>::quiet_NaN();
  // evaluated_tuples / total_tuples (≈ 1 - (1-1/N)^trees for real bags).
  double coverage = 0.0;
};

// An immutable trained forest. Obtain one from ForestTrainer::Train,
// ForestModel::Load or ForestModel::Deserialize.
class ForestModel {
 public:
  // Wraps already-trained trees. All trees must share one schema and one
  // kind (checked).
  static ForestModel FromTrees(std::vector<Model> trees, ForestVote vote);

  // ----------------------------------------------------------- metadata

  ModelKind kind() const { return kind_; }
  ForestVote vote() const { return vote_; }
  int num_trees() const { return static_cast<int>(trees_->size()); }
  const std::vector<Model>& trees() const { return *trees_; }
  const Model& tree(int t) const {
    return (*trees_)[static_cast<size_t>(t)];
  }
  const Schema& schema() const { return (*trees_)[0].schema(); }
  const std::vector<std::string>& class_names() const {
    return schema().class_names();
  }
  int num_classes() const { return schema().num_classes(); }

  // --------------------------------------------------------- inference

  // Aggregated probability distribution over class labels for one tuple:
  // per-tree distributions combined under vote(), divided by num_trees
  // last, in tree order — the exact float sequence the compiled serving
  // path replays, so the two are bitwise-identical.
  std::vector<double> ClassifyDistribution(const UncertainTuple& tuple) const;

  // Argmax of ClassifyDistribution (ties -> lowest class id).
  int Predict(const UncertainTuple& tuple) const;

  // Flattens every tree into the immutable serving artifact
  // (api/compiled_forest.h). Serving code should compile once and hold
  // udt::ForestPredictSession values over the result.
  [[nodiscard]] CompiledForest Compile() const;

  // Classifies a batch through a one-shot compiled session
  // (api/forest_session.h); steady-traffic callers should hold a session.
  StatusOr<BatchResult> PredictBatch(std::span<const UncertainTuple> tuples,
                                     const PredictOptions& options = {}) const;
  StatusOr<BatchResult> PredictBatch(const Dataset& data,
                                     const PredictOptions& options = {}) const;

  // -------------------------------------------------------- persistence

  // Self-contained versioned text serialisation ("udt-forest-model v1"):
  // vote + header plus every tree's udt-model container, length-framed.
  std::string Serialize() const;
  static StatusOr<ForestModel> Deserialize(const std::string& text);

  // File round-trip of Serialize/Deserialize.
  Status Save(const std::string& path) const;
  static StatusOr<ForestModel> Load(const std::string& path);

 private:
  ForestModel(std::shared_ptr<const std::vector<Model>> trees,
              ForestVote vote, ModelKind kind)
      : trees_(std::move(trees)), vote_(vote), kind_(kind) {}

  std::shared_ptr<const std::vector<Model>> trees_;
  ForestVote vote_ = ForestVote::kAverage;
  ModelKind kind_ = ModelKind::kUdt;
};

// Builds ForestModels from uncertain data sets under a fixed config.
class ForestTrainer {
 public:
  ForestTrainer() = default;
  explicit ForestTrainer(ForestConfig config) : config_(std::move(config)) {}

  const ForestConfig& config() const { return config_; }
  ForestConfig& mutable_config() { return config_; }

  // Forest-level training parallelism; returns *this for chaining.
  ForestTrainer& SetNumThreads(int num_threads) {
    config_.num_threads = num_threads;
    return *this;
  }

  // The unified entry point: trains one forest as described by `request`
  // (api/train_request.h). Averaging forests reduce the data to pdf means
  // once and grow classical trees over the bags, exactly like
  // Trainer::Train does for one tree. Honoured request fields beyond the
  // source: `num_threads` overrides the forest-level thread count, `seed`
  // overrides ForestConfig::seed (bags + subspaces), `warm_start` /
  // `warm_trees` carry incumbent trees into the new ensemble (fresh trees
  // keep their by-index bags/subspace streams, so a warm-started forest's
  // fresh tree t is bitwise-identical to cold tree t), `oob` receives the
  // out-of-bag estimate over the freshly trained trees when bootstrap is
  // on (reset to the zero-coverage NaN sentinel otherwise), and `stats`
  // accumulates the fresh trees' BuildStats in tree order. Weighted
  // requests are rejected — bags own the forest's tuple weighting. Fails
  // on an empty data set or invalid config/request.
  [[nodiscard]] StatusOr<ForestModel> Train(const TrainRequest& request) const;

  // Shorthand for the common distribution-based case.
  StatusOr<ForestModel> TrainUdt(const Dataset& train,
                                 OobEstimate* oob = nullptr,
                                 BuildStats* stats = nullptr) const {
    TrainRequest request = TrainRequest::For(train, ModelKind::kUdt);
    request.oob = oob;
    request.stats = stats;
    return Train(request);
  }

  // Shorthand for the averaging baseline.
  StatusOr<ForestModel> TrainAveraging(const Dataset& train,
                                       OobEstimate* oob = nullptr,
                                       BuildStats* stats = nullptr) const {
    TrainRequest request = TrainRequest::For(train, ModelKind::kAveraging);
    request.oob = oob;
    request.stats = stats;
    return Train(request);
  }

 private:
  ForestConfig config_;
};

// The bootstrap bag of tree `tree_index` in a forest run: one multiplicity
// per tuple (N draws with replacement), a pure function of (seed,
// tree_index, num_tuples). Exposed so out-of-bag tooling and tests can
// reproduce the trainer's bags exactly.
std::vector<double> ForestBootstrapBag(uint64_t seed, int tree_index,
                                       int num_tuples);

// Accumulates one tree's class distribution into `accumulator` under
// `vote` — the shared aggregation step of the pointer and compiled
// serving paths (tree order + one final division keeps them bitwise
// aligned). `tree_distribution` holds num_classes doubles.
void AccumulateForestVote(ForestVote vote, const double* tree_distribution,
                          int num_classes, double* accumulator);

}  // namespace udt

#endif  // UDT_API_FOREST_H_
