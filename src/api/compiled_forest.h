// udt::CompiledForest — the immutable serving artifact of the ensemble
// stack, mirroring what CompiledModel is to Model. ForestModel::Compile()
// flattens every pointer tree into a FlatTree record block and bundles the
// lot with the shared schema, model kind and vote rule. A CompiledForest
// is one shared pointer wide — copy it freely across worker threads and
// hand one to each udt::ForestPredictSession.
//
// Persistence is versioned and self-contained ("udt-forest v1"): the
// header carries kind/vote/schema, then one flat-tree body per tree
// (tree/flat_tree_io.h, hexfloat doubles), each structurally validated on
// load before anything traverses it.

#ifndef UDT_API_COMPILED_FOREST_H_
#define UDT_API_COMPILED_FOREST_H_

#include <memory>
#include <string>
#include <vector>

#include "api/forest.h"
#include "api/model.h"
#include "common/statusor.h"
#include "table/attribute.h"
#include "tree/flat_tree.h"

namespace udt {

// An immutable compiled forest. Obtain one from ForestModel::Compile,
// CompiledForest::Compile, or Load/Deserialize.
class CompiledForest {
 public:
  // Flattens every tree of the forest. The artifact classifies
  // bitwise-identically to the source ForestModel.
  static CompiledForest Compile(const ForestModel& model);

  // ----------------------------------------------------------- metadata

  ModelKind kind() const { return rep_->kind; }
  ForestVote vote() const { return rep_->vote; }
  const Schema& schema() const { return rep_->schema; }
  int num_trees() const { return static_cast<int>(rep_->trees.size()); }
  const FlatTree& tree(int t) const {
    return rep_->trees[static_cast<size_t>(t)];
  }
  const std::vector<FlatTree>& trees() const { return rep_->trees; }
  const std::vector<std::string>& class_names() const {
    return rep_->schema.class_names();
  }
  int num_classes() const { return rep_->schema.num_classes(); }
  // Total node count across all trees.
  int num_nodes() const;

  // True when the two artifacts are bitwise-identical: same kind, vote and
  // schema, and every tree's flat layout equal byte for byte. Load after
  // Save reproduces the layout exactly, by this definition.
  bool LayoutEquals(const CompiledForest& other) const;

  // -------------------------------------------------------- persistence

  // Self-contained versioned text serialisation. Doubles are written as
  // hexfloats, so Deserialize(Serialize()) is layout-identical.
  std::string Serialize() const;
  static StatusOr<CompiledForest> Deserialize(const std::string& text);

  // File round-trip of Serialize/Deserialize.
  Status Save(const std::string& path) const;
  static StatusOr<CompiledForest> Load(const std::string& path);

 private:
  struct Rep {
    Schema schema;
    ModelKind kind;
    ForestVote vote;
    std::vector<FlatTree> trees;
  };

  explicit CompiledForest(std::shared_ptr<const Rep> rep)
      : rep_(std::move(rep)) {}

  std::shared_ptr<const Rep> rep_;
};

}  // namespace udt

#endif  // UDT_API_COMPILED_FOREST_H_
