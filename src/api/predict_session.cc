#include "api/predict_session.h"

#include <algorithm>
#include <utility>

#include "api/session_shard.h"
#include "common/logging.h"
#include "common/timer.h"
#include "tree/classify.h"

namespace udt {

using session_internal::ForEachShard;

namespace {
const CompiledModel& DerefModel(
    const std::shared_ptr<const CompiledModel>& model) {
  UDT_CHECK(model != nullptr);
  return *model;
}
}  // namespace

PredictSession::PredictSession(CompiledModel model)
    : model_(std::move(model)) {
  stream_.num_classes = model_.num_classes();
}

PredictSession::PredictSession(std::shared_ptr<const CompiledModel> model)
    : PredictSession(DerefModel(model)) {}

FlatTraversalScratch* PredictSession::ScratchFor(size_t index) {
  while (scratch_.size() <= index) {
    scratch_.push_back(std::make_unique<FlatTraversalScratch>());
  }
  return scratch_[index].get();
}

void PredictSession::CheckTuple(const UncertainTuple& tuple) const {
  UDT_CHECK(tuple.values.size() ==
            static_cast<size_t>(model_.schema().num_attributes()));
}

void PredictSession::ClassifyInto(const UncertainTuple& tuple, double* out) {
  CheckTuple(tuple);
  FlatTraversalScratch* scratch = ScratchFor(0);
  if (model_.kind() == ModelKind::kAveraging) {
    ClassifyFlatMeans(model_.flat_tree(), tuple, scratch, out);
  } else {
    ClassifyFlat(model_.flat_tree(), tuple, scratch, out);
  }
}

std::vector<double> PredictSession::ClassifyDistribution(
    const UncertainTuple& tuple) {
  std::vector<double> out(static_cast<size_t>(num_classes()));
  ClassifyInto(tuple, out.data());
  return out;
}

int PredictSession::Predict(const UncertainTuple& tuple) {
  // Reuse the streaming row buffer so repeated Predict calls stay
  // allocation-free once warm.
  const size_t k = static_cast<size_t>(num_classes());
  const size_t offset = stream_.distributions.size();
  stream_.distributions.resize(offset + k);
  ClassifyInto(tuple, stream_.distributions.data() + offset);
  int best = 0;
  const double* row = stream_.distributions.data() + offset;
  for (size_t c = 1; c < k; ++c) {
    if (row[c] > row[static_cast<size_t>(best)]) best = static_cast<int>(c);
  }
  stream_.distributions.resize(offset);
  return best;
}

StatusOr<int> PredictSession::ResolveThreads(int num_threads,
                                             size_t batch_size) const {
  return session_internal::ResolveSessionThreads(num_threads, batch_size);
}

TaskPool* PredictSession::EnsureExecutor(int num_threads) {
  return executor_.Ensure(num_threads,
                          [this](size_t slot) { ScratchFor(slot); });
}

template <typename TupleAt>
Status PredictSession::PredictBatchIntoImpl(size_t n, TupleAt tuple_at,
                                            const PredictOptions& options,
                                            FlatBatchResult* out) {
  UDT_CHECK(out != nullptr);
  UDT_RETURN_NOT_OK(options.Validate());
  const size_t k = static_cast<size_t>(num_classes());
  UDT_ASSIGN_OR_RETURN(int num_threads, ResolveThreads(options.num_threads, n));

  out->num_classes = static_cast<int>(k);
  out->distributions.resize(n * k);
  out->labels.resize(n);

  const FlatTree& flat = model_.flat_tree();
  const bool averaging = model_.kind() == ModelKind::kAveraging;
  // Each shard runs the level-synchronous batch kernel over its whole
  // range (bitwise-identical to the per-tuple scalar kernels, so sharding
  // and thread count still cannot change results).
  auto classify_range = [&](int worker, size_t begin, size_t end) {
    FlatTraversalScratch* scratch = ScratchFor(static_cast<size_t>(worker));
    const size_t count = end - begin;
    std::vector<const UncertainTuple*>& tp = scratch->batch.tuple_ptrs;
    std::vector<double*>& rp = scratch->batch.row_ptrs;
    tp.resize(count);
    rp.resize(count);
    for (size_t i = 0; i < count; ++i) {
      tp[i] = &tuple_at(begin + i);
      rp[i] = out->distributions.data() + (begin + i) * k;
    }
    if (averaging) {
      ClassifyFlatMeansBatch(flat, tp.data(), rp.data(), count, scratch);
    } else {
      ClassifyFlatBatch(flat, tp.data(), rp.data(), count, scratch);
    }
    for (size_t i = begin; i < end; ++i) {
      const double* row = out->distributions.data() + i * k;
      int best = 0;
      for (size_t c = 1; c < k; ++c) {
        if (row[c] > row[static_cast<size_t>(best)]) {
          best = static_cast<int>(c);
        }
      }
      out->labels[i] = best;
    }
  };

  for (size_t i = 0; i < n; ++i) CheckTuple(tuple_at(i));

  ForEachShard(EnsureExecutor(num_threads), n, num_threads,
               session_internal::EffectiveShardGrain(options.grain, 1),
               classify_range);
  return Status::OK();
}

Status PredictSession::PredictBatchInto(
    std::span<const UncertainTuple> tuples, const PredictOptions& options,
    FlatBatchResult* out) {
  return PredictBatchIntoImpl(
      tuples.size(),
      [&tuples](size_t i) -> const UncertainTuple& { return tuples[i]; },
      options, out);
}

Status PredictSession::PredictBatchInto(
    std::span<const UncertainTuple* const> tuples,
    const PredictOptions& options, FlatBatchResult* out) {
  for (const UncertainTuple* tuple : tuples) UDT_CHECK(tuple != nullptr);
  return PredictBatchIntoImpl(
      tuples.size(),
      [&tuples](size_t i) -> const UncertainTuple& { return *tuples[i]; },
      options, out);
}

StatusOr<BatchResult> PredictSession::PredictBatch(
    std::span<const UncertainTuple> tuples, const PredictOptions& options) {
  WallTimer batch_timer;
  const size_t n = tuples.size();
  UDT_RETURN_NOT_OK(options.Validate());
  const size_t k = static_cast<size_t>(num_classes());
  UDT_ASSIGN_OR_RETURN(int num_threads, ResolveThreads(options.num_threads, n));

  BatchResult result;
  result.distributions.resize(n);
  result.labels.resize(n);
  if (options.collect_timings) result.tuple_seconds.resize(n);

  const FlatTree& flat = model_.flat_tree();
  const bool averaging = model_.kind() == ModelKind::kAveraging;
  auto classify_one = [&](FlatTraversalScratch* scratch, size_t i) {
    std::vector<double>& row = result.distributions[i];
    row.resize(k);
    if (averaging) {
      ClassifyFlatMeans(flat, tuples[i], scratch, row.data());
    } else {
      ClassifyFlat(flat, tuples[i], scratch, row.data());
    }
    result.labels[i] = ArgMax(row);
  };
  auto classify_range = [&](int worker, size_t begin, size_t end) {
    FlatTraversalScratch* scratch = ScratchFor(static_cast<size_t>(worker));
    if (options.collect_timings) {
      // Per-tuple timing requires per-tuple kernel launches; keep the
      // scalar path (bitwise-identical output, just not batched).
      for (size_t i = begin; i < end; ++i) {
        WallTimer tuple_timer;
        classify_one(scratch, i);
        result.tuple_seconds[i] = tuple_timer.ElapsedSeconds();
      }
      return;
    }
    const size_t count = end - begin;
    std::vector<const UncertainTuple*>& tp = scratch->batch.tuple_ptrs;
    std::vector<double*>& rp = scratch->batch.row_ptrs;
    tp.resize(count);
    rp.resize(count);
    for (size_t i = 0; i < count; ++i) {
      std::vector<double>& row = result.distributions[begin + i];
      row.resize(k);
      tp[i] = &tuples[begin + i];
      rp[i] = row.data();
    }
    if (averaging) {
      ClassifyFlatMeansBatch(flat, tp.data(), rp.data(), count, scratch);
    } else {
      ClassifyFlatBatch(flat, tp.data(), rp.data(), count, scratch);
    }
    for (size_t i = begin; i < end; ++i) {
      result.labels[i] = ArgMax(result.distributions[i]);
    }
  };

  for (size_t i = 0; i < n; ++i) CheckTuple(tuples[i]);

  result.num_threads_used =
      ForEachShard(EnsureExecutor(num_threads), n, num_threads,
                   session_internal::EffectiveShardGrain(options.grain, 1),
                   classify_range);

  result.total_seconds = batch_timer.ElapsedSeconds();
  return result;
}

StatusOr<BatchResult> PredictSession::PredictBatch(
    const Dataset& data, const PredictOptions& options) {
  return PredictBatch(std::span<const UncertainTuple>(data.tuples().data(),
                                                      data.tuples().size()),
                      options);
}

void PredictSession::Push(const UncertainTuple& tuple) {
  CheckTuple(tuple);
  const size_t k = static_cast<size_t>(num_classes());
  const size_t offset = stream_.distributions.size();
  stream_.distributions.resize(offset + k);
  double* row = stream_.distributions.data() + offset;
  FlatTraversalScratch* scratch = ScratchFor(0);
  if (model_.kind() == ModelKind::kAveraging) {
    ClassifyFlatMeans(model_.flat_tree(), tuple, scratch, row);
  } else {
    ClassifyFlat(model_.flat_tree(), tuple, scratch, row);
  }
  int best = 0;
  for (size_t c = 1; c < k; ++c) {
    if (row[c] > row[static_cast<size_t>(best)]) best = static_cast<int>(c);
  }
  stream_.labels.push_back(best);
}

void PredictSession::Drain(FlatBatchResult* out) {
  UDT_CHECK(out != nullptr);
  out->num_classes = num_classes();
  // Swap, don't copy: the caller's old buffers become the next stream
  // storage, keeping the steady state allocation-free in both directions.
  std::swap(out->distributions, stream_.distributions);
  std::swap(out->labels, stream_.labels);
  stream_.Clear();
}

}  // namespace udt
