// udt::CompiledModel — the immutable, shareable serving artifact of the
// prediction API. Model::Compile() flattens the trained pointer tree into a
// FlatTree (breadth-first struct-of-arrays records, pooled leaf
// distribution table) and bundles it with the schema and model kind: the
// exact set of facts a serving process needs, and nothing it doesn't (no
// training config, no mutable state). A CompiledModel is two shared
// pointers wide — copy it freely across worker threads and hand one to
// each udt::PredictSession.
//
// Persistence is versioned and self-contained ("udt-compiled v1"): Save
// writes the flat arrays with hexfloat doubles so Load rebuilds a
// bitwise-identical in-memory layout, validated structurally (child ids,
// table offsets, attribute kinds against the schema) before anything
// traverses it.

#ifndef UDT_API_COMPILED_MODEL_H_
#define UDT_API_COMPILED_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "api/model.h"
#include "common/statusor.h"
#include "table/attribute.h"
#include "tree/flat_tree.h"

namespace udt {

// An immutable compiled model. Obtain one from Model::Compile,
// CompiledModel::Compile, or Load/Deserialize.
class CompiledModel {
 public:
  // Flattens the model's tree. The compiled artifact classifies
  // bitwise-identically to the source model.
  static CompiledModel Compile(const Model& model);

  // ----------------------------------------------------------- metadata

  ModelKind kind() const { return rep_->kind; }
  const Schema& schema() const { return rep_->schema; }
  const FlatTree& flat_tree() const { return rep_->tree; }
  const std::vector<std::string>& class_names() const {
    return rep_->schema.class_names();
  }
  int num_classes() const { return rep_->schema.num_classes(); }
  int num_nodes() const { return rep_->tree.num_nodes(); }
  int num_leaves() const { return rep_->tree.num_leaves(); }

  // True when the two artifacts have bitwise-identical flat layouts (every
  // node record, table entry and double, plus kind and schema). Load after
  // Save reproduces the layout exactly, by this definition.
  bool LayoutEquals(const CompiledModel& other) const;

  // -------------------------------------------------------- persistence

  // Self-contained versioned text serialisation. Doubles are written as
  // hexfloats, so Deserialize(Serialize()) is layout-identical.
  std::string Serialize() const;
  static StatusOr<CompiledModel> Deserialize(const std::string& text);

  // File round-trip of Serialize/Deserialize.
  Status Save(const std::string& path) const;
  static StatusOr<CompiledModel> Load(const std::string& path);

 private:
  struct Rep {
    Schema schema;
    ModelKind kind;
    FlatTree tree;
  };

  explicit CompiledModel(std::shared_ptr<const Rep> rep)
      : rep_(std::move(rep)) {}

  std::shared_ptr<const Rep> rep_;
};

}  // namespace udt

#endif  // UDT_API_COMPILED_MODEL_H_
