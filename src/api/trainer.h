// udt::Trainer — the training half of the public facade. A Trainer owns a
// TreeConfig, wraps the core TreeBuilder, and produces immutable udt::Model
// values for both of the paper's classifier families: distribution-based
// (UDT, Section 4.2) and averaging (AVG, Section 4.1). It subsumes the
// deprecated UncertainTreeClassifier / AveragingClassifier pair; evaluation
// code selects the family with a ModelKind argument instead of a type.
//
// Training is requested through one TrainRequest struct
// (api/train_request.h) that names the source (in-memory dataset or
// budgeted storage backend), kind, optional per-tuple weights, and thread
// and seed overrides. The pre-request multi-signature entry points served
// their one deprecation cycle (PR 9) and are gone; the
// TrainUdt/TrainAveraging shorthands are the convenience layer and stay.

#ifndef UDT_API_TRAINER_H_
#define UDT_API_TRAINER_H_

#include "api/model.h"
#include "api/train_request.h"
#include "common/statusor.h"
#include "core/builder.h"
#include "core/config.h"
#include "storage/pdf_storage.h"
#include "table/dataset.h"

namespace udt {

// Builds Models from uncertain data sets under a fixed config.
class Trainer {
 public:
  Trainer() = default;
  explicit Trainer(TreeConfig config) : config_(std::move(config)) {}

  const TreeConfig& config() const { return config_; }
  TreeConfig& mutable_config() { return config_; }

  // Training parallelism (TreeConfig::num_threads): 1 = serial, 0 = one
  // thread per hardware thread, N > 1 = exactly N. The trained tree is
  // bitwise-identical for every value. Returns *this for chaining.
  Trainer& SetNumThreads(int num_threads) {
    config_.num_threads = num_threads;
    return *this;
  }

  // The unified entry point: trains one model as described by `request`
  // (source, kind, weights, thread/seed overrides — see
  // api/train_request.h). For kAveraging the data is reduced to pdf means
  // and the exhaustive point search is used (the config's algorithm is
  // overridden to kAvg), exactly as the paper's AVG baseline; for kUdt the
  // configured algorithm runs on the full pdfs. Fails on an empty data
  // set, an invalid config, or an inconsistent request. Requests carrying
  // forest-only fields (oob, warm_start) are rejected.
  [[nodiscard]] StatusOr<Model> Train(const TrainRequest& request) const;

  // Shorthand for the common distribution-based case.
  StatusOr<Model> TrainUdt(const Dataset& train,
                           BuildStats* stats = nullptr) const {
    TrainRequest request = TrainRequest::For(train, ModelKind::kUdt);
    request.stats = stats;
    return Train(request);
  }

  // Shorthand for the averaging baseline.
  StatusOr<Model> TrainAveraging(const Dataset& train,
                                 BuildStats* stats = nullptr) const {
    TrainRequest request = TrainRequest::For(train, ModelKind::kAveraging);
    request.stats = stats;
    return Train(request);
  }

 private:
  TreeConfig config_;
};

}  // namespace udt

#endif  // UDT_API_TRAINER_H_
