// udt::Trainer — the training half of the public facade. A Trainer owns a
// TreeConfig, wraps the core TreeBuilder, and produces immutable udt::Model
// values for both of the paper's classifier families: distribution-based
// (UDT, Section 4.2) and averaging (AVG, Section 4.1). It subsumes the
// deprecated UncertainTreeClassifier / AveragingClassifier pair; evaluation
// code selects the family with a ModelKind argument instead of a type.

#ifndef UDT_API_TRAINER_H_
#define UDT_API_TRAINER_H_

#include "api/model.h"
#include "common/statusor.h"
#include "core/builder.h"
#include "core/config.h"
#include "storage/pdf_storage.h"
#include "table/dataset.h"

namespace udt {

// Builds Models from uncertain data sets under a fixed config.
class Trainer {
 public:
  Trainer() = default;
  explicit Trainer(TreeConfig config) : config_(std::move(config)) {}

  const TreeConfig& config() const { return config_; }
  TreeConfig& mutable_config() { return config_; }

  // Training parallelism (TreeConfig::num_threads): 1 = serial, 0 = one
  // thread per hardware thread, N > 1 = exactly N. The trained tree is
  // bitwise-identical for every value. Returns *this for chaining.
  Trainer& SetNumThreads(int num_threads) {
    config_.num_threads = num_threads;
    return *this;
  }

  // Trains a model of the given kind on `train`. For kAveraging the data
  // is reduced to pdf means and the exhaustive point search is used (the
  // config's algorithm is overridden to kAvg), exactly as the paper's AVG
  // baseline; for kUdt the configured algorithm runs on the full pdfs.
  // Fails on an empty data set or invalid config. `stats` may be null.
  StatusOr<Model> Train(const Dataset& train, ModelKind kind,
                        BuildStats* stats = nullptr) const;

  // Shorthand for the common distribution-based case.
  StatusOr<Model> TrainUdt(const Dataset& train,
                           BuildStats* stats = nullptr) const {
    return Train(train, ModelKind::kUdt, stats);
  }

  // Shorthand for the averaging baseline.
  StatusOr<Model> TrainAveraging(const Dataset& train,
                                 BuildStats* stats = nullptr) const {
    return Train(train, ModelKind::kAveraging, stats);
  }

  // Trains from a storage backend (storage/pdf_storage.h): streams the
  // backend's chunks into a pooled in-memory working set — tuples decoded
  // from the same dictionary entry share one pdf instance — enforcing
  // `budget` against the pooled footprint after every chunk, then trains
  // exactly like Train. A "udt-dataset v1" file whose exact decoded size
  // dwarfs the budget still trains as long as its distinct distributions
  // fit (the out-of-core path; see storage/dataset_file.h).
  StatusOr<Model> TrainFromStorage(PdfStorage* storage, ModelKind kind,
                                   const StorageBudget& budget = {},
                                   BuildStats* stats = nullptr) const;

 private:
  TreeConfig config_;
};

}  // namespace udt

#endif  // UDT_API_TRAINER_H_
