#include "api/compiled_forest.h"

#include "api/container_tags.h"

#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <utility>

#include "common/string_util.h"
#include "table/schema_io.h"
#include "tree/flat_tree_io.h"

namespace udt {
namespace {

constexpr char kMagic[] = "udt-forest v1";
constexpr char kContext[] = "udt-forest";

bool FlatTreeEquals(const FlatTree& a, const FlatTree& b) {
  return a.num_classes == b.num_classes &&
         wire::BitwiseEquals(a.kind, b.kind) &&
         wire::BitwiseEquals(a.attribute, b.attribute) &&
         wire::BitwiseEquals(a.split_point, b.split_point) &&
         wire::BitwiseEquals(a.first, b.first) &&
         wire::BitwiseEquals(a.num_children, b.num_children) &&
         wire::BitwiseEquals(a.child_table, b.child_table) &&
         wire::BitwiseEquals(a.leaf_values, b.leaf_values);
}

}  // namespace

CompiledForest CompiledForest::Compile(const ForestModel& model) {
  std::vector<FlatTree> trees;
  trees.reserve(static_cast<size_t>(model.num_trees()));
  for (int t = 0; t < model.num_trees(); ++t) {
    trees.push_back(FlattenTree(model.tree(t).tree()));
  }
  auto rep = std::make_shared<Rep>(
      Rep{model.schema(), model.kind(), model.vote(), std::move(trees)});
  return CompiledForest(std::move(rep));
}

CompiledForest ForestModel::Compile() const {
  return CompiledForest::Compile(*this);
}

int CompiledForest::num_nodes() const {
  int total = 0;
  for (const FlatTree& tree : rep_->trees) total += tree.num_nodes();
  return total;
}

bool CompiledForest::LayoutEquals(const CompiledForest& other) const {
  if (rep_->kind != other.rep_->kind || rep_->vote != other.rep_->vote ||
      !SchemaEquals(rep_->schema, other.rep_->schema) ||
      rep_->trees.size() != other.rep_->trees.size()) {
    return false;
  }
  for (size_t t = 0; t < rep_->trees.size(); ++t) {
    if (!FlatTreeEquals(rep_->trees[t], other.rep_->trees[t])) return false;
  }
  return true;
}

std::string CompiledForest::Serialize() const {
  std::ostringstream out;
  out << kMagic << "\n";
  out << "kind " << wire::KindTag(rep_->kind) << "\n";
  out << "vote " << wire::VoteTag(rep_->vote) << "\n";
  WriteSchemaBlock(rep_->schema, out);
  out << "trees " << num_trees() << "\n";
  // The flat-tree bodies are self-delimiting (a tables header counts every
  // section), so they simply concatenate.
  for (const FlatTree& tree : rep_->trees) {
    WriteFlatTreeBody(tree, out);
  }
  return out.str();
}

StatusOr<CompiledForest> CompiledForest::Deserialize(const std::string& text) {
  std::istringstream in(text);
  LineReader reader(in, kContext);

  UDT_RETURN_NOT_OK(reader.Next("magic"));
  if (reader.line() != kMagic) {
    return reader.Error("bad magic line: " + reader.line());
  }

  UDT_RETURN_NOT_OK(reader.Next("kind"));
  if (reader.line().rfind("kind ", 0) != 0) {
    return reader.Error("expected kind line");
  }
  UDT_ASSIGN_OR_RETURN(ModelKind kind,
                       wire::ParseKindTag(reader.line().substr(5)));

  UDT_RETURN_NOT_OK(reader.Next("vote"));
  if (reader.line().rfind("vote ", 0) != 0) {
    return reader.Error("expected vote line");
  }
  UDT_ASSIGN_OR_RETURN(ForestVote vote,
                       wire::ParseVoteTag(reader.line().substr(5)));

  UDT_ASSIGN_OR_RETURN(Schema schema, ReadSchemaBlock(&reader));

  UDT_RETURN_NOT_OK(reader.Next("trees"));
  constexpr int kMaxTrees = 1 << 16;
  if (reader.line().rfind("trees ", 0) != 0) {
    return reader.Error("expected trees line");
  }
  std::optional<int> num_trees = ParseInt(reader.line().substr(6));
  if (!num_trees || *num_trees < 1 || *num_trees > kMaxTrees) {
    return reader.Error("bad tree count");
  }

  std::vector<FlatTree> trees;
  trees.reserve(static_cast<size_t>(*num_trees));
  for (int t = 0; t < *num_trees; ++t) {
    UDT_ASSIGN_OR_RETURN(FlatTree tree,
                         ReadFlatTreeBody(&reader, schema.num_classes()));
    UDT_RETURN_NOT_OK(ValidateFlatTree(tree, schema, kContext));
    trees.push_back(std::move(tree));
  }
  auto rep = std::make_shared<Rep>(
      Rep{std::move(schema), kind, vote, std::move(trees)});
  return CompiledForest(std::move(rep));
}

Status CompiledForest::Save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out << Serialize();
  out.close();
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

StatusOr<CompiledForest> CompiledForest::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return Deserialize(text);
}

}  // namespace udt
