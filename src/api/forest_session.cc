#include "api/forest_session.h"

#include <algorithm>
#include <utility>

#include "api/session_shard.h"
#include "common/logging.h"
#include "common/timer.h"
#include "tree/classify.h"

namespace udt {

using session_internal::ForEachShard;

namespace {
const CompiledForest& DerefForest(
    const std::shared_ptr<const CompiledForest>& forest) {
  UDT_CHECK(forest != nullptr);
  return *forest;
}
}  // namespace

ForestPredictSession::ForestPredictSession(CompiledForest forest)
    : forest_(std::move(forest)) {}

ForestPredictSession::ForestPredictSession(
    std::shared_ptr<const CompiledForest> forest)
    : ForestPredictSession(DerefForest(forest)) {}

ForestPredictSession::WorkerScratch* ForestPredictSession::ScratchFor(
    size_t index) {
  while (scratch_.size() <= index) {
    auto scratch = std::make_unique<WorkerScratch>();
    scratch->tree_row.resize(static_cast<size_t>(num_classes()));
    scratch_.push_back(std::move(scratch));
  }
  return scratch_[index].get();
}

void ForestPredictSession::CheckTuple(const UncertainTuple& tuple) const {
  UDT_CHECK(tuple.values.size() ==
            static_cast<size_t>(forest_.schema().num_attributes()));
}

void ForestPredictSession::ClassifyWith(WorkerScratch* scratch,
                                        const UncertainTuple& tuple,
                                        double* out) {
  const int k = num_classes();
  const bool averaging = forest_.kind() == ModelKind::kAveraging;
  const ForestVote vote = forest_.vote();
  for (int c = 0; c < k; ++c) out[c] = 0.0;
  // Tree order and the single final division replay the pointer path's
  // float sequence exactly (ForestModel::ClassifyDistribution).
  for (const FlatTree& tree : forest_.trees()) {
    if (averaging) {
      ClassifyFlatMeans(tree, tuple, &scratch->traversal,
                        scratch->tree_row.data());
    } else {
      ClassifyFlat(tree, tuple, &scratch->traversal,
                   scratch->tree_row.data());
    }
    AccumulateForestVote(vote, scratch->tree_row.data(), k, out);
  }
  const double trees = static_cast<double>(forest_.num_trees());
  for (int c = 0; c < k; ++c) out[c] /= trees;
}

void ForestPredictSession::ClassifyBatchWith(
    WorkerScratch* scratch, const UncertainTuple* const* tuples,
    double* const* rows, size_t count) {
  const int k = num_classes();
  const bool averaging = forest_.kind() == ModelKind::kAveraging;
  const ForestVote vote = forest_.vote();
  for (size_t i = 0; i < count; ++i) {
    std::fill(rows[i], rows[i] + k, 0.0);
  }
  scratch->tree_rows.resize(count * static_cast<size_t>(k));
  std::vector<double*>& tree_rows = scratch->tree_row_ptrs;
  tree_rows.resize(count);
  for (size_t i = 0; i < count; ++i) {
    tree_rows[i] = scratch->tree_rows.data() + i * static_cast<size_t>(k);
  }
  // Tree-outer: one batch traversal per tree over the whole shard, votes
  // folded in per tuple before the next tree. Any single tuple still sees
  // zero → per-tree accumulation in tree order → one final division,
  // exactly ClassifyWith's float sequence.
  for (const FlatTree& tree : forest_.trees()) {
    if (averaging) {
      ClassifyFlatMeansBatch(tree, tuples, tree_rows.data(), count,
                             &scratch->traversal);
    } else {
      ClassifyFlatBatch(tree, tuples, tree_rows.data(), count,
                        &scratch->traversal);
    }
    for (size_t i = 0; i < count; ++i) {
      AccumulateForestVote(vote, tree_rows[i], k, rows[i]);
    }
  }
  const double trees = static_cast<double>(forest_.num_trees());
  for (size_t i = 0; i < count; ++i) {
    for (int c = 0; c < k; ++c) rows[i][c] /= trees;
  }
}

void ForestPredictSession::ClassifyInto(const UncertainTuple& tuple,
                                        double* out) {
  CheckTuple(tuple);
  ClassifyWith(ScratchFor(0), tuple, out);
}

std::vector<double> ForestPredictSession::ClassifyDistribution(
    const UncertainTuple& tuple) {
  std::vector<double> out(static_cast<size_t>(num_classes()));
  ClassifyInto(tuple, out.data());
  return out;
}

int ForestPredictSession::Predict(const UncertainTuple& tuple) {
  return ArgMax(ClassifyDistribution(tuple));
}

StatusOr<int> ForestPredictSession::ResolveThreads(int num_threads,
                                                   size_t batch_size) const {
  return session_internal::ResolveSessionThreads(num_threads, batch_size);
}

TaskPool* ForestPredictSession::EnsureExecutor(int num_threads) {
  return executor_.Ensure(num_threads,
                          [this](size_t slot) { ScratchFor(slot); });
}

template <typename TupleAt>
Status ForestPredictSession::PredictBatchIntoImpl(
    size_t n, TupleAt tuple_at, const PredictOptions& options,
    FlatBatchResult* out) {
  UDT_CHECK(out != nullptr);
  UDT_RETURN_NOT_OK(options.Validate());
  const size_t k = static_cast<size_t>(num_classes());
  UDT_ASSIGN_OR_RETURN(int num_threads,
                       ResolveThreads(options.num_threads, n));

  out->num_classes = static_cast<int>(k);
  out->distributions.resize(n * k);
  out->labels.resize(n);

  auto classify_range = [&](int worker, size_t begin, size_t end) {
    WorkerScratch* scratch = ScratchFor(static_cast<size_t>(worker));
    const size_t count = end - begin;
    std::vector<const UncertainTuple*>& tp =
        scratch->traversal.batch.tuple_ptrs;
    std::vector<double*>& rp = scratch->traversal.batch.row_ptrs;
    tp.resize(count);
    rp.resize(count);
    for (size_t i = 0; i < count; ++i) {
      tp[i] = &tuple_at(begin + i);
      rp[i] = out->distributions.data() + (begin + i) * k;
    }
    ClassifyBatchWith(scratch, tp.data(), rp.data(), count);
    for (size_t i = begin; i < end; ++i) {
      const double* row = out->distributions.data() + i * k;
      int best = 0;
      for (size_t c = 1; c < k; ++c) {
        if (row[c] > row[static_cast<size_t>(best)]) {
          best = static_cast<int>(c);
        }
      }
      out->labels[i] = best;
    }
  };

  for (size_t i = 0; i < n; ++i) CheckTuple(tuple_at(i));

  ForEachShard(EnsureExecutor(num_threads), n, num_threads,
               session_internal::EffectiveShardGrain(
                   options.grain,
                   static_cast<size_t>(forest_.num_trees())),
               classify_range);
  return Status::OK();
}

Status ForestPredictSession::PredictBatchInto(
    std::span<const UncertainTuple> tuples, const PredictOptions& options,
    FlatBatchResult* out) {
  return PredictBatchIntoImpl(
      tuples.size(),
      [&tuples](size_t i) -> const UncertainTuple& { return tuples[i]; },
      options, out);
}

Status ForestPredictSession::PredictBatchInto(
    std::span<const UncertainTuple* const> tuples,
    const PredictOptions& options, FlatBatchResult* out) {
  for (const UncertainTuple* tuple : tuples) UDT_CHECK(tuple != nullptr);
  return PredictBatchIntoImpl(
      tuples.size(),
      [&tuples](size_t i) -> const UncertainTuple& { return *tuples[i]; },
      options, out);
}

StatusOr<BatchResult> ForestPredictSession::PredictBatch(
    std::span<const UncertainTuple> tuples, const PredictOptions& options) {
  WallTimer batch_timer;
  const size_t n = tuples.size();
  UDT_RETURN_NOT_OK(options.Validate());
  const size_t k = static_cast<size_t>(num_classes());
  UDT_ASSIGN_OR_RETURN(int num_threads,
                       ResolveThreads(options.num_threads, n));

  BatchResult result;
  result.distributions.resize(n);
  result.labels.resize(n);
  if (options.collect_timings) result.tuple_seconds.resize(n);

  auto classify_one = [&](WorkerScratch* scratch, size_t i) {
    std::vector<double>& row = result.distributions[i];
    row.resize(k);
    ClassifyWith(scratch, tuples[i], row.data());
    result.labels[i] = ArgMax(row);
  };
  auto classify_range = [&](int worker, size_t begin, size_t end) {
    WorkerScratch* scratch = ScratchFor(static_cast<size_t>(worker));
    if (options.collect_timings) {
      // Per-tuple timing requires per-tuple kernel launches; keep the
      // scalar path (bitwise-identical output, just not batched).
      for (size_t i = begin; i < end; ++i) {
        WallTimer tuple_timer;
        classify_one(scratch, i);
        result.tuple_seconds[i] = tuple_timer.ElapsedSeconds();
      }
      return;
    }
    const size_t count = end - begin;
    std::vector<const UncertainTuple*>& tp =
        scratch->traversal.batch.tuple_ptrs;
    std::vector<double*>& rp = scratch->traversal.batch.row_ptrs;
    tp.resize(count);
    rp.resize(count);
    for (size_t i = 0; i < count; ++i) {
      std::vector<double>& row = result.distributions[begin + i];
      row.resize(k);
      tp[i] = &tuples[begin + i];
      rp[i] = row.data();
    }
    ClassifyBatchWith(scratch, tp.data(), rp.data(), count);
    for (size_t i = begin; i < end; ++i) {
      result.labels[i] = ArgMax(result.distributions[i]);
    }
  };

  for (size_t i = 0; i < n; ++i) CheckTuple(tuples[i]);

  result.num_threads_used =
      ForEachShard(EnsureExecutor(num_threads), n, num_threads,
                   session_internal::EffectiveShardGrain(
                       options.grain,
                       static_cast<size_t>(forest_.num_trees())),
                   classify_range);

  result.total_seconds = batch_timer.ElapsedSeconds();
  return result;
}

StatusOr<BatchResult> ForestPredictSession::PredictBatch(
    const Dataset& data, const PredictOptions& options) {
  return PredictBatch(std::span<const UncertainTuple>(data.tuples().data(),
                                                      data.tuples().size()),
                      options);
}

StatusOr<BatchResult> ForestModel::PredictBatch(
    std::span<const UncertainTuple> tuples,
    const PredictOptions& options) const {
  // Thin shim over the compiled serving path: flatten once, run one
  // session. Callers with steady traffic should Compile() once and hold
  // their own ForestPredictSession — that amortises both the flattening
  // and the session's persistent worker pool, which this one-shot session
  // tears down again on return.
  ForestPredictSession session(Compile());
  return session.PredictBatch(tuples, options);
}

StatusOr<BatchResult> ForestModel::PredictBatch(
    const Dataset& data, const PredictOptions& options) const {
  return PredictBatch(
      std::span<const UncertainTuple>(data.tuples().data(),
                                      data.tuples().size()),
      options);
}

}  // namespace udt
