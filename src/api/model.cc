#include "api/model.h"

#include "api/container_tags.h"

#include <fstream>
#include <sstream>
#include <utility>

#include "api/predict_session.h"
#include "common/string_util.h"
#include "table/schema_io.h"
#include "tree/classify.h"
#include "tree/tree_io.h"

namespace udt {
namespace {

// Serialisation keywords of the v1 model container. The header is
// line-oriented (names may contain spaces, so each name owns the rest of
// its line); the tree body is the tree_io text verbatim.
constexpr char kMagic[] = "udt-model v1";

StatusOr<SplitAlgorithm> ParseAlgorithm(std::string_view name) {
  for (SplitAlgorithm a :
       {SplitAlgorithm::kAvg, SplitAlgorithm::kUdt, SplitAlgorithm::kUdtBp,
        SplitAlgorithm::kUdtLp, SplitAlgorithm::kUdtGp,
        SplitAlgorithm::kUdtEs}) {
    if (name == SplitAlgorithmToString(a)) return a;
  }
  return Status::InvalidArgument("unknown algorithm: " + std::string(name));
}

StatusOr<DispersionMeasure> ParseMeasure(std::string_view name) {
  for (DispersionMeasure m :
       {DispersionMeasure::kEntropy, DispersionMeasure::kGini,
        DispersionMeasure::kGainRatio}) {
    if (name == DispersionMeasureToString(m)) return m;
  }
  return Status::InvalidArgument("unknown measure: " + std::string(name));
}

// The training knobs worth persisting: enough to retrain or audit a model,
// including the split_options that change which tree gets built. Written as
// key=value tokens; unknown keys are skipped on load so future versions can
// extend the line.
std::string ConfigLine(const TreeConfig& config) {
  return StrFormat(
      "config algorithm=%s measure=%s max_depth=%d min_split_weight=%.17g "
      "min_gain=%.17g post_prune=%d pruning_confidence=%.17g "
      "es_endpoint_sample_rate=%.17g use_percentile_endpoints=%d "
      "percentiles_per_class=%d min_side_mass=%.17g "
      "subspace_attributes=%d subspace_seed=%llu",
      SplitAlgorithmToString(config.algorithm),
      DispersionMeasureToString(config.measure), config.max_depth,
      config.min_split_weight, config.min_gain, config.post_prune ? 1 : 0,
      config.pruning_confidence,
      config.split_options.es_endpoint_sample_rate,
      config.split_options.use_percentile_endpoints ? 1 : 0,
      config.split_options.percentiles_per_class,
      config.split_options.min_side_mass, config.subspace_attributes,
      static_cast<unsigned long long>(config.subspace_seed));
}

Status ParseConfigLine(std::string_view line, TreeConfig* config) {
  for (const std::string& token : SplitString(line, ' ')) {
    size_t eq = token.find('=');
    if (eq == std::string::npos) continue;
    std::string_view key(token.data(), eq);
    std::string_view value(token.data() + eq + 1, token.size() - eq - 1);
    if (key == "algorithm") {
      UDT_ASSIGN_OR_RETURN(config->algorithm, ParseAlgorithm(value));
    } else if (key == "measure") {
      UDT_ASSIGN_OR_RETURN(config->measure, ParseMeasure(value));
    } else if (key == "max_depth") {
      std::optional<int> v = ParseInt(value);
      if (!v) return Status::InvalidArgument("bad max_depth");
      config->max_depth = *v;
    } else if (key == "min_split_weight") {
      std::optional<double> v = ParseDouble(value);
      if (!v) return Status::InvalidArgument("bad min_split_weight");
      config->min_split_weight = *v;
    } else if (key == "min_gain") {
      std::optional<double> v = ParseDouble(value);
      if (!v) return Status::InvalidArgument("bad min_gain");
      config->min_gain = *v;
    } else if (key == "post_prune") {
      config->post_prune = value != "0";
    } else if (key == "pruning_confidence") {
      std::optional<double> v = ParseDouble(value);
      if (!v) return Status::InvalidArgument("bad pruning_confidence");
      config->pruning_confidence = *v;
    } else if (key == "es_endpoint_sample_rate") {
      std::optional<double> v = ParseDouble(value);
      if (!v) return Status::InvalidArgument("bad es_endpoint_sample_rate");
      config->split_options.es_endpoint_sample_rate = *v;
    } else if (key == "use_percentile_endpoints") {
      config->split_options.use_percentile_endpoints = value != "0";
    } else if (key == "percentiles_per_class") {
      std::optional<int> v = ParseInt(value);
      if (!v) return Status::InvalidArgument("bad percentiles_per_class");
      config->split_options.percentiles_per_class = *v;
    } else if (key == "min_side_mass") {
      std::optional<double> v = ParseDouble(value);
      if (!v) return Status::InvalidArgument("bad min_side_mass");
      config->split_options.min_side_mass = *v;
    } else if (key == "subspace_attributes") {
      std::optional<int> v = ParseInt(value);
      if (!v) return Status::InvalidArgument("bad subspace_attributes");
      config->subspace_attributes = *v;
    } else if (key == "subspace_seed") {
      std::optional<uint64_t> v = ParseUint64(value);
      if (!v) return Status::InvalidArgument("bad subspace_seed");
      config->subspace_seed = *v;
    }
    // Unknown keys: ignore (forward compatibility).
  }
  return Status::OK();
}

}  // namespace

const char* ModelKindToString(ModelKind kind) {
  return kind == ModelKind::kAveraging ? "averaging" : "distribution-based";
}

Status PredictOptions::Validate() const {
  if (top_k < 0) {
    return Status::InvalidArgument(
        StrFormat("PredictOptions::top_k must be >= 0, got %d", top_k));
  }
  if (!(abstain_threshold >= 0.0 && abstain_threshold <= 1.0)) {
    return Status::InvalidArgument(
        StrFormat("PredictOptions::abstain_threshold must be in [0, 1], "
                  "got %g",
                  abstain_threshold));
  }
  return Status::OK();
}

Model Model::FromTree(DecisionTree tree, ModelKind kind, TreeConfig config) {
  return Model(std::make_shared<const DecisionTree>(std::move(tree)), kind,
               std::move(config));
}

std::vector<double> Model::ClassifyDistribution(
    const UncertainTuple& tuple) const {
  if (kind_ == ModelKind::kAveraging) {
    return udt::ClassifyDistribution(*tree_, TupleToMeans(tuple));
  }
  return udt::ClassifyDistribution(*tree_, tuple);
}

int Model::Predict(const UncertainTuple& tuple) const {
  return ArgMax(ClassifyDistribution(tuple));
}

StatusOr<BatchResult> Model::PredictBatch(
    std::span<const UncertainTuple> tuples,
    const PredictOptions& options) const {
  // Thin shim over the compiled serving path: flatten once, run one
  // session. Callers with steady traffic should Compile() once and hold
  // their own PredictSession — that amortises both the flattening and the
  // session's persistent worker pool, which this one-shot session tears
  // down again on return.
  PredictSession session(Compile());
  return session.PredictBatch(tuples, options);
}

StatusOr<BatchResult> Model::PredictBatch(
    const Dataset& data, const PredictOptions& options) const {
  return PredictBatch(
      std::span<const UncertainTuple>(data.tuples().data(),
                                      data.tuples().size()),
      options);
}

std::string Model::Serialize() const {
  std::ostringstream out;
  out << kMagic << "\n";
  out << "kind " << wire::KindTag(kind_) << "\n";
  WriteSchemaBlock(schema(), out);
  out << ConfigLine(config_) << "\n";
  out << "tree\n";
  out << SerializeTree(*tree_) << "\n";
  return out.str();
}

StatusOr<Model> Model::Deserialize(const std::string& text) {
  std::istringstream in(text);
  LineReader reader(in, "udt-model");

  UDT_RETURN_NOT_OK(reader.Next("magic"));
  if (reader.line() != kMagic) {
    return reader.Error("bad magic line: " + reader.line());
  }

  UDT_RETURN_NOT_OK(reader.Next("kind"));
  if (reader.line().rfind("kind ", 0) != 0) {
    return reader.Error("expected kind line");
  }
  UDT_ASSIGN_OR_RETURN(ModelKind kind,
                       wire::ParseKindTag(reader.line().substr(5)));

  UDT_ASSIGN_OR_RETURN(Schema schema, ReadSchemaBlock(&reader));

  UDT_RETURN_NOT_OK(reader.Next("config"));
  TreeConfig config;
  if (reader.line().rfind("config", 0) != 0) {
    return reader.Error("expected config line");
  }
  UDT_RETURN_NOT_OK(ParseConfigLine(reader.line(), &config));

  UDT_RETURN_NOT_OK(reader.Next("tree"));
  if (reader.line() != "tree") {
    return reader.Error("expected tree marker");
  }
  std::string tree_text;
  std::string line;
  while (std::getline(in, line)) {
    tree_text += line;
    tree_text += "\n";
  }
  UDT_ASSIGN_OR_RETURN(DecisionTree tree, ParseTree(tree_text, schema));
  return FromTree(std::move(tree), kind, std::move(config));
}

Status Model::Save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out << Serialize();
  out.close();
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

StatusOr<Model> Model::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return Deserialize(text);
}

}  // namespace udt
