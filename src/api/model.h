// udt::Model — the immutable, shareable trained-model half of the public
// facade (the other half, udt::Trainer, produces it). A Model wraps a
// shared_ptr<const DecisionTree> plus the metadata a serving system needs
// (the config it was trained with, its kind, the schema / class labels),
// and is consumed batch-first: PredictBatch shards a span of uncertain
// tuples over a worker pool and returns distributions, argmax labels and
// per-tuple timings in one result. Copying a Model copies two pointers and
// a config — trees are never duplicated — so one trained Model can be
// shared freely across threads and request handlers.

#ifndef UDT_API_MODEL_H_
#define UDT_API_MODEL_H_

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "core/config.h"
#include "table/dataset.h"
#include "tree/tree.h"

namespace udt {

class CompiledModel;

// What the model does with a test tuple before traversal.
enum class ModelKind {
  kAveraging,          // AVG (Section 4.1): tuple reduced to its means
  kDistributionBased,  // UDT (Section 4.2): full fractional propagation
  // Alias kept for call sites written against the serving-era name.
  kUdt = kDistributionBased,
};

const char* ModelKindToString(ModelKind kind);

// Knobs for one prediction call — the single options struct every serving
// layer consumes: PredictSession / ForestPredictSession batches, the
// ServeSession wrapper, and the BatchingQueue's per-drain classification
// (BatchingConfig embeds one). Sharding knobs (num_threads, grain) never
// change results; the output-policy knobs (top_k, abstain_threshold) shape
// what a ServeResult reports on top of the distribution.
struct PredictOptions {
  // Worker threads the batch is sharded over: 1 runs inline on the calling
  // thread, 0 uses one thread per hardware thread, values above the batch
  // size are clamped. Negative values are rejected with an InvalidArgument
  // Status (they used to silently run inline). Sessions run multi-threaded
  // batches on a persistent session-owned worker pool, created lazily at
  // the first batch with num_threads > 1 and reused for every later call
  // — steady-state serving never spawns threads per batch.
  int num_threads = 1;

  // Minimum tuples per worker shard (micro-batch grain): a batch of n
  // tuples fans out over at most ceil(n / grain) workers, so tiny batches
  // stay on one or two threads instead of waking the whole pool. 0 picks
  // the session default (8 tuples for tree sessions; forest sessions
  // divide by the tree count, since each tuple there carries one
  // traversal per tree). The grain never changes results, only how the
  // work is spread.
  size_t grain = 0;

  // When true, BatchResult::tuple_seconds records per-tuple wall time
  // (costs two clock reads per tuple).
  bool collect_timings = false;

  // Serving output policy (leaves already store full class distributions,
  // so both are free at predict time — see Kent & Ménager's Indecision
  // Trees for the motivation). Consumed by the serving front end when it
  // builds ServeResults; batch entry points validate but ignore them.
  //
  // top_k > 0 asks for the k most probable classes (descending
  // probability, ties -> lowest class id) in ServeResult::top_classes;
  // 0 reports the argmax only.
  int top_k = 0;

  // A prediction whose winning probability falls below this threshold is
  // flagged abstained (ServeResult::abstained) — the label is still
  // reported, the caller decides whether to act on it or escalate.
  // 0 disables abstention; must be within [0, 1].
  double abstain_threshold = 0.0;

  // Rejects out-of-range policy fields (negative top_k, an abstain
  // threshold outside [0, 1]). num_threads is validated where it is
  // resolved against the batch size. Defined in api/model.cc.
  Status Validate() const;
};

// The result of classifying one batch. Element i of every per-tuple vector
// corresponds to input tuple i regardless of how the batch was sharded.
struct BatchResult {
  // P over class labels, one distribution per input tuple.
  std::vector<std::vector<double>> distributions;
  // Argmax of each distribution (ties -> lowest class id).
  std::vector<int> labels;
  // Per-tuple wall seconds; empty unless PredictOptions.collect_timings.
  std::vector<double> tuple_seconds;
  // Wall time of the whole call, including sharding overhead.
  double total_seconds = 0.0;
  // Threads the batch was scheduled across (caller included), after
  // clamping to the batch size and after grain clamping — small batches
  // report less than the requested num_threads. An upper bound: the
  // dynamic chunk schedule may engage fewer threads, never more.
  int num_threads_used = 1;

  // Reuse contract: resets every field — per-tuple vectors AND the
  // per-call scalars (total_seconds, num_threads_used) — so a serving
  // loop can recycle one BatchResult across batches without state from a
  // previous drain (e.g. a wider num_threads_used, stale vote rows)
  // leaking into the next. Capacity is retained; a warm buffer stays
  // allocation-free.
  void Clear() {
    distributions.clear();
    labels.clear();
    tuple_seconds.clear();
    total_seconds = 0.0;
    num_threads_used = 1;
  }
};

// An immutable trained model. Obtain one from Trainer::Train, Model::Load
// or Model::Deserialize; there is no way to mutate the tree afterwards.
class Model {
 public:
  // Wraps an already-built tree (the trusted path used by Trainer and by
  // callers that construct trees through tree_io directly).
  static Model FromTree(DecisionTree tree, ModelKind kind, TreeConfig config);

  // ----------------------------------------------------------- metadata

  ModelKind kind() const { return kind_; }
  // The config the model was trained with (algorithm, measure, pruning).
  const TreeConfig& config() const { return config_; }
  const DecisionTree& tree() const { return *tree_; }
  // The schema the tree was built on.
  const Schema& schema() const { return tree_->schema(); }
  // Class-label vocabulary, index-aligned with prediction labels.
  const std::vector<std::string>& class_names() const {
    return schema().class_names();
  }
  int num_classes() const { return schema().num_classes(); }

  // Shares ownership of the underlying tree (e.g. to hand a reference to
  // an async pipeline that may outlive this Model value).
  std::shared_ptr<const DecisionTree> shared_tree() const { return tree_; }

  // --------------------------------------------------------- inference

  // Probability distribution over class labels for one tuple. An
  // averaging-kind model reduces the tuple to its means first.
  std::vector<double> ClassifyDistribution(const UncertainTuple& tuple) const;

  // Argmax of ClassifyDistribution (ties -> lowest class id).
  int Predict(const UncertainTuple& tuple) const;

  // Flattens the tree into an immutable, shareable serving artifact
  // (api/compiled_model.h). The compiled model classifies
  // bitwise-identically to this one; serving code should compile once and
  // hold udt::PredictSession values over the result.
  [[nodiscard]] CompiledModel Compile() const;

  // Classifies a batch. A thin shim over the compiled path: compiles the
  // tree and runs one PredictSession over it (options.num_threads workers;
  // 0 = one per hardware thread, negative = InvalidArgument). Results are
  // written straight into their final slots, so the output is bitwise
  // identical to the single-threaded loop for any thread count — and to
  // the pointer-tree ClassifyDistribution above. Steady-traffic callers
  // should hold a PredictSession instead of paying the per-call compile.
  StatusOr<BatchResult> PredictBatch(std::span<const UncertainTuple> tuples,
                                     const PredictOptions& options = {}) const;

  // Convenience: classify every tuple of a data set.
  StatusOr<BatchResult> PredictBatch(const Dataset& data,
                                     const PredictOptions& options = {}) const;

  // -------------------------------------------------------- persistence

  // Self-contained text serialisation: kind + schema + config header plus
  // the tree_io tree body. Unlike SerializeTree, no external schema is
  // needed to load the result.
  std::string Serialize() const;
  [[nodiscard]] static StatusOr<Model> Deserialize(const std::string& text);

  // File round-trip of Serialize/Deserialize.
  Status Save(const std::string& path) const;
  [[nodiscard]] static StatusOr<Model> Load(const std::string& path);

 private:
  Model(std::shared_ptr<const DecisionTree> tree, ModelKind kind,
        TreeConfig config)
      : tree_(std::move(tree)), kind_(kind), config_(std::move(config)) {}

  std::shared_ptr<const DecisionTree> tree_;
  ModelKind kind_;
  TreeConfig config_;
};

}  // namespace udt

#endif  // UDT_API_MODEL_H_
