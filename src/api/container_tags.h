// Wire tags shared by the versioned persistence containers ("udt-model
// v1", "udt-compiled v1", "udt-forest-model v1", "udt-forest v1"): the
// ModelKind and ForestVote tag maps, plus the bitwise table comparison
// LayoutEquals implementations build on. One copy keeps a tag a container
// serialises parseable by every sibling container forever — adding an
// enum value means touching exactly this header.

#ifndef UDT_API_CONTAINER_TAGS_H_
#define UDT_API_CONTAINER_TAGS_H_

#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "api/forest.h"
#include "api/model.h"
#include "common/statusor.h"

namespace udt {
namespace wire {

inline const char* KindTag(ModelKind kind) {
  return kind == ModelKind::kAveraging ? "avg" : "udt";
}

inline StatusOr<ModelKind> ParseKindTag(std::string_view tag) {
  if (tag == "avg") return ModelKind::kAveraging;
  if (tag == "udt") return ModelKind::kUdt;
  return Status::InvalidArgument("unknown model kind: " + std::string(tag));
}

inline const char* VoteTag(ForestVote vote) {
  return vote == ForestVote::kAverage ? "avg" : "majority";
}

inline StatusOr<ForestVote> ParseVoteTag(std::string_view tag) {
  if (tag == "avg") return ForestVote::kAverage;
  if (tag == "majority") return ForestVote::kMajority;
  return Status::InvalidArgument("unknown forest vote: " + std::string(tag));
}

// Byte equality of two plain-data arrays — the primitive behind every
// LayoutEquals.
template <typename T>
bool BitwiseEquals(const std::vector<T>& a, const std::vector<T>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0);
}

}  // namespace wire
}  // namespace udt

#endif  // UDT_API_CONTAINER_TAGS_H_
