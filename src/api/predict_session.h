// udt::PredictSession — the per-worker serving handle of the prediction
// API. A session borrows an immutable CompiledModel (shared, never copied)
// and owns every piece of mutable state a prediction needs: per-thread
// traversal scratch (fractional-mass stacks, constraint arrays) and the
// streaming output buffers. All of it is reused call to call, so
// steady-state prediction performs zero heap allocations per tuple.
//
// The intended deployment shape:
//
//   Model model = *Model::Load(path);          // source of truth
//   CompiledModel compiled = model.Compile();  // immutable, share freely
//   // ... one PredictSession per worker thread:
//   PredictSession session(compiled);
//   auto result = session.PredictBatch(tuples);
//
// A session is cheap to construct and NOT thread-safe: give each request
// worker its own. (PredictBatch with num_threads > 1 shards over a
// session-owned persistent worker pool, each worker with its own scratch
// slot — that is safe; two concurrent calls into one session are not.)
//
// Execution model: the first batch with num_threads > 1 creates the
// session's TaskPool (num_threads - 1 workers; the calling thread is the
// remaining worker) and every later batch reuses it — steady-state
// serving spawns zero threads per call. A later batch asking for more
// threads than the pool seats replaces it with a larger one (join idle
// workers, spawn the new set), so traffic with a stable thread count
// builds the pool exactly once. Batches smaller than grain * num_threads
// occupy proportionally fewer workers (PredictOptions::grain).

#ifndef UDT_API_PREDICT_SESSION_H_
#define UDT_API_PREDICT_SESSION_H_

#include <memory>
#include <span>
#include <vector>

#include "api/compiled_model.h"
#include "api/model.h"
#include "api/session_shard.h"
#include "common/statusor.h"
#include "tree/flat_tree.h"

namespace udt {

// Flat batch output: one row-major buffer instead of one vector per tuple.
// Reused across PredictBatchInto calls, so a warm serving loop allocates
// nothing at all.
struct FlatBatchResult {
  // Tuple i's distribution occupies [i * num_classes, (i+1) * num_classes).
  std::vector<double> distributions;
  // Argmax labels, index-aligned with the input batch.
  std::vector<int> labels;
  int num_classes = 0;

  size_t size() const { return labels.size(); }
  std::span<const double> distribution(size_t i) const {
    return std::span<const double>(
        distributions.data() + i * static_cast<size_t>(num_classes),
        static_cast<size_t>(num_classes));
  }
  // Reuse contract: resets everything, including num_classes, so a
  // recycled buffer carries no trace of the previous batch (a serving
  // queue may drain models with different class counts through one
  // buffer). Capacity is retained; a warm buffer stays allocation-free.
  // PredictBatchInto overwrites all three fields anyway, so calling
  // Clear() between drains is belt-and-braces, not a requirement.
  void Clear() {
    distributions.clear();
    labels.clear();
    num_classes = 0;
  }
};

class PredictSession {
 public:
  // Ownership contract: a CompiledModel is a shared handle (one
  // shared_ptr wide), and the session stores its own copy — so the
  // session co-owns the compiled artifact for its whole lifetime. A
  // model registry may retire/drop its reference while this session is
  // mid-batch without dangling anything; the flat arrays are freed when
  // the last session (or registry entry) lets go.
  explicit PredictSession(CompiledModel model);

  // Same contract for callers that manage compiled artifacts behind
  // shared_ptr (e.g. a registry handing out snapshots): the pointee's
  // inner handle is copied, so the session stays valid even after
  // `model` itself is reset. `model` must be non-null.
  explicit PredictSession(std::shared_ptr<const CompiledModel> model);

  const CompiledModel& model() const { return model_; }
  int num_classes() const { return model_.num_classes(); }

  // ------------------------------------------------------- single tuple

  // Classifies one tuple into caller storage (num_classes doubles). The
  // zero-allocation primitive every other entry point builds on.
  void ClassifyInto(const UncertainTuple& tuple, double* out);

  // Convenience allocating forms, result-compatible with the Model ones.
  std::vector<double> ClassifyDistribution(const UncertainTuple& tuple);
  int Predict(const UncertainTuple& tuple);

  // -------------------------------------------------------------- batch

  // Classifies a batch, sharded over options.num_threads workers (0 = one
  // per hardware thread, 1 = inline; negative is an InvalidArgument
  // error). Shards write straight into their final slots, so the result is
  // bitwise-identical to the inline loop for every thread count — and to
  // the pointer-tree traversal of the model this session was compiled
  // from.
  StatusOr<BatchResult> PredictBatch(std::span<const UncertainTuple> tuples,
                                     const PredictOptions& options = {});
  StatusOr<BatchResult> PredictBatch(const Dataset& data,
                                     const PredictOptions& options = {});

  // Same computation, flat output, no per-tuple allocation: `out` buffers
  // are reused between calls once warm.
  Status PredictBatchInto(std::span<const UncertainTuple> tuples,
                          const PredictOptions& options,
                          FlatBatchResult* out);

  // Gather form for admission queues: the tuples of one micro-batch
  // arrive from different clients and are not contiguous, so the batch
  // is a span of pointers (each non-null, alive until the call returns).
  // Identical sharding, scratch and output contract to the contiguous
  // overload — results are byte-identical to classifying each tuple
  // alone.
  Status PredictBatchInto(std::span<const UncertainTuple* const> tuples,
                          const PredictOptions& options,
                          FlatBatchResult* out);

  // ---------------------------------------------------------- streaming

  // Classifies `tuple` immediately (inline, on the calling thread) and
  // appends the result to the session's streaming buffer. Amortised
  // allocation-free once the buffer is warm.
  void Push(const UncertainTuple& tuple);

  // Number of results accumulated since the last Drain.
  size_t pending() const { return stream_.labels.size(); }

  // Moves the accumulated results into `out` (its previous buffers are
  // recycled as the session's next streaming storage) and resets the
  // stream.
  void Drain(FlatBatchResult* out);

  // ------------------------------------------------------ introspection

  // Persistent executor workers this session has created: 0 until the
  // first batch with num_threads > 1, then stable across calls (it only
  // grows when a batch requests more threads than the pool seats). Tests
  // and ops dashboards use this to verify the zero-spawn steady state.
  int executor_workers() const { return executor_.num_workers(); }

 private:
  // Shared body of both PredictBatchInto overloads; `tuple_at(i)` yields
  // a const UncertainTuple& for batch position i. Defined in the .cc —
  // both instantiations live there.
  template <typename TupleAt>
  Status PredictBatchIntoImpl(size_t n, TupleAt tuple_at,
                              const PredictOptions& options,
                              FlatBatchResult* out);

  // Scratch slot for worker `index`, created on first use, reused after.
  FlatTraversalScratch* ScratchFor(size_t index);

  // Resolves PredictOptions::num_threads against the batch size.
  StatusOr<int> ResolveThreads(int num_threads, size_t batch_size) const;

  // The session pool sized for `num_threads` (nullptr for inline
  // execution), with every scratch slot the pool's workers could touch
  // pre-created.
  TaskPool* EnsureExecutor(int num_threads);

  void CheckTuple(const UncertainTuple& tuple) const;

  CompiledModel model_;
  std::vector<std::unique_ptr<FlatTraversalScratch>> scratch_;
  FlatBatchResult stream_;
  // Lazily created at the first multi-threaded batch, then reused for
  // every later call (see "Execution model" above).
  session_internal::SessionExecutor executor_;
};

}  // namespace udt

#endif  // UDT_API_PREDICT_SESSION_H_
