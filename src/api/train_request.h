// udt::TrainRequest — the one options struct behind every training entry
// point. Historically the trainers grew a signature per concern —
// Train(data, kind), TrainFromStorage(storage, kind, budget), per-tree
// weights hidden inside the forest trainer — and every new knob (seed
// override, warm start) would have multiplied them again. A TrainRequest
// names each knob once and both facades consume it:
//
//   TrainRequest request = TrainRequest::For(train, ModelKind::kUdt);
//   request.stats = &stats;
//   StatusOr<Model> model = trainer.Train(request);
//
//   TrainRequest from_disk = TrainRequest::ForStorage(&reader);
//   from_disk.budget = budget;
//   StatusOr<ForestModel> forest = forest_trainer.Train(from_disk);
//
// This struct is the only training entry point: the pre-request
// multi-signature wrappers served their one deprecation cycle (PR 9) and
// were removed. Every call site — including the streaming
// RetrainController, which trains exclusively through requests —
// constructs a TrainRequest.

#ifndef UDT_API_TRAIN_REQUEST_H_
#define UDT_API_TRAIN_REQUEST_H_

#include <cstdint>
#include <optional>
#include <span>

#include "api/model.h"
#include "common/status.h"
#include "core/builder.h"
#include "storage/pdf_storage.h"
#include "table/dataset.h"

namespace udt {

class ForestModel;   // api/forest.h
struct OobEstimate;  // api/forest.h

// One training run, fully described. Exactly one source (dataset or
// storage) must be set; everything else is optional and defaulted.
struct TrainRequest {
  // ------------------------------------------------------------- source
  // In-memory source: trains directly on `*dataset` (must outlive the
  // Train call). Mutually exclusive with `storage`.
  const Dataset* dataset = nullptr;

  // Out-of-core source: one pooled, budget-checked materialisation
  // (storage/pdf_storage.h) feeds the build — for forests, every tree of
  // the ensemble shares it. Mutually exclusive with `dataset`.
  PdfStorage* storage = nullptr;

  // Materialisation ceiling for the storage source; ignored for the
  // in-memory source (it is already materialised).
  StorageBudget budget;

  // Optional per-tuple root weights over a *dataset* source (one finite
  // non-negative weight per tuple, at least one positive; weight <= 0
  // excludes the tuple) — the bagged/boosted entry point, previously
  // reachable only through TreeBuilder::BuildWeighted. Single-tree only:
  // forests derive their own bootstrap bags from the seed, so a weighted
  // forest request is rejected. Empty means unweighted.
  std::span<const double> weights;

  // ------------------------------------------------------------- policy
  ModelKind kind = ModelKind::kUdt;

  // Training parallelism override: -1 keeps the trainer config's thread
  // count, 0 = one thread per hardware thread, N >= 1 = exactly N. The
  // result is bitwise-identical for every value.
  int num_threads = -1;

  // Seed override: replaces ForestConfig::seed (bags + subspaces) for
  // forest requests and TreeConfig::subspace_seed for single-tree
  // requests — the retrain loop varies this per generation without
  // mutating its trainer.
  std::optional<uint64_t> seed;

  // Forest warm start: carry the first `warm_trees` trees of `warm_start`
  // into the new ensemble unchanged and train only the remaining
  // num_trees - warm_trees fresh trees on the request's source. The
  // carried trees must match the fresh schema and kind. OOB is then
  // estimated over the fresh trees only (the carried trees never saw this
  // window, so counting them would overstate coverage). Single-tree
  // requests reject a warm start.
  const ForestModel* warm_start = nullptr;
  int warm_trees = 0;

  // --------------------------------------------------------- out-params
  BuildStats* stats = nullptr;  // may be null
  OobEstimate* oob = nullptr;   // forest requests only; may be null

  // ------------------------------------------------------- construction
  static TrainRequest For(const Dataset& data,
                          ModelKind kind = ModelKind::kUdt) {
    TrainRequest request;
    request.dataset = &data;
    request.kind = kind;
    return request;
  }

  static TrainRequest ForStorage(PdfStorage* storage,
                                 ModelKind kind = ModelKind::kUdt) {
    TrainRequest request;
    request.storage = storage;
    request.kind = kind;
    return request;
  }

  // Source/knob consistency shared by both trainers (each adds its own
  // facade-specific checks on top). Defined in api/trainer.cc.
  Status Validate() const;
};

}  // namespace udt

#endif  // UDT_API_TRAIN_REQUEST_H_
