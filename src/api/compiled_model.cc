#include "api/compiled_model.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/string_util.h"

namespace udt {
namespace {

// Serialisation keywords of the v1 compiled container. Like the model v1
// format the header is line-oriented; the array section counts every table
// up front so a truncated file fails cleanly.
constexpr char kMagic[] = "udt-compiled v1";

const char* KindTag(ModelKind kind) {
  return kind == ModelKind::kAveraging ? "avg" : "udt";
}

StatusOr<ModelKind> ParseKindTag(std::string_view tag) {
  if (tag == "avg") return ModelKind::kAveraging;
  if (tag == "udt") return ModelKind::kUdt;
  return Status::InvalidArgument("unknown model kind: " + std::string(tag));
}

bool SchemaEquals(const Schema& a, const Schema& b) {
  if (a.num_attributes() != b.num_attributes() ||
      a.class_names() != b.class_names()) {
    return false;
  }
  for (int j = 0; j < a.num_attributes(); ++j) {
    const AttributeInfo& x = a.attribute(j);
    const AttributeInfo& y = b.attribute(j);
    if (x.name != y.name || x.kind != y.kind ||
        x.num_categories != y.num_categories) {
      return false;
    }
  }
  return true;
}

template <typename T>
bool BitwiseEquals(const std::vector<T>& a, const std::vector<T>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0);
}

// Structural validation of an untrusted flat layout: every index a
// traversal will follow must land in range, child ids must point strictly
// forward (breadth-first order implies it, and it rules out cycles), and
// tested attributes must exist in the schema with the matching kind.
Status ValidateFlatTree(const FlatTree& flat, const Schema& schema) {
  const int n = flat.num_nodes();
  if (n < 1) return Status::InvalidArgument("udt-compiled: empty tree");
  if (flat.num_classes != schema.num_classes()) {
    return Status::InvalidArgument("udt-compiled: class count mismatch");
  }
  const size_t un = static_cast<size_t>(n);
  if (flat.attribute.size() != un || flat.split_point.size() != un ||
      flat.first.size() != un || flat.num_children.size() != un) {
    return Status::InvalidArgument("udt-compiled: ragged node arrays");
  }
  if (flat.leaf_values.size() % static_cast<size_t>(flat.num_classes) != 0) {
    return Status::InvalidArgument("udt-compiled: ragged leaf table");
  }
  for (int i = 0; i < n; ++i) {
    const size_t ui = static_cast<size_t>(i);
    const int32_t first = flat.first[ui];
    switch (static_cast<FlatNodeKind>(flat.kind[ui])) {
      case FlatNodeKind::kLeaf:
        if (flat.attribute[ui] != -1) {
          return Status::InvalidArgument("udt-compiled: leaf with attribute");
        }
        if (first < 0 ||
            static_cast<size_t>(first) + static_cast<size_t>(flat.num_classes) >
                flat.leaf_values.size()) {
          return Status::InvalidArgument(
              "udt-compiled: leaf offset out of range");
        }
        break;
      case FlatNodeKind::kNumerical: {
        const int32_t attr = flat.attribute[ui];
        if (attr < 0 || attr >= schema.num_attributes() ||
            schema.attribute(attr).kind != AttributeKind::kNumerical) {
          return Status::InvalidArgument(
              "udt-compiled: bad numerical attribute id");
        }
        // 64-bit compare: first can be INT32_MAX in a hostile file, and
        // first + 1 must not wrap past the check.
        if (first <= i || static_cast<int64_t>(first) + 1 >= n) {
          return Status::InvalidArgument(
              "udt-compiled: numerical child out of range");
        }
        break;
      }
      case FlatNodeKind::kCategorical: {
        const int32_t attr = flat.attribute[ui];
        if (attr < 0 || attr >= schema.num_attributes() ||
            schema.attribute(attr).kind != AttributeKind::kCategorical) {
          return Status::InvalidArgument(
              "udt-compiled: bad categorical attribute id");
        }
        const int32_t arity = flat.num_children[ui];
        if (arity < 1 || arity != schema.attribute(attr).num_categories) {
          return Status::InvalidArgument("udt-compiled: bad arity");
        }
        if (first < 0 || static_cast<size_t>(first) +
                             static_cast<size_t>(arity) >
                             flat.child_table.size()) {
          return Status::InvalidArgument(
              "udt-compiled: child-table offset out of range");
        }
        for (int32_t v = 0; v < arity; ++v) {
          const int32_t child =
              flat.child_table[static_cast<size_t>(first + v)];
          if (child != -1 && (child <= i || child >= n)) {
            return Status::InvalidArgument(
                "udt-compiled: categorical child out of range");
          }
        }
        break;
      }
      default:
        return Status::InvalidArgument("udt-compiled: unknown node kind");
    }
  }
  return Status::OK();
}

// Reads `count` whitespace-separated tokens parsed by `parse_one`.
template <typename T, typename Parser>
Status ReadTokens(std::istream& in, size_t count, const char* what,
                  Parser parse_one, std::vector<T>* out) {
  out->clear();
  out->reserve(count);
  std::string token;
  for (size_t i = 0; i < count; ++i) {
    if (!(in >> token)) {
      return Status::InvalidArgument(
          StrFormat("udt-compiled: truncated %s table", what));
    }
    std::optional<T> value = parse_one(token);
    if (!value) {
      return Status::InvalidArgument(
          StrFormat("udt-compiled: bad %s entry: %s", what, token.c_str()));
    }
    out->push_back(*value);
  }
  return Status::OK();
}

std::optional<int32_t> ParseInt32(const std::string& token) {
  // ParseInt rejects negatives; the tables use -1 as the null marker.
  if (!token.empty() && token[0] == '-') {
    std::optional<int> v = ParseInt(std::string_view(token).substr(1));
    if (!v) return std::nullopt;
    return static_cast<int32_t>(-*v);
  }
  std::optional<int> v = ParseInt(token);
  if (!v) return std::nullopt;
  return static_cast<int32_t>(*v);
}

}  // namespace

CompiledModel CompiledModel::Compile(const Model& model) {
  auto rep = std::make_shared<Rep>(
      Rep{model.schema(), model.kind(), FlattenTree(model.tree())});
  return CompiledModel(std::move(rep));
}

CompiledModel Model::Compile() const { return CompiledModel::Compile(*this); }

bool CompiledModel::LayoutEquals(const CompiledModel& other) const {
  const FlatTree& a = rep_->tree;
  const FlatTree& b = other.rep_->tree;
  return rep_->kind == other.rep_->kind &&
         SchemaEquals(rep_->schema, other.rep_->schema) &&
         a.num_classes == b.num_classes && BitwiseEquals(a.kind, b.kind) &&
         BitwiseEquals(a.attribute, b.attribute) &&
         BitwiseEquals(a.split_point, b.split_point) &&
         BitwiseEquals(a.first, b.first) &&
         BitwiseEquals(a.num_children, b.num_children) &&
         BitwiseEquals(a.child_table, b.child_table) &&
         BitwiseEquals(a.leaf_values, b.leaf_values);
}

std::string CompiledModel::Serialize() const {
  const Schema& s = rep_->schema;
  const FlatTree& flat = rep_->tree;
  std::ostringstream out;
  out << kMagic << "\n";
  out << "kind " << KindTag(rep_->kind) << "\n";
  out << "classes " << s.num_classes() << "\n";
  for (const std::string& name : s.class_names()) out << name << "\n";
  out << "attributes " << s.num_attributes() << "\n";
  for (const AttributeInfo& attr : s.attributes()) {
    if (attr.kind == AttributeKind::kCategorical) {
      out << "attr cat " << attr.num_categories << " " << attr.name << "\n";
    } else {
      out << "attr num 0 " << attr.name << "\n";
    }
  }
  out << StrFormat("tables nodes=%d children=%zu leaves=%zu\n",
                   flat.num_nodes(), flat.child_table.size(),
                   flat.leaf_values.size());
  // One record per line: kind attribute split first num_children. The
  // split point is a hexfloat so the load-side layout is bit-identical.
  for (int i = 0; i < flat.num_nodes(); ++i) {
    const size_t ui = static_cast<size_t>(i);
    out << StrFormat("n %d %d %a %d %d\n", static_cast<int>(flat.kind[ui]),
                     flat.attribute[ui], flat.split_point[ui], flat.first[ui],
                     flat.num_children[ui]);
  }
  for (size_t i = 0; i < flat.child_table.size(); ++i) {
    out << flat.child_table[i]
        << (i + 1 == flat.child_table.size() ? "\n" : " ");
  }
  for (size_t i = 0; i < flat.leaf_values.size(); ++i) {
    out << StrFormat("%a", flat.leaf_values[i])
        << (i + 1 == flat.leaf_values.size() ? "\n" : " ");
  }
  return out.str();
}

StatusOr<CompiledModel> CompiledModel::Deserialize(const std::string& text) {
  std::istringstream in(text);
  std::string line;

  auto next_line = [&](std::string_view what) -> Status {
    if (!std::getline(in, line)) {
      return Status::InvalidArgument("udt-compiled: truncated before " +
                                     std::string(what));
    }
    if (!line.empty() && line.back() == '\r') line.pop_back();
    return Status::OK();
  };

  UDT_RETURN_NOT_OK(next_line("magic"));
  if (line != kMagic) {
    return Status::InvalidArgument("udt-compiled: bad magic line: " + line);
  }

  UDT_RETURN_NOT_OK(next_line("kind"));
  if (line.rfind("kind ", 0) != 0) {
    return Status::InvalidArgument("udt-compiled: expected kind line");
  }
  UDT_ASSIGN_OR_RETURN(ModelKind kind, ParseKindTag(line.substr(5)));

  // Schema section, same shape as the udt-model v1 container.
  constexpr int kMaxDeclaredCount = 1 << 20;
  UDT_RETURN_NOT_OK(next_line("classes"));
  if (line.rfind("classes ", 0) != 0) {
    return Status::InvalidArgument("udt-compiled: expected classes line");
  }
  std::optional<int> num_classes = ParseInt(line.substr(8));
  if (!num_classes || *num_classes < 1 || *num_classes > kMaxDeclaredCount) {
    return Status::InvalidArgument("udt-compiled: bad class count");
  }
  std::vector<std::string> class_names;
  class_names.reserve(static_cast<size_t>(*num_classes));
  for (int c = 0; c < *num_classes; ++c) {
    UDT_RETURN_NOT_OK(next_line("class name"));
    class_names.push_back(line);
  }

  UDT_RETURN_NOT_OK(next_line("attributes"));
  if (line.rfind("attributes ", 0) != 0) {
    return Status::InvalidArgument("udt-compiled: expected attributes line");
  }
  std::optional<int> num_attributes = ParseInt(line.substr(11));
  if (!num_attributes || *num_attributes < 1 ||
      *num_attributes > kMaxDeclaredCount) {
    return Status::InvalidArgument("udt-compiled: bad attribute count");
  }
  std::vector<AttributeInfo> attributes;
  attributes.reserve(static_cast<size_t>(*num_attributes));
  for (int j = 0; j < *num_attributes; ++j) {
    UDT_RETURN_NOT_OK(next_line("attr"));
    std::vector<std::string> head = SplitString(line, ' ');
    if (head.size() < 4 || head[0] != "attr") {
      return Status::InvalidArgument("udt-compiled: bad attr line: " + line);
    }
    AttributeInfo info;
    std::optional<int> categories = ParseInt(head[2]);
    if (!categories) {
      return Status::InvalidArgument("udt-compiled: bad attr arity: " + line);
    }
    if (head[1] == "cat") {
      info.kind = AttributeKind::kCategorical;
      info.num_categories = *categories;
    } else if (head[1] == "num") {
      info.kind = AttributeKind::kNumerical;
    } else {
      return Status::InvalidArgument("udt-compiled: bad attr kind: " + line);
    }
    info.name = line.substr(head[0].size() + head[1].size() +
                            head[2].size() + 3);
    attributes.push_back(std::move(info));
  }
  UDT_ASSIGN_OR_RETURN(
      Schema schema,
      Schema::Create(std::move(attributes), std::move(class_names)));

  UDT_RETURN_NOT_OK(next_line("tables"));
  // Table entries get a higher cap than declared header counts: Serialize
  // writes them unbounded (child slots scale with nodes x arity, leaf
  // doubles with leaves x classes), so Load must accept any artifact Save
  // can produce while still refusing allocations a hostile header could
  // demand (the cap bounds each table at half a gigabyte).
  constexpr long long kMaxTableCount = 1ll << 26;
  int num_nodes = -1;
  long long num_child_entries = -1;
  long long num_leaf_values = -1;
  if (std::sscanf(line.c_str(), "tables nodes=%d children=%lld leaves=%lld",
                  &num_nodes, &num_child_entries, &num_leaf_values) != 3 ||
      num_nodes < 1 || num_nodes > kMaxDeclaredCount ||
      num_child_entries < 0 || num_child_entries > kMaxTableCount ||
      num_leaf_values < 0 || num_leaf_values > kMaxTableCount) {
    return Status::InvalidArgument("udt-compiled: bad tables line: " + line);
  }

  FlatTree flat;
  flat.num_classes = schema.num_classes();
  flat.kind.reserve(static_cast<size_t>(num_nodes));
  flat.attribute.reserve(static_cast<size_t>(num_nodes));
  flat.split_point.reserve(static_cast<size_t>(num_nodes));
  flat.first.reserve(static_cast<size_t>(num_nodes));
  flat.num_children.reserve(static_cast<size_t>(num_nodes));
  for (int i = 0; i < num_nodes; ++i) {
    UDT_RETURN_NOT_OK(next_line("node record"));
    std::vector<std::string> fields = SplitString(line, ' ');
    if (fields.size() != 6 || fields[0] != "n") {
      return Status::InvalidArgument("udt-compiled: bad node record: " + line);
    }
    std::optional<int> node_kind = ParseInt(fields[1]);
    std::optional<int32_t> attribute = ParseInt32(fields[2]);
    std::optional<double> split = ParseDouble(fields[3]);
    std::optional<int32_t> first = ParseInt32(fields[4]);
    std::optional<int32_t> children = ParseInt32(fields[5]);
    if (!node_kind || *node_kind < 0 || *node_kind > 2 || !attribute ||
        !split || !first || !children) {
      return Status::InvalidArgument("udt-compiled: bad node record: " + line);
    }
    flat.kind.push_back(static_cast<uint8_t>(*node_kind));
    flat.attribute.push_back(*attribute);
    flat.split_point.push_back(*split);
    flat.first.push_back(*first);
    flat.num_children.push_back(*children);
  }

  UDT_RETURN_NOT_OK(ReadTokens(
      in, static_cast<size_t>(num_child_entries), "child",
      [](const std::string& t) { return ParseInt32(t); }, &flat.child_table));
  UDT_RETURN_NOT_OK(ReadTokens(
      in, static_cast<size_t>(num_leaf_values), "leaf",
      [](const std::string& t) { return ParseDouble(t); }, &flat.leaf_values));

  UDT_RETURN_NOT_OK(ValidateFlatTree(flat, schema));
  auto rep =
      std::make_shared<Rep>(Rep{std::move(schema), kind, std::move(flat)});
  return CompiledModel(std::move(rep));
}

Status CompiledModel::Save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out << Serialize();
  out.close();
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

StatusOr<CompiledModel> CompiledModel::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return Deserialize(text);
}

}  // namespace udt
