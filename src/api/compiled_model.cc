#include "api/compiled_model.h"

#include "api/container_tags.h"

#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/string_util.h"
#include "table/schema_io.h"
#include "tree/flat_tree_io.h"

namespace udt {
namespace {

// Serialisation keywords of the v1 compiled container. Like the model v1
// format the header is line-oriented; the flat-tree body counts every
// table up front so a truncated file fails cleanly. The schema block and
// the body live in table/schema_io and tree/flat_tree_io, shared with the
// forest container.
constexpr char kMagic[] = "udt-compiled v1";
constexpr char kContext[] = "udt-compiled";

}  // namespace

CompiledModel CompiledModel::Compile(const Model& model) {
  auto rep = std::make_shared<Rep>(
      Rep{model.schema(), model.kind(), FlattenTree(model.tree())});
  return CompiledModel(std::move(rep));
}

CompiledModel Model::Compile() const { return CompiledModel::Compile(*this); }

bool CompiledModel::LayoutEquals(const CompiledModel& other) const {
  const FlatTree& a = rep_->tree;
  const FlatTree& b = other.rep_->tree;
  return rep_->kind == other.rep_->kind &&
         SchemaEquals(rep_->schema, other.rep_->schema) &&
         a.num_classes == b.num_classes &&
         wire::BitwiseEquals(a.kind, b.kind) &&
         wire::BitwiseEquals(a.attribute, b.attribute) &&
         wire::BitwiseEquals(a.split_point, b.split_point) &&
         wire::BitwiseEquals(a.first, b.first) &&
         wire::BitwiseEquals(a.num_children, b.num_children) &&
         wire::BitwiseEquals(a.child_table, b.child_table) &&
         wire::BitwiseEquals(a.leaf_values, b.leaf_values);
}

std::string CompiledModel::Serialize() const {
  std::ostringstream out;
  out << kMagic << "\n";
  out << "kind " << wire::KindTag(rep_->kind) << "\n";
  WriteSchemaBlock(rep_->schema, out);
  WriteFlatTreeBody(rep_->tree, out);
  return out.str();
}

StatusOr<CompiledModel> CompiledModel::Deserialize(const std::string& text) {
  std::istringstream in(text);
  LineReader reader(in, kContext);

  UDT_RETURN_NOT_OK(reader.Next("magic"));
  if (reader.line() != kMagic) {
    return reader.Error("bad magic line: " + reader.line());
  }

  UDT_RETURN_NOT_OK(reader.Next("kind"));
  if (reader.line().rfind("kind ", 0) != 0) {
    return reader.Error("expected kind line");
  }
  UDT_ASSIGN_OR_RETURN(ModelKind kind,
                       wire::ParseKindTag(reader.line().substr(5)));

  UDT_ASSIGN_OR_RETURN(Schema schema, ReadSchemaBlock(&reader));
  UDT_ASSIGN_OR_RETURN(FlatTree flat,
                       ReadFlatTreeBody(&reader, schema.num_classes()));
  UDT_RETURN_NOT_OK(ValidateFlatTree(flat, schema, kContext));
  auto rep =
      std::make_shared<Rep>(Rep{std::move(schema), kind, std::move(flat)});
  return CompiledModel(std::move(rep));
}

Status CompiledModel::Save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out << Serialize();
  out.close();
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

StatusOr<CompiledModel> CompiledModel::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return Deserialize(text);
}

}  // namespace udt
