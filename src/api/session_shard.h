// Sharding arithmetic shared by the serving sessions (PredictSession and
// ForestPredictSession). Both promise the same contract — contiguous
// shards, workers writing only their own slice, output independent of the
// shard layout, and the same num_threads resolution rules — so the
// arithmetic lives once, here, and the sessions cannot drift apart.
//
// Since serving executor v3 the shards run on a session-owned persistent
// TaskPool (workers created once, reused batch after batch) instead of
// per-batch std::thread spawn/join; ForEachShard is a thin adapter over
// TaskPool::ParallelFor that keeps the single-threaded fast path inline.

#ifndef UDT_API_SESSION_SHARD_H_
#define UDT_API_SESSION_SHARD_H_

#include <algorithm>
#include <cstddef>
#include <memory>

#include "common/statusor.h"
#include "common/string_util.h"
#include "common/task_pool.h"

namespace udt {
namespace session_internal {

// Default micro-batch grain: the minimum tuples one worker shard is worth
// when PredictOptions::grain is 0. Small batches then occupy
// ceil(n / grain) workers instead of fanning single tuples across the
// whole pool; sessions serving ensembles scale it down by tree count
// (each tuple there carries num_trees traversals of work).
constexpr size_t kDefaultShardGrain = 8;

// Resolves PredictOptions::grain: an explicit request wins, otherwise the
// default grain divided by the per-tuple work multiplier (1 for a single
// tree, num_trees for a forest), never below one tuple.
inline size_t EffectiveShardGrain(size_t requested, size_t work_per_tuple) {
  if (requested > 0) return requested;
  return std::max<size_t>(
      1, kDefaultShardGrain / std::max<size_t>(1, work_per_tuple));
}

// The persistent executor both serving sessions hold: a lazily-created
// TaskPool, built at the first batch with num_threads > 1 and reused by
// every later call, grown (replaced — idle workers joined first) at most
// once per wider width. Lives here so the two sessions share one
// creation/growth/scratch-preparation policy and cannot drift apart.
class SessionExecutor {
 public:
  // Returns the pool sized for `num_threads` (nullptr for inline
  // execution). Before returning a pool, calls ensure_slot(s) for every
  // slot s the pool can name: scratch must exist before workers can touch
  // it, since slot creation mutates session state that is not safe to
  // grow concurrently.
  template <typename EnsureSlot>
  TaskPool* Ensure(int num_threads, EnsureSlot ensure_slot) {
    if (num_threads <= 1) return nullptr;
    const int needed_workers = num_threads - 1;
    if (pool_ == nullptr || pool_->num_workers() < needed_workers) {
      pool_.reset();  // join the smaller pool before spawning the new one
      pool_ = std::make_unique<TaskPool>(needed_workers);
    }
    for (int s = 0; s < pool_->num_slots(); ++s) {
      ensure_slot(static_cast<size_t>(s));
    }
    return pool_.get();
  }

  // Workers created so far (0 until the first multi-threaded batch).
  int num_workers() const { return pool_ ? pool_->num_workers() : 0; }

 private:
  std::unique_ptr<TaskPool> pool_;
};

// Runs fn(slot, begin, end) over contiguous shards of [0, n), using the
// calling thread plus at most num_threads - 1 workers of `pool`. Shards
// write only into their own index-addressed slices, so the output is
// byte-identical for every thread count, pool size and grain. With
// num_threads == 1 (or no pool) the whole range runs inline under slot 0
// — no locks, no wakeups. Returns the scheduled width (see
// TaskPool::ParallelFor): the thread count the batch actually fanned out
// to after grain clamping, which can be less than num_threads for small
// batches.
template <typename Fn>
int ForEachShard(TaskPool* pool, size_t n, int num_threads, size_t grain,
                 Fn fn) {
  if (pool == nullptr || num_threads <= 1) {
    fn(0, size_t{0}, n);
    return 1;
  }
  return pool->ParallelFor(n, grain, num_threads, fn);
}

// Resolves a PredictOptions::num_threads request against a batch size:
// negative is an InvalidArgument error, 0 means one per hardware thread
// (TaskPool::EffectiveConcurrency owns that resolution rule, including
// the hardware_concurrency() == 0 fallback, so the training and serving
// paths cannot drift), and the result is clamped to [1, batch_size]. The
// clamp compares in size_t space: narrowing batch_size to int first would
// overflow for batches beyond INT_MAX tuples.
inline StatusOr<int> ResolveSessionThreads(int num_threads,
                                           size_t batch_size) {
  if (num_threads < 0) {
    return Status::InvalidArgument(
        StrFormat("PredictOptions::num_threads must be >= 0, got %d "
                  "(0 = one per hardware thread)",
                  num_threads));
  }
  if (num_threads == 0) {
    num_threads = TaskPool::EffectiveConcurrency(0);
  }
  if (batch_size < static_cast<size_t>(num_threads)) {
    num_threads = static_cast<int>(batch_size);
  }
  return std::max(num_threads, 1);
}

}  // namespace session_internal
}  // namespace udt

#endif  // UDT_API_SESSION_SHARD_H_
