// Sharding arithmetic shared by the serving sessions (PredictSession and
// ForestPredictSession). Both promise the same contract — contiguous
// shards, workers writing only their own slice, output independent of the
// shard layout, and the same num_threads resolution rules — so the
// arithmetic lives once, here, and the sessions cannot drift apart.

#ifndef UDT_API_SESSION_SHARD_H_
#define UDT_API_SESSION_SHARD_H_

#include <algorithm>
#include <cstddef>
#include <thread>
#include <vector>

#include "common/statusor.h"
#include "common/string_util.h"

namespace udt {
namespace session_internal {

// Runs fn(worker, begin, end) over `num_threads` contiguous shards of
// [0, n). Workers write only into their own slice, so the output is
// independent of the shard layout.
template <typename Fn>
void ForEachShard(size_t n, int num_threads, Fn fn) {
  if (num_threads == 1) {
    fn(0, size_t{0}, n);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(num_threads));
  const size_t per_shard = n / static_cast<size_t>(num_threads);
  const size_t remainder = n % static_cast<size_t>(num_threads);
  size_t begin = 0;
  for (int t = 0; t < num_threads; ++t) {
    const size_t len =
        per_shard + (static_cast<size_t>(t) < remainder ? 1 : 0);
    workers.emplace_back(fn, t, begin, begin + len);
    begin += len;
  }
  for (std::thread& worker : workers) worker.join();
}

// Resolves a PredictOptions::num_threads request against a batch size:
// negative is an InvalidArgument error, 0 means one per hardware thread,
// and the result is clamped to [1, batch_size].
inline StatusOr<int> ResolveSessionThreads(int num_threads,
                                           size_t batch_size) {
  if (num_threads < 0) {
    return Status::InvalidArgument(
        StrFormat("PredictOptions::num_threads must be >= 0, got %d "
                  "(0 = one per hardware thread)",
                  num_threads));
  }
  if (num_threads == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    num_threads = hw == 0 ? 1 : static_cast<int>(hw);
  }
  if (num_threads > static_cast<int>(batch_size)) {
    num_threads = static_cast<int>(batch_size);
  }
  return std::max(num_threads, 1);
}

}  // namespace session_internal
}  // namespace udt

#endif  // UDT_API_SESSION_SHARD_H_
