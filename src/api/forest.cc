#include "api/forest.h"

#include "api/container_tags.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <optional>
#include <sstream>
#include <utility>

#include "common/logging.h"
#include "common/math.h"
#include "common/random.h"
#include "common/string_util.h"
#include "common/task_pool.h"
#include "table/schema_io.h"
#include "tree/classify.h"
#include "tree/flat_tree.h"

namespace udt {
namespace {

constexpr char kMagic[] = "udt-forest-model v1";

// Salts separating the forest's independent random streams: a tree's bag
// and its subspace stream must not correlate just because they share the
// run seed and tree index.
constexpr uint64_t kBagSalt = 0x8FB3'79A1'C2D4'5E67ULL;
constexpr uint64_t kSubspaceSalt = 0x243F'6A88'85A3'08D3ULL;

uint64_t DeriveStreamSeed(uint64_t run_seed, uint64_t salt, int tree_index) {
  return SplitMix64(run_seed ^ SplitMix64(salt + static_cast<uint64_t>(
                                                     tree_index)));
}

// The per-tree TreeConfig of tree `t`: forest-level subspace knobs
// resolved and seeded, inner threading disabled (the forest owns the
// pool), and the averaging algorithm override applied — mirroring what
// Trainer::Train does for a single tree.
TreeConfig DeriveTreeConfig(const ForestConfig& config, int num_attributes,
                            int tree_index, ModelKind kind) {
  TreeConfig tree = config.tree;
  tree.num_threads = 1;
  if (kind == ModelKind::kAveraging) tree.algorithm = SplitAlgorithm::kAvg;
  int k = config.subspace_attributes;
  if (k == ForestConfig::kSubspaceSqrt) {
    k = static_cast<int>(
        std::floor(std::sqrt(static_cast<double>(num_attributes))));
    if (k < 1) k = 1;
  }
  tree.subspace_attributes = k;
  tree.subspace_seed = DeriveStreamSeed(config.seed, kSubspaceSalt,
                                        tree_index);
  return tree;
}

}  // namespace

const char* ForestVoteToString(ForestVote vote) {
  return vote == ForestVote::kAverage ? "probability-average"
                                      : "majority";
}

Status ForestConfig::Validate() const {
  if (num_trees < 1) {
    return Status::InvalidArgument("num_trees must be >= 1");
  }
  if (subspace_attributes < kSubspaceSqrt) {
    return Status::InvalidArgument(
        "subspace_attributes must be >= 0, or -1 for floor(sqrt(k))");
  }
  if (num_threads < 0) {
    return Status::InvalidArgument(
        "num_threads must be >= 0 (0 = one per hardware thread)");
  }
  return tree.Validate();
}

std::string ForestConfig::ToString() const {
  return StrFormat(
      "trees=%d seed=%llu bootstrap=%s subspace=%d vote=%s threads=%d [%s]",
      num_trees, static_cast<unsigned long long>(seed),
      bootstrap ? "yes" : "no", subspace_attributes, wire::VoteTag(vote),
      num_threads, tree.ToString().c_str());
}

std::vector<double> ForestBootstrapBag(uint64_t seed, int tree_index,
                                       int num_tuples) {
  UDT_CHECK(num_tuples > 0);
  Rng rng(DeriveStreamSeed(seed, kBagSalt, tree_index));
  std::vector<double> bag(static_cast<size_t>(num_tuples), 0.0);
  for (int draw = 0; draw < num_tuples; ++draw) {
    bag[static_cast<size_t>(rng.UniformInt(num_tuples))] += 1.0;
  }
  return bag;
}

void AccumulateForestVote(ForestVote vote, const double* tree_distribution,
                          int num_classes, double* accumulator) {
  if (vote == ForestVote::kAverage) {
    for (int c = 0; c < num_classes; ++c) {
      accumulator[c] += tree_distribution[c];
    }
    return;
  }
  int best = 0;
  for (int c = 1; c < num_classes; ++c) {
    if (tree_distribution[c] > tree_distribution[best]) best = c;
  }
  accumulator[best] += 1.0;
}

ForestModel ForestModel::FromTrees(std::vector<Model> trees,
                                   ForestVote vote) {
  UDT_CHECK(!trees.empty());
  const ModelKind kind = trees[0].kind();
  for (const Model& tree : trees) {
    UDT_CHECK(tree.kind() == kind);
    UDT_CHECK(SchemaEquals(tree.schema(), trees[0].schema()));
  }
  return ForestModel(
      std::make_shared<const std::vector<Model>>(std::move(trees)), vote,
      kind);
}

std::vector<double> ForestModel::ClassifyDistribution(
    const UncertainTuple& tuple) const {
  const int k = num_classes();
  std::vector<double> out(static_cast<size_t>(k), 0.0);
  for (const Model& tree : *trees_) {
    std::vector<double> dist = tree.ClassifyDistribution(tuple);
    AccumulateForestVote(vote_, dist.data(), k, out.data());
  }
  const double trees = static_cast<double>(num_trees());
  for (double& value : out) value /= trees;
  return out;
}

int ForestModel::Predict(const UncertainTuple& tuple) const {
  return ArgMax(ClassifyDistribution(tuple));
}

std::string ForestModel::Serialize() const {
  std::ostringstream out;
  out << kMagic << "\n";
  out << "vote " << wire::VoteTag(vote_) << "\n";
  out << "trees " << num_trees() << "\n";
  // Each tree rides as its own byte-framed udt-model container: the frame
  // length makes the outer format oblivious to the inner one's shape.
  for (int t = 0; t < num_trees(); ++t) {
    std::string body = tree(t).Serialize();
    out << "tree " << t << " " << body.size() << "\n";
    out << body;
  }
  return out.str();
}

StatusOr<ForestModel> ForestModel::Deserialize(const std::string& text) {
  std::istringstream in(text);
  LineReader reader(in, "udt-forest-model");

  UDT_RETURN_NOT_OK(reader.Next("magic"));
  if (reader.line() != kMagic) {
    return reader.Error("bad magic line: " + reader.line());
  }

  UDT_RETURN_NOT_OK(reader.Next("vote"));
  if (reader.line().rfind("vote ", 0) != 0) {
    return reader.Error("expected vote line");
  }
  UDT_ASSIGN_OR_RETURN(ForestVote vote,
                       wire::ParseVoteTag(reader.line().substr(5)));

  UDT_RETURN_NOT_OK(reader.Next("trees"));
  constexpr int kMaxTrees = 1 << 16;
  if (reader.line().rfind("trees ", 0) != 0) {
    return reader.Error("expected trees line");
  }
  std::optional<int> num_trees = ParseInt(reader.line().substr(6));
  if (!num_trees || *num_trees < 1 || *num_trees > kMaxTrees) {
    return reader.Error("bad tree count");
  }

  std::vector<Model> trees;
  trees.reserve(static_cast<size_t>(*num_trees));
  for (int t = 0; t < *num_trees; ++t) {
    UDT_RETURN_NOT_OK(reader.Next("tree frame"));
    int index = -1;
    long long bytes = -1;
    if (std::sscanf(reader.line().c_str(), "tree %d %lld", &index, &bytes) !=
            2 ||
        index != t || bytes < 1 ||
        bytes > static_cast<long long>(text.size())) {
      return reader.Error("bad tree frame: " + reader.line());
    }
    std::string body(static_cast<size_t>(bytes), '\0');
    in.read(body.data(), bytes);
    if (in.gcount() != bytes) {
      return reader.Error("truncated tree body");
    }
    // The raw read consumed the body's lines behind the reader; account
    // for them so errors on later frames report true absolute lines.
    reader.AccountRawLines(
        static_cast<int>(std::count(body.begin(), body.end(), '\n')));
    UDT_ASSIGN_OR_RETURN(Model model, Model::Deserialize(body));
    if (t > 0 && (model.kind() != trees[0].kind() ||
                  !SchemaEquals(model.schema(), trees[0].schema()))) {
      return reader.Error("trees disagree on kind or schema");
    }
    trees.push_back(std::move(model));
  }
  return FromTrees(std::move(trees), vote);
}

Status ForestModel::Save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out << Serialize();
  out.close();
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

StatusOr<ForestModel> ForestModel::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return Deserialize(text);
}

StatusOr<ForestModel> ForestTrainer::Train(const TrainRequest& request) const {
  UDT_RETURN_NOT_OK(request.Validate());
  if (!request.weights.empty()) {
    return Status::InvalidArgument(
        "forest requests reject explicit weights: bootstrap bags own the "
        "ensemble's tuple weighting");
  }

  ForestConfig config = config_;
  if (request.num_threads >= 0) config.num_threads = request.num_threads;
  if (request.seed) config.seed = *request.seed;
  UDT_RETURN_NOT_OK(config.Validate());

  // Out-of-core source: one pooled materialisation feeds every tree — the
  // bags reweight the shared working set per tree, they never duplicate it.
  std::optional<Dataset> materialized;
  const Dataset* source = request.dataset;
  if (request.storage != nullptr) {
    UDT_ASSIGN_OR_RETURN(Dataset loaded,
                         MaterializeDataset(request.storage, request.budget));
    materialized.emplace(std::move(loaded));
    source = &*materialized;
  }
  const Dataset& train = *source;
  const ModelKind kind = request.kind;
  OobEstimate* oob = request.oob;
  BuildStats* stats = request.stats;

  if (train.empty()) {
    return Status::InvalidArgument(
        "cannot train a forest on an empty data set");
  }

  // Warm start: trees [0, carried) come from the incumbent unchanged;
  // only [carried, num_trees) build below. Bags and subspace streams stay
  // keyed by tree index, so fresh tree t is bitwise-identical to the tree
  // a cold run would have built at index t.
  const int carried = request.warm_start != nullptr ? request.warm_trees : 0;
  if (carried > 0) {
    const ForestModel& warm = *request.warm_start;
    if (carried > config.num_trees) {
      return Status::InvalidArgument(
          StrFormat("warm_trees %d exceeds num_trees %d", carried,
                    config.num_trees));
    }
    if (carried > warm.num_trees()) {
      return Status::InvalidArgument(
          StrFormat("warm_trees %d exceeds the warm-start forest's %d trees",
                    carried, warm.num_trees()));
    }
    if (warm.kind() != kind) {
      return Status::InvalidArgument(
          "warm-start forest kind does not match the request kind");
    }
    if (!SchemaEquals(warm.schema(), train.schema())) {
      return Status::InvalidArgument(
          "warm-start forest schema does not match the training data");
    }
  }

  const int num_trees = config.num_trees;
  const int num_tuples = train.num_tuples();

  // Averaging forests reduce the pdfs to their means once; every bag then
  // reweights the shared means data instead of re-materialising it.
  std::optional<Dataset> means;
  if (kind == ModelKind::kAveraging) means = train.ToMeans();
  const Dataset& build_data = means ? *means : train;

  // Every random choice is drawn here, serially, as a pure function of the
  // run seed and tree index — the pool below only decides *when* a tree
  // builds, never what it builds. Carried trees keep their (unused) slots
  // so fresh indices line up with a cold run's.
  std::vector<TreeConfig> tree_configs(static_cast<size_t>(num_trees));
  std::vector<std::vector<double>> bags(static_cast<size_t>(num_trees));
  for (int t = carried; t < num_trees; ++t) {
    tree_configs[static_cast<size_t>(t)] =
        DeriveTreeConfig(config, train.num_attributes(), t, kind);
    if (config.bootstrap) {
      bags[static_cast<size_t>(t)] =
          ForestBootstrapBag(config.seed, t, num_tuples);
    }
  }

  std::vector<std::optional<DecisionTree>> built(
      static_cast<size_t>(num_trees));
  std::vector<Status> errors(static_cast<size_t>(num_trees), Status::OK());
  std::vector<BuildStats> tree_stats(static_cast<size_t>(num_trees));

  auto build_one = [&](int t) {
    const size_t ut = static_cast<size_t>(t);
    TreeBuilder builder(tree_configs[ut]);
    StatusOr<DecisionTree> tree =
        config.bootstrap
            ? builder.BuildWeighted(build_data, bags[ut], &tree_stats[ut])
            : builder.Build(build_data, &tree_stats[ut]);
    if (tree.ok()) {
      built[ut].emplace(std::move(tree).value());
    } else {
      errors[ut] = tree.status();
    }
  };

  const int fresh = num_trees - carried;
  const int concurrency = TaskPool::EffectiveConcurrency(config.num_threads);
  if (concurrency <= 1 || fresh <= 1) {
    for (int t = carried; t < num_trees; ++t) build_one(t);
  } else {
    // The calling thread participates via Wait, so spawn one fewer worker.
    // Each task writes only its own slots; no further synchronisation.
    TaskPool pool(concurrency - 1);
    TaskGroup group;
    for (int t = carried; t < num_trees; ++t) {
      pool.Submit(&group, [&build_one, t] { build_one(t); });
    }
    pool.Wait(&group);
  }

  for (int t = carried; t < num_trees; ++t) {
    UDT_RETURN_NOT_OK(errors[static_cast<size_t>(t)]);
  }
  // Stats cover the work this run did: the freshly built trees. Carried
  // trees reported theirs when they were first trained.
  if (stats != nullptr) {
    for (int t = carried; t < num_trees; ++t) {
      *stats += tree_stats[static_cast<size_t>(t)];
    }
  }

  std::vector<Model> trees;
  trees.reserve(static_cast<size_t>(num_trees));
  for (int t = 0; t < carried; ++t) {
    trees.push_back(request.warm_start->tree(t));  // shared, never copied
  }
  for (int t = carried; t < num_trees; ++t) {
    const size_t ut = static_cast<size_t>(t);
    trees.push_back(Model::FromTree(std::move(*built[ut]), kind,
                                    tree_configs[ut]));
  }
  ForestModel forest = ForestModel::FromTrees(std::move(trees), config.vote);

  if (oob != nullptr) {
    *oob = OobEstimate{};
    oob->total_tuples = num_tuples;
    if (config.bootstrap && fresh > 0) {
      const int k = forest.num_classes();
      // Classify through the flat kernels — bitwise-identical to the
      // pointer path, but one flatten per tree and one reused scratch/row
      // instead of a fresh distribution vector per (tuple, tree). Only the
      // fresh trees take part: a carried tree never drew a bag over this
      // window, so it has no out-of-bag relation to score.
      std::vector<FlatTree> flat_trees;
      flat_trees.reserve(static_cast<size_t>(fresh));
      for (int t = carried; t < num_trees; ++t) {
        flat_trees.push_back(FlattenTree(forest.tree(t).tree()));
      }
      const bool averaging = kind == ModelKind::kAveraging;
      FlatTraversalScratch scratch;
      std::vector<double> row(static_cast<size_t>(k));
      std::vector<double> votes(static_cast<size_t>(k));
      int correct = 0;
      for (int i = 0; i < num_tuples; ++i) {
        votes.assign(static_cast<size_t>(k), 0.0);
        int oob_trees = 0;
        for (int t = carried; t < num_trees; ++t) {
          if (bags[static_cast<size_t>(t)][static_cast<size_t>(i)] > 0.0) {
            continue;  // tree t trained on tuple i
          }
          const FlatTree& flat = flat_trees[static_cast<size_t>(t - carried)];
          if (averaging) {
            ClassifyFlatMeans(flat, train.tuple(i), &scratch, row.data());
          } else {
            ClassifyFlat(flat, train.tuple(i), &scratch, row.data());
          }
          AccumulateForestVote(config.vote, row.data(), k, votes.data());
          ++oob_trees;
        }
        if (oob_trees == 0) continue;
        ++oob->evaluated_tuples;
        if (ArgMax(votes) == train.tuple(i).label) ++correct;
      }
      // With zero evaluated tuples the rates keep their NaN defaults and
      // coverage stays 0 — the documented "no estimate" sentinel
      // (forest.h), not a stale 0.0 pretending to be a perfect error.
      if (oob->evaluated_tuples > 0) {
        oob->accuracy = static_cast<double>(correct) /
                        static_cast<double>(oob->evaluated_tuples);
        oob->error = 1.0 - oob->accuracy;
        oob->coverage = static_cast<double>(oob->evaluated_tuples) /
                        static_cast<double>(num_tuples);
      }
    }
  }
  return forest;
}

}  // namespace udt
