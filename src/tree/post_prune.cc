#include "tree/post_prune.h"

#include <algorithm>

#include "common/logging.h"
#include "common/math.h"

namespace udt {

double LeafPessimisticError(const std::vector<double>& class_counts,
                            double confidence) {
  double total = 0.0;
  double best = 0.0;
  for (double c : class_counts) {
    total += c;
    best = std::max(best, c);
  }
  if (total <= 0.0) return 0.0;
  return PessimisticErrorCount(total - best, total, confidence);
}

namespace {

// Returns the pessimistic error of the (possibly pruned) subtree rooted at
// `node`, pruning it in place when a leaf would do no worse.
double PruneNode(TreeNode* node, const PostPruneOptions& options,
                 PostPruneStats* stats) {
  double leaf_error = LeafPessimisticError(node->class_counts,
                                           options.confidence);
  if (node->is_leaf()) return leaf_error;

  double subtree_error = 0.0;
  if (node->is_categorical) {
    for (std::unique_ptr<TreeNode>& child : node->children) {
      if (child != nullptr) {
        subtree_error += PruneNode(child.get(), options, stats);
      }
    }
  } else {
    subtree_error += PruneNode(node->left.get(), options, stats);
    subtree_error += PruneNode(node->right.get(), options, stats);
  }

  if (leaf_error <= subtree_error + kMassEpsilon) {
    node->MakeLeaf();
    ++stats->subtrees_collapsed;
    return leaf_error;
  }
  return subtree_error;
}

}  // namespace

PostPruneStats PostPruneTree(DecisionTree* tree,
                             const PostPruneOptions& options) {
  UDT_CHECK(tree != nullptr);
  PostPruneStats stats;
  PruneNode(tree->mutable_root(), options, &stats);
  return stats;
}

}  // namespace udt
