// Text serialisation of decision trees: a compact parenthesised format that
// round-trips exactly (used for model persistence and determinism tests).
//
// Grammar:
//   tree    := "(udt-tree" node ")"
//   node    := leaf | numeric | categorical
//   leaf    := "(leaf" counts ")"
//   numeric := "(num" attr split counts node node ")"
//   categorical := "(cat" attr counts node... ")"
//   counts  := "[" value ("," value)* "]"

#ifndef UDT_TREE_TREE_IO_H_
#define UDT_TREE_TREE_IO_H_

#include <string>

#include "common/statusor.h"
#include "table/attribute.h"
#include "tree/tree.h"

namespace udt {

// Serialises `tree` (schema is not embedded; supply it when parsing).
std::string SerializeTree(const DecisionTree& tree);

// Parses a serialised tree. Fails on malformed input or when attribute or
// class indices do not fit `schema`.
StatusOr<DecisionTree> ParseTree(const std::string& text,
                                 const Schema& schema);

}  // namespace udt

#endif  // UDT_TREE_TREE_IO_H_
