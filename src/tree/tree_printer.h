// Human-readable rendering of decision trees, in the style of the paper's
// Fig 2/Fig 3 examples.

#ifndef UDT_TREE_TREE_PRINTER_H_
#define UDT_TREE_TREE_PRINTER_H_

#include <string>

#include "tree/tree.h"

namespace udt {

// Multi-line ASCII rendering. Example:
//   A1 <= -1 ?
//   +-yes: leaf {A: 0.80, B: 0.20}
//   +-no : leaf {A: 0.21, B: 0.79}
std::string TreeToString(const DecisionTree& tree);

// One-line structural summary, e.g. "nodes=7 leaves=4 depth=3".
std::string TreeSummary(const DecisionTree& tree);

// Graphviz DOT rendering ("dot -Tpng tree.dot -o tree.png"): internal
// nodes labelled with their test, leaves with their class distribution.
std::string TreeToDot(const DecisionTree& tree);

}  // namespace udt

#endif  // UDT_TREE_TREE_PRINTER_H_
