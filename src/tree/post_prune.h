// Post-pruning in the C4.5 style the paper adopts (footnote 3 refers to
// [33]/[3]): bottom-up pessimistic-error pruning. A subtree is replaced by
// a leaf when the leaf's pessimistic error estimate (an upper confidence
// bound on the training error) does not exceed the sum of its leaves'
// estimates. Fractional training weights are handled transparently because
// all counts are weighted masses.

#ifndef UDT_TREE_POST_PRUNE_H_
#define UDT_TREE_POST_PRUNE_H_

#include "tree/tree.h"

namespace udt {

struct PostPruneOptions {
  // C4.5's CF parameter: smaller values prune more aggressively.
  double confidence = 0.25;
};

struct PostPruneStats {
  int subtrees_collapsed = 0;
};

// Prunes `tree` in place; returns statistics. Idempotent.
PostPruneStats PostPruneTree(DecisionTree* tree,
                             const PostPruneOptions& options);

// The pessimistic error estimate of turning a node with the given weighted
// class counts into a leaf (exposed for tests).
double LeafPessimisticError(const std::vector<double>& class_counts,
                            double confidence);

}  // namespace udt

#endif  // UDT_TREE_POST_PRUNE_H_
