#include "tree/tree.h"

#include <algorithm>

#include "common/logging.h"

namespace udt {

void TreeNode::MakeLeaf() {
  attribute = kLeaf;
  is_categorical = false;
  split_point = 0.0;
  left.reset();
  right.reset();
  children.clear();
}

DecisionTree::DecisionTree(Schema schema, std::unique_ptr<TreeNode> root)
    : schema_(std::move(schema)), root_(std::move(root)) {
  UDT_CHECK(root_ != nullptr);
}

namespace {

void Visit(const TreeNode& node, int depth, int* nodes, int* leaves,
           int* max_depth) {
  ++*nodes;
  *max_depth = std::max(*max_depth, depth);
  if (node.is_leaf()) {
    ++*leaves;
    return;
  }
  if (node.is_categorical) {
    for (const std::unique_ptr<TreeNode>& child : node.children) {
      if (child != nullptr) Visit(*child, depth + 1, nodes, leaves, max_depth);
    }
    return;
  }
  Visit(*node.left, depth + 1, nodes, leaves, max_depth);
  Visit(*node.right, depth + 1, nodes, leaves, max_depth);
}

}  // namespace

int DecisionTree::num_nodes() const {
  int nodes = 0, leaves = 0, max_depth = 0;
  Visit(*root_, 1, &nodes, &leaves, &max_depth);
  return nodes;
}

int DecisionTree::num_leaves() const {
  int nodes = 0, leaves = 0, max_depth = 0;
  Visit(*root_, 1, &nodes, &leaves, &max_depth);
  return leaves;
}

int DecisionTree::depth() const {
  int nodes = 0, leaves = 0, max_depth = 0;
  Visit(*root_, 1, &nodes, &leaves, &max_depth);
  return max_depth;
}

}  // namespace udt
