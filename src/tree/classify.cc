#include "tree/classify.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "split/fractional_tuple.h"

namespace udt {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct TraversalState {
  // Per-attribute numerical constraints (the tuple's pdf conditioned to
  // (lo, hi]) and fixed categories, updated along the path.
  std::vector<double> lo;
  std::vector<double> hi;
  std::vector<int> category;
};

void Propagate(const TreeNode& node, const UncertainTuple& tuple,
               double weight, TraversalState* state,
               std::vector<double>* out) {
  if (weight < kMinFractionWeight) return;
  if (node.is_leaf()) {
    for (size_t c = 0; c < out->size(); ++c) {
      (*out)[c] += weight * node.distribution[c];
    }
    return;
  }

  size_t j = static_cast<size_t>(node.attribute);
  if (node.is_categorical) {
    const CategoricalPdf& dist = tuple.values[j].categorical();
    if (state->category[j] >= 0) {
      const std::unique_ptr<TreeNode>& child =
          node.children[static_cast<size_t>(state->category[j])];
      UDT_DCHECK(child != nullptr);
      Propagate(*child, tuple, weight, state, out);
      return;
    }
    for (size_t v = 0; v < node.children.size(); ++v) {
      double p = dist.probability(static_cast<int>(v));
      if (p <= 0.0 || node.children[v] == nullptr) continue;
      state->category[j] = static_cast<int>(v);
      Propagate(*node.children[v], tuple, weight * p, state, out);
      state->category[j] = -1;
    }
    return;
  }

  const SampledPdf& pdf = tuple.values[j].pdf();
  double mass = ConstrainedMass(pdf, state->lo[j], state->hi[j]);
  if (mass <= 0.0) return;
  double p_left =
      ConditionalCdf(pdf, state->lo[j], state->hi[j], node.split_point);

  double w_left = weight * p_left;
  if (w_left >= kMinFractionWeight) {
    double saved_hi = state->hi[j];
    state->hi[j] = std::min(saved_hi, node.split_point);
    Propagate(*node.left, tuple, w_left, state, out);
    state->hi[j] = saved_hi;
  }
  double w_right = weight - w_left;
  if (w_right >= kMinFractionWeight) {
    double saved_lo = state->lo[j];
    state->lo[j] = std::max(saved_lo, node.split_point);
    Propagate(*node.right, tuple, w_right, state, out);
    state->lo[j] = saved_lo;
  }
}

}  // namespace

int ArgMax(const std::vector<double>& values) {
  UDT_CHECK(!values.empty());
  int best = 0;
  for (int i = 1; i < static_cast<int>(values.size()); ++i) {
    if (values[static_cast<size_t>(i)] > values[static_cast<size_t>(best)]) {
      best = i;
    }
  }
  return best;
}

std::vector<double> ClassifyDistribution(const DecisionTree& tree,
                                         const UncertainTuple& tuple) {
  size_t k = static_cast<size_t>(tree.schema().num_attributes());
  UDT_CHECK(tuple.values.size() == k);
  TraversalState state;
  state.lo.assign(k, -kInf);
  state.hi.assign(k, kInf);
  state.category.assign(k, -1);

  std::vector<double> out(
      static_cast<size_t>(tree.schema().num_classes()), 0.0);
  Propagate(tree.root(), tuple, 1.0, &state, &out);

  // Weight can evaporate only via dropped micro-fragments; renormalise so
  // the result is a proper distribution.
  double total = 0.0;
  for (double v : out) total += v;
  if (total > 0.0) {
    for (double& v : out) v /= total;
  } else {
    for (double& v : out) v = 1.0 / static_cast<double>(out.size());
  }
  return out;
}

int PredictLabel(const DecisionTree& tree, const UncertainTuple& tuple) {
  return ArgMax(ClassifyDistribution(tree, tuple));
}

std::vector<double> ClassifyPointDistribution(
    const DecisionTree& tree, const std::vector<double>& values) {
  UncertainTuple tuple;
  tuple.values.reserve(values.size());
  for (double v : values) {
    tuple.values.push_back(
        UncertainValue::Numerical(SampledPdf::PointMass(v)));
  }
  return ClassifyDistribution(tree, tuple);
}

int PredictPointLabel(const DecisionTree& tree,
                      const std::vector<double>& values) {
  return ArgMax(ClassifyPointDistribution(tree, values));
}

}  // namespace udt
