#include "tree/classify.h"

#include <algorithm>
#include <cstdint>
#include <limits>

#include "common/logging.h"
#include "split/fractional_tuple.h"

namespace udt {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct TraversalState {
  // Per-attribute numerical constraints (the tuple's pdf conditioned to
  // (lo, hi]) and fixed categories, updated along the path.
  std::vector<double> lo;
  std::vector<double> hi;
  std::vector<int> category;
};

// One deferred statement of the traversal's explicit stack. The stack
// replays the former recursion's statement order exactly — constraint
// mutation, child visit, constraint restore — so a degenerate
// hundred-thousand-node split chain costs heap capacity instead of
// overflowing the machine stack. tree/flat_tree.cc uses the identical
// scheme; both remain bitwise-identical to each other.
struct TraversalOp {
  enum Kind : uint8_t { kVisit = 0, kSetLo = 1, kSetHi = 2, kSetCategory = 3 };
  uint8_t kind;
  const TreeNode* node;  // kVisit target
  size_t attribute;      // kSet* target
  int category;          // kSetCategory payload
  double value;          // weight for kVisit, bound for kSetLo/kSetHi
};

void Propagate(const TreeNode& root, const UncertainTuple& tuple,
               TraversalState* state, std::vector<double>* out) {
  std::vector<TraversalOp> ops;
  ops.push_back({TraversalOp::kVisit, &root, 0, -1, 1.0});
  while (!ops.empty()) {
    const TraversalOp op = ops.back();
    ops.pop_back();
    switch (op.kind) {
      case TraversalOp::kSetLo:
        state->lo[op.attribute] = op.value;
        continue;
      case TraversalOp::kSetHi:
        state->hi[op.attribute] = op.value;
        continue;
      case TraversalOp::kSetCategory:
        state->category[op.attribute] = op.category;
        continue;
      default:
        break;
    }

    const double weight = op.value;
    if (weight < kMinFractionWeight) continue;
    const TreeNode& node = *op.node;
    if (node.is_leaf()) {
      for (size_t c = 0; c < out->size(); ++c) {
        (*out)[c] += weight * node.distribution[c];
      }
      continue;
    }

    size_t j = static_cast<size_t>(node.attribute);
    if (node.is_categorical) {
      const CategoricalPdf& dist = tuple.values[j].categorical();
      if (state->category[j] >= 0) {
        const std::unique_ptr<TreeNode>& child =
            node.children[static_cast<size_t>(state->category[j])];
        UDT_DCHECK(child != nullptr);
        ops.push_back({TraversalOp::kVisit, child.get(), 0, -1, weight});
        continue;
      }
      // The recursion visited categories ascending, restoring category[j]
      // between children; push each (set, visit, restore) triple in
      // reverse so the pops replay that exact order.
      for (size_t v = node.children.size(); v-- > 0;) {
        double p = dist.probability(static_cast<int>(v));
        if (p <= 0.0 || node.children[v] == nullptr) continue;
        ops.push_back({TraversalOp::kSetCategory, nullptr, j, -1, 0.0});
        ops.push_back({TraversalOp::kVisit, node.children[v].get(), 0, -1,
                       weight * p});
        ops.push_back({TraversalOp::kSetCategory, nullptr, j,
                       static_cast<int>(v), 0.0});
      }
      continue;
    }

    const SampledPdf& pdf = tuple.values[j].pdf();
    double mass = ConstrainedMass(pdf, state->lo[j], state->hi[j]);
    if (mass <= 0.0) continue;
    double p_left =
        ConditionalCdf(pdf, state->lo[j], state->hi[j], node.split_point);

    // Recursive order: narrow hi, visit left, restore hi, narrow lo,
    // visit right, restore lo. Reading both saved bounds now is safe — a
    // subtree restores every bound it touches before control returns.
    double w_left = weight * p_left;
    double w_right = weight - w_left;
    if (w_right >= kMinFractionWeight) {
      double saved_lo = state->lo[j];
      ops.push_back({TraversalOp::kSetLo, nullptr, j, -1, saved_lo});
      ops.push_back({TraversalOp::kVisit, node.right.get(), 0, -1, w_right});
      ops.push_back({TraversalOp::kSetLo, nullptr, j, -1,
                     std::max(saved_lo, node.split_point)});
    }
    if (w_left >= kMinFractionWeight) {
      double saved_hi = state->hi[j];
      ops.push_back({TraversalOp::kSetHi, nullptr, j, -1, saved_hi});
      ops.push_back({TraversalOp::kVisit, node.left.get(), 0, -1, w_left});
      ops.push_back({TraversalOp::kSetHi, nullptr, j, -1,
                     std::min(saved_hi, node.split_point)});
    }
  }
}

}  // namespace

int ArgMax(const std::vector<double>& values) {
  UDT_CHECK(!values.empty());
  int best = 0;
  for (int i = 1; i < static_cast<int>(values.size()); ++i) {
    if (values[static_cast<size_t>(i)] > values[static_cast<size_t>(best)]) {
      best = i;
    }
  }
  return best;
}

std::vector<double> ClassifyDistribution(const DecisionTree& tree,
                                         const UncertainTuple& tuple) {
  size_t k = static_cast<size_t>(tree.schema().num_attributes());
  UDT_CHECK(tuple.values.size() == k);
  TraversalState state;
  state.lo.assign(k, -kInf);
  state.hi.assign(k, kInf);
  state.category.assign(k, -1);

  std::vector<double> out(
      static_cast<size_t>(tree.schema().num_classes()), 0.0);
  Propagate(tree.root(), tuple, &state, &out);

  // Weight can evaporate only via dropped micro-fragments; renormalise so
  // the result is a proper distribution.
  double total = 0.0;
  for (double v : out) total += v;
  if (total > 0.0) {
    for (double& v : out) v /= total;
  } else {
    for (double& v : out) v = 1.0 / static_cast<double>(out.size());
  }
  return out;
}

int PredictLabel(const DecisionTree& tree, const UncertainTuple& tuple) {
  return ArgMax(ClassifyDistribution(tree, tuple));
}

std::vector<double> ClassifyPointDistribution(
    const DecisionTree& tree, const std::vector<double>& values) {
  UncertainTuple tuple;
  tuple.values.reserve(values.size());
  for (double v : values) {
    tuple.values.push_back(
        UncertainValue::Numerical(SampledPdf::PointMass(v)));
  }
  return ClassifyDistribution(tree, tuple);
}

int PredictPointLabel(const DecisionTree& tree,
                      const std::vector<double>& values) {
  return ArgMax(ClassifyPointDistribution(tree, values));
}

}  // namespace udt
