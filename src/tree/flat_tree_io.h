// Text serialisation of the flat serving layout, shared by the versioned
// serving containers ("udt-compiled v1" wraps one body, "udt-forest v1"
// wraps one per tree). The body is self-delimiting — a tables header
// declares every count up front — so containers can concatenate bodies and
// a truncated file fails cleanly. Doubles travel as hexfloats: the loaded
// layout is bitwise-identical to the saved one.
//
// Body shape:
//
//   tables nodes=<n> children=<c> leaves=<l>
//   n <kind> <attribute> <split hexfloat> <first> <num_children>   x n
//   <child id> x c (one line)
//   <leaf hexfloat> x l (one line)

#ifndef UDT_TREE_FLAT_TREE_IO_H_
#define UDT_TREE_FLAT_TREE_IO_H_

#include <ostream>

#include "common/statusor.h"
#include "table/attribute.h"
#include "table/schema_io.h"
#include "tree/flat_tree.h"

namespace udt {

// Writes the tables header and the three array sections of `flat`.
void WriteFlatTreeBody(const FlatTree& flat, std::ostream& out);

// Parses one body through the container's LineReader, leaving the reader
// positioned after the body's final line (ready for a sibling body or
// EOF). `num_classes` sizes the leaf rows; the reader supplies the error
// context and the offending line number, so a parse error in the third
// tree of a forest container points at the absolute line in the file.
// The result is unvalidated — run ValidateFlatTree before traversing it.
StatusOr<FlatTree> ReadFlatTreeBody(LineReader* reader, int num_classes);

// Structural validation of an untrusted flat layout: every index a
// traversal will follow must land in range, child ids must point strictly
// forward (breadth-first order implies it, and it rules out cycles), and
// tested attributes must exist in the schema with the matching kind.
Status ValidateFlatTree(const FlatTree& flat, const Schema& schema,
                        const std::string& context);

}  // namespace udt

#endif  // UDT_TREE_FLAT_TREE_IO_H_
