// Rule extraction. The paper motivates decision trees partly because
// "rules can also be extracted from decision trees easily" (Section 1);
// this module materialises that: every root-to-leaf path becomes a rule
//   IF  lo < Aj <= hi  AND  Ac = v  AND ...  THEN  class c
// with support (training weight reaching the leaf) and confidence (the
// leaf's probability for its majority class). A RuleSet classifies
// uncertain tuples exactly like the tree it came from: each rule's body
// is matched with the tuple's probability of satisfying it.

#ifndef UDT_TREE_RULES_H_
#define UDT_TREE_RULES_H_

#include <limits>
#include <string>
#include <vector>

#include "table/dataset.h"
#include "tree/tree.h"

namespace udt {

// One conjunct of a rule body.
struct RuleCondition {
  int attribute = -1;
  bool is_categorical = false;
  // Numerical: value constrained to (lower, upper].
  double lower = -std::numeric_limits<double>::infinity();
  double upper = std::numeric_limits<double>::infinity();
  // Categorical: value must equal this category.
  int category = -1;
};

// One IF-THEN rule with the statistics of its source leaf.
struct Rule {
  std::vector<RuleCondition> conditions;
  // Full class distribution at the leaf, plus the headline prediction.
  std::vector<double> distribution;
  int predicted_class = 0;
  double confidence = 0.0;  // distribution[predicted_class]
  double support = 0.0;     // training weight at the leaf

  // Probability that `tuple` satisfies every condition (conditions bind
  // independent attributes, so the probabilities multiply).
  double MatchProbability(const UncertainTuple& tuple) const;

  // Renders "IF 1.2 < A3 <= 4.5 AND color = 2 THEN c1 (conf 0.93, sup 12.5)".
  std::string ToString(const Schema& schema) const;
};

// The complete, mutually exclusive and exhaustive rule set of a tree.
class RuleSet {
 public:
  // Extracts one rule per leaf. Conditions on the same numerical attribute
  // along a path are merged into a single interval conjunct.
  static RuleSet FromTree(const DecisionTree& tree);

  int num_rules() const { return static_cast<int>(rules_.size()); }
  const Rule& rule(int i) const { return rules_[static_cast<size_t>(i)]; }
  const std::vector<Rule>& rules() const { return rules_; }
  const Schema& schema() const { return schema_; }

  // Classifies like the source tree: sum over rules of
  // match-probability * rule distribution, renormalised.
  std::vector<double> ClassifyDistribution(const UncertainTuple& tuple) const;
  int Predict(const UncertainTuple& tuple) const;

  // All rules, one per line, ordered by descending support.
  std::string ToString() const;

 private:
  RuleSet(Schema schema, std::vector<Rule> rules)
      : schema_(std::move(schema)), rules_(std::move(rules)) {}

  Schema schema_;
  std::vector<Rule> rules_;
};

}  // namespace udt

#endif  // UDT_TREE_RULES_H_
