#include "tree/tree_io.h"

#include <cctype>
#include <cmath>

#include "common/math.h"
#include "common/string_util.h"

namespace udt {

namespace {

void AppendCounts(const std::vector<double>& counts, std::string* out) {
  *out += "[";
  for (size_t c = 0; c < counts.size(); ++c) {
    if (c > 0) *out += ",";
    *out += StrFormat("%.17g", counts[c]);
  }
  *out += "]";
}

void SerializeNode(const TreeNode& node, std::string* out) {
  if (node.is_leaf()) {
    *out += "(leaf ";
    AppendCounts(node.class_counts, out);
    *out += ")";
    return;
  }
  if (node.is_categorical) {
    *out += StrFormat("(cat %d ", node.attribute);
    AppendCounts(node.class_counts, out);
    for (const std::unique_ptr<TreeNode>& child : node.children) {
      *out += " ";
      if (child == nullptr) {
        *out += "(none)";
      } else {
        SerializeNode(*child, out);
      }
    }
    *out += ")";
    return;
  }
  *out += StrFormat("(num %d %.17g ", node.attribute, node.split_point);
  AppendCounts(node.class_counts, out);
  *out += " ";
  SerializeNode(*node.left, out);
  *out += " ";
  SerializeNode(*node.right, out);
  *out += ")";
}

// Minimal recursive-descent parser.
class Parser {
 public:
  Parser(const std::string& text, const Schema& schema)
      : text_(text), schema_(schema) {}

  StatusOr<std::unique_ptr<TreeNode>> ParseRoot() {
    UDT_RETURN_NOT_OK(Expect("(udt-tree"));
    UDT_ASSIGN_OR_RETURN(std::unique_ptr<TreeNode> root, ParseNode());
    UDT_RETURN_NOT_OK(Expect(")"));
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing characters after tree");
    }
    return root;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Status Expect(const std::string& token) {
    SkipSpace();
    if (text_.compare(pos_, token.size(), token) != 0) {
      return Status::InvalidArgument(
          StrFormat("expected '%s' at offset %zu", token.c_str(), pos_));
    }
    pos_ += token.size();
    return Status::OK();
  }

  bool Peek(const std::string& token) {
    SkipSpace();
    return text_.compare(pos_, token.size(), token) == 0;
  }

  StatusOr<double> ParseNumber() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == 'n' || text_[pos_] == 'a' ||  // nan
            text_[pos_] == 'i' || text_[pos_] == 'f')) {  // inf
      ++pos_;
    }
    std::optional<double> v = ParseDouble(text_.substr(start, pos_ - start));
    if (!v.has_value() || !std::isfinite(*v)) {
      return Status::InvalidArgument(
          StrFormat("bad number at offset %zu", start));
    }
    return *v;
  }

  StatusOr<std::vector<double>> ParseCounts() {
    UDT_RETURN_NOT_OK(Expect("["));
    std::vector<double> counts;
    while (true) {
      UDT_ASSIGN_OR_RETURN(double v, ParseNumber());
      if (v < 0.0) return Status::InvalidArgument("negative class count");
      counts.push_back(v);
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    UDT_RETURN_NOT_OK(Expect("]"));
    if (static_cast<int>(counts.size()) != schema_.num_classes()) {
      return Status::InvalidArgument("class-count arity mismatch");
    }
    return counts;
  }

  void FinishNode(TreeNode* node, std::vector<double> counts) {
    node->class_counts = std::move(counts);
    double total = 0.0;
    for (double c : node->class_counts) total += c;
    node->distribution.assign(node->class_counts.size(), 0.0);
    if (total > 0.0) {
      for (size_t c = 0; c < node->class_counts.size(); ++c) {
        node->distribution[c] = node->class_counts[c] / total;
      }
    } else {
      for (double& d : node->distribution) {
        d = 1.0 / static_cast<double>(node->distribution.size());
      }
    }
  }

  StatusOr<std::unique_ptr<TreeNode>> ParseNode() {
    if (Peek("(leaf")) {
      UDT_RETURN_NOT_OK(Expect("(leaf"));
      UDT_ASSIGN_OR_RETURN(std::vector<double> counts, ParseCounts());
      UDT_RETURN_NOT_OK(Expect(")"));
      auto node = std::make_unique<TreeNode>();
      FinishNode(node.get(), std::move(counts));
      return node;
    }
    if (Peek("(num")) {
      UDT_RETURN_NOT_OK(Expect("(num"));
      UDT_ASSIGN_OR_RETURN(double attr, ParseNumber());
      UDT_ASSIGN_OR_RETURN(double split, ParseNumber());
      UDT_ASSIGN_OR_RETURN(std::vector<double> counts, ParseCounts());
      UDT_ASSIGN_OR_RETURN(std::unique_ptr<TreeNode> left, ParseNode());
      UDT_ASSIGN_OR_RETURN(std::unique_ptr<TreeNode> right, ParseNode());
      UDT_RETURN_NOT_OK(Expect(")"));
      int j = static_cast<int>(attr);
      if (j < 0 || j >= schema_.num_attributes() ||
          schema_.attribute(j).kind != AttributeKind::kNumerical) {
        return Status::InvalidArgument("bad numerical attribute index");
      }
      auto node = std::make_unique<TreeNode>();
      node->attribute = j;
      node->split_point = split;
      node->left = std::move(left);
      node->right = std::move(right);
      FinishNode(node.get(), std::move(counts));
      return node;
    }
    if (Peek("(cat")) {
      UDT_RETURN_NOT_OK(Expect("(cat"));
      UDT_ASSIGN_OR_RETURN(double attr, ParseNumber());
      UDT_ASSIGN_OR_RETURN(std::vector<double> counts, ParseCounts());
      int j = static_cast<int>(attr);
      if (j < 0 || j >= schema_.num_attributes() ||
          schema_.attribute(j).kind != AttributeKind::kCategorical) {
        return Status::InvalidArgument("bad categorical attribute index");
      }
      auto node = std::make_unique<TreeNode>();
      node->attribute = j;
      node->is_categorical = true;
      for (int v = 0; v < schema_.attribute(j).num_categories; ++v) {
        if (Peek("(none)")) {
          UDT_RETURN_NOT_OK(Expect("(none)"));
          node->children.push_back(nullptr);
        } else {
          UDT_ASSIGN_OR_RETURN(std::unique_ptr<TreeNode> child, ParseNode());
          node->children.push_back(std::move(child));
        }
      }
      UDT_RETURN_NOT_OK(Expect(")"));
      FinishNode(node.get(), std::move(counts));
      return node;
    }
    return Status::InvalidArgument(
        StrFormat("unknown node form at offset %zu", pos_));
  }

  const std::string& text_;
  const Schema& schema_;
  size_t pos_ = 0;
};

}  // namespace

std::string SerializeTree(const DecisionTree& tree) {
  std::string out = "(udt-tree ";
  SerializeNode(tree.root(), &out);
  out += ")";
  return out;
}

StatusOr<DecisionTree> ParseTree(const std::string& text,
                                 const Schema& schema) {
  Parser parser(text, schema);
  UDT_ASSIGN_OR_RETURN(std::unique_ptr<TreeNode> root, parser.ParseRoot());
  return DecisionTree(schema, std::move(root));
}

}  // namespace udt
