#include "tree/flat_tree.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <limits>
#include <map>

#include "common/logging.h"
#include "pdf/pdf_kernels.h"
#include "split/fractional_tuple.h"

namespace udt {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Leaf distributions are pooled by exact bit pattern: probabilities that
// compare equal but differ in representation (there are none today, but
// -0.0 vs 0.0 would) must not be merged, or the compiled path could stop
// being bitwise-faithful to the pointer path.
std::vector<uint64_t> BitKey(const std::vector<double>& values) {
  std::vector<uint64_t> key;
  key.reserve(values.size());
  for (double v : values) key.push_back(std::bit_cast<uint64_t>(v));
  return key;
}

}  // namespace

int FlatTree::num_leaves() const {
  int leaves = 0;
  for (uint8_t k : kind) {
    if (static_cast<FlatNodeKind>(k) == FlatNodeKind::kLeaf) ++leaves;
  }
  return leaves;
}

FlatTree FlattenTree(const DecisionTree& tree) {
  FlatTree flat;
  flat.num_classes = tree.schema().num_classes();

  // Pass 1: assign breadth-first ids. The worklist holds pointers in id
  // order; a node's children are appended together, so a numerical node's
  // right child always lands at left-id + 1.
  std::vector<const TreeNode*> order;
  order.push_back(&tree.root());
  for (size_t i = 0; i < order.size(); ++i) {
    const TreeNode* node = order[i];
    if (node->is_leaf()) continue;
    if (node->is_categorical) {
      for (const std::unique_ptr<TreeNode>& child : node->children) {
        if (child != nullptr) order.push_back(child.get());
      }
    } else {
      order.push_back(node->left.get());
      order.push_back(node->right.get());
    }
  }

  const size_t n = order.size();
  flat.kind.reserve(n);
  flat.attribute.reserve(n);
  flat.split_point.reserve(n);
  flat.first.reserve(n);
  flat.num_children.reserve(n);

  // Pass 2: emit records. next_child tracks the id the next enqueued child
  // received in pass 1; the two passes enqueue in identical order.
  std::map<std::vector<uint64_t>, int32_t> pooled_leaves;
  int32_t next_child = 1;
  for (const TreeNode* node : order) {
    if (node->is_leaf()) {
      flat.kind.push_back(static_cast<uint8_t>(FlatNodeKind::kLeaf));
      flat.attribute.push_back(-1);
      flat.split_point.push_back(0.0);
      flat.num_children.push_back(0);
      auto [it, inserted] = pooled_leaves.emplace(
          BitKey(node->distribution),
          static_cast<int32_t>(flat.leaf_values.size()));
      if (inserted) {
        flat.leaf_values.insert(flat.leaf_values.end(),
                                node->distribution.begin(),
                                node->distribution.end());
      }
      flat.first.push_back(it->second);
      continue;
    }
    flat.attribute.push_back(node->attribute);
    if (node->is_categorical) {
      flat.kind.push_back(static_cast<uint8_t>(FlatNodeKind::kCategorical));
      flat.split_point.push_back(0.0);
      flat.first.push_back(static_cast<int32_t>(flat.child_table.size()));
      flat.num_children.push_back(static_cast<int32_t>(node->children.size()));
      for (const std::unique_ptr<TreeNode>& child : node->children) {
        flat.child_table.push_back(child != nullptr ? next_child++ : -1);
      }
    } else {
      flat.kind.push_back(static_cast<uint8_t>(FlatNodeKind::kNumerical));
      flat.split_point.push_back(node->split_point);
      flat.first.push_back(next_child);
      flat.num_children.push_back(0);
      next_child += 2;
    }
  }
  UDT_DCHECK(static_cast<size_t>(next_child) == n);
  return flat;
}

// ---------------------------------------------------------------- kernels
//
// PropagateFlat mirrors the Propagate traversal of tree/classify.cc
// statement for statement, reading struct-of-arrays records instead of
// chasing TreeNode pointers. Identical control flow over identical
// constraint state means the identical sequence of ConstrainedMass /
// ConditionalCdf evaluations, weight products and leaf accumulations — the
// bitwise guarantee. The former recursion is replayed by an explicit op
// stack in the reusable scratch: each node visit pushes, in reverse, the
// exact statement sequence the recursive body executed (constraint
// mutation, child visit, constraint restore), so a pathological
// million-node split chain costs heap capacity instead of overflowing the
// machine stack.

#if defined(__GNUC__) || defined(__clang__)
#define UDT_PREFETCH(addr) __builtin_prefetch(addr)
#else
#define UDT_PREFETCH(addr) ((void)0)
#endif

namespace {

void PropagateFlat(const FlatTree& flat, const UncertainTuple& tuple,
                   FlatTraversalScratch* scratch, double* out) {
  std::vector<FlatTraversalOp>& ops = scratch->ops;
  ops.clear();
  ops.push_back({FlatTraversalOp::kVisit, 0, -1, 1.0});
  while (!ops.empty()) {
    const FlatTraversalOp op = ops.back();
    ops.pop_back();
    const size_t j_op = static_cast<size_t>(op.node_or_attribute);
    switch (op.kind) {
      case FlatTraversalOp::kSetLo:
        scratch->lo[j_op] = op.value;
        continue;
      case FlatTraversalOp::kSetHi:
        scratch->hi[j_op] = op.value;
        continue;
      case FlatTraversalOp::kSetCategory:
        scratch->category[j_op] = op.category;
        continue;
      default:
        break;
    }

    const double weight = op.value;
    if (weight < kMinFractionWeight) continue;
    const size_t i = static_cast<size_t>(op.node_or_attribute);
    const int32_t node = op.node_or_attribute;
    const FlatNodeKind kind = flat.node_kind(node);
    if (kind == FlatNodeKind::kLeaf) {
      const double* dist = flat.leaf_values.data() + flat.first[i];
      for (int c = 0; c < flat.num_classes; ++c) {
        out[c] += weight * dist[c];
      }
      continue;
    }

    const int32_t attribute = flat.attribute[i];
    const size_t j = static_cast<size_t>(attribute);
    if (kind == FlatNodeKind::kCategorical) {
      const CategoricalPdf& dist = tuple.values[j].categorical();
      const int32_t* children = flat.child_table.data() + flat.first[i];
      if (scratch->category[j] >= 0) {
        const int32_t child = children[scratch->category[j]];
        UDT_DCHECK(child >= 0);
        ops.push_back({FlatTraversalOp::kVisit, child, -1, weight});
        continue;
      }
      // The recursion visited categories ascending, restoring category[j]
      // to -1 between children; push each (set, visit, restore) triple in
      // reverse so the pops replay that exact order.
      for (int32_t v = flat.num_children[i] - 1; v >= 0; --v) {
        double p = dist.probability(v);
        if (p <= 0.0 || children[v] < 0) continue;
        ops.push_back({FlatTraversalOp::kSetCategory, attribute, -1, 0.0});
        ops.push_back({FlatTraversalOp::kVisit, children[v], -1, weight * p});
        ops.push_back({FlatTraversalOp::kSetCategory, attribute, v, 0.0});
      }
      continue;
    }

    const SampledPdf& pdf = tuple.values[j].pdf();
    double mass = ConstrainedMass(pdf, scratch->lo[j], scratch->hi[j]);
    if (mass <= 0.0) continue;
    double p_left = ConditionalCdf(pdf, scratch->lo[j], scratch->hi[j],
                                   flat.split_point[i]);

    // The recursive order was: narrow hi, visit left, restore hi, narrow
    // lo, visit right, restore lo. Both saved bounds are read now — safe
    // because a subtree always restores every bound it touches before
    // control returns to this level.
    double w_left = weight * p_left;
    double w_right = weight - w_left;
    const bool go_left = w_left >= kMinFractionWeight;
    const bool go_right = w_right >= kMinFractionWeight;
    if (go_right) {
      double saved_lo = scratch->lo[j];
      ops.push_back({FlatTraversalOp::kSetLo, attribute, -1, saved_lo});
      ops.push_back(
          {FlatTraversalOp::kVisit, flat.first[i] + 1, -1, w_right});
      ops.push_back({FlatTraversalOp::kSetLo, attribute, -1,
                     std::max(saved_lo, flat.split_point[i])});
    }
    if (go_left) {
      double saved_hi = scratch->hi[j];
      ops.push_back({FlatTraversalOp::kSetHi, attribute, -1, saved_hi});
      ops.push_back({FlatTraversalOp::kVisit, flat.first[i], -1, w_left});
      ops.push_back({FlatTraversalOp::kSetHi, attribute, -1,
                     std::min(saved_hi, flat.split_point[i])});
    }
  }
}

// The final renormalisation, identical to ClassifyDistribution's epilogue.
void Renormalise(int num_classes, double* out) {
  double total = 0.0;
  for (int c = 0; c < num_classes; ++c) total += out[c];
  if (total > 0.0) {
    for (int c = 0; c < num_classes; ++c) out[c] /= total;
  } else {
    for (int c = 0; c < num_classes; ++c) {
      out[c] = 1.0 / static_cast<double>(num_classes);
    }
  }
}

// ------------------------------------------------------ batch machinery

// DFS-preorder rank of every node, visiting children in the scalar
// traversal's order (numerical: left then right; categorical: present
// children by ascending category). Two leaves reached by the same tuple
// are accumulated by the scalar kernel in exactly this rank order, so the
// batch kernel sorts its deferred leaf hits by rank to replay it.
// Computed once per tree and cached in the scratch (see the lifetime
// contract on FlatBatchScratch).
const std::vector<int32_t>& DfsRanksFor(const FlatTree& flat,
                                        FlatBatchScratch* bs) {
  for (const FlatBatchScratch::RankCacheEntry& entry : bs->rank_cache) {
    if (entry.tree == &flat) return entry.ranks;
  }
  bs->rank_cache.push_back({&flat, {}});
  std::vector<int32_t>& ranks = bs->rank_cache.back().ranks;
  ranks.assign(static_cast<size_t>(flat.num_nodes()), 0);
  std::vector<int32_t> stack;
  stack.push_back(0);
  int32_t next_rank = 0;
  while (!stack.empty()) {
    const int32_t node = stack.back();
    stack.pop_back();
    const size_t i = static_cast<size_t>(node);
    ranks[i] = next_rank++;
    switch (flat.node_kind(node)) {
      case FlatNodeKind::kLeaf:
        break;
      case FlatNodeKind::kNumerical:
        stack.push_back(flat.first[i] + 1);
        stack.push_back(flat.first[i]);
        break;
      case FlatNodeKind::kCategorical: {
        const int32_t* children = flat.child_table.data() + flat.first[i];
        for (int32_t v = flat.num_children[i] - 1; v >= 0; --v) {
          if (children[v] >= 0) stack.push_back(children[v]);
        }
        break;
      }
    }
  }
  return ranks;
}

// Effective numerical bounds for `attribute` on a constraint chain. Each
// record stores fully-updated bounds, so the nearest record wins; no
// record means the root default (-inf, +inf].
void LookupNumericalBounds(const std::vector<FlatBatchConstraint>& arena,
                           int32_t head, int32_t attribute, double* lo,
                           double* hi) {
  for (int32_t c = head; c >= 0;
       c = arena[static_cast<size_t>(c)].parent) {
    const FlatBatchConstraint& rec = arena[static_cast<size_t>(c)];
    if (rec.attribute == attribute) {
      *lo = rec.lo;
      *hi = rec.hi;
      return;
    }
  }
  *lo = -kInf;
  *hi = kInf;
}

// Fixed category for `attribute` on a constraint chain, -1 if free.
int32_t LookupCategory(const std::vector<FlatBatchConstraint>& arena,
                       int32_t head, int32_t attribute) {
  for (int32_t c = head; c >= 0;
       c = arena[static_cast<size_t>(c)].parent) {
    const FlatBatchConstraint& rec = arena[static_cast<size_t>(c)];
    if (rec.attribute == attribute) return rec.category;
  }
  return -1;
}

// Regroups the frontier (all items on one BFS level, whose node ids are
// contiguous by construction of FlattenTree) into bs->sorted by node id —
// a counting sort over the level's id range. Grouping turns the dispatch
// switch of the processing loop into long same-kind runs (effectively
// branch-free) and makes the node-record loads stride-1.
void GroupFrontierByNode(FlatBatchScratch* bs) {
  const std::vector<FlatBatchItem>& frontier = bs->frontier;
  int32_t min_id = frontier[0].node;
  int32_t max_id = frontier[0].node;
  for (const FlatBatchItem& item : frontier) {
    min_id = std::min(min_id, item.node);
    max_id = std::max(max_id, item.node);
  }
  const size_t width = static_cast<size_t>(max_id - min_id) + 1;
  std::vector<int32_t>& offsets = bs->group_offsets;
  offsets.assign(width + 1, 0);
  for (const FlatBatchItem& item : frontier) {
    ++offsets[static_cast<size_t>(item.node - min_id) + 1];
  }
  for (size_t g = 1; g <= width; ++g) offsets[g] += offsets[g - 1];
  bs->sorted.resize(frontier.size());
  for (const FlatBatchItem& item : frontier) {
    const size_t slot = static_cast<size_t>(
        offsets[static_cast<size_t>(item.node - min_id)]++);
    bs->sorted[slot] = item;
  }
}

// How far ahead of the processing cursor to issue prefetches. The
// per-item work (a couple of branchless binary searches) comfortably
// covers an L2 latency at this distance.
constexpr size_t kPrefetchAhead = 8;

}  // namespace

void ClassifyFlat(const FlatTree& flat, const UncertainTuple& tuple,
                  FlatTraversalScratch* scratch, double* out) {
  const size_t k = tuple.values.size();
  scratch->lo.assign(k, -kInf);
  scratch->hi.assign(k, kInf);
  scratch->category.assign(k, -1);
  std::fill(out, out + flat.num_classes, 0.0);
  PropagateFlat(flat, tuple, scratch, out);
  Renormalise(flat.num_classes, out);
}

void ClassifyFlatMeans(const FlatTree& flat, const UncertainTuple& tuple,
                       FlatTraversalScratch* scratch, double* out) {
  // Reduce the tuple to its means in place of TupleToMeans: a point-mass
  // pdf makes every ConditionalCdf along the followed path exactly 0 or 1,
  // so the full traversal degenerates to one root-leaf walk with weight
  // exactly 1.0, which is what this kernel executes directly. A certain
  // categorical value likewise puts probability exactly 1.0 on one child.
  const size_t k = tuple.values.size();
  scratch->mean_value.assign(k, 0.0);
  scratch->mean_category.assign(k, -1);
  for (size_t j = 0; j < k; ++j) {
    const UncertainValue& v = tuple.values[j];
    if (v.is_numerical()) {
      scratch->mean_value[j] = v.pdf().Mean();
    } else {
      scratch->mean_category[j] = v.categorical().MostLikely();
    }
  }

  std::fill(out, out + flat.num_classes, 0.0);
  int32_t node = 0;
  for (;;) {
    const size_t i = static_cast<size_t>(node);
    const FlatNodeKind kind = flat.node_kind(node);
    if (kind == FlatNodeKind::kLeaf) {
      const double* dist = flat.leaf_values.data() + flat.first[i];
      for (int c = 0; c < flat.num_classes; ++c) {
        out[c] += 1.0 * dist[c];
      }
      break;
    }
    const size_t j = static_cast<size_t>(flat.attribute[i]);
    if (kind == FlatNodeKind::kCategorical) {
      // A most-likely category beyond the node's arity (a tuple whose
      // categorical pdf is wider than the schema's attribute) behaves like
      // an absent child: in the pointer traversal every in-range category
      // has probability zero, no leaf is reached, and the uniform fallback
      // of the renormalisation applies. Bounds-check rather than read past
      // the child table.
      const int32_t cat = scratch->mean_category[j];
      const int32_t child =
          cat < flat.num_children[i]
              ? flat.child_table[static_cast<size_t>(flat.first[i]) +
                                 static_cast<size_t>(cat)]
              : -1;
      if (child < 0) break;
      node = child;
    } else {
      node = scratch->mean_value[j] <= flat.split_point[i] ? flat.first[i]
                                                           : flat.first[i] + 1;
    }
  }
  Renormalise(flat.num_classes, out);
}

// ----------------------------------------------------- batch kernels
//
// Level-synchronous traversal: instead of finishing one tuple's tree walk
// before starting the next, a frontier of (tuple, node, weight,
// constraint-chain) work items advances one BFS level per round. Every
// round groups the frontier by node id (counting sort over the level's
// contiguous id range), then streams through the groups — same node
// record, same dispatch arm, prefetched tuple data — so the memory system
// sees long regular runs instead of per-tuple pointer chases. Fragments
// that reach leaves are not accumulated on the spot (frontier order is
// level order, not DFS order); they are collected as (tuple, DFS rank,
// leaf, weight) hits and replayed per tuple in rank order, which is
// precisely the scalar kernel's accumulation order. Identical per-split
// arithmetic (shared with the scalar path via pdf/pdf_kernels.h) plus
// identical accumulation order gives output bitwise-identical to n
// ClassifyFlat calls — pinned by tests/batch_traversal_test.cc.
//
// Memory note: the frontier and hit buffers scale with the total number
// of live fragments in the block, where the scalar path only ever holds
// one root-leaf chain. For real trees fragments per tuple are modest; the
// buffers retain capacity across calls.

void ClassifyFlatBatch(const FlatTree& flat,
                       const UncertainTuple* const* tuples,
                       double* const* rows, size_t n,
                       FlatTraversalScratch* scratch) {
  UDT_CHECK(n <= static_cast<size_t>(
                     std::numeric_limits<int32_t>::max()));
  FlatBatchScratch& bs = scratch->batch;
  const std::vector<int32_t>& ranks = DfsRanksFor(flat, &bs);

  bs.frontier.clear();
  bs.constraints.clear();
  bs.hits.clear();
  bs.frontier.reserve(n);
  for (size_t t = 0; t < n; ++t) {
    bs.frontier.push_back({static_cast<int32_t>(t), 0, -1, 1.0});
  }

  while (!bs.frontier.empty()) {
    GroupFrontierByNode(&bs);
    bs.frontier.clear();
    const std::vector<FlatBatchItem>& level = bs.sorted;
    for (size_t idx = 0; idx < level.size(); ++idx) {
      if (idx + kPrefetchAhead < level.size()) {
        const FlatBatchItem& pf = level[idx + kPrefetchAhead];
        UDT_PREFETCH(tuples[pf.tuple]);
        if (flat.node_kind(pf.node) == FlatNodeKind::kLeaf) {
          UDT_PREFETCH(flat.leaf_values.data() +
                       flat.first[static_cast<size_t>(pf.node)]);
        }
      }
      const FlatBatchItem item = level[idx];
      const size_t i = static_cast<size_t>(item.node);
      const FlatNodeKind kind = flat.node_kind(item.node);
      if (kind == FlatNodeKind::kLeaf) {
        bs.hits.push_back({item.tuple, ranks[i], flat.first[i], item.weight});
        continue;
      }

      const int32_t attribute = flat.attribute[i];
      const size_t j = static_cast<size_t>(attribute);
      const UncertainTuple& tuple = *tuples[item.tuple];
      if (kind == FlatNodeKind::kCategorical) {
        const CategoricalPdf& dist = tuple.values[j].categorical();
        const int32_t* children = flat.child_table.data() + flat.first[i];
        const int32_t fixed =
            LookupCategory(bs.constraints, item.constraint, attribute);
        if (fixed >= 0) {
          const int32_t child = children[fixed];
          UDT_DCHECK(child >= 0);
          bs.frontier.push_back(
              {item.tuple, child, item.constraint, item.weight});
          continue;
        }
        for (int32_t v = 0; v < flat.num_children[i]; ++v) {
          const double p = dist.probability(v);
          if (p <= 0.0 || children[v] < 0) continue;
          const double w = item.weight * p;
          // The scalar path lets the child visit's entry guard drop the
          // fragment; dropping it at push time is the same observable
          // behaviour without a dead work item.
          if (w < kMinFractionWeight) continue;
          const int32_t rec = static_cast<int32_t>(bs.constraints.size());
          bs.constraints.push_back(
              {item.constraint, attribute, v, -kInf, kInf});
          bs.frontier.push_back({item.tuple, children[v], rec, w});
        }
        continue;
      }

      double lo;
      double hi;
      LookupNumericalBounds(bs.constraints, item.constraint, attribute, &lo,
                            &hi);
      const SampledPdf& pdf = tuple.values[j].pdf();
      // One fused lockstep evaluation yields both the constrained mass and
      // p_left of the scalar path's ConstrainedMass + ConditionalCdf pair,
      // bit for bit (see pdf/pdf_kernels.h).
      const PdfSplitEval eval =
          PdfEvalNumericalSplit(pdf, lo, hi, flat.split_point[i]);
      if (eval.mass <= 0.0) continue;
      const double w_left = item.weight * eval.p_left;
      if (w_left >= kMinFractionWeight) {
        const int32_t rec = static_cast<int32_t>(bs.constraints.size());
        bs.constraints.push_back({item.constraint, attribute, -1, lo,
                                  std::min(hi, flat.split_point[i])});
        bs.frontier.push_back({item.tuple, flat.first[i], rec, w_left});
      }
      const double w_right = item.weight - w_left;
      if (w_right >= kMinFractionWeight) {
        const int32_t rec = static_cast<int32_t>(bs.constraints.size());
        bs.constraints.push_back({item.constraint, attribute, -1,
                                  std::max(lo, flat.split_point[i]), hi});
        bs.frontier.push_back({item.tuple, flat.first[i] + 1, rec, w_right});
      }
    }
  }

  // Replay the deferred leaf hits in the scalar accumulation order: per
  // tuple, ascending DFS rank. A tuple never holds two fragments on the
  // same node (fragments split onto distinct children), so (tuple, rank)
  // is a strict key and the sort is fully deterministic.
  std::sort(bs.hits.begin(), bs.hits.end(),
            [](const FlatLeafHit& a, const FlatLeafHit& b) {
              return a.tuple != b.tuple ? a.tuple < b.tuple : a.rank < b.rank;
            });
  const int k = flat.num_classes;
  for (size_t t = 0; t < n; ++t) std::fill(rows[t], rows[t] + k, 0.0);
  for (const FlatLeafHit& hit : bs.hits) {
    double* row = rows[hit.tuple];
    const double* dist = flat.leaf_values.data() + hit.leaf_offset;
    for (int c = 0; c < k; ++c) row[c] += hit.weight * dist[c];
  }
  for (size_t t = 0; t < n; ++t) Renormalise(k, rows[t]);
}

void ClassifyFlatMeansBatch(const FlatTree& flat,
                            const UncertainTuple* const* tuples,
                            double* const* rows, size_t n,
                            FlatTraversalScratch* scratch) {
  UDT_CHECK(n <= static_cast<size_t>(
                     std::numeric_limits<int32_t>::max()));
  FlatBatchScratch& bs = scratch->batch;
  const int k = flat.num_classes;

  // Reduce every tuple to its means up front (block-major), exactly the
  // per-attribute reduction of ClassifyFlatMeans; tuples are independent,
  // so computing them batch-first changes nothing.
  const size_t attrs = n > 0 ? tuples[0]->values.size() : 0;
  bs.mean_values.assign(n * attrs, 0.0);
  bs.mean_categories.assign(n * attrs, -1);
  for (size_t t = 0; t < n; ++t) {
    const UncertainTuple& tuple = *tuples[t];
    UDT_DCHECK(tuple.values.size() == attrs);
    for (size_t j = 0; j < attrs; ++j) {
      const UncertainValue& v = tuple.values[j];
      if (v.is_numerical()) {
        bs.mean_values[t * attrs + j] = v.pdf().Mean();
      } else {
        bs.mean_categories[t * attrs + j] =
            v.categorical().MostLikely();
      }
    }
  }

  for (size_t t = 0; t < n; ++t) std::fill(rows[t], rows[t] + k, 0.0);

  // Lockstep single-path walks: each round advances every live tuple one
  // level, compacting finished walkers out in place. Unlike the full UDT
  // kernel there is no grouping pass — a means walk never fragments, so a
  // per-round counting sort would cost more than the one-node advance it
  // organises (measured 2-6x slower than the scalar walk); the dense
  // sweep with prefetch already exposes the memory-level parallelism
  // across tuples. Weight and constraint fields of the items are unused —
  // a means walk carries weight exactly 1.0 and needs no path
  // constraints. Each tuple accumulates at most one leaf, so no rank
  // replay is needed; a tuple whose walk breaks on an absent categorical
  // child accumulates nothing and falls back to the uniform distribution
  // in Renormalise, as in the scalar kernel.
  bs.frontier.clear();
  bs.frontier.reserve(n);
  for (size_t t = 0; t < n; ++t) {
    bs.frontier.push_back({static_cast<int32_t>(t), 0, -1, 1.0});
  }
  size_t live = bs.frontier.size();
  while (live > 0) {
    size_t out = 0;
    for (size_t idx = 0; idx < live; ++idx) {
      if (idx + kPrefetchAhead < live) {
        const FlatBatchItem& pf = bs.frontier[idx + kPrefetchAhead];
        if (flat.node_kind(pf.node) == FlatNodeKind::kLeaf) {
          UDT_PREFETCH(flat.leaf_values.data() +
                       flat.first[static_cast<size_t>(pf.node)]);
        }
      }
      const FlatBatchItem item = bs.frontier[idx];
      const size_t i = static_cast<size_t>(item.node);
      const FlatNodeKind kind = flat.node_kind(item.node);
      if (kind == FlatNodeKind::kLeaf) {
        double* row = rows[item.tuple];
        const double* dist = flat.leaf_values.data() + flat.first[i];
        for (int c = 0; c < k; ++c) row[c] += 1.0 * dist[c];
        continue;
      }
      const size_t j = static_cast<size_t>(flat.attribute[i]);
      const size_t mean_index = static_cast<size_t>(item.tuple) * attrs + j;
      int32_t next;
      if (kind == FlatNodeKind::kCategorical) {
        // Same out-of-arity bounds check as the scalar kernel: a
        // most-likely category beyond the node's child table behaves like
        // an absent child.
        const int32_t cat = bs.mean_categories[mean_index];
        next = cat < flat.num_children[i]
                   ? flat.child_table[static_cast<size_t>(flat.first[i]) +
                                      static_cast<size_t>(cat)]
                   : -1;
        if (next < 0) continue;
      } else {
        next = bs.mean_values[mean_index] <= flat.split_point[i]
                   ? flat.first[i]
                   : flat.first[i] + 1;
      }
      // out <= idx always, so the in-place compaction never overtakes
      // the read cursor.
      bs.frontier[out++] = {item.tuple, next, -1, 1.0};
    }
    live = out;
  }
  for (size_t t = 0; t < n; ++t) Renormalise(k, rows[t]);
}

}  // namespace udt
