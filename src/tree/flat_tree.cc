#include "tree/flat_tree.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <limits>
#include <map>

#include "common/logging.h"
#include "split/fractional_tuple.h"

namespace udt {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Leaf distributions are pooled by exact bit pattern: probabilities that
// compare equal but differ in representation (there are none today, but
// -0.0 vs 0.0 would) must not be merged, or the compiled path could stop
// being bitwise-faithful to the pointer path.
std::vector<uint64_t> BitKey(const std::vector<double>& values) {
  std::vector<uint64_t> key;
  key.reserve(values.size());
  for (double v : values) key.push_back(std::bit_cast<uint64_t>(v));
  return key;
}

}  // namespace

int FlatTree::num_leaves() const {
  int leaves = 0;
  for (uint8_t k : kind) {
    if (static_cast<FlatNodeKind>(k) == FlatNodeKind::kLeaf) ++leaves;
  }
  return leaves;
}

FlatTree FlattenTree(const DecisionTree& tree) {
  FlatTree flat;
  flat.num_classes = tree.schema().num_classes();

  // Pass 1: assign breadth-first ids. The worklist holds pointers in id
  // order; a node's children are appended together, so a numerical node's
  // right child always lands at left-id + 1.
  std::vector<const TreeNode*> order;
  order.push_back(&tree.root());
  for (size_t i = 0; i < order.size(); ++i) {
    const TreeNode* node = order[i];
    if (node->is_leaf()) continue;
    if (node->is_categorical) {
      for (const std::unique_ptr<TreeNode>& child : node->children) {
        if (child != nullptr) order.push_back(child.get());
      }
    } else {
      order.push_back(node->left.get());
      order.push_back(node->right.get());
    }
  }

  const size_t n = order.size();
  flat.kind.reserve(n);
  flat.attribute.reserve(n);
  flat.split_point.reserve(n);
  flat.first.reserve(n);
  flat.num_children.reserve(n);

  // Pass 2: emit records. next_child tracks the id the next enqueued child
  // received in pass 1; the two passes enqueue in identical order.
  std::map<std::vector<uint64_t>, int32_t> pooled_leaves;
  int32_t next_child = 1;
  for (const TreeNode* node : order) {
    if (node->is_leaf()) {
      flat.kind.push_back(static_cast<uint8_t>(FlatNodeKind::kLeaf));
      flat.attribute.push_back(-1);
      flat.split_point.push_back(0.0);
      flat.num_children.push_back(0);
      auto [it, inserted] = pooled_leaves.emplace(
          BitKey(node->distribution),
          static_cast<int32_t>(flat.leaf_values.size()));
      if (inserted) {
        flat.leaf_values.insert(flat.leaf_values.end(),
                                node->distribution.begin(),
                                node->distribution.end());
      }
      flat.first.push_back(it->second);
      continue;
    }
    flat.attribute.push_back(node->attribute);
    if (node->is_categorical) {
      flat.kind.push_back(static_cast<uint8_t>(FlatNodeKind::kCategorical));
      flat.split_point.push_back(0.0);
      flat.first.push_back(static_cast<int32_t>(flat.child_table.size()));
      flat.num_children.push_back(static_cast<int32_t>(node->children.size()));
      for (const std::unique_ptr<TreeNode>& child : node->children) {
        flat.child_table.push_back(child != nullptr ? next_child++ : -1);
      }
    } else {
      flat.kind.push_back(static_cast<uint8_t>(FlatNodeKind::kNumerical));
      flat.split_point.push_back(node->split_point);
      flat.first.push_back(next_child);
      flat.num_children.push_back(0);
      next_child += 2;
    }
  }
  UDT_DCHECK(static_cast<size_t>(next_child) == n);
  return flat;
}

// ---------------------------------------------------------------- kernels
//
// PropagateFlat mirrors the Propagate recursion of tree/classify.cc
// statement for statement, reading struct-of-arrays records instead of
// chasing TreeNode pointers. Identical control flow over identical
// constraint state means the identical sequence of ConstrainedMass /
// ConditionalCdf evaluations, weight products and leaf accumulations — the
// bitwise guarantee. The only per-tuple storage is the constraint arrays
// in the reusable scratch; recursion locals live on the machine stack, so
// the kernel performs no heap allocation.

namespace {

void PropagateFlat(const FlatTree& flat, const UncertainTuple& tuple,
                   int32_t node, double weight, FlatTraversalScratch* scratch,
                   double* out) {
  if (weight < kMinFractionWeight) return;
  const size_t i = static_cast<size_t>(node);
  const FlatNodeKind kind = flat.node_kind(node);
  if (kind == FlatNodeKind::kLeaf) {
    const double* dist = flat.leaf_values.data() + flat.first[i];
    for (int c = 0; c < flat.num_classes; ++c) {
      out[c] += weight * dist[c];
    }
    return;
  }

  const size_t j = static_cast<size_t>(flat.attribute[i]);
  if (kind == FlatNodeKind::kCategorical) {
    const CategoricalPdf& dist = tuple.values[j].categorical();
    const int32_t* children = flat.child_table.data() + flat.first[i];
    if (scratch->category[j] >= 0) {
      const int32_t child = children[scratch->category[j]];
      UDT_DCHECK(child >= 0);
      PropagateFlat(flat, tuple, child, weight, scratch, out);
      return;
    }
    for (int32_t v = 0; v < flat.num_children[i]; ++v) {
      double p = dist.probability(v);
      if (p <= 0.0 || children[v] < 0) continue;
      scratch->category[j] = v;
      PropagateFlat(flat, tuple, children[v], weight * p, scratch, out);
      scratch->category[j] = -1;
    }
    return;
  }

  const SampledPdf& pdf = tuple.values[j].pdf();
  double mass = ConstrainedMass(pdf, scratch->lo[j], scratch->hi[j]);
  if (mass <= 0.0) return;
  double p_left =
      ConditionalCdf(pdf, scratch->lo[j], scratch->hi[j], flat.split_point[i]);

  double w_left = weight * p_left;
  if (w_left >= kMinFractionWeight) {
    double saved_hi = scratch->hi[j];
    scratch->hi[j] = std::min(saved_hi, flat.split_point[i]);
    PropagateFlat(flat, tuple, flat.first[i], w_left, scratch, out);
    scratch->hi[j] = saved_hi;
  }
  double w_right = weight - w_left;
  if (w_right >= kMinFractionWeight) {
    double saved_lo = scratch->lo[j];
    scratch->lo[j] = std::max(saved_lo, flat.split_point[i]);
    PropagateFlat(flat, tuple, flat.first[i] + 1, w_right, scratch, out);
    scratch->lo[j] = saved_lo;
  }
}

// The final renormalisation, identical to ClassifyDistribution's epilogue.
void Renormalise(int num_classes, double* out) {
  double total = 0.0;
  for (int c = 0; c < num_classes; ++c) total += out[c];
  if (total > 0.0) {
    for (int c = 0; c < num_classes; ++c) out[c] /= total;
  } else {
    for (int c = 0; c < num_classes; ++c) {
      out[c] = 1.0 / static_cast<double>(num_classes);
    }
  }
}

}  // namespace

void ClassifyFlat(const FlatTree& flat, const UncertainTuple& tuple,
                  FlatTraversalScratch* scratch, double* out) {
  const size_t k = tuple.values.size();
  scratch->lo.assign(k, -kInf);
  scratch->hi.assign(k, kInf);
  scratch->category.assign(k, -1);
  std::fill(out, out + flat.num_classes, 0.0);
  PropagateFlat(flat, tuple, 0, 1.0, scratch, out);
  Renormalise(flat.num_classes, out);
}

void ClassifyFlatMeans(const FlatTree& flat, const UncertainTuple& tuple,
                       FlatTraversalScratch* scratch, double* out) {
  // Reduce the tuple to its means in place of TupleToMeans: a point-mass
  // pdf makes every ConditionalCdf along the followed path exactly 0 or 1,
  // so the full traversal degenerates to one root-leaf walk with weight
  // exactly 1.0, which is what this kernel executes directly. A certain
  // categorical value likewise puts probability exactly 1.0 on one child.
  const size_t k = tuple.values.size();
  scratch->mean_value.assign(k, 0.0);
  scratch->mean_category.assign(k, -1);
  for (size_t j = 0; j < k; ++j) {
    const UncertainValue& v = tuple.values[j];
    if (v.is_numerical()) {
      scratch->mean_value[j] = v.pdf().Mean();
    } else {
      scratch->mean_category[j] = v.categorical().MostLikely();
    }
  }

  std::fill(out, out + flat.num_classes, 0.0);
  int32_t node = 0;
  for (;;) {
    const size_t i = static_cast<size_t>(node);
    const FlatNodeKind kind = flat.node_kind(node);
    if (kind == FlatNodeKind::kLeaf) {
      const double* dist = flat.leaf_values.data() + flat.first[i];
      for (int c = 0; c < flat.num_classes; ++c) {
        out[c] += 1.0 * dist[c];
      }
      break;
    }
    const size_t j = static_cast<size_t>(flat.attribute[i]);
    if (kind == FlatNodeKind::kCategorical) {
      // A most-likely category beyond the node's arity (a tuple whose
      // categorical pdf is wider than the schema's attribute) behaves like
      // an absent child: in the pointer traversal every in-range category
      // has probability zero, no leaf is reached, and the uniform fallback
      // of the renormalisation applies. Bounds-check rather than read past
      // the child table.
      const int32_t cat = scratch->mean_category[j];
      const int32_t child =
          cat < flat.num_children[i]
              ? flat.child_table[static_cast<size_t>(flat.first[i]) +
                                 static_cast<size_t>(cat)]
              : -1;
      if (child < 0) break;
      node = child;
    } else {
      node = scratch->mean_value[j] <= flat.split_point[i] ? flat.first[i]
                                                           : flat.first[i] + 1;
    }
  }
  Renormalise(flat.num_classes, out);
}

}  // namespace udt
