#include "tree/flat_tree_io.h"

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "common/string_util.h"

namespace udt {
namespace {

// Hostile-header allocation caps. Node counts get the common declared-count
// bound; table entries get a higher cap because Serialize writes them
// unbounded (child slots scale with nodes x arity, leaf doubles with
// leaves x classes), so Load must accept any artifact Save can produce
// while still refusing allocations a hostile header could demand (the cap
// bounds each table at half a gigabyte).
constexpr int kMaxDeclaredCount = 1 << 20;
constexpr long long kMaxTableCount = 1ll << 26;

// Reads one table line of exactly `count` space-separated tokens parsed by
// `parse_one`. Serialize writes each table on a single line; a count
// mismatch (a truncated or padded table) fails with the reader's absolute
// line number. A zero-entry table writes no line at all, so none is read.
template <typename T, typename Parser>
Status ReadTokenLine(LineReader* reader, size_t count, const char* what,
                     Parser parse_one, std::vector<T>* out) {
  out->clear();
  out->reserve(count);
  if (count == 0) return Status::OK();
  UDT_RETURN_NOT_OK(reader->Next(StrFormat("%s table", what)));
  const std::vector<std::string> tokens = SplitString(reader->line(), ' ');
  if (tokens.size() != count) {
    return reader->Error(StrFormat("%s table holds %zu entries, expected %zu",
                                   what, tokens.size(), count));
  }
  for (const std::string& token : tokens) {
    std::optional<T> value = parse_one(token);
    if (!value) {
      return reader->Error(
          StrFormat("bad %s entry: %s", what, token.c_str()));
    }
    out->push_back(*value);
  }
  return Status::OK();
}

std::optional<int32_t> ParseInt32(const std::string& token) {
  // ParseInt rejects negatives; the tables use -1 as the null marker.
  if (!token.empty() && token[0] == '-') {
    std::optional<int> v = ParseInt(std::string_view(token).substr(1));
    if (!v) return std::nullopt;
    return static_cast<int32_t>(-*v);
  }
  std::optional<int> v = ParseInt(token);
  if (!v) return std::nullopt;
  return static_cast<int32_t>(*v);
}

}  // namespace

void WriteFlatTreeBody(const FlatTree& flat, std::ostream& out) {
  out << StrFormat("tables nodes=%d children=%zu leaves=%zu\n",
                   flat.num_nodes(), flat.child_table.size(),
                   flat.leaf_values.size());
  // One record per line: kind attribute split first num_children. The
  // split point is a hexfloat so the load-side layout is bit-identical.
  for (int i = 0; i < flat.num_nodes(); ++i) {
    const size_t ui = static_cast<size_t>(i);
    out << StrFormat("n %d %d %a %d %d\n", static_cast<int>(flat.kind[ui]),
                     flat.attribute[ui], flat.split_point[ui], flat.first[ui],
                     flat.num_children[ui]);
  }
  for (size_t i = 0; i < flat.child_table.size(); ++i) {
    out << flat.child_table[i]
        << (i + 1 == flat.child_table.size() ? "\n" : " ");
  }
  for (size_t i = 0; i < flat.leaf_values.size(); ++i) {
    out << StrFormat("%a", flat.leaf_values[i])
        << (i + 1 == flat.leaf_values.size() ? "\n" : " ");
  }
}

StatusOr<FlatTree> ReadFlatTreeBody(LineReader* reader, int num_classes) {
  UDT_RETURN_NOT_OK(reader->Next("tables"));
  int num_nodes = -1;
  long long num_child_entries = -1;
  long long num_leaf_values = -1;
  if (std::sscanf(reader->line().c_str(),
                  "tables nodes=%d children=%lld leaves=%lld", &num_nodes,
                  &num_child_entries, &num_leaf_values) != 3 ||
      num_nodes < 1 || num_nodes > kMaxDeclaredCount ||
      num_child_entries < 0 || num_child_entries > kMaxTableCount ||
      num_leaf_values < 0 || num_leaf_values > kMaxTableCount) {
    return reader->Error("bad tables line: " + reader->line());
  }

  FlatTree flat;
  flat.num_classes = num_classes;
  flat.kind.reserve(static_cast<size_t>(num_nodes));
  flat.attribute.reserve(static_cast<size_t>(num_nodes));
  flat.split_point.reserve(static_cast<size_t>(num_nodes));
  flat.first.reserve(static_cast<size_t>(num_nodes));
  flat.num_children.reserve(static_cast<size_t>(num_nodes));
  for (int i = 0; i < num_nodes; ++i) {
    UDT_RETURN_NOT_OK(reader->Next("node record"));
    const std::string& line = reader->line();
    std::vector<std::string> fields = SplitString(line, ' ');
    if (fields.size() != 6 || fields[0] != "n") {
      return reader->Error("bad node record: " + line);
    }
    std::optional<int> node_kind = ParseInt(fields[1]);
    std::optional<int32_t> attribute = ParseInt32(fields[2]);
    std::optional<double> split = ParseDouble(fields[3]);
    std::optional<int32_t> first = ParseInt32(fields[4]);
    std::optional<int32_t> children = ParseInt32(fields[5]);
    if (!node_kind || *node_kind < 0 || *node_kind > 2 || !attribute ||
        !split || !first || !children) {
      return reader->Error("bad node record: " + line);
    }
    flat.kind.push_back(static_cast<uint8_t>(*node_kind));
    flat.attribute.push_back(*attribute);
    flat.split_point.push_back(*split);
    flat.first.push_back(*first);
    flat.num_children.push_back(*children);
  }

  UDT_RETURN_NOT_OK(ReadTokenLine(
      reader, static_cast<size_t>(num_child_entries), "child",
      [](const std::string& t) { return ParseInt32(t); }, &flat.child_table));
  UDT_RETURN_NOT_OK(ReadTokenLine(
      reader, static_cast<size_t>(num_leaf_values), "leaf",
      [](const std::string& t) { return ParseDouble(t); }, &flat.leaf_values));
  return flat;
}

Status ValidateFlatTree(const FlatTree& flat, const Schema& schema,
                        const std::string& context) {
  const int n = flat.num_nodes();
  if (n < 1) return Status::InvalidArgument(context + ": empty tree");
  if (flat.num_classes != schema.num_classes()) {
    return Status::InvalidArgument(context + ": class count mismatch");
  }
  const size_t un = static_cast<size_t>(n);
  if (flat.attribute.size() != un || flat.split_point.size() != un ||
      flat.first.size() != un || flat.num_children.size() != un) {
    return Status::InvalidArgument(context + ": ragged node arrays");
  }
  if (flat.leaf_values.size() % static_cast<size_t>(flat.num_classes) != 0) {
    return Status::InvalidArgument(context + ": ragged leaf table");
  }
  for (int i = 0; i < n; ++i) {
    const size_t ui = static_cast<size_t>(i);
    const int32_t first = flat.first[ui];
    switch (static_cast<FlatNodeKind>(flat.kind[ui])) {
      case FlatNodeKind::kLeaf:
        if (flat.attribute[ui] != -1) {
          return Status::InvalidArgument(context + ": leaf with attribute");
        }
        if (first < 0 ||
            static_cast<size_t>(first) + static_cast<size_t>(flat.num_classes) >
                flat.leaf_values.size()) {
          return Status::InvalidArgument(context +
                                         ": leaf offset out of range");
        }
        break;
      case FlatNodeKind::kNumerical: {
        const int32_t attr = flat.attribute[ui];
        if (attr < 0 || attr >= schema.num_attributes() ||
            schema.attribute(attr).kind != AttributeKind::kNumerical) {
          return Status::InvalidArgument(context +
                                         ": bad numerical attribute id");
        }
        // 64-bit compare: first can be INT32_MAX in a hostile file, and
        // first + 1 must not wrap past the check.
        if (first <= i || static_cast<int64_t>(first) + 1 >= n) {
          return Status::InvalidArgument(context +
                                         ": numerical child out of range");
        }
        break;
      }
      case FlatNodeKind::kCategorical: {
        const int32_t attr = flat.attribute[ui];
        if (attr < 0 || attr >= schema.num_attributes() ||
            schema.attribute(attr).kind != AttributeKind::kCategorical) {
          return Status::InvalidArgument(context +
                                         ": bad categorical attribute id");
        }
        const int32_t arity = flat.num_children[ui];
        if (arity < 1 || arity != schema.attribute(attr).num_categories) {
          return Status::InvalidArgument(context + ": bad arity");
        }
        if (first < 0 || static_cast<size_t>(first) +
                             static_cast<size_t>(arity) >
                             flat.child_table.size()) {
          return Status::InvalidArgument(context +
                                         ": child-table offset out of range");
        }
        for (int32_t v = 0; v < arity; ++v) {
          const int32_t child =
              flat.child_table[static_cast<size_t>(first + v)];
          if (child != -1 && (child <= i || child >= n)) {
            return Status::InvalidArgument(
                context + ": categorical child out of range");
          }
        }
        break;
      }
      default:
        return Status::InvalidArgument(context + ": unknown node kind");
    }
  }
  return Status::OK();
}

}  // namespace udt
