// The decision-tree model (Section 3): binary tests "v <= z" on numerical
// attributes, n-ary tests on categorical attributes (Section 7.2), and a
// class-probability distribution P_m at every leaf. Internal nodes keep
// their training class counts so post-pruning can turn them into leaves.

#ifndef UDT_TREE_TREE_H_
#define UDT_TREE_TREE_H_

#include <memory>
#include <vector>

#include "table/attribute.h"

namespace udt {

// One node. A leaf has attribute == kLeaf; a numerical internal node uses
// left/right; a categorical internal node uses children (one per category).
struct TreeNode {
  static constexpr int kLeaf = -1;

  int attribute = kLeaf;
  bool is_categorical = false;
  double split_point = 0.0;

  std::unique_ptr<TreeNode> left;
  std::unique_ptr<TreeNode> right;
  std::vector<std::unique_ptr<TreeNode>> children;

  // Weighted training class counts that reached this node, and their
  // normalised form (the leaf distribution P_m; kept on internal nodes for
  // pruning and diagnostics).
  std::vector<double> class_counts;
  std::vector<double> distribution;

  bool is_leaf() const { return attribute == kLeaf; }

  // Turns this node into a leaf, discarding any subtree.
  void MakeLeaf();
};

// An immutable-after-build decision tree plus the schema it was built on.
class DecisionTree {
 public:
  DecisionTree(Schema schema, std::unique_ptr<TreeNode> root);

  DecisionTree(DecisionTree&&) = default;
  DecisionTree& operator=(DecisionTree&&) = default;

  const Schema& schema() const { return schema_; }
  const TreeNode& root() const { return *root_; }
  TreeNode* mutable_root() { return root_.get(); }

  // Structure statistics.
  int num_nodes() const;
  int num_leaves() const;
  int depth() const;  // a lone leaf has depth 1

 private:
  Schema schema_;
  std::unique_ptr<TreeNode> root_;
};

}  // namespace udt

#endif  // UDT_TREE_TREE_H_
