#include "tree/rules.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"
#include "split/fractional_tuple.h"
#include "tree/classify.h"

namespace udt {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

double Rule::MatchProbability(const UncertainTuple& tuple) const {
  double probability = 1.0;
  for (const RuleCondition& condition : conditions) {
    const UncertainValue& value =
        tuple.values[static_cast<size_t>(condition.attribute)];
    if (condition.is_categorical) {
      probability *= value.categorical().probability(condition.category);
    } else {
      probability *= value.pdf().MassInHalfOpen(condition.lower,
                                                condition.upper);
    }
    if (probability <= 0.0) return 0.0;
  }
  return probability;
}

std::string Rule::ToString(const Schema& schema) const {
  std::string out = "IF ";
  if (conditions.empty()) out += "(always) ";
  for (size_t i = 0; i < conditions.size(); ++i) {
    const RuleCondition& c = conditions[i];
    if (i > 0) out += "AND ";
    const std::string& name = schema.attribute(c.attribute).name;
    if (c.is_categorical) {
      out += StrFormat("%s = %d ", name.c_str(), c.category);
    } else if (c.lower == -kInf) {
      out += StrFormat("%s <= %g ", name.c_str(), c.upper);
    } else if (c.upper == kInf) {
      out += StrFormat("%s > %g ", name.c_str(), c.lower);
    } else {
      out += StrFormat("%g < %s <= %g ", c.lower, name.c_str(), c.upper);
    }
  }
  out += StrFormat("THEN %s (conf %.3f, sup %.2f)",
                   schema.class_name(predicted_class).c_str(), confidence,
                   support);
  return out;
}

namespace {

struct PathState {
  // Current numerical interval per attribute and fixed categories.
  std::vector<double> lower;
  std::vector<double> upper;
  std::vector<int> category;
};

void EmitRule(const Schema& schema, const TreeNode& leaf,
              const PathState& path, std::vector<Rule>* rules) {
  Rule rule;
  for (int j = 0; j < schema.num_attributes(); ++j) {
    size_t js = static_cast<size_t>(j);
    if (schema.attribute(j).kind == AttributeKind::kCategorical) {
      if (path.category[js] >= 0) {
        RuleCondition condition;
        condition.attribute = j;
        condition.is_categorical = true;
        condition.category = path.category[js];
        rule.conditions.push_back(condition);
      }
      continue;
    }
    if (path.lower[js] != -kInf || path.upper[js] != kInf) {
      RuleCondition condition;
      condition.attribute = j;
      condition.lower = path.lower[js];
      condition.upper = path.upper[js];
      rule.conditions.push_back(condition);
    }
  }
  rule.distribution = leaf.distribution;
  rule.predicted_class = ArgMax(leaf.distribution);
  rule.confidence =
      leaf.distribution[static_cast<size_t>(rule.predicted_class)];
  rule.support = 0.0;
  for (double c : leaf.class_counts) rule.support += c;
  rules->push_back(std::move(rule));
}

void Walk(const Schema& schema, const TreeNode& node, PathState* path,
          std::vector<Rule>* rules) {
  if (node.is_leaf()) {
    EmitRule(schema, node, *path, rules);
    return;
  }
  size_t j = static_cast<size_t>(node.attribute);
  if (node.is_categorical) {
    int saved = path->category[j];
    for (size_t v = 0; v < node.children.size(); ++v) {
      if (node.children[v] == nullptr) continue;
      // A path contradicting an ancestor's category carries zero mass.
      if (saved >= 0 && static_cast<int>(v) != saved) continue;
      path->category[j] = static_cast<int>(v);
      Walk(schema, *node.children[v], path, rules);
    }
    path->category[j] = saved;
    return;
  }
  double saved_upper = path->upper[j];
  path->upper[j] = std::min(saved_upper, node.split_point);
  if (path->lower[j] < path->upper[j]) {  // skip zero-mass paths
    Walk(schema, *node.left, path, rules);
  }
  path->upper[j] = saved_upper;

  double saved_lower = path->lower[j];
  path->lower[j] = std::max(saved_lower, node.split_point);
  if (path->lower[j] < path->upper[j]) {
    Walk(schema, *node.right, path, rules);
  }
  path->lower[j] = saved_lower;
}

}  // namespace

RuleSet RuleSet::FromTree(const DecisionTree& tree) {
  const Schema& schema = tree.schema();
  PathState path;
  size_t k = static_cast<size_t>(schema.num_attributes());
  path.lower.assign(k, -kInf);
  path.upper.assign(k, kInf);
  path.category.assign(k, -1);
  std::vector<Rule> rules;
  Walk(schema, tree.root(), &path, &rules);
  return RuleSet(schema, std::move(rules));
}

std::vector<double> RuleSet::ClassifyDistribution(
    const UncertainTuple& tuple) const {
  std::vector<double> out(static_cast<size_t>(schema_.num_classes()), 0.0);
  for (const Rule& rule : rules_) {
    double p = rule.MatchProbability(tuple);
    if (p <= 0.0) continue;
    for (size_t c = 0; c < out.size(); ++c) {
      out[c] += p * rule.distribution[c];
    }
  }
  double total = 0.0;
  for (double v : out) total += v;
  if (total > 0.0) {
    for (double& v : out) v /= total;
  } else {
    for (double& v : out) v = 1.0 / static_cast<double>(out.size());
  }
  return out;
}

int RuleSet::Predict(const UncertainTuple& tuple) const {
  return ArgMax(ClassifyDistribution(tuple));
}

std::string RuleSet::ToString() const {
  std::vector<const Rule*> ordered;
  ordered.reserve(rules_.size());
  for (const Rule& rule : rules_) ordered.push_back(&rule);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Rule* a, const Rule* b) {
                     return a->support > b->support;
                   });
  std::string out;
  for (const Rule* rule : ordered) {
    out += rule->ToString(schema_);
    out += '\n';
  }
  return out;
}

}  // namespace udt
