// Flat, cache-friendly decision-tree layout for serving. FlattenTree turns
// the pointer-linked TreeNode graph into a struct-of-arrays record block:
// one record per node in breadth-first order (root at index 0, every node's
// children contiguous), split thresholds and attribute ids in parallel
// arrays, and all leaf class distributions pooled into one table (identical
// distributions are stored once). The flat classification kernels below
// replay the recursive traversal of tree/classify.cc with an explicit
// operation stack over reusable scratch, performing the same floating-point
// operations in the same order — their output is bitwise-identical to
// ClassifyDistribution on the source tree, by construction and by test
// (tests/predict_session_test.cc).

#ifndef UDT_TREE_FLAT_TREE_H_
#define UDT_TREE_FLAT_TREE_H_

#include <cstdint>
#include <vector>

#include "table/dataset.h"
#include "tree/tree.h"

namespace udt {

// Discriminates the three node-record shapes of a FlatTree.
enum class FlatNodeKind : uint8_t {
  kLeaf = 0,
  kNumerical = 1,
  kCategorical = 2,
};

// The serving-side tree: parallel per-node arrays plus two pooled tables.
// Plain data, movable and copyable; CompiledModel wraps it immutably.
struct FlatTree {
  int num_classes = 0;

  // ------------------------------------------------- per-node records
  // All vectors below have one entry per node, breadth-first, root first.

  std::vector<uint8_t> kind;        // FlatNodeKind
  std::vector<int32_t> attribute;   // tested attribute; -1 for leaves
  std::vector<double> split_point;  // numerical nodes; 0 otherwise

  // Kind-dependent index:
  //  * leaf        -> offset of the node's distribution in leaf_values
  //  * numerical   -> id of the left child (the right child is first[i]+1)
  //  * categorical -> offset of the node's child ids in child_table
  std::vector<int32_t> first;

  // Categorical arity (number of child_table slots); 0 for other kinds.
  std::vector<int32_t> num_children;

  // --------------------------------------------------- pooled tables

  // Child ids of categorical nodes; -1 marks an absent (null) child.
  std::vector<int32_t> child_table;

  // Leaf class distributions, num_classes doubles per pooled entry.
  // Leaves with bitwise-identical distributions share one entry.
  std::vector<double> leaf_values;

  int num_nodes() const { return static_cast<int>(kind.size()); }
  int num_leaves() const;

  FlatNodeKind node_kind(int i) const {
    return static_cast<FlatNodeKind>(kind[static_cast<size_t>(i)]);
  }
};

// Flattens `tree` breadth-first. The result classifies bitwise-identically
// to the source tree through the kernels below.
FlatTree FlattenTree(const DecisionTree& tree);

// Reusable per-worker traversal state. One instance supports any number of
// sequential Classify* calls; after the first call on a given tree/schema
// shape the kernels perform no heap allocation (all buffers retain their
// capacity). Not thread-safe — use one scratch per worker thread.
struct FlatTraversalScratch {
  // Per-attribute path constraints, identical to classify.cc's
  // TraversalState: the tuple's pdf conditioned to (lo, hi] per numerical
  // attribute, fixed category per categorical attribute. The fractional
  // masses themselves ride the machine stack of the traversal recursion.
  std::vector<double> lo;
  std::vector<double> hi;
  std::vector<int> category;

  // Means cache for the averaging fast path.
  std::vector<double> mean_value;
  std::vector<int> mean_category;
};

// Full distribution-based classification (UDT traversal, Section 3.2) over
// the flat layout. Writes the normalised class distribution into
// out[0..num_classes); bitwise-identical to ClassifyDistribution(tree,
// tuple) on the source tree.
void ClassifyFlat(const FlatTree& flat, const UncertainTuple& tuple,
                  FlatTraversalScratch* scratch, double* out);

// Averaging classification (AVG, Section 4.1): reduces the tuple to its
// means in scratch (no tuple materialised) and follows the single resulting
// root-leaf path. Bitwise-identical to ClassifyDistribution(tree,
// TupleToMeans(tuple)).
void ClassifyFlatMeans(const FlatTree& flat, const UncertainTuple& tuple,
                       FlatTraversalScratch* scratch, double* out);

}  // namespace udt

#endif  // UDT_TREE_FLAT_TREE_H_
