// Flat, cache-friendly decision-tree layout for serving. FlattenTree turns
// the pointer-linked TreeNode graph into a struct-of-arrays record block:
// one record per node in breadth-first order (root at index 0, every node's
// children contiguous), split thresholds and attribute ids in parallel
// arrays, and all leaf class distributions pooled into one table (identical
// distributions are stored once). The flat classification kernels below
// replay the recursive traversal of tree/classify.cc with an explicit
// operation stack over reusable scratch, performing the same floating-point
// operations in the same order — their output is bitwise-identical to
// ClassifyDistribution on the source tree, by construction and by test
// (tests/predict_session_test.cc).

#ifndef UDT_TREE_FLAT_TREE_H_
#define UDT_TREE_FLAT_TREE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "table/dataset.h"
#include "tree/tree.h"

namespace udt {

// Discriminates the three node-record shapes of a FlatTree.
enum class FlatNodeKind : uint8_t {
  kLeaf = 0,
  kNumerical = 1,
  kCategorical = 2,
};

// The serving-side tree: parallel per-node arrays plus two pooled tables.
// Plain data, movable and copyable; CompiledModel wraps it immutably.
struct FlatTree {
  int num_classes = 0;

  // ------------------------------------------------- per-node records
  // All vectors below have one entry per node, breadth-first, root first.

  std::vector<uint8_t> kind;        // FlatNodeKind
  std::vector<int32_t> attribute;   // tested attribute; -1 for leaves
  std::vector<double> split_point;  // numerical nodes; 0 otherwise

  // Kind-dependent index:
  //  * leaf        -> offset of the node's distribution in leaf_values
  //  * numerical   -> id of the left child (the right child is first[i]+1)
  //  * categorical -> offset of the node's child ids in child_table
  std::vector<int32_t> first;

  // Categorical arity (number of child_table slots); 0 for other kinds.
  std::vector<int32_t> num_children;

  // --------------------------------------------------- pooled tables

  // Child ids of categorical nodes; -1 marks an absent (null) child.
  std::vector<int32_t> child_table;

  // Leaf class distributions, num_classes doubles per pooled entry.
  // Leaves with bitwise-identical distributions share one entry.
  std::vector<double> leaf_values;

  int num_nodes() const { return static_cast<int>(kind.size()); }
  int num_leaves() const;

  FlatNodeKind node_kind(int i) const {
    return static_cast<FlatNodeKind>(kind[static_cast<size_t>(i)]);
  }
};

// Flattens `tree` breadth-first. The result classifies bitwise-identically
// to the source tree through the kernels below.
FlatTree FlattenTree(const DecisionTree& tree);

// One deferred operation of the scalar traversal's explicit stack: visit a
// node with a fractional weight, or set/restore one per-attribute path
// constraint. The stack replays the former recursion's statement order
// exactly, but with O(depth) heap instead of O(depth) machine stack — deep
// degenerate trees can no longer overflow the native stack.
struct FlatTraversalOp {
  enum Kind : uint8_t { kVisit = 0, kSetLo = 1, kSetHi = 2, kSetCategory = 3 };
  uint8_t kind;
  int32_t node_or_attribute;  // node id for kVisit, attribute otherwise
  int32_t category;           // kSetCategory payload
  double value;               // weight for kVisit, bound for kSetLo/kSetHi
};

// ----------------------------------------------------- batch work items
// State of the level-synchronous batch kernel (ClassifyFlatBatch below).
// All per-item path state is explicit data: a frontier of (tuple, node,
// weight, constraint-chain) work items advances one tree level at a time.

// One in-flight tuple fragment of the batch frontier.
struct FlatBatchItem {
  int32_t tuple;       // index into the batch block
  int32_t node;        // node the fragment sits on
  int32_t constraint;  // head of its constraint chain, -1 for none
  double weight;       // fractional mass carried by the fragment
};

// Path-copied constraint record. Each descent appends one record holding
// the attribute's fully-updated bounds (or fixed category), so a lookup
// only needs the nearest record for that attribute; chains share ancestor
// records structurally (an arena of records, never freed mid-batch).
struct FlatBatchConstraint {
  int32_t parent;     // previous record on the path, -1 terminates
  int32_t attribute;  // attribute this record constrains
  int32_t category;   // fixed category; -1 for numerical records
  double lo;          // numerical (lo, hi] interval
  double hi;
};

// A fragment that reached a leaf. Accumulation is deferred and replayed in
// DFS-preorder rank order per tuple, which is exactly the order the scalar
// depth-first traversal adds leaf distributions — the float-summation
// order that makes the batch kernel bitwise-identical to the scalar one.
struct FlatLeafHit {
  int32_t tuple;
  int32_t rank;         // DFS-preorder rank of the leaf node
  int32_t leaf_offset;  // offset of its distribution in leaf_values
  double weight;
};

// Reusable buffers of the batch kernels. Lifetime contract for the rank
// cache: every distinct FlatTree pointer classified through one scratch
// must stay alive (and unmoved) for the scratch's lifetime — true for
// sessions, which co-own their compiled artifact; direct kernel callers
// juggling short-lived trees should use a fresh scratch per tree.
struct FlatBatchScratch {
  std::vector<FlatBatchItem> frontier;
  std::vector<FlatBatchItem> sorted;  // frontier grouped by node id
  std::vector<int32_t> group_offsets;
  std::vector<FlatBatchConstraint> constraints;
  std::vector<FlatLeafHit> hits;

  // Shard-local gather buffers the sessions use to assemble the kernels'
  // pointer-array arguments without per-call allocation.
  std::vector<const UncertainTuple*> tuple_ptrs;
  std::vector<double*> row_ptrs;

  // Batch means cache for the averaging fast path (block-major).
  std::vector<double> mean_values;
  std::vector<int32_t> mean_categories;

  // DFS-preorder node ranks, one entry per tree seen by this scratch.
  struct RankCacheEntry {
    const FlatTree* tree;
    std::vector<int32_t> ranks;
  };
  std::vector<RankCacheEntry> rank_cache;
};

// Reusable per-worker traversal state. One instance supports any number of
// sequential Classify* calls; after the first call on a given tree/schema
// shape the kernels perform no heap allocation (all buffers retain their
// capacity). Not thread-safe — use one scratch per worker thread.
struct FlatTraversalScratch {
  // Per-attribute path constraints, identical to classify.cc's
  // TraversalState: the tuple's pdf conditioned to (lo, hi] per numerical
  // attribute, fixed category per categorical attribute. The fractional
  // masses ride the explicit op stack below (not the machine stack).
  std::vector<double> lo;
  std::vector<double> hi;
  std::vector<int> category;

  // The scalar traversal's explicit operation stack.
  std::vector<FlatTraversalOp> ops;

  // Means cache for the averaging fast path.
  std::vector<double> mean_value;
  std::vector<int> mean_category;

  // Level-synchronous batch kernel state.
  FlatBatchScratch batch;
};

// Full distribution-based classification (UDT traversal, Section 3.2) over
// the flat layout. Writes the normalised class distribution into
// out[0..num_classes); bitwise-identical to ClassifyDistribution(tree,
// tuple) on the source tree.
void ClassifyFlat(const FlatTree& flat, const UncertainTuple& tuple,
                  FlatTraversalScratch* scratch, double* out);

// Averaging classification (AVG, Section 4.1): reduces the tuple to its
// means in scratch (no tuple materialised) and follows the single resulting
// root-leaf path. Bitwise-identical to ClassifyDistribution(tree,
// TupleToMeans(tuple)).
void ClassifyFlatMeans(const FlatTree& flat, const UncertainTuple& tuple,
                       FlatTraversalScratch* scratch, double* out);

// Level-synchronous batch form of ClassifyFlat: classifies tuples[0..n)
// in one traversal whose frontier advances level by level, grouped by
// node for branch-free dispatch and prefetching. Writes tuple t's
// normalised distribution into rows[t][0..num_classes). The output is
// bitwise-identical to n sequential ClassifyFlat calls (deferred leaf
// hits are replayed in the scalar DFS accumulation order); pinned by
// tests/batch_traversal_test.cc.
void ClassifyFlatBatch(const FlatTree& flat,
                       const UncertainTuple* const* tuples,
                       double* const* rows, size_t n,
                       FlatTraversalScratch* scratch);

// Batch form of ClassifyFlatMeans: lockstep single-path walks, one per
// tuple. Bitwise-identical to n sequential ClassifyFlatMeans calls.
void ClassifyFlatMeansBatch(const FlatTree& flat,
                            const UncertainTuple* const* tuples,
                            double* const* rows, size_t n,
                            FlatTraversalScratch* scratch);

}  // namespace udt

#endif  // UDT_TREE_FLAT_TREE_H_
