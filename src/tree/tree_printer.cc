#include "tree/tree_printer.h"

#include "common/string_util.h"

namespace udt {

namespace {

void AppendDistribution(const Schema& schema, const TreeNode& node,
                        std::string* out) {
  *out += "{";
  for (int c = 0; c < schema.num_classes(); ++c) {
    if (c > 0) *out += ", ";
    *out += StrFormat("%s: %.3f", schema.class_name(c).c_str(),
                      node.distribution[static_cast<size_t>(c)]);
  }
  *out += "}";
}

void Render(const Schema& schema, const TreeNode& node,
            const std::string& indent, std::string* out) {
  if (node.is_leaf()) {
    *out += "leaf ";
    AppendDistribution(schema, node, out);
    *out += "\n";
    return;
  }
  const std::string& name =
      schema.attribute(node.attribute).name;
  if (node.is_categorical) {
    *out += StrFormat("%s = ?\n", name.c_str());
    for (size_t v = 0; v < node.children.size(); ++v) {
      bool last = (v + 1 == node.children.size());
      *out += indent + StrFormat("+-%zu: ", v);
      if (node.children[v] == nullptr) {
        *out += "(unreached)\n";
        continue;
      }
      Render(schema, *node.children[v], indent + (last ? "   " : "|  "),
             out);
    }
    return;
  }
  *out += StrFormat("%s <= %g ?\n", name.c_str(), node.split_point);
  *out += indent + "+-yes: ";
  Render(schema, *node.left, indent + "|      ", out);
  *out += indent + "+-no : ";
  Render(schema, *node.right, indent + "       ", out);
}

}  // namespace

std::string TreeToString(const DecisionTree& tree) {
  std::string out;
  Render(tree.schema(), tree.root(), "", &out);
  return out;
}

std::string TreeSummary(const DecisionTree& tree) {
  return StrFormat("nodes=%d leaves=%d depth=%d", tree.num_nodes(),
                   tree.num_leaves(), tree.depth());
}

namespace {

// Emits node `id` and its subtree; returns the next free id.
int RenderDot(const Schema& schema, const TreeNode& node, int id,
              std::string* out) {
  int my_id = id;
  if (node.is_leaf()) {
    std::string label;
    AppendDistribution(schema, node, &label);
    *out += StrFormat("  n%d [shape=box, label=\"%s\"];\n", my_id,
                      label.c_str());
    return my_id + 1;
  }
  const std::string& name = schema.attribute(node.attribute).name;
  int next = my_id + 1;
  if (node.is_categorical) {
    *out += StrFormat("  n%d [label=\"%s = ?\"];\n", my_id, name.c_str());
    for (size_t v = 0; v < node.children.size(); ++v) {
      if (node.children[v] == nullptr) continue;
      int child_id = next;
      next = RenderDot(schema, *node.children[v], child_id, out);
      *out += StrFormat("  n%d -> n%d [label=\"%zu\"];\n", my_id, child_id,
                        v);
    }
    return next;
  }
  *out += StrFormat("  n%d [label=\"%s <= %g\"];\n", my_id, name.c_str(),
                    node.split_point);
  int left_id = next;
  next = RenderDot(schema, *node.left, left_id, out);
  int right_id = next;
  next = RenderDot(schema, *node.right, right_id, out);
  *out += StrFormat("  n%d -> n%d [label=\"yes\"];\n", my_id, left_id);
  *out += StrFormat("  n%d -> n%d [label=\"no\"];\n", my_id, right_id);
  return next;
}

}  // namespace

std::string TreeToDot(const DecisionTree& tree) {
  std::string out = "digraph udt_tree {\n";
  RenderDot(tree.schema(), tree.root(), 0, &out);
  out += "}\n";
  return out;
}

}  // namespace udt
