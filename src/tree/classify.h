// Classifying uncertain test tuples (Section 3.2, Fig 1): a test tuple
// enters the root with weight 1; at every internal node it splits into
// fractional parts pL/pR (probability of its constrained pdf falling on
// each side), and the weights reaching each leaf are combined with the
// leaf distributions into P(c) for every class c.

#ifndef UDT_TREE_CLASSIFY_H_
#define UDT_TREE_CLASSIFY_H_

#include <vector>

#include "table/dataset.h"
#include "tree/tree.h"

namespace udt {

// Full probabilistic classification: returns P over class labels
// (non-negative, sums to 1).
std::vector<double> ClassifyDistribution(const DecisionTree& tree,
                                         const UncertainTuple& tuple);

// Single-label result: argmax of ClassifyDistribution (ties -> lowest id),
// "the class label with the highest probability as the final answer".
int PredictLabel(const DecisionTree& tree, const UncertainTuple& tuple);

// Convenience for point-valued feature vectors (traditional traversal).
std::vector<double> ClassifyPointDistribution(
    const DecisionTree& tree, const std::vector<double>& values);
int PredictPointLabel(const DecisionTree& tree,
                      const std::vector<double>& values);

// Index of the largest probability (ties -> lowest index).
int ArgMax(const std::vector<double>& values);

}  // namespace udt

#endif  // UDT_TREE_CLASSIFY_H_
