#include "datagen/synthetic.h"

#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace udt {
namespace datagen {

PointDataset GenerateSynthetic(const SyntheticConfig& config) {
  UDT_CHECK(config.num_tuples > 0);
  UDT_CHECK(config.num_attributes > 0);
  UDT_CHECK(config.num_classes >= 2);
  UDT_CHECK(config.clusters_per_class >= 1);

  Rng rng(config.seed);

  std::vector<std::string> class_names;
  class_names.reserve(static_cast<size_t>(config.num_classes));
  for (int c = 0; c < config.num_classes; ++c) {
    class_names.push_back(StrFormat("c%d", c));
  }
  PointDataset dataset(
      Schema::Numerical(config.num_attributes, std::move(class_names)));

  // Which attributes are informative?
  std::vector<bool> informative(static_cast<size_t>(config.num_attributes),
                                true);
  int num_irrelevant = static_cast<int>(
      config.irrelevant_fraction * config.num_attributes);
  for (int j = 0; j < num_irrelevant; ++j) {
    informative[static_cast<size_t>(j * config.num_attributes /
                                    std::max(1, num_irrelevant)) %
                static_cast<size_t>(config.num_attributes)] = false;
  }

  // Cluster centroids per class, in [0, 1] attribute space.
  std::vector<std::vector<std::vector<double>>> centroids(
      static_cast<size_t>(config.num_classes));
  for (int c = 0; c < config.num_classes; ++c) {
    centroids[static_cast<size_t>(c)].resize(
        static_cast<size_t>(config.clusters_per_class));
    for (int g = 0; g < config.clusters_per_class; ++g) {
      std::vector<double>& center =
          centroids[static_cast<size_t>(c)][static_cast<size_t>(g)];
      center.resize(static_cast<size_t>(config.num_attributes));
      for (int j = 0; j < config.num_attributes; ++j) {
        center[static_cast<size_t>(j)] = rng.Uniform(0.0, 1.0);
      }
    }
  }

  // sigma conventions: value spreads are fractions of the unit range; the
  // inherent noise follows the paper's sigma = (x * |Aj|) / 4 rule.
  double cluster_sigma = config.cluster_stddev;
  double noise_sigma = config.inherent_noise / 4.0;

  for (int i = 0; i < config.num_tuples; ++i) {
    int label = i % config.num_classes;  // balanced classes
    int cluster = rng.UniformInt(config.clusters_per_class);
    const std::vector<double>& center =
        centroids[static_cast<size_t>(label)][static_cast<size_t>(cluster)];

    std::vector<double> row(static_cast<size_t>(config.num_attributes));
    for (int j = 0; j < config.num_attributes; ++j) {
      double true_value =
          informative[static_cast<size_t>(j)]
              ? rng.Gaussian(center[static_cast<size_t>(j)], cluster_sigma)
              : rng.Uniform(0.0, 1.0);
      double recorded = true_value + rng.Gaussian(0.0, noise_sigma);
      if (config.integer_domain) {
        recorded = std::round(recorded * config.integer_levels);
      }
      row[static_cast<size_t>(j)] = recorded;
    }
    Status st = dataset.AddRow(std::move(row), label);
    UDT_CHECK(st.ok());
  }
  return dataset;
}

}  // namespace datagen
}  // namespace udt
