// "JapaneseVowel"-like generator: the one data set whose pdfs the paper
// builds from raw repeated measurements (7-29 LPC-coefficient samples per
// utterance) instead of a synthetic error model.
//
// Each tuple is an utterance by one of nine speakers; each of the twelve
// attributes carries the empirical distribution of its raw samples. The
// samples are drawn from a speaker-specific distribution with utterance-
// and frame-level variation, mirroring how repeated measurements of a
// speaker's LPC coefficients scatter.

#ifndef UDT_DATAGEN_JAPANESE_VOWEL_H_
#define UDT_DATAGEN_JAPANESE_VOWEL_H_

#include <cstdint>

#include "table/dataset.h"

namespace udt {
namespace datagen {

struct JapaneseVowelConfig {
  int num_tuples = 640;  // utterances
  int num_speakers = 9;  // classes
  int num_attributes = 12;
  int min_samples = 7;   // raw measurements per value
  int max_samples = 29;
  // Spread of speaker means across attribute space. The ratios below are
  // tuned so the task is hard enough for the AVG-vs-UDT gap to show (the
  // real data set sits at ~82% AVG accuracy).
  double speaker_spread = 0.8;
  // Utterance-level offset (same for all frames of one utterance).
  double utterance_stddev = 0.40;
  // Frame-level measurement scatter (what the pdf captures).
  double frame_stddev = 0.55;
  uint64_t seed = 97;
};

// Generates the uncertain data set directly (pdfs = empirical sample
// distributions). The Averaging view is obtained with Dataset::ToMeans().
Dataset GenerateJapaneseVowelLike(const JapaneseVowelConfig& config);

}  // namespace datagen
}  // namespace udt

#endif  // UDT_DATAGEN_JAPANESE_VOWEL_H_
