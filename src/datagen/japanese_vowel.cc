#include "datagen/japanese_vowel.h"

#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"
#include "pdf/pdf_builder.h"

namespace udt {
namespace datagen {

Dataset GenerateJapaneseVowelLike(const JapaneseVowelConfig& config) {
  UDT_CHECK(config.num_tuples > 0);
  UDT_CHECK(config.num_speakers >= 2);
  UDT_CHECK(config.num_attributes > 0);
  UDT_CHECK(config.min_samples >= 1);
  UDT_CHECK(config.max_samples >= config.min_samples);

  Rng rng(config.seed);

  std::vector<std::string> class_names;
  class_names.reserve(static_cast<size_t>(config.num_speakers));
  for (int c = 0; c < config.num_speakers; ++c) {
    class_names.push_back(StrFormat("speaker%d", c + 1));
  }
  Dataset dataset(
      Schema::Numerical(config.num_attributes, std::move(class_names)));

  // Per-speaker mean LPC profile.
  std::vector<std::vector<double>> speaker_means(
      static_cast<size_t>(config.num_speakers));
  for (int c = 0; c < config.num_speakers; ++c) {
    speaker_means[static_cast<size_t>(c)].resize(
        static_cast<size_t>(config.num_attributes));
    for (int j = 0; j < config.num_attributes; ++j) {
      speaker_means[static_cast<size_t>(c)][static_cast<size_t>(j)] =
          rng.Gaussian(0.0, config.speaker_spread);
    }
  }

  for (int i = 0; i < config.num_tuples; ++i) {
    int speaker = i % config.num_speakers;
    UncertainTuple tuple;
    tuple.label = speaker;
    tuple.values.reserve(static_cast<size_t>(config.num_attributes));
    // One utterance: every attribute shares the utterance-level offset
    // draw, its frames scatter independently.
    for (int j = 0; j < config.num_attributes; ++j) {
      double base =
          speaker_means[static_cast<size_t>(speaker)][static_cast<size_t>(j)] +
          rng.Gaussian(0.0, config.utterance_stddev);
      int num_samples =
          rng.UniformIntRange(config.min_samples, config.max_samples);
      std::vector<double> raw(static_cast<size_t>(num_samples));
      for (int t = 0; t < num_samples; ++t) {
        raw[static_cast<size_t>(t)] =
            base + rng.Gaussian(0.0, config.frame_stddev);
      }
      StatusOr<SampledPdf> pdf = MakePdfFromSamples(raw);
      UDT_CHECK(pdf.ok());
      tuple.values.push_back(UncertainValue::Numerical(std::move(*pdf)));
    }
    Status st = dataset.AddTuple(std::move(tuple));
    UDT_CHECK(st.ok());
  }
  return dataset;
}

}  // namespace datagen
}  // namespace udt
