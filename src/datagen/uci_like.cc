#include "datagen/uci_like.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace udt {
namespace datagen {

const std::vector<UciDatasetSpec>& UciCatalogue() {
  // Shapes follow the published UCI characteristics referenced by Table 2.
  // "JapaneseVowel" is listed for completeness; its uncertain form is
  // produced by datagen/japanese_vowel.h from raw samples rather than by
  // the injector.
  static const std::vector<UciDatasetSpec>* kCatalogue =
      new std::vector<UciDatasetSpec>{
          {"JapaneseVowel", 640, 12, 9, false, true},
          {"Iris", 150, 4, 3, false, false},
          {"BreastCancer", 569, 30, 2, false, false},
          {"Ionosphere", 351, 32, 2, false, false},
          {"Glass", 214, 9, 6, false, false},
          {"Segment", 2310, 19, 7, false, false},
          {"Satellite", 6435, 36, 6, true, false},
          {"PenDigits", 10992, 16, 10, true, false},
          {"Vehicle", 846, 18, 4, true, false},
          {"PageBlock", 5473, 10, 5, false, false},
      };
  return *kCatalogue;
}

StatusOr<UciDatasetSpec> FindUciSpec(const std::string& name) {
  for (const UciDatasetSpec& spec : UciCatalogue()) {
    if (spec.name == name) return spec;
  }
  return Status::NotFound("no such data set: " + name);
}

namespace {

// Stable 64-bit hash of the data-set name, used to give every data set its
// own deterministic generator stream.
uint64_t NameSeed(const std::string& name) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
  for (unsigned char ch : name) {
    h ^= ch;
    h *= 0x100000001b3ULL;
  }
  return h == 0 ? 1 : h;
}

}  // namespace

SyntheticConfig MakeUciLikeConfig(const UciDatasetSpec& spec, double scale) {
  UDT_CHECK(scale > 0.0 && scale <= 1.0);
  SyntheticConfig config;
  config.name = spec.name;
  config.num_tuples = std::max(
      spec.num_classes * 4,
      static_cast<int>(std::lround(spec.num_tuples * scale)));
  config.num_attributes = spec.num_attributes;
  config.num_classes = spec.num_classes;
  // More classes -> more clusters so the geometry stays non-trivial; a
  // pinch of irrelevant attributes for the wide data sets.
  config.clusters_per_class = spec.num_classes >= 7 ? 2 : 3;
  config.cluster_stddev = 0.07;
  config.inherent_noise = 0.10;
  config.irrelevant_fraction = spec.num_attributes >= 20 ? 0.25 : 0.0;
  config.integer_domain = spec.integer_domain;
  config.integer_levels = 100;
  config.seed = NameSeed(spec.name);
  return config;
}

PointDataset MakeUciLikePointData(const UciDatasetSpec& spec, double scale) {
  return GenerateSynthetic(MakeUciLikeConfig(spec, scale));
}

}  // namespace datagen
}  // namespace udt
