// Synthetic point-data generator used in place of the UCI data sets.
//
// The UCI repository is not available offline, so each Table 2 data set is
// replaced by a class-conditional Gaussian-mixture data set with the same
// shape (#tuples, #attributes, #classes) — see DESIGN.md "Substitutions".
// Crucially the generator reproduces the *mechanism* the paper studies:
// recorded value = true value + inherent measurement noise. The noise level
// is unknown to the learners; UDT recovers accuracy by modelling it with an
// error pdf, AVG cannot.

#ifndef UDT_DATAGEN_SYNTHETIC_H_
#define UDT_DATAGEN_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "table/point_dataset.h"

namespace udt {
namespace datagen {

// Parameters of one synthetic data set. All spreads are expressed as a
// fraction of the attribute range so they compose with the paper's w/u
// conventions.
struct SyntheticConfig {
  std::string name = "synthetic";
  int num_tuples = 500;
  int num_attributes = 4;
  int num_classes = 2;

  // Each class is a mixture of this many clusters; centroids are drawn
  // uniformly in attribute space.
  int clusters_per_class = 2;

  // Within-cluster standard deviation (fraction of the attribute range).
  double cluster_stddev = 0.06;

  // Inherent measurement noise: sigma = inherent_noise * range / 4, matching
  // the sigma = (x * |Aj|) / 4 convention of Sections 4.3/4.4. This is the
  // epsilon that the paper's "model" curve estimates.
  double inherent_noise = 0.10;

  // Fraction of attributes that carry no class signal (pure noise columns).
  double irrelevant_fraction = 0.0;

  // Integer-domain data sets (PenDigits/Vehicle/Satellite): values are
  // quantised to this many levels after noise, adding quantisation error.
  bool integer_domain = false;
  int integer_levels = 100;

  uint64_t seed = 1;
};

// Generates the data set described by `config`. Deterministic in the seed.
PointDataset GenerateSynthetic(const SyntheticConfig& config);

}  // namespace datagen
}  // namespace udt

#endif  // UDT_DATAGEN_SYNTHETIC_H_
