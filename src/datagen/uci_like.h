// The ten Table 2 data sets, reproduced as synthetic analogues with the
// same shape (#tuples, #attributes, #classes). The tuple/attribute/class
// counts below are the published characteristics of the corresponding UCI
// data sets; the values themselves are synthesised (see DESIGN.md
// "Substitutions").

#ifndef UDT_DATAGEN_UCI_LIKE_H_
#define UDT_DATAGEN_UCI_LIKE_H_

#include <string>
#include <vector>

#include "common/statusor.h"
#include "datagen/synthetic.h"
#include "table/point_dataset.h"

namespace udt {
namespace datagen {

// Catalogue entry for one Table 2 data set.
struct UciDatasetSpec {
  std::string name;
  int num_tuples = 0;
  int num_attributes = 0;
  int num_classes = 0;
  // Integer-valued attribute domains (PenDigits/Vehicle/Satellite), the
  // data sets the paper also evaluates under the uniform error model.
  bool integer_domain = false;
  // True for the data set whose pdfs come from raw repeated measurements.
  bool from_raw_samples = false;
};

// All ten data sets in the order of Table 2.
const std::vector<UciDatasetSpec>& UciCatalogue();

// Looks up a spec by (case-sensitive) name.
StatusOr<UciDatasetSpec> FindUciSpec(const std::string& name);

// Instantiates the point data for a spec. `scale` in (0, 1] shrinks the
// tuple count (benches use scale < 1 to keep default runs fast; the paper
// scale is 1). Deterministic per (name, scale).
PointDataset MakeUciLikePointData(const UciDatasetSpec& spec, double scale);

// SyntheticConfig used for a spec; exposed for tests and ablations.
SyntheticConfig MakeUciLikeConfig(const UciDatasetSpec& spec, double scale);

}  // namespace datagen
}  // namespace udt

#endif  // UDT_DATAGEN_UCI_LIKE_H_
