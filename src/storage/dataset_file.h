// The "udt-dataset v1" on-disk container: a columnar, quantized uncertain
// data set laid out for chunk-streamed reading. Like every udt container
// it is line-oriented text with hexfloat doubles (grids round-trip
// bitwise) and a versioned magic line; the schema block is the shared
// table/schema_io one.
//
// Layout:
//
//   udt-dataset v1
//   quantized bins <B> chunk <C>
//   tuples <N>
//   source bytes <S>                  (exact decoded footprint of the source)
//   <schema block>                    (classes + attributes)
//   columns <K>
//   per numerical attribute j:
//     column <j> num grid <G> dict <D>
//     g <hexfloat> x G                (one line: the shared grid)
//     d <u16> x G                     (D lines: the dictionary entries)
//   per categorical attribute j:
//     column <j> cat width <W> dict <D>
//     d <u16> x W                     (D lines)
//   chunks <M>                        (M = ceil(N / C))
//   per chunk i:
//     chunk <i> tuples <n>
//     l <label> x n                   (one line)
//     c <j> <u32 id> x n              (one line per attribute, ascending j)
//   end
//
// Everything before `chunks` is the resident part: grids and dictionaries
// load once and stay in memory; the per-chunk id rows stream. That is what
// makes the reader out-of-core — its resident footprint is the dictionary
// footprint, independent of N.

#ifndef UDT_STORAGE_DATASET_FILE_H_
#define UDT_STORAGE_DATASET_FILE_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/statusor.h"
#include "storage/pdf_storage.h"
#include "storage/quantized_dataset.h"
#include "table/schema_io.h"

namespace udt {

// Writes `data` as a "udt-dataset v1" container. `source_decoded_bytes`
// records the exact (unshared) footprint the source data set would occupy
// decoded — the figure out-of-core demos compare their budget against.
Status WriteDatasetFile(const QuantizedDataset& data,
                        size_t source_decoded_bytes, const std::string& path);

// What ConvertDatasetToFile measured while writing.
struct DatasetFileStats {
  int64_t num_tuples = 0;
  int64_t dictionary_entries = 0;
  double dictionary_hit_rate = 0.0;
  // Exact decoded footprint of the source (unshared accounting).
  size_t source_decoded_bytes = 0;
  // Resident footprint of the quantized representation.
  size_t quantized_bytes = 0;
  // Bytes of the container on disk.
  size_t file_bytes = 0;
};

// Quantizes `source` under `options` and writes it to `path`.
StatusOr<DatasetFileStats> ConvertDatasetToFile(
    const Dataset& source, const std::string& path,
    const QuantizationOptions& options = {});

// Chunk-streaming reader over a "udt-dataset v1" file. Open parses the
// resident part (header, schema, grids, dictionaries) and stops at the
// first chunk; AppendChunk then decodes one chunk at a time, in ascending
// order, sharing decoded pdf instances across chunks (and across passes —
// Rewind seeks back to the first chunk without dropping the decode
// caches). Parse errors carry the absolute 1-based line number.
class DatasetReader final : public PdfStorage {
 public:
  [[nodiscard]] static StatusOr<DatasetReader> Open(const std::string& path);

  DatasetReader(DatasetReader&&) = default;
  DatasetReader& operator=(DatasetReader&&) = default;

  // ---------------------------------------------------------- PdfStorage

  const Schema& schema() const override { return schema_; }
  int64_t num_tuples() const override { return num_tuples_; }
  int64_t num_chunks() const override { return num_chunks_; }
  // Streaming: `chunk` must be exactly the next unread chunk (0, 1, ...).
  // Reading the final chunk also consumes and checks the `end` sentinel,
  // so a truncated file fails on its last chunk, not silently.
  Status AppendChunk(int64_t chunk, Dataset* out) override;
  // Grids + dictionaries — the only per-data parts held resident; the id
  // rows stream through the chunk buffer and are not retained.
  size_t MemoryUsageBytes() const override;

  // ------------------------------------------------------- introspection

  int bins() const { return bins_; }
  int chunk_tuples() const { return chunk_tuples_; }
  // The header's record of the source's exact decoded footprint.
  size_t source_decoded_bytes() const { return source_decoded_bytes_; }
  int64_t dictionary_entries() const;

  // Seeks back to the first chunk for another streaming pass. The decode
  // caches survive, so a second pass reuses every already-decoded pdf.
  Status Rewind();

 private:
  struct Column {
    AttributeKind kind = AttributeKind::kNumerical;
    int width = 0;
    AttributeGrid grid;  // numerical only
    PdfDictionary dict;
    DecodedPdfCache cache;  // numerical only
  };

  explicit DatasetReader(Schema schema) : schema_(std::move(schema)) {}

  // The stream and reader live behind pointers so the reader type stays
  // movable (LineReader holds an istream reference).
  std::unique_ptr<std::ifstream> in_;
  std::unique_ptr<LineReader> reader_;
  Schema schema_;
  std::vector<Column> columns_;
  int bins_ = 0;
  int chunk_tuples_ = 0;
  int64_t num_tuples_ = 0;
  int64_t num_chunks_ = 0;
  size_t source_decoded_bytes_ = 0;
  int64_t next_chunk_ = 0;
  std::streampos chunks_pos_;  // stream position of the first chunk line
  int chunks_line_ = 0;        // line count at that position
};

}  // namespace udt

#endif  // UDT_STORAGE_DATASET_FILE_H_
