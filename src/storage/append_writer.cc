#include "storage/append_writer.h"

#include <algorithm>
#include <fstream>
#include <set>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "table/schema_io.h"

namespace udt {

StatusOr<DatasetAppendWriter> DatasetAppendWriter::Open(
    std::string path, const Dataset& grid_source,
    const QuantizationOptions& options) {
  UDT_RETURN_NOT_OK(options.Validate());
  if (grid_source.empty()) {
    return Status::InvalidArgument(
        "cannot fix quantization grids from an empty grid source");
  }

  DatasetAppendWriter writer(std::move(path), grid_source.schema(), options);
  const int num_attributes = grid_source.num_attributes();
  writer.columns_.resize(static_cast<size_t>(num_attributes));
  for (int j = 0; j < num_attributes; ++j) {
    Column& column = writer.columns_[static_cast<size_t>(j)];
    const AttributeInfo& info = grid_source.schema().attribute(j);
    column.kind = info.kind;
    if (info.kind == AttributeKind::kCategorical) {
      column.width = info.num_categories;
      column.dict = PdfDictionary(column.width);
      continue;
    }
    // Same grid rule as QuantizedDataset::FromDataset: keep the distinct
    // sample points exactly while they fit in the bin budget, bail to a
    // uniform grid over the observed range as soon as they outgrow it.
    std::set<double> distinct;
    bool exact = true;
    for (int i = 0; i < grid_source.num_tuples() && exact; ++i) {
      const SampledPdf& pdf =
          grid_source.tuple(i).values[static_cast<size_t>(j)].pdf();
      for (int p = 0; p < pdf.num_points(); ++p) {
        distinct.insert(pdf.point(p));
        if (distinct.size() > static_cast<size_t>(options.bins)) {
          exact = false;
          break;
        }
      }
    }
    if (exact) {
      UDT_ASSIGN_OR_RETURN(
          column.grid,
          AttributeGrid::FromSortedPoints(
              std::vector<double>(distinct.begin(), distinct.end())));
    } else {
      const auto [lo, hi] = grid_source.AttributeRange(j);
      column.grid = AttributeGrid::Uniform(lo, hi, options.bins);
    }
    column.width = column.grid.num_points();
    column.dict = PdfDictionary(column.width);
  }
  return writer;
}

Status DatasetAppendWriter::Append(const UncertainTuple& tuple) {
  if (finalized_) {
    return Status::InvalidArgument("writer has already been finalized");
  }
  if (tuple.values.size() != columns_.size()) {
    return Status::InvalidArgument(
        StrFormat("tuple carries %zu values, schema has %zu attributes",
                  tuple.values.size(), columns_.size()));
  }
  if (tuple.label < 0 || tuple.label >= schema_.num_classes()) {
    return Status::InvalidArgument(
        StrFormat("label %d outside the schema's %d classes", tuple.label,
                  schema_.num_classes()));
  }

  size_t tuple_bytes =
      sizeof(UncertainTuple) + sizeof(UncertainValue) * tuple.values.size();
  for (size_t j = 0; j < columns_.size(); ++j) {
    Column& column = columns_[j];
    const UncertainValue& value = tuple.values[j];
    if (column.kind == AttributeKind::kNumerical) {
      if (!value.is_numerical()) {
        return Status::InvalidArgument(StrFormat(
            "attribute %zu is numerical but the value is categorical", j));
      }
      const std::vector<uint16_t> fixed =
          QuantizeToGrid(value.pdf(), column.grid);
      column.ids.push_back(column.dict.Intern(fixed.data()));
      tuple_bytes += value.pdf().MemoryUsageBytes();
    } else {
      if (value.is_numerical()) {
        return Status::InvalidArgument(StrFormat(
            "attribute %zu is categorical but the value is numerical", j));
      }
      const CategoricalPdf& pdf = value.categorical();
      if (pdf.num_categories() != column.width) {
        return Status::InvalidArgument(StrFormat(
            "attribute %zu carries %d categories, schema says %d", j,
            pdf.num_categories(), column.width));
      }
      std::vector<double> weights(static_cast<size_t>(column.width));
      for (int c = 0; c < column.width; ++c) {
        weights[static_cast<size_t>(c)] = pdf.probability(c);
      }
      const std::vector<uint16_t> fixed =
          FixedPointMasses(weights.data(), column.width);
      column.ids.push_back(column.dict.Intern(fixed.data()));
      tuple_bytes += sizeof(double) * static_cast<size_t>(column.width);
    }
  }
  labels_.push_back(tuple.label);
  appended_decoded_bytes_ += tuple_bytes;
  return Status::OK();
}

Status DatasetAppendWriter::AppendAll(const Dataset& data) {
  if (!SchemaEquals(data.schema(), schema_)) {
    return Status::InvalidArgument(
        "data set schema does not match the writer schema");
  }
  for (const UncertainTuple& tuple : data.tuples()) {
    UDT_RETURN_NOT_OK(Append(tuple));
  }
  return Status::OK();
}

StatusOr<DatasetFileStats> DatasetAppendWriter::Finalize(
    std::optional<size_t> source_decoded_bytes) {
  if (finalized_) {
    return Status::InvalidArgument("writer has already been finalized");
  }
  if (labels_.empty()) {
    return Status::InvalidArgument("cannot finalize an empty writer");
  }
  finalized_ = true;

  const int64_t num_tuples = static_cast<int64_t>(labels_.size());
  const size_t source_bytes = source_decoded_bytes.value_or(
      sizeof(Dataset) + appended_decoded_bytes_);

  // Same layout, token for token, as WriteDatasetFile — the append test
  // pins byte-identity against ConvertDatasetToFile, so any format drift
  // between the two writers fails loudly.
  std::ofstream out(path_);
  if (!out) return Status::IOError("cannot open for write: " + path_);

  out << "udt-dataset v1\n";
  out << "quantized bins " << options_.bins << " chunk "
      << options_.chunk_tuples << "\n";
  out << "tuples " << num_tuples << "\n";
  out << "source bytes " << source_bytes << "\n";
  WriteSchemaBlock(schema_, out);

  out << "columns " << schema_.num_attributes() << "\n";
  for (int j = 0; j < schema_.num_attributes(); ++j) {
    const Column& column = columns_[static_cast<size_t>(j)];
    if (column.kind == AttributeKind::kNumerical) {
      out << "column " << j << " num grid " << column.grid.num_points()
          << " dict " << column.dict.num_entries() << "\n";
      out << "g";
      for (double point : column.grid.points()) {
        out << StrFormat(" %a", point);
      }
      out << "\n";
    } else {
      out << "column " << j << " cat width " << column.dict.width()
          << " dict " << column.dict.num_entries() << "\n";
    }
    for (uint32_t id = 0; id < column.dict.num_entries(); ++id) {
      const uint16_t* row = column.dict.entry(id);
      out << "d";
      for (int i = 0; i < column.dict.width(); ++i) out << ' ' << row[i];
      out << "\n";
    }
  }

  const int64_t chunk_tuples = options_.chunk_tuples;
  const int64_t num_chunks = (num_tuples + chunk_tuples - 1) / chunk_tuples;
  out << "chunks " << num_chunks << "\n";
  for (int64_t c = 0; c < num_chunks; ++c) {
    const int64_t begin = c * chunk_tuples;
    const int64_t end = std::min(begin + chunk_tuples, num_tuples);
    out << "chunk " << c << " tuples " << (end - begin) << "\n";
    out << "l";
    for (int64_t i = begin; i < end; ++i) {
      out << ' ' << labels_[static_cast<size_t>(i)];
    }
    out << "\n";
    for (int j = 0; j < schema_.num_attributes(); ++j) {
      const std::vector<uint32_t>& ids =
          columns_[static_cast<size_t>(j)].ids;
      out << "c " << j;
      for (int64_t i = begin; i < end; ++i) {
        out << ' ' << ids[static_cast<size_t>(i)];
      }
      out << "\n";
    }
  }
  out << "end\n";

  out.close();
  if (!out) return Status::IOError("write failed: " + path_);

  DatasetFileStats stats;
  stats.num_tuples = num_tuples;
  for (const Column& column : columns_) {
    stats.dictionary_entries += column.dict.num_entries();
  }
  const double values =
      static_cast<double>(num_tuples) * schema_.num_attributes();
  stats.dictionary_hit_rate =
      values > 0.0
          ? 1.0 - static_cast<double>(stats.dictionary_entries) / values
          : 0.0;
  stats.source_decoded_bytes = source_bytes;
  stats.quantized_bytes = sizeof(DatasetAppendWriter) +
                          sizeof(int32_t) * labels_.capacity();
  for (const Column& column : columns_) {
    stats.quantized_bytes += column.grid.MemoryUsageBytes() +
                             column.dict.MemoryUsageBytes() +
                             sizeof(uint32_t) * column.ids.capacity();
  }
  std::ifstream written(path_, std::ios::binary | std::ios::ate);
  if (written) {
    stats.file_bytes = static_cast<size_t>(written.tellg());
  }
  return stats;
}

}  // namespace udt
