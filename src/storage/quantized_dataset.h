// QuantizedDataset: the columnar, dictionary-compressed in-memory form of
// an uncertain data set. Per attribute it holds one AttributeGrid (numeric
// axis, stored once), one PdfDictionary of distinct quantized mass
// vectors, and one uint32 dictionary id per tuple; labels are a flat int32
// column. It is both the compression result (FromDataset) and a
// PdfStorage backend, so the trainers can materialise straight from it —
// and it is what the "udt-dataset v1" writer serialises
// (storage/dataset_file.h).

#ifndef UDT_STORAGE_QUANTIZED_DATASET_H_
#define UDT_STORAGE_QUANTIZED_DATASET_H_

#include <cstdint>
#include <vector>

#include "common/statusor.h"
#include "storage/pdf_storage.h"
#include "storage/quantized_pdf.h"
#include "table/dataset.h"

namespace udt {

class QuantizedDataset final : public PdfStorage {
 public:
  // Quantizes `source` column by column. Numerical attributes whose
  // distinct sample points fit in options.bins keep them exactly (the
  // decode is lossless up to uint16 mass rounding); denser attributes
  // snap to a uniform grid over the observed range. Categorical columns
  // dictionary-compress their probability vectors at full width. Fails on
  // an empty source or invalid options.
  static StatusOr<QuantizedDataset> FromDataset(
      const Dataset& source, const QuantizationOptions& options = {});

  // ---------------------------------------------------------- PdfStorage

  const Schema& schema() const override { return schema_; }
  int64_t num_tuples() const override {
    return static_cast<int64_t>(labels_.size());
  }
  int64_t num_chunks() const override;
  // Decodes [chunk * chunk_tuples, ...) through the per-attribute decode
  // caches: tuples sharing a dictionary entry share one SampledPdf
  // instance in `out`.
  Status AppendChunk(int64_t chunk, Dataset* out) override;
  // Resident bytes of the quantized representation (grids + dictionaries +
  // id columns + labels). Excludes the decode caches — decoded pdfs are
  // accounted on the materialised Dataset they end up in.
  size_t MemoryUsageBytes() const override;

  // -------------------------------------------------------- introspection

  const QuantizationOptions& options() const { return options_; }

  // Distinct dictionary entries across all attributes; the hit rate is the
  // fraction of tuple values that reused an existing entry,
  // 1 - entries / (tuples * attributes).
  int64_t dictionary_entries() const;
  double dictionary_hit_rate() const;

  // Per-attribute pieces, for the file writer and the bench. `grid`
  // requires a numerical attribute.
  const AttributeGrid& grid(int attribute) const;
  const PdfDictionary& dictionary(int attribute) const;
  const std::vector<uint32_t>& column_ids(int attribute) const;
  const std::vector<int32_t>& labels() const { return labels_; }

  // Decodes tuples [begin, end) into `out` (schema must match).
  Status AppendRange(int64_t begin, int64_t end, Dataset* out);

 private:
  struct Column {
    AttributeKind kind = AttributeKind::kNumerical;
    int width = 0;            // grid points (num) or categories (cat)
    AttributeGrid grid;       // numerical only
    PdfDictionary dict;
    std::vector<uint32_t> ids;  // one per tuple
    DecodedPdfCache cache;      // numerical only
  };

  QuantizedDataset(Schema schema, QuantizationOptions options)
      : schema_(std::move(schema)), options_(options) {}

  Schema schema_;
  QuantizationOptions options_;
  std::vector<Column> columns_;
  std::vector<int32_t> labels_;
};

}  // namespace udt

#endif  // UDT_STORAGE_QUANTIZED_DATASET_H_
