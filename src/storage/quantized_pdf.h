// Quantized pdf representation: the compact half of the storage tier.
//
// A SampledPdf stores three double arrays per value; across a large
// uncertain table most of those arrays repeat (an injector that derives
// the error pdf deterministically from the observed value emits the same
// distribution for every tuple sharing that value) and their sample points
// cluster on a per-attribute domain. The quantized form exploits both:
//
//   * one AttributeGrid per attribute — the sample-point axis, stored
//     once. When the attribute's distinct sample points fit in the bin
//     budget the grid IS those points (lossless); otherwise it is a
//     uniform grid over the observed range and masses snap to the nearest
//     bin.
//   * per-value masses as dense uint16 fixed-point weights over the grid
//     (largest-remainder rounding, summing to exactly kQuantizedOne), and
//   * a PdfDictionary per attribute interning the distinct mass vectors,
//     so a tuple costs one uint32 dictionary id per attribute.
//
// Decoding a dictionary entry yields an ordinary SampledPdf (positive-mass
// bins only, renormalised), so the split search, the batch kernels and the
// serving stack run on quantized data unchanged. DecodedPdfCache decodes
// each entry once into a shared instance; every tuple referencing that
// entry shares it (UncertainValue::NumericalShared), which is what keeps
// the materialised working set far below the exact footprint.

#ifndef UDT_STORAGE_QUANTIZED_PDF_H_
#define UDT_STORAGE_QUANTIZED_PDF_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/statusor.h"
#include "pdf/pdf.h"
#include "table/dataset.h"

namespace udt {

// Fixed-point scale: quantized masses are sixteenths-of-65535, i.e. an
// entry's weights sum to exactly this value and decode as w / 65535.0.
inline constexpr uint32_t kQuantizedOne = 65535;

// Knobs of one quantization run.
struct QuantizationOptions {
  // Grid resolution per numerical attribute: attributes with at most this
  // many distinct sample points keep them exactly; denser attributes snap
  // to a uniform grid of `bins` points over their observed range.
  static constexpr int kMaxBins = 4096;
  int bins = 64;

  // Tuples per chunk of the columnar container (the unit the out-of-core
  // reader streams and the unit AppendChunk decodes).
  int chunk_tuples = 1024;

  Status Validate() const;
};

// The shared sample-point axis of one numerical attribute: a non-empty,
// strictly ascending, finite point set. Immutable after construction.
class AttributeGrid {
 public:
  AttributeGrid() = default;

  // Validates and adopts an explicit point set (the lossless grid and the
  // file reader's path). Fails on empty/oversized sets, non-finite points
  // (NaN included) or non-ascending order.
  static StatusOr<AttributeGrid> FromSortedPoints(std::vector<double> points);

  // `bins` evenly spaced points over [lo, hi] inclusive; collapses to the
  // single point {lo} when the range is empty. Adjacent duplicates from a
  // degenerate range are merged, so the result is always strictly
  // ascending.
  static AttributeGrid Uniform(double lo, double hi, int bins);

  int num_points() const { return static_cast<int>(points_.size()); }
  double point(int i) const { return points_[static_cast<size_t>(i)]; }
  const std::vector<double>& points() const { return points_; }

  // Index of the grid point closest to `x` (ties -> lower index). Requires
  // a non-empty grid.
  int NearestIndex(double x) const;

  size_t MemoryUsageBytes() const {
    return sizeof(AttributeGrid) + sizeof(double) * points_.capacity();
  }

 private:
  explicit AttributeGrid(std::vector<double> points)
      : points_(std::move(points)) {}

  std::vector<double> points_;  // strictly ascending, finite
};

// Rounds non-negative weights (positive total) to uint16 fixed point
// summing to exactly kQuantizedOne: floor the scaled weights, then hand
// the leftover units to the largest fractional remainders (ties -> lowest
// index), so the result is deterministic and order-independent of nothing.
std::vector<uint16_t> FixedPointMasses(const double* weights, int count);

// Snaps `pdf`'s mass onto `grid` (each sample point to its nearest bin)
// and fixes the result to uint16 point. The returned vector is dense:
// grid.num_points() entries.
std::vector<uint16_t> QuantizeToGrid(const SampledPdf& pdf,
                                     const AttributeGrid& grid);

// Inverse of QuantizeToGrid up to rounding: positive-mass bins become the
// sample points of an ordinary SampledPdf (renormalised by Create). Fails
// if no bin carries mass. `masses` holds grid.num_points() entries.
StatusOr<SampledPdf> DecodeNumerical(const AttributeGrid& grid,
                                     const uint16_t* masses);

// Categorical counterpart: `masses` holds `num_categories` fixed-point
// probabilities. Fails when no category carries mass (CategoricalPdf
// renormalises the rest).
StatusOr<CategoricalPdf> DecodeCategorical(const uint16_t* masses,
                                           int num_categories);

// Interning pool of distinct quantized mass vectors for one attribute.
// Entries are dense `width`-long uint16 rows stored back to back; an id is
// the row index, stable for the pool's lifetime. The same type serves
// numerical columns (width = grid points) and categorical columns (width =
// categories).
class PdfDictionary {
 public:
  PdfDictionary() = default;
  explicit PdfDictionary(int width) : width_(width) {}

  int width() const { return width_; }
  uint32_t num_entries() const {
    return width_ == 0 ? 0
                       : static_cast<uint32_t>(pool_.size() /
                                               static_cast<size_t>(width_));
  }

  // Returns the id of `masses` (width() entries), appending it if no equal
  // entry exists yet — the write path's dedup.
  uint32_t Intern(const uint16_t* masses);

  // Appends `masses` verbatim without consulting the index — the read
  // path, which must reproduce the file's id space exactly (a hostile
  // duplicate entry is harmless, just wasteful).
  uint32_t Append(const uint16_t* masses);

  // Pointer to the id-th row (width() entries). Requires a valid id.
  const uint16_t* entry(uint32_t id) const {
    return pool_.data() + static_cast<size_t>(id) * static_cast<size_t>(width_);
  }

  size_t MemoryUsageBytes() const;

 private:
  int width_ = 0;
  std::vector<uint16_t> pool_;  // num_entries() x width_ rows
  // FNV-1a hash of a row -> candidate ids (collisions resolved by memcmp).
  std::unordered_map<uint64_t, std::vector<uint32_t>> buckets_;
};

// Decode-once pool over one attribute's dictionary: Get materialises entry
// `id` on first use and hands every caller the same shared instance, so a
// data set assembled through one cache shares pdfs exactly as often as the
// dictionary deduplicated them. Not thread-safe; materialisation is a
// single-threaded pass.
class DecodedPdfCache {
 public:
  StatusOr<std::shared_ptr<const SampledPdf>> Get(const AttributeGrid& grid,
                                                  const PdfDictionary& dict,
                                                  uint32_t id);

 private:
  std::vector<std::shared_ptr<const SampledPdf>> decoded_;
};

}  // namespace udt

#endif  // UDT_STORAGE_QUANTIZED_PDF_H_
