#include "storage/dataset_file.h"

#include <algorithm>
#include <cstdio>
#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"

namespace udt {
namespace {

constexpr char kMagic[] = "udt-dataset v1";
constexpr char kContext[] = "udt-dataset";

// Hostile-header allocation caps: every declared count is bounded before
// anything is reserved.
constexpr int64_t kMaxTuples = 1ll << 26;
constexpr int64_t kMaxDictEntries = 1ll << 22;
constexpr int kMaxChunkTuples = 1 << 20;

// Parses one bounded non-negative count token.
std::optional<int64_t> ParseCount(std::string_view token, int64_t max) {
  std::optional<uint64_t> value = ParseUint64(token);
  if (!value || *value > static_cast<uint64_t>(max)) return std::nullopt;
  return static_cast<int64_t>(*value);
}

// Reads one dictionary entry line ("d" + width u16 tokens) into `row`.
Status ReadDictRow(LineReader* reader, int width, std::vector<uint16_t>* row) {
  UDT_RETURN_NOT_OK(reader->Next("dictionary entry"));
  const std::vector<std::string> tokens = SplitString(reader->line(), ' ');
  if (tokens.size() != static_cast<size_t>(width) + 1 || tokens[0] != "d") {
    return reader->Error("bad dictionary entry line");
  }
  row->clear();
  row->reserve(static_cast<size_t>(width));
  uint32_t sum = 0;
  for (int i = 0; i < width; ++i) {
    std::optional<int> mass = ParseInt(tokens[static_cast<size_t>(i) + 1]);
    if (!mass || *mass > static_cast<int>(kQuantizedOne)) {
      return reader->Error("bad dictionary mass: " +
                           tokens[static_cast<size_t>(i) + 1]);
    }
    row->push_back(static_cast<uint16_t>(*mass));
    sum += static_cast<uint32_t>(*mass);
  }
  if (sum == 0) {
    return reader->Error("dictionary entry carries no mass");
  }
  return Status::OK();
}

}  // namespace

Status WriteDatasetFile(const QuantizedDataset& data,
                        size_t source_decoded_bytes,
                        const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);

  const Schema& schema = data.schema();
  const int64_t num_tuples = data.num_tuples();
  out << kMagic << "\n";
  out << "quantized bins " << data.options().bins << " chunk "
      << data.options().chunk_tuples << "\n";
  out << "tuples " << num_tuples << "\n";
  out << "source bytes " << source_decoded_bytes << "\n";
  WriteSchemaBlock(schema, out);

  out << "columns " << schema.num_attributes() << "\n";
  for (int j = 0; j < schema.num_attributes(); ++j) {
    const PdfDictionary& dict = data.dictionary(j);
    if (schema.attribute(j).kind == AttributeKind::kNumerical) {
      const AttributeGrid& grid = data.grid(j);
      out << "column " << j << " num grid " << grid.num_points() << " dict "
          << dict.num_entries() << "\n";
      out << "g";
      for (double point : grid.points()) {
        out << StrFormat(" %a", point);
      }
      out << "\n";
    } else {
      out << "column " << j << " cat width " << dict.width() << " dict "
          << dict.num_entries() << "\n";
    }
    for (uint32_t id = 0; id < dict.num_entries(); ++id) {
      const uint16_t* row = dict.entry(id);
      out << "d";
      for (int i = 0; i < dict.width(); ++i) out << ' ' << row[i];
      out << "\n";
    }
  }

  const int64_t num_chunks = data.num_chunks();
  const int64_t chunk_tuples = data.options().chunk_tuples;
  out << "chunks " << num_chunks << "\n";
  for (int64_t c = 0; c < num_chunks; ++c) {
    const int64_t begin = c * chunk_tuples;
    const int64_t end = std::min(begin + chunk_tuples, num_tuples);
    out << "chunk " << c << " tuples " << (end - begin) << "\n";
    out << "l";
    for (int64_t i = begin; i < end; ++i) {
      out << ' ' << data.labels()[static_cast<size_t>(i)];
    }
    out << "\n";
    for (int j = 0; j < schema.num_attributes(); ++j) {
      const std::vector<uint32_t>& ids = data.column_ids(j);
      out << "c " << j;
      for (int64_t i = begin; i < end; ++i) {
        out << ' ' << ids[static_cast<size_t>(i)];
      }
      out << "\n";
    }
  }
  out << "end\n";

  out.close();
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

StatusOr<DatasetFileStats> ConvertDatasetToFile(
    const Dataset& source, const std::string& path,
    const QuantizationOptions& options) {
  UDT_ASSIGN_OR_RETURN(QuantizedDataset quantized,
                       QuantizedDataset::FromDataset(source, options));
  const DatasetMemoryBreakdown breakdown = source.MemoryBreakdown();
  UDT_RETURN_NOT_OK(
      WriteDatasetFile(quantized, breakdown.unshared_total_bytes, path));

  DatasetFileStats stats;
  stats.num_tuples = quantized.num_tuples();
  stats.dictionary_entries = quantized.dictionary_entries();
  stats.dictionary_hit_rate = quantized.dictionary_hit_rate();
  stats.source_decoded_bytes = breakdown.unshared_total_bytes;
  stats.quantized_bytes = quantized.MemoryUsageBytes();
  std::ifstream written(path, std::ios::binary | std::ios::ate);
  if (written) {
    stats.file_bytes = static_cast<size_t>(written.tellg());
  }
  return stats;
}

StatusOr<DatasetReader> DatasetReader::Open(const std::string& path) {
  auto in = std::make_unique<std::ifstream>(path);
  if (!*in) return Status::IOError("cannot open for read: " + path);
  auto reader = std::make_unique<LineReader>(*in, kContext);

  UDT_RETURN_NOT_OK(reader->Next("magic"));
  if (reader->line() != kMagic) {
    return reader->Error("bad magic line: " + reader->line());
  }

  UDT_RETURN_NOT_OK(reader->Next("quantized"));
  {
    const std::vector<std::string> tokens =
        SplitString(reader->line(), ' ');
    if (tokens.size() != 5 || tokens[0] != "quantized" ||
        tokens[1] != "bins" || tokens[3] != "chunk") {
      return reader->Error("expected quantized line");
    }
  }
  const std::vector<std::string> quantized_tokens =
      SplitString(reader->line(), ' ');
  std::optional<int64_t> bins =
      ParseCount(quantized_tokens[2], QuantizationOptions::kMaxBins);
  std::optional<int64_t> chunk_tuples =
      ParseCount(quantized_tokens[4], kMaxChunkTuples);
  if (!bins || *bins < 1 || !chunk_tuples || *chunk_tuples < 1) {
    return reader->Error("bad quantized line: " + reader->line());
  }

  UDT_RETURN_NOT_OK(reader->Next("tuples"));
  if (reader->line().rfind("tuples ", 0) != 0) {
    return reader->Error("expected tuples line");
  }
  std::optional<int64_t> num_tuples =
      ParseCount(reader->line().substr(7), kMaxTuples);
  if (!num_tuples || *num_tuples < 1) {
    return reader->Error("bad tuple count");
  }

  UDT_RETURN_NOT_OK(reader->Next("source bytes"));
  if (reader->line().rfind("source bytes ", 0) != 0) {
    return reader->Error("expected source bytes line");
  }
  std::optional<uint64_t> source_bytes =
      ParseUint64(reader->line().substr(13));
  if (!source_bytes) {
    return reader->Error("bad source bytes");
  }

  UDT_ASSIGN_OR_RETURN(Schema schema, ReadSchemaBlock(reader.get()));

  UDT_RETURN_NOT_OK(reader->Next("columns"));
  if (reader->line().rfind("columns ", 0) != 0) {
    return reader->Error("expected columns line");
  }
  std::optional<int> num_columns = ParseInt(reader->line().substr(8));
  if (!num_columns || *num_columns != schema.num_attributes()) {
    return reader->Error("column count does not match the schema");
  }

  std::vector<Column> columns(static_cast<size_t>(*num_columns));
  std::vector<uint16_t> row;
  for (int j = 0; j < *num_columns; ++j) {
    Column& column = columns[static_cast<size_t>(j)];
    const AttributeInfo& info = schema.attribute(j);
    column.kind = info.kind;

    UDT_RETURN_NOT_OK(reader->Next("column header"));
    const std::vector<std::string> tokens =
        SplitString(reader->line(), ' ');
    if (tokens.size() != 7 || tokens[0] != "column" || tokens[5] != "dict") {
      return reader->Error("bad column header: " + reader->line());
    }
    std::optional<int> column_index = ParseInt(tokens[1]);
    if (!column_index || *column_index != j) {
      return reader->Error("column out of order: " + reader->line());
    }
    std::optional<int64_t> dict_entries =
        ParseCount(tokens[6], kMaxDictEntries);
    if (!dict_entries || *dict_entries < 1) {
      return reader->Error("bad dictionary size: " + reader->line());
    }

    if (info.kind == AttributeKind::kNumerical) {
      if (tokens[2] != "num" || tokens[3] != "grid") {
        return reader->Error("column kind does not match the schema");
      }
      std::optional<int64_t> grid_points =
          ParseCount(tokens[4], QuantizationOptions::kMaxBins);
      if (!grid_points || *grid_points < 1) {
        return reader->Error("bad grid size: " + reader->line());
      }
      UDT_RETURN_NOT_OK(reader->Next("grid"));
      const std::vector<std::string> grid_tokens =
          SplitString(reader->line(), ' ');
      if (grid_tokens.size() != static_cast<size_t>(*grid_points) + 1 ||
          grid_tokens[0] != "g") {
        return reader->Error("bad grid line");
      }
      std::vector<double> points;
      points.reserve(static_cast<size_t>(*grid_points));
      for (int64_t g = 0; g < *grid_points; ++g) {
        std::optional<double> point =
            ParseDouble(grid_tokens[static_cast<size_t>(g) + 1]);
        if (!point) {
          return reader->Error("bad grid point: " +
                               grid_tokens[static_cast<size_t>(g) + 1]);
        }
        points.push_back(*point);
      }
      // FromSortedPoints rejects NaN/infinite and unsorted points.
      StatusOr<AttributeGrid> grid =
          AttributeGrid::FromSortedPoints(std::move(points));
      if (!grid.ok()) return reader->Error(grid.status().message());
      column.grid = std::move(grid).value();
      column.width = column.grid.num_points();
    } else {
      if (tokens[2] != "cat" || tokens[3] != "width") {
        return reader->Error("column kind does not match the schema");
      }
      std::optional<int> width = ParseInt(tokens[4]);
      if (!width || *width != info.num_categories) {
        return reader->Error("category width does not match the schema");
      }
      column.width = *width;
    }

    column.dict = PdfDictionary(column.width);
    for (int64_t d = 0; d < *dict_entries; ++d) {
      UDT_RETURN_NOT_OK(ReadDictRow(reader.get(), column.width, &row));
      column.dict.Append(row.data());
    }
  }

  UDT_RETURN_NOT_OK(reader->Next("chunks"));
  if (reader->line().rfind("chunks ", 0) != 0) {
    return reader->Error("expected chunks line");
  }
  std::optional<int64_t> num_chunks =
      ParseCount(reader->line().substr(7), kMaxTuples);
  const int64_t expected_chunks =
      (*num_tuples + *chunk_tuples - 1) / *chunk_tuples;
  if (!num_chunks || *num_chunks != expected_chunks) {
    return reader->Error(
        StrFormat("bad chunk count: %s (tuples and chunk size imply %lld)",
                  reader->line().c_str(),
                  static_cast<long long>(expected_chunks)));
  }

  DatasetReader result(std::move(schema));
  result.columns_ = std::move(columns);
  result.bins_ = static_cast<int>(*bins);
  result.chunk_tuples_ = static_cast<int>(*chunk_tuples);
  result.num_tuples_ = *num_tuples;
  result.num_chunks_ = *num_chunks;
  result.source_decoded_bytes_ = static_cast<size_t>(*source_bytes);
  result.chunks_pos_ = in->tellg();
  result.chunks_line_ = reader->line_number();
  result.in_ = std::move(in);
  result.reader_ = std::move(reader);
  return result;
}

Status DatasetReader::AppendChunk(int64_t chunk, Dataset* out) {
  if (chunk < 0 || chunk >= num_chunks_) {
    return Status::InvalidArgument(
        StrFormat("chunk %lld out of range (file holds %lld)",
                  static_cast<long long>(chunk),
                  static_cast<long long>(num_chunks_)));
  }
  if (chunk != next_chunk_) {
    return Status::InvalidArgument(StrFormat(
        "chunks must be streamed in ascending order: asked for %lld, next "
        "is %lld (Rewind to restart)",
        static_cast<long long>(chunk), static_cast<long long>(next_chunk_)));
  }
  if (!SchemaEquals(out->schema(), schema_)) {
    return Status::InvalidArgument(
        "destination schema does not match the storage schema");
  }

  LineReader* reader = reader_.get();
  UDT_RETURN_NOT_OK(reader->Next("chunk header"));
  long long header_chunk = -1;
  long long header_tuples = -1;
  if (std::sscanf(reader->line().c_str(), "chunk %lld tuples %lld",
                  &header_chunk, &header_tuples) != 2 ||
      header_chunk != chunk) {
    return reader->Error("bad chunk header: " + reader->line());
  }
  const int64_t begin = chunk * chunk_tuples_;
  const int64_t expected =
      std::min<int64_t>(begin + chunk_tuples_, num_tuples_) - begin;
  if (header_tuples != expected) {
    return reader->Error(
        StrFormat("chunk %lld holds %lld tuples, expected %lld",
                  static_cast<long long>(chunk), header_tuples,
                  static_cast<long long>(expected)));
  }
  const size_t count = static_cast<size_t>(expected);

  UDT_RETURN_NOT_OK(reader->Next("labels"));
  const std::vector<std::string> label_tokens =
      SplitString(reader->line(), ' ');
  if (label_tokens.size() != count + 1 || label_tokens[0] != "l") {
    return reader->Error("bad label line");
  }
  std::vector<int> labels;
  labels.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    std::optional<int> label = ParseInt(label_tokens[i + 1]);
    if (!label || *label >= schema_.num_classes()) {
      return reader->Error("bad label: " + label_tokens[i + 1]);
    }
    labels.push_back(*label);
  }

  const int num_attributes = schema_.num_attributes();
  std::vector<std::vector<uint32_t>> ids(
      static_cast<size_t>(num_attributes));
  for (int j = 0; j < num_attributes; ++j) {
    UDT_RETURN_NOT_OK(reader->Next("id column"));
    const std::vector<std::string> tokens =
        SplitString(reader->line(), ' ');
    if (tokens.size() != count + 2 || tokens[0] != "c" ||
        tokens[1] != StrFormat("%d", j)) {
      return reader->Error("bad id column line");
    }
    const Column& column = columns_[static_cast<size_t>(j)];
    std::vector<uint32_t>& column_ids = ids[static_cast<size_t>(j)];
    column_ids.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      std::optional<int64_t> id =
          ParseCount(tokens[i + 2], kMaxDictEntries - 1);
      if (!id || *id >= column.dict.num_entries()) {
        return reader->Error("dictionary id out of range: " + tokens[i + 2]);
      }
      column_ids.push_back(static_cast<uint32_t>(*id));
    }
  }

  for (size_t i = 0; i < count; ++i) {
    UncertainTuple tuple;
    tuple.label = labels[i];
    tuple.values.reserve(static_cast<size_t>(num_attributes));
    for (int j = 0; j < num_attributes; ++j) {
      Column& column = columns_[static_cast<size_t>(j)];
      const uint32_t id = ids[static_cast<size_t>(j)][i];
      if (column.kind == AttributeKind::kNumerical) {
        UDT_ASSIGN_OR_RETURN(std::shared_ptr<const SampledPdf> pdf,
                             column.cache.Get(column.grid, column.dict, id));
        tuple.values.push_back(
            UncertainValue::NumericalShared(std::move(pdf)));
      } else {
        UDT_ASSIGN_OR_RETURN(
            CategoricalPdf pdf,
            DecodeCategorical(column.dict.entry(id), column.width));
        tuple.values.push_back(UncertainValue::Categorical(std::move(pdf)));
      }
    }
    UDT_RETURN_NOT_OK(out->AddTuple(std::move(tuple)));
  }

  ++next_chunk_;
  if (next_chunk_ == num_chunks_) {
    UDT_RETURN_NOT_OK(reader->Next("end"));
    if (reader->line() != "end") {
      return reader->Error("expected end line");
    }
  }
  return Status::OK();
}

size_t DatasetReader::MemoryUsageBytes() const {
  size_t bytes = sizeof(DatasetReader);
  for (const Column& column : columns_) {
    bytes += column.grid.MemoryUsageBytes() + column.dict.MemoryUsageBytes();
  }
  return bytes;
}

int64_t DatasetReader::dictionary_entries() const {
  int64_t total = 0;
  for (const Column& column : columns_) {
    total += column.dict.num_entries();
  }
  return total;
}

Status DatasetReader::Rewind() {
  // Reset the streaming bookkeeping before touching the stream: if the
  // seek below fails, the reader must still be left fully rewound — not
  // half-rewound with next_chunk_ stale and a line counter frozen at the
  // previous failure point, where a later diagnostic would report the old
  // position instead of the true one.
  next_chunk_ = 0;
  reader_ = std::make_unique<LineReader>(*in_, kContext, chunks_line_);
  in_->clear();
  in_->seekg(chunks_pos_);
  if (!*in_) return Status::IOError("seek failed on the dataset file");
  return Status::OK();
}

}  // namespace udt
