// DatasetAppendWriter: the streaming write path of the "udt-dataset v1"
// container (storage/dataset_file.h). ConvertDatasetToFile needs the whole
// data set in memory before it can quantize; the append writer instead
// fixes the quantization axes up front from a representative grid source,
// then accepts tuples one at a time — the shape a retrain window spilling
// out of a serving ring buffer arrives in. Appended pdfs are quantized and
// dictionary-interned immediately and NOT retained, so the writer's
// resident footprint is the dictionary footprint plus one uint32 id per
// value, independent of how much heavy pdf data has passed through it.
//
// The container interleaves dictionaries before chunks, and dictionaries
// grow until the last Append — so the file itself is written by Finalize,
// from the compact id columns. When the grid source IS the appended
// sequence (same tuples, same order), the finalised file is byte-identical
// to what ConvertDatasetToFile would have produced, given the same
// source-bytes figure.

#ifndef UDT_STORAGE_APPEND_WRITER_H_
#define UDT_STORAGE_APPEND_WRITER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "storage/dataset_file.h"
#include "storage/quantized_pdf.h"
#include "table/dataset.h"

namespace udt {

class DatasetAppendWriter {
 public:
  // Fixes the schema and the per-attribute grids from `grid_source`,
  // exactly as QuantizedDataset::FromDataset would: a numerical attribute
  // whose distinct sample points fit in options.bins keeps them as the
  // grid (lossless for those points); a denser one gets a uniform grid
  // over the observed range. Tuples appended later may carry points
  // outside the grid — they snap to the nearest bin, so pick a grid
  // source that covers the value range the stream is expected to produce.
  // Dictionaries start empty and grow per Append. Fails on an empty grid
  // source or invalid options.
  static StatusOr<DatasetAppendWriter> Open(
      std::string path, const Dataset& grid_source,
      const QuantizationOptions& options = {});

  // Quantizes and interns one tuple (schema-checked). The tuple is fully
  // consumed here; the writer keeps no reference to it.
  Status Append(const UncertainTuple& tuple);

  // Appends every tuple of `data` in order (schema must match).
  Status AppendAll(const Dataset& data);

  int64_t num_tuples() const {
    return static_cast<int64_t>(labels_.size());
  }
  const Schema& schema() const { return schema_; }

  // Writes the container to the path given at Open and returns the same
  // stats ConvertDatasetToFile reports. `source_decoded_bytes` overrides
  // the header's source-footprint figure; when absent the writer uses its
  // own per-tuple accounting of the decoded footprint of everything
  // appended (size-based — it cannot know a source vector's growth
  // slack). Fails on an empty writer; the writer must not be used again
  // afterwards.
  StatusOr<DatasetFileStats> Finalize(
      std::optional<size_t> source_decoded_bytes = std::nullopt);

 private:
  struct Column {
    AttributeKind kind = AttributeKind::kNumerical;
    int width = 0;
    AttributeGrid grid;  // numerical only
    PdfDictionary dict;
    std::vector<uint32_t> ids;  // one per appended tuple
  };

  DatasetAppendWriter(std::string path, Schema schema,
                      QuantizationOptions options)
      : path_(std::move(path)),
        schema_(std::move(schema)),
        options_(options) {}

  std::string path_;
  Schema schema_;
  QuantizationOptions options_;
  std::vector<Column> columns_;
  std::vector<int32_t> labels_;
  // Accumulated decoded footprint of the appended tuples (the fallback
  // source-bytes figure).
  size_t appended_decoded_bytes_ = 0;
  bool finalized_ = false;
};

}  // namespace udt

#endif  // UDT_STORAGE_APPEND_WRITER_H_
