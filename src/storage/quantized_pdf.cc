#include "storage/quantized_pdf.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"

namespace udt {
namespace {

// FNV-1a over a dictionary row's bytes.
uint64_t HashRow(const uint16_t* masses, int width) {
  uint64_t h = 1469598103934665603ull;
  const unsigned char* bytes = reinterpret_cast<const unsigned char*>(masses);
  const size_t n = static_cast<size_t>(width) * sizeof(uint16_t);
  for (size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

Status QuantizationOptions::Validate() const {
  if (bins < 2 || bins > kMaxBins) {
    return Status::InvalidArgument(
        StrFormat("quantization bins must be in [2, %d], got %d", kMaxBins,
                  bins));
  }
  if (chunk_tuples < 1) {
    return Status::InvalidArgument(
        StrFormat("chunk_tuples must be positive, got %d", chunk_tuples));
  }
  return Status::OK();
}

StatusOr<AttributeGrid> AttributeGrid::FromSortedPoints(
    std::vector<double> points) {
  if (points.empty()) {
    return Status::InvalidArgument("attribute grid must be non-empty");
  }
  if (points.size() > static_cast<size_t>(QuantizationOptions::kMaxBins)) {
    return Status::InvalidArgument(
        StrFormat("attribute grid holds %zu points, cap is %d", points.size(),
                  QuantizationOptions::kMaxBins));
  }
  for (size_t i = 0; i < points.size(); ++i) {
    if (!std::isfinite(points[i])) {
      return Status::InvalidArgument("attribute grid point is not finite");
    }
    if (i > 0 && !(points[i - 1] < points[i])) {
      return Status::InvalidArgument(
          "attribute grid points must be strictly ascending");
    }
  }
  return AttributeGrid(std::move(points));
}

AttributeGrid AttributeGrid::Uniform(double lo, double hi, int bins) {
  UDT_CHECK(bins >= 1);
  UDT_CHECK(std::isfinite(lo) && std::isfinite(hi));
  std::vector<double> points;
  if (!(hi > lo) || bins == 1) {
    points.push_back(lo);
    return AttributeGrid(std::move(points));
  }
  points.reserve(static_cast<size_t>(bins));
  for (int i = 0; i < bins; ++i) {
    // Endpoint-exact interpolation: the first point is lo, the last hi.
    const double t = static_cast<double>(i) / static_cast<double>(bins - 1);
    points.push_back(lo + (hi - lo) * t);
  }
  points.back() = hi;
  // A tiny range can round adjacent points together; the grid must stay
  // strictly ascending.
  points.erase(std::unique(points.begin(), points.end()), points.end());
  return AttributeGrid(std::move(points));
}

int AttributeGrid::NearestIndex(double x) const {
  UDT_CHECK(!points_.empty());
  const auto it = std::lower_bound(points_.begin(), points_.end(), x);
  if (it == points_.end()) return num_points() - 1;
  if (it == points_.begin()) return 0;
  const int hi = static_cast<int>(it - points_.begin());
  const int lo = hi - 1;
  return (x - points_[static_cast<size_t>(lo)] <=
          points_[static_cast<size_t>(hi)] - x)
             ? lo
             : hi;
}

std::vector<uint16_t> FixedPointMasses(const double* weights, int count) {
  UDT_CHECK(count >= 1);
  double total = 0.0;
  for (int i = 0; i < count; ++i) {
    UDT_CHECK(weights[i] >= 0.0);
    total += weights[i];
  }
  UDT_CHECK(total > 0.0);

  std::vector<uint16_t> fixed(static_cast<size_t>(count), 0);
  // (fractional remainder, index) per weight, for the leftover hand-out.
  std::vector<std::pair<double, int>> remainders;
  remainders.reserve(static_cast<size_t>(count));
  int64_t assigned = 0;
  for (int i = 0; i < count; ++i) {
    const double exact =
        weights[i] / total * static_cast<double>(kQuantizedOne);
    const double floored = std::floor(exact);
    const uint32_t units =
        static_cast<uint32_t>(std::min(floored,
                                       static_cast<double>(kQuantizedOne)));
    fixed[static_cast<size_t>(i)] = static_cast<uint16_t>(units);
    assigned += units;
    remainders.emplace_back(exact - floored, i);
  }

  int64_t leftover = static_cast<int64_t>(kQuantizedOne) - assigned;
  std::sort(remainders.begin(), remainders.end(),
            [](const std::pair<double, int>& a,
               const std::pair<double, int>& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  for (size_t k = 0; leftover > 0; k = (k + 1) % remainders.size()) {
    ++fixed[static_cast<size_t>(remainders[k].second)];
    --leftover;
  }
  // Floating-point slack can (rarely) over-assign; shave the largest bins.
  while (leftover < 0) {
    size_t argmax = 0;
    for (size_t i = 1; i < fixed.size(); ++i) {
      if (fixed[i] > fixed[argmax]) argmax = i;
    }
    --fixed[argmax];
    ++leftover;
  }
  return fixed;
}

std::vector<uint16_t> QuantizeToGrid(const SampledPdf& pdf,
                                     const AttributeGrid& grid) {
  std::vector<double> weights(static_cast<size_t>(grid.num_points()), 0.0);
  for (int i = 0; i < pdf.num_points(); ++i) {
    weights[static_cast<size_t>(grid.NearestIndex(pdf.point(i)))] +=
        pdf.mass(i);
  }
  return FixedPointMasses(weights.data(), grid.num_points());
}

StatusOr<SampledPdf> DecodeNumerical(const AttributeGrid& grid,
                                     const uint16_t* masses) {
  std::vector<double> points;
  std::vector<double> decoded;
  for (int i = 0; i < grid.num_points(); ++i) {
    if (masses[i] == 0) continue;
    points.push_back(grid.point(i));
    decoded.push_back(static_cast<double>(masses[i]) /
                      static_cast<double>(kQuantizedOne));
  }
  if (points.empty()) {
    return Status::InvalidArgument("quantized pdf carries no mass");
  }
  return SampledPdf::Create(std::move(points), std::move(decoded));
}

StatusOr<CategoricalPdf> DecodeCategorical(const uint16_t* masses,
                                           int num_categories) {
  std::vector<double> probabilities;
  probabilities.reserve(static_cast<size_t>(num_categories));
  bool any = false;
  for (int c = 0; c < num_categories; ++c) {
    probabilities.push_back(static_cast<double>(masses[c]) /
                            static_cast<double>(kQuantizedOne));
    any = any || masses[c] != 0;
  }
  if (!any) {
    return Status::InvalidArgument(
        "quantized categorical pdf carries no mass");
  }
  return CategoricalPdf::Create(std::move(probabilities));
}

uint32_t PdfDictionary::Intern(const uint16_t* masses) {
  UDT_CHECK(width_ > 0);
  const uint64_t hash = HashRow(masses, width_);
  std::vector<uint32_t>& bucket = buckets_[hash];
  const size_t row_bytes = static_cast<size_t>(width_) * sizeof(uint16_t);
  for (uint32_t id : bucket) {
    if (std::memcmp(entry(id), masses, row_bytes) == 0) return id;
  }
  const uint32_t id = Append(masses);
  bucket.push_back(id);
  return id;
}

uint32_t PdfDictionary::Append(const uint16_t* masses) {
  UDT_CHECK(width_ > 0);
  const uint32_t id = num_entries();
  pool_.insert(pool_.end(), masses, masses + width_);
  return id;
}

size_t PdfDictionary::MemoryUsageBytes() const {
  size_t bytes = sizeof(PdfDictionary) + sizeof(uint16_t) * pool_.capacity();
  // The hash index: buckets plus their id vectors (rough but honest — the
  // write path carries it, the read path's stays empty).
  bytes += buckets_.size() *
           (sizeof(uint64_t) + sizeof(std::vector<uint32_t>) +
            sizeof(void*) * 2);
  for (const auto& [hash, ids] : buckets_) {
    (void)hash;
    bytes += sizeof(uint32_t) * ids.capacity();
  }
  return bytes;
}

StatusOr<std::shared_ptr<const SampledPdf>> DecodedPdfCache::Get(
    const AttributeGrid& grid, const PdfDictionary& dict, uint32_t id) {
  if (id >= dict.num_entries()) {
    return Status::InvalidArgument(
        StrFormat("dictionary id %u out of range (dictionary holds %u)", id,
                  dict.num_entries()));
  }
  if (decoded_.size() < dict.num_entries()) {
    decoded_.resize(dict.num_entries());
  }
  std::shared_ptr<const SampledPdf>& slot = decoded_[id];
  if (slot == nullptr) {
    UDT_ASSIGN_OR_RETURN(SampledPdf pdf,
                         DecodeNumerical(grid, dict.entry(id)));
    slot = std::make_shared<const SampledPdf>(std::move(pdf));
  }
  return slot;
}

}  // namespace udt
