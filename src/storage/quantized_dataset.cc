#include "storage/quantized_dataset.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "table/schema_io.h"

namespace udt {

StatusOr<QuantizedDataset> QuantizedDataset::FromDataset(
    const Dataset& source, const QuantizationOptions& options) {
  UDT_RETURN_NOT_OK(options.Validate());
  if (source.empty()) {
    return Status::InvalidArgument("cannot quantize an empty data set");
  }

  QuantizedDataset result(source.schema(), options);
  const int num_attributes = source.num_attributes();
  const int num_tuples = source.num_tuples();
  result.columns_.resize(static_cast<size_t>(num_attributes));
  result.labels_.reserve(static_cast<size_t>(num_tuples));
  for (int i = 0; i < num_tuples; ++i) {
    result.labels_.push_back(source.tuple(i).label);
  }

  for (int j = 0; j < num_attributes; ++j) {
    Column& column = result.columns_[static_cast<size_t>(j)];
    const AttributeInfo& info = source.schema().attribute(j);
    column.kind = info.kind;
    column.ids.reserve(static_cast<size_t>(num_tuples));

    if (info.kind == AttributeKind::kCategorical) {
      column.width = info.num_categories;
      column.dict = PdfDictionary(column.width);
      std::vector<double> weights(static_cast<size_t>(column.width), 0.0);
      for (int i = 0; i < num_tuples; ++i) {
        const CategoricalPdf& pdf = source.tuple(i).values[
            static_cast<size_t>(j)].categorical();
        UDT_CHECK(pdf.num_categories() == column.width);
        for (int c = 0; c < column.width; ++c) {
          weights[static_cast<size_t>(c)] = pdf.probability(c);
        }
        const std::vector<uint16_t> fixed =
            FixedPointMasses(weights.data(), column.width);
        column.ids.push_back(column.dict.Intern(fixed.data()));
      }
      continue;
    }

    // Numerical: gather the distinct sample points, bailing to a uniform
    // grid as soon as they outgrow the bin budget (the set stays bounded
    // either way).
    std::set<double> distinct;
    bool exact = true;
    for (int i = 0; i < num_tuples && exact; ++i) {
      const SampledPdf& pdf =
          source.tuple(i).values[static_cast<size_t>(j)].pdf();
      for (int p = 0; p < pdf.num_points(); ++p) {
        distinct.insert(pdf.point(p));
        if (distinct.size() > static_cast<size_t>(options.bins)) {
          exact = false;
          break;
        }
      }
    }
    if (exact) {
      UDT_ASSIGN_OR_RETURN(
          column.grid,
          AttributeGrid::FromSortedPoints(
              std::vector<double>(distinct.begin(), distinct.end())));
    } else {
      const auto [lo, hi] = source.AttributeRange(j);
      column.grid = AttributeGrid::Uniform(lo, hi, options.bins);
    }
    column.width = column.grid.num_points();
    column.dict = PdfDictionary(column.width);
    for (int i = 0; i < num_tuples; ++i) {
      const std::vector<uint16_t> fixed = QuantizeToGrid(
          source.tuple(i).values[static_cast<size_t>(j)].pdf(), column.grid);
      column.ids.push_back(column.dict.Intern(fixed.data()));
    }
  }
  return result;
}

int64_t QuantizedDataset::num_chunks() const {
  const int64_t chunk = options_.chunk_tuples;
  return (num_tuples() + chunk - 1) / chunk;
}

Status QuantizedDataset::AppendChunk(int64_t chunk, Dataset* out) {
  if (chunk < 0 || chunk >= num_chunks()) {
    return Status::InvalidArgument(
        StrFormat("chunk %lld out of range (storage holds %lld)",
                  static_cast<long long>(chunk),
                  static_cast<long long>(num_chunks())));
  }
  const int64_t begin = chunk * options_.chunk_tuples;
  const int64_t end =
      std::min<int64_t>(begin + options_.chunk_tuples, num_tuples());
  return AppendRange(begin, end, out);
}

Status QuantizedDataset::AppendRange(int64_t begin, int64_t end,
                                     Dataset* out) {
  if (begin < 0 || end > num_tuples() || begin > end) {
    return Status::InvalidArgument("bad tuple range");
  }
  if (!SchemaEquals(out->schema(), schema_)) {
    return Status::InvalidArgument(
        "destination schema does not match the storage schema");
  }
  const int num_attributes = schema_.num_attributes();
  for (int64_t i = begin; i < end; ++i) {
    UncertainTuple tuple;
    tuple.label = labels_[static_cast<size_t>(i)];
    tuple.values.reserve(static_cast<size_t>(num_attributes));
    for (int j = 0; j < num_attributes; ++j) {
      Column& column = columns_[static_cast<size_t>(j)];
      const uint32_t id = column.ids[static_cast<size_t>(i)];
      if (column.kind == AttributeKind::kNumerical) {
        UDT_ASSIGN_OR_RETURN(std::shared_ptr<const SampledPdf> pdf,
                             column.cache.Get(column.grid, column.dict, id));
        tuple.values.push_back(UncertainValue::NumericalShared(std::move(pdf)));
      } else {
        UDT_ASSIGN_OR_RETURN(
            CategoricalPdf pdf,
            DecodeCategorical(column.dict.entry(id), column.width));
        tuple.values.push_back(UncertainValue::Categorical(std::move(pdf)));
      }
    }
    UDT_RETURN_NOT_OK(out->AddTuple(std::move(tuple)));
  }
  return Status::OK();
}

size_t QuantizedDataset::MemoryUsageBytes() const {
  size_t bytes = sizeof(QuantizedDataset) +
                 sizeof(int32_t) * labels_.capacity();
  for (const Column& column : columns_) {
    bytes += column.grid.MemoryUsageBytes() + column.dict.MemoryUsageBytes() +
             sizeof(uint32_t) * column.ids.capacity();
  }
  return bytes;
}

int64_t QuantizedDataset::dictionary_entries() const {
  int64_t total = 0;
  for (const Column& column : columns_) {
    total += column.dict.num_entries();
  }
  return total;
}

double QuantizedDataset::dictionary_hit_rate() const {
  const double values =
      static_cast<double>(num_tuples()) * schema_.num_attributes();
  if (values <= 0.0) return 0.0;
  return 1.0 - static_cast<double>(dictionary_entries()) / values;
}

const AttributeGrid& QuantizedDataset::grid(int attribute) const {
  const Column& column = columns_[static_cast<size_t>(attribute)];
  UDT_CHECK(column.kind == AttributeKind::kNumerical);
  return column.grid;
}

const PdfDictionary& QuantizedDataset::dictionary(int attribute) const {
  return columns_[static_cast<size_t>(attribute)].dict;
}

const std::vector<uint32_t>& QuantizedDataset::column_ids(
    int attribute) const {
  return columns_[static_cast<size_t>(attribute)].ids;
}

}  // namespace udt
