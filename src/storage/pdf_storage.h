// PdfStorage: the seam between how uncertain tuples are *stored* and how
// the trainers consume them. A storage backend exposes its tuples as
// decodable chunks; MaterializeDataset streams every chunk into one
// in-memory Dataset under a byte budget, and the result feeds the existing
// Trainer/ForestTrainer unchanged — the split search and the kernels never
// see the storage representation, only ordinary SampledPdfs.
//
// Backends:
//   * ExactPdfStorage (here)            — a view over an in-memory Dataset,
//     chunked; the identity baseline every quantized result is compared
//     against.
//   * QuantizedDataset (quantized_dataset.h) — columnar quantized form.
//   * DatasetReader (dataset_file.h)    — the "udt-dataset v1" on-disk
//     container, chunk-streamed so only grids + dictionaries stay resident.

#ifndef UDT_STORAGE_PDF_STORAGE_H_
#define UDT_STORAGE_PDF_STORAGE_H_

#include <cstddef>
#include <cstdint>

#include "common/statusor.h"
#include "table/dataset.h"

namespace udt {

// Memory ceiling for a training materialisation. The budget is enforced
// against the *pooled* footprint (Dataset::MemoryUsageBytes, which counts
// each shared pdf instance once) — the bytes the working set actually
// occupies — so a source whose exact decoded size dwarfs the budget still
// trains as long as its distinct distributions fit.
struct StorageBudget {
  // 0 = unlimited.
  size_t max_materialized_bytes = 0;
};

// Abstract chunked source of uncertain tuples.
class PdfStorage {
 public:
  virtual ~PdfStorage() = default;

  virtual const Schema& schema() const = 0;
  virtual int64_t num_tuples() const = 0;
  virtual int64_t num_chunks() const = 0;

  // Decodes chunk `chunk` (0-based) and appends its tuples to `out`, whose
  // schema must match. Streaming backends may require ascending chunk
  // order; all backends accept the 0..num_chunks()-1 sweep
  // MaterializeDataset performs.
  virtual Status AppendChunk(int64_t chunk, Dataset* out) = 0;

  // Resident bytes of the storage representation itself (grids,
  // dictionaries, id columns) — not of anything decoded from it.
  virtual size_t MemoryUsageBytes() const = 0;
};

// The identity backend: a chunked view over an existing in-memory Dataset.
// AppendChunk copies tuples by value, which shares the underlying pdf
// instances (UncertainValue holds them behind shared handles), so
// materialising through this backend costs tuple structs, not pdf payloads.
class ExactPdfStorage final : public PdfStorage {
 public:
  // `source` must outlive the storage. `chunk_tuples` sets the streaming
  // granularity.
  explicit ExactPdfStorage(const Dataset* source, int64_t chunk_tuples = 1024);

  const Schema& schema() const override { return source_->schema(); }
  int64_t num_tuples() const override { return source_->num_tuples(); }
  int64_t num_chunks() const override;
  Status AppendChunk(int64_t chunk, Dataset* out) override;
  size_t MemoryUsageBytes() const override {
    return source_->MemoryUsageBytes();
  }

 private:
  const Dataset* source_;
  int64_t chunk_tuples_;
};

// Streams chunks 0..num_chunks()-1 of `storage` into one Dataset, checking
// `budget` against the materialised footprint after every chunk, so an
// oversized source fails at the first chunk that bursts the ceiling
// instead of after decoding everything. Fails (OutOfRange) on a burst
// budget and (InvalidArgument) on an empty source.
StatusOr<Dataset> MaterializeDataset(PdfStorage* storage,
                                     const StorageBudget& budget = {});

}  // namespace udt

#endif  // UDT_STORAGE_PDF_STORAGE_H_
