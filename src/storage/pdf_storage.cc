#include "storage/pdf_storage.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"
#include "table/schema_io.h"

namespace udt {

ExactPdfStorage::ExactPdfStorage(const Dataset* source, int64_t chunk_tuples)
    : source_(source), chunk_tuples_(chunk_tuples) {
  UDT_CHECK(source_ != nullptr);
  UDT_CHECK(chunk_tuples_ >= 1);
}

int64_t ExactPdfStorage::num_chunks() const {
  return (num_tuples() + chunk_tuples_ - 1) / chunk_tuples_;
}

Status ExactPdfStorage::AppendChunk(int64_t chunk, Dataset* out) {
  if (chunk < 0 || chunk >= num_chunks()) {
    return Status::InvalidArgument(
        StrFormat("chunk %lld out of range (storage holds %lld)",
                  static_cast<long long>(chunk),
                  static_cast<long long>(num_chunks())));
  }
  if (!SchemaEquals(out->schema(), schema())) {
    return Status::InvalidArgument(
        "destination schema does not match the storage schema");
  }
  const int64_t begin = chunk * chunk_tuples_;
  const int64_t end =
      std::min<int64_t>(begin + chunk_tuples_, num_tuples());
  for (int64_t i = begin; i < end; ++i) {
    // A tuple copy shares the pdf instances behind the value handles.
    UDT_RETURN_NOT_OK(out->AddTuple(source_->tuple(static_cast<int>(i))));
  }
  return Status::OK();
}

StatusOr<Dataset> MaterializeDataset(PdfStorage* storage,
                                     const StorageBudget& budget) {
  UDT_CHECK(storage != nullptr);
  Dataset out(storage->schema());
  const int64_t chunks = storage->num_chunks();
  for (int64_t c = 0; c < chunks; ++c) {
    UDT_RETURN_NOT_OK(storage->AppendChunk(c, &out));
    if (budget.max_materialized_bytes > 0) {
      const size_t used = out.MemoryUsageBytes();
      if (used > budget.max_materialized_bytes) {
        return Status::OutOfRange(StrFormat(
            "materialised working set exceeds the memory budget after chunk "
            "%lld of %lld: %zu > %zu bytes",
            static_cast<long long>(c + 1), static_cast<long long>(chunks),
            used, budget.max_materialized_bytes));
      }
    }
  }
  if (out.empty()) {
    return Status::InvalidArgument("storage holds no tuples");
  }
  return out;
}

}  // namespace udt
