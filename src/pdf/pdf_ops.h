// Algebra on sampled pdfs: mixtures (the "average of pdfs" used for
// missing-value imputation, Section 2), quantiles (percentile end points,
// Section 7.3), downsampling to a fixed s, and convolution (the sum of two
// independent error sources, the situation analysed in Section 4.4 where
// inherent noise and injected perturbation compose as sigma^2 + delta^2).

#ifndef UDT_PDF_PDF_OPS_H_
#define UDT_PDF_PDF_OPS_H_

#include <vector>

#include "common/statusor.h"
#include "pdf/pdf.h"

namespace udt {

// Weighted mixture sum_i w_i * f_i, renormalised. Weights must be
// non-negative with positive total; defaults to equal weights when empty.
StatusOr<SampledPdf> MixPdfs(const std::vector<SampledPdf>& pdfs,
                             std::vector<double> weights = {});

// Smallest sample point x with P(X <= x) >= q. Requires q in [0, 1].
double PdfQuantile(const SampledPdf& pdf, double q);

// Re-bins the distribution onto `s` equal-width cells over its support
// (mass within a cell collapses to the cell's mass-weighted mean). The
// result has at most s points, exactly preserves total mass, and preserves
// the mean up to rounding. Requires s >= 1.
StatusOr<SampledPdf> DownsamplePdf(const SampledPdf& pdf, int s);

// Distribution of X + Y for independent X ~ a, Y ~ b. The exact discrete
// convolution has up to |a|*|b| points; pass `max_points` > 0 to downsample
// the result.
StatusOr<SampledPdf> ConvolvePdfs(const SampledPdf& a, const SampledPdf& b,
                                  int max_points = 0);

// Kolmogorov-Smirnov distance sup_z |F_a(z) - F_b(z)| between two sampled
// pdfs; 0 iff they induce the same CDF.
double KsDistance(const SampledPdf& a, const SampledPdf& b);

}  // namespace udt

#endif  // UDT_PDF_PDF_OPS_H_
