#include "pdf/pdf_ops.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/math.h"

namespace udt {

StatusOr<SampledPdf> MixPdfs(const std::vector<SampledPdf>& pdfs,
                             std::vector<double> weights) {
  if (pdfs.empty()) {
    return Status::InvalidArgument("cannot mix zero pdfs");
  }
  if (weights.empty()) {
    weights.assign(pdfs.size(), 1.0);
  }
  if (weights.size() != pdfs.size()) {
    return Status::InvalidArgument("weights/pdfs size mismatch");
  }
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0 || !std::isfinite(w)) {
      return Status::InvalidArgument("mixture weights must be finite, >= 0");
    }
    total += w;
  }
  if (total <= 0.0) {
    return Status::InvalidArgument("mixture weights carry no mass");
  }
  std::vector<double> points;
  std::vector<double> masses;
  for (size_t i = 0; i < pdfs.size(); ++i) {
    if (weights[i] <= 0.0) continue;
    for (int p = 0; p < pdfs[i].num_points(); ++p) {
      points.push_back(pdfs[i].point(p));
      masses.push_back(pdfs[i].mass(p) * weights[i]);
    }
  }
  return SampledPdf::Create(std::move(points), std::move(masses));
}

double PdfQuantile(const SampledPdf& pdf, double q) {
  UDT_CHECK(q >= 0.0 && q <= 1.0);
  if (q <= 0.0) return pdf.support_min();
  // Smallest index with cumulative >= q.
  int lo = 0;
  int hi = pdf.num_points() - 1;
  while (lo < hi) {
    int mid = lo + (hi - lo) / 2;
    if (pdf.CdfAtOrBelow(pdf.point(mid)) >= q - kMassEpsilon) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return pdf.point(lo);
}

StatusOr<SampledPdf> DownsamplePdf(const SampledPdf& pdf, int s) {
  if (s < 1) return Status::InvalidArgument("s must be >= 1");
  if (pdf.num_points() <= s) return pdf;
  double lo = pdf.support_min();
  double hi = pdf.support_max();
  double cell = (hi - lo) / s;
  if (!(cell > 0.0)) {
    // Zero-width support: every sample point coincides (or the width
    // underflows to zero against s). The cell walk below would assign all
    // mass to the first cell anyway, but only by accident of its boundary
    // arithmetic — and in Release builds the old DCHECK silently let that
    // accident carry the result. Collapse explicitly to the single
    // mass-weighted point instead.
    KahanSum mass_sum;
    KahanSum moment_sum;
    for (int p = 0; p < pdf.num_points(); ++p) {
      mass_sum.Add(pdf.mass(p));
      moment_sum.Add(pdf.point(p) * pdf.mass(p));
    }
    return SampledPdf::Create({moment_sum.value() / mass_sum.value()},
                              {mass_sum.value()});
  }

  std::vector<double> points;
  std::vector<double> masses;
  points.reserve(static_cast<size_t>(s));
  masses.reserve(static_cast<size_t>(s));
  int p = 0;
  for (int c = 0; c < s && p < pdf.num_points(); ++c) {
    double cell_hi = c + 1 == s ? hi : lo + (c + 1) * cell;
    KahanSum mass_sum;
    KahanSum moment_sum;
    while (p < pdf.num_points() &&
           (pdf.point(p) <= cell_hi || c + 1 == s)) {
      mass_sum.Add(pdf.mass(p));
      moment_sum.Add(pdf.point(p) * pdf.mass(p));
      ++p;
    }
    if (mass_sum.value() > 0.0) {
      points.push_back(moment_sum.value() / mass_sum.value());
      masses.push_back(mass_sum.value());
    }
  }
  return SampledPdf::Create(std::move(points), std::move(masses));
}

StatusOr<SampledPdf> ConvolvePdfs(const SampledPdf& a, const SampledPdf& b,
                                  int max_points) {
  size_t result_size = static_cast<size_t>(a.num_points()) *
                       static_cast<size_t>(b.num_points());
  if (result_size > 4000000) {
    return Status::InvalidArgument(
        "convolution would exceed 4M points; downsample the inputs first");
  }
  std::vector<double> points;
  std::vector<double> masses;
  points.reserve(result_size);
  masses.reserve(result_size);
  for (int i = 0; i < a.num_points(); ++i) {
    for (int j = 0; j < b.num_points(); ++j) {
      points.push_back(a.point(i) + b.point(j));
      masses.push_back(a.mass(i) * b.mass(j));
    }
  }
  UDT_ASSIGN_OR_RETURN(SampledPdf result,
                       SampledPdf::Create(std::move(points),
                                          std::move(masses)));
  if (max_points > 0 && result.num_points() > max_points) {
    return DownsamplePdf(result, max_points);
  }
  return result;
}

double KsDistance(const SampledPdf& a, const SampledPdf& b) {
  double worst = 0.0;
  for (int i = 0; i < a.num_points(); ++i) {
    double z = a.point(i);
    worst = std::max(worst,
                     std::fabs(a.CdfAtOrBelow(z) - b.CdfAtOrBelow(z)));
  }
  for (int i = 0; i < b.num_points(); ++i) {
    double z = b.point(i);
    worst = std::max(worst,
                     std::fabs(a.CdfAtOrBelow(z) - b.CdfAtOrBelow(z)));
  }
  return worst;
}

}  // namespace udt
