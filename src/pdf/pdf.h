// SampledPdf: the paper's representation of an uncertain attribute value.
//
// Section 3.2: "a pdf would be implemented numerically by storing a set of s
// sample points x in [a,b] with the associated value f(x), effectively
// approximating f by a discrete distribution with s possible values."
//
// SampledPdf is exactly that discrete distribution: sorted sample points
// with strictly positive masses summing to one, plus a prefix-sum array so
// that P(X <= z) — the integral the tree algorithms evaluate at every
// candidate split — costs O(log s) ("by storing the pdf in the form of a
// cumulative distribution, the integration can be done by simply
// subtracting two cumulative probabilities", Section 4.2).

#ifndef UDT_PDF_PDF_H_
#define UDT_PDF_PDF_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/statusor.h"

namespace udt {

// Immutable discrete probability distribution over a bounded support.
// Cheap to copy by design (a Dataset shares tuples across folds by value);
// the vectors are the only storage.
class SampledPdf {
 public:
  // Builds a pdf from parallel arrays of sample points and non-negative
  // masses. Points need not be sorted or unique: they are sorted, duplicates
  // are merged and zero-mass points dropped. Masses are renormalised to sum
  // to one. Fails if the arrays mismatch, are empty, contain non-finite
  // values, or carry no positive mass.
  static StatusOr<SampledPdf> Create(std::vector<double> points,
                                     std::vector<double> masses);

  // A distribution concentrated at a single value (a certain attribute).
  static SampledPdf PointMass(double x);

  // Number of distinct sample points (the paper's s, after deduplication).
  int num_points() const { return static_cast<int>(points_.size()); }

  // i-th sample point, ascending order. Requires 0 <= i < num_points().
  double point(int i) const { return points_[static_cast<size_t>(i)]; }

  // Mass at the i-th sample point; strictly positive.
  double mass(int i) const { return masses_[static_cast<size_t>(i)]; }

  // Smallest / largest sample point: the support [a_ij, b_ij] of the paper.
  double support_min() const { return points_.front(); }
  double support_max() const { return points_.back(); }

  // True if the whole mass sits on one point.
  bool is_point() const { return points_.size() == 1; }

  // Expected value (the representative value used by the AVG approach).
  double Mean() const { return mean_; }

  // Variance of the discrete distribution.
  double Variance() const;

  // P(X <= z), in O(log s).
  double CdfAtOrBelow(double z) const;

  // Raw array views for the branchless batch kernels (pdf/pdf_kernels.h):
  // num_points() ascending unique sample points and their prefix-sum
  // cumulative masses (cumulative_data()[num_points()-1] is exactly 1.0).
  const double* points_data() const { return points_.data(); }
  const double* cumulative_data() const { return cumulative_.data(); }

  // P(lo < X <= hi) = F(hi) - F(lo). Returns 0 when hi <= lo.
  double MassInHalfOpen(double lo, double hi) const;

  // Index of the first sample point strictly greater than z, or num_points()
  // if none. Used by the split scanners to enumerate candidates.
  int FirstPointAbove(double z) const;

  // Human-readable one-line summary, e.g. "{-1:0.625, 1:0.125, 10:0.25}".
  std::string ToString() const;

  // Heap + struct footprint of this pdf: sizeof(SampledPdf) plus the three
  // sample arrays' allocations. The storage tier's memory accounting
  // (table/dataset.h MemoryBreakdown) sums this per distinct instance.
  size_t MemoryUsageBytes() const;

 private:
  SampledPdf(std::vector<double> points, std::vector<double> masses,
             std::vector<double> cumulative, double mean)
      : points_(std::move(points)),
        masses_(std::move(masses)),
        cumulative_(std::move(cumulative)),
        mean_(mean) {}

  std::vector<double> points_;      // ascending, unique
  std::vector<double> masses_;      // positive, sums to 1
  std::vector<double> cumulative_;  // cumulative_[i] = sum(masses_[0..i])
  double mean_;
};

}  // namespace udt

#endif  // UDT_PDF_PDF_H_
