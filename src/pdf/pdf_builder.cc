#include "pdf/pdf_builder.h"

#include <cmath>

namespace udt {

namespace {

// Midpoints of s equal-width cells covering [lo, hi].
std::vector<double> MidpointGrid(double lo, double hi, int s) {
  std::vector<double> grid(static_cast<size_t>(s));
  double cell = (hi - lo) / s;
  for (int i = 0; i < s; ++i) {
    grid[static_cast<size_t>(i)] = lo + (i + 0.5) * cell;
  }
  return grid;
}

}  // namespace

StatusOr<SampledPdf> MakeUniformPdf(double lo, double hi, int s) {
  if (s < 1) return Status::InvalidArgument("sample count must be >= 1");
  if (!(lo < hi)) return Status::InvalidArgument("requires lo < hi");
  std::vector<double> points = MidpointGrid(lo, hi, s);
  std::vector<double> masses(static_cast<size_t>(s), 1.0 / s);
  return SampledPdf::Create(std::move(points), std::move(masses));
}

StatusOr<SampledPdf> MakeTruncatedGaussianPdf(double mean, double stddev,
                                              double lo, double hi, int s) {
  if (s < 1) return Status::InvalidArgument("sample count must be >= 1");
  if (!(lo < hi)) return Status::InvalidArgument("requires lo < hi");
  if (!(stddev > 0.0)) return Status::InvalidArgument("requires stddev > 0");
  std::vector<double> points = MidpointGrid(lo, hi, s);
  std::vector<double> masses(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    double z = (points[i] - mean) / stddev;
    masses[i] = std::exp(-0.5 * z * z);  // Create() renormalises.
  }
  return SampledPdf::Create(std::move(points), std::move(masses));
}

StatusOr<SampledPdf> MakeGaussianErrorPdf(double value, double width, int s) {
  if (width < 0.0) return Status::InvalidArgument("width must be >= 0");
  if (width == 0.0) return SampledPdf::PointMass(value);
  // Section 4.3: interval width w*|A|, standard deviation a quarter of it.
  return MakeTruncatedGaussianPdf(value, width / 4.0, value - width / 2.0,
                                  value + width / 2.0, s);
}

StatusOr<SampledPdf> MakeUniformErrorPdf(double value, double width, int s) {
  if (width < 0.0) return Status::InvalidArgument("width must be >= 0");
  if (width == 0.0) return SampledPdf::PointMass(value);
  return MakeUniformPdf(value - width / 2.0, value + width / 2.0, s);
}

StatusOr<SampledPdf> MakePdfFromSamples(const std::vector<double>& samples) {
  if (samples.empty()) {
    return Status::InvalidArgument("cannot build a pdf from zero samples");
  }
  std::vector<double> masses(samples.size(), 1.0 / samples.size());
  return SampledPdf::Create(samples, std::move(masses));
}

}  // namespace udt
