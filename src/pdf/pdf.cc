#include "pdf/pdf.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "common/logging.h"
#include "common/math.h"
#include "common/string_util.h"

namespace udt {

StatusOr<SampledPdf> SampledPdf::Create(std::vector<double> points,
                                        std::vector<double> masses) {
  if (points.size() != masses.size()) {
    return Status::InvalidArgument("points/masses size mismatch");
  }
  if (points.empty()) {
    return Status::InvalidArgument("pdf requires at least one sample point");
  }
  for (size_t i = 0; i < points.size(); ++i) {
    if (!std::isfinite(points[i]) || !std::isfinite(masses[i])) {
      return Status::InvalidArgument("pdf sample points must be finite");
    }
    if (masses[i] < 0.0) {
      return Status::InvalidArgument("pdf masses must be non-negative");
    }
  }

  // Sort jointly by point, then merge duplicates and drop zero masses.
  std::vector<size_t> order(points.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return points[a] < points[b]; });

  std::vector<double> sorted_points;
  std::vector<double> sorted_masses;
  sorted_points.reserve(points.size());
  sorted_masses.reserve(points.size());
  for (size_t idx : order) {
    double x = points[idx];
    double m = masses[idx];
    if (m <= 0.0) continue;
    if (!sorted_points.empty() && sorted_points.back() == x) {
      sorted_masses.back() += m;
    } else {
      sorted_points.push_back(x);
      sorted_masses.push_back(m);
    }
  }
  if (sorted_points.empty()) {
    return Status::InvalidArgument("pdf carries no positive mass");
  }

  double total =
      std::accumulate(sorted_masses.begin(), sorted_masses.end(), 0.0);
  UDT_DCHECK(total > 0.0);

  std::vector<double> cumulative(sorted_masses.size());
  KahanSum running;
  KahanSum mean_sum;
  for (size_t i = 0; i < sorted_masses.size(); ++i) {
    sorted_masses[i] /= total;
    running.Add(sorted_masses[i]);
    cumulative[i] = running.value();
    mean_sum.Add(sorted_points[i] * sorted_masses[i]);
  }
  // Force exact normalisation at the top so F(support_max) == 1.
  cumulative.back() = 1.0;

  return SampledPdf(std::move(sorted_points), std::move(sorted_masses),
                    std::move(cumulative), mean_sum.value());
}

SampledPdf SampledPdf::PointMass(double x) {
  UDT_CHECK(std::isfinite(x));
  return SampledPdf({x}, {1.0}, {1.0}, x);
}

double SampledPdf::Variance() const {
  KahanSum sum;
  for (size_t i = 0; i < points_.size(); ++i) {
    double d = points_[i] - mean_;
    sum.Add(d * d * masses_[i]);
  }
  return sum.value();
}

double SampledPdf::CdfAtOrBelow(double z) const {
  // Index of the last point <= z.
  auto it = std::upper_bound(points_.begin(), points_.end(), z);
  if (it == points_.begin()) return 0.0;
  size_t last = static_cast<size_t>(it - points_.begin()) - 1;
  return cumulative_[last];
}

double SampledPdf::MassInHalfOpen(double lo, double hi) const {
  if (hi <= lo) return 0.0;
  return CdfAtOrBelow(hi) - CdfAtOrBelow(lo);
}

int SampledPdf::FirstPointAbove(double z) const {
  auto it = std::upper_bound(points_.begin(), points_.end(), z);
  return static_cast<int>(it - points_.begin());
}

size_t SampledPdf::MemoryUsageBytes() const {
  // Capacities, not sizes: the allocator handed out the capacity.
  return sizeof(SampledPdf) +
         sizeof(double) *
             (points_.capacity() + masses_.capacity() + cumulative_.capacity());
}

std::string SampledPdf::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < points_.size(); ++i) {
    if (i > 0) out += ", ";
    out += StrFormat("%g:%g", points_[i], masses_[i]);
  }
  out += "}";
  return out;
}

}  // namespace udt
