// Branchless CDF kernels over SampledPdf's raw arrays — the pdf
// mass/integration inner loops that dominate both batch classification and
// split search (the paper's Section 4.2 observation that every candidate
// split costs two cumulative lookups).
//
// Two ideas, both bitwise-faithful to the scalar reference path
// (SampledPdf::CdfAtOrBelow via std::upper_bound):
//
//  * Branchless binary search. The classic half-interval upper-bound loop
//    below touches a data-dependent branch once per probe; rewritten as a
//    conditional add it compiles to a cmov chain the CPU never
//    mispredicts. The loop's length sequence depends only on num_points(),
//    never on the key.
//
//  * Lockstep multi-search. Because the length sequence is key-independent,
//    several searches over the same points array advance through the same
//    iteration schedule and can share one loop: the three probes a
//    numerical tree node needs (F(lo), F(hi), F(z)) issue together, giving
//    the out-of-order core three independent load chains instead of one.
//
// No special cases for infinite bounds: searching +inf lands at
// num_points() and reads cumulative.back(), which SampledPdf::Create forces
// to exactly 1.0; searching -inf lands at 0 and yields exactly 0.0 — the
// same values the scalar code's `hi == inf ? 1.0 : ...` branches produce.

#ifndef UDT_PDF_PDF_KERNELS_H_
#define UDT_PDF_PDF_KERNELS_H_

#include <cstddef>

#include "pdf/pdf.h"

namespace udt {

// Index of the first point strictly greater than z (== std::upper_bound
// over [points, points + n)), branchless. Requires n >= 1.
inline size_t BranchlessUpperBound(const double* points, size_t n, double z) {
  size_t base = 0;
  size_t len = n;
  while (len > 1) {
    const size_t half = len / 2;
    base += points[base + half - 1] <= z ? half : 0;
    len -= half;
  }
  return base + (points[base] <= z ? 1 : 0);
}

// F(z) = P(X <= z) via the branchless search; bitwise-identical to
// SampledPdf::CdfAtOrBelow (same index, same cumulative read).
inline double PdfCdfAtOrBelow(const SampledPdf& pdf, double z) {
  const double* points = pdf.points_data();
  const size_t n = static_cast<size_t>(pdf.num_points());
  const size_t idx = BranchlessUpperBound(points, n, z);
  return idx == 0 ? 0.0 : pdf.cumulative_data()[idx - 1];
}

// P(lo < X <= hi) under the path constraint — two lockstep searches.
// Bitwise-identical to the scalar ConstrainedMass (F at +-inf resolves to
// the exact 1.0 / 0.0 the scalar branches return; see header comment).
inline double PdfConstrainedMass(const SampledPdf& pdf, double lo, double hi) {
  const double* points = pdf.points_data();
  const double* cumulative = pdf.cumulative_data();
  const size_t n = static_cast<size_t>(pdf.num_points());
  size_t base_lo = 0;
  size_t base_hi = 0;
  size_t len = n;
  while (len > 1) {
    const size_t half = len / 2;
    base_lo += points[base_lo + half - 1] <= lo ? half : 0;
    base_hi += points[base_hi + half - 1] <= hi ? half : 0;
    len -= half;
  }
  const size_t idx_lo = base_lo + (points[base_lo] <= lo ? 1 : 0);
  const size_t idx_hi = base_hi + (points[base_hi] <= hi ? 1 : 0);
  const double lower = idx_lo == 0 ? 0.0 : cumulative[idx_lo - 1];
  const double upper = idx_hi == 0 ? 0.0 : cumulative[idx_hi - 1];
  return upper - lower;
}

// Everything a numerical tree node needs from one tuple's pdf: the
// remaining constrained mass and the conditional probability of the left
// branch. `p_left` is meaningful only when mass > 0 (the traversal prunes
// the node otherwise — same contract as the scalar ConditionalCdf, whose
// Debug DCHECK fires on mass <= 0).
struct PdfSplitEval {
  double mass;
  double p_left;
};

// Fused ConstrainedMass + ConditionalCdf: three lockstep searches (lo, hi,
// z) in one loop. Bitwise-identical to calling the two scalar functions in
// sequence: identical index -> cumulative reads, identical subtraction /
// division / clamp order, and the scalar's early `z >= hi -> 1.0` and
// `part <= 0 -> 0.0` returns become selects over the same values.
inline PdfSplitEval PdfEvalNumericalSplit(const SampledPdf& pdf, double lo,
                                          double hi, double z) {
  const double* points = pdf.points_data();
  const double* cumulative = pdf.cumulative_data();
  const size_t n = static_cast<size_t>(pdf.num_points());
  size_t base_lo = 0;
  size_t base_hi = 0;
  size_t base_z = 0;
  size_t len = n;
  while (len > 1) {
    const size_t half = len / 2;
    base_lo += points[base_lo + half - 1] <= lo ? half : 0;
    base_hi += points[base_hi + half - 1] <= hi ? half : 0;
    base_z += points[base_z + half - 1] <= z ? half : 0;
    len -= half;
  }
  const size_t idx_lo = base_lo + (points[base_lo] <= lo ? 1 : 0);
  const size_t idx_hi = base_hi + (points[base_hi] <= hi ? 1 : 0);
  const size_t idx_z = base_z + (points[base_z] <= z ? 1 : 0);
  const double lower = idx_lo == 0 ? 0.0 : cumulative[idx_lo - 1];
  const double upper = idx_hi == 0 ? 0.0 : cumulative[idx_hi - 1];
  const double at_z = idx_z == 0 ? 0.0 : cumulative[idx_z - 1];

  PdfSplitEval eval;
  eval.mass = upper - lower;
  const double part = at_z - lower;
  double p = part <= 0.0 ? 0.0 : part / eval.mass;
  if (p > 1.0) p = 1.0;
  if (z >= hi) p = 1.0;
  eval.p_left = p;
  return eval;
}

}  // namespace udt

#endif  // UDT_PDF_PDF_KERNELS_H_
