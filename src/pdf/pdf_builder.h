// Factories for the error models the paper evaluates (Section 4.3):
// uniform and truncated-Gaussian pdfs over a controlled-width interval, plus
// empirical pdfs built from raw repeated measurements (the "JapaneseVowel"
// pipeline) and point masses for certain data.

#ifndef UDT_PDF_PDF_BUILDER_H_
#define UDT_PDF_PDF_BUILDER_H_

#include <vector>

#include "common/statusor.h"
#include "pdf/pdf.h"

namespace udt {

// Uniform distribution over [lo, hi] discretised into `s` sample points at
// the midpoints of s equal-width cells, each with mass 1/s. The mean is
// exactly (lo+hi)/2. Requires lo < hi and s >= 1.
StatusOr<SampledPdf> MakeUniformPdf(double lo, double hi, int s);

// Gaussian with the given mean/stddev truncated to [lo, hi] and
// renormalised (the paper: "the Gaussian distribution is chopped at both
// ends symmetrically, and the remaining nonzero region around the mean is
// renormalized"). Discretised into `s` midpoint samples with mass
// proportional to the density. Requires lo < hi, stddev > 0, s >= 1.
StatusOr<SampledPdf> MakeTruncatedGaussianPdf(double mean, double stddev,
                                              double lo, double hi, int s);

// The paper's Gaussian error model for a recorded value v: support
// [v - width/2, v + width/2], stddev = width/4 (Section 4.3). A zero width
// yields a point mass at v.
StatusOr<SampledPdf> MakeGaussianErrorPdf(double value, double width, int s);

// The paper's uniform (quantisation) error model for a recorded value v:
// uniform over [v - width/2, v + width/2]. A zero width yields a point mass.
StatusOr<SampledPdf> MakeUniformErrorPdf(double value, double width, int s);

// Empirical distribution of raw repeated measurements, each sample weighted
// equally (duplicates merge). This is how the "JapaneseVowel" pdfs are
// modelled from the 7-29 raw samples per value. Fails on empty input.
StatusOr<SampledPdf> MakePdfFromSamples(const std::vector<double>& samples);

}  // namespace udt

#endif  // UDT_PDF_PDF_BUILDER_H_
