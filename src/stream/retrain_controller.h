// udt::stream::RetrainController — the actuator of the adaptive serving
// loop. It accumulates labeled feedback tuples in a bounded ring window
// (the most recent window_capacity tuples — the freshest picture of the
// live distribution), and on a trigger (a DriftEvent, a tuple-count
// schedule, or an explicit call) it:
//
//   1. splits the window into a training set and a deterministic holdout,
//   2. trains a candidate forest through the unified TrainRequest entry
//      point — optionally warm-starting from the incumbent's first
//      warm_trees trees, optionally spilling the training split through
//      the "udt-dataset v1" append path and training out-of-core from the
//      re-opened container (the storage round-trip the compact tier
//      guarantees is lossless at serving precision),
//   3. validates the candidate against the holdout and against the
//      incumbent's holdout accuracy,
//   4. publishes the candidate through the ModelRegistry (atomic hot swap:
//      the queue's next drain serves it) — or rolls it back untouched if
//      it regressed beyond max_regression.
//
// The controller never blocks serving: training happens on the caller's
// thread (the adaptive server invokes it from its feedback path) while the
// BatchingQueue keeps draining against the incumbent snapshot; the swap is
// one registry pointer replacement. Not thread-safe; callers serialise.
// The adaptive server's instance is declared UDT_GUARDED_BY(retrain_mu_),
// so under clang's -Wthread-safety that serialisation is
// compiler-enforced, not hoped for.

#ifndef UDT_STREAM_RETRAIN_CONTROLLER_H_
#define UDT_STREAM_RETRAIN_CONTROLLER_H_

#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <optional>
#include <string>

#include "api/forest.h"
#include "common/statusor.h"
#include "serve/model_registry.h"
#include "storage/quantized_pdf.h"
#include "table/dataset.h"

namespace udt {
namespace stream {

struct RetrainPolicy {
  // Labeled tuples retained: the training window. Oldest fall off first.
  size_t window_capacity = 2048;

  // Retrain refuses to run (NotEnoughData... InvalidArgument) below this
  // many window tuples — a forest trained on a handful of tuples would
  // validate as noise.
  size_t min_window = 64;

  // Tuple-count schedule: when > 0, ScheduleDue() turns true every this
  // many labeled tuples since the last publish, drift or not. 0 disables
  // (drift-triggered only).
  int64_t schedule_every = 0;

  // Fraction of the window held out for validation (deterministic
  // striding, so the same window always yields the same split).
  double holdout_fraction = 0.25;

  // Rollback rule: the candidate must score at least
  // incumbent_holdout_accuracy - max_regression to be published.
  double max_regression = 0.02;

  // Carry this many incumbent trees into each candidate (TrainRequest
  // warm start); 0 retrains every tree from scratch.
  int warm_trees = 0;

  // When true, the training split is written through DatasetAppendWriter
  // to `spill_path` and the candidate trains from the re-opened
  // DatasetReader (TrainRequest::ForStorage) — the out-of-core window
  // assembly. When false the window trains in memory.
  bool spill_to_storage = false;
  std::string spill_path;
  QuantizationOptions spill_options;

  Status Validate() const;
};

// What one retrain attempt did.
struct RetrainReport {
  std::string reason;
  bool published = false;
  bool rolled_back = false;
  // Registry version of the published candidate (0 when rolled back).
  uint64_t version = 0;
  int64_t window_tuples = 0;
  int64_t holdout_tuples = 0;
  // Holdout accuracies; incumbent_accuracy is NaN for the first publish
  // (nothing to compare against).
  double candidate_accuracy = std::numeric_limits<double>::quiet_NaN();
  double incumbent_accuracy = std::numeric_limits<double>::quiet_NaN();
  // The candidate's out-of-bag estimate — the baseline the DriftMonitor
  // re-anchors on after a publish.
  OobEstimate oob;

  std::string ToString() const;
};

class RetrainController {
 public:
  // Publishes under `name` into `registry` (not owned, must outlive the
  // controller). `trainer` fixes the forest config each generation trains
  // under; its seed is varied per generation through the request override
  // so consecutive candidates don't reuse bags.
  RetrainController(serve::ModelRegistry* registry, std::string name,
                    Schema schema, ForestTrainer trainer,
                    const RetrainPolicy& policy = {});

  // Trains the first generation on `seed_data` (whole data set, no
  // holdout gate — there is no incumbent to regress against) and
  // publishes it. Must be the first publish.
  StatusOr<RetrainReport> Bootstrap(const Dataset& seed_data);

  // Copies one labeled tuple into the window (schema-checked label and
  // arity; oldest tuple evicted at capacity).
  Status AddLabeled(UncertainTuple tuple);

  // True when the tuple-count schedule has fired since the last publish.
  bool ScheduleDue() const;

  // True when the window holds enough tuples for Retrain to accept — the
  // adaptive server parks drift triggers until this turns true.
  bool CanRetrain() const { return window_.size() >= policy_.min_window; }

  // Runs one retrain attempt (see class comment). `reason` is recorded in
  // the report — "drift", "schedule", "manual". Fails below min_window.
  StatusOr<RetrainReport> Retrain(const std::string& reason);

  // The currently published generation (nullptr before Bootstrap).
  const ForestModel* incumbent() const { return incumbent_.get(); }
  uint64_t incumbent_version() const { return incumbent_version_; }
  // The incumbent's OOB error — the DriftMonitor's reference baseline
  // (NaN before the first bootstrap-with-bags publish).
  double incumbent_oob_error() const { return incumbent_oob_error_; }

  int64_t window_size() const {
    return static_cast<int64_t>(window_.size());
  }
  int64_t labeled_since_publish() const { return labeled_since_publish_; }
  int64_t generations() const { return generations_; }

 private:
  StatusOr<RetrainReport> TrainValidatePublish(const Dataset& train,
                                               const Dataset* holdout,
                                               const std::string& reason);

  serve::ModelRegistry* registry_;
  std::string name_;
  Schema schema_;
  ForestTrainer trainer_;
  RetrainPolicy policy_;

  std::deque<UncertainTuple> window_;
  std::shared_ptr<const ForestModel> incumbent_;
  uint64_t incumbent_version_ = 0;
  double incumbent_oob_error_ = std::numeric_limits<double>::quiet_NaN();
  int64_t labeled_since_publish_ = 0;
  int64_t generations_ = 0;
};

}  // namespace stream
}  // namespace udt

#endif  // UDT_STREAM_RETRAIN_CONTROLLER_H_
