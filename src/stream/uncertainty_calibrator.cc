#include "stream/uncertainty_calibrator.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "pdf/pdf_builder.h"

namespace udt {
namespace stream {

Status CalibratorOptions::Validate() const {
  if (window < 1) {
    return Status::InvalidArgument(
        StrFormat("CalibratorOptions::window must be >= 1, got %d", window));
  }
  if (samples_per_pdf < 1) {
    return Status::InvalidArgument(
        StrFormat("CalibratorOptions::samples_per_pdf must be >= 1, got %d",
                  samples_per_pdf));
  }
  if (min_observations < 2) {
    return Status::InvalidArgument(StrFormat(
        "CalibratorOptions::min_observations must be >= 2 (one residual "
        "cannot estimate a spread), got %d",
        min_observations));
  }
  return Status::OK();
}

UncertaintyCalibrator::UncertaintyCalibrator(Schema schema,
                                             const CalibratorOptions& options)
    : schema_(std::move(schema)), options_(options) {
  UDT_CHECK(options_.Validate().ok());
}

Status UncertaintyCalibrator::CheckNumerical(int attribute) const {
  if (attribute < 0 || attribute >= schema_.num_attributes()) {
    return Status::InvalidArgument(
        StrFormat("attribute %d out of range (schema has %d)", attribute,
                  schema_.num_attributes()));
  }
  if (schema_.attribute(attribute).kind != AttributeKind::kNumerical) {
    return Status::InvalidArgument(StrFormat(
        "attribute %d is categorical; residual calibration is numerical",
        attribute));
  }
  return Status::OK();
}

Status UncertaintyCalibrator::ObserveResidual(int source, int attribute,
                                              double reading, double truth) {
  UDT_RETURN_NOT_OK(CheckNumerical(attribute));
  if (!std::isfinite(reading) || !std::isfinite(truth)) {
    return Status::InvalidArgument("residual inputs must be finite");
  }
  std::vector<Cell>& row = cells_[source];
  if (row.empty()) {
    row.resize(static_cast<size_t>(schema_.num_attributes()));
  }
  Cell& cell = row[static_cast<size_t>(attribute)];

  const double residual = reading - truth;
  // Welford's recurrence: numerically stable single-pass moments.
  ++cell.count;
  const double delta = residual - cell.mean;
  cell.mean += delta / static_cast<double>(cell.count);
  cell.m2 += delta * (residual - cell.mean);

  if (cell.window.size() < static_cast<size_t>(options_.window)) {
    cell.window.push_back(residual);
  } else {
    cell.window[cell.next] = residual;
    cell.next = (cell.next + 1) % cell.window.size();
  }
  return Status::OK();
}

const UncertaintyCalibrator::Cell* UncertaintyCalibrator::FindCell(
    int source, int attribute) const {
  auto it = cells_.find(source);
  if (it == cells_.end()) return nullptr;
  return &it->second[static_cast<size_t>(attribute)];
}

StatusOr<ErrorModelEstimate> UncertaintyCalibrator::Estimate(
    int source, int attribute) const {
  UDT_RETURN_NOT_OK(CheckNumerical(attribute));
  ErrorModelEstimate estimate;
  const Cell* cell = FindCell(source, attribute);
  if (cell == nullptr || cell->count == 0) return estimate;
  estimate.count = cell->count;
  estimate.bias = cell->mean;
  if (cell->count >= 2) {
    estimate.stddev =
        std::sqrt(cell->m2 / static_cast<double>(cell->count - 1));
  }
  return estimate;
}

StatusOr<double> UncertaintyCalibrator::Quantile(int source, int attribute,
                                                 double q) const {
  UDT_RETURN_NOT_OK(CheckNumerical(attribute));
  if (!(q >= 0.0 && q <= 1.0)) {
    return Status::InvalidArgument(
        StrFormat("quantile must be in [0, 1], got %g", q));
  }
  const Cell* cell = FindCell(source, attribute);
  if (cell == nullptr || cell->window.empty()) {
    return Status::InvalidArgument(StrFormat(
        "no residuals observed for source %d attribute %d", source,
        attribute));
  }
  std::vector<double> sorted = cell->window;
  std::sort(sorted.begin(), sorted.end());
  const size_t rank = std::min(
      sorted.size() - 1,
      static_cast<size_t>(q * static_cast<double>(sorted.size() - 1) + 0.5));
  return sorted[rank];
}

StatusOr<UncertainTuple> UncertaintyCalibrator::Wrap(
    int source, const std::vector<double>& readings, int label) const {
  if (readings.size() != static_cast<size_t>(schema_.num_attributes())) {
    return Status::InvalidArgument(
        StrFormat("reading carries %zu values, schema has %d attributes",
                  readings.size(), schema_.num_attributes()));
  }
  UncertainTuple tuple;
  tuple.label = label;
  tuple.values.reserve(readings.size());
  for (int j = 0; j < schema_.num_attributes(); ++j) {
    const double reading = readings[static_cast<size_t>(j)];
    const AttributeInfo& info = schema_.attribute(j);
    if (info.kind == AttributeKind::kCategorical) {
      const int category = static_cast<int>(reading);
      if (category < 0 || category >= info.num_categories ||
          static_cast<double>(category) != reading) {
        return Status::InvalidArgument(StrFormat(
            "attribute %d reading %g is not a category in [0, %d)", j,
            reading, info.num_categories));
      }
      tuple.values.push_back(UncertainValue::Categorical(
          CategoricalPdf::Certain(category, info.num_categories)));
      continue;
    }
    if (!std::isfinite(reading)) {
      return Status::InvalidArgument(
          StrFormat("attribute %d reading is not finite", j));
    }
    const Cell* cell = FindCell(source, j);
    double bias = 0.0;
    double stddev = 0.0;
    if (cell != nullptr &&
        cell->count >= static_cast<int64_t>(options_.min_observations)) {
      bias = cell->mean;
      stddev = std::sqrt(cell->m2 / static_cast<double>(cell->count - 1));
    }
    // The paper's convention (Section 4.3): support width w with stddev =
    // w/4, so the learned stddev maps to width 4*stddev. Zero width (cold
    // cell, or a genuinely exact source) degenerates to a point mass.
    UDT_ASSIGN_OR_RETURN(
        SampledPdf pdf,
        MakeGaussianErrorPdf(reading - bias, 4.0 * stddev,
                             options_.samples_per_pdf));
    tuple.values.push_back(UncertainValue::Numerical(std::move(pdf)));
  }
  return tuple;
}

}  // namespace stream
}  // namespace udt
