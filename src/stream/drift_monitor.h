// udt::stream::DriftMonitor — Page–Hinkley mean-shift detection over the
// two signals a serving loop can actually watch: the error indicator of
// labeled feedback (1 when the served label disagreed with the truth that
// later arrived) and the confidence stream of every response (1 - winning
// probability, available without labels through the BatchingQueue's
// response tap).
//
// Page–Hinkley, per signal x_t with running mean x̄_t:
//
//   m_t   = m_{t-1} + (x_t - x̄_t - delta),   m_0 = 0
//   PH_t  = m_t - min_{s<=t} m_s
//   drift when PH_t > lambda
//
// PH_t grows only while the recent signal sits persistently above its own
// running mean by more than the tolerance `delta` — a sustained upward
// shift of error rate (or of 1 - confidence) — and is insensitive to
// isolated spikes. The running mean is seeded from the incumbent forest's
// out-of-bag error (SetBaseline/Reset) with `baseline_weight` pseudo-
// observations, so the detector starts anchored at what the forest was
// measured to do on its own training window rather than learning the
// pre-shift level from scratch.
//
// Determinism contract: the monitor is a pure function of its observation
// sequence and options — no clocks, no randomness — so a seeded test can
// assert the exact observation index an event fires at. A warmup floor
// (min_observations) suppresses events before the statistic means
// anything, and a cooldown suppresses follow-on events while the loop
// retrains, which is what makes "exactly one event per injected shift"
// testable. Not thread-safe; callers serialise. The adaptive server's
// instance is declared UDT_GUARDED_BY(monitor_mu_), so under clang's
// -Wthread-safety that serialisation is compiler-enforced, not hoped for.

#ifndef UDT_STREAM_DRIFT_MONITOR_H_
#define UDT_STREAM_DRIFT_MONITOR_H_

#include <cstdint>
#include <optional>
#include <string>

#include "common/statusor.h"

namespace udt {
namespace stream {

struct DriftMonitorOptions {
  // Page–Hinkley tolerance: per-observation slack before a deviation
  // counts toward the statistic.
  double delta = 0.005;
  // Page–Hinkley threshold: the accumulated deviation that declares drift.
  double lambda = 2.0;
  // Pseudo-observations the baseline error seeds the running mean with.
  int baseline_weight = 32;
  // No event fires before this many real observations of the signal.
  int min_observations = 32;
  // After an event, this many further observations of the signal are
  // absorbed silently (the retrain the event triggered needs feedback
  // tuples before the world looks stationary again).
  int cooldown = 256;

  Status Validate() const;
};

// Which monitored signal shifted.
enum class DriftKind {
  kErrorRate,   // labeled feedback: served label vs arrived truth
  kConfidence,  // unlabeled: winning probability of served responses
};

const char* DriftKindToString(DriftKind kind);

struct DriftEvent {
  DriftKind kind = DriftKind::kErrorRate;
  // 1-based index of the observation (within the signal) that fired.
  int64_t observation = 0;
  // The Page–Hinkley statistic at the firing point, and the threshold it
  // crossed.
  double statistic = 0.0;
  double threshold = 0.0;
  // Running mean of the signal at the firing point vs the baseline the
  // detector was anchored at.
  double signal_mean = 0.0;
  double baseline = 0.0;

  std::string ToString() const;
};

class DriftMonitor {
 public:
  explicit DriftMonitor(const DriftMonitorOptions& options = {});

  // Anchors the error-rate detector at the incumbent forest's measured
  // error (e.g. OobEstimate::error) and fully resets both detectors —
  // call after every publish. `baseline_error` must be in [0, 1]; a NaN
  // OOB sentinel (no estimate) anchors at 0.
  void Reset(double baseline_error);

  // Labeled feedback: the loop served `predicted` with winning probability
  // `confidence`, and the truth arrived as `actual`. Feeds the error-rate
  // detector (and the confidence detector). At most one event returns per
  // call; error-rate shifts win ties.
  std::optional<DriftEvent> Observe(int predicted, int actual,
                                    double confidence);

  // Unlabeled response: confidence only (the queue tap's path).
  std::optional<DriftEvent> ObserveConfidence(double confidence);

  // Real observations fed to each detector since the last Reset.
  int64_t error_observations() const { return error_.observations; }
  int64_t confidence_observations() const {
    return confidence_.observations;
  }
  // Events fired since construction (never reset — the loop's lifetime
  // drift count).
  int64_t events_fired() const { return events_fired_; }

 private:
  struct Detector {
    int64_t observations = 0;  // real observations only
    double weight = 0.0;       // pseudo + real observation weight
    double mean = 0.0;
    double cumulative = 0.0;   // m_t
    double minimum = 0.0;      // min over m_s
    int64_t cooldown_left = 0;
    double baseline = 0.0;
  };

  std::optional<DriftEvent> Feed(Detector* detector, DriftKind kind,
                                 double x);
  void ResetDetector(Detector* detector, double baseline) const;

  DriftMonitorOptions options_;
  Detector error_;
  Detector confidence_;
  int64_t events_fired_ = 0;
};

}  // namespace stream
}  // namespace udt

#endif  // UDT_STREAM_DRIFT_MONITOR_H_
