// udt::stream::UncertaintyCalibrator — the online generalisation of the
// static uncertainty injector (table/uncertainty_injector.h). The injector
// synthesises pdfs from a width knob the experimenter chooses; a live
// deployment does not know its sensors' error widths up front, but it does
// see labeled feedback: once the true value of a reading is known, the
// residual (reading - truth) is one sample of that source's error
// distribution. The calibrator accumulates those samples per (source id,
// attribute) cell — running mean/variance by Welford's recurrence, plus a
// bounded ring window for quantiles — and uses the learned models to wrap
// incoming point readings into uncertain tuples at submit time: each value
// becomes the paper's Gaussian error pdf (support width 4*stddev, i.e.
// stddev = width/4, Section 4.3) centred at the bias-corrected reading.
//
// Sources model heterogeneous producers (distinct sensors, feeds,
// clients): each learns its own noise model, so a noisy sensor widens only
// its own pdfs. Not thread-safe; the adaptive server serialises access —
// its instance is declared UDT_GUARDED_BY(calibrator_mu_), so under
// clang's -Wthread-safety that serialisation is compiler-enforced.

#ifndef UDT_STREAM_UNCERTAINTY_CALIBRATOR_H_
#define UDT_STREAM_UNCERTAINTY_CALIBRATOR_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/statusor.h"
#include "table/dataset.h"

namespace udt {
namespace stream {

struct CalibratorOptions {
  // Residual samples retained per (source, attribute) cell for quantile
  // queries; the running moments use every observation ever fed.
  int window = 256;

  // Sample points per wrapped pdf (the injector's s knob).
  int samples_per_pdf = 20;

  // Cells with fewer residual observations than this wrap readings as
  // point masses — an unlearned error model must not invent spread.
  int min_observations = 8;

  Status Validate() const;
};

// The learned error model of one (source, attribute) cell.
struct ErrorModelEstimate {
  int64_t count = 0;
  // Mean residual (reading - truth): the systematic bias to subtract.
  double bias = 0.0;
  // Sample standard deviation of the residuals (0 until count >= 2).
  double stddev = 0.0;
};

class UncertaintyCalibrator {
 public:
  explicit UncertaintyCalibrator(Schema schema,
                                 const CalibratorOptions& options = {});

  const Schema& schema() const { return schema_; }

  // Feeds one labeled residual for a numerical attribute: the source
  // reported `reading` where the truth turned out to be `truth`. Fails on
  // a bad attribute index/kind or non-finite inputs.
  Status ObserveResidual(int source, int attribute, double reading,
                         double truth);

  // The current model of one cell (zero-count estimate for a cell that
  // never observed anything). Fails on a bad attribute index/kind.
  StatusOr<ErrorModelEstimate> Estimate(int source, int attribute) const;

  // Residual quantile q in [0, 1] over the cell's bounded window (nearest
  // -rank). Fails on an empty cell or bad arguments.
  StatusOr<double> Quantile(int source, int attribute, double q) const;

  // Wraps one point reading vector into an uncertain tuple under the
  // source's learned models. Numerical attributes become Gaussian error
  // pdfs centred at reading - bias with support width 4*stddev (point
  // masses while the cell is below min_observations, or when stddev is 0);
  // categorical attributes interpret the reading as a category index and
  // become certain categorical pdfs. `label` lands in the tuple verbatim
  // (serving submissions don't know it yet; -1 by convention).
  StatusOr<UncertainTuple> Wrap(int source,
                                const std::vector<double>& readings,
                                int label = -1) const;

  // Distinct sources observed so far.
  int64_t num_sources() const {
    return static_cast<int64_t>(cells_.size());
  }

 private:
  struct Cell {
    int64_t count = 0;
    double mean = 0.0;
    double m2 = 0.0;  // Welford's sum of squared deviations
    std::vector<double> window;  // ring buffer of recent residuals
    size_t next = 0;             // ring write position
  };

  Status CheckNumerical(int attribute) const;
  const Cell* FindCell(int source, int attribute) const;

  Schema schema_;
  CalibratorOptions options_;
  // source id -> one cell per attribute. Ordered map: iteration order (and
  // with it any diagnostics built from it) is deterministic.
  std::map<int, std::vector<Cell>> cells_;
};

}  // namespace stream
}  // namespace udt

#endif  // UDT_STREAM_UNCERTAINTY_CALIBRATOR_H_
