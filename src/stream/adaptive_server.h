// udt::stream::AdaptiveServer — the closed adaptive serving loop, wired
// from the pieces this directory and serve/ provide:
//
//            point readings                uncertain tuples
//   clients ----------------> Calibrator -----------------.
//   clients ------------------------------ Submit --------+--> BatchingQueue
//                                                              |  (micro-batches,
//                      response tap (confidence stream)        |   one registry
//            .-------------------------------------------------  snapshot per
//            v                                                    drain)
//       DriftMonitor  <--- labeled feedback (Feedback) --- clients
//            |  DriftEvent
//            v
//       RetrainController --- TrainRequest ---> ForestTrainer
//            |  publish / rollback
//            v
//       ModelRegistry  (atomic hot swap; the queue's next drain serves
//                       the new version)
//
// Threading. Submit/SubmitReading are safe from any thread (the queue's
// admission contract). Feedback serialises the monitor and the controller
// under the server's mutexes; a retrain runs on the feedback caller's
// thread while the queue keeps draining against the incumbent snapshot —
// serving never blocks on training, and the swap is one registry pointer
// replacement. The queue's response tap observes every successful
// response's confidence under the monitor mutex only (never the retrain
// mutex), so the drainer thread cannot be held behind a retrain; a drift
// event the tap detects is parked and acted on at the next Feedback call.

#ifndef UDT_STREAM_ADAPTIVE_SERVER_H_
#define UDT_STREAM_ADAPTIVE_SERVER_H_

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/forest.h"
#include "common/mutex.h"
#include "common/statusor.h"
#include "common/thread_annotations.h"
#include "serve/batching_queue.h"
#include "serve/model_registry.h"
#include "stream/drift_monitor.h"
#include "stream/retrain_controller.h"
#include "stream/uncertainty_calibrator.h"

namespace udt {
namespace stream {

struct AdaptiveServerOptions {
  // Registry name the loop publishes under.
  std::string model_name = "adaptive";

  // Queue shape; `predict` is the loop's one PredictOptions (threads,
  // grain, top_k, abstain_threshold). The response_tap slot is taken by
  // the server itself (rejected if set).
  serve::BatchingConfig batching;

  DriftMonitorOptions drift;
  RetrainPolicy retrain;
  CalibratorOptions calibrator;

  // When false, the queue tap is not installed and only labeled feedback
  // drives the monitor.
  bool monitor_confidence_tap = true;

  // Observability hooks, invoked on whichever thread detected the event /
  // finished the retrain, outside the server's mutexes. Optional.
  std::function<void(const DriftEvent&)> on_drift;
  std::function<void(const RetrainReport&)> on_retrain;
};

class AdaptiveServer {
 public:
  // Trains generation 1 on `seed_data` through the controller's
  // TrainRequest path, publishes it, anchors the drift monitor at its
  // out-of-bag error, and starts the serving queue.
  static StatusOr<std::unique_ptr<AdaptiveServer>> Create(
      const Dataset& seed_data, ForestTrainer trainer,
      AdaptiveServerOptions options = {});

  // Closes the queue (drains admitted requests) before tearing down.
  ~AdaptiveServer();

  AdaptiveServer(const AdaptiveServer&) = delete;
  AdaptiveServer& operator=(const AdaptiveServer&) = delete;

  // ------------------------------------------------------------ serving

  // Serves one already-uncertain tuple. The tuple must stay alive until
  // the future resolves (the queue never copies tuples).
  std::future<serve::ServeResult> Submit(const UncertainTuple* tuple);

  // Wraps a point reading vector under `source`'s learned error models
  // (UncertaintyCalibrator::Wrap) and serves the result. The server owns
  // the wrapped tuple until its completion runs, so there is no lifetime
  // obligation on the caller. A reading the calibrator rejects resolves
  // immediately with the error status.
  std::future<serve::ServeResult> SubmitReading(
      int source, const std::vector<double>& readings);

  // ----------------------------------------------------------- feedback

  // Ground truth arrived for a previously served tuple: feeds the drift
  // monitor with (served label, truth, confidence), adds the tuple to the
  // retrain window under the true label, and — when this observation (or
  // a drift event parked by the tap, or the tuple-count schedule) calls
  // for it — retrains, validates and hot-swaps inline. Returns the
  // retrain report when a retrain ran, nullopt otherwise.
  StatusOr<std::optional<RetrainReport>> Feedback(
      const UncertainTuple& tuple, int true_label,
      const serve::ServeResult& result);

  // Calibration feedback: the true value of one numerical attribute
  // reading became known.
  Status ObserveResidual(int source, int attribute, double reading,
                         double truth);

  // Forces a retrain attempt now (reason "manual" unless given).
  StatusOr<RetrainReport> ForceRetrain(const std::string& reason = "manual");

  // ------------------------------------------------------ introspection

  const serve::ModelRegistry& registry() const { return registry_; }
  serve::BatchingQueue& queue() { return *queue_; }
  const std::string& model_name() const { return options_.model_name; }
  uint64_t live_version() const;
  int64_t drift_events() const;
  // Snapshot of every drift event since construction.
  std::vector<DriftEvent> drift_log() const;
  int64_t generations() const;
  int64_t window_size() const;

 private:
  AdaptiveServer(ForestTrainer trainer, AdaptiveServerOptions options,
                 Schema schema);

  // Appends to the drift log and (for tap events) parks the trigger.
  // on_drift is the caller's job, outside the lock.
  void RecordEvent(const DriftEvent& event, bool from_tap)
      UDT_REQUIRES(monitor_mu_);

  AdaptiveServerOptions options_;

  serve::ModelRegistry registry_;

  // Guards the calibrator (readers wrap, feedback observes residuals).
  mutable Mutex calibrator_mu_;
  UncertaintyCalibrator calibrator_ UDT_GUARDED_BY(calibrator_mu_);

  // Guards the monitor, the drift log and the parked-drift flag. Taken by
  // the queue's drainer (tap) and by Feedback — never held across a
  // retrain.
  mutable Mutex monitor_mu_;
  DriftMonitor monitor_ UDT_GUARDED_BY(monitor_mu_);
  std::vector<DriftEvent> drift_log_ UDT_GUARDED_BY(monitor_mu_);
  bool pending_drift_ UDT_GUARDED_BY(monitor_mu_) = false;

  // Guards the controller (window + retrain + publish). Long holds are
  // confined to the feedback path; the drainer never takes it.
  mutable Mutex retrain_mu_;
  RetrainController controller_ UDT_GUARDED_BY(retrain_mu_);

  std::unique_ptr<serve::BatchingQueue> queue_;
};

}  // namespace stream
}  // namespace udt

#endif  // UDT_STREAM_ADAPTIVE_SERVER_H_
