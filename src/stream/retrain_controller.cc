#include "stream/retrain_controller.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "api/train_request.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "eval/metrics.h"
#include "serve/servable.h"
#include "storage/append_writer.h"
#include "storage/dataset_file.h"
#include "table/schema_io.h"

namespace udt {
namespace stream {

Status RetrainPolicy::Validate() const {
  if (window_capacity < 2) {
    return Status::InvalidArgument(
        StrFormat("RetrainPolicy::window_capacity must be >= 2, got %zu",
                  window_capacity));
  }
  if (min_window < 2 || min_window > window_capacity) {
    return Status::InvalidArgument(StrFormat(
        "RetrainPolicy::min_window must be in [2, window_capacity], got "
        "%zu",
        min_window));
  }
  if (schedule_every < 0) {
    return Status::InvalidArgument(
        StrFormat("RetrainPolicy::schedule_every must be >= 0, got %lld",
                  static_cast<long long>(schedule_every)));
  }
  if (!(holdout_fraction > 0.0 && holdout_fraction < 1.0)) {
    return Status::InvalidArgument(StrFormat(
        "RetrainPolicy::holdout_fraction must be in (0, 1), got %g",
        holdout_fraction));
  }
  if (!(max_regression >= 0.0)) {
    return Status::InvalidArgument(
        StrFormat("RetrainPolicy::max_regression must be >= 0, got %g",
                  max_regression));
  }
  if (warm_trees < 0) {
    return Status::InvalidArgument(StrFormat(
        "RetrainPolicy::warm_trees must be >= 0, got %d", warm_trees));
  }
  if (spill_to_storage) {
    if (spill_path.empty()) {
      return Status::InvalidArgument(
          "RetrainPolicy::spill_to_storage requires spill_path");
    }
    UDT_RETURN_NOT_OK(spill_options.Validate());
  }
  return Status::OK();
}

std::string RetrainReport::ToString() const {
  return StrFormat(
      "retrain[%s]: %s (window %lld, holdout %lld, candidate %.4f vs "
      "incumbent %.4f, oob error %.4f, version %llu)",
      reason.c_str(),
      published ? "published" : (rolled_back ? "rolled back" : "skipped"),
      static_cast<long long>(window_tuples),
      static_cast<long long>(holdout_tuples), candidate_accuracy,
      incumbent_accuracy, oob.error,
      static_cast<unsigned long long>(version));
}

RetrainController::RetrainController(serve::ModelRegistry* registry,
                                     std::string name, Schema schema,
                                     ForestTrainer trainer,
                                     const RetrainPolicy& policy)
    : registry_(registry),
      name_(std::move(name)),
      schema_(std::move(schema)),
      trainer_(std::move(trainer)),
      policy_(policy) {
  UDT_CHECK(registry_ != nullptr);
  UDT_CHECK(policy_.Validate().ok());
}

Status RetrainController::AddLabeled(UncertainTuple tuple) {
  if (tuple.values.size() !=
      static_cast<size_t>(schema_.num_attributes())) {
    return Status::InvalidArgument(
        StrFormat("tuple carries %zu values, schema has %d attributes",
                  tuple.values.size(), schema_.num_attributes()));
  }
  if (tuple.label < 0 || tuple.label >= schema_.num_classes()) {
    return Status::InvalidArgument(
        StrFormat("label %d outside the schema's %d classes", tuple.label,
                  schema_.num_classes()));
  }
  if (window_.size() >= policy_.window_capacity) window_.pop_front();
  window_.push_back(std::move(tuple));
  ++labeled_since_publish_;
  return Status::OK();
}

bool RetrainController::ScheduleDue() const {
  return policy_.schedule_every > 0 &&
         labeled_since_publish_ >= policy_.schedule_every &&
         window_.size() >= policy_.min_window;
}

StatusOr<RetrainReport> RetrainController::Bootstrap(
    const Dataset& seed_data) {
  if (incumbent_ != nullptr) {
    return Status::InvalidArgument(
        "Bootstrap must be the first publish; use Retrain afterwards");
  }
  if (!SchemaEquals(seed_data.schema(), schema_)) {
    return Status::InvalidArgument(
        "seed data schema does not match the controller schema");
  }
  return TrainValidatePublish(seed_data, nullptr, "bootstrap");
}

StatusOr<RetrainReport> RetrainController::Retrain(
    const std::string& reason) {
  if (window_.size() < policy_.min_window) {
    return Status::InvalidArgument(StrFormat(
        "retrain window holds %zu tuples, policy requires %zu",
        window_.size(), policy_.min_window));
  }

  // Deterministic striding split: every stride-th tuple is held out, so
  // the same window always produces the same split and both sides
  // interleave across the window's time axis (a suffix holdout would
  // validate only on the newest distribution).
  const size_t stride = std::max<size_t>(
      2, static_cast<size_t>(std::lround(1.0 / policy_.holdout_fraction)));
  Dataset train(schema_);
  Dataset holdout(schema_);
  for (size_t i = 0; i < window_.size(); ++i) {
    Dataset* side = (i % stride == stride - 1) ? &holdout : &train;
    UDT_RETURN_NOT_OK(side->AddTuple(window_[i]));
  }
  if (holdout.empty() || train.empty()) {
    return Status::InvalidArgument(
        "retrain window too small to split off a holdout");
  }
  return TrainValidatePublish(train, &holdout, reason);
}

StatusOr<RetrainReport> RetrainController::TrainValidatePublish(
    const Dataset& train, const Dataset* holdout,
    const std::string& reason) {
  RetrainReport report;
  report.reason = reason;
  report.window_tuples = static_cast<int64_t>(window_.size());
  report.holdout_tuples =
      holdout != nullptr ? holdout->num_tuples() : 0;

  TrainRequest request = TrainRequest::For(train);
  request.oob = &report.oob;
  // Vary the bag/subspace seed per generation so generation g+1 does not
  // redraw generation g's bags over a shifted window.
  request.seed = trainer_.config().seed +
                 static_cast<uint64_t>(generations_) * 0x9e3779b97f4a7c15ull;
  if (policy_.warm_trees > 0 && incumbent_ != nullptr) {
    request.warm_start = incumbent_.get();
    request.warm_trees =
        std::min({policy_.warm_trees, incumbent_->num_trees(),
                  trainer_.config().num_trees});
  }

  // The spill path assembles the training window through the container
  // append path and trains out of core from the re-opened file; the
  // in-memory train set doubles as the grid source, so the quantization
  // axes cover exactly the window being spilled.
  std::optional<DatasetReader> spilled;
  if (policy_.spill_to_storage) {
    UDT_ASSIGN_OR_RETURN(
        DatasetAppendWriter writer,
        DatasetAppendWriter::Open(policy_.spill_path, train,
                                  policy_.spill_options));
    UDT_RETURN_NOT_OK(writer.AppendAll(train));
    UDT_RETURN_NOT_OK(writer.Finalize().status());
    UDT_ASSIGN_OR_RETURN(spilled,
                         DatasetReader::Open(policy_.spill_path));
    request.dataset = nullptr;
    request.storage = &spilled.value();
  }

  UDT_ASSIGN_OR_RETURN(ForestModel candidate, trainer_.Train(request));
  ++generations_;

  if (holdout != nullptr) {
    report.candidate_accuracy = EvaluateAccuracy(candidate, *holdout);
    if (incumbent_ != nullptr) {
      report.incumbent_accuracy = EvaluateAccuracy(*incumbent_, *holdout);
      if (report.candidate_accuracy <
          report.incumbent_accuracy - policy_.max_regression) {
        // The candidate regressed: keep serving the incumbent untouched.
        report.rolled_back = true;
        return report;
      }
    }
  }

  report.version =
      registry_->Publish(name_, serve::Servable(candidate.Compile()));
  report.published = true;
  incumbent_ = std::make_shared<const ForestModel>(std::move(candidate));
  incumbent_version_ = report.version;
  incumbent_oob_error_ = report.oob.error;
  labeled_since_publish_ = 0;
  return report;
}

}  // namespace stream
}  // namespace udt
