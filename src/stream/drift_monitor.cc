#include "stream/drift_monitor.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace udt {
namespace stream {

Status DriftMonitorOptions::Validate() const {
  if (!(delta >= 0.0)) {
    return Status::InvalidArgument(
        StrFormat("DriftMonitorOptions::delta must be >= 0, got %g", delta));
  }
  if (!(lambda > 0.0)) {
    return Status::InvalidArgument(StrFormat(
        "DriftMonitorOptions::lambda must be > 0, got %g", lambda));
  }
  if (baseline_weight < 0) {
    return Status::InvalidArgument(
        StrFormat("DriftMonitorOptions::baseline_weight must be >= 0, "
                  "got %d",
                  baseline_weight));
  }
  if (min_observations < 1) {
    return Status::InvalidArgument(
        StrFormat("DriftMonitorOptions::min_observations must be >= 1, "
                  "got %d",
                  min_observations));
  }
  if (cooldown < 0) {
    return Status::InvalidArgument(StrFormat(
        "DriftMonitorOptions::cooldown must be >= 0, got %d", cooldown));
  }
  return Status::OK();
}

const char* DriftKindToString(DriftKind kind) {
  return kind == DriftKind::kErrorRate ? "error-rate" : "confidence";
}

std::string DriftEvent::ToString() const {
  return StrFormat(
      "drift[%s] at observation %lld: PH %.4f > %.4f (signal mean %.4f, "
      "baseline %.4f)",
      DriftKindToString(kind), static_cast<long long>(observation),
      statistic, threshold, signal_mean, baseline);
}

DriftMonitor::DriftMonitor(const DriftMonitorOptions& options)
    : options_(options) {
  UDT_CHECK(options_.Validate().ok());
  Reset(0.0);
}

void DriftMonitor::ResetDetector(Detector* detector, double baseline) const {
  *detector = Detector{};
  detector->baseline = baseline;
  detector->mean = baseline;
  detector->weight = static_cast<double>(options_.baseline_weight);
}

void DriftMonitor::Reset(double baseline_error) {
  double anchor = baseline_error;
  if (!std::isfinite(anchor)) anchor = 0.0;  // the OOB "no estimate" NaN
  anchor = std::clamp(anchor, 0.0, 1.0);
  ResetDetector(&error_, anchor);
  // The confidence signal is 1 - winning probability; absent a measured
  // reference, anchor it at the observed stream itself (baseline 0 with
  // zero pseudo-weight would whipsaw; instead seed with the error anchor,
  // the closest available proxy for "how unsure the forest should be").
  ResetDetector(&confidence_, anchor);
}

std::optional<DriftEvent> DriftMonitor::Feed(Detector* detector,
                                             DriftKind kind, double x) {
  ++detector->observations;
  detector->weight += 1.0;
  detector->mean += (x - detector->mean) / detector->weight;
  detector->cumulative += x - detector->mean - options_.delta;
  detector->minimum = std::min(detector->minimum, detector->cumulative);
  const double statistic = detector->cumulative - detector->minimum;

  if (detector->cooldown_left > 0) {
    --detector->cooldown_left;
    return std::nullopt;
  }
  if (detector->observations <
      static_cast<int64_t>(options_.min_observations)) {
    return std::nullopt;
  }
  if (statistic <= options_.lambda) return std::nullopt;

  DriftEvent event;
  event.kind = kind;
  event.observation = detector->observations;
  event.statistic = statistic;
  event.threshold = options_.lambda;
  event.signal_mean = detector->mean;
  event.baseline = detector->baseline;
  ++events_fired_;
  // Quench the statistic and start the cooldown: the same sustained shift
  // must not re-fire every observation until the retrain lands.
  detector->cumulative = 0.0;
  detector->minimum = 0.0;
  detector->cooldown_left = options_.cooldown;
  return event;
}

std::optional<DriftEvent> DriftMonitor::Observe(int predicted, int actual,
                                                double confidence) {
  const double error = predicted == actual ? 0.0 : 1.0;
  std::optional<DriftEvent> error_event =
      Feed(&error_, DriftKind::kErrorRate, error);
  std::optional<DriftEvent> confidence_event =
      Feed(&confidence_, DriftKind::kConfidence,
           1.0 - std::clamp(confidence, 0.0, 1.0));
  // One event per call; a genuine error-rate shift outranks the softer
  // confidence signal.
  if (error_event.has_value()) return error_event;
  return confidence_event;
}

std::optional<DriftEvent> DriftMonitor::ObserveConfidence(double confidence) {
  return Feed(&confidence_, DriftKind::kConfidence,
              1.0 - std::clamp(confidence, 0.0, 1.0));
}

}  // namespace stream
}  // namespace udt
