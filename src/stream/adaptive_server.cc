#include "stream/adaptive_server.h"

#include <utility>

#include "common/string_util.h"

namespace udt {
namespace stream {

AdaptiveServer::AdaptiveServer(ForestTrainer trainer,
                               AdaptiveServerOptions options, Schema schema)
    : options_(std::move(options)),
      calibrator_(schema, options_.calibrator),
      monitor_(options_.drift),
      controller_(&registry_, options_.model_name, std::move(schema),
                  std::move(trainer), options_.retrain) {}

AdaptiveServer::~AdaptiveServer() {
  // Join the drainer before any member it taps into is torn down. queue_
  // is null only when Create failed after construction.
  if (queue_ != nullptr) queue_->Close();
}

StatusOr<std::unique_ptr<AdaptiveServer>> AdaptiveServer::Create(
    const Dataset& seed_data, ForestTrainer trainer,
    AdaptiveServerOptions options) {
  if (options.model_name.empty()) {
    return Status::InvalidArgument(
        "AdaptiveServerOptions::model_name must not be empty");
  }
  if (options.batching.response_tap) {
    return Status::InvalidArgument(
        "AdaptiveServerOptions::batching.response_tap is owned by the "
        "server; leave it unset");
  }
  UDT_RETURN_NOT_OK(options.batching.predict.Validate());
  UDT_RETURN_NOT_OK(options.drift.Validate());
  UDT_RETURN_NOT_OK(options.retrain.Validate());
  UDT_RETURN_NOT_OK(options.calibrator.Validate());
  if (seed_data.empty()) {
    return Status::InvalidArgument(
        "AdaptiveServer needs a non-empty seed data set to bootstrap");
  }

  std::unique_ptr<AdaptiveServer> server(new AdaptiveServer(
      std::move(trainer), std::move(options), seed_data.schema()));

  // Generation 1: train, publish, anchor the monitor at its OOB error.
  // No traffic exists yet, but the locks are taken anyway: they are
  // uncontended here, and the capability analysis then needs no escape
  // hatch for the bootstrap path.
  RetrainReport bootstrap;
  double bootstrap_oob = 0.0;
  {
    MutexLock lock(&server->retrain_mu_);
    UDT_ASSIGN_OR_RETURN(bootstrap,
                         server->controller_.Bootstrap(seed_data));
    bootstrap_oob = server->controller_.incumbent_oob_error();
  }
  {
    MutexLock lock(&server->monitor_mu_);
    server->monitor_.Reset(bootstrap_oob);
  }

  // Only now does traffic start: the queue resolves the just-published
  // version on its first drain.
  serve::BatchingConfig config = server->options_.batching;
  if (server->options_.monitor_confidence_tap) {
    AdaptiveServer* raw = server.get();
    config.response_tap = [raw](const serve::ServeResult& result) {
      std::optional<DriftEvent> event;
      {
        MutexLock lock(&raw->monitor_mu_);
        event = raw->monitor_.ObserveConfidence(result.confidence);
        if (event.has_value()) raw->RecordEvent(*event, /*from_tap=*/true);
      }
      if (event.has_value() && raw->options_.on_drift) {
        raw->options_.on_drift(*event);
      }
    };
  }
  server->queue_ = std::make_unique<serve::BatchingQueue>(
      &server->registry_, server->options_.model_name, config);

  if (server->options_.on_retrain) server->options_.on_retrain(bootstrap);
  return server;
}

void AdaptiveServer::RecordEvent(const DriftEvent& event, bool from_tap) {
  drift_log_.push_back(event);
  // The drainer thread cannot retrain (it must keep serving); park the
  // trigger for the next feedback call to act on.
  if (from_tap) pending_drift_ = true;
}

std::future<serve::ServeResult> AdaptiveServer::Submit(
    const UncertainTuple* tuple) {
  return queue_->Submit(tuple);
}

std::future<serve::ServeResult> AdaptiveServer::SubmitReading(
    int source, const std::vector<double>& readings) {
  auto promise = std::make_shared<std::promise<serve::ServeResult>>();
  std::future<serve::ServeResult> future = promise->get_future();

  StatusOr<UncertainTuple> wrapped = [&]() -> StatusOr<UncertainTuple> {
    MutexLock lock(&calibrator_mu_);
    return calibrator_.Wrap(source, readings);
  }();
  if (!wrapped.ok()) {
    serve::ServeResult result;
    result.status = wrapped.status();
    promise->set_value(std::move(result));
    return future;
  }

  // The queue never copies tuples, so the wrapped tuple's lifetime is
  // carried by the completion itself.
  auto tuple = std::make_shared<UncertainTuple>(std::move(wrapped).value());
  queue_->SubmitWithCallback(tuple.get(),
                             [tuple, promise](serve::ServeResult result) {
                               promise->set_value(std::move(result));
                             });
  return future;
}

StatusOr<std::optional<RetrainReport>> AdaptiveServer::Feedback(
    const UncertainTuple& tuple, int true_label,
    const serve::ServeResult& result) {
  if (!result.status.ok() || result.label < 0) {
    return Status::InvalidArgument(
        "Feedback needs the successful ServeResult that served the tuple");
  }

  // 1. Monitor under monitor_mu_ only — never across the retrain below,
  //    so the queue's tap (same mutex) is never held behind training.
  std::optional<DriftEvent> event;
  {
    MutexLock lock(&monitor_mu_);
    event = monitor_.Observe(result.label, true_label, result.confidence);
    if (event.has_value()) RecordEvent(*event, /*from_tap=*/false);
  }
  if (event.has_value() && options_.on_drift) options_.on_drift(*event);

  // 2. Window + (maybe) retrain under retrain_mu_. Serving continues
  //    against the incumbent snapshot throughout.
  std::optional<RetrainReport> report;
  double published_oob = 0.0;
  {
    MutexLock lock(&retrain_mu_);
    UncertainTuple labeled = tuple;
    labeled.label = true_label;
    UDT_RETURN_NOT_OK(controller_.AddLabeled(std::move(labeled)));

    bool drift_trigger = event.has_value();
    {
      MutexLock monitor_lock(&monitor_mu_);
      if (pending_drift_) {
        drift_trigger = true;
        pending_drift_ = false;
      }
    }
    if (drift_trigger && !controller_.CanRetrain()) {
      // Too few labeled tuples to act yet: re-park the trigger so a later
      // feedback call retrains once the window fills.
      MutexLock monitor_lock(&monitor_mu_);
      pending_drift_ = true;
      drift_trigger = false;
    }

    if (drift_trigger || controller_.ScheduleDue()) {
      UDT_ASSIGN_OR_RETURN(
          report, controller_.Retrain(drift_trigger ? "drift" : "schedule"));
      published_oob = controller_.incumbent_oob_error();
    }
  }

  // 3. A publish re-anchors the monitor at the new generation's OOB error
  //    (and clears any drift parked against the old generation).
  if (report.has_value() && report->published) {
    MutexLock lock(&monitor_mu_);
    monitor_.Reset(published_oob);
    pending_drift_ = false;
  }
  if (report.has_value() && options_.on_retrain) options_.on_retrain(*report);
  return report;
}

Status AdaptiveServer::ObserveResidual(int source, int attribute,
                                       double reading, double truth) {
  MutexLock lock(&calibrator_mu_);
  return calibrator_.ObserveResidual(source, attribute, reading, truth);
}

StatusOr<RetrainReport> AdaptiveServer::ForceRetrain(
    const std::string& reason) {
  RetrainReport report;
  double published_oob = 0.0;
  {
    MutexLock lock(&retrain_mu_);
    UDT_ASSIGN_OR_RETURN(report, controller_.Retrain(reason));
    published_oob = controller_.incumbent_oob_error();
  }
  if (report.published) {
    MutexLock lock(&monitor_mu_);
    monitor_.Reset(published_oob);
    pending_drift_ = false;
  }
  if (options_.on_retrain) options_.on_retrain(report);
  return report;
}

uint64_t AdaptiveServer::live_version() const {
  serve::ModelHandle handle = registry_.Resolve(options_.model_name);
  return handle != nullptr ? handle->version : 0;
}

int64_t AdaptiveServer::drift_events() const {
  MutexLock lock(&monitor_mu_);
  return monitor_.events_fired();
}

std::vector<DriftEvent> AdaptiveServer::drift_log() const {
  MutexLock lock(&monitor_mu_);
  return drift_log_;
}

int64_t AdaptiveServer::generations() const {
  MutexLock lock(&retrain_mu_);
  return controller_.generations();
}

int64_t AdaptiveServer::window_size() const {
  MutexLock lock(&retrain_mu_);
  return controller_.window_size();
}

}  // namespace stream
}  // namespace udt
