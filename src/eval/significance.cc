#include "eval/significance.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/math.h"

namespace udt {

double StudentTQuantile(double p, int dof) {
  UDT_CHECK(p > 0.0 && p < 1.0);
  UDT_CHECK(dof >= 1);
  if (dof == 1) {
    // Cauchy: F^{-1}(p) = tan(pi (p - 1/2)).
    return std::tan(M_PI * (p - 0.5));
  }
  if (dof == 2) {
    // Exact closed form: t = a sqrt(2 / (1 - a^2)), a = 2p - 1.
    double a = 2.0 * p - 1.0;
    return a * std::sqrt(2.0 / (1.0 - a * a));
  }
  // Cornish-Fisher expansion around the normal quantile.
  double z = NormalQuantile(p);
  double v = static_cast<double>(dof);
  double z3 = z * z * z;
  double z5 = z3 * z * z;
  double z7 = z5 * z * z;
  double t = z + (z3 + z) / (4.0 * v) +
             (5.0 * z5 + 16.0 * z3 + 3.0 * z) / (96.0 * v * v) +
             (3.0 * z7 + 19.0 * z5 + 17.0 * z3 - 15.0 * z) /
                 (384.0 * v * v * v);
  return t;
}

StatusOr<ConfidenceInterval> MeanConfidenceInterval(
    const std::vector<double>& values, double confidence) {
  if (values.size() < 2) {
    return Status::InvalidArgument(
        "confidence interval needs at least two values");
  }
  if (confidence <= 0.0 || confidence >= 1.0) {
    return Status::InvalidArgument("confidence must be in (0, 1)");
  }
  double n = static_cast<double>(values.size());
  double mean = 0.0;
  for (double v : values) mean += v;
  mean /= n;
  double ss = 0.0;
  for (double v : values) {
    double d = v - mean;
    ss += d * d;
  }
  double stderr_mean = std::sqrt(ss / (n - 1.0)) / std::sqrt(n);
  double t = StudentTQuantile(0.5 + confidence / 2.0,
                              static_cast<int>(values.size()) - 1);
  ConfidenceInterval ci;
  ci.mean = mean;
  ci.lower = mean - t * stderr_mean;
  ci.upper = mean + t * stderr_mean;
  return ci;
}

StatusOr<double> EstimatePlateauMidpoint(
    const std::vector<double>& xs,
    const std::vector<ConfidenceInterval>& intervals) {
  if (xs.empty() || xs.size() != intervals.size()) {
    return Status::InvalidArgument("xs/intervals must match and be non-empty");
  }
  for (size_t i = 1; i < xs.size(); ++i) {
    if (xs[i] <= xs[i - 1]) {
      return Status::InvalidArgument("xs must be strictly ascending");
    }
  }
  size_t best = 0;
  for (size_t i = 1; i < intervals.size(); ++i) {
    if (intervals[i].mean > intervals[best].mean) best = i;
  }
  double lo = xs[best];
  double hi = xs[best];
  for (size_t i = 0; i < intervals.size(); ++i) {
    if (intervals[i].Overlaps(intervals[best])) {
      lo = std::min(lo, xs[i]);
      hi = std::max(hi, xs[i]);
    }
  }
  return (lo + hi) / 2.0;
}

}  // namespace udt
