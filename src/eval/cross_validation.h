// k-fold cross-validation (the paper uses 10-fold for data sets without a
// predefined train/test split, Section 4.3).

#ifndef UDT_EVAL_CROSS_VALIDATION_H_
#define UDT_EVAL_CROSS_VALIDATION_H_

#include <vector>

#include "api/trainer.h"
#include "common/random.h"
#include "common/statusor.h"
#include "core/builder.h"
#include "core/config.h"
#include "table/dataset.h"

namespace udt {

// Which model family a cross-validation run trains. Historically a
// separate enum; now the api layer's ModelKind (kAveraging /
// kDistributionBased) is used directly.
using ClassifierKind = ModelKind;

struct CrossValidationResult {
  std::vector<double> fold_accuracies;
  double mean_accuracy = 0.0;
  double stddev_accuracy = 0.0;
  // Work statistics accumulated over all folds.
  BuildStats total_build_stats;
};

// Runs stratified k-fold cross-validation of the given model kind through
// the Trainer/Model facade. Deterministic in *rng's state.
StatusOr<CrossValidationResult> RunCrossValidation(const Dataset& data,
                                                   const TreeConfig& config,
                                                   ModelKind kind,
                                                   int folds, Rng* rng);

}  // namespace udt

#endif  // UDT_EVAL_CROSS_VALIDATION_H_
