// k-fold cross-validation (the paper uses 10-fold for data sets without a
// predefined train/test split, Section 4.3).

#ifndef UDT_EVAL_CROSS_VALIDATION_H_
#define UDT_EVAL_CROSS_VALIDATION_H_

#include <vector>

#include "api/forest.h"
#include "api/trainer.h"
#include "common/random.h"
#include "common/statusor.h"
#include "core/builder.h"
#include "core/config.h"
#include "table/dataset.h"

namespace udt {

// Which model family a cross-validation run trains. Historically a
// separate enum; now the api layer's ModelKind (kAveraging /
// kDistributionBased) is used directly.
using ClassifierKind = ModelKind;

struct CrossValidationResult {
  std::vector<double> fold_accuracies;
  double mean_accuracy = 0.0;
  double stddev_accuracy = 0.0;
  // Work statistics accumulated over all folds.
  BuildStats total_build_stats;
};

// Runs stratified k-fold cross-validation of the given model kind through
// the Trainer/Model facade. Deterministic in *rng's state.
StatusOr<CrossValidationResult> RunCrossValidation(const Dataset& data,
                                                   const TreeConfig& config,
                                                   ModelKind kind,
                                                   int folds, Rng* rng);

// Cross-validation of an ensemble, plus the out-of-bag view: held-out
// fold accuracy comes from the compiled forest serving path, and each
// fold's OOB estimate (computed on its training split only) is averaged
// alongside — so single-tree vs forest comparisons get both the unbiased
// k-fold number and the cheaper OOB proxy in one run.
struct ForestCrossValidationResult {
  CrossValidationResult cv;
  // Mean of the per-fold out-of-bag error, over the folds that evaluated
  // at least one tuple; NaN when no fold produced an estimate (e.g.
  // ForestConfig::bootstrap off — no bags, nothing out of bag). Coverage
  // is averaged over all folds, so a degenerate fold drags it toward 0
  // instead of vanishing silently.
  double mean_oob_error = 0.0;
  double mean_oob_coverage = 0.0;
};

// Runs stratified k-fold cross-validation of a forest. Deterministic in
// *rng's state and config.seed (the same forest seed is reused per fold;
// fold diversity comes from the fold split itself).
StatusOr<ForestCrossValidationResult> RunForestCrossValidation(
    const Dataset& data, const ForestConfig& config, ModelKind kind,
    int folds, Rng* rng);

}  // namespace udt

#endif  // UDT_EVAL_CROSS_VALIDATION_H_
