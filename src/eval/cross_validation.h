// k-fold cross-validation (the paper uses 10-fold for data sets without a
// predefined train/test split, Section 4.3).

#ifndef UDT_EVAL_CROSS_VALIDATION_H_
#define UDT_EVAL_CROSS_VALIDATION_H_

#include <vector>

#include "common/random.h"
#include "common/statusor.h"
#include "core/builder.h"
#include "core/config.h"
#include "table/dataset.h"

namespace udt {

// Which classifier family a cross-validation run trains.
enum class ClassifierKind {
  kAveraging,          // AVG (Section 4.1)
  kDistributionBased,  // UDT (Section 4.2)
};

struct CrossValidationResult {
  std::vector<double> fold_accuracies;
  double mean_accuracy = 0.0;
  double stddev_accuracy = 0.0;
  // Work statistics accumulated over all folds.
  BuildStats total_build_stats;
};

// Runs stratified k-fold cross-validation of the given classifier kind.
// Deterministic in *rng's state.
StatusOr<CrossValidationResult> RunCrossValidation(const Dataset& data,
                                                   const TreeConfig& config,
                                                   ClassifierKind kind,
                                                   int folds, Rng* rng);

}  // namespace udt

#endif  // UDT_EVAL_CROSS_VALIDATION_H_
