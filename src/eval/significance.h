// Confidence intervals over repeated-trial accuracies, and the paper's
// plateau-estimation procedure (Section 4.4): "we use the accuracy values
// measured from the repeated trials to estimate a 95% confidence interval
// for each data point, and then find out the set of points whose confidence
// interval overlaps with that of the point of the highest accuracy. ... We
// take the midpoint of this range as the estimate."

#ifndef UDT_EVAL_SIGNIFICANCE_H_
#define UDT_EVAL_SIGNIFICANCE_H_

#include <vector>

#include "common/statusor.h"

namespace udt {

// Two-sided quantile of Student's t distribution with `dof` degrees of
// freedom (exact for dof 1-2, Cornish-Fisher expansion beyond; adequate for
// interval estimation). Requires 0 < p < 1, dof >= 1.
double StudentTQuantile(double p, int dof);

// A symmetric confidence interval around a sample mean.
struct ConfidenceInterval {
  double mean = 0.0;
  double lower = 0.0;
  double upper = 0.0;

  bool Overlaps(const ConfidenceInterval& other) const {
    return lower <= other.upper && other.lower <= upper;
  }
};

// t-based confidence interval of the mean of `values` at the given level
// (default 95%). Requires at least two values; with identical values the
// interval collapses to a point.
StatusOr<ConfidenceInterval> MeanConfidenceInterval(
    const std::vector<double>& values, double confidence = 0.95);

// Section 4.4's estimator: given sweep positions `xs` (e.g. values of w)
// with a confidence interval per position, returns the midpoint of the
// x-range whose intervals overlap the best (highest-mean) position's
// interval. Requires matching non-empty inputs with ascending xs.
StatusOr<double> EstimatePlateauMidpoint(
    const std::vector<double>& xs,
    const std::vector<ConfidenceInterval>& intervals);

}  // namespace udt

#endif  // UDT_EVAL_SIGNIFICANCE_H_
