#include "eval/cross_validation.h"

#include <cmath>
#include <limits>

#include "api/forest_session.h"
#include "eval/metrics.h"

namespace udt {

namespace {

// Shared tail: mean and population stddev of the fold accuracies.
Status FinishAccuracyStats(CrossValidationResult* result) {
  if (result->fold_accuracies.empty()) {
    return Status::Internal("no usable folds");
  }
  double sum = 0.0;
  for (double a : result->fold_accuracies) sum += a;
  result->mean_accuracy =
      sum / static_cast<double>(result->fold_accuracies.size());
  double var = 0.0;
  for (double a : result->fold_accuracies) {
    double d = a - result->mean_accuracy;
    var += d * d;
  }
  var /= static_cast<double>(result->fold_accuracies.size());
  result->stddev_accuracy = std::sqrt(var);
  return Status::OK();
}

}  // namespace

StatusOr<CrossValidationResult> RunCrossValidation(const Dataset& data,
                                                   const TreeConfig& config,
                                                   ModelKind kind,
                                                   int folds, Rng* rng) {
  if (folds < 2) return Status::InvalidArgument("folds must be >= 2");
  if (data.num_tuples() < folds) {
    return Status::InvalidArgument("fewer tuples than folds");
  }
  UDT_RETURN_NOT_OK(config.Validate());

  std::vector<int> fold_of = data.StratifiedFolds(folds, rng);

  Trainer trainer(config);
  CrossValidationResult result;
  result.fold_accuracies.reserve(static_cast<size_t>(folds));
  for (int f = 0; f < folds; ++f) {
    auto [train, test] = data.SplitByFold(fold_of, f);
    if (train.empty() || test.empty()) continue;
    BuildStats stats;
    TrainRequest request = TrainRequest::For(train, kind);
    request.stats = &stats;
    UDT_ASSIGN_OR_RETURN(Model model, trainer.Train(request));
    // Evaluate through the serving path: compile the fold's tree once and
    // run a session over the held-out fold.
    PredictSession session(model.Compile());
    double accuracy = EvaluateAccuracy(session, test);
    result.fold_accuracies.push_back(accuracy);
    result.total_build_stats += stats;
  }
  UDT_RETURN_NOT_OK(FinishAccuracyStats(&result));
  return result;
}

StatusOr<ForestCrossValidationResult> RunForestCrossValidation(
    const Dataset& data, const ForestConfig& config, ModelKind kind,
    int folds, Rng* rng) {
  if (folds < 2) return Status::InvalidArgument("folds must be >= 2");
  if (data.num_tuples() < folds) {
    return Status::InvalidArgument("fewer tuples than folds");
  }
  UDT_RETURN_NOT_OK(config.Validate());

  std::vector<int> fold_of = data.StratifiedFolds(folds, rng);

  ForestTrainer trainer(config);
  ForestCrossValidationResult result;
  result.cv.fold_accuracies.reserve(static_cast<size_t>(folds));
  double oob_error_sum = 0.0;
  double oob_coverage_sum = 0.0;
  int oob_folds = 0;
  for (int f = 0; f < folds; ++f) {
    auto [train, test] = data.SplitByFold(fold_of, f);
    if (train.empty() || test.empty()) continue;
    OobEstimate oob;
    BuildStats stats;
    TrainRequest request = TrainRequest::For(train, kind);
    request.oob = &oob;
    request.stats = &stats;
    UDT_ASSIGN_OR_RETURN(ForestModel forest, trainer.Train(request));
    // Evaluate through the serving path: compile the fold's forest once
    // and run a session over the held-out fold.
    ForestPredictSession session(forest.Compile());
    result.cv.fold_accuracies.push_back(EvaluateAccuracy(session, test));
    result.cv.total_build_stats += stats;
    // A fold with zero evaluated tuples reports NaN rates (the OobEstimate
    // sentinel); averaging it in would poison the mean, so only folds that
    // produced an estimate contribute.
    if (oob.evaluated_tuples > 0) {
      oob_error_sum += oob.error;
      ++oob_folds;
    }
    oob_coverage_sum += oob.coverage;
  }
  UDT_RETURN_NOT_OK(FinishAccuracyStats(&result.cv));
  const double used_folds =
      static_cast<double>(result.cv.fold_accuracies.size());
  result.mean_oob_error =
      oob_folds > 0 ? oob_error_sum / static_cast<double>(oob_folds)
                    : std::numeric_limits<double>::quiet_NaN();
  result.mean_oob_coverage = oob_coverage_sum / used_folds;
  return result;
}

}  // namespace udt
