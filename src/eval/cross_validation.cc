#include "eval/cross_validation.h"

#include <cmath>

#include "eval/metrics.h"

namespace udt {

StatusOr<CrossValidationResult> RunCrossValidation(const Dataset& data,
                                                   const TreeConfig& config,
                                                   ModelKind kind,
                                                   int folds, Rng* rng) {
  if (folds < 2) return Status::InvalidArgument("folds must be >= 2");
  if (data.num_tuples() < folds) {
    return Status::InvalidArgument("fewer tuples than folds");
  }
  UDT_RETURN_NOT_OK(config.Validate());

  std::vector<int> fold_of = data.StratifiedFolds(folds, rng);

  Trainer trainer(config);
  CrossValidationResult result;
  result.fold_accuracies.reserve(static_cast<size_t>(folds));
  for (int f = 0; f < folds; ++f) {
    auto [train, test] = data.SplitByFold(fold_of, f);
    if (train.empty() || test.empty()) continue;
    BuildStats stats;
    UDT_ASSIGN_OR_RETURN(Model model, trainer.Train(train, kind, &stats));
    // Evaluate through the serving path: compile the fold's tree once and
    // run a session over the held-out fold.
    PredictSession session(model.Compile());
    double accuracy = EvaluateAccuracy(session, test);
    result.fold_accuracies.push_back(accuracy);
    result.total_build_stats.counters += stats.counters;
    result.total_build_stats.nodes += stats.nodes;
    result.total_build_stats.leaves += stats.leaves;
    result.total_build_stats.subtrees_collapsed += stats.subtrees_collapsed;
    result.total_build_stats.build_seconds += stats.build_seconds;
  }
  if (result.fold_accuracies.empty()) {
    return Status::Internal("no usable folds");
  }

  double sum = 0.0;
  for (double a : result.fold_accuracies) sum += a;
  result.mean_accuracy = sum / static_cast<double>(
                                   result.fold_accuracies.size());
  double var = 0.0;
  for (double a : result.fold_accuracies) {
    double d = a - result.mean_accuracy;
    var += d * d;
  }
  var /= static_cast<double>(result.fold_accuracies.size());
  result.stddev_accuracy = std::sqrt(var);
  return result;
}

}  // namespace udt
