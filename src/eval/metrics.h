// Classification quality metrics: accuracy and confusion matrices over
// uncertain test sets. Following the paper, the predicted label is the
// class of highest probability in the classifier's output distribution.

#ifndef UDT_EVAL_METRICS_H_
#define UDT_EVAL_METRICS_H_

#include <string>
#include <vector>

#include "api/model.h"
#include "api/predict_session.h"
#include "table/dataset.h"

namespace udt {

// Forward declarations (api/forest.h, api/forest_session.h): the forest
// overloads below take references only, so consumers that never touch
// forests don't pay for the ensemble headers.
class ForestModel;
class ForestPredictSession;

// Row-per-true-class confusion matrix with weighted helpers.
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(int num_classes);

  void Add(int true_label, int predicted_label);

  int num_classes() const { return num_classes_; }
  int64_t count(int true_label, int predicted_label) const;
  int64_t total() const { return total_; }

  // Fraction of predictions on the diagonal; 0 for an empty matrix.
  double Accuracy() const;

  // Per-class recall (diagonal / row sum); 0 for empty rows.
  std::vector<double> Recalls() const;

  // Pretty table for reports.
  std::string ToString(const std::vector<std::string>& class_names) const;

 private:
  int num_classes_;
  int64_t total_ = 0;
  std::vector<int64_t> cells_;  // row-major [true][predicted]
};

// Classifies every tuple of `test` through an existing serving session
// (one PredictBatch call) and tallies the matrix. `options` controls batch
// sharding and must be valid (a negative thread count is a checked error;
// validate it at the serving edge with PredictSession::PredictBatch).
ConfusionMatrix EvaluateConfusion(PredictSession& session, const Dataset& test,
                                  const PredictOptions& options = {});
double EvaluateAccuracy(PredictSession& session, const Dataset& test,
                        const PredictOptions& options = {});

// Convenience overloads that compile `model` and run a one-shot session.
ConfusionMatrix EvaluateConfusion(const Model& model, const Dataset& test,
                                  const PredictOptions& options = {});
double EvaluateAccuracy(const Model& model, const Dataset& test,
                        const PredictOptions& options = {});

// Ensemble counterparts: classify through a forest serving session (or a
// one-shot compiled forest) and tally the same matrix.
ConfusionMatrix EvaluateConfusion(ForestPredictSession& session,
                                  const Dataset& test,
                                  const PredictOptions& options = {});
double EvaluateAccuracy(ForestPredictSession& session, const Dataset& test,
                        const PredictOptions& options = {});
ConfusionMatrix EvaluateConfusion(const ForestModel& forest,
                                  const Dataset& test,
                                  const PredictOptions& options = {});
double EvaluateAccuracy(const ForestModel& forest, const Dataset& test,
                        const PredictOptions& options = {});

// Quality under an abstention policy (PredictOptions::abstain_threshold):
// a prediction whose winning probability falls below the threshold is not
// answered, so accuracy is measured over the answered subset only and
// coverage reports how much of the test set that subset is. The classic
// selective-classification trade-off: raising the threshold should raise
// accuracy_on_answered and lower coverage.
struct AbstentionReport {
  int64_t total = 0;
  int64_t answered = 0;
  int64_t abstained = 0;
  // answered / total; 0 for an empty test set.
  double coverage = 0.0;
  // Correct answered predictions / answered; 0 when everything abstained.
  double accuracy_on_answered = 0.0;
  // Correct / total regardless of abstention — the figure to compare
  // against a no-abstention baseline.
  double accuracy_overall = 0.0;
};

// Evaluates `test` through a forest session under `options`'s abstention
// threshold (sharding knobs honoured as usual). options.abstain_threshold
// = 0 degenerates to coverage 1 and both accuracies equal.
AbstentionReport EvaluateWithAbstention(ForestPredictSession& session,
                                        const Dataset& test,
                                        const PredictOptions& options);
// One-shot: compiles `forest` and evaluates through a fresh session.
AbstentionReport EvaluateWithAbstention(const ForestModel& forest,
                                        const Dataset& test,
                                        const PredictOptions& options);

}  // namespace udt

#endif  // UDT_EVAL_METRICS_H_
