// Shared experiment drivers for the bench harnesses: data-set preparation
// (Section 4.3 pipeline over the Table 2 catalogue) and timed/counted
// tree builds.

#ifndef UDT_EVAL_EXPERIMENT_H_
#define UDT_EVAL_EXPERIMENT_H_

#include <string>

#include "api/trainer.h"
#include "common/statusor.h"
#include "core/builder.h"
#include "core/config.h"
#include "datagen/uci_like.h"
#include "eval/cross_validation.h"
#include "table/uncertainty_injector.h"

namespace udt {

// Prepares the uncertain form of a Table 2 data set:
//  * "JapaneseVowel" (spec.from_raw_samples): pdfs from raw repeated
//    measurements; `w`, `s` and `model` are ignored as in the paper.
//  * otherwise: synthetic point data (shape per spec, shrunk by `scale`)
//    run through the Section 4.3 injector with the given parameters.
StatusOr<Dataset> PrepareUncertainDataset(const datagen::UciDatasetSpec& spec,
                                          double scale, double w, int s,
                                          ErrorModel model);

// Cross-validated accuracy of one model family on `data`, trained and
// evaluated through the Trainer/Model facade. Deterministic in `seed`.
StatusOr<double> CvAccuracy(const Dataset& data, const TreeConfig& config,
                            ModelKind kind, int folds, uint64_t seed);

// One full tree build, returning its work statistics (wall-clock seconds
// and entropy-calculation counters; Figs 6-9 are built from these).
StatusOr<BuildStats> MeasureTreeBuild(const Dataset& data,
                                      const TreeConfig& config);

// Standard bench command line: every harness accepts
//   --full          paper-scale rows (default: scaled down)
//   --scale=F       explicit scale factor in (0,1]
//   --s=N           samples per pdf
//   --folds=N       cross-validation folds
//   --threads=N     training threads for the parallel columns (default 4;
//                   0 = one per hardware thread); honored by the
//                   harnesses that report thread scaling (fig6)
//   --json=PATH     where the machine-readable result rows go (default
//                   BENCH_<harness>.json; empty string disables);
//                   honored by the harnesses that emit JSON rows
// Unknown flags abort with a usage message.
struct BenchOptions {
  bool full = false;
  double scale = 0.0;  // 0 = use the bench's default
  int samples_per_pdf = 0;
  int folds = 0;
  int num_threads = 4;
  bool json_path_set = false;
  std::string json_path;
};

BenchOptions ParseBenchOptions(int argc, char** argv);

}  // namespace udt

#endif  // UDT_EVAL_EXPERIMENT_H_
