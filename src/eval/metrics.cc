#include "eval/metrics.h"

#include "api/forest.h"
#include "api/forest_session.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace udt {

ConfusionMatrix::ConfusionMatrix(int num_classes)
    : num_classes_(num_classes),
      cells_(static_cast<size_t>(num_classes) *
                 static_cast<size_t>(num_classes),
             0) {
  UDT_CHECK(num_classes >= 1);
}

void ConfusionMatrix::Add(int true_label, int predicted_label) {
  UDT_CHECK(true_label >= 0 && true_label < num_classes_);
  UDT_CHECK(predicted_label >= 0 && predicted_label < num_classes_);
  ++cells_[static_cast<size_t>(true_label) *
               static_cast<size_t>(num_classes_) +
           static_cast<size_t>(predicted_label)];
  ++total_;
}

int64_t ConfusionMatrix::count(int true_label, int predicted_label) const {
  return cells_[static_cast<size_t>(true_label) *
                    static_cast<size_t>(num_classes_) +
                static_cast<size_t>(predicted_label)];
}

double ConfusionMatrix::Accuracy() const {
  if (total_ == 0) return 0.0;
  int64_t correct = 0;
  for (int c = 0; c < num_classes_; ++c) correct += count(c, c);
  return static_cast<double>(correct) / static_cast<double>(total_);
}

std::vector<double> ConfusionMatrix::Recalls() const {
  std::vector<double> recalls(static_cast<size_t>(num_classes_), 0.0);
  for (int c = 0; c < num_classes_; ++c) {
    int64_t row = 0;
    for (int p = 0; p < num_classes_; ++p) row += count(c, p);
    if (row > 0) {
      recalls[static_cast<size_t>(c)] =
          static_cast<double>(count(c, c)) / static_cast<double>(row);
    }
  }
  return recalls;
}

std::string ConfusionMatrix::ToString(
    const std::vector<std::string>& class_names) const {
  std::string out = StrFormat("%-12s", "true\\pred");
  for (int p = 0; p < num_classes_; ++p) {
    out += StrFormat("%10s",
                     p < static_cast<int>(class_names.size())
                         ? class_names[static_cast<size_t>(p)].c_str()
                         : "?");
  }
  out += "\n";
  for (int c = 0; c < num_classes_; ++c) {
    out += StrFormat("%-12s",
                     c < static_cast<int>(class_names.size())
                         ? class_names[static_cast<size_t>(c)].c_str()
                         : "?");
    for (int p = 0; p < num_classes_; ++p) {
      out += StrFormat("%10lld", static_cast<long long>(count(c, p)));
    }
    out += "\n";
  }
  return out;
}

ConfusionMatrix EvaluateConfusion(PredictSession& session, const Dataset& test,
                                  const PredictOptions& options) {
  StatusOr<BatchResult> batch = session.PredictBatch(test, options);
  UDT_CHECK(batch.ok());
  ConfusionMatrix matrix(test.num_classes());
  for (int i = 0; i < test.num_tuples(); ++i) {
    matrix.Add(test.tuple(i).label, batch->labels[static_cast<size_t>(i)]);
  }
  return matrix;
}

double EvaluateAccuracy(PredictSession& session, const Dataset& test,
                        const PredictOptions& options) {
  return EvaluateConfusion(session, test, options).Accuracy();
}

ConfusionMatrix EvaluateConfusion(const Model& model, const Dataset& test,
                                  const PredictOptions& options) {
  PredictSession session(model.Compile());
  return EvaluateConfusion(session, test, options);
}

double EvaluateAccuracy(const Model& model, const Dataset& test,
                        const PredictOptions& options) {
  return EvaluateConfusion(model, test, options).Accuracy();
}

ConfusionMatrix EvaluateConfusion(ForestPredictSession& session,
                                  const Dataset& test,
                                  const PredictOptions& options) {
  StatusOr<BatchResult> batch = session.PredictBatch(test, options);
  UDT_CHECK(batch.ok());
  ConfusionMatrix matrix(test.num_classes());
  for (int i = 0; i < test.num_tuples(); ++i) {
    matrix.Add(test.tuple(i).label, batch->labels[static_cast<size_t>(i)]);
  }
  return matrix;
}

double EvaluateAccuracy(ForestPredictSession& session, const Dataset& test,
                        const PredictOptions& options) {
  return EvaluateConfusion(session, test, options).Accuracy();
}

ConfusionMatrix EvaluateConfusion(const ForestModel& forest,
                                  const Dataset& test,
                                  const PredictOptions& options) {
  ForestPredictSession session(forest.Compile());
  return EvaluateConfusion(session, test, options);
}

double EvaluateAccuracy(const ForestModel& forest, const Dataset& test,
                        const PredictOptions& options) {
  return EvaluateConfusion(forest, test, options).Accuracy();
}

AbstentionReport EvaluateWithAbstention(ForestPredictSession& session,
                                        const Dataset& test,
                                        const PredictOptions& options) {
  StatusOr<BatchResult> batch = session.PredictBatch(test, options);
  UDT_CHECK(batch.ok());
  AbstentionReport report;
  report.total = test.num_tuples();
  int64_t correct_answered = 0;
  int64_t correct_total = 0;
  for (int i = 0; i < test.num_tuples(); ++i) {
    const size_t idx = static_cast<size_t>(i);
    const int label = batch->labels[idx];
    const bool correct = label == test.tuple(i).label;
    if (correct) ++correct_total;
    const std::vector<double>& row = batch->distributions[idx];
    const double confidence = row[static_cast<size_t>(label)];
    if (options.abstain_threshold > 0.0 &&
        confidence < options.abstain_threshold) {
      ++report.abstained;
      continue;
    }
    ++report.answered;
    if (correct) ++correct_answered;
  }
  if (report.total > 0) {
    report.coverage = static_cast<double>(report.answered) /
                      static_cast<double>(report.total);
    report.accuracy_overall = static_cast<double>(correct_total) /
                              static_cast<double>(report.total);
  }
  if (report.answered > 0) {
    report.accuracy_on_answered = static_cast<double>(correct_answered) /
                                  static_cast<double>(report.answered);
  }
  return report;
}

AbstentionReport EvaluateWithAbstention(const ForestModel& forest,
                                        const Dataset& test,
                                        const PredictOptions& options) {
  ForestPredictSession session(forest.Compile());
  return EvaluateWithAbstention(session, test, options);
}

}  // namespace udt
