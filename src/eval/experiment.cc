#include "eval/experiment.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/string_util.h"
#include "datagen/japanese_vowel.h"

namespace udt {

StatusOr<Dataset> PrepareUncertainDataset(const datagen::UciDatasetSpec& spec,
                                          double scale, double w, int s,
                                          ErrorModel model) {
  if (spec.from_raw_samples) {
    datagen::JapaneseVowelConfig config;
    config.num_tuples = std::max(
        spec.num_classes * 4,
        static_cast<int>(spec.num_tuples * scale));
    config.num_speakers = spec.num_classes;
    config.num_attributes = spec.num_attributes;
    return datagen::GenerateJapaneseVowelLike(config);
  }
  PointDataset points = datagen::MakeUciLikePointData(spec, scale);
  UncertaintyOptions options;
  options.width_fraction = w;
  options.samples_per_pdf = s;
  options.error_model = model;
  return InjectUncertainty(points, options);
}

StatusOr<double> CvAccuracy(const Dataset& data, const TreeConfig& config,
                            ModelKind kind, int folds, uint64_t seed) {
  Rng rng(seed);
  UDT_ASSIGN_OR_RETURN(CrossValidationResult result,
                       RunCrossValidation(data, config, kind, folds, &rng));
  return result.mean_accuracy;
}

StatusOr<BuildStats> MeasureTreeBuild(const Dataset& data,
                                      const TreeConfig& config) {
  Trainer trainer(config);
  BuildStats stats;
  UDT_ASSIGN_OR_RETURN(Model model, trainer.TrainUdt(data, &stats));
  (void)model;  // only the statistics matter here
  return stats;
}

BenchOptions ParseBenchOptions(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--full") == 0) {
      options.full = true;
    } else if (std::strncmp(arg, "--scale=", 8) == 0) {
      std::optional<double> v = ParseDouble(arg + 8);
      if (!v.has_value() || *v <= 0.0 || *v > 1.0) {
        std::fprintf(stderr, "bad --scale value: %s\n", arg + 8);
        std::exit(2);
      }
      options.scale = *v;
    } else if (std::strncmp(arg, "--s=", 4) == 0) {
      std::optional<int> v = ParseInt(arg + 4);
      if (!v.has_value() || *v < 1) {
        std::fprintf(stderr, "bad --s value: %s\n", arg + 4);
        std::exit(2);
      }
      options.samples_per_pdf = *v;
    } else if (std::strncmp(arg, "--folds=", 8) == 0) {
      std::optional<int> v = ParseInt(arg + 8);
      if (!v.has_value() || *v < 2) {
        std::fprintf(stderr, "bad --folds value: %s\n", arg + 8);
        std::exit(2);
      }
      options.folds = *v;
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      std::optional<int> v = ParseInt(arg + 10);
      if (!v.has_value() || *v < 0) {
        std::fprintf(stderr, "bad --threads value: %s\n", arg + 10);
        std::exit(2);
      }
      options.num_threads = *v;
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      options.json_path_set = true;
      options.json_path = arg + 7;
    } else {
      std::fprintf(stderr,
                   "unknown flag: %s\n"
                   "usage: %s [--full] [--scale=F] [--s=N] [--folds=N] "
                   "[--threads=N] [--json=PATH]\n"
                   "(--threads/--json are honored by the harnesses that "
                   "report thread scaling or JSON rows)\n",
                   arg, argv[0]);
      std::exit(2);
    }
  }
  return options;
}

}  // namespace udt
