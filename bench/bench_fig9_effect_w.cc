// Fig 9: "Effects of w on UDT-ES" - build time as the pdf-domain width
// grows. Wider pdfs overlap tuples of different classes more often, so
// more intervals are heterogeneous and UDT-ES has more interiors to bound
// and evaluate; the paper (Section 6.4) reports generally increasing times
// with data-set-dependent exceptions.
//
// "JapaneseVowel" is excluded as in the paper (its uncertainty comes from
// raw data and w is not a free parameter).

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "eval/experiment.h"

int main(int argc, char** argv) {
  udt::BenchOptions options = udt::ParseBenchOptions(argc, argv);
  udt::bench::PrintBanner(
      "bench_fig9_effect_w: UDT-ES build time vs pdf width",
      "Fig 9 (Section 6.4), w in {1%,5%,10%,20%}, s=100 at --full", options);

  int s = udt::bench::SamplesFor(options, 20);
  const std::vector<double> kWidths = {0.01, 0.05, 0.10, 0.20};

  std::printf("\nUDT-ES build seconds (s=%d, Gaussian)\n\n", s);
  std::printf("%-14s", "data set");
  for (double w : kWidths) std::printf("   w=%2.0f%% ", w * 100);
  std::printf("\n");

  for (const udt::datagen::UciDatasetSpec& spec :
       udt::datagen::UciCatalogue()) {
    if (spec.from_raw_samples) continue;
    double scale = udt::bench::ScaleFor(spec, options, 120);
    std::printf("%-14s", spec.name.c_str());
    for (double w : kWidths) {
      auto ds = udt::PrepareUncertainDataset(spec, scale, w, s,
                                             udt::ErrorModel::kGaussian);
      UDT_CHECK(ds.ok());
      udt::TreeConfig config;
      config.algorithm = udt::SplitAlgorithm::kUdtEs;
      auto stats = udt::MeasureTreeBuild(*ds, config);
      UDT_CHECK(stats.ok());
      std::printf(" %8.3f", stats->build_seconds);
    }
    std::printf("\n");
  }
  std::printf("\nreading: times generally increase with w (more class "
              "overlap -> more heterogeneous intervals), with data-set-"
              "dependent exceptions as in the paper.\n");
  return 0;
}
