// google-benchmark microbenchmarks of the kernels that dominate tree
// construction: CDF queries, scan construction, entropy scoring, interval
// bounding, working-set partitioning, uncertain classification, and the
// thread scaling of the parallel construction engine.
//
// Machine-readable output: unless --benchmark_out is given, results are
// also written as google-benchmark JSON to BENCH_micro_kernels.json so
// kernel timings can be tracked as a trajectory across commits.

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "api/predict_session.h"
#include "api/trainer.h"
#include "common/random.h"
#include "common/timer.h"
#include "pdf/pdf_builder.h"
#include "split/attribute_scan.h"
#include "split/bounds.h"
#include "split/fractional_tuple.h"
#include "tree/classify.h"

namespace udt {
namespace {

Dataset BenchDataset(int tuples, int attributes, int s, uint64_t seed) {
  Rng rng(seed);
  Dataset ds(Schema::Numerical(attributes, {"A", "B", "C"}));
  for (int i = 0; i < tuples; ++i) {
    UncertainTuple t;
    t.label = i % 3;
    for (int j = 0; j < attributes; ++j) {
      auto pdf = MakeGaussianErrorPdf(
          rng.Gaussian(static_cast<double>(t.label), 1.0), 1.0, s);
      t.values.push_back(UncertainValue::Numerical(std::move(*pdf)));
    }
    UDT_CHECK(ds.AddTuple(std::move(t)).ok());
  }
  return ds;
}

void BM_PdfBuildGaussian(benchmark::State& state) {
  int s = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto pdf = MakeGaussianErrorPdf(1.0, 0.5, s);
    benchmark::DoNotOptimize(pdf);
  }
}
BENCHMARK(BM_PdfBuildGaussian)->Arg(20)->Arg(100)->Arg(400);

void BM_CdfQuery(benchmark::State& state) {
  auto pdf = MakeGaussianErrorPdf(0.0, 2.0, static_cast<int>(state.range(0)));
  UDT_CHECK(pdf.ok());
  double z = -0.3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pdf->CdfAtOrBelow(z));
    z = -z;
  }
}
BENCHMARK(BM_CdfQuery)->Arg(20)->Arg(100)->Arg(400);

void BM_ScanBuild(benchmark::State& state) {
  Dataset ds = BenchDataset(static_cast<int>(state.range(0)), 1, 20, 1);
  WorkingSet set = MakeRootWorkingSet(ds);
  for (auto _ : state) {
    AttributeScan scan = AttributeScan::Build(ds, set, 0, 3);
    benchmark::DoNotOptimize(scan.num_positions());
  }
}
BENCHMARK(BM_ScanBuild)->Arg(50)->Arg(200)->Arg(800);

void BM_EntropyScore(benchmark::State& state) {
  SplitScorer scorer(DispersionMeasure::kEntropy, {10.0, 20.0, 30.0});
  std::vector<double> left = {3.0, 8.0, 5.0};
  std::vector<double> right = {7.0, 12.0, 25.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(scorer.Score(left, right));
  }
}
BENCHMARK(BM_EntropyScore);

void BM_IntervalBound(benchmark::State& state) {
  IntervalMassStats stats;
  stats.nc = {3.0, 8.0, 5.0};
  stats.kc = {1.0, 2.0, 0.5};
  stats.mc = {7.0, 12.0, 25.0};
  SplitScorer scorer(DispersionMeasure::kEntropy, {11.0, 22.0, 30.5});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ScoreLowerBound(scorer, stats));
  }
}
BENCHMARK(BM_IntervalBound);

void BM_PartitionWorkingSet(benchmark::State& state) {
  Dataset ds = BenchDataset(static_cast<int>(state.range(0)), 1, 20, 2);
  WorkingSet set = MakeRootWorkingSet(ds);
  WorkingSet left, right;
  for (auto _ : state) {
    PartitionWorkingSet(ds, set, 0, 1.0, &left, &right);
    benchmark::DoNotOptimize(left.size() + right.size());
  }
}
BENCHMARK(BM_PartitionWorkingSet)->Arg(100)->Arg(400);

void BM_ClassifyUncertainTuple(benchmark::State& state) {
  Dataset ds = BenchDataset(200, 4, 16, 3);
  TreeConfig config;
  config.algorithm = SplitAlgorithm::kUdtEs;
  auto model = Trainer(config).TrainUdt(ds);
  UDT_CHECK(model.ok());
  const UncertainTuple& tuple = ds.tuple(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->ClassifyDistribution(tuple));
  }
}
BENCHMARK(BM_ClassifyUncertainTuple);

void BM_PredictBatch(benchmark::State& state) {
  Dataset ds = BenchDataset(512, 4, 16, 3);
  TreeConfig config;
  config.algorithm = SplitAlgorithm::kUdtEs;
  auto model = Trainer(config).TrainUdt(ds);
  UDT_CHECK(model.ok());
  // A long-lived session, as a serving worker would hold: the flat
  // traversal runs out of reusable scratch, so the steady state is
  // allocation-free per tuple.
  PredictSession session(model->Compile());
  PredictOptions options;
  options.num_threads = static_cast<int>(state.range(0));
  FlatBatchResult result;
  for (auto _ : state) {
    UDT_CHECK(session
                  .PredictBatchInto(
                      std::span<const UncertainTuple>(ds.tuples().data(),
                                                      ds.tuples().size()),
                      options, &result)
                  .ok());
    benchmark::DoNotOptimize(result.labels.data());
  }
  state.SetItemsProcessed(state.iterations() * ds.num_tuples());
}
BENCHMARK(BM_PredictBatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_TreeBuild(benchmark::State& state) {
  Dataset ds = BenchDataset(static_cast<int>(state.range(0)), 4, 16, 4);
  TreeConfig config;
  config.algorithm = SplitAlgorithm::kUdtEs;
  for (auto _ : state) {
    BuildStats stats;
    auto tree = TreeBuilder(config).Build(ds, &stats);
    benchmark::DoNotOptimize(tree.ok());
  }
}
BENCHMARK(BM_TreeBuild)->Arg(50)->Arg(150)->Unit(benchmark::kMillisecond);

// Thread scaling of the construction engine. The Arg is
// TreeConfig::num_threads; the Arg(1) run must come first (registration
// order) because it provides the serial baseline the other runs report
// their "speedup" counter against. The tree is bitwise-identical at every
// arg; only the wall clock may move.
void BM_TreeBuildThreads(benchmark::State& state) {
  static Dataset ds = BenchDataset(300, 6, 14, 5);
  TreeConfig config;
  config.algorithm = SplitAlgorithm::kUdtEs;
  config.num_threads = static_cast<int>(state.range(0));
  double total_seconds = 0.0;
  for (auto _ : state) {
    WallTimer timer;
    BuildStats stats;
    auto tree = TreeBuilder(config).Build(ds, &stats);
    benchmark::DoNotOptimize(tree.ok());
    total_seconds += timer.ElapsedSeconds();
  }
  double mean_seconds =
      state.iterations() > 0
          ? total_seconds / static_cast<double>(state.iterations())
          : 0.0;
  static double serial_mean_seconds = 0.0;
  if (state.range(0) == 1) serial_mean_seconds = mean_seconds;
  state.counters["threads"] =
      benchmark::Counter(static_cast<double>(state.range(0)));
  // Only report a speedup when the serial baseline ran in this process;
  // under --benchmark_filter that excludes Arg(1) the counter would
  // otherwise poison the JSON trajectory with zeros.
  if (mean_seconds > 0.0 && serial_mean_seconds > 0.0) {
    state.counters["speedup"] =
        benchmark::Counter(serial_mean_seconds / mean_seconds);
  }
}
BENCHMARK(BM_TreeBuildThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace udt

int main(int argc, char** argv) {
  // Default to a JSON sidecar for trajectory tracking; any explicit
  // --benchmark_out wins.
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_micro_kernels.json";
  std::string format_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int effective_argc = static_cast<int>(args.size());
  benchmark::Initialize(&effective_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(effective_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
