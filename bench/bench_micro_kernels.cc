// google-benchmark microbenchmarks of the kernels that dominate tree
// construction: CDF queries, scan construction, entropy scoring, interval
// bounding, working-set partitioning and uncertain classification.

#include <benchmark/benchmark.h>

#include "api/trainer.h"
#include "common/random.h"
#include "pdf/pdf_builder.h"
#include "split/attribute_scan.h"
#include "split/bounds.h"
#include "split/fractional_tuple.h"
#include "tree/classify.h"

namespace udt {
namespace {

Dataset BenchDataset(int tuples, int attributes, int s, uint64_t seed) {
  Rng rng(seed);
  Dataset ds(Schema::Numerical(attributes, {"A", "B", "C"}));
  for (int i = 0; i < tuples; ++i) {
    UncertainTuple t;
    t.label = i % 3;
    for (int j = 0; j < attributes; ++j) {
      auto pdf = MakeGaussianErrorPdf(
          rng.Gaussian(static_cast<double>(t.label), 1.0), 1.0, s);
      t.values.push_back(UncertainValue::Numerical(std::move(*pdf)));
    }
    UDT_CHECK(ds.AddTuple(std::move(t)).ok());
  }
  return ds;
}

void BM_PdfBuildGaussian(benchmark::State& state) {
  int s = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto pdf = MakeGaussianErrorPdf(1.0, 0.5, s);
    benchmark::DoNotOptimize(pdf);
  }
}
BENCHMARK(BM_PdfBuildGaussian)->Arg(20)->Arg(100)->Arg(400);

void BM_CdfQuery(benchmark::State& state) {
  auto pdf = MakeGaussianErrorPdf(0.0, 2.0, static_cast<int>(state.range(0)));
  UDT_CHECK(pdf.ok());
  double z = -0.3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pdf->CdfAtOrBelow(z));
    z = -z;
  }
}
BENCHMARK(BM_CdfQuery)->Arg(20)->Arg(100)->Arg(400);

void BM_ScanBuild(benchmark::State& state) {
  Dataset ds = BenchDataset(static_cast<int>(state.range(0)), 1, 20, 1);
  WorkingSet set = MakeRootWorkingSet(ds);
  for (auto _ : state) {
    AttributeScan scan = AttributeScan::Build(ds, set, 0, 3);
    benchmark::DoNotOptimize(scan.num_positions());
  }
}
BENCHMARK(BM_ScanBuild)->Arg(50)->Arg(200)->Arg(800);

void BM_EntropyScore(benchmark::State& state) {
  SplitScorer scorer(DispersionMeasure::kEntropy, {10.0, 20.0, 30.0});
  std::vector<double> left = {3.0, 8.0, 5.0};
  std::vector<double> right = {7.0, 12.0, 25.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(scorer.Score(left, right));
  }
}
BENCHMARK(BM_EntropyScore);

void BM_IntervalBound(benchmark::State& state) {
  IntervalMassStats stats;
  stats.nc = {3.0, 8.0, 5.0};
  stats.kc = {1.0, 2.0, 0.5};
  stats.mc = {7.0, 12.0, 25.0};
  SplitScorer scorer(DispersionMeasure::kEntropy, {11.0, 22.0, 30.5});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ScoreLowerBound(scorer, stats));
  }
}
BENCHMARK(BM_IntervalBound);

void BM_PartitionWorkingSet(benchmark::State& state) {
  Dataset ds = BenchDataset(static_cast<int>(state.range(0)), 1, 20, 2);
  WorkingSet set = MakeRootWorkingSet(ds);
  WorkingSet left, right;
  for (auto _ : state) {
    PartitionWorkingSet(ds, set, 0, 1.0, &left, &right);
    benchmark::DoNotOptimize(left.size() + right.size());
  }
}
BENCHMARK(BM_PartitionWorkingSet)->Arg(100)->Arg(400);

void BM_ClassifyUncertainTuple(benchmark::State& state) {
  Dataset ds = BenchDataset(200, 4, 16, 3);
  TreeConfig config;
  config.algorithm = SplitAlgorithm::kUdtEs;
  auto model = Trainer(config).TrainUdt(ds);
  UDT_CHECK(model.ok());
  const UncertainTuple& tuple = ds.tuple(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->ClassifyDistribution(tuple));
  }
}
BENCHMARK(BM_ClassifyUncertainTuple);

void BM_PredictBatch(benchmark::State& state) {
  Dataset ds = BenchDataset(512, 4, 16, 3);
  TreeConfig config;
  config.algorithm = SplitAlgorithm::kUdtEs;
  auto model = Trainer(config).TrainUdt(ds);
  UDT_CHECK(model.ok());
  PredictOptions options;
  options.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    BatchResult result = model->PredictBatch(ds, options);
    benchmark::DoNotOptimize(result.labels.data());
  }
  state.SetItemsProcessed(state.iterations() * ds.num_tuples());
}
BENCHMARK(BM_PredictBatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_TreeBuild(benchmark::State& state) {
  Dataset ds = BenchDataset(static_cast<int>(state.range(0)), 4, 16, 4);
  TreeConfig config;
  config.algorithm = SplitAlgorithm::kUdtEs;
  for (auto _ : state) {
    BuildStats stats;
    auto tree = TreeBuilder(config).Build(ds, &stats);
    benchmark::DoNotOptimize(tree.ok());
  }
}
BENCHMARK(BM_TreeBuild)->Arg(50)->Arg(150)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace udt

BENCHMARK_MAIN();
