// google-benchmark microbenchmarks of the kernels that dominate tree
// construction and serving: CDF queries, scan construction, entropy
// scoring, interval bounding, working-set partitioning, uncertain
// classification, the thread scaling of the parallel construction engine,
// and scalar-vs-batch flat-tree traversal.
//
// Machine-readable output: unless --benchmark_out is given, results are
// also written as google-benchmark JSON to BENCH_micro_kernels.json so
// kernel timings can be tracked as a trajectory across commits. The
// batch-traversal sweep additionally writes bench_common JsonRows to
// BENCH_micro_batch_kernels.json (--json=PATH overrides, --json=
// disables) with batch-vs-scalar ns/tuple and speedup per configuration;
// tools/check_bench_schema.py diffs it against the committed sidecar in
// CI. Before timing, the sweep re-checks that the batch kernels are
// byte-identical to the scalar ones on every tuple.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "api/compiled_model.h"
#include "api/predict_session.h"
#include "api/trainer.h"
#include "bench_common.h"
#include "common/random.h"
#include "common/timer.h"
#include "pdf/pdf_builder.h"
#include "split/attribute_scan.h"
#include "split/bounds.h"
#include "split/fractional_tuple.h"
#include "tree/classify.h"
#include "tree/flat_tree.h"

namespace udt {
namespace {

Dataset BenchDataset(int tuples, int attributes, int s, uint64_t seed) {
  Rng rng(seed);
  Dataset ds(Schema::Numerical(attributes, {"A", "B", "C"}));
  for (int i = 0; i < tuples; ++i) {
    UncertainTuple t;
    t.label = i % 3;
    for (int j = 0; j < attributes; ++j) {
      auto pdf = MakeGaussianErrorPdf(
          rng.Gaussian(static_cast<double>(t.label), 1.0), 1.0, s);
      t.values.push_back(UncertainValue::Numerical(std::move(*pdf)));
    }
    UDT_CHECK(ds.AddTuple(std::move(t)).ok());
  }
  return ds;
}

void BM_PdfBuildGaussian(benchmark::State& state) {
  int s = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto pdf = MakeGaussianErrorPdf(1.0, 0.5, s);
    benchmark::DoNotOptimize(pdf);
  }
}
BENCHMARK(BM_PdfBuildGaussian)->Arg(20)->Arg(100)->Arg(400);

void BM_CdfQuery(benchmark::State& state) {
  auto pdf = MakeGaussianErrorPdf(0.0, 2.0, static_cast<int>(state.range(0)));
  UDT_CHECK(pdf.ok());
  double z = -0.3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pdf->CdfAtOrBelow(z));
    z = -z;
  }
}
BENCHMARK(BM_CdfQuery)->Arg(20)->Arg(100)->Arg(400);

void BM_ScanBuild(benchmark::State& state) {
  Dataset ds = BenchDataset(static_cast<int>(state.range(0)), 1, 20, 1);
  WorkingSet set = MakeRootWorkingSet(ds);
  for (auto _ : state) {
    AttributeScan scan = AttributeScan::Build(ds, set, 0, 3);
    benchmark::DoNotOptimize(scan.num_positions());
  }
}
BENCHMARK(BM_ScanBuild)->Arg(50)->Arg(200)->Arg(800);

void BM_EntropyScore(benchmark::State& state) {
  SplitScorer scorer(DispersionMeasure::kEntropy, {10.0, 20.0, 30.0});
  std::vector<double> left = {3.0, 8.0, 5.0};
  std::vector<double> right = {7.0, 12.0, 25.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(scorer.Score(left, right));
  }
}
BENCHMARK(BM_EntropyScore);

void BM_IntervalBound(benchmark::State& state) {
  IntervalMassStats stats;
  stats.nc = {3.0, 8.0, 5.0};
  stats.kc = {1.0, 2.0, 0.5};
  stats.mc = {7.0, 12.0, 25.0};
  SplitScorer scorer(DispersionMeasure::kEntropy, {11.0, 22.0, 30.5});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ScoreLowerBound(scorer, stats));
  }
}
BENCHMARK(BM_IntervalBound);

void BM_PartitionWorkingSet(benchmark::State& state) {
  Dataset ds = BenchDataset(static_cast<int>(state.range(0)), 1, 20, 2);
  WorkingSet set = MakeRootWorkingSet(ds);
  WorkingSet left, right;
  for (auto _ : state) {
    PartitionWorkingSet(ds, set, 0, 1.0, &left, &right);
    benchmark::DoNotOptimize(left.size() + right.size());
  }
}
BENCHMARK(BM_PartitionWorkingSet)->Arg(100)->Arg(400);

void BM_ClassifyUncertainTuple(benchmark::State& state) {
  Dataset ds = BenchDataset(200, 4, 16, 3);
  TreeConfig config;
  config.algorithm = SplitAlgorithm::kUdtEs;
  auto model = Trainer(config).TrainUdt(ds);
  UDT_CHECK(model.ok());
  const UncertainTuple& tuple = ds.tuple(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->ClassifyDistribution(tuple));
  }
}
BENCHMARK(BM_ClassifyUncertainTuple);

void BM_PredictBatch(benchmark::State& state) {
  Dataset ds = BenchDataset(512, 4, 16, 3);
  TreeConfig config;
  config.algorithm = SplitAlgorithm::kUdtEs;
  auto model = Trainer(config).TrainUdt(ds);
  UDT_CHECK(model.ok());
  // A long-lived session, as a serving worker would hold: the flat
  // traversal runs out of reusable scratch, so the steady state is
  // allocation-free per tuple.
  PredictSession session(model->Compile());
  PredictOptions options;
  options.num_threads = static_cast<int>(state.range(0));
  FlatBatchResult result;
  for (auto _ : state) {
    UDT_CHECK(session
                  .PredictBatchInto(
                      std::span<const UncertainTuple>(ds.tuples().data(),
                                                      ds.tuples().size()),
                      options, &result)
                  .ok());
    benchmark::DoNotOptimize(result.labels.data());
  }
  state.SetItemsProcessed(state.iterations() * ds.num_tuples());
}
BENCHMARK(BM_PredictBatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_TreeBuild(benchmark::State& state) {
  Dataset ds = BenchDataset(static_cast<int>(state.range(0)), 4, 16, 4);
  TreeConfig config;
  config.algorithm = SplitAlgorithm::kUdtEs;
  for (auto _ : state) {
    BuildStats stats;
    auto tree = TreeBuilder(config).Build(ds, &stats);
    benchmark::DoNotOptimize(tree.ok());
  }
}
BENCHMARK(BM_TreeBuild)->Arg(50)->Arg(150)->Unit(benchmark::kMillisecond);

// Thread scaling of the construction engine. The Arg is
// TreeConfig::num_threads; the Arg(1) run must come first (registration
// order) because it provides the serial baseline the other runs report
// their "speedup" counter against. The tree is bitwise-identical at every
// arg; only the wall clock may move.
void BM_TreeBuildThreads(benchmark::State& state) {
  static Dataset ds = BenchDataset(300, 6, 14, 5);
  TreeConfig config;
  config.algorithm = SplitAlgorithm::kUdtEs;
  config.num_threads = static_cast<int>(state.range(0));
  double total_seconds = 0.0;
  for (auto _ : state) {
    WallTimer timer;
    BuildStats stats;
    auto tree = TreeBuilder(config).Build(ds, &stats);
    benchmark::DoNotOptimize(tree.ok());
    total_seconds += timer.ElapsedSeconds();
  }
  double mean_seconds =
      state.iterations() > 0
          ? total_seconds / static_cast<double>(state.iterations())
          : 0.0;
  static double serial_mean_seconds = 0.0;
  if (state.range(0) == 1) serial_mean_seconds = mean_seconds;
  state.counters["threads"] =
      benchmark::Counter(static_cast<double>(state.range(0)));
  // Only report a speedup when the serial baseline ran in this process;
  // under --benchmark_filter that excludes Arg(1) the counter would
  // otherwise poison the JSON trajectory with zeros.
  if (mean_seconds > 0.0 && serial_mean_seconds > 0.0) {
    state.counters["speedup"] =
        benchmark::Counter(serial_mean_seconds / mean_seconds);
  }
}
BENCHMARK(BM_TreeBuildThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// ------------------------- batch traversal kernels -------------------------

// Shared fixture for the traversal benchmarks: the pool the kernels
// classify and a compiled tree trained on it. Both live for the whole
// process so every benchmark and the JSON sweep measure the same model.
const Dataset& TraversalPool() {
  static Dataset ds = BenchDataset(512, 4, 16, 6);
  return ds;
}

const CompiledModel& TraversalModel(ModelKind kind) {
  static CompiledModel udt = [] {
    TreeConfig config;
    config.algorithm = SplitAlgorithm::kUdtEs;
    auto model = Trainer(config).Train(
        TrainRequest::For(TraversalPool(), ModelKind::kUdt));
    UDT_CHECK(model.ok());
    return model->Compile();
  }();
  static CompiledModel averaging = [] {
    TreeConfig config;
    config.algorithm = SplitAlgorithm::kUdtEs;
    auto model = Trainer(config).Train(
        TrainRequest::For(TraversalPool(), ModelKind::kAveraging));
    UDT_CHECK(model.ok());
    return model->Compile();
  }();
  return kind == ModelKind::kAveraging ? averaging : udt;
}

// One pass over the pool: scalar per-tuple kernel when batch == 0,
// otherwise the level-synchronous batch kernel in chunks of `batch`.
double ClassifyPoolOnce(const FlatTree& flat, bool averaging, size_t batch,
                        const std::vector<const UncertainTuple*>& tuples,
                        const std::vector<double*>& rows,
                        FlatTraversalScratch* scratch) {
  const size_t n = tuples.size();
  WallTimer timer;
  if (batch == 0) {
    for (size_t i = 0; i < n; ++i) {
      if (averaging) {
        ClassifyFlatMeans(flat, *tuples[i], scratch, rows[i]);
      } else {
        ClassifyFlat(flat, *tuples[i], scratch, rows[i]);
      }
    }
  } else {
    for (size_t begin = 0; begin < n; begin += batch) {
      const size_t count = std::min(batch, n - begin);
      if (averaging) {
        ClassifyFlatMeansBatch(flat, tuples.data() + begin,
                               rows.data() + begin, count, scratch);
      } else {
        ClassifyFlatBatch(flat, tuples.data() + begin, rows.data() + begin,
                          count, scratch);
      }
    }
  }
  return timer.ElapsedSeconds();
}

// Scalar vs level-synchronous batch traversal of the same compiled UDT
// tree. The Arg is the batch size, with Arg(0) meaning the scalar
// per-tuple kernel; the Arg(0) run must come first (registration order)
// because it provides the baseline the batch runs report their "speedup"
// counter against. The distributions are byte-identical at every arg
// (tests/batch_traversal_test.cc); only the wall clock may move.
void BM_FlatBatchTraversal(benchmark::State& state) {
  const Dataset& ds = TraversalPool();
  const FlatTree& flat = TraversalModel(ModelKind::kUdt).flat_tree();
  const size_t k = static_cast<size_t>(flat.num_classes);
  const size_t n = static_cast<size_t>(ds.num_tuples());
  const size_t batch = static_cast<size_t>(state.range(0));
  std::vector<double> storage(n * k);
  std::vector<const UncertainTuple*> tuples(n);
  std::vector<double*> rows(n);
  for (size_t i = 0; i < n; ++i) {
    tuples[i] = &ds.tuple(static_cast<int>(i));
    rows[i] = storage.data() + i * k;
  }
  FlatTraversalScratch scratch;
  double total_seconds = 0.0;
  for (auto _ : state) {
    total_seconds +=
        ClassifyPoolOnce(flat, /*averaging=*/false, batch, tuples, rows,
                         &scratch);
    benchmark::DoNotOptimize(storage.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
  const double mean_seconds =
      state.iterations() > 0
          ? total_seconds / static_cast<double>(state.iterations())
          : 0.0;
  static double scalar_mean_seconds = 0.0;
  if (state.range(0) == 0) scalar_mean_seconds = mean_seconds;
  state.counters["batch"] =
      benchmark::Counter(static_cast<double>(state.range(0)));
  // As in BM_TreeBuildThreads: report a speedup only when the scalar
  // baseline ran in this process, so --benchmark_filter cannot poison the
  // JSON trajectory with zeros.
  if (mean_seconds > 0.0 && scalar_mean_seconds > 0.0) {
    state.counters["speedup"] =
        benchmark::Counter(scalar_mean_seconds / mean_seconds);
  }
}
BENCHMARK(BM_FlatBatchTraversal)->Arg(0)->Arg(1)->Arg(7)->Arg(64)->Arg(256);

// The sidecar sweep behind BENCH_micro_batch_kernels.json: for each model
// kind, first prove the batch kernel byte-identical to the scalar one on
// every pool tuple, then report ns/tuple for the scalar kernel and for
// each batch size, plus the resulting speedup. Runs outside
// google-benchmark so the row set is fixed (the schema checker keys on
// it) regardless of --benchmark_filter.
void RunBatchKernelSweep(bench::JsonRows* sink) {
  const Dataset& ds = TraversalPool();
  const size_t n = static_cast<size_t>(ds.num_tuples());
  constexpr int kRepetitions = 20;
  constexpr size_t kSweepBatches[] = {1, 7, 64, 256};

  std::printf("batch traversal sweep: %zu tuples, %d repetitions, best-of\n",
              n, kRepetitions);
  for (ModelKind kind : {ModelKind::kUdt, ModelKind::kAveraging}) {
    const bool averaging = kind == ModelKind::kAveraging;
    const char* kernel = averaging ? "avg" : "udt";
    const FlatTree& flat = TraversalModel(kind).flat_tree();
    const size_t k = static_cast<size_t>(flat.num_classes);

    std::vector<double> scalar_storage(n * k);
    std::vector<double> batch_storage(n * k);
    std::vector<const UncertainTuple*> tuples(n);
    std::vector<double*> scalar_rows(n);
    std::vector<double*> batch_rows(n);
    for (size_t i = 0; i < n; ++i) {
      tuples[i] = &ds.tuple(static_cast<int>(i));
      scalar_rows[i] = scalar_storage.data() + i * k;
      batch_rows[i] = batch_storage.data() + i * k;
    }
    FlatTraversalScratch scratch;

    auto best_of = [&](size_t batch, const std::vector<double*>& rows) {
      double best = 0.0;
      for (int rep = 0; rep < kRepetitions; ++rep) {
        const double seconds =
            ClassifyPoolOnce(flat, averaging, batch, tuples, rows, &scratch);
        if (rep == 0 || seconds < best) best = seconds;
      }
      return std::max(best, 1e-12) * 1e9 / static_cast<double>(n);
    };

    const double scalar_ns = best_of(0, scalar_rows);
    for (size_t batch : kSweepBatches) {
      const double batch_ns = best_of(batch, batch_rows);
      // The serving guarantee, re-checked under this build's optimiser:
      // the final batch pass left every row byte-identical to scalar.
      UDT_CHECK(std::memcmp(batch_storage.data(), scalar_storage.data(),
                            n * k * sizeof(double)) == 0);
      const double speedup = scalar_ns / batch_ns;
      std::printf("  %-4s batch=%-4zu  scalar %8.1f ns/tuple   batch %8.1f "
                  "ns/tuple   speedup %5.2fx\n",
                  kernel, batch, scalar_ns, batch_ns, speedup);
      sink->AddRow()
          .Str("kernel", kernel)
          .Str("batch", std::to_string(batch))
          .Int("tuples", static_cast<long long>(n))
          .Num("scalar_ns_per_tuple", scalar_ns)
          .Num("batch_ns_per_tuple", batch_ns)
          .Num("speedup", speedup);
    }
  }
}

}  // namespace
}  // namespace udt

int main(int argc, char** argv) {
  // Default to a JSON sidecar for trajectory tracking; any explicit
  // --benchmark_out wins. A --json=PATH flag belongs to the batch-kernel
  // sweep (bench_common JsonRows) and is stripped before google-benchmark
  // parses the rest.
  udt::BenchOptions sweep_options;
  std::vector<char*> args;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      sweep_options.json_path_set = true;
      sweep_options.json_path = argv[i] + 7;
      continue;
    }
    args.push_back(argv[i]);
  }
  bool has_out = false;
  for (size_t i = 1; i < args.size(); ++i) {
    if (std::strncmp(args[i], "--benchmark_out=", 16) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_micro_kernels.json";
  std::string format_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int effective_argc = static_cast<int>(args.size());
  benchmark::Initialize(&effective_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(effective_argc, args.data())) {
    return 1;
  }

  // The batch-kernel sweep runs first so its sidecar row set does not
  // depend on which BM_ benchmarks a filter selects.
  udt::bench::JsonRows sweep_sink("micro_batch_kernels", sweep_options);
  udt::RunBatchKernelSweep(&sweep_sink);
  sweep_sink.Flush();

  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
