// Ablation: the UDT-ES end-point sample rate (Section 5.3 claims 10% is a
// good trade-off) and the Section 7.3 percentile pseudo-end-points.
//
// Sweeps the sample rate over {5%, 10%, 20%, 50%, 100%} (100% degenerates
// UDT-ES to UDT-GP) and also runs UDT-GP/UDT-ES with percentile end points
// instead of true support boundaries, reporting build time and entropy
// calculations.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "eval/experiment.h"

namespace {

void RunAndPrint(const udt::Dataset& ds, const char* label,
                 udt::SplitAlgorithm algorithm, double rate,
                 bool percentile) {
  udt::TreeConfig config;
  config.algorithm = algorithm;
  config.split_options.es_endpoint_sample_rate = rate;
  config.split_options.use_percentile_endpoints = percentile;
  auto stats = udt::MeasureTreeBuild(ds, config);
  UDT_CHECK(stats.ok());
  std::printf("  %-28s %10.3fs %14lld\n", label, stats->build_seconds,
              static_cast<long long>(
                  stats->counters.TotalEntropyCalculations()));
}

}  // namespace

int main(int argc, char** argv) {
  udt::BenchOptions options = udt::ParseBenchOptions(argc, argv);
  udt::bench::PrintBanner(
      "bench_ablation_endpoint_sampling: ES sample rate + percentile "
      "end points",
      "Section 5.3 ('10% is a good choice') and Section 7.3", options);

  int s = udt::bench::SamplesFor(options, 20);
  for (const char* name : {"Segment", "Ionosphere"}) {
    auto spec = udt::datagen::FindUciSpec(name);
    UDT_CHECK(spec.ok());
    double scale = udt::bench::ScaleFor(*spec, options, 150);
    auto ds = udt::PrepareUncertainDataset(*spec, scale, 0.10, s,
                                           udt::ErrorModel::kGaussian);
    UDT_CHECK(ds.ok());

    std::printf("\n%s (%d tuples, s=%d, w=10%%)\n", name, ds->num_tuples(),
                s);
    std::printf("  %-28s %11s %14s\n", "configuration", "time",
                "entropy calcs");
    for (double rate : {0.05, 0.10, 0.20, 0.50, 1.00}) {
      char label[64];
      std::snprintf(label, sizeof(label), "UDT-ES rate=%.0f%%", rate * 100);
      RunAndPrint(*ds, label, udt::SplitAlgorithm::kUdtEs, rate, false);
    }
    RunAndPrint(*ds, "UDT-GP (reference)", udt::SplitAlgorithm::kUdtGp, 0.10,
                false);
    RunAndPrint(*ds, "UDT-GP percentile (7.3)", udt::SplitAlgorithm::kUdtGp,
                0.10, true);
    RunAndPrint(*ds, "UDT-ES percentile (7.3)", udt::SplitAlgorithm::kUdtEs,
                0.10, true);
  }
  std::printf("\nreading: the minimum of the rate sweep should sit near "
              "10%%; percentile end points trade the concavity theorems "
              "for bounding-only pruning (Section 7.3) and remain "
              "competitive.\n");
  return 0;
}
