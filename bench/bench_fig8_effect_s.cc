// Fig 8: "Effects of s on UDT-ES" - build time as the number of sample
// points per pdf grows. The paper (Section 6.3) observes essentially
// linear growth: more samples mean proportionally more work per entropy
// calculation in heterogeneous intervals.
//
// As in the paper, "JapaneseVowel" is excluded (its pdfs come from raw
// samples, so s is not a free parameter).

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "eval/experiment.h"

int main(int argc, char** argv) {
  udt::BenchOptions options = udt::ParseBenchOptions(argc, argv);
  udt::bench::PrintBanner(
      "bench_fig8_effect_s: UDT-ES build time vs samples per pdf",
      "Fig 8 (Section 6.3), s in {50,100,150,200} at --full", options);

  const double kW = 0.10;
  std::vector<int> s_values =
      options.full ? std::vector<int>{50, 100, 150, 200}
                   : std::vector<int>{10, 20, 30, 40};

  std::printf("\nUDT-ES build seconds (w=%.0f%%, Gaussian)\n\n", kW * 100);
  std::printf("%-14s", "data set");
  for (int s : s_values) std::printf("   s=%-5d", s);
  std::printf("  %s\n", "t(max)/t(min)");

  for (const udt::datagen::UciDatasetSpec& spec :
       udt::datagen::UciCatalogue()) {
    if (spec.from_raw_samples) continue;
    double scale = udt::bench::ScaleFor(spec, options, 120);
    std::printf("%-14s", spec.name.c_str());
    double first = 0.0, last = 0.0;
    for (int s : s_values) {
      auto ds = udt::PrepareUncertainDataset(spec, scale, kW, s,
                                             udt::ErrorModel::kGaussian);
      UDT_CHECK(ds.ok());
      udt::TreeConfig config;
      config.algorithm = udt::SplitAlgorithm::kUdtEs;
      auto stats = udt::MeasureTreeBuild(*ds, config);
      UDT_CHECK(stats.ok());
      std::printf(" %8.3f", stats->build_seconds);
      if (s == s_values.front()) first = stats->build_seconds;
      last = stats->build_seconds;
    }
    std::printf("  %8.2fx\n", first > 0.0 ? last / first : 0.0);
  }
  std::printf("\nreading: times should grow roughly linearly in s (a %zux "
              "span of s giving a ratio of the same order).\n",
              s_values.size());
  return 0;
}
