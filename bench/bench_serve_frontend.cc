// Serving front end: direct-session vs coalesced-queue latency and QPS.
//
// Motivation (ROADMAP north star): the executor work made one session
// fast; the serving front end (src/serve/) is what sits between "millions
// of users" and that session. This harness measures the cost/benefit of
// its admission layer with a closed-loop multi-client driver
// (serve/serve_harness.h): each client issues single-tuple requests back
// to back, cycling a serve pool, through
//   * direct: one private ServeSession per client — the no-front-end
//             baseline (no queuing delay, but per-client sessions and no
//             hot swap),
//   * queue:  one shared BatchingQueue bound to a ModelRegistry entry —
//             micro-batch coalescing (max_batch/max_delay_us) over a
//             single persistent session, with per-drain registry
//             snapshots (atomic hot swap for free).
// at 1 / 2 / 4 client threads, for a single UDT tree and an 8-tree
// forest. Before timing, every model re-checks the serving guarantee:
// queue results byte-identical to the direct session for every tuple.
//
// Output: one table row and one JSON row per configuration (bench_common
// JsonRows, BENCH_serve_frontend.json) with sustained QPS and
// p50/p95/p99 request latency in microseconds. model/mode/clients are
// emitted as strings: they are identity dimensions of the sweep, and
// tools/check_bench_schema.py keys configuration coverage on
// string-valued fields.
//
// Run: build/bench/bench_serve_frontend [--full] [--scale=F] [--s=N]
//      [--json=PATH]

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "api/trainer.h"
#include "bench_common.h"
#include "common/random.h"
#include "pdf/pdf_builder.h"
#include "serve/batching_queue.h"
#include "serve/model_registry.h"
#include "serve/serve_harness.h"
#include "serve/servable.h"

namespace udt {
namespace {

Dataset NumericDataset(int tuples, int attributes, int classes, int s,
                       uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> names;
  for (int c = 0; c < classes; ++c) names.push_back("c" + std::to_string(c));
  Dataset ds(Schema::Numerical(attributes, names));
  for (int i = 0; i < tuples; ++i) {
    UncertainTuple t;
    t.label = i % classes;
    for (int j = 0; j < attributes; ++j) {
      double center = rng.Gaussian(static_cast<double>(t.label) * 1.2, 1.0);
      auto pdf = MakeGaussianErrorPdf(center, rng.Uniform(0.5, 1.5), s);
      UDT_CHECK(pdf.ok());
      t.values.push_back(UncertainValue::Numerical(std::move(*pdf)));
    }
    UDT_CHECK(ds.AddTuple(std::move(t)).ok());
  }
  return ds;
}

// The serving guarantee for the front end: every queue response is
// byte-identical to the direct session's answer for that tuple.
void CheckQueueMatchesDirect(const serve::Servable& servable,
                             const Dataset& pool) {
  serve::ServeSession direct(servable);
  FlatBatchResult reference;
  UDT_CHECK(direct
                .PredictBatchInto(
                    std::span<const UncertainTuple>(pool.tuples().data(),
                                                    pool.tuples().size()),
                    PredictOptions{}, &reference)
                .ok());
  const size_t k = static_cast<size_t>(reference.num_classes);

  serve::ModelRegistry registry;
  UDT_CHECK(registry.Publish("check", servable) == 1);
  serve::BatchingConfig config;
  config.max_batch = 16;
  config.max_delay_us = 200;
  serve::BatchingQueue queue(&registry, "check", config);
  std::vector<std::future<serve::ServeResult>> futures;
  for (const UncertainTuple& tuple : pool.tuples()) {
    futures.push_back(queue.Submit(&tuple));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    serve::ServeResult result = futures[i].get();
    UDT_CHECK(result.status.ok());
    UDT_CHECK(result.label == reference.labels[i]);
    UDT_CHECK(std::memcmp(result.distribution.data(),
                          reference.distribution(i).data(),
                          k * sizeof(double)) == 0);
  }
}

void RunModel(const char* model_name, const serve::Servable& servable,
              const Dataset& pool, size_t requests_per_client,
              bench::JsonRows* sink) {
  CheckQueueMatchesDirect(servable, pool);

  std::span<const UncertainTuple> tuples(pool.tuples().data(),
                                         pool.tuples().size());
  for (int clients : {1, 2, 4}) {
    serve::HarnessOptions options;
    options.num_clients = clients;
    options.requests_per_client = requests_per_client;

    serve::LatencyStats direct =
        serve::RunDirectClients(servable, tuples, options);

    // Two coalescing policies: eager (max_delay 0 — drain whatever is
    // pending the moment the drainer is free; batches emerge from
    // backlog) and a fixed 100us window (bounded wait to fill batches —
    // the window price is visible directly in p50).
    auto run_queue = [&](int64_t max_delay_us) {
      serve::ModelRegistry registry;
      UDT_CHECK(registry.Publish("bench", servable) == 1);
      serve::BatchingConfig config;
      config.max_batch = 32;
      config.max_delay_us = max_delay_us;
      serve::BatchingQueue queue(&registry, "bench", config);
      serve::LatencyStats stats =
          serve::RunQueueClients(&queue, tuples, options);
      queue.Close();
      return stats;
    };
    serve::LatencyStats eager = run_queue(0);
    serve::LatencyStats windowed = run_queue(100);

    for (const char* mode : {"direct", "queue_eager", "queue_100us"}) {
      const serve::LatencyStats& s =
          std::strcmp(mode, "direct") == 0
              ? direct
              : (std::strcmp(mode, "queue_eager") == 0 ? eager : windowed);
      std::printf("%-6s %-6s clients=%d  %9.0f req/s   p50 %7.1fus   "
                  "p95 %7.1fus   p99 %7.1fus\n",
                  model_name, mode, clients, s.qps, s.p50_us, s.p95_us,
                  s.p99_us);
      sink->AddRow()
          .Str("model", model_name)
          .Str("mode", mode)
          .Str("clients", std::to_string(clients))
          .Int("requests", static_cast<long long>(s.requests))
          .Int("failed", static_cast<long long>(s.failed))
          .Num("seconds", s.wall_seconds)
          .Num("qps", s.qps)
          .Num("p50_us", s.p50_us)
          .Num("p95_us", s.p95_us)
          .Num("p99_us", s.p99_us);
    }
  }
}

}  // namespace
}  // namespace udt

int main(int argc, char** argv) {
  udt::BenchOptions options = udt::ParseBenchOptions(argc, argv);
  udt::bench::PrintBanner(
      "Serving front end: direct sessions vs coalesced admission queue, "
      "closed-loop clients",
      "serving-path extension (not a paper figure); Section 3.2 traversal",
      options);
  udt::bench::JsonRows sink("serve_frontend", options);

  const double scale = options.scale > 0.0 ? options.scale
                       : options.full      ? 1.0
                                           : 0.5;
  const int s = udt::bench::SamplesFor(options, 16);
  const int train_n = static_cast<int>(400 * scale);
  const size_t requests = options.full ? 20000 : 5000;

  std::printf("train %d tuples, serve pool 256 tuples, s=%d per pdf, "
              "%zu requests/client\n\n",
              train_n, s, requests);

  udt::Dataset train = udt::NumericDataset(train_n, 4, 3, s, 42);
  udt::Dataset pool = udt::NumericDataset(256, 4, 3, s, 1042);

  {
    udt::TreeConfig config;
    config.algorithm = udt::SplitAlgorithm::kUdtEs;
    auto model = udt::Trainer(config).TrainUdt(train);
    UDT_CHECK(model.ok());
    udt::RunModel("tree", udt::serve::Servable(model->Compile()), pool,
                  requests, &sink);
  }
  std::printf("\n");
  {
    udt::ForestConfig config;
    config.tree.algorithm = udt::SplitAlgorithm::kUdtEs;
    config.num_trees = 8;
    config.seed = 7;
    auto forest = udt::ForestTrainer(config).TrainUdt(train);
    UDT_CHECK(forest.ok());
    udt::RunModel("forest", udt::serve::Servable(forest->Compile()), pool,
                  requests, &sink);
  }

  sink.Flush();
  return 0;
}
