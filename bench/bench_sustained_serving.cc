// Sustained serving QPS: back-to-back small batches, where executor v3
// earns its keep.
//
// Motivation (ROADMAP north star): production traffic is not one giant
// batch — it is an endless stream of small requests, and at that cadence
// the pre-v3 serving path paid a std::thread spawn + join per batch, so
// sustained cost was dominated by thread churn rather than the flat-tree
// kernels. This harness measures exactly that regime: batches of 1 / 8 /
// 64 tuples issued back to back at 1 / 2 / 4 worker threads, through
//   * pointer:  per-batch thread spawning over the pointer model
//               (ClassifyDistribution shards joined per call — the v2
//               ForEachShard execution model, kept here as the baseline),
//   * compiled: one persistent PredictSession / ForestPredictSession per
//               configuration (session-owned worker pool created once,
//               zero threads spawned per batch, zero steady-state
//               allocations),
// for both a single UDT tree and an 8-tree forest. Before timing, every
// configuration re-checks the serving guarantee: compiled distributions
// byte-identical to the pointer path.
//
// Output: one table row and one JSON row per configuration
// (bench_common JsonRows, BENCH_sustained_serving.json) with batches/sec
// and tuples/sec. batch_size and threads are emitted as strings: they are
// identity dimensions of the sweep, and tools/check_bench_schema.py keys
// configuration coverage on string-valued fields.
//
// Run: build/bench/bench_sustained_serving [--full] [--scale=F] [--s=N]
//      [--json=PATH]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "api/compiled_forest.h"
#include "api/compiled_model.h"
#include "api/forest.h"
#include "api/forest_session.h"
#include "api/predict_session.h"
#include "api/trainer.h"
#include "bench_common.h"
#include "common/random.h"
#include "common/timer.h"
#include "pdf/pdf_builder.h"

namespace udt {
namespace {

Dataset NumericDataset(int tuples, int attributes, int classes, int s,
                       uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> names;
  for (int c = 0; c < classes; ++c) names.push_back("c" + std::to_string(c));
  Dataset ds(Schema::Numerical(attributes, names));
  for (int i = 0; i < tuples; ++i) {
    UncertainTuple t;
    t.label = i % classes;
    for (int j = 0; j < attributes; ++j) {
      double center = rng.Gaussian(static_cast<double>(t.label) * 1.2, 1.0);
      auto pdf = MakeGaussianErrorPdf(center, rng.Uniform(0.5, 1.5), s);
      UDT_CHECK(pdf.ok());
      t.values.push_back(UncertainValue::Numerical(std::move(*pdf)));
    }
    UDT_CHECK(ds.AddTuple(std::move(t)).ok());
  }
  return ds;
}

// The pre-v3 execution model, reproduced as the baseline: classify one
// batch by spawning `num_threads` fresh std::threads over contiguous
// shards of a classify callback and joining them — exactly what
// session_internal::ForEachShard did before the persistent executor.
template <typename ClassifyRange>
void SpawnJoinShards(size_t n, int num_threads, ClassifyRange fn) {
  if (num_threads <= 1 || n < 2) {
    fn(size_t{0}, n);
    return;
  }
  if (static_cast<size_t>(num_threads) > n) {
    num_threads = static_cast<int>(n);
  }
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(num_threads));
  const size_t per_shard = n / static_cast<size_t>(num_threads);
  const size_t remainder = n % static_cast<size_t>(num_threads);
  size_t begin = 0;
  for (int t = 0; t < num_threads; ++t) {
    const size_t len =
        per_shard + (static_cast<size_t>(t) < remainder ? 1 : 0);
    workers.emplace_back(fn, begin, begin + len);
    begin += len;
  }
  for (std::thread& worker : workers) worker.join();
}

struct Measurement {
  double seconds = 0.0;
  int repeats = 0;
};

// Runs `pass` once to warm up (faults in scratch, builds the session
// pool), then often enough to fill ~0.15s of wall time.
template <typename Pass>
Measurement TimePasses(Pass pass) {
  pass();
  WallTimer probe;
  pass();
  // Floor the probe at 1ns: on a coarse clock both reads can land in the
  // same tick, and casting 0.15/0.0 to int would be UB, not just wrong.
  double one = std::max(probe.ElapsedSeconds(), 1e-9);
  int repeats = std::clamp(static_cast<int>(std::ceil(0.15 / one)), 1, 4000);
  WallTimer timer;
  for (int r = 0; r < repeats; ++r) pass();
  return {timer.ElapsedSeconds(), repeats};
}

// One sweep over {batch_size} x {threads} x {pointer, compiled} for one
// model. `classify_pointer(i, out)` fills the pointer-path distribution
// of serve tuple i; `run_compiled(span, options, flat)` is the persistent
// session's batch entry point.
template <typename ClassifyPointer, typename RunCompiled>
void RunModel(const char* model_name, const Dataset& serve, int num_classes,
              ClassifyPointer classify_pointer, RunCompiled run_compiled,
              bench::JsonRows* sink) {
  const size_t total = serve.tuples().size();

  // The serving guarantee, re-checked before anything is timed.
  std::vector<std::vector<double>> reference(total);
  for (size_t i = 0; i < total; ++i) {
    reference[i].resize(static_cast<size_t>(num_classes));
    classify_pointer(i, reference[i].data());
  }
  {
    FlatBatchResult flat;
    UDT_CHECK(run_compiled(std::span<const UncertainTuple>(
                               serve.tuples().data(), total),
                           PredictOptions{.num_threads = 1}, &flat)
                  .ok());
    for (size_t i = 0; i < total; ++i) {
      UDT_CHECK(std::memcmp(flat.distribution(i).data(), reference[i].data(),
                            static_cast<size_t>(num_classes) *
                                sizeof(double)) == 0);
    }
  }

  for (size_t batch_size : {size_t{1}, size_t{8}, size_t{64}}) {
    for (int threads : {1, 2, 4}) {
      // The serving guarantee again, per configuration: this thread count
      // through the persistent executor, byte-identical to the pointer
      // path, re-checked under -O3 before anything is timed.
      {
        FlatBatchResult flat;
        PredictOptions check;
        check.num_threads = threads;
        UDT_CHECK(run_compiled(std::span<const UncertainTuple>(
                                   serve.tuples().data(), total),
                               check, &flat)
                      .ok());
        for (size_t i = 0; i < total; ++i) {
          UDT_CHECK(std::memcmp(flat.distribution(i).data(),
                                reference[i].data(),
                                static_cast<size_t>(num_classes) *
                                    sizeof(double)) == 0);
        }
      }

      // Batches cycle through the serve set so the working set stays
      // realistic; `cursor` persists across repeats.
      size_t cursor = 0;
      auto next_batch = [&]() {
        if (cursor + batch_size > total) cursor = 0;
        std::span<const UncertainTuple> batch(
            serve.tuples().data() + cursor, batch_size);
        cursor += batch_size;
        return batch;
      };

      std::vector<double> pointer_out(batch_size *
                                      static_cast<size_t>(num_classes));
      Measurement pointer = TimePasses([&] {
        std::span<const UncertainTuple> batch = next_batch();
        const size_t base =
            static_cast<size_t>(batch.data() - serve.tuples().data());
        SpawnJoinShards(batch.size(), threads, [&](size_t b, size_t e) {
          for (size_t i = b; i < e; ++i) {
            classify_pointer(base + i,
                             pointer_out.data() +
                                 i * static_cast<size_t>(num_classes));
          }
        });
      });

      cursor = 0;
      FlatBatchResult flat;
      PredictOptions options;
      options.num_threads = threads;
      Measurement compiled = TimePasses([&] {
        UDT_CHECK(run_compiled(next_batch(), options, &flat).ok());
      });

      const double pointer_bps =
          pointer.repeats / std::max(pointer.seconds, 1e-12);
      const double compiled_bps =
          compiled.repeats / std::max(compiled.seconds, 1e-12);
      const double bsz = static_cast<double>(batch_size);
      std::printf("%-6s batch=%-3zu threads=%d  pointer %9.0f batch/s   "
                  "compiled %9.0f batch/s   speedup %.2fx\n",
                  model_name, batch_size, threads, pointer_bps, compiled_bps,
                  compiled_bps / std::max(pointer_bps, 1e-12));

      for (const char* path : {"pointer", "compiled"}) {
        const bool is_compiled = std::strcmp(path, "compiled") == 0;
        const Measurement& m = is_compiled ? compiled : pointer;
        const double bps = is_compiled ? compiled_bps : pointer_bps;
        sink->AddRow()
            .Str("model", model_name)
            .Str("path", path)
            .Str("batch_size", std::to_string(batch_size))
            .Str("threads", std::to_string(threads))
            .Int("repeats", m.repeats)
            .Num("seconds", m.seconds)
            .Num("batches_per_sec", bps)
            .Num("tuples_per_sec", bps * bsz);
      }
    }
  }
}

}  // namespace
}  // namespace udt

int main(int argc, char** argv) {
  udt::BenchOptions options = udt::ParseBenchOptions(argc, argv);
  udt::bench::PrintBanner(
      "Sustained serving: back-to-back small batches, persistent executor "
      "vs per-batch thread spawning",
      "serving-path extension (not a paper figure); Section 3.2 traversal",
      options);
  udt::bench::JsonRows sink("sustained_serving", options);

  const double scale = options.scale > 0.0 ? options.scale
                       : options.full      ? 1.0
                                           : 0.5;
  const int s = udt::bench::SamplesFor(options, 16);
  const int train_n = static_cast<int>(400 * scale);
  const int serve_n = 256;  // cycled through; batch sizes divide into it

  std::printf("train %d tuples, serve pool %d tuples, s=%d per pdf\n\n",
              train_n, serve_n, s);

  udt::Dataset train = udt::NumericDataset(train_n, 4, 3, s, 42);
  udt::Dataset serve = udt::NumericDataset(serve_n, 4, 3, s, 1042);

  {
    udt::TreeConfig config;
    config.algorithm = udt::SplitAlgorithm::kUdtEs;
    auto model = udt::Trainer(config).TrainUdt(train);
    UDT_CHECK(model.ok());
    udt::CompiledModel compiled = model->Compile();
    udt::PredictSession session(compiled);
    udt::RunModel(
        "tree", serve, compiled.num_classes(),
        [&](size_t i, double* out) {
          std::vector<double> d =
              model->ClassifyDistribution(serve.tuple(static_cast<int>(i)));
          std::memcpy(out, d.data(), d.size() * sizeof(double));
        },
        [&](std::span<const udt::UncertainTuple> batch,
            const udt::PredictOptions& opts, udt::FlatBatchResult* flat) {
          return session.PredictBatchInto(batch, opts, flat);
        },
        &sink);
  }
  std::printf("\n");
  {
    udt::ForestConfig config;
    config.tree.algorithm = udt::SplitAlgorithm::kUdtEs;
    config.num_trees = 8;
    config.seed = 7;
    auto forest = udt::ForestTrainer(config).TrainUdt(train);
    UDT_CHECK(forest.ok());
    udt::CompiledForest compiled = forest->Compile();
    udt::ForestPredictSession session(compiled);
    udt::RunModel(
        "forest", serve, compiled.num_classes(),
        [&](size_t i, double* out) {
          std::vector<double> d =
              forest->ClassifyDistribution(serve.tuple(static_cast<int>(i)));
          std::memcpy(out, d.data(), d.size() * sizeof(double));
        },
        [&](std::span<const udt::UncertainTuple> batch,
            const udt::PredictOptions& opts, udt::FlatBatchResult* flat) {
          return session.PredictBatchInto(batch, opts, flat);
        },
        &sink);
  }

  sink.Flush();
  return 0;
}
