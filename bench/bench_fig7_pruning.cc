// Fig 7: "Pruning effectiveness" - the number of entropy calculations
// (candidate evaluations plus interval lower bounds, which cost the same)
// each algorithm performs while building the tree.
//
// Expected shape (paper): UDT-BP needs 14-68% of UDT's calculations,
// UDT-LP 5.4-54%, UDT-GP 2.7-29%, UDT-ES 0.56-28%. The exact percentages
// depend on the data distribution; the ordering and order-of-magnitude
// reductions are the reproduced result.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "eval/experiment.h"

int main(int argc, char** argv) {
  udt::BenchOptions options = udt::ParseBenchOptions(argc, argv);
  udt::bench::PrintBanner(
      "bench_fig7_pruning: entropy calculations per algorithm",
      "Fig 7 (Section 6.2), all data sets, s=100 w=10% at --full", options);

  int s = udt::bench::SamplesFor(options, 20);
  const double kW = 0.10;

  const std::vector<udt::SplitAlgorithm> kAlgorithms = {
      udt::SplitAlgorithm::kUdt,   udt::SplitAlgorithm::kUdtBp,
      udt::SplitAlgorithm::kUdtLp, udt::SplitAlgorithm::kUdtGp,
      udt::SplitAlgorithm::kUdtEs};

  std::printf("\nentropy calculations (candidates + bounds), w=%.0f%%, "
              "s=%d; %% columns relative to UDT\n\n",
              kW * 100, s);
  std::printf("%-14s %12s", "data set", "UDT");
  for (size_t i = 1; i < kAlgorithms.size(); ++i) {
    std::printf(" %12s %6s", udt::SplitAlgorithmToString(kAlgorithms[i]),
                "(%)");
  }
  std::printf("\n");

  for (const udt::datagen::UciDatasetSpec& spec :
       udt::datagen::UciCatalogue()) {
    double scale = udt::bench::ScaleFor(spec, options, 120);
    auto ds = udt::PrepareUncertainDataset(spec, scale, kW, s,
                                           udt::ErrorModel::kGaussian);
    UDT_CHECK(ds.ok());

    std::printf("%-14s", spec.name.c_str());
    long long udt_calcs = 0;
    for (udt::SplitAlgorithm algorithm : kAlgorithms) {
      udt::TreeConfig config;
      config.algorithm = algorithm;
      auto stats = udt::MeasureTreeBuild(*ds, config);
      UDT_CHECK(stats.ok());
      long long calcs = stats->counters.TotalEntropyCalculations();
      if (algorithm == udt::SplitAlgorithm::kUdt) {
        udt_calcs = calcs;
        std::printf(" %12lld", calcs);
      } else {
        std::printf(" %12lld %5.1f%%", calcs,
                    udt_calcs > 0 ? 100.0 * calcs / udt_calcs : 0.0);
      }
    }
    std::printf("\n");
  }
  std::printf("\nreading: percentages should fall monotonically from BP to "
              "ES; paper bands: BP 14-68%%, LP 5.4-54%%, GP 2.7-29%%, "
              "ES 0.56-28%%.\n");
  return 0;
}
