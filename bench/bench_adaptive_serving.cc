// Adaptive serving under churn: sustained QPS and tail latency through
// the AdaptiveServer loop, with forced mid-run retrain + hot swap.
//
// Motivation (ROADMAP streaming item): the adaptive loop promises that
// recalibration, drift-triggered retraining and registry hot swap never
// stall or tear the serving path. This harness measures that promise:
//   * steady:   the serving path with the loop idle (baseline QPS/tail),
//   * churn:    identical traffic while ForceRetrain runs every
//               `retrain_every` requests — retrains happen on the bench
//               thread, swaps land between micro-batches,
//   * post:     the serving path again, now on a later model generation.
// Each phase reports windowed throughput (requests submitted in flight,
// then drained) plus single-in-flight latency percentiles, and the
// shed/failed counters that must stay zero for the swap to count as
// seamless. The calibrated SubmitReading path is measured separately —
// its cost over Submit is the online uncertainty wrap.
//
// Output: one table row and one JSON row per (phase, path) with
// requests/sec, p50/p95 microseconds, shed and retrain counts. `phase`
// and `path` are identity dimensions (string-valued) for
// tools/check_bench_schema.py.
//
// Run: build/bench/bench_adaptive_serving [--full] [--scale=F] [--s=N]
//      [--json=PATH]

#include <algorithm>
#include <cstdio>
#include <future>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/random.h"
#include "common/timer.h"
#include "pdf/pdf_builder.h"
#include "stream/adaptive_server.h"

namespace udt {
namespace {

Dataset StreamDataset(int tuples, int attributes, uint64_t seed, int s) {
  Rng rng(seed);
  Dataset ds(Schema::Numerical(attributes, {"c0", "c1", "c2"}));
  for (int i = 0; i < tuples; ++i) {
    UncertainTuple t;
    t.label = static_cast<int>(rng.UniformInt(3));
    for (int j = 0; j < attributes; ++j) {
      double center = rng.Gaussian(static_cast<double>(t.label) * 1.5, 0.8);
      auto pdf = MakeGaussianErrorPdf(center, 1.0, s);
      UDT_CHECK(pdf.ok());
      t.values.push_back(UncertainValue::Numerical(std::move(*pdf)));
    }
    UDT_CHECK(ds.AddTuple(std::move(t)).ok());
  }
  return ds;
}

double Percentile(std::vector<double>* sorted_in_place, double q) {
  std::vector<double>& v = *sorted_in_place;
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t rank = std::min(
      v.size() - 1, static_cast<size_t>(q * static_cast<double>(v.size() - 1) +
                                        0.5));
  return v[rank];
}

struct PhaseResult {
  long long requests = 0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  long long failed = 0;
  long long retrains = 0;
  double retrain_seconds = 0.0;
};

// Drives `requests` submissions through `server` in windows of
// `in_flight`, forcing a retrain every `retrain_every` requests (0 =
// never). Then samples `latency_probes` single-in-flight requests for the
// percentiles.
PhaseResult RunPhase(stream::AdaptiveServer* server, const Dataset& pool,
                     int requests, int in_flight, int retrain_every,
                     int latency_probes) {
  PhaseResult result;
  result.requests = requests;
  const int pool_size = pool.num_tuples();

  WallTimer timer;
  int issued = 0;
  int since_retrain = 0;
  std::vector<std::future<serve::ServeResult>> window;
  window.reserve(static_cast<size_t>(in_flight));
  while (issued < requests) {
    window.clear();
    const int take = std::min(in_flight, requests - issued);
    for (int i = 0; i < take; ++i) {
      window.push_back(server->Submit(&pool.tuple(issued % pool_size)));
      ++issued;
    }
    for (auto& f : window) {
      if (!f.get().status.ok()) ++result.failed;
    }
    since_retrain += take;
    if (retrain_every > 0 && since_retrain >= retrain_every) {
      since_retrain = 0;
      WallTimer swap_timer;
      auto report = server->ForceRetrain("bench-churn");
      UDT_CHECK(report.ok());
      result.retrain_seconds += swap_timer.ElapsedSeconds();
      ++result.retrains;
    }
  }
  result.qps = requests / std::max(timer.ElapsedSeconds(), 1e-12);

  std::vector<double> latencies_us;
  latencies_us.reserve(static_cast<size_t>(latency_probes));
  for (int i = 0; i < latency_probes; ++i) {
    WallTimer one;
    serve::ServeResult r = server->Submit(&pool.tuple(i % pool_size)).get();
    latencies_us.push_back(one.ElapsedSeconds() * 1e6);
    if (!r.status.ok()) ++result.failed;
  }
  result.p50_us = Percentile(&latencies_us, 0.50);
  result.p95_us = Percentile(&latencies_us, 0.95);
  return result;
}

void Report(const char* phase, const char* path, const PhaseResult& r,
            bench::JsonRows* sink) {
  std::printf("%-7s %-8s %6lld req  %9.0f req/s  p50 %7.1fus  p95 %7.1fus  "
              "failed %lld  retrains %lld (%.3fs)\n",
              phase, path, r.requests, r.qps, r.p50_us, r.p95_us, r.failed,
              r.retrains, r.retrain_seconds);
  sink->AddRow()
      .Str("phase", phase)
      .Str("path", path)
      .Int("requests", r.requests)
      .Num("qps", r.qps)
      .Num("p50_us", r.p50_us)
      .Num("p95_us", r.p95_us)
      .Int("failed", r.failed)
      .Int("retrains", r.retrains)
      .Num("retrain_seconds", r.retrain_seconds);
}

}  // namespace
}  // namespace udt

int main(int argc, char** argv) {
  udt::BenchOptions options = udt::ParseBenchOptions(argc, argv);
  udt::bench::PrintBanner(
      "Adaptive serving under churn: QPS and tail latency across forced "
      "retrain + hot swap",
      "streaming extension (not a paper figure); Section 3.2 traversal",
      options);
  udt::bench::JsonRows sink("adaptive_serving", options);

  const double scale = options.scale > 0.0 ? options.scale
                       : options.full      ? 1.0
                                           : 0.25;
  const int s = udt::bench::SamplesFor(options, 12);
  const int seed_n = static_cast<int>(600 * scale);
  const int requests = static_cast<int>(4000 * scale);
  const int probes = static_cast<int>(800 * scale);

  udt::stream::AdaptiveServerOptions server_options;
  server_options.batching.max_batch = 16;
  server_options.batching.max_delay_us = 100;
  server_options.retrain.window_capacity = 256;
  server_options.retrain.min_window = 64;
  // The bench measures serving under swap churn, so every forced retrain
  // must actually publish: disable the validation gate (a small-window
  // candidate regularly loses a holdout point or two to the seed-trained
  // incumbent) and park the drift monitor so no surprise retrain rides
  // the warmup feedback.
  server_options.retrain.max_regression = 1.0;
  server_options.drift.lambda = 1e9;
  udt::ForestConfig forest;
  forest.num_trees = 8;
  forest.seed = 11;

  std::printf("seed %d tuples, %d requests/phase, %d latency probes, "
              "s=%d per pdf, %d-tree forest\n\n",
              seed_n, requests, probes, s, forest.num_trees);

  const udt::Dataset seed = udt::StreamDataset(seed_n, 3, 42, s);
  const udt::Dataset pool = udt::StreamDataset(512, 3, 1042, s);
  auto server = udt::stream::AdaptiveServer::Create(
      seed, udt::ForestTrainer(forest), server_options);
  UDT_CHECK(server.ok());
  udt::stream::AdaptiveServer& srv = **server;

  // Labeled feedback fills the retrain window so churn-phase retrains
  // train on a real window rather than failing empty.
  for (int i = 0; i < 128; ++i) {
    const udt::UncertainTuple& t = pool.tuple(i % pool.num_tuples());
    udt::serve::ServeResult r = srv.Submit(&t).get();
    UDT_CHECK(r.status.ok());
    UDT_CHECK(srv.Feedback(t, t.label, r).ok());
  }

  const udt::PhaseResult steady =
      udt::RunPhase(&srv, pool, requests, 32, 0, probes);
  udt::Report("steady", "submit", steady, &sink);

  const udt::PhaseResult churn = udt::RunPhase(
      &srv, pool, requests, 32, std::max(requests / 4, 1), probes);
  udt::Report("churn", "submit", churn, &sink);

  const udt::PhaseResult post =
      udt::RunPhase(&srv, pool, requests, 32, 0, probes);
  udt::Report("post", "submit", post, &sink);

  // The calibrated path: point readings wrapped into error pdfs at
  // submit time. Warm the per-source error models first so the wrap does
  // real Gaussian reconstruction, not point-mass passthrough.
  for (int i = 0; i < 64; ++i) {
    for (int a = 0; a < 3; ++a) {
      UDT_CHECK(srv.ObserveResidual(0, a, 0.1 * (i % 7), 0.0).ok());
    }
  }
  {
    udt::PhaseResult readings;
    readings.requests = requests;
    udt::Rng rng(7);
    udt::WallTimer timer;
    std::vector<std::future<udt::serve::ServeResult>> window;
    int issued = 0;
    while (issued < requests) {
      window.clear();
      const int take = std::min(32, requests - issued);
      for (int i = 0; i < take; ++i) {
        window.push_back(srv.SubmitReading(
            0, {rng.Gaussian(1.5, 1.0), rng.Gaussian(1.5, 1.0),
                rng.Gaussian(1.5, 1.0)}));
        ++issued;
      }
      for (auto& f : window) {
        if (!f.get().status.ok()) ++readings.failed;
      }
    }
    readings.qps = requests / std::max(timer.ElapsedSeconds(), 1e-12);
    std::vector<double> lat;
    for (int i = 0; i < probes; ++i) {
      udt::WallTimer one;
      auto r = srv.SubmitReading(0, {1.0, 2.0, 3.0}).get();
      lat.push_back(one.ElapsedSeconds() * 1e6);
      if (!r.status.ok()) ++readings.failed;
    }
    readings.p50_us = udt::Percentile(&lat, 0.50);
    readings.p95_us = udt::Percentile(&lat, 0.95);
    udt::Report("steady", "reading", readings, &sink);
  }

  const auto stats = srv.queue().stats();
  std::printf("\nqueue: submitted %llu served %llu shed %llu drains %llu "
              "max_drain %llu; generations %lld, live version %llu\n",
              static_cast<unsigned long long>(stats.submitted),
              static_cast<unsigned long long>(stats.served),
              static_cast<unsigned long long>(stats.rejected),
              static_cast<unsigned long long>(stats.drains),
              static_cast<unsigned long long>(stats.max_drain),
              static_cast<long long>(srv.generations()),
              static_cast<unsigned long long>(srv.live_version()));
  UDT_CHECK(stats.rejected == 0);

  sink.Flush();
  return 0;
}
