// Forest serving throughput: pointer-forest voting vs the compiled flat
// layout, plus the training-side cost of the ensemble.
//
// Motivation (ROADMAP north star): an uncertain-data forest multiplies the
// serving cost of a single UDT tree by its ensemble size, so the compiled
// ForestPredictSession path — per-worker scratch, per-tree flat records,
// allocation-free vote aggregation — is what makes N-tree serving viable
// at traffic. This harness trains a bagged forest per data set / model
// kind, re-checks the serving guarantee (compiled votes byte-identical to
// the pointer voting path), then times steady-state batch classification
// through both paths at 1/2/4 worker threads, for both vote rules on the
// compiled path's model kinds.
//
// Output: one table row and one JSON row (bench_common JsonRows,
// BENCH_forest_throughput.json) per configuration, with tuples/sec,
// ensemble size and the single-tree baseline for an apples-to-apples
// slowdown factor.
//
// Run: build/bench/bench_forest_throughput [--full] [--scale=F] [--s=N]
//      [--threads=N] [--json=PATH]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "api/compiled_forest.h"
#include "api/forest.h"
#include "api/forest_session.h"
#include "bench_common.h"
#include "common/random.h"
#include "common/timer.h"
#include "pdf/pdf_builder.h"

namespace udt {
namespace {

Dataset NumericDataset(int tuples, int attributes, int classes, int s,
                       uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> names;
  for (int c = 0; c < classes; ++c) names.push_back("c" + std::to_string(c));
  Dataset ds(Schema::Numerical(attributes, names));
  for (int i = 0; i < tuples; ++i) {
    UncertainTuple t;
    t.label = i % classes;
    for (int j = 0; j < attributes; ++j) {
      double center = rng.Gaussian(static_cast<double>(t.label) * 1.2, 1.0);
      auto pdf = MakeGaussianErrorPdf(center, rng.Uniform(0.5, 1.5), s);
      UDT_CHECK(pdf.ok());
      t.values.push_back(UncertainValue::Numerical(std::move(*pdf)));
    }
    UDT_CHECK(ds.AddTuple(std::move(t)).ok());
  }
  return ds;
}

// Pointer-path reference: per-tuple ForestModel::ClassifyDistribution over
// contiguous shards.
void PointerBatch(const ForestModel& forest, const Dataset& ds,
                  int num_threads, std::vector<std::vector<double>>* out) {
  const size_t n = static_cast<size_t>(ds.num_tuples());
  out->resize(n);
  auto classify_range = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      (*out)[i] =
          forest.ClassifyDistribution(ds.tuple(static_cast<int>(i)));
    }
  };
  if (num_threads <= 1) {
    classify_range(0, n);
    return;
  }
  std::vector<std::thread> workers;
  const size_t per_shard = n / static_cast<size_t>(num_threads);
  const size_t remainder = n % static_cast<size_t>(num_threads);
  size_t begin = 0;
  for (int t = 0; t < num_threads; ++t) {
    const size_t len = per_shard + (static_cast<size_t>(t) < remainder ? 1 : 0);
    workers.emplace_back(classify_range, begin, begin + len);
    begin += len;
  }
  for (std::thread& worker : workers) worker.join();
}

struct Measurement {
  double seconds = 0.0;
  int repeats = 0;
};

// Runs `pass` once to warm up, then often enough to fill ~0.25s.
template <typename Pass>
Measurement TimePasses(Pass pass) {
  pass();  // warm-up: fault in scratch, settle allocator state
  WallTimer probe;
  pass();
  double one = probe.ElapsedSeconds();
  int repeats = std::clamp(static_cast<int>(std::ceil(0.25 / one)), 1, 200);
  WallTimer timer;
  for (int r = 0; r < repeats; ++r) pass();
  return {timer.ElapsedSeconds(), repeats};
}

void RunDataset(const char* dataset_name, const Dataset& train,
                const Dataset& serve, int num_trees, bench::JsonRows* sink) {
  for (ModelKind kind : {ModelKind::kUdt, ModelKind::kAveraging}) {
    const char* kind_name = kind == ModelKind::kUdt ? "udt" : "avg";

    ForestConfig config;
    config.num_trees = num_trees;
    config.seed = 42;
    config.subspace_attributes = ForestConfig::kSubspaceSqrt;
    config.tree.algorithm = SplitAlgorithm::kUdtEs;

    ForestTrainer trainer(config);
    OobEstimate oob;
    WallTimer train_timer;
    TrainRequest request = TrainRequest::For(train, kind);
    request.oob = &oob;
    auto forest = trainer.Train(request);
    UDT_CHECK(forest.ok());
    const double train_seconds = train_timer.ElapsedSeconds();

    WallTimer compile_timer;
    CompiledForest compiled = forest->Compile();
    const double compile_seconds = compile_timer.ElapsedSeconds();

    // The serving guarantee, re-checked in the harness itself: compiled
    // votes byte-identical to the pointer voting path.
    std::vector<std::vector<double>> reference;
    PointerBatch(*forest, serve, 1, &reference);
    {
      ForestPredictSession session(compiled);
      FlatBatchResult flat;
      UDT_CHECK(session
                    .PredictBatchInto(
                        std::span<const UncertainTuple>(
                            serve.tuples().data(), serve.tuples().size()),
                        {.num_threads = 1}, &flat)
                    .ok());
      const size_t k = static_cast<size_t>(compiled.num_classes());
      for (size_t i = 0; i < reference.size(); ++i) {
        UDT_CHECK(std::memcmp(flat.distribution(i).data(),
                              reference[i].data(), k * sizeof(double)) == 0);
      }
    }

    for (int threads : {1, 2, 4}) {
      std::vector<std::vector<double>> pointer_out;
      Measurement pointer = TimePasses(
          [&] { PointerBatch(*forest, serve, threads, &pointer_out); });

      ForestPredictSession session(compiled);
      FlatBatchResult flat;
      PredictOptions options;
      options.num_threads = threads;
      Measurement flat_time = TimePasses([&] {
        UDT_CHECK(session
                      .PredictBatchInto(
                          std::span<const UncertainTuple>(
                              serve.tuples().data(), serve.tuples().size()),
                          options, &flat)
                      .ok());
      });

      const double n = static_cast<double>(serve.num_tuples());
      const double pointer_tps =
          n * pointer.repeats / std::max(pointer.seconds, 1e-12);
      const double compiled_tps =
          n * flat_time.repeats / std::max(flat_time.seconds, 1e-12);
      std::printf("%-8s %-4s trees=%d threads=%d  pointer %9.0f tuples/s   "
                  "compiled %9.0f tuples/s   speedup %.2fx   oob_err %.3f\n",
                  dataset_name, kind_name, num_trees, threads, pointer_tps,
                  compiled_tps, compiled_tps / std::max(pointer_tps, 1e-12),
                  oob.error);

      for (const char* path : {"pointer", "compiled"}) {
        const bool is_compiled = std::strcmp(path, "compiled") == 0;
        sink->AddRow()
            .Str("dataset", dataset_name)
            .Str("model_kind", kind_name)
            .Str("path", path)
            .Int("trees", num_trees)
            .Int("threads", threads)
            .Int("tuples", serve.num_tuples())
            .Int("forest_nodes", compiled.num_nodes())
            .Int("repeats", is_compiled ? flat_time.repeats : pointer.repeats)
            .Num("seconds", is_compiled ? flat_time.seconds : pointer.seconds)
            .Num("tuples_per_sec", is_compiled ? compiled_tps : pointer_tps)
            .Num("train_seconds", train_seconds)
            .Num("compile_seconds", compile_seconds)
            .Num("oob_error", oob.error)
            .Num("oob_coverage", oob.coverage);
      }
    }
  }
}

}  // namespace
}  // namespace udt

int main(int argc, char** argv) {
  udt::BenchOptions options = udt::ParseBenchOptions(argc, argv);
  udt::bench::PrintBanner(
      "Forest serving throughput: pointer voting vs compiled flat layout",
      "ensemble extension (not a paper figure); Section 3.2 traversal x N "
      "trees",
      options);
  udt::bench::JsonRows sink("forest_throughput", options);

  const double scale = options.scale > 0.0 ? options.scale
                       : options.full      ? 1.0
                                           : 0.4;
  const int s = udt::bench::SamplesFor(options, 16);
  const int train_n = static_cast<int>(450 * scale);
  const int serve_n = static_cast<int>(750 * scale);
  const int num_trees = options.full ? 25 : 8;

  std::printf("train %d tuples, serve %d tuples, s=%d per pdf, %d trees\n\n",
              train_n, serve_n, s, num_trees);

  {
    udt::Dataset train = udt::NumericDataset(train_n, 4, 3, s, 42);
    udt::Dataset serve = udt::NumericDataset(serve_n, 4, 3, s, 1042);
    udt::RunDataset("numeric", train, serve, num_trees, &sink);
  }

  sink.Flush();
  return 0;
}
