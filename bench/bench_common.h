// Shared helpers for the bench harnesses (scale selection and banner
// printing). Every harness runs at a reduced default scale so the full
// bench sweep finishes in minutes; pass --full for paper-scale data sets
// (Table 2 tuple counts, s = 100).
//
// Resource note for --full: the widest data sets (Satellite, PenDigits)
// put ~10^6 sample positions on each attribute axis; the global finders
// (UDT-GP/UDT-ES) keep every attribute's scan alive, which peaks around a
// gigabyte, and exhaustive UDT needs hours of CPU - both in line with the
// "information explosion" the paper reports for s = 100.

#ifndef UDT_BENCH_BENCH_COMMON_H_
#define UDT_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cstdio>

#include "datagen/uci_like.h"
#include "eval/experiment.h"

namespace udt {
namespace bench {

// Caps a data set at `max_tuples` unless --full / --scale override.
inline double ScaleFor(const datagen::UciDatasetSpec& spec,
                       const BenchOptions& options, int max_tuples) {
  if (options.scale > 0.0) return options.scale;
  if (options.full) return 1.0;
  return std::min(1.0, static_cast<double>(max_tuples) / spec.num_tuples);
}

// Samples per pdf: paper uses s = 100; reduced default keeps runs quick.
inline int SamplesFor(const BenchOptions& options, int default_s) {
  if (options.samples_per_pdf > 0) return options.samples_per_pdf;
  return options.full ? 100 : default_s;
}

inline int FoldsFor(const BenchOptions& options, int default_folds) {
  if (options.folds > 0) return options.folds;
  return options.full ? 10 : default_folds;
}

inline void PrintBanner(const char* title, const char* paper_ref,
                        const BenchOptions& options) {
  std::printf("==============================================================="
              "=================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("scale: %s (use --full for paper scale; --scale=F --s=N "
              "--folds=N to override)\n",
              options.full ? "FULL (paper)" : "reduced default");
  std::printf("==============================================================="
              "=================\n");
}

}  // namespace bench
}  // namespace udt

#endif  // UDT_BENCH_BENCH_COMMON_H_
