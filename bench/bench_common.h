// Shared helpers for the bench harnesses (scale selection and banner
// printing). Every harness runs at a reduced default scale so the full
// bench sweep finishes in minutes; pass --full for paper-scale data sets
// (Table 2 tuple counts, s = 100).
//
// Resource note for --full: the widest data sets (Satellite, PenDigits)
// put ~10^6 sample positions on each attribute axis; the global finders
// (UDT-GP/UDT-ES) keep every attribute's scan alive, which peaks around a
// gigabyte, and exhaustive UDT needs hours of CPU - both in line with the
// "information explosion" the paper reports for s = 100.

#ifndef UDT_BENCH_BENCH_COMMON_H_
#define UDT_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "datagen/uci_like.h"
#include "eval/experiment.h"

namespace udt {
namespace bench {

// Caps a data set at `max_tuples` unless --full / --scale override.
inline double ScaleFor(const datagen::UciDatasetSpec& spec,
                       const BenchOptions& options, int max_tuples) {
  if (options.scale > 0.0) return options.scale;
  if (options.full) return 1.0;
  return std::min(1.0, static_cast<double>(max_tuples) / spec.num_tuples);
}

// Samples per pdf: paper uses s = 100; reduced default keeps runs quick.
inline int SamplesFor(const BenchOptions& options, int default_s) {
  if (options.samples_per_pdf > 0) return options.samples_per_pdf;
  return options.full ? 100 : default_s;
}

inline int FoldsFor(const BenchOptions& options, int default_folds) {
  if (options.folds > 0) return options.folds;
  return options.full ? 10 : default_folds;
}

inline void PrintBanner(const char* title, const char* paper_ref,
                        const BenchOptions& options) {
  std::printf("==============================================================="
              "=================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("scale: %s (use --full for paper scale; --scale=F --s=N "
              "--folds=N to override)\n",
              options.full ? "FULL (paper)" : "reduced default");
  std::printf("==============================================================="
              "=================\n");
}

// Collects machine-readable result rows (one JSON object per line) and
// writes them to the harness's BENCH_<name>.json so successive runs can
// be tracked as a trajectory. Keys/values are emitted in insertion order;
// string values must not need escaping (data-set and algorithm names).
class JsonRows {
 public:
  // `harness` names the default output file, BENCH_<harness>.json in the
  // working directory; --json=PATH overrides it and --json= disables.
  JsonRows(const char* harness, const BenchOptions& options) {
    path_ = options.json_path_set ? options.json_path
                                  : std::string("BENCH_") + harness + ".json";
  }

  class Row {
   public:
    explicit Row(JsonRows* sink) : sink_(sink) {}
    // The destructor emits the row, so copies would emit duplicates;
    // AddRow's prvalue return needs no copy or move under C++17 elision.
    Row(const Row&) = delete;
    Row& operator=(const Row&) = delete;
    Row& Str(const char* key, const std::string& value) {
      Append(key, "\"" + value + "\"");
      return *this;
    }
    Row& Num(const char* key, double value) {
      char buffer[64];
      std::snprintf(buffer, sizeof(buffer), "%.6g", value);
      Append(key, buffer);
      return *this;
    }
    Row& Int(const char* key, long long value) {
      Append(key, std::to_string(value));
      return *this;
    }
    ~Row() { sink_->rows_.push_back("{" + fields_ + "}"); }

   private:
    void Append(const char* key, const std::string& value) {
      if (!fields_.empty()) fields_ += ",";
      fields_ += std::string("\"") + key + "\":" + value;
    }
    JsonRows* sink_;
    std::string fields_;
  };

  Row AddRow() { return Row(this); }

  // Writes the rows; call once at the end of main.
  void Flush() {
    if (path_.empty() || rows_.empty()) return;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path_.c_str());
      return;
    }
    for (const std::string& row : rows_) {
      std::fprintf(f, "%s\n", row.c_str());
    }
    std::fclose(f);
    std::printf("\nwrote %zu JSON rows to %s\n", rows_.size(), path_.c_str());
  }

 private:
  std::string path_;
  std::vector<std::string> rows_;
};

}  // namespace bench
}  // namespace udt

#endif  // UDT_BENCH_BENCH_COMMON_H_
