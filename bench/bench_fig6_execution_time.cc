// Fig 6: "Execution time" of AVG, UDT, UDT-BP, UDT-LP, UDT-GP, UDT-ES on
// every Table 2 data set (the paper plots seconds on a log scale).
//
// Expected shape (paper): AVG fastest; among the distribution-based
// algorithms the ordering UDT > UDT-BP > UDT-LP > UDT-GP > UDT-ES, with
// UDT-ES within a small factor (1.62x-9.65x) of AVG on favourable data
// sets. Absolute seconds differ from the paper's 2008 Java testbed; the
// ordering and ratios are the reproduced result.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "eval/experiment.h"

int main(int argc, char** argv) {
  udt::BenchOptions options = udt::ParseBenchOptions(argc, argv);
  udt::bench::PrintBanner(
      "bench_fig6_execution_time: tree-construction wall-clock time",
      "Fig 6 (Section 6.1), all data sets, s=100 w=10% at --full", options);

  int s = udt::bench::SamplesFor(options, 20);
  const double kW = 0.10;

  const std::vector<udt::SplitAlgorithm> kAlgorithms = {
      udt::SplitAlgorithm::kAvg,   udt::SplitAlgorithm::kUdt,
      udt::SplitAlgorithm::kUdtBp, udt::SplitAlgorithm::kUdtLp,
      udt::SplitAlgorithm::kUdtGp, udt::SplitAlgorithm::kUdtEs};

  std::printf("\nbuild time in seconds (w=%.0f%%, s=%d, Gaussian)\n\n",
              kW * 100, s);
  std::printf("%-14s", "data set");
  for (udt::SplitAlgorithm a : kAlgorithms) {
    std::printf(" %9s", udt::SplitAlgorithmToString(a));
  }
  std::printf("  %s\n", "ES/AVG");

  for (const udt::datagen::UciDatasetSpec& spec :
       udt::datagen::UciCatalogue()) {
    double scale = udt::bench::ScaleFor(spec, options, 120);
    auto ds = udt::PrepareUncertainDataset(spec, scale, kW, s,
                                           udt::ErrorModel::kGaussian);
    UDT_CHECK(ds.ok());

    std::printf("%-14s", spec.name.c_str());
    double avg_seconds = 0.0;
    double es_seconds = 0.0;
    for (udt::SplitAlgorithm algorithm : kAlgorithms) {
      udt::TreeConfig config;
      config.algorithm = algorithm;
      // AVG trains on the means view, exactly as AveragingClassifier does.
      // Best of two runs at reduced scale to damp cold-start noise.
      int repetitions = options.full ? 1 : 2;
      double seconds = 0.0;
      for (int rep = 0; rep < repetitions; ++rep) {
        auto stats = algorithm == udt::SplitAlgorithm::kAvg
                         ? udt::MeasureTreeBuild(ds->ToMeans(), config)
                         : udt::MeasureTreeBuild(*ds, config);
        UDT_CHECK(stats.ok());
        seconds = rep == 0 ? stats->build_seconds
                           : std::min(seconds, stats->build_seconds);
      }
      std::printf(" %9.3f", seconds);
      if (algorithm == udt::SplitAlgorithm::kAvg) avg_seconds = seconds;
      if (algorithm == udt::SplitAlgorithm::kUdtEs) es_seconds = seconds;
    }
    std::printf("  %6.2fx\n",
                avg_seconds > 0.0 ? es_seconds / avg_seconds : 0.0);
  }
  std::printf("\nreading: per row, times should descend from UDT to UDT-ES; "
              "AVG is the point-data baseline.\n");
  return 0;
}
