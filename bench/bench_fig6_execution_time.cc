// Fig 6: "Execution time" of AVG, UDT, UDT-BP, UDT-LP, UDT-GP, UDT-ES on
// every Table 2 data set (the paper plots seconds on a log scale), plus a
// thread-scaling column for the parallel construction engine.
//
// Expected shape (paper): AVG fastest; among the distribution-based
// algorithms the ordering UDT > UDT-BP > UDT-LP > UDT-GP > UDT-ES, with
// UDT-ES within a small factor (1.62x-9.65x) of AVG on favourable data
// sets. Absolute seconds differ from the paper's 2008 Java testbed; the
// ordering and ratios are the reproduced result. The xNt column is this
// codebase's contribution on top of the paper: the same tree built with
// --threads workers (bitwise-identical output), reported as the speedup
// over the serial build of the same algorithm.
//
// Every (data set, algorithm) cell is also emitted as a JSON row to
// BENCH_fig6_execution_time.json for trajectory tracking across commits.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/task_pool.h"
#include "eval/experiment.h"

int main(int argc, char** argv) {
  udt::BenchOptions options = udt::ParseBenchOptions(argc, argv);
  udt::bench::PrintBanner(
      "bench_fig6_execution_time: tree-construction wall-clock time",
      "Fig 6 (Section 6.1), all data sets, s=100 w=10% at --full", options);

  int s = udt::bench::SamplesFor(options, 20);
  const double kW = 0.10;
  // Resolve --threads=0 ("one per hardware thread") to the actual count
  // so the printed columns and the JSON rows name the real concurrency.
  const int threads = udt::TaskPool::EffectiveConcurrency(options.num_threads);
  udt::bench::JsonRows json("fig6_execution_time", options);

  const std::vector<udt::SplitAlgorithm> kAlgorithms = {
      udt::SplitAlgorithm::kAvg,   udt::SplitAlgorithm::kUdt,
      udt::SplitAlgorithm::kUdtBp, udt::SplitAlgorithm::kUdtLp,
      udt::SplitAlgorithm::kUdtGp, udt::SplitAlgorithm::kUdtEs};

  std::printf("\nbuild time in seconds (w=%.0f%%, s=%d, Gaussian); "
              "x%dt = speedup of the same build at %d threads\n\n",
              kW * 100, s, threads, threads);
  std::printf("%-14s", "data set");
  for (udt::SplitAlgorithm a : kAlgorithms) {
    std::printf(" %9s", udt::SplitAlgorithmToString(a));
  }
  std::printf("  %6s  %8s  %8s\n", "ES/AVG", "UDTx", "ESx");

  for (const udt::datagen::UciDatasetSpec& spec :
       udt::datagen::UciCatalogue()) {
    double scale = udt::bench::ScaleFor(spec, options, 120);
    auto ds = udt::PrepareUncertainDataset(spec, scale, kW, s,
                                           udt::ErrorModel::kGaussian);
    UDT_CHECK(ds.ok());

    std::printf("%-14s", spec.name.c_str());
    double avg_seconds = 0.0;
    double es_seconds = 0.0;
    double udt_speedup = 0.0;
    double es_speedup = 0.0;
    for (udt::SplitAlgorithm algorithm : kAlgorithms) {
      udt::TreeConfig config;
      config.algorithm = algorithm;
      // AVG trains on the means view, as Trainer::TrainAveraging does.
      // Best of two runs at reduced scale to damp cold-start noise.
      int repetitions = options.full ? 1 : 2;
      double seconds = 0.0;
      for (int rep = 0; rep < repetitions; ++rep) {
        auto stats = algorithm == udt::SplitAlgorithm::kAvg
                         ? udt::MeasureTreeBuild(ds->ToMeans(), config)
                         : udt::MeasureTreeBuild(*ds, config);
        UDT_CHECK(stats.ok());
        seconds = rep == 0 ? stats->build_seconds
                           : std::min(seconds, stats->build_seconds);
      }
      std::printf(" %9.3f", seconds);
      if (algorithm == udt::SplitAlgorithm::kAvg) avg_seconds = seconds;
      if (algorithm == udt::SplitAlgorithm::kUdtEs) es_seconds = seconds;

      // Thread-scaling column: the two algorithms the paper's story hangs
      // on (exhaustive UDT and the production choice UDT-ES), rebuilt on
      // the parallel engine.
      double parallel_seconds = 0.0;
      double speedup = 0.0;
      bool scaled = threads != 1 &&
                    (algorithm == udt::SplitAlgorithm::kUdt ||
                     algorithm == udt::SplitAlgorithm::kUdtEs);
      if (scaled) {
        udt::TreeConfig parallel_config = config;
        parallel_config.num_threads = threads;
        auto stats = udt::MeasureTreeBuild(*ds, parallel_config);
        UDT_CHECK(stats.ok());
        parallel_seconds = stats->build_seconds;
        speedup = parallel_seconds > 0.0 ? seconds / parallel_seconds : 0.0;
        if (algorithm == udt::SplitAlgorithm::kUdt) udt_speedup = speedup;
        if (algorithm == udt::SplitAlgorithm::kUdtEs) es_speedup = speedup;
      }

      auto row = json.AddRow();
      row.Str("bench", "fig6")
          .Str("dataset", spec.name)
          .Str("algorithm", udt::SplitAlgorithmToString(algorithm))
          .Int("s", s)
          .Num("w", kW)
          .Num("seconds", seconds);
      if (scaled) {
        row.Int("threads", threads)
            .Num("parallel_seconds", parallel_seconds)
            .Num("speedup", speedup);
      }
    }
    std::printf("  %5.2fx  %7.2fx  %7.2fx\n",
                avg_seconds > 0.0 ? es_seconds / avg_seconds : 0.0,
                udt_speedup, es_speedup);
  }
  std::printf("\nreading: per row, times should descend from UDT to UDT-ES; "
              "AVG is the point-data baseline. UDTx/ESx are the wall-clock "
              "speedups of the %d-thread build (identical tree bytes; "
              "expect ~1.0x when the machine has a single core).\n",
              threads);
  json.Flush();
  return 0;
}
