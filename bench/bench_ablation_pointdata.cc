// Ablation: applying the pruning machinery to classical point data
// (Section 7.5). With point values every sample is an end point, so
// Theorem-based pruning has nothing to skip and UDT-BP/LP/GP degenerate to
// the exhaustive sweep - but end-point *sampling* (UDT-ES) still replaces
// 90% of the candidate evaluations with a few interval bounds. The paper:
// "the techniques of pruning by bounding and end point sampling can be
// directly applied to point data ... the saving could be substantial when
// there are a large number of tuples."

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "datagen/synthetic.h"
#include "eval/experiment.h"

int main(int argc, char** argv) {
  udt::BenchOptions options = udt::ParseBenchOptions(argc, argv);
  udt::bench::PrintBanner(
      "bench_ablation_pointdata: pruning on large point-valued data",
      "Section 7.5 (application to point data)", options);

  udt::datagen::SyntheticConfig config;
  config.name = "point-data";
  config.num_tuples = options.full ? 50000 : 8000;
  config.num_attributes = 8;
  config.num_classes = 4;
  config.clusters_per_class = 2;
  config.inherent_noise = 0.15;
  config.seed = 77;
  udt::PointDataset points = udt::datagen::GenerateSynthetic(config);
  udt::Dataset ds = points.ToPointMassDataset();

  std::printf("\npoint data: %d tuples, %d attributes, %d classes "
              "(s=1 per value)\n\n",
              ds.num_tuples(), ds.num_attributes(), ds.num_classes());
  std::printf("%-8s %10s %14s %8s\n", "algo", "time", "entropy calcs",
              "(% UDT)");

  long long reference = 0;
  for (udt::SplitAlgorithm algorithm :
       {udt::SplitAlgorithm::kUdt, udt::SplitAlgorithm::kUdtBp,
        udt::SplitAlgorithm::kUdtGp, udt::SplitAlgorithm::kUdtEs}) {
    udt::TreeConfig tree_config;
    tree_config.algorithm = algorithm;
    auto stats = udt::MeasureTreeBuild(ds, tree_config);
    UDT_CHECK(stats.ok());
    long long calcs = stats->counters.TotalEntropyCalculations();
    if (algorithm == udt::SplitAlgorithm::kUdt) reference = calcs;
    std::printf("%-8s %9.3fs %14lld %7.1f%%\n",
                udt::SplitAlgorithmToString(algorithm), stats->build_seconds,
                calcs, reference > 0 ? 100.0 * calcs / reference : 0.0);
  }
  std::printf("\nreading: BP/GP match UDT on point data (every sample is an "
              "end point; nothing to kind-prune), while UDT-ES cuts the "
              "calculations by sampling end points and bounding the "
              "concatenated intervals.\n");
  return 0;
}
