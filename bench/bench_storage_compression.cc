// Accuracy vs compression for the storage tier: sweep the quantization
// bin budget against exact in-memory training and report what each bin
// count costs in held-out accuracy and buys in memory.
//
// Motivation (ROADMAP compact-representation item): every tuple stores
// O(attributes x s samples) of raw doubles, so dataset size is capped by
// RAM long before production scale. The storage tier (src/storage/)
// quantizes pdfs onto shared per-attribute grids with dictionary-pooled
// uint16 mass rows and streams them from a "udt-dataset v1" container in
// bounded-memory chunks. This harness measures the trade: for each bin
// count it converts the training set to a container file, materialises it
// back through the chunk-streamed DatasetReader (dictionary-shared pdf
// instances), trains a tree, and compares held-out accuracy against the
// exact baseline — alongside the exact decoded footprint, the resident
// quantized footprint (grids + dictionaries + id columns), the pooled
// materialised working set, the private-copy (unshared) cost the pool
// avoids, the container file size and the dictionary hit rate.
//
// Output: one table row and one JSON row (bench_common JsonRows,
// BENCH_storage_compression.json) per configuration: the exact baseline
// plus one row per bin count.
//
// Run: build/bench/bench_storage_compression [--full] [--scale=F] [--s=N]
//      [--json=PATH]

#include <cstdio>
#include <filesystem>
#include <string>
#include <utility>

#include "api/trainer.h"
#include "bench_common.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/timer.h"
#include "common/timer.h"
#include "datagen/synthetic.h"
#include "eval/metrics.h"
#include "storage/dataset_file.h"
#include "storage/pdf_storage.h"
#include "table/uncertainty_injector.h"

namespace udt {
namespace {

// An integer-domain synthetic corpus (PenDigits-style value vocabulary)
// with injected Gaussian error pdfs: the bounded vocabulary is what gives
// the dictionary pool repeated distributions to deduplicate, the same
// regime tests/storage_out_of_core_test.cc trains under.
std::pair<Dataset, Dataset> MakeCorpus(int tuples, int s) {
  datagen::SyntheticConfig config;
  config.name = "storage-bench";
  config.num_tuples = tuples;
  config.num_attributes = 4;
  config.num_classes = 3;
  config.integer_domain = true;
  config.integer_levels = 100;
  config.seed = 17;
  const PointDataset points = datagen::GenerateSynthetic(config);

  UncertaintyOptions inject;
  inject.width_fraction = 0.10;
  inject.samples_per_pdf = s;
  auto uncertain = InjectUncertainty(points, inject);
  UDT_CHECK(uncertain.ok());

  Rng rng(5);
  return uncertain->RandomSplit(0.25, &rng);
}

}  // namespace
}  // namespace udt

int main(int argc, char** argv) {
  udt::BenchOptions options = udt::ParseBenchOptions(argc, argv);
  udt::bench::PrintBanner(
      "Storage compression: quantized bin budget vs exact training",
      "storage-tier extension (not a paper figure); Section 8 'information "
      "explosion' is the footprint being compressed",
      options);
  udt::bench::JsonRows sink("storage_compression", options);

  const double scale = options.scale > 0.0 ? options.scale
                       : options.full      ? 1.0
                                           : 0.3;
  const int tuples = static_cast<int>(10000 * scale);
  const int s = udt::bench::SamplesFor(options, 48);

  auto [train, test] = udt::MakeCorpus(tuples, s);
  std::printf("train %d tuples, test %d tuples, s=%d per pdf\n\n",
              train.num_tuples(), test.num_tuples(), s);

  const udt::Trainer trainer;

  // Exact in-memory baseline: the accuracy every quantized row is
  // measured against, and the footprint every ratio divides.
  udt::WallTimer exact_timer;
  auto exact = trainer.TrainUdt(train);
  UDT_CHECK(exact.ok());
  const double exact_seconds = exact_timer.ElapsedSeconds();
  const double exact_accuracy = udt::EvaluateAccuracy(*exact, test);
  const udt::DatasetMemoryBreakdown exact_memory = train.MemoryBreakdown();

  std::printf("%-10s acc %.4f   resident %8.2f KiB   train %6.2fs\n", "exact",
              exact_accuracy, exact_memory.total_bytes / 1024.0,
              exact_seconds);
  sink.AddRow()
      .Str("dataset", "synthetic-int100")
      .Str("config", "exact")
      .Int("bins", 0)
      .Int("train_tuples", train.num_tuples())
      .Int("test_tuples", test.num_tuples())
      .Int("samples_per_pdf", s)
      .Num("accuracy", exact_accuracy)
      .Num("accuracy_delta", 0.0)
      .Int("source_bytes", static_cast<long long>(exact_memory.total_bytes))
      .Int("resident_bytes", static_cast<long long>(exact_memory.total_bytes))
      .Int("pooled_bytes", static_cast<long long>(exact_memory.total_bytes))
      .Int("unshared_bytes",
           static_cast<long long>(exact_memory.unshared_total_bytes))
      .Int("file_bytes", 0)
      .Int("dict_entries", 0)
      .Num("dict_hit_rate", 0.0)
      .Num("compression_ratio", 1.0)
      .Num("convert_seconds", 0.0)
      .Num("train_seconds", exact_seconds);

  const std::string path =
      (std::filesystem::temp_directory_path() / "bench_storage.udtds")
          .string();

  for (int bins : {8, 16, 32, 64, 128}) {
    udt::QuantizationOptions qopt;
    qopt.bins = bins;
    qopt.chunk_tuples = 512;

    udt::WallTimer convert_timer;
    auto stats = udt::ConvertDatasetToFile(train, path, qopt);
    UDT_CHECK(stats.ok());
    const double convert_seconds = convert_timer.ElapsedSeconds();

    auto reader = udt::DatasetReader::Open(path);
    UDT_CHECK(reader.ok());
    auto pooled = udt::MaterializeDataset(&*reader);
    UDT_CHECK(pooled.ok());
    const udt::DatasetMemoryBreakdown pooled_memory =
        pooled->MemoryBreakdown();

    udt::WallTimer train_timer;
    auto model = trainer.TrainUdt(*pooled);
    UDT_CHECK(model.ok());
    const double train_seconds = train_timer.ElapsedSeconds();
    const double accuracy = udt::EvaluateAccuracy(*model, test);

    const double ratio = static_cast<double>(stats->source_decoded_bytes) /
                         static_cast<double>(pooled_memory.total_bytes);
    std::printf("bins=%-5d acc %.4f (%+.4f)   pooled %8.2f KiB (%6.1fx)   "
                "file %8.2f KiB   dict %6lld rows (hit %.3f)   train %6.2fs\n",
                bins, accuracy, accuracy - exact_accuracy,
                pooled_memory.total_bytes / 1024.0, ratio,
                stats->file_bytes / 1024.0,
                static_cast<long long>(stats->dictionary_entries),
                stats->dictionary_hit_rate, train_seconds);

    sink.AddRow()
        .Str("dataset", "synthetic-int100")
        .Str("config", "bins=" + std::to_string(bins))
        .Int("bins", bins)
        .Int("train_tuples", train.num_tuples())
        .Int("test_tuples", test.num_tuples())
        .Int("samples_per_pdf", s)
        .Num("accuracy", accuracy)
        .Num("accuracy_delta", accuracy - exact_accuracy)
        .Int("source_bytes",
             static_cast<long long>(stats->source_decoded_bytes))
        .Int("resident_bytes", static_cast<long long>(stats->quantized_bytes))
        .Int("pooled_bytes", static_cast<long long>(pooled_memory.total_bytes))
        .Int("unshared_bytes",
             static_cast<long long>(pooled_memory.unshared_total_bytes))
        .Int("file_bytes", static_cast<long long>(stats->file_bytes))
        .Int("dict_entries", stats->dictionary_entries)
        .Num("dict_hit_rate", stats->dictionary_hit_rate)
        .Num("compression_ratio", ratio)
        .Num("convert_seconds", convert_seconds)
        .Num("train_seconds", train_seconds);
  }

  std::filesystem::remove(path);
  sink.Flush();
  return 0;
}
