// Fig 4: "Experiment with controlled noise on data set Segment".
//
// Section 4.4's protocol: perturb every point value with Gaussian noise of
// sigma = (u * |Aj|) / 4, then inject a Gaussian error pdf of width
// w * |Aj|, and measure UDT accuracy as a function of w for several u.
// The w = 0 column is AVG (point pdfs degenerate the tree to averaging).
//
// Expected shape (paper): each curve rises quickly from its w=0 (AVG)
// value onto a plateau, then falls off slowly for oversized w; larger u
// lowers the whole curve; the "model" prediction w^2 = eps^2 + u^2 lands
// on the plateau.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "datagen/uci_like.h"
#include "eval/cross_validation.h"
#include "eval/experiment.h"
#include "eval/significance.h"
#include "table/uncertainty_injector.h"

int main(int argc, char** argv) {
  udt::BenchOptions options = udt::ParseBenchOptions(argc, argv);
  udt::bench::PrintBanner(
      "bench_fig4_noise_model: controlled noise u vs error-model width w",
      "Fig 4 (Section 4.4), data set 'Segment'", options);

  int s = udt::bench::SamplesFor(options, 16);
  int folds = udt::bench::FoldsFor(options, 3);

  auto spec = udt::datagen::FindUciSpec("Segment");
  UDT_CHECK(spec.ok());
  double scale = udt::bench::ScaleFor(*spec, options, 260);
  // Tighter class geometry than the Table 3 analogue: clusters close
  // enough that oversized pdfs blur across class boundaries, which is what
  // produces Fig 4's decay past the plateau.
  udt::datagen::SyntheticConfig gen =
      udt::datagen::MakeUciLikeConfig(*spec, scale);
  gen.clusters_per_class = 4;
  gen.cluster_stddev = 0.045;
  udt::PointDataset base = udt::datagen::GenerateSynthetic(gen);

  // The generator's inherent measurement noise (DESIGN.md): this plays the
  // role of the unknown eps the paper estimates from the u=0 curve.
  double eps = gen.inherent_noise;

  const std::vector<double> kU = {0.0, 0.05, 0.10, 0.20};
  const std::vector<double> kW = {0.0,  0.02, 0.05, 0.10, 0.20,
                                  0.40, 0.80, 1.60};

  std::printf("\nSegment-like data: %d tuples, %d attributes, %d classes; "
              "s=%d, %d-fold CV; w=0 column is AVG\n\n",
              base.num_tuples(), base.num_attributes(), base.num_classes(),
              s, folds);
  std::printf("%6s |", "u \\ w");
  for (double w : kW) std::printf(" %5.0f%%", w * 100);
  std::printf(" | %s\n", "model w* (pred)");

  udt::TreeConfig config;
  config.algorithm = udt::SplitAlgorithm::kUdtEs;

  // The u = 0 sweep's confidence intervals feed the paper's estimator for
  // eps-hat (Section 4.4: plateau midpoint by CI overlap with the best
  // point).
  std::vector<udt::ConfidenceInterval> u0_intervals;

  for (double u : kU) {
    udt::Rng rng(10000 + static_cast<uint64_t>(u * 1000));
    udt::PointDataset perturbed = udt::PerturbPointData(base, u, &rng);
    std::printf("%5.0f%% |", u * 100);
    for (double w : kW) {
      udt::UncertaintyOptions inject;
      inject.width_fraction = w;
      inject.samples_per_pdf = w == 0.0 ? 1 : s;
      inject.error_model = udt::ErrorModel::kGaussian;
      auto ds = udt::InjectUncertainty(perturbed, inject);
      UDT_CHECK(ds.ok());
      udt::Rng cv_rng(42);
      auto result = udt::RunCrossValidation(
          *ds, config, udt::ModelKind::kUdt, folds,
          &cv_rng);
      UDT_CHECK(result.ok());
      std::printf(" %5.1f%%", result->mean_accuracy * 100);
      if (u == 0.0) {
        auto ci = udt::MeanConfidenceInterval(result->fold_accuracies, 0.95);
        UDT_CHECK(ci.ok());
        u0_intervals.push_back(*ci);
      }
    }
    // Equation (2): w*^2 = eps^2 + u^2, with the generator's true eps.
    double w_star = std::sqrt(eps * eps + u * u);
    std::printf(" | w*=%4.1f%%\n", w_star * 100);
  }

  // Paper procedure: estimate eps-hat from the u=0 curve and compare the
  // "model" predictions against the generator's ground truth.
  auto eps_hat = udt::EstimatePlateauMidpoint(kW, u0_intervals);
  UDT_CHECK(eps_hat.ok());
  std::printf("\n'model' curve (Section 4.4): estimated eps-hat = %.1f%% "
              "(generator ground truth %.1f%%)\n",
              *eps_hat * 100, eps * 100);
  std::printf("predicted plateau w* per u from eps-hat:");
  for (double u : kU) {
    std::printf("  u=%.0f%% -> w*=%.1f%%", u * 100,
                std::sqrt(*eps_hat * *eps_hat + u * u) * 100);
  }
  std::printf("\n");

  std::printf("\nreading: within each row accuracy should rise from the w=0 "
              "(AVG) value onto a plateau around the predicted w*, then "
              "decay for oversized w; larger u lowers the whole row.\n");
  return 0;
}
