// Ablation: the C4.5-style pre/post-pruning knobs the paper inherits
// (footnote 3: "to alleviate the problem of overfitting, we apply the
// techniques of prepruning and postpruning"). On noisy data, growing the
// tree fully overfits; pessimistic post-pruning and minimum-weight
// pre-pruning shrink the tree and recover test accuracy.

#include <cstdio>
#include <vector>

#include "api/trainer.h"
#include "bench_common.h"
#include "datagen/synthetic.h"
#include "eval/metrics.h"
#include "table/uncertainty_injector.h"

namespace {

struct Variant {
  const char* label;
  double min_split_weight;
  bool post_prune;
  double confidence;
};

}  // namespace

int main(int argc, char** argv) {
  udt::BenchOptions options = udt::ParseBenchOptions(argc, argv);
  udt::bench::PrintBanner(
      "bench_ablation_pruning_config: pre/post-pruning knobs",
      "C4.5 pruning framework the paper builds on (footnote 3)", options);

  // Hard, noisy task: close clusters + strong label-independent noise.
  udt::datagen::SyntheticConfig gen;
  gen.name = "noisy";
  gen.num_tuples = options.full ? 2000 : 500;
  gen.num_attributes = 6;
  gen.num_classes = 3;
  gen.clusters_per_class = 2;
  gen.cluster_stddev = 0.20;
  gen.inherent_noise = 0.60;
  gen.seed = 99;
  udt::PointDataset points = udt::datagen::GenerateSynthetic(gen);

  udt::UncertaintyOptions inject;
  inject.width_fraction = 0.30;
  inject.samples_per_pdf = udt::bench::SamplesFor(options, 16);
  auto ds = udt::InjectUncertainty(points, inject);
  UDT_CHECK(ds.ok());
  udt::Rng rng(3);
  auto [train, test] = ds->RandomSplit(0.3, &rng);

  std::printf("\nnoisy data: %d train / %d test tuples, %d attributes, "
              "%d classes\n\n",
              train.num_tuples(), test.num_tuples(), ds->num_attributes(),
              ds->num_classes());

  // minw=0.25 for the "unpruned" variants: a weight floor four times below
  // one tuple still lets micro-fragments of straddling tuples split
  // (demonstrating the information explosion) without the run degenerating
  // into hundreds of thousands of fragment-only nodes.
  const std::vector<Variant> kVariants = {
      {"no pruning at all", 0.25, false, 0.25},
      {"pre-prune only (minw=4)", 4.0, false, 0.25},
      {"post-prune only (CF=.25)", 0.25, true, 0.25},
      {"both (default)", 4.0, true, 0.25},
      {"both, aggressive (CF=.05)", 4.0, true, 0.05},
      {"both, lax (CF=.50)", 4.0, true, 0.50},
  };

  std::printf("%-28s %8s %8s %10s %10s\n", "configuration", "nodes",
              "depth", "train acc", "test acc");
  for (const Variant& variant : kVariants) {
    udt::TreeConfig config;
    config.algorithm = udt::SplitAlgorithm::kUdtEs;
    config.min_split_weight = variant.min_split_weight;
    config.post_prune = variant.post_prune;
    config.pruning_confidence = variant.confidence;
    auto model = udt::Trainer(config).TrainUdt(train);
    UDT_CHECK(model.ok());
    std::printf("%-28s %8d %8d %9.2f%% %9.2f%%\n", variant.label,
                model->tree().num_nodes(), model->tree().depth(),
                udt::EvaluateAccuracy(*model, train) * 100,
                udt::EvaluateAccuracy(*model, test) * 100);
  }
  std::printf("\nreading: the unpruned tree is largest and overfits (train "
              ">> test); pruning shrinks the tree substantially while test "
              "accuracy holds or improves.\n");
  return 0;
}
