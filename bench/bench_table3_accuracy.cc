// Table 2 + Table 3: "Accuracy Improvement by Considering the Distribution".
//
// For every Table 2 data set, reports the AVG accuracy and the UDT accuracy
// under Gaussian error models with w in {1%, 5%, 10%, 20%} (plus the
// uniform model for the integer-domain data sets, which the paper found to
// favour uniform on PenDigits), and the best UDT column. "JapaneseVowel"
// uses pdfs from raw repeated measurements, as in the paper.
//
// Expected shape (paper): UDT >= AVG on most rows, with the best-w column
// clearly above AVG; for the raw-sample data set the gap is largest
// (81.89% -> 87.30% in the paper).

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/config.h"
#include "eval/cross_validation.h"
#include "eval/experiment.h"

namespace {

constexpr double kWidths[] = {0.01, 0.05, 0.10, 0.20};

}  // namespace

int main(int argc, char** argv) {
  udt::BenchOptions options = udt::ParseBenchOptions(argc, argv);
  udt::bench::PrintBanner(
      "bench_table3_accuracy: AVG vs UDT classification accuracy",
      "Table 2 (data-set inventory) and Table 3 (accuracy)", options);

  int s = udt::bench::SamplesFor(options, 20);
  int folds = udt::bench::FoldsFor(options, 3);

  // ---- Table 2 block ----
  std::printf("\nTable 2 - data sets (synthetic analogues, see DESIGN.md)\n");
  std::printf("%-14s %8s %8s %8s %10s\n", "data set", "tuples", "attrs",
              "classes", "domain");
  for (const udt::datagen::UciDatasetSpec& spec :
       udt::datagen::UciCatalogue()) {
    double scale = udt::bench::ScaleFor(spec, options, 150);
    std::printf("%-14s %8d %8d %8d %10s\n", spec.name.c_str(),
                static_cast<int>(spec.num_tuples * scale),
                spec.num_attributes, spec.num_classes,
                spec.from_raw_samples ? "raw"
                : spec.integer_domain ? "integer"
                                      : "real");
  }

  // ---- Table 3 block ----
  std::printf("\nTable 3 - accuracy (%d-fold CV, s=%d; * = best UDT)\n",
              folds, s);
  std::printf("%-14s %-9s %7s", "data set", "model", "AVG");
  for (double w : kWidths) std::printf("  w=%3.0f%%", w * 100);
  std::printf("  %8s\n", "best UDT");

  udt::TreeConfig config;
  config.algorithm = udt::SplitAlgorithm::kUdtEs;  // same tree as UDT

  for (const udt::datagen::UciDatasetSpec& spec :
       udt::datagen::UciCatalogue()) {
    double scale = udt::bench::ScaleFor(spec, options, 150);

    std::vector<udt::ErrorModel> models = {udt::ErrorModel::kGaussian};
    if (spec.integer_domain) models.push_back(udt::ErrorModel::kUniform);
    if (spec.from_raw_samples) {
      // Raw-sample pdfs: one UDT number, no (w, model) sweep.
      auto ds = udt::PrepareUncertainDataset(spec, scale, 0.0, s,
                                             udt::ErrorModel::kGaussian);
      UDT_CHECK(ds.ok());
      auto avg = udt::CvAccuracy(*ds, config, udt::ModelKind::kAveraging,
                                 folds, 100);
      auto best = udt::CvAccuracy(
          *ds, config, udt::ModelKind::kUdt, folds, 100);
      UDT_CHECK(avg.ok() && best.ok());
      std::printf("%-14s %-9s %6.2f%%", spec.name.c_str(), "raw",
                  *avg * 100);
      for (size_t i = 0; i < sizeof(kWidths) / sizeof(kWidths[0]); ++i) {
        std::printf("  %6s", "-");
      }
      std::printf("  %7.2f%%*\n", *best * 100);
      continue;
    }

    for (udt::ErrorModel model : models) {
      std::printf("%-14s %-9s", spec.name.c_str(),
                  udt::ErrorModelToString(model));
      // AVG is insensitive to (w, model): compute once per row from w=0.
      auto point_ds = udt::PrepareUncertainDataset(spec, scale, 0.0, 1, model);
      UDT_CHECK(point_ds.ok());
      auto avg = udt::CvAccuracy(*point_ds, config,
                                 udt::ModelKind::kAveraging, folds, 100);
      UDT_CHECK(avg.ok());
      std::printf(" %6.2f%%", *avg * 100);

      double best = 0.0;
      for (double w : kWidths) {
        auto ds = udt::PrepareUncertainDataset(spec, scale, w, s, model);
        UDT_CHECK(ds.ok());
        auto acc = udt::CvAccuracy(
            *ds, config, udt::ModelKind::kUdt, folds, 100);
        UDT_CHECK(acc.ok());
        best = std::max(best, *acc);
        std::printf(" %6.2f%%", *acc * 100);
      }
      std::printf("  %7.2f%%*\n", best * 100);
    }
  }
  std::printf("\nnote: the UDT tree is identical across UDT/UDT-BP/LP/GP/ES "
              "(safe pruning); UDT-ES is used for speed.\n");
  return 0;
}
