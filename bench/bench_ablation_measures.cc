// Ablation: dispersion measures (Section 7.4). The paper states that the
// pruning framework carries over to Gini (with its own lower bound) and,
// with a restriction (no homogeneous-interval pruning), to gain ratio.
// This harness repeats the Fig 6/7 protocol under all three measures on
// one data set and reports time, entropy calculations, and CV accuracy.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "eval/cross_validation.h"
#include "eval/experiment.h"

int main(int argc, char** argv) {
  udt::BenchOptions options = udt::ParseBenchOptions(argc, argv);
  udt::bench::PrintBanner(
      "bench_ablation_measures: entropy vs Gini vs gain ratio",
      "Section 7.4 (generalising the theorems)", options);

  int s = udt::bench::SamplesFor(options, 20);
  int folds = udt::bench::FoldsFor(options, 3);
  auto spec = udt::datagen::FindUciSpec("Glass");
  UDT_CHECK(spec.ok());
  double scale = udt::bench::ScaleFor(*spec, options, 150);
  auto ds = udt::PrepareUncertainDataset(*spec, scale, 0.10, s,
                                         udt::ErrorModel::kGaussian);
  UDT_CHECK(ds.ok());
  std::printf("\nGlass-like data: %d tuples, s=%d, w=10%%, %d-fold CV\n\n",
              ds->num_tuples(), s, folds);

  const std::vector<udt::SplitAlgorithm> kAlgorithms = {
      udt::SplitAlgorithm::kUdt,   udt::SplitAlgorithm::kUdtBp,
      udt::SplitAlgorithm::kUdtLp, udt::SplitAlgorithm::kUdtGp,
      udt::SplitAlgorithm::kUdtEs};

  for (udt::DispersionMeasure measure :
       {udt::DispersionMeasure::kEntropy, udt::DispersionMeasure::kGini,
        udt::DispersionMeasure::kGainRatio}) {
    std::printf("measure: %s\n", udt::DispersionMeasureToString(measure));
    std::printf("  %-8s %10s %14s %8s %10s\n", "algo", "time",
                "entropy calcs", "(% UDT)", "accuracy");
    long long reference = 0;
    for (udt::SplitAlgorithm algorithm : kAlgorithms) {
      udt::TreeConfig config;
      config.algorithm = algorithm;
      config.measure = measure;
      auto stats = udt::MeasureTreeBuild(*ds, config);
      UDT_CHECK(stats.ok());
      long long calcs = stats->counters.TotalEntropyCalculations();
      if (algorithm == udt::SplitAlgorithm::kUdt) reference = calcs;
      auto acc = udt::CvAccuracy(
          *ds, config, udt::ModelKind::kUdt, folds, 5);
      UDT_CHECK(acc.ok());
      std::printf("  %-8s %9.3fs %14lld %7.1f%% %9.2f%%\n",
                  udt::SplitAlgorithmToString(algorithm),
                  stats->build_seconds, calcs,
                  reference > 0 ? 100.0 * calcs / reference : 0.0,
                  *acc * 100);
    }
    std::printf("\n");
  }
  std::printf("reading: accuracy is constant down each column (safe "
              "pruning); gain ratio prunes less than entropy/Gini because "
              "Theorem 2 does not apply to it (homogeneous intervals must "
              "be bounded instead).\n");
  return 0;
}
