// Serving throughput: pointer-tree traversal vs the compiled flat layout.
//
// Motivation (ROADMAP north star): at test time the distribution-based
// classifier's cost is dominated by tree traversal over pdf-valued inputs,
// so the serving path — not split search — is the hot loop of a deployed
// system. This harness times steady-state batch classification of the same
// trained trees through
//   * pointer:  Model::ClassifyDistribution over the TreeNode graph
//               (per-call scratch, one shard per worker thread), and
//   * compiled: PredictSession::PredictBatchInto over CompiledModel's
//               struct-of-arrays layout (reusable scratch, zero
//               allocations per tuple once warm),
// at 1/2/4 worker threads, for both model kinds (UDT fractional
// propagation and AVG means traversal), on a numeric-only and a mixed
// numeric+categorical data set. Before timing, every configuration
// re-checks the serving guarantee: compiled distributions byte-identical
// to the pointer path.
//
// Output: one table row and one JSON row (bench_common JsonRows,
// BENCH_serving_throughput.json) per configuration, with tuples/sec.
//
// Run: build/bench/bench_serving_throughput [--full] [--scale=F] [--s=N]
//      [--threads=N] [--json=PATH]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "api/compiled_model.h"
#include "api/predict_session.h"
#include "api/trainer.h"
#include "bench_common.h"
#include "common/random.h"
#include "common/timer.h"
#include "pdf/pdf_builder.h"

namespace udt {
namespace {

Dataset NumericDataset(int tuples, int attributes, int classes, int s,
                       uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> names;
  for (int c = 0; c < classes; ++c) names.push_back("c" + std::to_string(c));
  Dataset ds(Schema::Numerical(attributes, names));
  for (int i = 0; i < tuples; ++i) {
    UncertainTuple t;
    t.label = i % classes;
    for (int j = 0; j < attributes; ++j) {
      double center = rng.Gaussian(static_cast<double>(t.label) * 1.2, 1.0);
      auto pdf = MakeGaussianErrorPdf(center, rng.Uniform(0.5, 1.5), s);
      UDT_CHECK(pdf.ok());
      t.values.push_back(UncertainValue::Numerical(std::move(*pdf)));
    }
    UDT_CHECK(ds.AddTuple(std::move(t)).ok());
  }
  return ds;
}

Dataset MixedDataset(int tuples, int s, uint64_t seed) {
  Rng rng(seed);
  auto schema = Schema::Create(
      {
          {"x", AttributeKind::kNumerical, 0},
          {"channel", AttributeKind::kCategorical, 4},
          {"y", AttributeKind::kNumerical, 0},
          {"z", AttributeKind::kNumerical, 0},
      },
      {"a", "b", "c"});
  UDT_CHECK(schema.ok());
  Dataset ds(std::move(*schema));
  for (int i = 0; i < tuples; ++i) {
    UncertainTuple t;
    t.label = i % 3;
    for (const char* which : {"x", "y", "z"}) {
      (void)which;
      auto pdf = MakeGaussianErrorPdf(
          rng.Gaussian(t.label * 1.0, 0.8), rng.Uniform(0.6, 1.2), s);
      UDT_CHECK(pdf.ok());
      t.values.push_back(UncertainValue::Numerical(std::move(*pdf)));
      if (t.values.size() == 1) {
        std::vector<double> probs(4, 0.15);
        probs[static_cast<size_t>((i + t.label) % 4)] = 0.55;
        auto cat = CategoricalPdf::Create(std::move(probs));
        UDT_CHECK(cat.ok());
        t.values.push_back(UncertainValue::Categorical(std::move(*cat)));
      }
    }
    UDT_CHECK(ds.AddTuple(std::move(t)).ok());
  }
  return ds;
}

// The pointer-path reference runner: per-tuple ClassifyDistribution over
// contiguous shards, i.e. exactly what Model::PredictBatch did before the
// serving API was compiled.
void PointerBatch(const Model& model, const Dataset& ds, int num_threads,
                  std::vector<std::vector<double>>* out) {
  const size_t n = static_cast<size_t>(ds.num_tuples());
  out->resize(n);
  auto classify_range = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      (*out)[i] = model.ClassifyDistribution(ds.tuple(static_cast<int>(i)));
    }
  };
  if (num_threads <= 1) {
    classify_range(0, n);
    return;
  }
  std::vector<std::thread> workers;
  const size_t per_shard = n / static_cast<size_t>(num_threads);
  const size_t remainder = n % static_cast<size_t>(num_threads);
  size_t begin = 0;
  for (int t = 0; t < num_threads; ++t) {
    const size_t len = per_shard + (static_cast<size_t>(t) < remainder ? 1 : 0);
    workers.emplace_back(classify_range, begin, begin + len);
    begin += len;
  }
  for (std::thread& worker : workers) worker.join();
}

struct Measurement {
  double seconds = 0.0;
  int repeats = 0;
};

// Runs `pass` once to warm up, then often enough to fill ~0.25s.
template <typename Pass>
Measurement TimePasses(Pass pass) {
  pass();  // warm-up: fault in scratch, settle allocator state
  WallTimer probe;
  pass();
  // Floor the probe at 1ns: on a coarse clock both reads can land in the
  // same tick, and casting 0.25/0.0 to int would be UB, not just wrong.
  double one = std::max(probe.ElapsedSeconds(), 1e-9);
  int repeats = std::clamp(static_cast<int>(std::ceil(0.25 / one)), 1, 200);
  WallTimer timer;
  for (int r = 0; r < repeats; ++r) pass();
  return {timer.ElapsedSeconds(), repeats};
}

void RunDataset(const char* dataset_name, const Dataset& train,
                const Dataset& serve, bench::JsonRows* sink) {
  TreeConfig config;
  config.algorithm = SplitAlgorithm::kUdtEs;
  Trainer trainer(config);

  for (ModelKind kind : {ModelKind::kUdt, ModelKind::kAveraging}) {
    auto model = trainer.Train(TrainRequest::For(train, kind));
    UDT_CHECK(model.ok());
    const char* kind_name = kind == ModelKind::kUdt ? "udt" : "avg";

    WallTimer compile_timer;
    CompiledModel compiled = model->Compile();
    double compile_seconds = compile_timer.ElapsedSeconds();

    // The serving guarantee, re-checked in the harness itself: compiled
    // distributions byte-identical to the pointer path.
    std::vector<std::vector<double>> reference;
    PointerBatch(*model, serve, 1, &reference);
    {
      PredictSession session(compiled);
      FlatBatchResult flat;
      UDT_CHECK(session
                    .PredictBatchInto(
                        std::span<const UncertainTuple>(
                            serve.tuples().data(), serve.tuples().size()),
                        {.num_threads = 1}, &flat)
                    .ok());
      const size_t k = static_cast<size_t>(compiled.num_classes());
      for (size_t i = 0; i < reference.size(); ++i) {
        UDT_CHECK(std::memcmp(flat.distribution(i).data(),
                              reference[i].data(), k * sizeof(double)) == 0);
      }
    }

    for (int threads : {1, 2, 4}) {
      std::vector<std::vector<double>> pointer_out;
      Measurement pointer = TimePasses(
          [&] { PointerBatch(*model, serve, threads, &pointer_out); });

      PredictSession session(compiled);
      FlatBatchResult flat;
      PredictOptions options;
      options.num_threads = threads;
      Measurement flat_time = TimePasses([&] {
        UDT_CHECK(session
                      .PredictBatchInto(
                          std::span<const UncertainTuple>(
                              serve.tuples().data(), serve.tuples().size()),
                          options, &flat)
                      .ok());
      });

      const double n = static_cast<double>(serve.num_tuples());
      const double pointer_tps =
          n * pointer.repeats / std::max(pointer.seconds, 1e-12);
      const double compiled_tps =
          n * flat_time.repeats / std::max(flat_time.seconds, 1e-12);
      std::printf("%-8s %-4s threads=%d  pointer %10.0f tuples/s   "
                  "compiled %10.0f tuples/s   speedup %.2fx\n",
                  dataset_name, kind_name, threads, pointer_tps, compiled_tps,
                  compiled_tps / std::max(pointer_tps, 1e-12));

      for (const char* path : {"pointer", "compiled"}) {
        const bool is_compiled = std::strcmp(path, "compiled") == 0;
        sink->AddRow()
            .Str("dataset", dataset_name)
            .Str("model_kind", kind_name)
            .Str("path", path)
            .Int("threads", threads)
            .Int("tuples", serve.num_tuples())
            .Int("nodes", compiled.num_nodes())
            .Int("repeats", is_compiled ? flat_time.repeats : pointer.repeats)
            .Num("seconds", is_compiled ? flat_time.seconds : pointer.seconds)
            .Num("tuples_per_sec", is_compiled ? compiled_tps : pointer_tps)
            .Num("compile_seconds", compile_seconds);
      }
    }
  }
}

}  // namespace
}  // namespace udt

int main(int argc, char** argv) {
  udt::BenchOptions options = udt::ParseBenchOptions(argc, argv);
  udt::bench::PrintBanner(
      "Serving throughput: pointer tree vs compiled flat layout",
      "serving-path extension (not a paper figure); Section 3.2 traversal",
      options);
  udt::bench::JsonRows sink("serving_throughput", options);

  const double scale = options.scale > 0.0 ? options.scale
                       : options.full      ? 1.0
                                           : 0.4;
  const int s = udt::bench::SamplesFor(options, 20);
  const int train_n = static_cast<int>(600 * scale);
  const int serve_n = static_cast<int>(1000 * scale);

  std::printf("train %d tuples, serve %d tuples, s=%d per pdf\n\n", train_n,
              serve_n, s);

  {
    udt::Dataset train = udt::NumericDataset(train_n, 4, 3, s, 42);
    udt::Dataset serve = udt::NumericDataset(serve_n, 4, 3, s, 1042);
    udt::RunDataset("numeric", train, serve, &sink);
  }
  {
    udt::Dataset train = udt::MixedDataset(train_n, s / 2 + 1, 7);
    udt::Dataset serve = udt::MixedDataset(serve_n, s / 2 + 1, 1007);
    udt::RunDataset("mixed", train, serve, &sink);
  }

  sink.Flush();
  return 0;
}
