// End-to-end accuracy tests reproducing the *direction* of the paper's
// findings at test scale: when the injected pdf models the measurement
// error, the Distribution-based classifier beats Averaging (Table 3 /
// Fig 4); and on raw-repeated-measurement data (JapaneseVowel-like) UDT
// beats AVG without any synthetic error model.

#include <gtest/gtest.h>

#include "datagen/japanese_vowel.h"
#include "datagen/synthetic.h"
#include "eval/cross_validation.h"
#include "eval/experiment.h"
#include "table/uncertainty_injector.h"

namespace udt {
namespace {

// Noisy two-cluster data where the recorded values carry substantial
// measurement error; matched-width pdfs let UDT smooth it out.
PointDataset NoisyPointData(int tuples, double inherent_noise,
                            uint64_t seed) {
  datagen::SyntheticConfig config;
  config.name = "e2e";
  config.num_tuples = tuples;
  config.num_attributes = 4;
  config.num_classes = 2;
  config.clusters_per_class = 2;
  config.cluster_stddev = 0.05;
  config.inherent_noise = inherent_noise;
  config.seed = seed;
  return datagen::GenerateSynthetic(config);
}

TEST(EndToEndAccuracyTest, UdtBeatsAvgWithMatchedErrorModel) {
  // Average the AVG-vs-UDT gap over several generator seeds; any single
  // noisy draw can go either way, the signal is the mean improvement.
  double total_avg = 0.0, total_udt = 0.0;
  const int kRepeats = 3;
  for (uint64_t seed = 1; seed <= kRepeats; ++seed) {
    PointDataset points = NoisyPointData(240, 0.25, seed);
    UncertaintyOptions options;
    options.width_fraction = 0.25;  // matches the inherent noise
    options.samples_per_pdf = 48;
    options.error_model = ErrorModel::kGaussian;
    auto ds = InjectUncertainty(points, options);
    ASSERT_TRUE(ds.ok());

    TreeConfig config;
    config.algorithm = SplitAlgorithm::kUdtEs;
    auto avg = CvAccuracy(*ds, config, ClassifierKind::kAveraging, 4, seed);
    auto udt =
        CvAccuracy(*ds, config, ClassifierKind::kDistributionBased, 4, seed);
    ASSERT_TRUE(avg.ok() && udt.ok());
    total_avg += *avg;
    total_udt += *udt;
  }
  EXPECT_GT(total_udt / kRepeats, total_avg / kRepeats)
      << "UDT should beat AVG when the pdf models the error";
}

TEST(EndToEndAccuracyTest, ZeroWidthDegeneratesToAvg) {
  // With w = 0 every pdf is a point mass, so the distribution-based tree
  // *is* the averaging tree and accuracies must coincide exactly.
  PointDataset points = NoisyPointData(160, 0.2, 11);
  UncertaintyOptions options;
  options.width_fraction = 0.0;
  options.samples_per_pdf = 1;
  auto ds = InjectUncertainty(points, options);
  ASSERT_TRUE(ds.ok());
  TreeConfig config;
  config.algorithm = SplitAlgorithm::kUdt;
  auto avg = CvAccuracy(*ds, config, ClassifierKind::kAveraging, 4, 7);
  auto udt = CvAccuracy(*ds, config, ClassifierKind::kDistributionBased, 4, 7);
  ASSERT_TRUE(avg.ok() && udt.ok());
  EXPECT_DOUBLE_EQ(*avg, *udt);
}

TEST(EndToEndAccuracyTest, GrossOverWideningHurts) {
  // Fig 4's right tail: a pdf far wider than the true error ultimately
  // degrades accuracy relative to the well-matched model.
  PointDataset points = NoisyPointData(240, 0.1, 13);

  auto accuracy_for_width = [&](double w) {
    UncertaintyOptions options;
    options.width_fraction = w;
    options.samples_per_pdf = 32;
    auto ds = InjectUncertainty(points, options);
    EXPECT_TRUE(ds.ok());
    TreeConfig config;
    config.algorithm = SplitAlgorithm::kUdtEs;
    auto acc =
        CvAccuracy(*ds, config, ClassifierKind::kDistributionBased, 4, 3);
    EXPECT_TRUE(acc.ok());
    return *acc;
  };
  double matched = accuracy_for_width(0.1);
  double extreme = accuracy_for_width(3.0);
  EXPECT_GE(matched, extreme - 0.02);
}

TEST(EndToEndAccuracyTest, JapaneseVowelUdtBeatsAvg) {
  datagen::JapaneseVowelConfig config;
  config.num_tuples = 270;
  Dataset ds = datagen::GenerateJapaneseVowelLike(config);
  TreeConfig tree_config;
  tree_config.algorithm = SplitAlgorithm::kUdtEs;
  auto avg = CvAccuracy(ds, tree_config, ClassifierKind::kAveraging, 3, 31);
  auto udt =
      CvAccuracy(ds, tree_config, ClassifierKind::kDistributionBased, 3, 31);
  ASSERT_TRUE(avg.ok() && udt.ok());
  // The paper reports 81.89% -> 87.30%; at our reduced scale we assert the
  // direction with a small tolerance for fold noise.
  EXPECT_GT(*udt, *avg - 0.01);
}

TEST(EndToEndAccuracyTest, AllUdtAlgorithmsSameAccuracy) {
  // Safe pruning end-to-end: every UDT variant must produce the same
  // cross-validated accuracy (identical trees).
  PointDataset points = NoisyPointData(120, 0.2, 17);
  UncertaintyOptions options;
  options.width_fraction = 0.15;
  options.samples_per_pdf = 24;
  auto ds = InjectUncertainty(points, options);
  ASSERT_TRUE(ds.ok());

  double reference = -1.0;
  for (SplitAlgorithm algorithm :
       {SplitAlgorithm::kUdt, SplitAlgorithm::kUdtBp, SplitAlgorithm::kUdtLp,
        SplitAlgorithm::kUdtGp, SplitAlgorithm::kUdtEs}) {
    TreeConfig config;
    config.algorithm = algorithm;
    auto acc =
        CvAccuracy(*ds, config, ClassifierKind::kDistributionBased, 3, 23);
    ASSERT_TRUE(acc.ok());
    if (reference < 0.0) {
      reference = *acc;
    } else {
      EXPECT_NEAR(*acc, reference, 1e-9)
          << SplitAlgorithmToString(algorithm);
    }
  }
}

TEST(EndToEndAccuracyTest, GiniMeasureAlsoLearns) {
  PointDataset points = NoisyPointData(160, 0.15, 29);
  UncertaintyOptions options;
  options.width_fraction = 0.15;
  options.samples_per_pdf = 24;
  auto ds = InjectUncertainty(points, options);
  ASSERT_TRUE(ds.ok());
  TreeConfig config;
  config.algorithm = SplitAlgorithm::kUdtEs;
  config.measure = DispersionMeasure::kGini;
  auto acc =
      CvAccuracy(*ds, config, ClassifierKind::kDistributionBased, 4, 41);
  ASSERT_TRUE(acc.ok());
  EXPECT_GT(*acc, 0.7);
}

TEST(EndToEndAccuracyTest, GainRatioMeasureAlsoLearns) {
  PointDataset points = NoisyPointData(160, 0.15, 37);
  UncertaintyOptions options;
  options.width_fraction = 0.15;
  options.samples_per_pdf = 24;
  auto ds = InjectUncertainty(points, options);
  ASSERT_TRUE(ds.ok());
  TreeConfig config;
  config.algorithm = SplitAlgorithm::kUdtGp;
  config.measure = DispersionMeasure::kGainRatio;
  auto acc =
      CvAccuracy(*ds, config, ClassifierKind::kDistributionBased, 4, 43);
  ASSERT_TRUE(acc.ok());
  EXPECT_GT(*acc, 0.7);
}

}  // namespace
}  // namespace udt
