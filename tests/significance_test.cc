// Tests for the Section 4.4 statistics: Student-t quantiles, mean
// confidence intervals and plateau-midpoint estimation.

#include <cmath>

#include <gtest/gtest.h>

#include "eval/significance.h"

namespace udt {
namespace {

TEST(StudentTTest, KnownQuantiles) {
  // Standard t-table values, two-sided 95% (p = 0.975).
  EXPECT_NEAR(StudentTQuantile(0.975, 1), 12.706, 0.01);
  EXPECT_NEAR(StudentTQuantile(0.975, 2), 4.303, 0.005);
  EXPECT_NEAR(StudentTQuantile(0.975, 5), 2.571, 0.02);
  EXPECT_NEAR(StudentTQuantile(0.975, 10), 2.228, 0.01);
  EXPECT_NEAR(StudentTQuantile(0.975, 30), 2.042, 0.005);
}

TEST(StudentTTest, ConvergesToNormal) {
  EXPECT_NEAR(StudentTQuantile(0.975, 1000), 1.962, 0.01);
}

TEST(StudentTTest, SymmetricAroundMedian) {
  for (int dof : {1, 2, 4, 9}) {
    EXPECT_NEAR(StudentTQuantile(0.5, dof), 0.0, 1e-9);
    EXPECT_NEAR(StudentTQuantile(0.9, dof), -StudentTQuantile(0.1, dof),
                1e-9);
  }
}

TEST(ConfidenceIntervalTest, ContainsMean) {
  auto ci = MeanConfidenceInterval({0.8, 0.85, 0.9, 0.82, 0.88});
  ASSERT_TRUE(ci.ok());
  EXPECT_NEAR(ci->mean, 0.85, 1e-9);
  EXPECT_LT(ci->lower, ci->mean);
  EXPECT_GT(ci->upper, ci->mean);
}

TEST(ConfidenceIntervalTest, CollapsesForConstantData) {
  auto ci = MeanConfidenceInterval({0.7, 0.7, 0.7});
  ASSERT_TRUE(ci.ok());
  EXPECT_DOUBLE_EQ(ci->lower, 0.7);
  EXPECT_DOUBLE_EQ(ci->upper, 0.7);
}

TEST(ConfidenceIntervalTest, WiderAtHigherConfidence) {
  std::vector<double> values = {0.6, 0.7, 0.8, 0.75};
  auto narrow = MeanConfidenceInterval(values, 0.80);
  auto wide = MeanConfidenceInterval(values, 0.99);
  ASSERT_TRUE(narrow.ok() && wide.ok());
  EXPECT_LT(narrow->upper - narrow->lower, wide->upper - wide->lower);
}

TEST(ConfidenceIntervalTest, RejectsBadInput) {
  EXPECT_FALSE(MeanConfidenceInterval({0.5}).ok());
  EXPECT_FALSE(MeanConfidenceInterval({0.5, 0.6}, 0.0).ok());
  EXPECT_FALSE(MeanConfidenceInterval({0.5, 0.6}, 1.0).ok());
}

TEST(ConfidenceIntervalTest, OverlapDetection) {
  ConfidenceInterval a{0.5, 0.4, 0.6};
  ConfidenceInterval b{0.55, 0.5, 0.7};
  ConfidenceInterval c{0.9, 0.8, 1.0};
  EXPECT_TRUE(a.Overlaps(b));
  EXPECT_TRUE(b.Overlaps(a));
  EXPECT_FALSE(a.Overlaps(c));
}

TEST(PlateauTest, MidpointOfOverlappingRange) {
  // Accuracy rises to a plateau spanning x = 2..4, then falls; the best
  // point is x=3 and its CI overlaps x=2 and x=4 only.
  std::vector<double> xs = {1, 2, 3, 4, 5};
  std::vector<ConfidenceInterval> cis = {
      {0.60, 0.58, 0.62},
      {0.88, 0.85, 0.91},
      {0.90, 0.87, 0.93},
      {0.89, 0.86, 0.92},
      {0.70, 0.68, 0.72},
  };
  auto mid = EstimatePlateauMidpoint(xs, cis);
  ASSERT_TRUE(mid.ok());
  EXPECT_DOUBLE_EQ(*mid, 3.0);
}

TEST(PlateauTest, SinglePeak) {
  std::vector<double> xs = {1, 2, 3};
  std::vector<ConfidenceInterval> cis = {
      {0.5, 0.49, 0.51},
      {0.9, 0.89, 0.91},
      {0.5, 0.49, 0.51},
  };
  auto mid = EstimatePlateauMidpoint(xs, cis);
  ASSERT_TRUE(mid.ok());
  EXPECT_DOUBLE_EQ(*mid, 2.0);
}

TEST(PlateauTest, AsymmetricPlateau) {
  // Plateau from x=2 to x=5 -> midpoint 3.5 even though the max is at x=2.
  std::vector<double> xs = {1, 2, 3, 4, 5};
  std::vector<ConfidenceInterval> cis = {
      {0.50, 0.48, 0.52},
      {0.91, 0.86, 0.96},
      {0.90, 0.85, 0.95},
      {0.89, 0.84, 0.94},
      {0.88, 0.83, 0.93},
  };
  auto mid = EstimatePlateauMidpoint(xs, cis);
  ASSERT_TRUE(mid.ok());
  EXPECT_DOUBLE_EQ(*mid, 3.5);
}

TEST(PlateauTest, RejectsBadInput) {
  std::vector<ConfidenceInterval> one = {{0.5, 0.4, 0.6}};
  EXPECT_FALSE(EstimatePlateauMidpoint({}, {}).ok());
  EXPECT_FALSE(EstimatePlateauMidpoint({1.0, 2.0}, one).ok());
  std::vector<ConfidenceInterval> two = {{0.5, 0.4, 0.6}, {0.6, 0.5, 0.7}};
  EXPECT_FALSE(EstimatePlateauMidpoint({2.0, 1.0}, two).ok());  // descending
}

}  // namespace
}  // namespace udt
