// Tests for the work-stealing TaskPool underneath the parallel
// construction engine: completion semantics, nested fork/join from inside
// tasks, external (non-worker) submissions, the zero-worker degenerate
// pool where the waiting thread does all the work, and the ParallelFor
// primitive the serving sessions and attribute scans share (exact
// coverage, slot discipline, grain clamping, parallelism limits, nesting
// inside pool tasks).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/task_pool.h"

namespace udt {
namespace {

TEST(TaskPoolTest, RunsEverySubmittedTask) {
  TaskPool pool(3);
  std::atomic<int> count{0};
  TaskGroup group;
  for (int i = 0; i < 200; ++i) {
    pool.Submit(&group, [&count] { ++count; });
  }
  pool.Wait(&group);
  EXPECT_EQ(count.load(), 200);
}

TEST(TaskPoolTest, ZeroWorkersDrainOnWait) {
  // With no worker threads every task runs on the thread inside Wait.
  TaskPool pool(0);
  std::atomic<int> count{0};
  TaskGroup group;
  for (int i = 0; i < 50; ++i) {
    pool.Submit(&group, [&count] { ++count; });
  }
  pool.Wait(&group);
  EXPECT_EQ(count.load(), 50);
}

TEST(TaskPoolTest, TasksMaySpawnAndWaitForSubtasks) {
  // The builder's shape: node tasks fork attribute subtasks and join them
  // before finishing. Two nesting levels, all on a small pool.
  TaskPool pool(2);
  std::atomic<int> leaves{0};
  TaskGroup outer;
  for (int i = 0; i < 8; ++i) {
    pool.Submit(&outer, [&pool, &leaves] {
      TaskGroup inner;
      for (int j = 0; j < 8; ++j) {
        pool.Submit(&inner, [&pool, &leaves] {
          TaskGroup innermost;
          for (int k = 0; k < 4; ++k) {
            pool.Submit(&innermost, [&leaves] { ++leaves; });
          }
          pool.Wait(&innermost);
        });
      }
      pool.Wait(&inner);
    });
  }
  pool.Wait(&outer);
  EXPECT_EQ(leaves.load(), 8 * 8 * 4);
}

TEST(TaskPoolTest, WaitOnEmptyGroupReturnsImmediately) {
  TaskPool pool(2);
  TaskGroup group;
  pool.Wait(&group);  // nothing submitted
  SUCCEED();
}

TEST(TaskPoolTest, GroupsCompleteIndependently) {
  TaskPool pool(2);
  std::atomic<int> a{0};
  std::atomic<int> b{0};
  TaskGroup group_a;
  TaskGroup group_b;
  for (int i = 0; i < 32; ++i) {
    pool.Submit(&group_a, [&a] { ++a; });
    pool.Submit(&group_b, [&b] { ++b; });
  }
  pool.Wait(&group_a);
  EXPECT_EQ(a.load(), 32);
  pool.Wait(&group_b);
  EXPECT_EQ(b.load(), 32);
}

TEST(TaskPoolTest, EffectiveConcurrencyConvention) {
  EXPECT_EQ(TaskPool::EffectiveConcurrency(1), 1);
  EXPECT_EQ(TaskPool::EffectiveConcurrency(7), 7);
  EXPECT_GE(TaskPool::EffectiveConcurrency(0), 1);  // hardware threads
}

TEST(TaskPoolTest, ReusableAcrossGroups) {
  TaskPool pool(2);
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> count{0};
    TaskGroup group;
    for (int i = 0; i < 20; ++i) {
      pool.Submit(&group, [&count] { ++count; });
    }
    pool.Wait(&group);
    ASSERT_EQ(count.load(), 20) << "round " << round;
  }
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  TaskPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(hits.size(), /*grain=*/1,
                   [&hits](int slot, size_t begin, size_t end) {
                     EXPECT_GE(slot, 0);
                     EXPECT_LT(slot, 4);  // num_slots() == workers + 1
                     for (size_t i = begin; i < end; ++i) ++hits[i];
                   });
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, EmptyRangeNeverInvokes) {
  TaskPool pool(2);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, 1, [&calls](int, size_t, size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, ZeroWorkerPoolRunsInlineUnderSlotZero) {
  TaskPool pool(0);
  std::vector<std::pair<size_t, size_t>> ranges;
  pool.ParallelFor(100, 8, [&ranges](int slot, size_t begin, size_t end) {
    EXPECT_EQ(slot, 0);
    ranges.emplace_back(begin, end);
  });
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0], (std::pair<size_t, size_t>{0, 100}));
}

TEST(ParallelForTest, GrainClampsFanOut) {
  // 100 indices at grain 64 make exactly two chunks, no matter how many
  // workers the pool has — tiny loops must not wake the whole pool.
  TaskPool pool(7);
  Mutex mu;
  std::vector<std::pair<size_t, size_t>> chunks;
  pool.ParallelFor(100, 64, [&](int /*slot*/, size_t begin, size_t end) {
    MutexLock lock(&mu);
    chunks.emplace_back(begin, end);
  });
  ASSERT_EQ(chunks.size(), 2u);
  // A single-chunk loop runs inline without touching the queues at all.
  chunks.clear();
  pool.ParallelFor(60, 64, [&](int slot, size_t begin, size_t end) {
    EXPECT_EQ(slot, 0);
    MutexLock lock(&mu);
    chunks.emplace_back(begin, end);
  });
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0], (std::pair<size_t, size_t>{0, 60}));
}

TEST(ParallelForTest, ParallelismLimitBoundsWidthNotChunks) {
  // The session path: a wide pool serving a narrow request. parallelism=2
  // caps the runners at two (one helper + the caller) even though the
  // pool seats eight — but the range is over-decomposed into several
  // dynamically-claimed chunks per runner, so heterogeneous chunk costs
  // still load-balance between the two.
  TaskPool pool(7);
  Mutex mu;
  std::set<int> slots;
  std::vector<std::pair<size_t, size_t>> chunks;
  const int width =
      pool.ParallelFor(1000, 1, /*parallelism=*/2,
                       [&](int slot, size_t begin, size_t end) {
                         MutexLock lock(&mu);
                         slots.insert(slot);
                         chunks.emplace_back(begin, end);
                       });
  EXPECT_EQ(width, 2);
  EXPECT_GT(chunks.size(), 2u);  // over-decomposed for load balance
  EXPECT_LE(slots.size(), 2u);   // but never wider than requested
  size_t covered = 0;
  for (const auto& [begin, end] : chunks) covered += end - begin;
  EXPECT_EQ(covered, 1000u);
}

TEST(ParallelForTest, SlotsAreDisjointScratchIndices) {
  // Two chunks must never run concurrently under one slot: per-slot
  // counters incremented non-atomically stay exact iff the contract
  // holds (TSan runs of this suite double-check the absence of races).
  TaskPool pool(3);
  constexpr size_t kIndices = 50000;
  std::vector<size_t> per_slot(pool.num_slots(), 0);
  pool.ParallelFor(kIndices, 1, [&per_slot](int slot, size_t begin,
                                            size_t end) {
    per_slot[static_cast<size_t>(slot)] += end - begin;
  });
  size_t total = 0;
  for (size_t c : per_slot) total += c;
  EXPECT_EQ(total, kIndices);
}

TEST(ParallelForTest, ReusableBackToBack) {
  // The serving steady state: one pool, many loops, workers reused every
  // time. Nothing to assert beyond exact coverage each round — the point
  // is that round N gets the same pool round 0 did.
  TaskPool pool(3);
  for (int round = 0; round < 200; ++round) {
    std::atomic<size_t> covered{0};
    pool.ParallelFor(64, 8, [&covered](int, size_t begin, size_t end) {
      covered += end - begin;
    });
    ASSERT_EQ(covered.load(), 64u) << "round " << round;
  }
}

TEST(ParallelForTest, NestsInsidePoolTasks) {
  // The training shape: node-level tasks on the pool each fan an
  // attribute loop out over the same pool (ForEachAttribute). Loops from
  // different tasks interleave on the shared workers; every loop must
  // still cover its own range exactly.
  TaskPool pool(3);
  constexpr int kTasks = 16;
  constexpr size_t kRange = 100;
  std::vector<std::vector<std::atomic<int>>> hits(kTasks);
  for (auto& h : hits) {
    h = std::vector<std::atomic<int>>(kRange);
  }
  TaskGroup group;
  for (int t = 0; t < kTasks; ++t) {
    pool.Submit(&group, [&pool, &hits, t] {
      pool.ParallelFor(kRange, 4, [&hits, t](int, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) ++hits[t][i];
      });
    });
  }
  pool.Wait(&group);
  for (int t = 0; t < kTasks; ++t) {
    for (size_t i = 0; i < kRange; ++i) {
      ASSERT_EQ(hits[t][i].load(), 1) << "task " << t << " index " << i;
    }
  }
}

// ------------------------------------------------- annotated mutex layer
//
// The udt::Mutex / MutexLock / CondVar wrappers (common/mutex.h) carry the
// thread-safety annotations every locking site in the repo builds on;
// these cases exercise the wrapper paths the pool itself never takes
// (manual TryLock, deadline waits), so the layer is tested behaviour, not
// annotation-only glue.

TEST(MutexWrapperTest, TryLockFailsWhileHeldAndSucceedsAfterRelease) {
  Mutex mu;
  mu.Lock();
  // Contended try-lock must fail from another thread (same-thread re-try
  // on a std::mutex would be UB, so probe from a helper).
  bool acquired_while_held = true;
  std::thread prober([&] {
    acquired_while_held = mu.TryLock();
    if (acquired_while_held) mu.Unlock();
  });
  prober.join();
  EXPECT_FALSE(acquired_while_held);
  mu.Unlock();

  // Uncontended try-lock acquires, and the capability really is held:
  // a second prober must now fail until Unlock.
  ASSERT_TRUE(mu.TryLock());
  bool acquired_during_trylock = true;
  std::thread second([&] {
    acquired_during_trylock = mu.TryLock();
    if (acquired_during_trylock) mu.Unlock();
  });
  second.join();
  EXPECT_FALSE(acquired_during_trylock);
  mu.Unlock();
}

TEST(MutexWrapperTest, CondVarWaitForTimesOutWithoutANotify) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(&mu);
  // No notifier exists: the deadline path must fire and report timeout.
  EXPECT_FALSE(cv.WaitFor(lock, std::chrono::microseconds(1000)));
  EXPECT_FALSE(cv.WaitUntil(lock, std::chrono::steady_clock::now() +
                                      std::chrono::microseconds(1000)));
}

TEST(MutexWrapperTest, CondVarWakesAPredicateLoopAcrossThreads) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread notifier([&] {
    MutexLock lock(&mu);
    ready = true;
    cv.NotifyOne();
  });
  {
    MutexLock lock(&mu);
    // The repo's canonical wait idiom: explicit predicate loop with the
    // deadline form, so a lost wakeup cannot hang the suite.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (!ready) {
      ASSERT_TRUE(cv.WaitUntil(lock, deadline)) << "notify never arrived";
    }
    EXPECT_TRUE(ready);
  }
  notifier.join();
}

}  // namespace
}  // namespace udt
