// Tests for the work-stealing TaskPool underneath the parallel
// construction engine: completion semantics, nested fork/join from inside
// tasks, external (non-worker) submissions, and the zero-worker degenerate
// pool where the waiting thread does all the work.

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "common/task_pool.h"

namespace udt {
namespace {

TEST(TaskPoolTest, RunsEverySubmittedTask) {
  TaskPool pool(3);
  std::atomic<int> count{0};
  TaskGroup group;
  for (int i = 0; i < 200; ++i) {
    pool.Submit(&group, [&count] { ++count; });
  }
  pool.Wait(&group);
  EXPECT_EQ(count.load(), 200);
}

TEST(TaskPoolTest, ZeroWorkersDrainOnWait) {
  // With no worker threads every task runs on the thread inside Wait.
  TaskPool pool(0);
  std::atomic<int> count{0};
  TaskGroup group;
  for (int i = 0; i < 50; ++i) {
    pool.Submit(&group, [&count] { ++count; });
  }
  pool.Wait(&group);
  EXPECT_EQ(count.load(), 50);
}

TEST(TaskPoolTest, TasksMaySpawnAndWaitForSubtasks) {
  // The builder's shape: node tasks fork attribute subtasks and join them
  // before finishing. Two nesting levels, all on a small pool.
  TaskPool pool(2);
  std::atomic<int> leaves{0};
  TaskGroup outer;
  for (int i = 0; i < 8; ++i) {
    pool.Submit(&outer, [&pool, &leaves] {
      TaskGroup inner;
      for (int j = 0; j < 8; ++j) {
        pool.Submit(&inner, [&pool, &leaves] {
          TaskGroup innermost;
          for (int k = 0; k < 4; ++k) {
            pool.Submit(&innermost, [&leaves] { ++leaves; });
          }
          pool.Wait(&innermost);
        });
      }
      pool.Wait(&inner);
    });
  }
  pool.Wait(&outer);
  EXPECT_EQ(leaves.load(), 8 * 8 * 4);
}

TEST(TaskPoolTest, WaitOnEmptyGroupReturnsImmediately) {
  TaskPool pool(2);
  TaskGroup group;
  pool.Wait(&group);  // nothing submitted
  SUCCEED();
}

TEST(TaskPoolTest, GroupsCompleteIndependently) {
  TaskPool pool(2);
  std::atomic<int> a{0};
  std::atomic<int> b{0};
  TaskGroup group_a;
  TaskGroup group_b;
  for (int i = 0; i < 32; ++i) {
    pool.Submit(&group_a, [&a] { ++a; });
    pool.Submit(&group_b, [&b] { ++b; });
  }
  pool.Wait(&group_a);
  EXPECT_EQ(a.load(), 32);
  pool.Wait(&group_b);
  EXPECT_EQ(b.load(), 32);
}

TEST(TaskPoolTest, EffectiveConcurrencyConvention) {
  EXPECT_EQ(TaskPool::EffectiveConcurrency(1), 1);
  EXPECT_EQ(TaskPool::EffectiveConcurrency(7), 7);
  EXPECT_GE(TaskPool::EffectiveConcurrency(0), 1);  // hardware threads
}

TEST(TaskPoolTest, ReusableAcrossGroups) {
  TaskPool pool(2);
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> count{0};
    TaskGroup group;
    for (int i = 0; i < 20; ++i) {
      pool.Submit(&group, [&count] { ++count; });
    }
    pool.Wait(&group);
    ASSERT_EQ(count.load(), 20) << "round " << round;
  }
}

}  // namespace
}  // namespace udt
