// Tests for TreeBuilder: stopping rules, pre-pruning, fractional recursion,
// determinism and serialisation round trips.

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/builder.h"
#include "pdf/pdf_builder.h"
#include "tree/classify.h"
#include "tree/tree_io.h"

namespace udt {
namespace {

Dataset SeparableDataset(int n, double gap, uint64_t seed) {
  Rng rng(seed);
  Dataset ds(Schema::Numerical(1, {"A", "B"}));
  for (int i = 0; i < n; ++i) {
    int label = i % 2;
    double center = label == 0 ? rng.Uniform(0.0, 1.0)
                               : rng.Uniform(1.0 + gap, 2.0 + gap);
    auto pdf = MakeGaussianErrorPdf(center, 0.4, 12);
    UncertainTuple t{{UncertainValue::Numerical(std::move(*pdf))}, label};
    EXPECT_TRUE(ds.AddTuple(t).ok());
  }
  return ds;
}

TreeConfig BaseConfig(SplitAlgorithm algorithm) {
  TreeConfig config;
  config.algorithm = algorithm;
  config.min_split_weight = 2.0;
  config.post_prune = false;
  return config;
}

TEST(BuilderTest, SeparableDataYieldsPerfectTree) {
  Dataset ds = SeparableDataset(40, 1.0, 3);
  auto tree = TreeBuilder(BaseConfig(SplitAlgorithm::kUdt)).Build(ds, nullptr);
  ASSERT_TRUE(tree.ok());
  int correct = 0;
  for (int i = 0; i < ds.num_tuples(); ++i) {
    if (PredictLabel(*tree, ds.tuple(i)) == ds.tuple(i).label) ++correct;
  }
  EXPECT_EQ(correct, ds.num_tuples());
}

TEST(BuilderTest, PureNodeBecomesLeaf) {
  Dataset ds(Schema::Numerical(1, {"A", "B"}));
  for (int i = 0; i < 10; ++i) {
    UncertainTuple t{
        {UncertainValue::Numerical(SampledPdf::PointMass(double(i)))}, 0};
    ASSERT_TRUE(ds.AddTuple(t).ok());
  }
  auto tree = TreeBuilder(BaseConfig(SplitAlgorithm::kUdt)).Build(ds, nullptr);
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(tree->root().is_leaf());
  EXPECT_NEAR(tree->root().distribution[0], 1.0, 1e-12);
}

TEST(BuilderTest, MaxDepthRespected) {
  Dataset ds = SeparableDataset(60, 0.0, 5);
  TreeConfig config = BaseConfig(SplitAlgorithm::kUdtEs);
  config.max_depth = 2;
  auto tree = TreeBuilder(config).Build(ds, nullptr);
  ASSERT_TRUE(tree.ok());
  EXPECT_LE(tree->depth(), 3);  // root at depth 1 + two split levels
}

TEST(BuilderTest, MinSplitWeightStopsGrowth) {
  Dataset ds = SeparableDataset(20, 0.2, 7);
  TreeConfig config = BaseConfig(SplitAlgorithm::kUdt);
  config.min_split_weight = 1000.0;  // larger than the data set
  auto tree = TreeBuilder(config).Build(ds, nullptr);
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(tree->root().is_leaf());
}

TEST(BuilderTest, MinGainStopsUselessSplits) {
  // Identical class mixtures at every value: no split has positive gain.
  Dataset ds(Schema::Numerical(1, {"A", "B"}));
  for (int i = 0; i < 12; ++i) {
    UncertainTuple t{
        {UncertainValue::Numerical(SampledPdf::PointMass(double(i / 2)))},
        i % 2};
    ASSERT_TRUE(ds.AddTuple(t).ok());
  }
  TreeConfig config = BaseConfig(SplitAlgorithm::kUdt);
  config.min_gain = 1e-6;
  auto tree = TreeBuilder(config).Build(ds, nullptr);
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(tree->root().is_leaf());
  EXPECT_NEAR(tree->root().distribution[0], 0.5, 1e-12);
}

TEST(BuilderTest, EmptyDatasetRejected) {
  Dataset ds(Schema::Numerical(1, {"A", "B"}));
  auto tree = TreeBuilder(BaseConfig(SplitAlgorithm::kUdt)).Build(ds, nullptr);
  EXPECT_FALSE(tree.ok());
}

TEST(BuilderTest, InvalidConfigRejected) {
  Dataset ds = SeparableDataset(10, 1.0, 1);
  TreeConfig config = BaseConfig(SplitAlgorithm::kUdt);
  config.max_depth = 0;
  EXPECT_FALSE(TreeBuilder(config).Build(ds, nullptr).ok());
  config = BaseConfig(SplitAlgorithm::kUdt);
  config.split_options.es_endpoint_sample_rate = 0.0;
  EXPECT_FALSE(TreeBuilder(config).Build(ds, nullptr).ok());
  config = BaseConfig(SplitAlgorithm::kUdt);
  config.pruning_confidence = 1.5;
  EXPECT_FALSE(TreeBuilder(config).Build(ds, nullptr).ok());
}

TEST(BuilderTest, StatsPopulated) {
  Dataset ds = SeparableDataset(30, 0.5, 11);
  BuildStats stats;
  auto tree =
      TreeBuilder(BaseConfig(SplitAlgorithm::kUdtGp)).Build(ds, &stats);
  ASSERT_TRUE(tree.ok());
  EXPECT_GT(stats.nodes, 0);
  EXPECT_GT(stats.leaves, 0);
  EXPECT_GT(stats.counters.dispersion_evaluations, 0);
  EXPECT_GE(stats.build_seconds, 0.0);
  EXPECT_EQ(stats.nodes, tree->num_nodes());  // no post-pruning here
}

TEST(BuilderTest, DeterministicAcrossRuns) {
  Dataset ds = SeparableDataset(30, 0.3, 13);
  TreeConfig config = BaseConfig(SplitAlgorithm::kUdtEs);
  auto tree_a = TreeBuilder(config).Build(ds, nullptr);
  auto tree_b = TreeBuilder(config).Build(ds, nullptr);
  ASSERT_TRUE(tree_a.ok() && tree_b.ok());
  EXPECT_EQ(SerializeTree(*tree_a), SerializeTree(*tree_b));
}

TEST(BuilderTest, FractionalTuplesPropagateWeights) {
  // Every pdf straddles the only sensible split, so the children must see
  // fractional weights; leaf counts must still sum to the data-set size.
  Dataset ds(Schema::Numerical(1, {"A", "B"}));
  for (int i = 0; i < 10; ++i) {
    auto pdf = MakeUniformErrorPdf(i % 2 == 0 ? -0.5 : 0.5, 2.0, 16);
    UncertainTuple t{{UncertainValue::Numerical(std::move(*pdf))}, i % 2};
    ASSERT_TRUE(ds.AddTuple(t).ok());
  }
  auto tree = TreeBuilder(BaseConfig(SplitAlgorithm::kUdt)).Build(ds, nullptr);
  ASSERT_TRUE(tree.ok());
  ASSERT_FALSE(tree->root().is_leaf());
  double left_total = 0.0, right_total = 0.0;
  for (double c : tree->root().left->class_counts) left_total += c;
  for (double c : tree->root().right->class_counts) right_total += c;
  EXPECT_NEAR(left_total + right_total, 10.0, 1e-6);
  // Fractional: neither side holds an integral count.
  EXPECT_GT(left_total, 0.0);
  EXPECT_GT(right_total, 0.0);
}

TEST(BuilderTest, PostPruningShrinksNoisyTree) {
  // Labels independent of the attribute: any grown structure is noise and
  // pessimistic pruning should collapse (most of) it.
  Rng rng(17);
  Dataset ds(Schema::Numerical(1, {"A", "B"}));
  for (int i = 0; i < 60; ++i) {
    UncertainTuple t{
        {UncertainValue::Numerical(SampledPdf::PointMass(rng.Uniform01()))},
        rng.Bernoulli(0.5) ? 1 : 0};
    ASSERT_TRUE(ds.AddTuple(t).ok());
  }
  TreeConfig no_prune = BaseConfig(SplitAlgorithm::kUdt);
  no_prune.min_gain = 0.0;
  TreeConfig with_prune = no_prune;
  with_prune.post_prune = true;

  BuildStats stats;
  auto grown = TreeBuilder(no_prune).Build(ds, nullptr);
  auto pruned = TreeBuilder(with_prune).Build(ds, &stats);
  ASSERT_TRUE(grown.ok() && pruned.ok());
  EXPECT_LT(pruned->num_nodes(), grown->num_nodes());
  EXPECT_GT(stats.subtrees_collapsed, 0);
}

TEST(BuilderTest, RoundTripThroughTreeIo) {
  Dataset ds = SeparableDataset(24, 0.4, 19);
  auto tree =
      TreeBuilder(BaseConfig(SplitAlgorithm::kUdtBp)).Build(ds, nullptr);
  ASSERT_TRUE(tree.ok());
  std::string text = SerializeTree(*tree);
  auto parsed = ParseTree(text, ds.schema());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(SerializeTree(*parsed), text);
  // Parsed tree classifies identically.
  for (int i = 0; i < ds.num_tuples(); ++i) {
    EXPECT_EQ(PredictLabel(*parsed, ds.tuple(i)),
              PredictLabel(*tree, ds.tuple(i)));
  }
}

TEST(BuilderTest, MultiAttributePicksInformativeOne) {
  // A1 is noise, A2 separates classes: the root must split A2.
  Rng rng(23);
  Dataset ds(Schema::Numerical(2, {"A", "B"}));
  for (int i = 0; i < 30; ++i) {
    int label = i % 2;
    UncertainTuple t;
    t.label = label;
    t.values.push_back(
        UncertainValue::Numerical(SampledPdf::PointMass(rng.Uniform01())));
    t.values.push_back(UncertainValue::Numerical(
        SampledPdf::PointMass(label == 0 ? rng.Uniform(0.0, 1.0)
                                         : rng.Uniform(2.0, 3.0))));
    ASSERT_TRUE(ds.AddTuple(t).ok());
  }
  auto tree =
      TreeBuilder(BaseConfig(SplitAlgorithm::kUdtLp)).Build(ds, nullptr);
  ASSERT_TRUE(tree.ok());
  ASSERT_FALSE(tree->root().is_leaf());
  EXPECT_EQ(tree->root().attribute, 1);
}

}  // namespace
}  // namespace udt
