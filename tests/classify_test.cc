// Tests for uncertain-tuple classification (Section 3.2, Fig 1): fractional
// weight propagation, constraint tightening down the tree and distribution
// normalisation.

#include <gtest/gtest.h>

#include "pdf/pdf_builder.h"
#include "tree/classify.h"
#include "tree/tree.h"

namespace udt {
namespace {

std::unique_ptr<TreeNode> Leaf(std::vector<double> distribution) {
  auto node = std::make_unique<TreeNode>();
  node->class_counts = distribution;
  node->distribution = std::move(distribution);
  return node;
}

std::unique_ptr<TreeNode> Split(int attribute, double z,
                                std::unique_ptr<TreeNode> left,
                                std::unique_ptr<TreeNode> right) {
  auto node = std::make_unique<TreeNode>();
  node->attribute = attribute;
  node->split_point = z;
  node->left = std::move(left);
  node->right = std::move(right);
  node->class_counts = {0.0, 0.0};
  node->distribution = {0.5, 0.5};
  return node;
}

UncertainTuple Tuple1D(SampledPdf pdf) {
  UncertainTuple t;
  t.values.push_back(UncertainValue::Numerical(std::move(pdf)));
  return t;
}

TEST(ClassifyTest, WeightSplitsAtRoot) {
  // Mirrors Fig 1: a pdf with 30% of its mass at or below the split point
  // sends weight 0.3 left and 0.7 right.
  DecisionTree tree(Schema::Numerical(1, {"A", "B"}),
                    Split(0, -1.0, Leaf({0.8, 0.2}), Leaf({0.2, 0.8})));
  auto pdf = SampledPdf::Create({-2.0, 1.0}, {0.3, 0.7});
  ASSERT_TRUE(pdf.ok());
  std::vector<double> p = ClassifyDistribution(tree, Tuple1D(*pdf));
  EXPECT_NEAR(p[0], 0.3 * 0.8 + 0.7 * 0.2, 1e-12);  // 0.38
  EXPECT_NEAR(p[1], 0.3 * 0.2 + 0.7 * 0.8, 1e-12);  // 0.62
  EXPECT_EQ(PredictLabel(tree, Tuple1D(*pdf)), 1);
}

TEST(ClassifyTest, DistributionSumsToOne) {
  DecisionTree tree(Schema::Numerical(1, {"A", "B"}),
                    Split(0, 0.0, Leaf({0.9, 0.1}), Leaf({0.1, 0.9})));
  auto pdf = MakeGaussianErrorPdf(0.0, 4.0, 51);
  ASSERT_TRUE(pdf.ok());
  std::vector<double> p = ClassifyDistribution(tree, Tuple1D(*pdf));
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-9);
  EXPECT_GT(p[0], 0.0);
  EXPECT_GT(p[1], 0.0);
}

TEST(ClassifyTest, PointTupleFollowsOnePath) {
  DecisionTree tree(Schema::Numerical(1, {"A", "B"}),
                    Split(0, 2.0, Leaf({1.0, 0.0}), Leaf({0.0, 1.0})));
  EXPECT_EQ(PredictLabel(tree, Tuple1D(SampledPdf::PointMass(2.0))), 0);
  EXPECT_EQ(PredictLabel(tree, Tuple1D(SampledPdf::PointMass(2.0001))), 1);
}

TEST(ClassifyTest, ConstraintsTightenDownTheTree) {
  // Two-level tree splitting the same attribute at 0 then at -1.
  // A tuple uniform on {-2,-1,1} with equal masses: P(x<=0)=2/3; inside the
  // left branch the conditional P(x<=-1) = 1 (both remaining points <= -1)
  // ... actually {-2,-1} -> both <= -1, so all left-weight reaches the
  // deepest left leaf.
  auto deep = Split(0, -1.0, Leaf({1.0, 0.0}), Leaf({0.5, 0.5}));
  DecisionTree tree(Schema::Numerical(1, {"A", "B"}),
                    Split(0, 0.0, std::move(deep), Leaf({0.0, 1.0})));
  auto pdf = SampledPdf::Create({-2.0, -1.0, 1.0}, {1.0, 1.0, 1.0});
  ASSERT_TRUE(pdf.ok());
  std::vector<double> p = ClassifyDistribution(tree, Tuple1D(*pdf));
  // 2/3 weight -> left subtree, all of it <= -1 -> leaf {1,0};
  // 1/3 weight -> right leaf {0,1}.
  EXPECT_NEAR(p[0], 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(p[1], 1.0 / 3.0, 1e-9);
}

TEST(ClassifyTest, MultiAttributeTraversal) {
  // Root on A1, children test A2.
  auto left = Split(1, 0.0, Leaf({1.0, 0.0}), Leaf({0.0, 1.0}));
  auto right = Split(1, 0.0, Leaf({0.0, 1.0}), Leaf({1.0, 0.0}));
  DecisionTree tree(Schema::Numerical(2, {"A", "B"}),
                    Split(0, 0.0, std::move(left), std::move(right)));
  UncertainTuple t;
  t.values.push_back(UncertainValue::Numerical(SampledPdf::PointMass(-1.0)));
  auto pdf2 = SampledPdf::Create({-1.0, 1.0}, {0.25, 0.75});
  ASSERT_TRUE(pdf2.ok());
  t.values.push_back(UncertainValue::Numerical(*pdf2));
  std::vector<double> p = ClassifyDistribution(tree, t);
  // A1 = -1 -> left subtree. There A2 <= 0 with prob 0.25 -> {1,0}.
  EXPECT_NEAR(p[0], 0.25, 1e-12);
  EXPECT_NEAR(p[1], 0.75, 1e-12);
}

TEST(ClassifyTest, SingleLeafTree) {
  DecisionTree tree(Schema::Numerical(1, {"A", "B"}), Leaf({0.7, 0.3}));
  std::vector<double> p =
      ClassifyDistribution(tree, Tuple1D(SampledPdf::PointMass(42.0)));
  EXPECT_NEAR(p[0], 0.7, 1e-12);
  EXPECT_EQ(PredictLabel(tree, Tuple1D(SampledPdf::PointMass(42.0))), 0);
}

TEST(ClassifyTest, PointHelpers) {
  DecisionTree tree(Schema::Numerical(2, {"A", "B"}),
                    Split(1, 5.0, Leaf({1.0, 0.0}), Leaf({0.0, 1.0})));
  EXPECT_EQ(PredictPointLabel(tree, {0.0, 4.0}), 0);
  EXPECT_EQ(PredictPointLabel(tree, {0.0, 6.0}), 1);
  std::vector<double> p = ClassifyPointDistribution(tree, {0.0, 4.0});
  EXPECT_NEAR(p[0], 1.0, 1e-12);
}

TEST(ClassifyTest, CategoricalNodePropagation) {
  auto schema = Schema::Create({{"color", AttributeKind::kCategorical, 3}},
                               {"A", "B"});
  ASSERT_TRUE(schema.ok());
  auto node = std::make_unique<TreeNode>();
  node->attribute = 0;
  node->is_categorical = true;
  node->class_counts = {1.0, 1.0};
  node->distribution = {0.5, 0.5};
  node->children.push_back(Leaf({1.0, 0.0}));
  node->children.push_back(Leaf({0.0, 1.0}));
  node->children.push_back(Leaf({0.5, 0.5}));
  DecisionTree tree(*schema, std::move(node));

  auto dist = CategoricalPdf::Create({0.5, 0.3, 0.2});
  ASSERT_TRUE(dist.ok());
  UncertainTuple t;
  t.values.push_back(UncertainValue::Categorical(*dist));
  std::vector<double> p = ClassifyDistribution(tree, t);
  EXPECT_NEAR(p[0], 0.5 * 1.0 + 0.3 * 0.0 + 0.2 * 0.5, 1e-12);
  EXPECT_NEAR(p[1], 0.5 * 0.0 + 0.3 * 1.0 + 0.2 * 0.5, 1e-12);
}

TEST(ClassifyTest, ArgMaxTieBreaksLow) {
  EXPECT_EQ(ArgMax({0.5, 0.5}), 0);
  EXPECT_EQ(ArgMax({0.1, 0.2, 0.7}), 2);
  EXPECT_EQ(ArgMax({1.0}), 0);
}

TEST(TreeStructureTest, CountsAndDepth) {
  auto deep = Split(0, -1.0, Leaf({1.0, 0.0}), Leaf({0.5, 0.5}));
  DecisionTree tree(Schema::Numerical(1, {"A", "B"}),
                    Split(0, 0.0, std::move(deep), Leaf({0.0, 1.0})));
  EXPECT_EQ(tree.num_nodes(), 5);
  EXPECT_EQ(tree.num_leaves(), 3);
  EXPECT_EQ(tree.depth(), 3);
}

TEST(TreeStructureTest, MakeLeafDiscardsSubtree) {
  auto root = Split(0, 0.0, Leaf({1.0, 0.0}), Leaf({0.0, 1.0}));
  root->MakeLeaf();
  EXPECT_TRUE(root->is_leaf());
  EXPECT_EQ(root->left, nullptr);
  EXPECT_EQ(root->right, nullptr);
}

}  // namespace
}  // namespace udt
