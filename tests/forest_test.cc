// Functional coverage for the ensemble subsystem: config validation, the
// two voting rules, bootstrap-bag structure, out-of-bag estimation, the
// degenerate no-diversity forest, and both persistence containers
// (udt-forest-model v1 pointer forests, udt-forest v1 compiled forests)
// including hostile-input rejection. The cross-thread bitwise guarantees
// live in tests/forest_determinism_test.cc.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "api/compiled_forest.h"
#include "api/forest.h"
#include "api/forest_session.h"
#include "common/random.h"
#include "core/node_build.h"
#include "pdf/pdf_builder.h"
#include "tree/classify.h"
#include "tree/tree_io.h"

namespace udt {
namespace {

Dataset SyntheticDataset(int tuples, int attributes, int classes, int s,
                         uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> names;
  for (int c = 0; c < classes; ++c) names.push_back("c" + std::to_string(c));
  Dataset ds(Schema::Numerical(attributes, names));
  for (int i = 0; i < tuples; ++i) {
    UncertainTuple t;
    t.label = i % classes;
    for (int j = 0; j < attributes; ++j) {
      double center = rng.Gaussian(static_cast<double>(t.label) * 1.2, 1.0);
      auto pdf = MakeGaussianErrorPdf(center, rng.Uniform(0.5, 1.5), s);
      UDT_CHECK(pdf.ok());
      t.values.push_back(UncertainValue::Numerical(std::move(*pdf)));
    }
    UDT_CHECK(ds.AddTuple(std::move(t)).ok());
  }
  return ds;
}

ForestConfig SmallConfig(int trees = 5) {
  ForestConfig config;
  config.num_trees = trees;
  config.seed = 7;
  config.tree.algorithm = SplitAlgorithm::kUdtEs;
  return config;
}

TEST(ForestConfigTest, ValidatesRanges) {
  ForestConfig config = SmallConfig();
  EXPECT_TRUE(config.Validate().ok());

  config.num_trees = 0;
  EXPECT_FALSE(config.Validate().ok());

  config = SmallConfig();
  config.subspace_attributes = -2;
  EXPECT_FALSE(config.Validate().ok());
  config.subspace_attributes = ForestConfig::kSubspaceSqrt;
  EXPECT_TRUE(config.Validate().ok());

  config = SmallConfig();
  config.num_threads = -1;
  EXPECT_FALSE(config.Validate().ok());

  // The embedded tree config is validated too.
  config = SmallConfig();
  config.tree.max_depth = 0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ForestConfigTest, RejectsEmptyDataset) {
  Dataset empty(Schema::Numerical(2, {"a", "b"}));
  ForestTrainer trainer(SmallConfig());
  EXPECT_FALSE(trainer.TrainUdt(empty).ok());
}

TEST(BootstrapBagTest, IsDeterministicAndConservesDraws) {
  std::vector<double> bag = ForestBootstrapBag(/*seed=*/3, /*tree_index=*/2,
                                               /*num_tuples=*/64);
  ASSERT_EQ(bag.size(), 64u);
  double total = 0.0;
  for (double w : bag) {
    EXPECT_GE(w, 0.0);
    EXPECT_EQ(w, std::floor(w)) << "bag weights are multiplicities";
    total += w;
  }
  EXPECT_DOUBLE_EQ(total, 64.0) << "N draws with replacement";

  EXPECT_EQ(bag, ForestBootstrapBag(3, 2, 64)) << "pure function of inputs";
  EXPECT_NE(bag, ForestBootstrapBag(3, 3, 64)) << "trees get distinct bags";
  EXPECT_NE(bag, ForestBootstrapBag(4, 2, 64)) << "seeds get distinct bags";
}

TEST(SubspaceSampleTest, MaskHasExactlyKAttributes) {
  for (uint64_t token : {uint64_t{1}, uint64_t{999}, kRootNodeToken}) {
    std::vector<uint8_t> mask = SampleAttributeSubspace(/*seed=*/5, token,
                                                        /*num_attributes=*/10,
                                                        /*k=*/3);
    ASSERT_EQ(mask.size(), 10u);
    int set = 0;
    for (uint8_t m : mask) set += m != 0 ? 1 : 0;
    EXPECT_EQ(set, 3);
    EXPECT_EQ(mask, SampleAttributeSubspace(5, token, 10, 3));
  }
  // Different tokens disagree somewhere (overwhelmingly likely over many
  // tokens; assert over a family to keep flakiness at zero).
  bool any_difference = false;
  std::vector<uint8_t> first = SampleAttributeSubspace(5, 1, 10, 3);
  for (uint64_t token = 2; token < 40; ++token) {
    if (SampleAttributeSubspace(5, token, 10, 3) != first) {
      any_difference = true;
      break;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(ForestVoteTest, AverageIsMeanOfTreeDistributions) {
  Dataset ds = SyntheticDataset(90, 3, 3, 8, 21);
  ForestConfig config = SmallConfig(4);
  config.vote = ForestVote::kAverage;
  ForestTrainer trainer(config);
  auto forest = trainer.TrainUdt(ds);
  ASSERT_TRUE(forest.ok());

  const UncertainTuple& tuple = ds.tuple(0);
  std::vector<double> expected(3, 0.0);
  for (int t = 0; t < forest->num_trees(); ++t) {
    std::vector<double> dist = forest->tree(t).ClassifyDistribution(tuple);
    for (int c = 0; c < 3; ++c) expected[static_cast<size_t>(c)] += dist[c];
  }
  for (double& v : expected) v /= forest->num_trees();
  EXPECT_EQ(forest->ClassifyDistribution(tuple), expected);
}

TEST(ForestVoteTest, MajorityIsNormalisedVoteHistogram) {
  Dataset ds = SyntheticDataset(90, 3, 3, 8, 22);
  ForestConfig config = SmallConfig(5);
  config.vote = ForestVote::kMajority;
  ForestTrainer trainer(config);
  auto forest = trainer.TrainUdt(ds);
  ASSERT_TRUE(forest.ok());

  const UncertainTuple& tuple = ds.tuple(1);
  std::vector<double> expected(3, 0.0);
  for (int t = 0; t < forest->num_trees(); ++t) {
    expected[static_cast<size_t>(forest->tree(t).Predict(tuple))] += 1.0;
  }
  for (double& v : expected) v /= forest->num_trees();
  std::vector<double> actual = forest->ClassifyDistribution(tuple);
  EXPECT_EQ(actual, expected);
  double mass = 0.0;
  for (double v : actual) mass += v;
  EXPECT_NEAR(mass, 1.0, 1e-12);
}

TEST(ForestTrainerTest, NoDiversityForestEqualsSingleTree) {
  // bootstrap off + subspaces off => every tree IS the single-trainer
  // tree, so forest predictions agree with it (up to the vote's divide,
  // which rounds: (d+d+d)/3 is within an ulp of d, not bitwise d).
  Dataset ds = SyntheticDataset(80, 3, 3, 8, 23);
  ForestConfig config = SmallConfig(3);
  config.bootstrap = false;
  config.subspace_attributes = 0;
  ForestTrainer trainer(config);
  auto forest = trainer.TrainUdt(ds);
  ASSERT_TRUE(forest.ok());

  Trainer single_trainer(config.tree);
  auto single = single_trainer.TrainUdt(ds);
  ASSERT_TRUE(single.ok());

  const std::string single_tree = SerializeTree(single->tree());
  for (int t = 0; t < forest->num_trees(); ++t) {
    EXPECT_EQ(SerializeTree(forest->tree(t).tree()), single_tree)
        << "tree " << t;
  }
  for (int i = 0; i < 10; ++i) {
    std::vector<double> fd = forest->ClassifyDistribution(ds.tuple(i));
    std::vector<double> sd = single->ClassifyDistribution(ds.tuple(i));
    ASSERT_EQ(fd.size(), sd.size());
    for (size_t c = 0; c < fd.size(); ++c) {
      EXPECT_NEAR(fd[c], sd[c], 1e-15) << "tuple " << i << " class " << c;
    }
  }
}

TEST(ForestTrainerTest, SubspaceForestsDiversify) {
  Dataset ds = SyntheticDataset(100, 6, 3, 8, 24);
  ForestConfig config = SmallConfig(4);
  config.bootstrap = false;
  config.subspace_attributes = 2;
  ForestTrainer trainer(config);
  auto forest = trainer.TrainUdt(ds);
  ASSERT_TRUE(forest.ok());

  // With bags off, any disagreement between trees must come from the
  // random subspaces.
  bool trees_differ = false;
  for (int t = 1; t < forest->num_trees() && !trees_differ; ++t) {
    trees_differ = forest->tree(t).Serialize() !=
                   forest->tree(0).Serialize();
  }
  EXPECT_TRUE(trees_differ);
}

TEST(ForestTrainerTest, OobEstimateIsSane) {
  Dataset ds = SyntheticDataset(120, 3, 3, 8, 25);
  ForestConfig config = SmallConfig(8);
  ForestTrainer trainer(config);
  OobEstimate oob;
  BuildStats stats;
  auto forest = trainer.TrainUdt(ds, &oob, &stats);
  ASSERT_TRUE(forest.ok());

  EXPECT_EQ(oob.total_tuples, 120);
  // With 8 bags, P(no bag leaves tuple i out) is tiny; expect wide
  // coverage but tolerate the tail.
  EXPECT_GT(oob.evaluated_tuples, 60);
  EXPECT_LE(oob.evaluated_tuples, 120);
  EXPECT_GE(oob.accuracy, 0.0);
  EXPECT_LE(oob.accuracy, 1.0);
  EXPECT_NEAR(oob.error, 1.0 - oob.accuracy, 1e-12);
  EXPECT_NEAR(oob.coverage,
              static_cast<double>(oob.evaluated_tuples) / 120.0, 1e-12);
  EXPECT_GT(stats.nodes, 0);
  EXPECT_GT(stats.leaves, 0);

  // Without bootstrap bags there is nothing out of bag: the rates carry
  // the documented NaN "no estimate" sentinel, never a fake 0.0.
  ForestConfig full = config;
  full.bootstrap = false;
  OobEstimate no_oob;
  auto forest2 = ForestTrainer(full).TrainUdt(ds, &no_oob);
  ASSERT_TRUE(forest2.ok());
  EXPECT_EQ(no_oob.evaluated_tuples, 0);
  EXPECT_EQ(no_oob.coverage, 0.0);
  EXPECT_TRUE(std::isnan(no_oob.accuracy));
  EXPECT_TRUE(std::isnan(no_oob.error));
}

TEST(ForestTrainerTest, OobWithEveryTupleInBagIsNaNNotZero) {
  // A 1-tree forest whose single bag drew every tuple evaluates nothing
  // out of bag. The old behaviour left accuracy/error at 0.0 — reading as
  // a catastrophically wrong (or, via error, perfect) forest; the
  // contract now says NaN rates with coverage == 0. Bags are a pure
  // function of (seed, tree, n), so scan for a seed whose bag covers both
  // tuples instead of hoping.
  Dataset ds = SyntheticDataset(2, 2, 2, 6, 11);
  uint64_t covering_seed = 0;
  bool found = false;
  for (uint64_t seed = 1; seed < 200 && !found; ++seed) {
    std::vector<double> bag = ForestBootstrapBag(seed, 0, 2);
    if (bag[0] > 0.0 && bag[1] > 0.0) {
      covering_seed = seed;
      found = true;
    }
  }
  ASSERT_TRUE(found) << "no seed in [1, 200) draws both of two tuples?";

  ForestConfig config = SmallConfig(1);
  config.seed = covering_seed;
  OobEstimate oob;
  auto forest = ForestTrainer(config).TrainUdt(ds, &oob);
  ASSERT_TRUE(forest.ok());
  EXPECT_EQ(oob.evaluated_tuples, 0);
  EXPECT_EQ(oob.total_tuples, 2);
  EXPECT_EQ(oob.coverage, 0.0);
  EXPECT_TRUE(std::isnan(oob.accuracy));
  EXPECT_TRUE(std::isnan(oob.error));
}

TEST(ForestTrainerTest, AveragingForestTrains) {
  Dataset ds = SyntheticDataset(90, 3, 3, 8, 26);
  ForestTrainer trainer(SmallConfig(4));
  auto forest = trainer.TrainAveraging(ds);
  ASSERT_TRUE(forest.ok());
  EXPECT_EQ(forest->kind(), ModelKind::kAveraging);
  for (int t = 0; t < forest->num_trees(); ++t) {
    EXPECT_EQ(forest->tree(t).config().algorithm, SplitAlgorithm::kAvg);
  }
  // Distributions remain normalised through the vote.
  std::vector<double> dist = forest->ClassifyDistribution(ds.tuple(0));
  double mass = 0.0;
  for (double v : dist) mass += v;
  EXPECT_NEAR(mass, 1.0, 1e-9);
}

TEST(ForestModelTest, SerializeRoundTripsExactly) {
  Dataset ds = SyntheticDataset(90, 3, 3, 8, 27);
  ForestTrainer trainer(SmallConfig(3));
  auto forest = trainer.TrainUdt(ds);
  ASSERT_TRUE(forest.ok());

  std::string text = forest->Serialize();
  auto loaded = ForestModel::Deserialize(text);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(loaded->Serialize(), text);
  EXPECT_EQ(loaded->num_trees(), forest->num_trees());
  EXPECT_EQ(loaded->vote(), forest->vote());
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(loaded->ClassifyDistribution(ds.tuple(i)),
              forest->ClassifyDistribution(ds.tuple(i)));
  }
}

TEST(ForestModelTest, SaveLoadRoundTrips) {
  Dataset ds = SyntheticDataset(80, 3, 3, 8, 28);
  ForestTrainer trainer(SmallConfig(3));
  auto forest = trainer.TrainUdt(ds);
  ASSERT_TRUE(forest.ok());

  std::string path = ::testing::TempDir() + "/forest_model.udtf";
  ASSERT_TRUE(forest->Save(path).ok());
  auto loaded = ForestModel::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->Serialize(), forest->Serialize());
  std::remove(path.c_str());
}

TEST(ForestModelTest, RejectsHostileInput) {
  Dataset ds = SyntheticDataset(60, 3, 3, 8, 29);
  ForestTrainer trainer(SmallConfig(2));
  auto forest = trainer.TrainUdt(ds);
  ASSERT_TRUE(forest.ok());
  std::string good = forest->Serialize();

  EXPECT_FALSE(ForestModel::Deserialize("").ok());
  EXPECT_FALSE(ForestModel::Deserialize("not a forest").ok());
  EXPECT_FALSE(
      ForestModel::Deserialize("udt-forest-model v1\nvote avg\ntrees 0\n")
          .ok());
  // Truncated mid tree body.
  EXPECT_FALSE(
      ForestModel::Deserialize(good.substr(0, good.size() / 2)).ok());
  // Frame length pointing past the end.
  std::string bad = good;
  size_t frame = bad.find("tree 0 ");
  ASSERT_NE(frame, std::string::npos);
  bad.replace(frame, 7, "tree 0 999999999 ");
  EXPECT_FALSE(ForestModel::Deserialize(bad).ok());
}

TEST(CompiledForestTest, CompileRoundTripsLayout) {
  Dataset ds = SyntheticDataset(90, 3, 3, 8, 30);
  ForestTrainer trainer(SmallConfig(4));
  auto forest = trainer.TrainUdt(ds);
  ASSERT_TRUE(forest.ok());

  CompiledForest compiled = forest->Compile();
  EXPECT_EQ(compiled.num_trees(), forest->num_trees());
  EXPECT_EQ(compiled.kind(), forest->kind());
  EXPECT_EQ(compiled.vote(), forest->vote());
  EXPECT_GT(compiled.num_nodes(), 0);

  std::string text = compiled.Serialize();
  auto loaded = CompiledForest::Deserialize(text);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_TRUE(loaded->LayoutEquals(compiled));
  EXPECT_EQ(loaded->Serialize(), text);

  std::string path = ::testing::TempDir() + "/forest_compiled.udtf";
  ASSERT_TRUE(compiled.Save(path).ok());
  auto from_file = CompiledForest::Load(path);
  ASSERT_TRUE(from_file.ok());
  EXPECT_TRUE(from_file->LayoutEquals(compiled));
  std::remove(path.c_str());
}

TEST(CompiledForestTest, RejectsHostileInput) {
  Dataset ds = SyntheticDataset(60, 3, 3, 8, 31);
  ForestTrainer trainer(SmallConfig(2));
  auto forest = trainer.TrainUdt(ds);
  ASSERT_TRUE(forest.ok());
  std::string good = forest->Compile().Serialize();

  EXPECT_FALSE(CompiledForest::Deserialize("").ok());
  EXPECT_FALSE(CompiledForest::Deserialize("udt-compiled v1\n").ok());
  EXPECT_FALSE(
      CompiledForest::Deserialize(good.substr(0, good.size() / 2)).ok());

  // A child id pointing out of range must be caught by validation.
  std::string bad = good;
  size_t n_line = bad.find("\nn 1 ");
  if (n_line != std::string::npos) {
    bad.replace(n_line + 1, 4, "n 9 ");
    EXPECT_FALSE(CompiledForest::Deserialize(bad).ok());
  }
}

TEST(ForestSessionTest, MatchesPointerPathAndSingleThreadBatch) {
  Dataset ds = SyntheticDataset(100, 3, 3, 8, 32);
  ForestTrainer trainer(SmallConfig(4));
  auto forest = trainer.TrainUdt(ds);
  ASSERT_TRUE(forest.ok());

  ForestPredictSession session(forest->Compile());
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(session.ClassifyDistribution(ds.tuple(i)),
              forest->ClassifyDistribution(ds.tuple(i)))
        << "tuple " << i;
    EXPECT_EQ(session.Predict(ds.tuple(i)), forest->Predict(ds.tuple(i)));
  }

  auto batch = session.PredictBatch(ds);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->labels.size(), static_cast<size_t>(ds.num_tuples()));
  for (int i = 0; i < ds.num_tuples(); ++i) {
    EXPECT_EQ(batch->distributions[static_cast<size_t>(i)],
              forest->ClassifyDistribution(ds.tuple(i)));
  }

  // The model-level shim agrees with the session.
  auto shim = forest->PredictBatch(ds);
  ASSERT_TRUE(shim.ok());
  EXPECT_EQ(shim->labels, batch->labels);
  EXPECT_EQ(shim->distributions, batch->distributions);
}

TEST(ForestSessionTest, RejectsNegativeThreads) {
  Dataset ds = SyntheticDataset(30, 3, 3, 8, 33);
  ForestTrainer trainer(SmallConfig(2));
  auto forest = trainer.TrainUdt(ds);
  ASSERT_TRUE(forest.ok());
  ForestPredictSession session(forest->Compile());
  PredictOptions options;
  options.num_threads = -2;
  EXPECT_FALSE(session.PredictBatch(ds, options).ok());
}

TEST(ForestSessionTest, PersistentExecutorSpawnsOncePerSession) {
  // The forest-session half of the executor v3 guarantee: workers are
  // created at the first multi-threaded batch, reused by every later
  // call, and the votes stay byte-identical to the inline loop at every
  // thread count.
  Dataset ds = SyntheticDataset(90, 3, 3, 8, 34);
  ForestTrainer trainer(SmallConfig(4));
  auto forest = trainer.TrainUdt(ds);
  ASSERT_TRUE(forest.ok());
  ForestPredictSession session(forest->Compile());

  ASSERT_TRUE(session.PredictBatch(ds).ok());
  EXPECT_EQ(session.executor_workers(), 0);

  auto reference = session.PredictBatch(ds);
  ASSERT_TRUE(reference.ok());

  ASSERT_TRUE(session.PredictBatch(ds, {.num_threads = 4}).ok());
  EXPECT_EQ(session.executor_workers(), 3);
  for (int round = 0; round < 30; ++round) {
    auto batch = session.PredictBatch(ds, {.num_threads = 1 + round % 4,
                                           .grain = (round % 3 == 0)
                                               ? size_t{1}
                                               : size_t{0}});
    ASSERT_TRUE(batch.ok());
    ASSERT_EQ(session.executor_workers(), 3) << "round " << round;
    ASSERT_EQ(batch->labels, reference->labels) << "round " << round;
    for (size_t i = 0; i < reference->distributions.size(); ++i) {
      ASSERT_EQ(batch->distributions[i], reference->distributions[i])
          << "round " << round << " tuple " << i;
    }
  }
  ASSERT_TRUE(session.PredictBatch(ds, {.num_threads = 8}).ok());
  EXPECT_EQ(session.executor_workers(), 7);
}

TEST(ForestModelTest, DeserializeErrorsReportAbsoluteLineNumbers) {
  // Regression: tree bodies are byte-framed and consumed with raw reads,
  // invisible to the LineReader. Without AccountRawLines every error past
  // the first frame reported a line number frozen at that frame's header;
  // a corrupted second frame must name its true absolute line.
  Dataset ds = SyntheticDataset(60, 2, 3, 6, 77);
  ForestConfig config;
  config.num_trees = 3;
  auto forest = ForestTrainer(config).Train(TrainRequest::For(ds));
  ASSERT_TRUE(forest.ok());

  const std::string body0 = forest->tree(0).Serialize();
  const std::string body1 = forest->tree(1).Serialize();
  const std::string header1 = "tree 1 " + std::to_string(body1.size()) + "\n";
  std::string text = forest->Serialize();
  const size_t at = text.find(header1);
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 6, "tree ?");

  auto broken = ForestModel::Deserialize(text);
  ASSERT_FALSE(broken.ok());
  // magic + vote + trees + "tree 0" header, then tree 0's raw body lines.
  const int body0_lines =
      static_cast<int>(std::count(body0.begin(), body0.end(), '\n'));
  const int expected_line = 4 + body0_lines + 1;
  const std::string want = "line " + std::to_string(expected_line);
  EXPECT_NE(broken.status().message().find(want), std::string::npos)
      << "expected '" << want << "' in: " << broken.status().message();
  // The frame header really does sit beyond tree 0's body, so a frozen
  // counter could not have produced this number.
  ASSERT_GT(expected_line, body0_lines);
}

}  // namespace
}  // namespace udt
