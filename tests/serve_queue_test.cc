// BatchingQueue: results byte-identical to a direct session, coalescing
// (N concurrent submits -> at most ceil(N/max_batch) drains),
// timeout-triggered partial batches, graceful shutdown (drain, then
// reject-after-close), bounded-admission backpressure, and the
// result-buffer reuse contracts the queue depends on.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "api/trainer.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/random.h"
#include "pdf/pdf_builder.h"
#include "serve/batching_queue.h"
#include "serve/model_registry.h"

namespace udt {
namespace serve {
namespace {

Dataset NumericDataset(int tuples, int attributes, uint64_t seed) {
  Rng rng(seed);
  Dataset ds(Schema::Numerical(attributes, {"A", "B", "C"}));
  for (int i = 0; i < tuples; ++i) {
    UncertainTuple t;
    t.label = i % 3;
    for (int j = 0; j < attributes; ++j) {
      auto pdf = MakeGaussianErrorPdf(
          rng.Gaussian(static_cast<double>(t.label) * 1.5, 1.0), 1.2, 8);
      UDT_CHECK(pdf.ok());
      t.values.push_back(UncertainValue::Numerical(std::move(*pdf)));
    }
    UDT_CHECK(ds.AddTuple(std::move(t)).ok());
  }
  return ds;
}

Servable TrainServable(uint64_t seed) {
  auto model = Trainer().TrainUdt(NumericDataset(90, 2, seed));
  UDT_CHECK(model.ok());
  return Servable(model->Compile());
}

// A provider that can be held shut: while closed, the drainer blocks
// inside the provider call (after it has taken a batch), which lets tests
// stage deterministic queue states.
class GatedProvider {
 public:
  explicit GatedProvider(ModelHandle handle) : handle_(std::move(handle)) {}

  BatchingQueue::SnapshotProvider AsProvider() {
    return [this] {
      MutexLock lock(&mu_);
      ++entered_;
      cv_.NotifyAll();
      while (!open_) cv_.Wait(lock);
      return handle_;
    };
  }

  void Open() {
    MutexLock lock(&mu_);
    open_ = true;
    cv_.NotifyAll();
  }

  // Blocks until the drainer is parked inside the provider (i.e. it has
  // taken a batch and the pending queue is at its post-take size).
  void AwaitEntered(int times) {
    MutexLock lock(&mu_);
    while (entered_ < times) cv_.Wait(lock);
  }

 private:
  ModelHandle handle_;
  Mutex mu_;
  CondVar cv_;
  int entered_ UDT_GUARDED_BY(mu_) = 0;
  bool open_ UDT_GUARDED_BY(mu_) = false;
};

ModelHandle MakeHandle(uint64_t seed) {
  return std::make_shared<const RegisteredModel>(
      RegisteredModel{"test", 1, TrainServable(seed)});
}

TEST(BatchingQueueTest, ResultsByteIdenticalToDirectSession) {
  Dataset pool = NumericDataset(48, 2, 7);
  ModelRegistry registry;
  ASSERT_EQ(registry.Publish("prod", TrainServable(1)), 1u);

  // Direct reference over the same artifact.
  ServeSession direct(registry.Resolve("prod")->servable);
  FlatBatchResult reference;
  ASSERT_TRUE(direct
                  .PredictBatchInto(
                      std::span<const UncertainTuple>(pool.tuples().data(),
                                                      pool.tuples().size()),
                      PredictOptions{}, &reference)
                  .ok());
  const size_t k = static_cast<size_t>(reference.num_classes);

  BatchingConfig config;
  config.max_batch = 16;
  config.max_delay_us = 500;
  BatchingQueue queue(&registry, "prod", config);

  std::vector<std::future<ServeResult>> futures;
  for (const UncertainTuple& tuple : pool.tuples()) {
    futures.push_back(queue.Submit(&tuple));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    ServeResult result = futures[i].get();
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_EQ(result.label, reference.labels[i]);
    ASSERT_EQ(result.distribution.size(), k);
    EXPECT_EQ(std::memcmp(result.distribution.data(),
                          reference.distribution(i).data(),
                          k * sizeof(double)),
              0);
    EXPECT_EQ(result.model_name, "prod");
    EXPECT_EQ(result.model_version, 1u);
  }
  queue.Close();
  BatchingQueue::Stats stats = queue.stats();
  EXPECT_EQ(stats.submitted, pool.tuples().size());
  EXPECT_EQ(stats.served, pool.tuples().size());
  EXPECT_EQ(stats.rejected, 0u);
}

TEST(BatchingQueueTest, GatherBatchMatchesContiguousBatch) {
  // The pointer-span session entry point the queue drains through, checked
  // directly: scattered pointers vs the contiguous span, byte-identical.
  Dataset pool = NumericDataset(24, 2, 9);
  Servable servable = TrainServable(2);
  ServeSession session(servable);

  FlatBatchResult contiguous;
  ASSERT_TRUE(session
                  .PredictBatchInto(
                      std::span<const UncertainTuple>(pool.tuples().data(),
                                                      pool.tuples().size()),
                      PredictOptions{}, &contiguous)
                  .ok());

  // Reversed pointer order, so gather index != pool index.
  std::vector<const UncertainTuple*> ptrs;
  for (size_t i = pool.tuples().size(); i-- > 0;) {
    ptrs.push_back(&pool.tuples()[i]);
  }
  FlatBatchResult gathered;
  PredictOptions two_threads;
  two_threads.num_threads = 2;
  ASSERT_TRUE(session
                  .PredictBatchInto(std::span<const UncertainTuple* const>(
                                        ptrs.data(), ptrs.size()),
                                    two_threads, &gathered)
                  .ok());

  const size_t n = pool.tuples().size();
  const size_t k = static_cast<size_t>(contiguous.num_classes);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(std::memcmp(gathered.distribution(i).data(),
                          contiguous.distribution(n - 1 - i).data(),
                          k * sizeof(double)),
              0);
    EXPECT_EQ(gathered.labels[i], contiguous.labels[n - 1 - i]);
  }
}

TEST(BatchingQueueTest, CoalescesConcurrentSubmitsIntoMicroBatches) {
  Dataset pool = NumericDataset(16, 2, 11);
  ModelRegistry registry;
  ASSERT_EQ(registry.Publish("prod", TrainServable(3)), 1u);

  BatchingConfig config;
  config.max_batch = 16;
  // A deadline far beyond the submission burst: a drain below max_batch
  // would need the machine to stall for a full second mid-test.
  config.max_delay_us = 1'000'000;
  BatchingQueue queue(&registry, "prod", config);

  constexpr int kClients = 4;
  constexpr int kPerClient = 16;  // 64 total = 4 full micro-batches
  std::vector<std::vector<std::future<ServeResult>>> futures(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int j = 0; j < kPerClient; ++j) {
        futures[c].push_back(
            queue.Submit(&pool.tuple((c * kPerClient + j) % 16)));
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (auto& per_client : futures) {
    for (auto& future : per_client) {
      EXPECT_TRUE(future.get().status.ok());
    }
  }

  BatchingQueue::Stats stats = queue.stats();
  EXPECT_EQ(stats.served, 64u);
  EXPECT_LE(stats.drains,
            64u / 16u);  // <= ceil(N / max_batch) micro-batches
  EXPECT_LE(stats.max_drain, 16u);
  EXPECT_GE(stats.max_drain, 2u);  // something actually coalesced
}

TEST(BatchingQueueTest, TimeoutServesPartialBatch) {
  Dataset pool = NumericDataset(4, 2, 13);
  ModelRegistry registry;
  ASSERT_EQ(registry.Publish("prod", TrainServable(4)), 1u);

  BatchingConfig config;
  config.max_batch = 64;  // never filled by 3 requests
  config.max_delay_us = 2000;
  BatchingQueue queue(&registry, "prod", config);

  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 3; ++i) futures.push_back(queue.Submit(&pool.tuple(i)));
  for (auto& future : futures) {
    // Completes via the max_delay deadline, long before any test timeout.
    EXPECT_TRUE(future.get().status.ok());
  }
  BatchingQueue::Stats stats = queue.stats();
  EXPECT_EQ(stats.served, 3u);
  EXPECT_GE(stats.drains, 1u);
  EXPECT_LE(stats.max_drain, 3u);
}

TEST(BatchingQueueTest, CloseDrainsAdmittedThenRejects) {
  Dataset pool = NumericDataset(8, 2, 15);
  ModelRegistry registry;
  ASSERT_EQ(registry.Publish("prod", TrainServable(5)), 1u);

  BatchingConfig config;
  config.max_batch = 64;
  config.max_delay_us = 10'000'000;  // 10s: only shutdown can drain these
  auto queue = std::make_unique<BatchingQueue>(&registry, "prod", config);

  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 5; ++i) {
    futures.push_back(queue->Submit(&pool.tuple(i)));
  }
  queue->Close();  // must serve the 5 admitted requests, not strand them
  for (auto& future : futures) {
    EXPECT_TRUE(future.get().status.ok());
  }

  ServeResult rejected = queue->Submit(&pool.tuple(5)).get();
  EXPECT_EQ(rejected.status.code(), StatusCode::kUnavailable);

  BatchingQueue::Stats stats = queue->stats();
  EXPECT_EQ(stats.served, 5u);
  EXPECT_EQ(stats.rejected, 1u);
  queue.reset();  // double-Close via destructor must be safe
}

TEST(BatchingQueueTest, BoundedAdmissionRejectsOverflowWithUnavailable) {
  Dataset pool = NumericDataset(8, 2, 17);
  GatedProvider gate(MakeHandle(6));

  BatchingConfig config;
  config.max_batch = 1;
  config.max_queue = 4;
  config.max_delay_us = 0;
  BatchingQueue queue(gate.AsProvider(), config);

  // First submit is taken by the drainer, which then parks inside the
  // gated provider — the pending queue is empty again.
  std::vector<std::future<ServeResult>> futures;
  futures.push_back(queue.Submit(&pool.tuple(0)));
  gate.AwaitEntered(1);

  // Fill the admission bound while the drainer is parked...
  for (int i = 1; i <= 4; ++i) {
    futures.push_back(queue.Submit(&pool.tuple(i)));
  }
  EXPECT_EQ(queue.pending(), 4u);

  // ...and the next submit must shed load, immediately and inline.
  ServeResult overflow = queue.Submit(&pool.tuple(5)).get();
  EXPECT_EQ(overflow.status.code(), StatusCode::kUnavailable);

  gate.Open();
  for (auto& future : futures) {
    EXPECT_TRUE(future.get().status.ok());
  }
  BatchingQueue::Stats stats = queue.stats();
  EXPECT_EQ(stats.submitted, 5u);
  EXPECT_EQ(stats.served, 5u);
  EXPECT_EQ(stats.rejected, 1u);
}

TEST(BatchingQueueTest, NoLiveVersionFailsRequestsAsUnavailable) {
  Dataset pool = NumericDataset(4, 2, 19);
  ModelRegistry registry;  // nothing published
  BatchingConfig config;
  config.max_delay_us = 500;
  BatchingQueue queue(&registry, "prod", config);

  ServeResult result = queue.Submit(&pool.tuple(0)).get();
  EXPECT_EQ(result.status.code(), StatusCode::kUnavailable);
}

TEST(BatchingQueueTest, CallbackFormCompletesOnce) {
  Dataset pool = NumericDataset(4, 2, 21);
  ModelRegistry registry;
  ASSERT_EQ(registry.Publish("prod", TrainServable(8)), 1u);
  BatchingConfig config;
  config.max_delay_us = 500;
  BatchingQueue queue(&registry, "prod", config);

  std::promise<ServeResult> done;
  std::atomic<int> calls{0};
  queue.SubmitWithCallback(&pool.tuple(0), [&](ServeResult result) {
    ++calls;
    done.set_value(std::move(result));
  });
  ServeResult result = done.get_future().get();
  EXPECT_TRUE(result.status.ok());
  EXPECT_EQ(calls.load(), 1);
}

// The reuse contracts the queue (and any serving loop) recycles result
// buffers under.
TEST(BatchingQueueTest, TopKOrdersClassesByProbabilityTiesToLowestId) {
  ModelHandle handle = MakeHandle(31);
  BatchingConfig config;
  config.predict.top_k = 3;
  BatchingQueue queue([handle] { return handle; }, config);

  Dataset pool = NumericDataset(24, 2, 32);
  for (const UncertainTuple& tuple : pool.tuples()) {
    ServeResult result = queue.Submit(&tuple).get();
    ASSERT_TRUE(result.status.ok());
    ASSERT_EQ(result.top_classes.size(), 3u);
    EXPECT_EQ(result.top_classes[0], result.label);
    for (size_t i = 1; i < result.top_classes.size(); ++i) {
      const int prev = result.top_classes[i - 1];
      const int cur = result.top_classes[i];
      const double p_prev = result.distribution[static_cast<size_t>(prev)];
      const double p_cur = result.distribution[static_cast<size_t>(cur)];
      // Strictly descending probability; equal probabilities must come
      // out in ascending class-id order.
      EXPECT_TRUE(p_prev > p_cur || (p_prev == p_cur && prev < cur))
          << "rank " << i << ": class " << prev << " (p=" << p_prev
          << ") before class " << cur << " (p=" << p_cur << ")";
    }
  }
}

TEST(BatchingQueueTest, AbstainFlagHonoursConfiguredThreshold) {
  ModelHandle handle = MakeHandle(33);
  BatchingConfig config;
  config.predict.abstain_threshold = 0.99;
  BatchingQueue queue([handle] { return handle; }, config);

  Dataset pool = NumericDataset(32, 2, 34);
  int abstained = 0;
  for (const UncertainTuple& tuple : pool.tuples()) {
    ServeResult result = queue.Submit(&tuple).get();
    ASSERT_TRUE(result.status.ok());
    EXPECT_EQ(result.abstained, result.confidence < 0.99);
    // The label is still reported — abstention is advice, not censorship.
    EXPECT_GE(result.label, 0);
    if (result.abstained) ++abstained;
  }
  EXPECT_EQ(queue.stats().served, 32u);
  (void)abstained;  // data-dependent; the per-result invariant is the test
}

TEST(BatchingQueueTest, ResponseTapSeesOkResponsesButNeverShedOnes) {
  GatedProvider gate(MakeHandle(35));
  BatchingConfig config;
  config.max_batch = 1;
  config.max_queue = 2;
  std::atomic<int> tapped{0};
  config.response_tap = [&tapped](const ServeResult& result) {
    ASSERT_TRUE(result.status.ok());
    ASSERT_FALSE(result.distribution.empty());
    tapped.fetch_add(1, std::memory_order_relaxed);
  };
  BatchingQueue queue(gate.AsProvider(), config);

  Dataset pool = NumericDataset(4, 2, 36);
  // First submit is taken by the drainer, which then parks inside the
  // closed provider; the next two fill the bounded queue.
  auto f0 = queue.Submit(&pool.tuple(0));
  gate.AwaitEntered(1);
  auto f1 = queue.Submit(&pool.tuple(1));
  auto f2 = queue.Submit(&pool.tuple(2));
  // Admission is full: this one is shed and must never reach the tap.
  ServeResult shed = queue.Submit(&pool.tuple(3)).get();
  EXPECT_FALSE(shed.status.ok());

  gate.Open();
  EXPECT_TRUE(f0.get().status.ok());
  EXPECT_TRUE(f1.get().status.ok());
  EXPECT_TRUE(f2.get().status.ok());
  queue.Close();
  EXPECT_EQ(tapped.load(), 3);
  EXPECT_EQ(queue.stats().rejected, 1u);
}

TEST(ResultReuseTest, BatchResultClearResetsScalarsAndVectors) {
  Dataset pool = NumericDataset(32, 2, 23);
  Servable servable = TrainServable(9);
  PredictSession session(*servable.model());

  PredictOptions options;
  options.num_threads = 2;
  options.collect_timings = true;
  auto result = session.PredictBatch(
      std::span<const UncertainTuple>(pool.tuples().data(),
                                      pool.tuples().size()),
      options);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->distributions.empty());
  ASSERT_FALSE(result->tuple_seconds.empty());
  ASSERT_GE(result->num_threads_used, 1);
  ASSERT_GT(result->total_seconds, 0.0);

  result->Clear();
  EXPECT_TRUE(result->distributions.empty());
  EXPECT_TRUE(result->labels.empty());
  EXPECT_TRUE(result->tuple_seconds.empty());
  EXPECT_EQ(result->total_seconds, 0.0);
  EXPECT_EQ(result->num_threads_used, 1);
}

TEST(ResultReuseTest, FlatBatchResultClearLeavesNoTraceOfPreviousBatch) {
  Dataset pool = NumericDataset(16, 2, 25);
  Servable servable = TrainServable(10);
  ServeSession session(servable);

  FlatBatchResult flat;
  ASSERT_TRUE(session
                  .PredictBatchInto(
                      std::span<const UncertainTuple>(pool.tuples().data(),
                                                      pool.tuples().size()),
                      PredictOptions{}, &flat)
                  .ok());
  ASSERT_EQ(flat.size(), pool.tuples().size());
  ASSERT_GT(flat.num_classes, 0);

  flat.Clear();
  EXPECT_EQ(flat.size(), 0u);
  EXPECT_TRUE(flat.distributions.empty());
  EXPECT_EQ(flat.num_classes, 0);

  // A recycled buffer serves a smaller batch with no stale rows visible.
  ASSERT_TRUE(session
                  .PredictBatchInto(
                      std::span<const UncertainTuple>(pool.tuples().data(), 3),
                      PredictOptions{}, &flat)
                  .ok());
  EXPECT_EQ(flat.size(), 3u);
  EXPECT_EQ(flat.distributions.size(),
            3u * static_cast<size_t>(flat.num_classes));
}

// The queue's completions run on the drainer thread; callers that need to
// rendezvous with one use exactly the udt::Mutex/CondVar idiom the queue
// itself is built on (common/mutex.h). This case drives both wrapper
// outcomes end to end against a live queue: WaitFor must report false
// while the drainer is still holding the request (10s deadline, batch
// never fills), then true once Close() forces the drain and the callback
// notifies.

TEST(BatchingQueueTest, CallbackRendezvousExercisesCondVarTimeoutAndWake) {
  Dataset pool = NumericDataset(4, 2, 27);
  ModelRegistry registry;
  ASSERT_EQ(registry.Publish("prod", TrainServable(12)), 1u);

  BatchingConfig config;
  config.max_batch = 64;
  config.max_delay_us = 10'000'000;  // 10s: only Close() can drain this
  BatchingQueue queue(&registry, "prod", config);

  Mutex mu;
  CondVar cv;
  bool served UDT_GUARDED_BY(mu) = false;
  Status served_status UDT_GUARDED_BY(mu);
  queue.SubmitWithCallback(&pool.tuple(0), [&](ServeResult result) {
    MutexLock lock(&mu);
    served = true;
    served_status = result.status;
    cv.NotifyOne();
  });

  {
    MutexLock lock(&mu);
    // Nothing can have served yet: the wrapper's timeout path must fire.
    EXPECT_FALSE(cv.WaitFor(lock, std::chrono::microseconds(2000)));
    EXPECT_FALSE(served);
  }

  queue.Close();  // drains the admitted request -> callback -> NotifyOne
  {
    MutexLock lock(&mu);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (!served) {
      ASSERT_TRUE(cv.WaitUntil(lock, deadline)) << "callback never ran";
    }
    EXPECT_TRUE(served_status.ok());
  }
}

}  // namespace
}  // namespace serve
}  // namespace udt
