// Tests for the synthetic data generators that stand in for the UCI data
// sets (see DESIGN.md "Substitutions").

#include <gtest/gtest.h>

#include "datagen/japanese_vowel.h"
#include "datagen/synthetic.h"
#include "datagen/uci_like.h"

namespace udt {
namespace {

using datagen::GenerateJapaneseVowelLike;
using datagen::GenerateSynthetic;
using datagen::JapaneseVowelConfig;
using datagen::SyntheticConfig;
using datagen::UciCatalogue;
using datagen::UciDatasetSpec;

TEST(SyntheticTest, ShapeMatchesConfig) {
  SyntheticConfig config;
  config.num_tuples = 120;
  config.num_attributes = 5;
  config.num_classes = 3;
  PointDataset ds = GenerateSynthetic(config);
  EXPECT_EQ(ds.num_tuples(), 120);
  EXPECT_EQ(ds.num_attributes(), 5);
  EXPECT_EQ(ds.num_classes(), 3);
}

TEST(SyntheticTest, ClassesBalanced) {
  SyntheticConfig config;
  config.num_tuples = 99;
  config.num_classes = 3;
  PointDataset ds = GenerateSynthetic(config);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < ds.num_tuples(); ++i) {
    ++counts[static_cast<size_t>(ds.label(i))];
  }
  EXPECT_EQ(counts[0], 33);
  EXPECT_EQ(counts[1], 33);
  EXPECT_EQ(counts[2], 33);
}

TEST(SyntheticTest, DeterministicInSeed) {
  SyntheticConfig config;
  config.seed = 42;
  PointDataset a = GenerateSynthetic(config);
  PointDataset b = GenerateSynthetic(config);
  ASSERT_EQ(a.num_tuples(), b.num_tuples());
  for (int i = 0; i < a.num_tuples(); ++i) {
    EXPECT_EQ(a.value(i, 0), b.value(i, 0));
  }
  config.seed = 43;
  PointDataset c = GenerateSynthetic(config);
  bool any_diff = false;
  for (int i = 0; i < a.num_tuples() && !any_diff; ++i) {
    any_diff = a.value(i, 0) != c.value(i, 0);
  }
  EXPECT_TRUE(any_diff);
}

TEST(SyntheticTest, IntegerDomainQuantises) {
  SyntheticConfig config;
  config.integer_domain = true;
  config.integer_levels = 50;
  PointDataset ds = GenerateSynthetic(config);
  for (int i = 0; i < ds.num_tuples(); ++i) {
    for (int j = 0; j < ds.num_attributes(); ++j) {
      double v = ds.value(i, j);
      EXPECT_DOUBLE_EQ(v, std::round(v));
    }
  }
}

TEST(SyntheticTest, ClassSignalPresent) {
  // Class-conditional means must differ noticeably on informative columns:
  // check that at least one attribute separates class means by more than
  // the within-class noise would explain.
  SyntheticConfig config;
  config.num_tuples = 600;
  config.num_attributes = 4;
  config.num_classes = 2;
  config.clusters_per_class = 1;
  config.cluster_stddev = 0.05;
  config.inherent_noise = 0.05;
  PointDataset ds = GenerateSynthetic(config);
  double best_separation = 0.0;
  for (int j = 0; j < ds.num_attributes(); ++j) {
    double mean0 = 0.0, mean1 = 0.0;
    int n0 = 0, n1 = 0;
    for (int i = 0; i < ds.num_tuples(); ++i) {
      if (ds.label(i) == 0) {
        mean0 += ds.value(i, j);
        ++n0;
      } else {
        mean1 += ds.value(i, j);
        ++n1;
      }
    }
    mean0 /= n0;
    mean1 /= n1;
    best_separation = std::max(best_separation, std::abs(mean0 - mean1));
  }
  EXPECT_GT(best_separation, 0.05);
}

TEST(UciLikeTest, CatalogueMatchesTable2Shapes) {
  const std::vector<UciDatasetSpec>& catalogue = UciCatalogue();
  ASSERT_EQ(catalogue.size(), 10u);
  EXPECT_EQ(catalogue[0].name, "JapaneseVowel");
  EXPECT_TRUE(catalogue[0].from_raw_samples);
  EXPECT_EQ(catalogue[0].num_classes, 9);

  auto iris = datagen::FindUciSpec("Iris");
  ASSERT_TRUE(iris.ok());
  EXPECT_EQ(iris->num_tuples, 150);
  EXPECT_EQ(iris->num_attributes, 4);
  EXPECT_EQ(iris->num_classes, 3);

  auto pen = datagen::FindUciSpec("PenDigits");
  ASSERT_TRUE(pen.ok());
  EXPECT_TRUE(pen->integer_domain);
  EXPECT_EQ(pen->num_classes, 10);

  EXPECT_FALSE(datagen::FindUciSpec("NoSuchSet").ok());
}

TEST(UciLikeTest, ScaleShrinksTuples) {
  auto spec = datagen::FindUciSpec("Segment");
  ASSERT_TRUE(spec.ok());
  PointDataset full = datagen::MakeUciLikePointData(*spec, 1.0);
  PointDataset small = datagen::MakeUciLikePointData(*spec, 0.1);
  EXPECT_EQ(full.num_tuples(), 2310);
  EXPECT_EQ(small.num_tuples(), 231);
  EXPECT_EQ(small.num_attributes(), full.num_attributes());
}

TEST(UciLikeTest, DistinctDatasetsDiffer) {
  auto a = datagen::FindUciSpec("Iris");
  auto b = datagen::FindUciSpec("Glass");
  ASSERT_TRUE(a.ok() && b.ok());
  PointDataset da = datagen::MakeUciLikePointData(*a, 1.0);
  PointDataset db = datagen::MakeUciLikePointData(*b, 1.0);
  EXPECT_NE(da.num_attributes(), db.num_attributes());
}

TEST(JapaneseVowelTest, ShapeAndRawSampleCounts) {
  JapaneseVowelConfig config;
  config.num_tuples = 90;
  Dataset ds = GenerateJapaneseVowelLike(config);
  EXPECT_EQ(ds.num_tuples(), 90);
  EXPECT_EQ(ds.num_attributes(), 12);
  EXPECT_EQ(ds.num_classes(), 9);
  for (int i = 0; i < ds.num_tuples(); ++i) {
    for (int j = 0; j < ds.num_attributes(); ++j) {
      const SampledPdf& pdf = ds.tuple(i).values[static_cast<size_t>(j)].pdf();
      // 7..29 raw samples (duplicates across draws are measure-zero).
      EXPECT_GE(pdf.num_points(), 7);
      EXPECT_LE(pdf.num_points(), 29);
    }
  }
}

TEST(JapaneseVowelTest, SpeakersBalanced) {
  JapaneseVowelConfig config;
  config.num_tuples = 90;
  Dataset ds = GenerateJapaneseVowelLike(config);
  std::vector<int> hist = ds.ClassHistogram();
  for (int c = 0; c < 9; ++c) {
    EXPECT_EQ(hist[static_cast<size_t>(c)], 10);
  }
}

TEST(JapaneseVowelTest, DeterministicInSeed) {
  JapaneseVowelConfig config;
  config.num_tuples = 18;
  Dataset a = GenerateJapaneseVowelLike(config);
  Dataset b = GenerateJapaneseVowelLike(config);
  EXPECT_DOUBLE_EQ(a.tuple(3).values[2].pdf().Mean(),
                   b.tuple(3).values[2].pdf().Mean());
}

TEST(JapaneseVowelTest, SpeakerSignalPresent) {
  // Means of the same attribute should differ across speakers more than
  // within a speaker.
  JapaneseVowelConfig config;
  config.num_tuples = 180;
  Dataset ds = GenerateJapaneseVowelLike(config);
  std::vector<double> speaker_mean(9, 0.0);
  std::vector<int> speaker_n(9, 0);
  for (int i = 0; i < ds.num_tuples(); ++i) {
    speaker_mean[static_cast<size_t>(ds.tuple(i).label)] +=
        ds.tuple(i).values[0].pdf().Mean();
    ++speaker_n[static_cast<size_t>(ds.tuple(i).label)];
  }
  double lo = 1e9, hi = -1e9;
  for (int c = 0; c < 9; ++c) {
    double m = speaker_mean[static_cast<size_t>(c)] /
               speaker_n[static_cast<size_t>(c)];
    lo = std::min(lo, m);
    hi = std::max(hi, m);
  }
  EXPECT_GT(hi - lo, 0.5);  // speaker spread is 1.0 sigma
}

}  // namespace
}  // namespace udt
