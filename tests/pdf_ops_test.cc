// Tests for pdf algebra: mixtures, quantiles, downsampling, convolution
// and KS distance.

#include <cmath>

#include <gtest/gtest.h>

#include "pdf/pdf_builder.h"
#include "pdf/pdf_ops.h"

namespace udt {
namespace {

TEST(MixPdfsTest, EqualWeightMixture) {
  auto a = SampledPdf::PointMass(0.0);
  auto b = SampledPdf::PointMass(2.0);
  auto mix = MixPdfs({a, b});
  ASSERT_TRUE(mix.ok());
  EXPECT_EQ(mix->num_points(), 2);
  EXPECT_NEAR(mix->mass(0), 0.5, 1e-12);
  EXPECT_NEAR(mix->Mean(), 1.0, 1e-12);
}

TEST(MixPdfsTest, WeightedMixture) {
  auto a = SampledPdf::PointMass(0.0);
  auto b = SampledPdf::PointMass(4.0);
  auto mix = MixPdfs({a, b}, {3.0, 1.0});
  ASSERT_TRUE(mix.ok());
  EXPECT_NEAR(mix->Mean(), 1.0, 1e-12);
}

TEST(MixPdfsTest, MixtureMeanIsWeightedMeanOfMeans) {
  auto a = MakeGaussianErrorPdf(1.0, 0.5, 21);
  auto b = MakeUniformErrorPdf(5.0, 2.0, 30);
  ASSERT_TRUE(a.ok() && b.ok());
  auto mix = MixPdfs({*a, *b}, {0.25, 0.75});
  ASSERT_TRUE(mix.ok());
  EXPECT_NEAR(mix->Mean(), 0.25 * 1.0 + 0.75 * 5.0, 1e-9);
}

TEST(MixPdfsTest, RejectsBadInput) {
  EXPECT_FALSE(MixPdfs({}).ok());
  auto a = SampledPdf::PointMass(0.0);
  EXPECT_FALSE(MixPdfs({a}, {1.0, 2.0}).ok());
  EXPECT_FALSE(MixPdfs({a}, {-1.0}).ok());
  EXPECT_FALSE(MixPdfs({a}, {0.0}).ok());
}

TEST(PdfQuantileTest, MatchesCdf) {
  auto pdf = SampledPdf::Create({0.0, 1.0, 2.0, 3.0}, {0.1, 0.4, 0.3, 0.2});
  ASSERT_TRUE(pdf.ok());
  EXPECT_DOUBLE_EQ(PdfQuantile(*pdf, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(PdfQuantile(*pdf, 0.05), 0.0);
  EXPECT_DOUBLE_EQ(PdfQuantile(*pdf, 0.1), 0.0);
  EXPECT_DOUBLE_EQ(PdfQuantile(*pdf, 0.3), 1.0);
  EXPECT_DOUBLE_EQ(PdfQuantile(*pdf, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(PdfQuantile(*pdf, 0.75), 2.0);
  EXPECT_DOUBLE_EQ(PdfQuantile(*pdf, 1.0), 3.0);
}

TEST(DownsampleTest, PreservesMassAndMean) {
  auto pdf = MakeGaussianErrorPdf(3.0, 2.0, 200);
  ASSERT_TRUE(pdf.ok());
  auto small = DownsamplePdf(*pdf, 20);
  ASSERT_TRUE(small.ok());
  EXPECT_LE(small->num_points(), 20);
  double total = 0.0;
  for (int i = 0; i < small->num_points(); ++i) total += small->mass(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_NEAR(small->Mean(), pdf->Mean(), 1e-6);
}

TEST(DownsampleTest, NoOpWhenAlreadySmall) {
  auto pdf = SampledPdf::Create({0.0, 1.0}, {0.5, 0.5});
  ASSERT_TRUE(pdf.ok());
  auto same = DownsamplePdf(*pdf, 10);
  ASSERT_TRUE(same.ok());
  EXPECT_EQ(same->num_points(), 2);
}

TEST(DownsampleTest, CdfStaysClose) {
  auto pdf = MakeUniformPdf(0.0, 10.0, 500);
  ASSERT_TRUE(pdf.ok());
  auto small = DownsamplePdf(*pdf, 25);
  ASSERT_TRUE(small.ok());
  // Re-binning moves each point by at most one cell width.
  EXPECT_LT(KsDistance(*pdf, *small), 0.05);
}

TEST(DownsampleTest, RejectsBadS) {
  auto pdf = SampledPdf::PointMass(1.0);
  EXPECT_FALSE(DownsamplePdf(pdf, 0).ok());
}

TEST(DownsampleTest, SubnormalWidthSupportSurvives) {
  // Support width of a few denormal ulps: the per-cell boundary arithmetic
  // operates entirely in the rounding regime the old `DCHECK(cell > 0)`
  // assumed away in Release builds. The result must still be a valid pdf
  // conserving mass and mean (a true zero-width cell collapses to the
  // single mass-weighted point instead of tripping undefined behaviour).
  constexpr double kUlp = 4.9406564584124654e-324;  // min denormal
  auto pdf = SampledPdf::Create({0.0, kUlp, 2 * kUlp, 3 * kUlp},
                                {0.25, 0.25, 0.25, 0.25});
  ASSERT_TRUE(pdf.ok());
  auto small = DownsamplePdf(*pdf, 2);
  ASSERT_TRUE(small.ok());
  EXPECT_GE(small->num_points(), 1);
  EXPECT_LE(small->num_points(), 2);
  double total = 0.0;
  for (int i = 0; i < small->num_points(); ++i) total += small->mass(i);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(DownsampleTest, TightClusterAtHugeMagnitudeSurvives) {
  // Points one ulp apart at 1e300: cell width underflows relative to the
  // support location, stressing the `lo + (c+1) * cell` boundary walk.
  const double base = 1e300;
  const double u1 = std::nextafter(base, 1e301);
  const double u2 = std::nextafter(u1, 1e301);
  auto pdf = SampledPdf::Create({base, u1, u2}, {0.5, 0.25, 0.25});
  ASSERT_TRUE(pdf.ok());
  auto small = DownsamplePdf(*pdf, 2);
  ASSERT_TRUE(small.ok());
  EXPECT_GE(small->num_points(), 1);
  double total = 0.0;
  for (int i = 0; i < small->num_points(); ++i) total += small->mass(i);
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_NEAR(small->Mean() / base, pdf->Mean() / base, 1e-12);
}

TEST(ConvolveTest, PointMassesAdd) {
  auto a = SampledPdf::PointMass(2.0);
  auto b = SampledPdf::PointMass(3.0);
  auto sum = ConvolvePdfs(a, b);
  ASSERT_TRUE(sum.ok());
  EXPECT_TRUE(sum->is_point());
  EXPECT_DOUBLE_EQ(sum->Mean(), 5.0);
}

TEST(ConvolveTest, MeansAndVariancesAdd) {
  // The Section 4.4 situation: two independent error sources compose with
  // sigma^2 = sigma1^2 + sigma2^2.
  auto a = MakeGaussianErrorPdf(1.0, 2.0, 41);
  auto b = MakeGaussianErrorPdf(-0.5, 1.5, 41);
  ASSERT_TRUE(a.ok() && b.ok());
  auto sum = ConvolvePdfs(*a, *b);
  ASSERT_TRUE(sum.ok());
  EXPECT_NEAR(sum->Mean(), a->Mean() + b->Mean(), 1e-9);
  EXPECT_NEAR(sum->Variance(), a->Variance() + b->Variance(), 1e-9);
}

TEST(ConvolveTest, DownsamplesOnRequest) {
  auto a = MakeUniformPdf(0.0, 1.0, 60);
  auto b = MakeUniformPdf(0.0, 1.0, 60);
  ASSERT_TRUE(a.ok() && b.ok());
  auto sum = ConvolvePdfs(*a, *b, 50);
  ASSERT_TRUE(sum.ok());
  EXPECT_LE(sum->num_points(), 50);
  EXPECT_NEAR(sum->Mean(), 1.0, 1e-6);
}

TEST(ConvolveTest, RefusesExplosiveInputs) {
  auto a = MakeUniformPdf(0.0, 1.0, 3000);
  auto b = MakeUniformPdf(0.0, 1.0, 3000);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_FALSE(ConvolvePdfs(*a, *b).ok());
}

TEST(KsDistanceTest, ZeroForIdentical) {
  auto a = MakeGaussianErrorPdf(0.0, 1.0, 50);
  ASSERT_TRUE(a.ok());
  EXPECT_DOUBLE_EQ(KsDistance(*a, *a), 0.0);
}

TEST(KsDistanceTest, OneForDisjoint) {
  auto a = SampledPdf::PointMass(0.0);
  auto b = SampledPdf::PointMass(10.0);
  EXPECT_DOUBLE_EQ(KsDistance(a, b), 1.0);
}

TEST(KsDistanceTest, Symmetric) {
  auto a = MakeGaussianErrorPdf(0.0, 1.0, 30);
  auto b = MakeUniformErrorPdf(0.5, 2.0, 40);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(KsDistance(*a, *b), KsDistance(*b, *a));
}

}  // namespace
}  // namespace udt
